// Fault-injection campaign: sweep fault frequency and compare protocols —
// the Fig. 1 experiment as a user-facing tool.
//
//   $ ./fault_campaign [nranks] [scale]
//
// Runs a BT-like workload under coordinated checkpointing, pessimistic and
// causal message logging at increasing fault rates and prints slowdowns.
// Each (protocol, rate) cell is one scenario built with ScenarioBuilder.
#include <cstdio>
#include <cstdlib>

#include "scenario/runner.hpp"

using namespace mpiv;

namespace {

double run_once(const char* variant, ckpt::Policy policy, sim::Time interval,
                int nranks, double scale, double faults_per_minute) {
  const scenario::RunResult r = scenario::run_spec(
      scenario::ScenarioBuilder("fault_campaign")
          .variant(variant)
          .nranks(nranks)
          .fault_rate(faults_per_minute)
          .checkpoint(policy, interval)
          .max_sim_time(3600LL * sim::kSecond)
          .nas(workloads::NasKernel::kBT, workloads::NasClass::kA, scale)
          .build());
  return r.completed ? sim::to_sec(r.report.completion_time) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 9;
  const double scale = argc > 2 ? std::atof(argv[2]) : 8.0;
  if (!workloads::nas_valid_nranks(workloads::NasKernel::kBT, nranks)) {
    std::fprintf(stderr, "BT needs a square rank count\n");
    return 2;
  }
  std::printf("fault campaign: BT-like, %d ranks, scale %.1f\n\n", nranks, scale);
  struct Arm {
    const char* name;
    const char* variant;
    ckpt::Policy policy;
    sim::Time interval;
  };
  const Arm arms[] = {
      {"coordinated", "coordinated", ckpt::Policy::kAllAtOnce,
       60 * sim::kSecond},
      {"pessimistic", "pessimistic", ckpt::Policy::kRoundRobin,
       std::max<sim::Time>(1, 60 * sim::kSecond / nranks)},
      {"causal", "manetho:el", ckpt::Policy::kRoundRobin,
       std::max<sim::Time>(1, 60 * sim::kSecond / nranks)},
  };
  double base[3];
  for (int i = 0; i < 3; ++i) {
    base[i] = run_once(arms[i].variant, arms[i].policy, arms[i].interval,
                       nranks, scale, 0.0);
  }

  std::printf("%12s %14s %14s %14s\n", "faults/min", arms[0].name,
              arms[1].name, arms[2].name);
  for (const double rate : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    std::printf("%12.2f", rate);
    for (int i = 0; i < 3; ++i) {
      const double t = rate == 0.0
                           ? base[i]
                           : run_once(arms[i].variant, arms[i].policy,
                                      arms[i].interval, nranks, scale, rate);
      if (t < 0) {
        std::printf(" %14s", "no progress");
      } else {
        std::printf(" %13.0f%%", 100.0 * t / base[i]);
      }
    }
    std::printf("\n");
  }
  return 0;
}
