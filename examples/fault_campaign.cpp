// Fault-injection campaigns on the FaultEngine: the Fig. 1 fault-frequency
// sweep plus an EL-shard failover chaos demo with recovery timelines.
//
//   $ ./fault_campaign [nranks] [scale]
//
// Part 1 runs a BT-like workload under coordinated checkpointing,
// pessimistic and causal message logging at increasing fault rates and
// prints slowdowns (each cell one declarative scenario). Part 2 kills an
// Event Logger shard mid-run, lets the engine fail its ranks over onto the
// surviving shard, then crashes a re-homed rank — and prints the
// per-phase recovery timeline the engine recorded.
#include <cstdio>
#include <cstdlib>

#include "scenario/runner.hpp"

using namespace mpiv;

namespace {

double run_once(const char* variant, ckpt::Policy policy, sim::Time interval,
                int nranks, double scale, double faults_per_minute) {
  const scenario::RunResult r = scenario::run_spec(
      scenario::ScenarioBuilder("fault_campaign")
          .variant(variant)
          .nranks(nranks)
          .fault_rate(faults_per_minute)
          .checkpoint(policy, interval)
          .max_sim_time(3600LL * sim::kSecond)
          .nas(workloads::NasKernel::kBT, workloads::NasClass::kA, scale)
          .build());
  return r.completed ? sim::to_sec(r.report.completion_time) : -1.0;
}

void rate_sweep(int nranks, double scale) {
  struct Arm {
    const char* name;
    const char* variant;
    ckpt::Policy policy;
    sim::Time interval;
  };
  const Arm arms[] = {
      {"coordinated", "coordinated", ckpt::Policy::kAllAtOnce,
       60 * sim::kSecond},
      {"pessimistic", "pessimistic", ckpt::Policy::kRoundRobin,
       std::max<sim::Time>(1, 60 * sim::kSecond / nranks)},
      {"causal", "manetho:el", ckpt::Policy::kRoundRobin,
       std::max<sim::Time>(1, 60 * sim::kSecond / nranks)},
  };
  double base[3];
  for (int i = 0; i < 3; ++i) {
    base[i] = run_once(arms[i].variant, arms[i].policy, arms[i].interval,
                       nranks, scale, 0.0);
  }

  std::printf("%12s %14s %14s %14s\n", "faults/min", arms[0].name,
              arms[1].name, arms[2].name);
  for (const double rate : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    std::printf("%12.2f", rate);
    for (int i = 0; i < 3; ++i) {
      const double t = rate == 0.0
                           ? base[i]
                           : run_once(arms[i].variant, arms[i].policy,
                                      arms[i].interval, nranks, scale, rate);
      if (t < 0) {
        std::printf(" %14s", "no progress");
      } else {
        std::printf(" %13.0f%%", 100.0 * t / base[i]);
      }
    }
    std::printf("\n");
  }
}

void el_failover_demo() {
  std::printf("\nEL-shard failover: 8 ranks, 2 shards; shard 0 dies at 15 ms,"
              "\nshard 1 mounts its log and absorbs its ranks; re-homed rank 2"
              "\nis killed at 60%% of the reference run.\n\n");
  const scenario::RunResult r = scenario::run_spec(
      scenario::ScenarioBuilder("el_failover_demo")
          .variant("vcausal:el")
          .nranks(8)
          .el_shards(2)
          .checkpoint(ckpt::Policy::kRoundRobin, 30 * sim::kMillisecond)
          .random_then_ring(12, 12, /*wseed=*/11, /*bytes=*/2048)
          .crash_el_at(15 * sim::kMillisecond, 0)
          .el_failover(fault::ElFailover::kReassign, 10 * sim::kMillisecond)
          .midrun_fault(/*rank=*/2, /*frac=*/0.6)
          .build());
  if (!r.completed) {
    std::printf("run did not complete\n");
    return;
  }
  std::printf("completed: %.3f s simulated (reference %.3f s), "
              "EL crashes %llu, failovers %llu, recovered exact: %s\n",
              r.sim_seconds(), sim::to_sec(r.reference_time),
              static_cast<unsigned long long>(r.report.fault_counts.el_crashes),
              static_cast<unsigned long long>(r.report.fault_counts.el_failovers),
              r.recovered_exact ? "yes" : "NO");
  std::printf("\n%6s %12s %12s %12s %12s %12s %8s\n", "rank", "detect (ms)",
              "image (ms)", "collect (ms)", "replay (ms)", "total (ms)",
              "events");
  for (const fault::RecoveryRecord& rec : r.report.recoveries) {
    if (!rec.complete()) continue;
    std::printf("%6d %12.3f %12.3f %12.3f %12.3f %12.3f %8llu\n", rec.rank,
                sim::to_ms(rec.detect_ns()), sim::to_ms(rec.image_ns()),
                sim::to_ms(rec.collect_ns()), sim::to_ms(rec.replay_ns()),
                sim::to_ms(rec.total_ns()),
                static_cast<unsigned long long>(rec.replay_events));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 9;
  const double scale = argc > 2 ? std::atof(argv[2]) : 8.0;
  if (!workloads::nas_valid_nranks(workloads::NasKernel::kBT, nranks)) {
    std::fprintf(stderr, "BT needs a square rank count\n");
    return 2;
  }
  std::printf("fault campaign: BT-like, %d ranks, scale %.1f\n\n", nranks, scale);
  rate_sweep(nranks, scale);
  el_failover_demo();
  return 0;
}
