// Fault-injection campaign: sweep fault frequency and compare protocols —
// the Fig. 1 experiment as a user-facing tool.
//
//   $ ./fault_campaign [nranks] [scale]
//
// Runs a BT-like workload under coordinated checkpointing, pessimistic and
// causal message logging at increasing fault rates and prints slowdowns.
#include <cstdio>
#include <cstdlib>

#include "runtime/cluster.hpp"
#include "workloads/nas.hpp"

using namespace mpiv;

namespace {

double run_once(runtime::ProtocolKind kind, int nranks, double scale,
                double faults_per_minute) {
  runtime::ClusterConfig cfg;
  cfg.nranks = nranks;
  cfg.protocol = kind;
  cfg.strategy = causal::StrategyKind::kManetho;
  cfg.faults_per_minute = faults_per_minute;
  if (kind == runtime::ProtocolKind::kCoordinated) {
    cfg.ckpt_policy = ckpt::Policy::kAllAtOnce;
    cfg.ckpt_interval = 60 * sim::kSecond;
  } else {
    cfg.ckpt_policy = ckpt::Policy::kRoundRobin;
    cfg.ckpt_interval = std::max<sim::Time>(1, 60 * sim::kSecond / nranks);
  }
  cfg.max_sim_time = 3600LL * sim::kSecond;
  workloads::NasConfig ncfg{workloads::NasKernel::kBT, workloads::NasClass::kA,
                            nranks, scale};
  auto result = std::make_shared<workloads::ChecksumResult>(nranks);
  runtime::Cluster cluster(cfg);
  runtime::ClusterReport rep = cluster.run(workloads::make_nas_app(ncfg, result));
  return rep.completed ? sim::to_sec(rep.completion_time) : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const int nranks = argc > 1 ? std::atoi(argv[1]) : 9;
  const double scale = argc > 2 ? std::atof(argv[2]) : 8.0;
  if (!workloads::nas_valid_nranks(workloads::NasKernel::kBT, nranks)) {
    std::fprintf(stderr, "BT needs a square rank count\n");
    return 2;
  }
  std::printf("fault campaign: BT-like, %d ranks, scale %.1f\n\n", nranks, scale);
  const runtime::ProtocolKind kinds[] = {runtime::ProtocolKind::kCoordinated,
                                         runtime::ProtocolKind::kPessimistic,
                                         runtime::ProtocolKind::kCausal};
  const char* names[] = {"coordinated", "pessimistic", "causal"};
  double base[3];
  for (int i = 0; i < 3; ++i) base[i] = run_once(kinds[i], nranks, scale, 0.0);

  std::printf("%12s %14s %14s %14s\n", "faults/min", names[0], names[1], names[2]);
  for (const double rate : {0.0, 0.25, 0.5, 1.0, 2.0}) {
    std::printf("%12.2f", rate);
    for (int i = 0; i < 3; ++i) {
      const double t = rate == 0.0 ? base[i] : run_once(kinds[i], nranks, scale, rate);
      if (t < 0) {
        std::printf(" %14s", "no progress");
      } else {
        std::printf(" %13.0f%%", 100.0 * t / base[i]);
      }
    }
    std::printf("\n");
  }
  return 0;
}
