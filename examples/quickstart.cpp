// Quickstart: an 8-rank ring application under causal message logging with
// an Event Logger, one injected crash, and verified recovery.
//
//   $ ./quickstart
//
// Walks through the full life of a fault-tolerant MPI run: launch, an
// uncoordinated checkpoint wave, a crash of rank 3 mid-run, determinant
// collection from the Event Logger and the survivors, replay, and a final
// checksum comparison against the fault-free execution.
#include <cstdio>

#include "runtime/cluster.hpp"
#include "workloads/apps.hpp"

using namespace mpiv;

int main() {
  std::printf("MPIV-EL quickstart: 8-rank ring, Vcausal + Event Logger\n");
  std::printf("======================================================\n\n");

  runtime::ClusterConfig cfg;
  cfg.nranks = 8;
  cfg.protocol = runtime::ProtocolKind::kCausal;
  cfg.strategy = causal::StrategyKind::kVcausal;
  cfg.event_logger = true;
  cfg.ckpt_policy = ckpt::Policy::kRoundRobin;
  cfg.ckpt_interval = 75 * sim::kMillisecond;

  // 1. Fault-free reference run.
  auto ref_result = std::make_shared<workloads::ChecksumResult>(cfg.nranks);
  sim::Time ref_time;
  {
    runtime::Cluster cluster(cfg);
    runtime::ClusterReport rep =
        cluster.run(workloads::make_ring_app(60, 4096, ref_result));
    ref_time = rep.completion_time;
    std::printf("fault-free run: %.1f ms, %llu checkpoints stored\n",
                sim::to_ms(rep.completion_time),
                static_cast<unsigned long long>(
                    cluster.checkpoint_server().stores_completed()));
  }

  // 2. Same run, but rank 3 is killed halfway through.
  cfg.faults.push_back(runtime::FaultSpec{ref_time / 2, 3});
  auto result = std::make_shared<workloads::ChecksumResult>(cfg.nranks);
  runtime::Cluster cluster(cfg);
  runtime::ClusterReport rep =
      cluster.run(workloads::make_ring_app(60, 4096, result));

  std::printf("faulty run:     %.1f ms, %llu fault(s) injected\n",
              sim::to_ms(rep.completion_time),
              static_cast<unsigned long long>(rep.faults_injected));
  const ftapi::RankStats& r3 = rep.rank_stats[3];
  std::printf("rank 3 recovery: %llu determinants replayed, collected in %.2f ms "
              "(total restart %.2f ms)\n",
              static_cast<unsigned long long>(r3.recovery_events),
              sim::to_ms(r3.recovery_collect_time),
              sim::to_ms(r3.recovery_total_time));

  // 3. The acid test: the recovered execution produced the exact results of
  // the fault-free one (the ring checksum is order-sensitive).
  const bool identical = ref_result->checksums == result->checksums;
  std::printf("\nchecksums identical to fault-free run: %s\n",
              identical ? "YES" : "NO (BUG!)");
  std::printf("slowdown: %.1f%%\n",
              100.0 * static_cast<double>(rep.completion_time) /
                  static_cast<double>(ref_time));
  return identical ? 0 : 1;
}
