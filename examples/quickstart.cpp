// Quickstart: an 8-rank ring application under causal message logging with
// an Event Logger, one injected crash, and verified recovery.
//
//   $ ./quickstart            (or: mpiv_run scenarios/quickstart.scn)
//
// Walks through the full life of a fault-tolerant MPI run: launch, an
// uncoordinated checkpoint wave, a crash of rank 3 mid-run, determinant
// collection from the Event Logger and the survivors, replay, and a final
// checksum comparison against the fault-free execution. The whole
// experiment is one declarative scenario; the runner's midrun-fault mode
// executes the fault-free reference and the faulty run back to back.
#include <cstdio>

#include "scenario/runner.hpp"

using namespace mpiv;

int main() {
  std::printf("MPIV-EL quickstart: 8-rank ring, Vcausal + Event Logger\n");
  std::printf("======================================================\n\n");

  const scenario::ScenarioSpec spec =
      scenario::ScenarioBuilder("quickstart")
          .variant("vcausal:el")
          .nranks(8)
          .checkpoint(ckpt::Policy::kRoundRobin, 75 * sim::kMillisecond)
          .midrun_fault(/*rank=*/3)
          .ring(/*laps=*/60, /*token_bytes=*/4096)
          .build();
  const scenario::RunResult r = scenario::run_spec(spec);

  std::printf("fault-free run: %.1f ms\n", sim::to_ms(r.reference_time));
  std::printf("faulty run:     %.1f ms, %llu fault(s) injected\n",
              sim::to_ms(r.report.completion_time),
              static_cast<unsigned long long>(r.report.faults_injected));
  const ftapi::RankStats& r3 = r.report.rank_stats[3];
  std::printf("rank 3 recovery: %llu determinants replayed, collected in %.2f ms "
              "(total restart %.2f ms)\n",
              static_cast<unsigned long long>(r3.recovery_events),
              sim::to_ms(r3.recovery_collect_time),
              sim::to_ms(r3.recovery_total_time));

  // The acid test: the recovered execution produced the exact results of
  // the fault-free one (the ring checksum is order-sensitive).
  std::printf("\nchecksums identical to fault-free run: %s\n",
              r.recovered_exact ? "YES" : "NO (BUG!)");
  std::printf("slowdown: %.1f%%\n",
              100.0 * static_cast<double>(r.report.completion_time) /
                  static_cast<double>(r.reference_time));
  return r.recovered_exact ? 0 : 1;
}
