// NetPIPE-style CLI: measure ping-pong latency/bandwidth for any protocol
// variant.
//
//   $ ./netpipe_cli [p4|vdummy|vcausal|manetho|logon] [el|noel] [max_kb]
//
// Mirrors the paper's Fig. 6 experiments interactively. Variant names are
// resolved through the scenario registries, so anything `mpiv_run --list`
// prints works here too.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/runner.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  std::string variant = argc > 1 ? argv[1] : "vcausal";
  const bool el = argc > 2 ? std::strcmp(argv[2], "el") == 0 : true;
  const std::uint64_t max_kb = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1024;
  if (variant != "p4" && variant != "vdummy" && variant != "pessimistic" &&
      variant != "coordinated" && variant.find(':') == std::string::npos) {
    variant += el ? ":el" : ":noel";
  }

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 1; s <= max_kb * 1024; s *= 2) sizes.push_back(s);

  scenario::RunResult r;
  try {
    r = scenario::run_spec(scenario::ScenarioBuilder("netpipe")
                               .variant(variant)
                               .nranks(2)
                               .pingpong(sizes, /*reps=*/100)
                               .build());
  } catch (const scenario::SpecError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("protocol: %s\n\n", r.protocol_label.c_str());
  if (!r.completed) {
    std::fprintf(stderr, "run did not complete\n");
    return 1;
  }
  std::printf("%12s %14s %14s\n", "bytes", "latency (us)", "bw (Mb/s)");
  for (const auto& p : r.pingpong.points) {
    std::printf("%12llu %14.2f %14.2f\n",
                static_cast<unsigned long long>(p.bytes), p.latency_us,
                p.bandwidth_mbps);
  }
  const ftapi::RankStats t = r.report.totals();
  if (t.pb_events_sent > 0 || t.pb_bytes_sent > 0) {
    std::printf("\npiggyback: %llu events, %llu bytes over %llu messages "
                "(%llu empty)\n",
                static_cast<unsigned long long>(t.pb_events_sent),
                static_cast<unsigned long long>(t.pb_bytes_sent),
                static_cast<unsigned long long>(t.app_msgs_sent),
                static_cast<unsigned long long>(t.pb_empty_msgs));
  }
  return 0;
}
