// NetPIPE-style CLI: measure ping-pong latency/bandwidth for any protocol
// variant.
//
//   $ ./netpipe_cli [p4|vdummy|vcausal|manetho|logon] [el|noel] [max_kb]
//
// Mirrors the paper's Fig. 6 experiments interactively.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/cluster.hpp"
#include "workloads/apps.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  const char* proto = argc > 1 ? argv[1] : "vcausal";
  const bool el = argc > 2 ? std::strcmp(argv[2], "el") == 0 : true;
  const std::uint64_t max_kb = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1024;

  runtime::ClusterConfig cfg;
  cfg.nranks = 2;
  if (std::strcmp(proto, "p4") == 0) {
    cfg.protocol = runtime::ProtocolKind::kP4;
  } else if (std::strcmp(proto, "vdummy") == 0) {
    cfg.protocol = runtime::ProtocolKind::kVdummy;
  } else {
    cfg.protocol = runtime::ProtocolKind::kCausal;
    cfg.event_logger = el;
    if (std::strcmp(proto, "manetho") == 0) {
      cfg.strategy = causal::StrategyKind::kManetho;
    } else if (std::strcmp(proto, "logon") == 0) {
      cfg.strategy = causal::StrategyKind::kLogOn;
    } else {
      cfg.strategy = causal::StrategyKind::kVcausal;
    }
  }

  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 1; s <= max_kb * 1024; s *= 2) sizes.push_back(s);

  auto result = std::make_shared<workloads::PingPongResult>();
  runtime::Cluster cluster(cfg);
  std::printf("protocol: %s\n\n", cluster.protocol_label().c_str());
  runtime::ClusterReport rep =
      cluster.run(workloads::make_pingpong_app(sizes, 100, result));
  if (!rep.completed) {
    std::fprintf(stderr, "run did not complete\n");
    return 1;
  }
  std::printf("%12s %14s %14s\n", "bytes", "latency (us)", "bw (Mb/s)");
  for (const auto& p : result->points) {
    std::printf("%12llu %14.2f %14.2f\n",
                static_cast<unsigned long long>(p.bytes), p.latency_us,
                p.bandwidth_mbps);
  }
  const ftapi::RankStats t = rep.totals();
  if (cfg.protocol == runtime::ProtocolKind::kCausal) {
    std::printf("\npiggyback: %llu events, %llu bytes over %llu messages "
                "(%llu empty)\n",
                static_cast<unsigned long long>(t.pb_events_sent),
                static_cast<unsigned long long>(t.pb_bytes_sent),
                static_cast<unsigned long long>(t.app_msgs_sent),
                static_cast<unsigned long long>(t.pb_empty_msgs));
  }
  return 0;
}
