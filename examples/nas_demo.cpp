// NAS kernel demo: run any kernel/class/rank-count under any protocol and
// print performance plus protocol statistics.
//
//   $ ./nas_demo [bt|cg|lu|ft|mg|sp] [S|W|A|B] [nranks]
//               [p4|vdummy|vcausal|manetho|logon|pessimistic|coordinated]
//               [el|noel] [scale]
//
// e.g.   ./nas_demo lu A 16 manetho noel 0.12
//
// Everything is resolved through the scenario registries; invalid kernel,
// class, variant or rank-count combinations come back as SpecError /
// skip reasons instead of hand-rolled parsing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "scenario/runner.hpp"

using namespace mpiv;

int main(int argc, char** argv) {
  const std::string kernel = argc > 1 ? argv[1] : "cg";
  const std::string klass = argc > 2 ? argv[2] : "A";
  const int nranks = argc > 3 ? std::atoi(argv[3]) : 4;
  std::string variant = argc > 4 ? argv[4] : "vcausal";
  const bool el = argc > 5 ? std::strcmp(argv[5], "el") == 0 : true;
  const double scale = argc > 6 ? std::atof(argv[6]) : 1.0;
  if (variant != "p4" && variant != "vdummy" && variant != "pessimistic" &&
      variant != "coordinated" && variant.find(':') == std::string::npos) {
    variant += el ? ":el" : ":noel";
  }

  scenario::RunResult r;
  try {
    scenario::ScenarioBuilder b("nas_demo");
    b.variant(variant)
        .nranks(nranks)
        .workload("nas")
        .wparam("kernel", kernel)
        .wparam("class", klass)
        .wparam("scale", scale);
    r = scenario::run_spec(b.build());
  } catch (const scenario::SpecError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::printf("%s class %s on %d ranks under %s (scale %.2f)\n", kernel.c_str(),
              klass.c_str(), nranks, r.protocol_label.c_str(), scale);
  if (!r.completed) {
    std::fprintf(stderr, "run did not complete\n");
    return 1;
  }
  const ftapi::RankStats t = r.report.totals();
  std::printf("\ntime:           %.3f s (simulated)\n", r.sim_seconds());
  std::printf("performance:    %.1f Mop/s total\n", r.mops());
  std::printf("messages:       %llu (%.1f MB application data)\n",
              static_cast<unsigned long long>(t.app_msgs_sent),
              static_cast<double>(t.app_bytes_sent) / 1e6);
  if (t.pb_events_sent > 0) {
    std::printf("piggyback:      %llu events, %.3f%% of app bytes\n",
                static_cast<unsigned long long>(t.pb_events_sent),
                r.report.piggyback_pct());
    std::printf("pb cpu:         %.4f s send, %.4f s recv\n",
                sim::to_sec(t.pb_send_cpu), sim::to_sec(t.pb_recv_cpu));
    if (r.report.el_stats.events_stored > 0) {
      std::printf("EL:             %llu events stored, mean ack %.1f us\n",
                  static_cast<unsigned long long>(r.report.el_stats.events_stored),
                  t.el_ack_latency_us.mean());
    }
  }
  return 0;
}
