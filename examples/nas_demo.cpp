// NAS kernel demo: run any kernel/class/rank-count under any protocol and
// print performance plus protocol statistics.
//
//   $ ./nas_demo [bt|cg|lu|ft|mg|sp] [S|W|A|B] [nranks]
//               [p4|vdummy|vcausal|manetho|logon|pessimistic|coordinated]
//               [el|noel] [scale]
//
// e.g.   ./nas_demo lu A 16 manetho noel 0.12
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runtime/cluster.hpp"
#include "workloads/nas.hpp"

using namespace mpiv;

namespace {
workloads::NasKernel parse_kernel(const char* s) {
  if (!std::strcmp(s, "bt")) return workloads::NasKernel::kBT;
  if (!std::strcmp(s, "cg")) return workloads::NasKernel::kCG;
  if (!std::strcmp(s, "lu")) return workloads::NasKernel::kLU;
  if (!std::strcmp(s, "ft")) return workloads::NasKernel::kFT;
  if (!std::strcmp(s, "mg")) return workloads::NasKernel::kMG;
  if (!std::strcmp(s, "sp")) return workloads::NasKernel::kSP;
  std::fprintf(stderr, "unknown kernel '%s'\n", s);
  std::exit(2);
}
workloads::NasClass parse_class(const char* s) {
  switch (s[0]) {
    case 'S': return workloads::NasClass::kS;
    case 'W': return workloads::NasClass::kW;
    case 'A': return workloads::NasClass::kA;
    case 'B': return workloads::NasClass::kB;
  }
  std::fprintf(stderr, "unknown class '%s'\n", s);
  std::exit(2);
}
}  // namespace

int main(int argc, char** argv) {
  workloads::NasConfig ncfg;
  ncfg.kernel = argc > 1 ? parse_kernel(argv[1]) : workloads::NasKernel::kCG;
  ncfg.klass = argc > 2 ? parse_class(argv[2]) : workloads::NasClass::kA;
  ncfg.nranks = argc > 3 ? std::atoi(argv[3]) : 4;
  const char* proto = argc > 4 ? argv[4] : "vcausal";
  const bool el = argc > 5 ? std::strcmp(argv[5], "el") == 0 : true;
  ncfg.scale = argc > 6 ? std::atof(argv[6]) : 1.0;

  if (!workloads::nas_valid_nranks(ncfg.kernel, ncfg.nranks)) {
    std::fprintf(stderr, "%s does not support %d ranks (BT/SP: squares; "
                         "others: powers of two)\n",
                 workloads::nas_kernel_name(ncfg.kernel), ncfg.nranks);
    return 2;
  }

  runtime::ClusterConfig cfg;
  cfg.nranks = ncfg.nranks;
  cfg.event_logger = el;
  if (!std::strcmp(proto, "p4")) cfg.protocol = runtime::ProtocolKind::kP4;
  else if (!std::strcmp(proto, "vdummy")) cfg.protocol = runtime::ProtocolKind::kVdummy;
  else if (!std::strcmp(proto, "pessimistic")) cfg.protocol = runtime::ProtocolKind::kPessimistic;
  else if (!std::strcmp(proto, "coordinated")) cfg.protocol = runtime::ProtocolKind::kCoordinated;
  else {
    cfg.protocol = runtime::ProtocolKind::kCausal;
    if (!std::strcmp(proto, "manetho")) cfg.strategy = causal::StrategyKind::kManetho;
    else if (!std::strcmp(proto, "logon")) cfg.strategy = causal::StrategyKind::kLogOn;
  }

  auto result = std::make_shared<workloads::ChecksumResult>(ncfg.nranks);
  runtime::Cluster cluster(cfg);
  std::printf("%s class %c on %d ranks under %s (scale %.2f)\n",
              workloads::nas_kernel_name(ncfg.kernel),
              workloads::nas_class_letter(ncfg.klass), ncfg.nranks,
              cluster.protocol_label().c_str(), ncfg.scale);
  runtime::ClusterReport rep = cluster.run(workloads::make_nas_app(ncfg, result));
  if (!rep.completed) {
    std::fprintf(stderr, "run did not complete\n");
    return 1;
  }
  const double flops = workloads::nas_scaled_flops(ncfg);
  const ftapi::RankStats t = rep.totals();
  std::printf("\ntime:           %.3f s (simulated)\n", sim::to_sec(rep.completion_time));
  std::printf("performance:    %.1f Mop/s total\n",
              flops / sim::to_sec(rep.completion_time) / 1e6);
  std::printf("messages:       %llu (%.1f MB application data)\n",
              static_cast<unsigned long long>(t.app_msgs_sent),
              static_cast<double>(t.app_bytes_sent) / 1e6);
  if (cfg.protocol == runtime::ProtocolKind::kCausal) {
    std::printf("piggyback:      %llu events, %.3f%% of app bytes\n",
                static_cast<unsigned long long>(t.pb_events_sent),
                100.0 * static_cast<double>(t.pb_bytes_sent) /
                    static_cast<double>(t.app_bytes_sent));
    std::printf("pb cpu:         %.4f s send, %.4f s recv\n",
                sim::to_sec(t.pb_send_cpu), sim::to_sec(t.pb_recv_cpu));
    if (el) {
      std::printf("EL:             %llu events stored, mean ack %.1f us\n",
                  static_cast<unsigned long long>(rep.el_stats.events_stored),
                  t.el_ack_latency_us.mean());
    }
  }
  return 0;
}
