#!/usr/bin/env bash
# Perf harness for the simulator hot paths.
#
# Builds nothing itself — point it at a Release build tree. Runs
# bench_micro_hotpath (JSON-emitting micro benches + peak RSS) and
# wall-clock-times the paper-figure bench binaries, then assembles one JSON
# report. Run it before and after a hot-path change and check the two
# reports in side by side (repo root BENCH_hotpath.json holds a "before"
# and an "after" report for the latest overhaul).
#
# Usage: scripts/run_perf.sh [--quick] [--build-dir DIR] [--out FILE] [--label L]
#   --quick      micro benches at reduced scale, fast figure subset only
#                (CI perf-smoke uses this; crash = failure, regression = not)
#   --build-dir  build tree containing the bench binaries (default: build)
#   --out        output JSON path (default: BENCH_hotpath.json)
#   --label      free-form label recorded in the report (default: "run")
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
BUILD_DIR=build
OUT=BENCH_hotpath.json
LABEL=run
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) QUICK=1 ;;
    --build-dir) BUILD_DIR=$2; shift ;;
    --out) OUT=$2; shift ;;
    --label) LABEL=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

if [[ ! -x "$BUILD_DIR/bench_micro_hotpath" ]]; then
  echo "error: $BUILD_DIR/bench_micro_hotpath not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# Fast subset for --quick (CI smoke); the full list is every figure/ablation
# bench that exists in the build tree.
QUICK_FIGS=(bench_fig6a_latency bench_fig6b_bandwidth bench_ablation_el_latency
            bench_ablation_ckpt_sched)
if [[ $QUICK -eq 1 ]]; then
  FIGS=("${QUICK_FIGS[@]}")
  MICRO_FLAGS=(--quick)
else
  FIGS=()
  for f in "$BUILD_DIR"/bench_fig* "$BUILD_DIR"/bench_ablation_*; do
    [[ -x $f ]] && FIGS+=("$(basename "$f")")
  done
  MICRO_FLAGS=()
fi

MICRO_JSON=$(mktemp)
SCN_JSON=$(mktemp)
trap 'rm -f "$MICRO_JSON" "$SCN_JSON"' EXIT

# mpiv_run exits 0 on a clean grid, 3 on a degraded-but-complete report
# (abandoned/failed points — chaos_soak abandons corners by design). Both
# produce valid JSON; only other exits count as crashes here.
run_ok() {
  local rc=0
  "$@" || rc=$?
  [[ $rc -eq 0 || $rc -eq 3 ]]
}

echo "== micro hot-path benches =="
"$BUILD_DIR/bench_micro_hotpath" "${MICRO_FLAGS[@]}" --json "$MICRO_JSON"

# Scenario driver timing: every bundled scenario in quick mode through
# mpiv_run (wall clock per file; the JSON reports themselves are the
# scenario-smoke job's concern).
SCN_ROWS=""
if [[ -x "$BUILD_DIR/mpiv_run" ]]; then
  echo "== scenario driver (quick) =="
  for scn in scenarios/*.scn; do
    name=$(basename "$scn" .scn)
    start=$(date +%s%N)
    if run_ok "$BUILD_DIR/mpiv_run" --quick --out "$SCN_JSON" "$scn" > /dev/null 2>&1; then
      status=ok
    else
      status=crash
    fi
    end=$(date +%s%N)
    ms=$(( (end - start) / 1000000 ))
    printf '%-32s %8s ms  %s\n' "$name" "$ms" "$status"
    [[ -n $SCN_ROWS ]] && SCN_ROWS+=$',\n'
    SCN_ROWS+="    {\"name\": \"$name\", \"wall_ms\": $ms, \"status\": \"$status\"}"
    if [[ $status == crash ]]; then
      echo "error: mpiv_run failed on $scn" >&2
      exit 1
    fi
  done
fi

# Fault-campaign phase artifact: run the EL-shard-crash scenario and embed
# its per-recovery phase breakdown (the Fig. 10 decomposition) in the
# report, so recovery-path timings ride the same history as the hot-path
# numbers.
FAULT_JSON=""
if [[ -x "$BUILD_DIR/mpiv_run" && -f scenarios/fault_campaign.scn ]]; then
  echo "== fault campaign (recovery phases) =="
  FC_TMP=$(mktemp)
  if run_ok "$BUILD_DIR/mpiv_run" --quick --out "$FC_TMP" scenarios/fault_campaign.scn > /dev/null 2>&1; then
    # Pull the recoveries arrays through grep (one line per run in our
    # emitter); fall back to the empty list if the shape ever changes.
    FAULT_JSON=$(grep -o '"recoveries": \[[^]]*\]' "$FC_TMP" | head -1 || true)
    [[ -n $FAULT_JSON ]] && echo "  ${FAULT_JSON}"
  else
    echo "error: mpiv_run failed on scenarios/fault_campaign.scn" >&2
    rm -f "$FC_TMP"
    exit 1
  fi
  rm -f "$FC_TMP"
fi

# Scale-probe metrics artifact: run the metrics-enabled nranks sweep and
# embed each point's EL object (ack latency mean/p50/p99 tails) so the
# EL-saturation curve rides the same perf history. The gauge time-series
# CSVs land next to the report for plotting.
SCALE_ROWS=""
if [[ -x "$BUILD_DIR/mpiv_run" && -f scenarios/scale_probe.scn ]]; then
  echo "== scale probe (EL ack tails, metrics sampler) =="
  SP_TMP=$(mktemp)
  METRICS_DIR="${OUT%.json}_metrics"
  mkdir -p "$METRICS_DIR"
  SP_FLAGS=(--set "metrics.dir=$METRICS_DIR")
  [[ $QUICK -eq 1 ]] && SP_FLAGS+=(--quick)
  if run_ok "$BUILD_DIR/mpiv_run" "${SP_FLAGS[@]}" --out "$SP_TMP" scenarios/scale_probe.scn > /dev/null 2>&1; then
    while IFS=$'\t' read -r label el; do
      echo "  $label  $el"
      [[ -n $SCALE_ROWS ]] && SCALE_ROWS+=$',\n'
      SCALE_ROWS+="    {\"label\": \"$label\", \"el\": $el}"
    done < <(paste <(grep -o '"label": "[^"]*"' "$SP_TMP" | sed 's/.*: "\(.*\)"/\1/') \
                   <(grep -o '"el": {[^}]*}' "$SP_TMP" | sed 's/"el": //'))
    echo "  gauge series CSVs in $METRICS_DIR/"
  else
    echo "error: mpiv_run failed on scenarios/scale_probe.scn" >&2
    rm -f "$SP_TMP"
    exit 1
  fi
  rm -f "$SP_TMP"
fi

echo "== figure benches =="
FIG_ROWS=""
for b in "${FIGS[@]}"; do
  if [[ ! -x "$BUILD_DIR/$b" ]]; then
    echo "skip $b (not built)"
    continue
  fi
  start=$(date +%s%N)
  if "$BUILD_DIR/$b" > /dev/null 2>&1; then
    status=ok
  else
    status=crash
  fi
  end=$(date +%s%N)
  ms=$(( (end - start) / 1000000 ))
  printf '%-32s %8s ms  %s\n' "$b" "$ms" "$status"
  [[ -n $FIG_ROWS ]] && FIG_ROWS+=$',\n'
  FIG_ROWS+="    {\"name\": \"$b\", \"wall_ms\": $ms, \"status\": \"$status\"}"
  if [[ $status == crash ]]; then
    echo "error: $b crashed" >&2
    exit 1
  fi
done

{
  echo "{"
  echo "  \"label\": \"$LABEL\","
  echo "  \"quick\": $QUICK,"
  echo "  \"figure_benches\": ["
  printf '%s\n' "$FIG_ROWS"
  echo "  ],"
  if [[ -n $SCN_ROWS ]]; then
    echo "  \"scenarios\": ["
    printf '%s\n' "$SCN_ROWS"
    echo "  ],"
  fi
  if [[ -n $FAULT_JSON ]]; then
    echo "  \"fault_campaign\": {${FAULT_JSON}},"
  fi
  if [[ -n $SCALE_ROWS ]]; then
    echo "  \"scale_probe\": ["
    printf '%s\n' "$SCALE_ROWS"
    echo "  ],"
  fi
  echo "  \"micro\":"
  sed 's/^/  /' "$MICRO_JSON"
  echo "}"
} > "$OUT"
echo "wrote $OUT"
