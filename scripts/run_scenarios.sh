#!/usr/bin/env bash
# Scenario smoke: executes every bundled scenario file through mpiv_run in
# quick mode and fails on parse/validation errors, crashes, or malformed
# JSON output. CI's scenario-smoke job runs this; it is also the fastest
# way to sanity-check the whole scenario surface locally.
#
# Usage: scripts/run_scenarios.sh [--build-dir DIR] [--out-dir DIR] [--full]
#                                 [--jobs N]
#   --build-dir  build tree containing mpiv_run (default: build)
#   --out-dir    where the per-scenario JSON reports land (default: temp dir)
#   --full       run without --quick (the real paper sweeps; slow)
#   --jobs       fan sweep points across N forked workers (default: 1);
#                reports are byte-identical either way — the equivalence
#                leg at the end pins that on every run
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT_DIR=""
QUICK=1
JOBS=1
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift ;;
    --out-dir) OUT_DIR=$2; shift ;;
    --full) QUICK=0 ;;
    --jobs) JOBS=$2; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

if [[ ! -x "$BUILD_DIR/mpiv_run" || ! -x "$BUILD_DIR/mpiv_trace" ||
      ! -x "$BUILD_DIR/mpiv_stat" ]]; then
  echo "error: $BUILD_DIR/mpiv_run, mpiv_trace or mpiv_stat not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j --target mpiv_run mpiv_trace mpiv_stat" >&2
  exit 1
fi

if [[ -z $OUT_DIR ]]; then
  OUT_DIR=$(mktemp -d)
  trap 'rm -rf "$OUT_DIR"' EXIT
fi
mkdir -p "$OUT_DIR"

# ${FLAGS[@]+...} keeps the empty-array expansion safe under set -u on
# bash < 4.4 (macOS stock 3.2).
FLAGS=(--jobs "$JOBS")
[[ $QUICK -eq 1 ]] && FLAGS+=(--quick)

# mpiv_run exits 0 on a clean grid and 3 on a degraded one (abandoned or
# failed points — chaos_soak abandons some corners by design). Both leave a
# complete, valid report; anything else is a crash.
run_ok() {
  local rc=0
  "$@" || rc=$?
  [[ $rc -eq 0 || $rc -eq 3 ]]
}

# JSON validation: python3 where available, otherwise the driver's own
# exit status plus a non-emptiness check.
validate_json() {
  if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$1" > /dev/null
  else
    [[ -s "$1" ]]
  fi
}

fail=0
for scn in scenarios/*.scn; do
  name=$(basename "$scn" .scn)
  out="$OUT_DIR/$name.json"
  start=$(date +%s%N)
  if run_ok "$BUILD_DIR/mpiv_run" ${FLAGS[@]+"${FLAGS[@]}"} --out "$out" "$scn" 2> "$OUT_DIR/$name.log"; then
    if validate_json "$out"; then
      status=ok
    else
      status=bad-json
      fail=1
    fi
  else
    status=error
    fail=1
  fi
  end=$(date +%s%N)
  printf '%-28s %8d ms  %s\n' "$name" $(( (end - start) / 1000000 )) "$status"
  if [[ $status != ok ]]; then
    sed 's/^/  | /' "$OUT_DIR/$name.log" >&2 || true
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "scenario smoke FAILED" >&2
  exit 1
fi

# Fault-campaign smoke: the EL-shard-crash scenario must have actually
# exercised the failover machinery — the report needs a failover, a complete
# per-phase recovery timeline, and an exact recovery against the fault-free
# reference. (The quick loop above already ran it; this checks the content.)
FC_JSON="$OUT_DIR/fault_campaign.json"
if [[ -f "$FC_JSON" ]]; then
  for marker in '"el_failovers": 1' '"detect_ms"' '"recovered_exact": true' '"complete": true'; do
    if ! grep -q "$marker" "$FC_JSON"; then
      echo "fault-campaign smoke FAILED: missing $marker in $FC_JSON" >&2
      exit 1
    fi
  done
  echo "fault-campaign smoke OK (failover + recovery timeline present)"
else
  echo "fault-campaign smoke FAILED: $FC_JSON missing" >&2
  exit 1
fi

# Trace smoke: mpiv_trace re-runs the shard-failover campaign with trace
# lanes and the reference twin on; it must localize the injected crash to
# rank 2 and find the post-recovery stream replay-equivalent (exit 0).
TRACE_OUT="$OUT_DIR/fault_campaign.trace.txt"
if "$BUILD_DIR/mpiv_trace" --quick scenarios/fault_campaign.scn \
    > "$TRACE_OUT" 2> "$OUT_DIR/fault_campaign.trace.log"; then
  for marker in 'victim: rank 2' 'replay-equivalent: yes'; do
    if ! grep -q "$marker" "$TRACE_OUT"; then
      echo "trace smoke FAILED: missing '$marker' in mpiv_trace output" >&2
      sed 's/^/  | /' "$TRACE_OUT" >&2
      exit 1
    fi
  done
  echo "trace smoke OK (victim localized, replay-equivalent)"
else
  echo "trace smoke FAILED: mpiv_trace exited $? on fault_campaign.scn" >&2
  sed 's/^/  | /' "$OUT_DIR/fault_campaign.trace.log" >&2
  exit 1
fi

# Chaos-soak aggregation: fold the per-point outcomes into a completion-
# probability table (rows = fault-rate pairs, columns = el_shards) and
# assert the two soak invariants: the outcome tally covers the whole sweep,
# and completion probability is non-decreasing in el_shards at fixed rates
# — the redundancy-buys-completion result the scenario exists to measure.
CS_JSON="$OUT_DIR/chaos_soak.json"
if [[ -f "$CS_JSON" ]]; then
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$CS_JSON" <<'EOF'
import collections, json, sys

rep = json.load(open(sys.argv[1]))
runs = rep["runs"]
tally = rep["outcomes"]
if tally["total"] != len(runs):
    sys.exit(f"chaos-soak FAILED: outcome tally {tally['total']} != {len(runs)} runs")

grid = collections.defaultdict(lambda: [0, 0])  # (rates, shards) -> [ok, n]
shards = set()
for r in runs:
    if r["outcome"] == "skipped":
        continue  # infeasible sweep corner: not a completion failure
    ax = r["axes"]
    key = (ax["faults.rank_rate"], ax["faults.daemon_rate"])
    sh = int(ax["el_shards"])
    shards.add(sh)
    grid[(key, sh)][1] += 1
    if r["outcome"] in ("completed", "recovered_exact"):
        grid[(key, sh)][0] += 1

cols = sorted(shards)
print("chaos-soak completion probability (completed or recovered_exact):")
print(f"  {'rank/min':>9} {'daemon/min':>11}" + "".join(f"  el_shards={s}" for s in cols))
failed = False
for key in sorted({k for (k, _) in grid}):
    # Cells with no (non-skipped) runs carry no signal: print a dash and
    # exclude them from the monotonicity check.
    row = []
    for s in cols:
        ok, n = grid[(key, s)]
        row.append(ok / n if n else None)
    cells = "".join(f"  {p:>11.2f}" if p is not None else f"  {'-':>11}"
                    for p in row)
    print(f"  {key[0]:>9} {key[1]:>11}{cells}")
    seen = [p for p in row if p is not None]
    if any(seen[i] > seen[i + 1] + 1e-9 for i in range(len(seen) - 1)):
        failed = True
        print(f"    ^ NOT non-decreasing in el_shards")
if failed:
    sys.exit("chaos-soak FAILED: completion probability decreased with redundancy")
print(f"chaos-soak OK ({tally['recovered_exact']} recovered_exact, "
      f"{tally['completed']} completed, {tally['abandoned']} abandoned "
      f"of {tally['total']})")
EOF
  else
    echo "chaos-soak aggregation skipped (no python3)"
  fi
else
  echo "chaos-soak FAILED: $CS_JSON missing" >&2
  exit 1
fi

# Split-brain reconciliation: every non-skipped sweep point must have cut a
# service group, suspected the stale shard, and healed back to ONE merged
# log — a complete reconcile record, no duplicate determinants surviving the
# merge (dup_dropped accounts for every resubmitted record the stale shard
# also stored), and recovered_exact wherever the reference twin ran.
SB_JSON="$OUT_DIR/split_brain.json"
if [[ -f "$SB_JSON" ]]; then
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$SB_JSON" <<'EOF'
import json, sys

rep = json.load(open(sys.argv[1]))
checked = dup_total = 0
for r in rep["runs"]:
    if r.get("skipped") or r["outcome"] == "skipped":
        continue
    checked += 1
    label = r["label"]
    fc = r["faults"]
    if fc["partitions"] < 1 or fc["el_suspects"] < 1 or fc["el_reconciles"] < 1:
        sys.exit(f"split-brain FAILED: {label}: no service cut/suspect/reconcile "
                 f"({fc['partitions']}/{fc['el_suspects']}/{fc['el_reconciles']})")
    recs = r.get("el_reconciles", [])
    if len(recs) != fc["el_reconciles"]:
        sys.exit(f"split-brain FAILED: {label}: {len(recs)} reconcile records "
                 f"for {fc['el_reconciles']} reconciles")
    resub = sum(s["el_dup_submissions"] for s in r.get("rank_stats", []))
    for rec in recs:
        if not rec["complete"]:
            sys.exit(f"split-brain FAILED: {label}: reconcile left incomplete")
        # Every heal-time drop is a record the split double-logged: the
        # successor can only drop what clients resubmitted to it.
        if rec["dup_dropped"] > resub:
            sys.exit(f"split-brain FAILED: {label}: dropped {rec['dup_dropped']} "
                     f"duplicates but only {resub} resubmissions were made")
        dup_total += rec["dup_dropped"]
    ref = r.get("reference")
    if ref is not None and not ref.get("recovered_exact", False):
        sys.exit(f"split-brain FAILED: {label}: not recovered_exact after merge")
if checked == 0:
    sys.exit("split-brain FAILED: every sweep point was skipped")
print(f"split-brain OK ({checked} points reconciled, "
      f"{dup_total} duplicate determinants dropped at heal)")
EOF
  else
    echo "split-brain aggregation skipped (no python3)"
  fi
else
  echo "split-brain FAILED: $SB_JSON missing" >&2
  exit 1
fi

# Split-brain trace smoke: mpiv_trace must name the first duplicated
# submission the merge dropped (creator rank + sequence number) and find the
# healed run replay-equivalent to its fault-free twin.
SB_TRACE="$OUT_DIR/split_brain.trace.txt"
if "$BUILD_DIR/mpiv_trace" --quick scenarios/split_brain.scn \
    > "$SB_TRACE" 2> "$OUT_DIR/split_brain.trace.log"; then
  for marker in 'first reconciled duplicate' 'replay-equivalent: yes'; do
    if ! grep -q "$marker" "$SB_TRACE"; then
      echo "split-brain trace FAILED: missing '$marker' in mpiv_trace output" >&2
      sed 's/^/  | /' "$SB_TRACE" >&2
      exit 1
    fi
  done
  echo "split-brain trace OK (first duplicate localized, replay-equivalent)"
else
  echo "split-brain trace FAILED: mpiv_trace exited $? on split_brain.scn" >&2
  sed 's/^/  | /' "$OUT_DIR/split_brain.trace.log" >&2
  exit 1
fi

# Family race: the five recovery-protocol families through one Poisson
# crash lineup. Per-point invariants: every non-skipped point classifies;
# replica points are crash-transparent (a complete promotion per crash and
# NO restart/replay recovery records); ulfm points carry a complete repair
# record per crash with the survivor count shrinking by exactly one each
# time. Then fold the grid into the per-family completion-probability /
# recovery-time table; a --full run re-emits it into docs/BENCHMARKS.md
# between the family-race markers (quick grids only print it).
FR_JSON="$OUT_DIR/family_race.json"
if [[ -f "$FR_JSON" ]]; then
  if command -v python3 > /dev/null 2>&1; then
    python3 - "$FR_JSON" "$QUICK" <<'EOF'
import collections, json, sys

rep = json.load(open(sys.argv[1]))
full = sys.argv[2] == "0"
NRANKS = 8  # [scenario] nranks in scenarios/family_race.scn

fams = {}  # variant -> aggregate, in sweep order
for r in rep["runs"]:
    if r.get("skipped") or r["outcome"] == "skipped":
        continue
    label = r["label"]
    out = r["outcome"]
    if out not in ("completed", "recovered_exact", "completed_shrunk",
                   "abandoned"):
        sys.exit(f"family-race FAILED: {label}: unclassified outcome '{out}'")
    variant = dict(r["axes"])["variant"]
    crashes = r["faults"]["rank_crashes"]
    recs = r.get("recoveries") or []
    repairs = r.get("repairs") or []
    proms = r.get("promotions") or []
    if variant == "replica":
        # Crash-transparent: the shadow takes over — any restart/replay
        # record means the hybrid fell back to logging machinery.
        if recs:
            sys.exit(f"family-race FAILED: {label}: replica recorded "
                     f"{len(recs)} restart/replay recoveries")
        if len(proms) != crashes:
            sys.exit(f"family-race FAILED: {label}: {crashes} crashes but "
                     f"{len(proms)} promotions")
        if out != "abandoned" and not all(p["complete"] for p in proms):
            sys.exit(f"family-race FAILED: {label}: incomplete promotion")
        times = [p["promote_ms"] for p in proms if p["complete"]]
    elif variant == "ulfm":
        if recs:
            sys.exit(f"family-race FAILED: {label}: ulfm recorded "
                     f"{len(recs)} restart/replay recoveries")
        if len(repairs) != crashes:
            sys.exit(f"family-race FAILED: {label}: {crashes} crashes but "
                     f"{len(repairs)} repair records")
        for i, rec in enumerate(repairs):
            if rec["survivors"] != NRANKS - 1 - i:
                sys.exit(f"family-race FAILED: {label}: repair {i} left "
                         f"{rec['survivors']} survivors, expected "
                         f"{NRANKS - 1 - i}")
            if out != "abandoned" and not rec["complete"]:
                sys.exit(f"family-race FAILED: {label}: repair of rank "
                         f"{rec['victim']} never closed")
        times = [rec["total_ms"] for rec in repairs if rec["complete"]]
    else:
        # Logging / coordinated: executed crashes must leave recovery records
        # (coordinated rolls back every rank, so there can be more than one
        # record per crash).
        if crashes and not recs and out != "abandoned":
            sys.exit(f"family-race FAILED: {label}: {crashes} crashes but "
                     f"no recovery records")
        times = [rec["total_ms"] for rec in recs if rec["complete"]]
    f = fams.setdefault(variant, {"n": 0, "done": 0, "crashes": 0,
                                  "times": []})
    f["n"] += 1
    f["crashes"] += crashes
    if out != "abandoned":
        f["done"] += 1
    f["times"] += times

if not fams:
    sys.exit("family-race FAILED: every sweep point was skipped")

rows = []
for variant, f in fams.items():
    mean = (f"{sum(f['times']) / len(f['times']):.2f}" if f["times"]
            else "—")
    rows.append((variant, f["n"], f["crashes"],
                 f"{f['done'] / f['n']:.2f}", mean))

print("family-race per-family results (completion probability, mean "
      "per-crash recovery/promotion/repair time):")
hdr = f"  {'family':<14} {'points':>6} {'crashes':>8} {'P(complete)':>12} {'mean rec (ms)':>14}"
print(hdr)
for v, n, c, p, m in rows:
    print(f"  {v:<14} {n:>6} {c:>8} {p:>12} {m:>14}")
print(f"family-race OK ({sum(f['n'] for f in fams.values())} points, "
      f"{len(fams)} families, every point classified)")

if full:
    path = "docs/BENCHMARKS.md"
    begin, end = "<!-- family-race:begin -->", "<!-- family-race:end -->"
    try:
        text = open(path).read()
    except OSError:
        sys.exit(0)
    if begin in text and end in text:
        table = ["| family | points | crashes | completion probability | mean recovery (ms) |",
                 "|---|---|---|---|---|"]
        table += [f"| `{v}` | {n} | {c} | {p} | {m} |" for v, n, c, p, m in rows]
        head, rest = text.split(begin, 1)
        _, tail = rest.split(end, 1)
        open(path, "w").write(head + begin + "\n" + "\n".join(table) + "\n"
                              + end + tail)
        print(f"family-race table re-emitted into {path}")
EOF
  else
    echo "family-race aggregation skipped (no python3)"
  fi
else
  echo "family-race FAILED: $FR_JSON missing" >&2
  exit 1
fi

# Metrics smoke: the scale probe ran with metrics.enabled in the loop
# above, so its report must carry the metrics object and the EL-ack tail
# percentiles. Then the determinism contract: a second identical-seed run
# diffed against the first through mpiv_stat must show zero drift (exit 0)
# — the simulator is deterministic, so any drift is a real change.
SP_JSON="$OUT_DIR/scale_probe.json"
if [[ ! -f "$SP_JSON" ]]; then
  echo "metrics smoke FAILED: $SP_JSON missing" >&2
  exit 1
fi
for marker in '"metrics":' '"p99_ack_us":' '"histograms":' '"series":'; do
  if ! grep -q "$marker" "$SP_JSON"; then
    echo "metrics smoke FAILED: missing $marker in $SP_JSON" >&2
    exit 1
  fi
done
SP_JSON2="$OUT_DIR/scale_probe.rerun.json"
if ! run_ok "$BUILD_DIR/mpiv_run" ${FLAGS[@]+"${FLAGS[@]}"} --out "$SP_JSON2" \
    scenarios/scale_probe.scn 2> "$OUT_DIR/scale_probe.rerun.log"; then
  echo "metrics smoke FAILED: scale_probe rerun crashed" >&2
  sed 's/^/  | /' "$OUT_DIR/scale_probe.rerun.log" >&2
  exit 1
fi
if DIFF_OUT=$("$BUILD_DIR/mpiv_stat" --diff "$SP_JSON" "$SP_JSON2"); then
  echo "metrics smoke OK ($(echo "$DIFF_OUT" | head -1); zero drift across reruns)"
else
  echo "metrics smoke FAILED: identical-seed reports drifted" >&2
  echo "$DIFF_OUT" | sed 's/^/  | /' >&2
  exit 1
fi

# Parallel-equivalence: the forked worker pool must be invisible in the
# report. Run the chaos grid serially and under --jobs 4 and require the
# two reports byte-identical (cmp) and drift-free (mpiv_stat --diff) —
# point ordering, goldens, tallies and all.
PE_SER="$OUT_DIR/chaos_soak.jobs1.json"
PE_PAR="$OUT_DIR/chaos_soak.jobs4.json"
for pe in "1:$PE_SER" "4:$PE_PAR"; do
  jobs="${pe%%:*}"; out="${pe#*:}"
  if ! run_ok "$BUILD_DIR/mpiv_run" --quick --jobs "$jobs" --out "$out" \
      scenarios/chaos_soak.scn 2> "$out.log"; then
    echo "parallel-equivalence FAILED: mpiv_run --jobs $jobs crashed" >&2
    sed 's/^/  | /' "$out.log" >&2
    exit 1
  fi
done
if ! cmp -s "$PE_SER" "$PE_PAR"; then
  echo "parallel-equivalence FAILED: --jobs 4 report differs from serial" >&2
  diff "$PE_SER" "$PE_PAR" | head -20 >&2 || true
  exit 1
fi
if DIFF_OUT=$("$BUILD_DIR/mpiv_stat" --diff "$PE_SER" "$PE_PAR"); then
  echo "parallel-equivalence OK (serial vs --jobs 4 byte-identical, zero drift)"
else
  echo "parallel-equivalence FAILED: mpiv_stat --diff reported drift" >&2
  echo "$DIFF_OUT" | sed 's/^/  | /' >&2
  exit 1
fi

echo "all scenarios OK (reports in $OUT_DIR)"
