#!/usr/bin/env bash
# Scenario smoke: executes every bundled scenario file through mpiv_run in
# quick mode and fails on parse/validation errors, crashes, or malformed
# JSON output. CI's scenario-smoke job runs this; it is also the fastest
# way to sanity-check the whole scenario surface locally.
#
# Usage: scripts/run_scenarios.sh [--build-dir DIR] [--out-dir DIR] [--full]
#   --build-dir  build tree containing mpiv_run (default: build)
#   --out-dir    where the per-scenario JSON reports land (default: temp dir)
#   --full       run without --quick (the real paper sweeps; slow)
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
OUT_DIR=""
QUICK=1
while [[ $# -gt 0 ]]; do
  case "$1" in
    --build-dir) BUILD_DIR=$2; shift ;;
    --out-dir) OUT_DIR=$2; shift ;;
    --full) QUICK=0 ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

if [[ ! -x "$BUILD_DIR/mpiv_run" ]]; then
  echo "error: $BUILD_DIR/mpiv_run not found — build first:" >&2
  echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j --target mpiv_run" >&2
  exit 1
fi

if [[ -z $OUT_DIR ]]; then
  OUT_DIR=$(mktemp -d)
  trap 'rm -rf "$OUT_DIR"' EXIT
fi
mkdir -p "$OUT_DIR"

# ${FLAGS[@]+...} keeps the empty-array expansion safe under set -u on
# bash < 4.4 (macOS stock 3.2).
FLAGS=()
[[ $QUICK -eq 1 ]] && FLAGS+=(--quick)

# JSON validation: python3 where available, otherwise the driver's own
# exit status plus a non-emptiness check.
validate_json() {
  if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$1" > /dev/null
  else
    [[ -s "$1" ]]
  fi
}

fail=0
for scn in scenarios/*.scn; do
  name=$(basename "$scn" .scn)
  out="$OUT_DIR/$name.json"
  start=$(date +%s%N)
  if "$BUILD_DIR/mpiv_run" ${FLAGS[@]+"${FLAGS[@]}"} --out "$out" "$scn" 2> "$OUT_DIR/$name.log"; then
    if validate_json "$out"; then
      status=ok
    else
      status=bad-json
      fail=1
    fi
  else
    status=error
    fail=1
  fi
  end=$(date +%s%N)
  printf '%-28s %8d ms  %s\n' "$name" $(( (end - start) / 1000000 )) "$status"
  if [[ $status != ok ]]; then
    sed 's/^/  | /' "$OUT_DIR/$name.log" >&2 || true
  fi
done

if [[ $fail -ne 0 ]]; then
  echo "scenario smoke FAILED" >&2
  exit 1
fi

# Fault-campaign smoke: the EL-shard-crash scenario must have actually
# exercised the failover machinery — the report needs a failover, a complete
# per-phase recovery timeline, and an exact recovery against the fault-free
# reference. (The quick loop above already ran it; this checks the content.)
FC_JSON="$OUT_DIR/fault_campaign.json"
if [[ -f "$FC_JSON" ]]; then
  for marker in '"el_failovers": 1' '"detect_ms"' '"recovered_exact": true' '"complete": true'; do
    if ! grep -q "$marker" "$FC_JSON"; then
      echo "fault-campaign smoke FAILED: missing $marker in $FC_JSON" >&2
      exit 1
    fi
  done
  echo "fault-campaign smoke OK (failover + recovery timeline present)"
else
  echo "fault-campaign smoke FAILED: $FC_JSON missing" >&2
  exit 1
fi

echo "all scenarios OK (reports in $OUT_DIR)"
