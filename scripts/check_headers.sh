#!/usr/bin/env sh
# Verifies that every header under src/ is self-contained: each must compile
# as the sole include of an empty TU. Catches headers that silently depend on
# what another TU happened to include first (the bug class fixed in
# src/coord/coordinated_protocol.hpp during build bring-up).
set -eu
cd "$(dirname "$0")/.."

CXX="${CXX:-g++}"
status=0
tmp="$(mktemp -t hdr_check_XXXXXX.cpp)"
trap 'rm -f "$tmp"' EXIT

for h in $(find src -name '*.hpp' | sort); do
  printf '#include "%s"\n' "${h#src/}" > "$tmp"
  if ! "$CXX" -std=c++20 -fsyntax-only -Isrc -Wall -Wextra "$tmp"; then
    echo "NOT SELF-CONTAINED: $h" >&2
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "all headers self-contained"
fi
exit "$status"
