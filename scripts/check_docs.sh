#!/usr/bin/env bash
# Docs hygiene: keeps docs/SCENARIOS.md from rotting against the parser.
#
#  1. Every `faults.*` key in the shared key table (src/scenario/spec.cpp,
#     between the BEGIN/END FAULT KEY TABLE markers — the same table the
#     parser dispatches from and `mpiv_run --list` prints) must appear in
#     docs/SCENARIOS.md as `key`.
#  2. Every other scenario/cost key the parser compares against
#     (key == "..." in spec.cpp) must appear in docs/SCENARIOS.md too.
#  3. Every relative markdown link in README.md and docs/*.md must point at
#     a file that exists.
#
# No build needed: CI's docs-check job runs this straight off the checkout.
set -euo pipefail

cd "$(dirname "$0")/.."

SPEC=src/scenario/spec.cpp
DOC=docs/SCENARIOS.md
fail=0

if [[ ! -f "$DOC" ]]; then
  echo "error: $DOC missing" >&2
  exit 1
fi

# --- 1. faults.* keys from the shared table --------------------------------
table=$(sed -n '/BEGIN FAULT KEY TABLE/,/END FAULT KEY TABLE/p' "$SPEC")
if [[ -z "$table" ]]; then
  echo "error: FAULT KEY TABLE markers not found in $SPEC" >&2
  exit 1
fi
fault_keys=$(echo "$table" | grep -oE '"faults\.[a-z_]+"' | tr -d '"' | sort -u)
if [[ -z "$fault_keys" ]]; then
  echo "error: no faults.* keys found in the table region of $SPEC" >&2
  exit 1
fi
for key in $fault_keys; do
  if ! grep -qF "\`$key\`" "$DOC"; then
    echo "MISSING: $key (fault key table) not documented in $DOC" >&2
    fail=1
  fi
done

# --- 2. scalar scenario + cost keys the parser dispatches on ---------------
scalar_keys=$(grep -oE 'key == "[a-z_0-9.]+"' "$SPEC" | sed 's/key == //; s/"//g' | sort -u)
for key in $scalar_keys; do
  case "$key" in
    faults.*) continue ;;  # covered above via the table
  esac
  if ! grep -qF "\`$key\`" "$DOC"; then
    echo "MISSING: scenario key $key not documented in $DOC" >&2
    fail=1
  fi
done

# --- 3. relative markdown links resolve ------------------------------------
for md in README.md docs/*.md; do
  dir=$(dirname "$md")
  # Extract (target) parts of [text](target) links, one per line.
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|\#*) continue ;;
    esac
    path=${target%%#*}  # drop an anchor suffix
    [[ -z "$path" ]] && continue
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "BROKEN LINK: $md -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed 's/^](//; s/)$//')
done

if [[ $fail -ne 0 ]]; then
  echo "docs check FAILED" >&2
  exit 1
fi
echo "docs check OK ($(echo "$fault_keys" | wc -l) fault keys, $(echo "$scalar_keys" | wc -w) scalar keys, links resolve)"
