// mpiv_trace: causal divergence localization for faulty runs.
//
// Re-runs a scenario with per-rank trace lanes forced on and the
// compare_reference twin enabled, then aligns the faulty stream against
// the fault-free reference per rank. A correct causal-logging recovery
// makes the two streams record-identical up to timestamps (the paper's
// replay guarantee); when they are not, the tool names the victim rank,
// the first divergent record, the first replayed reception after the
// crash, and the causal chain behind the divergence point reconstructed
// from the determinant records (the antecedence graph).
//
//   $ mpiv_trace --quick scenarios/fault_campaign.scn
//
// Output goes to stdout, progress to stderr. Exit status:
//   0  every analyzed point replay-equivalent
//   1  at least one point diverged
//   2  usage / parse / validation error
//   3  nothing to analyze (no faulty point produced both streams)
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "trace/divergence.hpp"
#include "trace/trace.hpp"

namespace {

using namespace mpiv;

void usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [options] <scenario.scn> [more.scn ...]\n"
               "  --quick          apply the scenario's [quick] overrides\n"
               "  --set key=value  override a scenario key (repeatable)\n"
               "  --seed N         override the seed\n"
               "  --capacity N     trace ring capacity per lane (default %u)\n"
               "  --max-chain N    causal chain depth to print (default 8)\n",
               argv0, trace::Config{}.capacity);
}

/// snprintf, not "r" + to_string: GCC 12 -Wrestrict false positive.
std::string rank_lane(int rank) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "r%d", rank);
  return buf;
}

/// Antecedence edges for one stream: (rank, rsn) -> (dep rank, dep rsn),
/// straight from the rank-side determinant records (code 0: peer =
/// dep_creator, seq = rsn, aux = dep_seq). dep rank -1 = no antecedent
/// (the reception did not causally depend on a prior delivery).
using ChainKey = std::pair<int, std::uint64_t>;

std::map<ChainKey, ChainKey> antecedence(const trace::Stream& s) {
  std::map<ChainKey, ChainKey> edges;
  for (const trace::StreamRecord& sr : s.records) {
    if (sr.rec.kind != trace::Kind::kDeterminant || sr.rec.code != 0) continue;
    if (sr.lane.size() < 2 || sr.lane[0] != 'r') continue;
    const int rank = std::atoi(sr.lane.c_str() + 1);
    edges[{rank, sr.rec.seq}] = {sr.rec.peer, sr.rec.aux};
  }
  return edges;
}

/// Timestamped reception index: (rank, rsn) -> the kRecvMatch record.
std::map<ChainKey, trace::Record> receptions(const trace::Stream& s) {
  std::map<ChainKey, trace::Record> idx;
  for (const trace::StreamRecord& sr : s.records) {
    if (sr.rec.kind != trace::Kind::kRecvMatch) continue;
    if (sr.lane.size() < 2 || sr.lane[0] != 'r') continue;
    const int rank = std::atoi(sr.lane.c_str() + 1);
    idx[{rank, sr.rec.seq}] = sr.rec;  // last occurrence (replay) wins
  }
  return idx;
}

void print_chain(const trace::Stream& s, int rank, std::uint64_t rsn,
                 int max_depth) {
  const std::map<ChainKey, ChainKey> edges = antecedence(s);
  const std::map<ChainKey, trace::Record> recvs = receptions(s);
  ChainKey cur{rank, rsn};
  for (int depth = 0; depth < max_depth; ++depth) {
    const auto rv = recvs.find(cur);
    if (rv != recvs.end()) {
      std::printf("    %s%s\n",
                  trace::format_record(rank_lane(cur.first), rv->second)
                      .c_str(),
                  depth == 0 ? "   <- divergence point" : "");
    } else {
      std::printf("    r%d rsn=%llu (reception not retained in ring)\n",
                  cur.first, static_cast<unsigned long long>(cur.second));
    }
    const auto e = edges.find(cur);
    if (e == edges.end()) {
      std::printf("    (no determinant retained for r%d rsn=%llu — chain "
                  "ends)\n",
                  cur.first, static_cast<unsigned long long>(cur.second));
      return;
    }
    if (e->second.first < 0) {
      std::printf("    (no causal antecedent — chain rooted)\n");
      return;
    }
    cur = e->second;
  }
  std::printf("    ... (chain truncated at depth %d)\n", max_depth);
}

/// Last EL stable watermark the victim saw before the crash (kElAck code 0
/// on its lane): how much of its reception history was safe when it died.
bool stable_before(const trace::Stream& s, int rank, sim::Time fault_at,
                   std::uint64_t* out) {
  bool found = false;
  for (const trace::Record& r : s.lane_records(rank_lane(rank))) {
    if (r.kind == trace::Kind::kElAck && r.code == 0 && r.t <= fault_at) {
      *out = r.seq;
      found = true;
    }
  }
  return found;
}

struct Tally {
  int analyzed = 0;
  int diverged = 0;
};

void analyze_point(const scenario::RunResult& r, int max_chain, Tally* tally) {
  std::printf("== %s ==\n", r.label.c_str());
  trace::Stream faulty;
  trace::Stream reference;
  try {
    faulty = trace::parse_stream(r.trace_dump);
    reference = trace::parse_stream(r.reference_trace_dump);
  } catch (const std::exception& e) {
    std::printf("  unparseable trace stream: %s\n", e.what());
    return;
  }
  int nranks = 0;
  for (const trace::LaneInfo& l : faulty.lanes) {
    if (l.name.size() >= 2 && l.name[0] == 'r' &&
        l.name[1] >= '0' && l.name[1] <= '9') {
      ++nranks;
    }
  }
  const trace::DivergenceReport rep =
      trace::compare_streams(faulty, reference, nranks);
  ++tally->analyzed;

  if (rep.victim >= 0) {
    std::printf("  victim: rank %d (crash at %.6f s)\n", rep.victim,
                sim::to_sec(rep.victim_fault_at));
    std::uint64_t stable = 0;
    if (stable_before(faulty, rep.victim, rep.victim_fault_at, &stable)) {
      std::printf("  stable watermark at crash: %llu receptions acked by the "
                  "EL\n",
                  static_cast<unsigned long long>(stable));
    }
    // The first reception the recovered incarnation re-delivered: where
    // forced replay started.
    for (const trace::Record& rec :
         faulty.lane_records(rank_lane(rep.victim))) {
      if (rec.kind == trace::Kind::kRecvMatch && rec.t > rep.victim_fault_at) {
        std::printf("  first replayed reception: %s\n",
                    trace::format_record(rank_lane(rep.victim), rec).c_str());
        break;
      }
    }
  } else {
    std::printf("  victim: none (no rank-crash record in the stream)\n");
  }

  // Split-brain localization: the first duplicate determinant the
  // heal-time merge dropped, straight from the successor shard's lane
  // (kRecovery/kPhaseDupDrop: peer = creator rank, seq = duplicated seq).
  std::uint64_t dup_total = 0;
  const trace::StreamRecord* first_dup = nullptr;
  for (const trace::StreamRecord& sr : faulty.records) {
    if (sr.rec.kind == trace::Kind::kRecovery &&
        sr.rec.code == trace::kPhaseDupDrop) {
      ++dup_total;
      if (first_dup == nullptr) first_dup = &sr;
    }
  }
  if (first_dup != nullptr) {
    std::printf("  first reconciled duplicate: creator rank %d seq %llu "
                "(dropped on lane %s at %.6f s; %llu duplicate(s) total)\n",
                first_dup->rec.peer,
                static_cast<unsigned long long>(first_dup->rec.seq),
                first_dup->lane.c_str(), sim::to_sec(first_dup->rec.t),
                static_cast<unsigned long long>(dup_total));
  }

  if (rep.equivalent) {
    std::printf("  replay-equivalent: yes — every rank's logical "
                "send/recv-match sequence matches the reference\n");
    return;
  }
  ++tally->diverged;
  std::printf("  replay-equivalent: NO\n");
  const trace::LaneDivergence* d = rep.first_divergent();
  if (d == nullptr) return;
  std::printf("  first divergent lane: %s (%s)\n", d->lane.c_str(),
              d->what.c_str());
  if (d->has_faulty) {
    std::printf("    faulty:    %s\n",
                trace::format_record(d->lane, d->faulty).c_str());
  }
  if (d->has_reference) {
    std::printf("    reference: %s\n",
                trace::format_record(d->lane, d->reference).c_str());
  }
  // The causal chain behind the faulty-side divergence point, from the
  // antecedence graph: which earlier deliveries forced this one.
  if (d->has_faulty && d->faulty.kind == trace::Kind::kRecvMatch &&
      d->lane.size() >= 2 && d->lane[0] == 'r') {
    std::printf("  causal chain (most recent first):\n");
    print_chain(faulty, std::atoi(d->lane.c_str() + 1), d->faulty.seq,
                max_chain);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int max_chain = 8;
  std::vector<std::string> overrides;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(a, "--set") == 0 && i + 1 < argc) {
      overrides.emplace_back(argv[++i]);
    } else if (std::strcmp(a, "--seed") == 0 && i + 1 < argc) {
      overrides.emplace_back(std::string("seed=") + argv[++i]);
    } else if (std::strcmp(a, "--capacity") == 0 && i + 1 < argc) {
      overrides.emplace_back(std::string("trace.capacity=") + argv[++i]);
    } else if (std::strcmp(a, "--max-chain") == 0 && i + 1 < argc) {
      max_chain = std::atoi(argv[++i]);
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(stdout, argv[0]);
      return 0;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      usage(stderr, argv[0]);
      return 2;
    } else {
      files.emplace_back(a);
    }
  }
  if (files.empty()) {
    usage(stderr, argv[0]);
    return 2;
  }

  Tally tally;
  try {
    for (const std::string& path : files) {
      scenario::ScenarioSpec spec = scenario::parse_scenario_file(path);
      if (!quick) spec.quick.clear();
      for (const std::string& kv : overrides) {
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          throw scenario::SpecError("--set expects key=value, got '" + kv +
                                    "'");
        }
        spec.quick.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
      }
      if (quick || !overrides.empty()) scenario::apply_quick(spec);
      // The tool's whole point: lanes on, reference twin on.
      spec.trace.enabled = true;
      spec.compare_reference = true;

      std::fprintf(stderr, "== %s (%s%s) ==\n", spec.name.c_str(),
                   path.c_str(), quick ? ", quick" : "");
      scenario::validate(spec);
      std::size_t done = 0;
      const std::vector<scenario::RunPoint> points = scenario::expand(spec);
      for (const scenario::RunPoint& p : points) {
        const scenario::RunResult r = scenario::run_point(p);
        ++done;
        std::fprintf(stderr, "  [%zu/%zu] %-40s %s\n", done, points.size(),
                     p.label.c_str(),
                     r.skipped ? "skipped"
                               : (r.completed ? "done" : "DID NOT COMPLETE"));
        if (r.skipped || r.trace_dump.empty() ||
            r.reference_trace_dump.empty()) {
          continue;
        }
        analyze_point(r, max_chain, &tally);
      }
    }
  } catch (const scenario::SpecError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (tally.analyzed == 0) {
    std::fprintf(stderr,
                 "nothing to analyze: no point produced both a faulty and a "
                 "reference trace stream\n");
    return 3;
  }
  std::printf("%d point(s) analyzed, %d diverged\n", tally.analyzed,
              tally.diverged);
  return tally.diverged > 0 ? 1 : 0;
}
