// mpiv_run: the scenario driver. Loads declarative experiment specs
// (scenarios/*.scn), expands their sweeps, runs every point on the
// simulated cluster and emits one machine-readable JSON report.
//
//   $ mpiv_run scenarios/fig6a.scn                 # JSON on stdout
//   $ mpiv_run --quick --out r.json scenarios/*.scn
//   $ mpiv_run --list                              # registry contents
//   $ mpiv_run --print scenarios/fig9.scn          # expanded matrix only
//
// Progress goes to stderr so stdout stays valid JSON. Exit status: 0 on
// success, 2 on usage/parse/validation errors, 3 when the report is
// degraded — some point ran but produced no result (`abandoned` hit
// max_sim_time, `failed` lost its worker) — so CI grids can't silently
// pass on a report full of holes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace {

using namespace mpiv;

void usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [options] <scenario.scn> [more.scn ...]\n"
               "  --quick          apply the scenario's [quick] overrides\n"
               "  --jobs N         fan sweep points across N forked workers\n"
               "                   (default: the scenario's runner.parallelism;\n"
               "                   the report is byte-identical to --jobs 1)\n"
               "  --out FILE       write the JSON report to FILE (default: stdout)\n"
               "  --set key=value  override a scenario key (repeatable)\n"
               "  --seed N         override the seed (replaces a seed sweep axis)\n"
               "  --print          print the expanded run matrix, run nothing\n"
               "  --list           list registered protocols/strategies/"
               "workloads and faults.* keys\n",
               argv0);
}

void list_registries() {
  std::printf("protocols ([ft] = fault tolerant):\n");
  for (const auto& [name, e] : scenario::protocols().entries()) {
    std::printf("  %-14s %-5s %s\n", name.c_str(),
                e.fault_tolerant ? "[ft]" : "", e.summary);
  }
  std::printf("strategies (variant names accept :el / :noel suffixes):\n");
  for (const auto& [name, e] : scenario::strategies().entries()) {
    std::printf("  %-14s %s — %s\n", name.c_str(), e.display, e.summary);
  }
  std::printf("workloads (accepted workload.* keys in parentheses):\n");
  for (const auto& [name, e] : scenario::workload_registry().entries()) {
    std::string params;
    for (const char* p : e.params) {
      params += params.empty() ? "workload." : ", workload.";
      params += p;
    }
    std::printf("  %-14s %s%s%s%s\n", name.c_str(), e.summary,
                params.empty() ? "" : " (", params.c_str(),
                params.empty() ? "" : ")");
  }
  // The [faults] key family straight from the parser's own table, so this
  // listing and docs/SCENARIOS.md cannot diverge from what .scn files
  // accept (scripts/check_docs.sh checks the docs side).
  std::printf("scenario [faults] keys (docs/SCENARIOS.md has the full "
              "reference):\n");
  for (const scenario::FaultKeyInfo& e : scenario::fault_key_table()) {
    std::printf("  %-27s %-40s %s\n", e.key, e.syntax, e.summary);
  }
  std::printf("scenario [metrics] keys (summaries in the JSON report, "
              "analyzed with mpiv_stat):\n");
  std::printf("  %-27s %-40s %s\n", "metrics.enabled", "bool",
              "aggregate metrics + gauge sampler (schedule-neutral)");
  std::printf("  %-27s %-40s %s\n", "metrics.sample_interval",
              "duration (default 1ms)",
              "virtual time between gauge snapshots");
  std::printf("  %-27s %-40s %s\n", "metrics.dir", "path",
              "write per-run time-series CSV files here");
}

/// --set uses quick-overlay semantics: replace a same-named sweep axis,
/// otherwise apply as a scalar setting.
void apply_override(scenario::ScenarioSpec& spec, const std::string& kv) {
  const std::size_t eq = kv.find('=');
  if (eq == std::string::npos) {
    throw scenario::SpecError("--set expects key=value, got '" + kv + "'");
  }
  spec.quick.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
}

void print_matrix(const scenario::ScenarioSpec& spec) {
  const std::vector<scenario::RunPoint> points = scenario::expand(spec);
  std::printf("scenario '%s': %zu run point(s)\n", spec.name.c_str(),
              points.size());
  for (const scenario::RunPoint& p : points) {
    std::printf("  %-44s %s%s\n", p.label.c_str(),
                p.skipped ? "SKIP: " : "", p.skip_reason.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool print_only = false;
  int jobs = 0;  // 0 = take runner.parallelism from each scenario
  const char* out_path = nullptr;
  std::vector<std::string> overrides;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(a, "--print") == 0) {
      print_only = true;
    } else if (std::strcmp(a, "--list") == 0) {
      list_registries();
      return 0;
    } else if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
      if (jobs < 1) {
        std::fprintf(stderr, "--jobs expects a positive worker count\n");
        return 2;
      }
    } else if (std::strcmp(a, "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(a, "--set") == 0 && i + 1 < argc) {
      overrides.emplace_back(argv[++i]);
    } else if (std::strcmp(a, "--seed") == 0 && i + 1 < argc) {
      // Sugar for --set seed=N: pins stochastic campaigns for exact
      // reproduction (and replaces a seed sweep axis when one exists).
      overrides.emplace_back(std::string("seed=") + argv[++i]);
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(stdout, argv[0]);
      return 0;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      usage(stderr, argv[0]);
      return 2;
    } else {
      files.emplace_back(a);
    }
  }
  if (files.empty()) {
    usage(stderr, argv[0]);
    return 2;
  }

  std::vector<scenario::RunSet> reports;
  try {
    for (const std::string& path : files) {
      scenario::ScenarioSpec spec = scenario::parse_scenario_file(path);
      if (!quick) spec.quick.clear();
      for (const std::string& kv : overrides) apply_override(spec, kv);
      if (quick || !overrides.empty()) scenario::apply_quick(spec);

      if (print_only) {
        print_matrix(spec);
        continue;
      }

      std::fprintf(stderr, "== %s (%s%s) ==\n", spec.name.c_str(),
                   path.c_str(), quick ? ", quick" : "");
      scenario::RunOptions opt;
      opt.quick = quick;
      opt.jobs = jobs;
      std::size_t done = 0;
      const std::size_t total = scenario::expand(spec).size();
      opt.on_result = [&done, total](const scenario::RunPoint& p,
                                     const scenario::RunResult& r) {
        ++done;
        if (r.skipped) {
          std::fprintf(stderr, "  [%zu/%zu] %-40s skipped (%s)\n", done, total,
                       p.label.c_str(), r.skip_reason.c_str());
        } else {
          std::fprintf(stderr, "  [%zu/%zu] %-40s %s, %.3f s simulated\n",
                       done, total, p.label.c_str(),
                       r.completed ? "done" : "DID NOT COMPLETE",
                       r.sim_seconds());
        }
      };
      scenario::RunSet set = scenario::run(spec, opt);
      set.origin = path;
      reports.push_back(std::move(set));
    }
  } catch (const scenario::SpecError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  if (print_only) return 0;

  const std::string json = reports.size() == 1 ? scenario::to_json(reports[0])
                                               : scenario::to_json(reports);
  if (out_path != nullptr) {
    FILE* f = std::fopen(out_path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write %s\n", out_path);
      return 2;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", out_path);
  } else {
    std::fwrite(json.data(), 1, json.size(), stdout);
  }
  // Degraded grids (a point abandoned its time budget or lost its worker)
  // exit 3: the report is complete and valid, but CI must look at it.
  for (const scenario::RunSet& set : reports) {
    if (set.tally().degraded()) {
      std::fprintf(stderr, "warning: %s has abandoned/failed points\n",
                   set.scenario.c_str());
      return 3;
    }
  }
  return 0;
}
