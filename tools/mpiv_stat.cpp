// mpiv_stat: analysis over mpiv_run JSON reports — the metrics companion
// to mpiv_trace's event forensics.
//
//   $ mpiv_stat report.json                   # per-run metric summary
//   $ mpiv_stat --top 5 report.json           # hottest ranks / EL shards
//   $ mpiv_stat --diff a.json b.json          # exact A/B comparison
//   $ mpiv_stat --diff a.json b.json --tol 0.02   # 2% per-metric tolerance
//
// --diff is the regression primitive: two identical-seed runs must report
// zero drift (the simulator is deterministic), so any drift is a real
// behavioural change. Exit status: 0 = ok / zero drift, 1 = drift found,
// 2 = usage or parse errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/stat.hpp"

namespace {

using namespace mpiv;

void usage(std::FILE* out, const char* argv0) {
  std::fprintf(out,
               "usage: %s [--top N] <report.json>\n"
               "       %s --diff <a.json> <b.json> [--tol FRACTION]\n"
               "  --top N       print the N hottest ranks/EL shards per run\n"
               "  --diff        compare two reports metric-by-metric\n"
               "  --tol FRAC    allowed relative drift per metric "
               "(default 0 = exact)\n",
               argv0, argv0);
}

metrics::Json load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream body;
  body << f.rdbuf();
  return metrics::parse_json(body.str());
}

/// Summary prefixes worth echoing per run, beyond the metrics.* families
/// (everything else in the flattened rows is per-record detail).
bool is_headline(const std::string& name) {
  static const char* kKeys[] = {
      "sim_time_s", "app_bytes",  "pb_bytes",        "pb_pct",
      "wire_bytes", "app_msgs",   "events_executed", "faults_injected",
      "el.mean_ack_us", "el.p50_ack_us", "el.p99_ack_us",
  };
  for (const char* k : kKeys) {
    if (name == k) return true;
  }
  return false;
}

void summarize(const std::vector<metrics::RunMetrics>& runs) {
  for (const metrics::RunMetrics& run : runs) {
    std::printf("== %s%s ==\n", run.label.c_str(),
                run.skipped ? " (skipped)" : "");
    if (run.skipped) continue;
    for (const auto& [name, value] : run.values) {
      if (is_headline(name)) std::printf("  %-34s %.6g\n", name.c_str(), value);
    }
    // Histogram summaries, one aligned row each: the flattened rows of one
    // histogram share the "metrics.histograms.<name>." prefix. Fields are
    // buffered per histogram because the flatten order is alphabetical, not
    // the header order.
    static const char* kFields[] = {"count", "mean", "p50", "p90", "p99",
                                    "max"};
    std::string current;
    double fields[6] = {};
    bool header_done = false;
    const auto flush = [&] {
      if (current.empty()) return;
      std::printf("  %-26s %8.0f %10.4g %10.4g %10.4g %10.4g %10.4g\n",
                  current.c_str(), fields[0], fields[1], fields[2], fields[3],
                  fields[4], fields[5]);
    };
    for (const auto& [name, value] : run.values) {
      const std::string pref = "metrics.histograms.";
      if (name.rfind(pref, 0) != 0) continue;
      const std::size_t dot = name.rfind('.');
      const std::string hist = name.substr(pref.size(), dot - pref.size());
      const std::string field = name.substr(dot + 1);
      if (hist != current) {
        if (!header_done) {
          std::printf("  %-26s %8s %10s %10s %10s %10s %10s\n", "histogram",
                      "count", "mean", "p50", "p90", "p99", "max");
          header_done = true;
        }
        flush();
        current = hist;
        for (double& f : fields) f = 0;
      }
      for (int i = 0; i < 6; ++i) {
        if (field == kFields[i]) fields[i] = value;
      }
    }
    flush();
    // Counters and gauges, name-sorted (the flatten order).
    for (const auto& [name, value] : run.values) {
      if (name.rfind("metrics.counters.", 0) == 0 ||
          name.rfind("metrics.gauges.", 0) == 0) {
        std::printf("  %-42s %.6g\n", name.c_str(), value);
      }
    }
  }
}

void print_top(const std::vector<metrics::RunMetrics>& runs, std::size_t n) {
  for (const metrics::RunMetrics& run : runs) {
    if (run.skipped) continue;
    std::printf("== %s: top %zu ranks/shards ==\n", run.label.c_str(), n);
    const std::vector<metrics::TopRow> rows = metrics::top_rows(run, n);
    if (rows.empty()) {
      std::printf("  (no per-rank/per-shard metrics — was metrics.enabled "
                  "on?)\n");
      continue;
    }
    for (const metrics::TopRow& row : rows) {
      std::printf("  %-8s %s = %.6g\n", row.entity.c_str(),
                  row.weight_metric.c_str(), row.weight);
      for (const auto& [detail, value] : row.details) {
        if (detail == row.weight_metric) continue;
        std::printf("           %-24s %.6g\n", detail.c_str(), value);
      }
    }
  }
}

int diff(const std::string& path_a, const std::string& path_b,
         double tolerance) {
  const metrics::Json a = load(path_a);
  const metrics::Json b = load(path_b);
  const metrics::DiffResult res = metrics::diff_reports(a, b, tolerance);
  std::printf("compared %zu run(s), %zu metric(s), tolerance %g\n",
              res.runs_compared, res.metrics_compared, tolerance);
  for (const std::string& label : res.unmatched_runs) {
    std::printf("  UNMATCHED RUN %s\n", label.c_str());
  }
  for (const metrics::DiffEntry& e : res.drifting) {
    if (e.missing_in != 0) {
      std::printf("  MISSING  %s / %s (absent in %s)\n", e.run.c_str(),
                  e.metric.c_str(), e.missing_in == 1 ? "A" : "B");
    } else {
      std::printf("  DRIFT    %s / %s: %.10g -> %.10g (%.3g%%)\n",
                  e.run.c_str(), e.metric.c_str(), e.a, e.b, e.drift * 100.0);
    }
  }
  if (res.clean()) {
    std::printf("zero drift\n");
    return 0;
  }
  std::printf("%zu drifting metric(s), %zu unmatched run(s)\n",
              res.drifting.size(), res.unmatched_runs.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool do_diff = false;
  long top_n = 0;
  double tolerance = 0.0;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--diff") == 0) {
      do_diff = true;
    } else if (std::strcmp(a, "--top") == 0 && i + 1 < argc) {
      top_n = std::strtol(argv[++i], nullptr, 10);
      if (top_n <= 0) {
        std::fprintf(stderr, "--top expects a positive count\n");
        return 2;
      }
    } else if (std::strcmp(a, "--tol") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
      if (tolerance < 0) {
        std::fprintf(stderr, "--tol expects a nonnegative fraction\n");
        return 2;
      }
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(stdout, argv[0]);
      return 0;
    } else if (a[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", a);
      usage(stderr, argv[0]);
      return 2;
    } else {
      files.emplace_back(a);
    }
  }

  try {
    if (do_diff) {
      if (files.size() != 2) {
        std::fprintf(stderr, "--diff expects exactly two report files\n");
        usage(stderr, argv[0]);
        return 2;
      }
      return diff(files[0], files[1], tolerance);
    }
    if (files.size() != 1) {
      usage(stderr, argv[0]);
      return 2;
    }
    const metrics::Json doc = load(files[0]);
    const std::vector<metrics::RunMetrics> runs = metrics::extract_runs(doc);
    if (top_n > 0) {
      print_top(runs, static_cast<std::size_t>(top_n));
    } else {
      summarize(runs);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
}
