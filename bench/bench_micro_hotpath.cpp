// Micro-benchmarks for the simulator hot paths.
//
// Times the inner loops every protocol variant executes per message —
// determinant storage (EventStore), antecedence-graph reachability,
// sender-log churn, engine event scheduling — plus one end-to-end cluster
// run, and emits a machine-readable JSON report (wall clock, throughput,
// peak RSS). scripts/run_perf.sh drives this binary before and after
// hot-path changes; BENCH_hotpath.json in the repo root records the
// measured history.
//
// Usage: bench_micro_hotpath [--quick] [--json PATH]
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <queue>

#include "causal/antecedence_graph.hpp"
#include "causal/event_store.hpp"
#include "causal/sender_log.hpp"
#include "scenario/runner.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/engine.hpp"
#include "workloads/apps.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct BenchResult {
  std::string name;
  double wall_ms = 0;
  std::uint64_t items = 0;  // work units (adds, visits, events, ...)
  double items_per_sec() const {
    return wall_ms > 0 ? static_cast<double>(items) / (wall_ms / 1e3) : 0;
  }
};

std::vector<BenchResult> g_results;
std::uint64_t g_sink = 0;  // defeats dead-code elimination

template <class Fn>
void run_bench(const char* name, Fn&& fn) {
  BenchResult r;
  r.name = name;
  const auto t0 = Clock::now();
  r.items = fn();
  const auto t1 = Clock::now();
  r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("%-24s %10.1f ms  %12llu items  %12.0f items/s\n", name,
              r.wall_ms, static_cast<unsigned long long>(r.items),
              r.items_per_sec());
  g_results.push_back(std::move(r));
}

mpiv::ftapi::Determinant make_det(std::uint32_t creator, std::uint64_t seq,
                                  int nranks) {
  mpiv::ftapi::Determinant d;
  d.creator = creator;
  d.seq = seq;
  d.src = static_cast<std::uint32_t>((creator + seq) % static_cast<std::uint64_t>(nranks));
  d.ssn = seq;
  d.tag = 1;
  d.dep_creator = d.src;
  d.dep_seq = seq > 1 ? seq - 1 : 0;
  return d;
}

// EventStore: the per-message determinant path — add events for every
// creator, query the watermarks a piggyback build reads, and prune on a
// periodic stable-clock advance (the Event Logger's GC effect).
std::uint64_t bench_event_store(std::uint64_t rounds) {
  const int nranks = 16;
  mpiv::causal::EventStore store(nranks);
  std::vector<std::uint64_t> stable(static_cast<std::size_t>(nranks), 0);
  std::uint64_t ops = 0;
  for (std::uint64_t r = 1; r <= rounds; ++r) {
    for (int c = 0; c < nranks; ++c) {
      store.add(make_det(static_cast<std::uint32_t>(c), r, nranks));
      g_sink += store.known(static_cast<std::uint32_t>(c));
      const auto* d = store.find(static_cast<std::uint32_t>(c), r);
      g_sink += d ? d->ssn : 0;
      ops += 3;
    }
    if (r % 64 == 0) {
      // Stability lags by 32 events: the store keeps a sliding unstable
      // suffix, exactly the EL-enabled steady state.
      for (auto& s : stable) s = r - 32;
      store.set_stable(stable);
      ++ops;
    }
  }
  g_sink += store.held_count();
  return ops;
}

// AntecedenceGraph: vertex insertion plus the incremental reachability
// query Manetho/LogOn run on every send.
std::uint64_t bench_graph_reach(std::uint64_t rounds) {
  const int nranks = 16;
  mpiv::causal::AntecedenceGraph graph(nranks);
  std::vector<std::vector<std::uint64_t>> cache(
      static_cast<std::size_t>(nranks));
  std::vector<std::uint64_t> stable(static_cast<std::size_t>(nranks), 0);
  std::uint64_t ops = 0;
  for (std::uint64_t r = 1; r <= rounds; ++r) {
    for (int c = 0; c < nranks; ++c) {
      graph.add(make_det(static_cast<std::uint32_t>(c), r, nranks));
      ++ops;
    }
    const auto peer = static_cast<std::uint32_t>(r % nranks);
    ops += graph.known_from_cached(peer, r, cache[peer]);
    if (r % 64 == 0) {
      for (auto& s : stable) s = r - 32;
      graph.prune_stable(stable);
    }
  }
  g_sink += graph.vertex_count();
  return ops;
}

// Full (non-incremental) traversal with a fresh visited set per query —
// the recovery-path variant.
std::uint64_t bench_graph_full(std::uint64_t rounds) {
  const int nranks = 16;
  mpiv::causal::AntecedenceGraph graph(nranks);
  const std::uint64_t depth = 512;
  for (std::uint64_t s = 1; s <= depth; ++s) {
    for (int c = 0; c < nranks; ++c) {
      graph.add(make_det(static_cast<std::uint32_t>(c), s, nranks));
    }
  }
  std::vector<std::uint64_t> known;
  std::uint64_t ops = 0;
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const auto peer = static_cast<std::uint32_t>(r % nranks);
    ops += graph.known_from(peer, depth, known);
    g_sink += known[0];
  }
  return ops;
}

// SenderLog: the log/GC cycle every send and peer checkpoint runs.
std::uint64_t bench_sender_log(std::uint64_t rounds) {
  const int nranks = 16;
  mpiv::causal::SenderLog slog(nranks);
  mpiv::net::Payload p{4096, 0x5eed};
  std::uint64_t ops = 0;
  for (std::uint64_t r = 1; r <= rounds; ++r) {
    for (int dst = 0; dst < nranks; ++dst) {
      slog.log(dst, r, 1, p);
      ++ops;
    }
    if (r % 64 == 0) {
      for (int dst = 0; dst < nranks; ++dst) slog.gc(dst, r - 32);
      ops += nranks;
    }
  }
  g_sink += slog.bytes();
  return ops;
}

// Engine resume lane: P coroutine processes sleeping in lockstep — the
// schedule/resume cycle under every simulated blocking operation.
std::uint64_t bench_engine_resume(std::uint64_t events) {
  mpiv::sim::Engine eng;
  const int nprocs = 16;
  const std::uint64_t per_proc = events / nprocs;
  for (int p = 0; p < nprocs; ++p) {
    // std::string + avoids the GCC 12 -Wrestrict false positive that
    // `"p" + std::to_string(p)` trips under -O2.
    std::string pname = "p";
    pname += std::to_string(p);
    auto& proc = eng.create_process(pname);
    proc.start([](mpiv::sim::Engine& e, std::uint64_t n) -> mpiv::sim::Task<void> {
      for (std::uint64_t i = 0; i < n; ++i) co_await e.sleep(10);
    }(eng, per_proc));
  }
  return eng.run();
}

// Engine callback lane: a self-rescheduling timer chain per node, the
// at()/after() pattern the network and services use.
std::uint64_t bench_engine_callbacks(std::uint64_t events) {
  mpiv::sim::Engine eng;
  const int chains = 16;
  const std::uint64_t per_chain = events / chains;
  struct Chain {
    mpiv::sim::Engine* eng;
    std::uint64_t left;
    void fire() {
      if (left-- == 0) return;
      eng->after(10, [this] { fire(); });
    }
  };
  std::vector<Chain> cs(chains);
  for (auto& c : cs) {
    c.eng = &eng;
    c.left = per_chain;
    eng.after(1, [&c] { c.fire(); });
  }
  return eng.run();
}

// Event queue duel: the calendar queue that now backs the engine versus
// the binary heap it replaced, fed the exact same hold-model stream —
// a steady population of pending events where each pop schedules a
// successor a short pseudo-random distance in the future (the engine's
// actual access pattern).
struct QEv {
  mpiv::sim::Time t;
  std::uint64_t seq;
};

template <class Queue, class Push, class PopTop>
std::uint64_t bench_queue(std::uint64_t events, Queue& q, Push push,
                          PopTop pop_top) {
  const std::uint64_t hold = 4096;  // steady pending population
  std::uint64_t x = 0x9e3779b97f4a7c15ull;  // splitmix-style gap stream
  std::uint64_t seq = 0;
  auto gap = [&x]() -> mpiv::sim::Time {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return static_cast<mpiv::sim::Time>((z ^ (z >> 31)) % 20'000);
  };
  for (std::uint64_t i = 0; i < hold; ++i) push(q, QEv{gap(), seq++});
  std::uint64_t ops = hold;
  for (std::uint64_t i = 0; i < events; ++i) {
    const QEv top = pop_top(q);
    g_sink += static_cast<std::uint64_t>(top.t) ^ top.seq;
    push(q, QEv{top.t + gap(), seq++});  // reschedule past `now`
    ops += 2;
  }
  while (q.size() > 64) {  // drain the tail through the shrink rebuilds
    g_sink += pop_top(q).seq;
    ++ops;
  }
  return ops;
}

std::uint64_t bench_queue_calendar(std::uint64_t events) {
  mpiv::sim::CalendarQueue<QEv> q;
  return bench_queue(
      events, q, [](auto& qq, const QEv& e) { qq.push(e); },
      [](auto& qq) {
        const QEv e = qq.top();
        qq.pop();
        return e;
      });
}

std::uint64_t bench_queue_binary_heap(std::uint64_t events) {
  struct Later {
    bool operator()(const QEv& a, const QEv& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<QEv, std::vector<QEv>, Later> q;
  return bench_queue(
      events, q, [](auto& qq, const QEv& e) { qq.push(e); },
      [](auto& qq) {
        const QEv e = qq.top();
        qq.pop();
        return e;
      });
}

// End-to-end: a causal cluster running wildcard traffic — every layer of
// the stack (engine, network, daemon, matching, strategy, EL) at once,
// driven through the scenario API like every other experiment.
std::uint64_t bench_cluster(int iterations) {
  const mpiv::scenario::RunResult r = mpiv::scenario::run_spec(
      mpiv::scenario::ScenarioBuilder("hotpath_e2e")
          .variant("logon:el")
          .nranks(8)
          .seed(11)
          .random_any(iterations, 11, 1024)
          .build());
  MPIV_CHECK(r.completed, "cluster bench did not complete");
  g_sink += r.checksums[0];
  return r.events_executed;
}

std::uint64_t peak_rss_kb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::uint64_t>(ru.ru_maxrss);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
  }
  const std::uint64_t scale = quick ? 1 : 4;

  std::printf("bench_micro_hotpath (%s)\n", quick ? "quick" : "full");
  run_bench("event_store", [&] { return bench_event_store(30000 * scale); });
  run_bench("graph_reach", [&] { return bench_graph_reach(20000 * scale); });
  run_bench("graph_full", [&] { return bench_graph_full(300 * scale); });
  run_bench("sender_log", [&] { return bench_sender_log(30000 * scale); });
  run_bench("engine_resume", [&] { return bench_engine_resume(400000 * scale); });
  run_bench("engine_callbacks",
            [&] { return bench_engine_callbacks(400000 * scale); });
  run_bench("queue_calendar",
            [&] { return bench_queue_calendar(1000000 * scale); });
  run_bench("queue_binary_heap",
            [&] { return bench_queue_binary_heap(1000000 * scale); });
  run_bench("cluster_e2e",
            [&] { return bench_cluster(static_cast<int>(30 * scale)); });

  double total_ms = 0;
  for (const BenchResult& r : g_results) total_ms += r.wall_ms;
  const std::uint64_t rss = peak_rss_kb();
  std::printf("%-24s %10.1f ms  peak RSS %llu kB  (sink %llx)\n", "TOTAL",
              total_ms, static_cast<unsigned long long>(rss),
              static_cast<unsigned long long>(g_sink));

  if (json_path) {
    FILE* f = std::fopen(json_path, "w");
    MPIV_CHECK(f != nullptr, "cannot write %s", json_path);
    std::fprintf(f, "{\n  \"mode\": \"%s\",\n  \"peak_rss_kb\": %llu,\n",
                 quick ? "quick" : "full",
                 static_cast<unsigned long long>(rss));
    std::fprintf(f, "  \"total_wall_ms\": %.1f,\n  \"benches\": [\n", total_ms);
    for (std::size_t i = 0; i < g_results.size(); ++i) {
      const BenchResult& r = g_results[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"wall_ms\": %.1f, \"items\": %llu, "
                   "\"items_per_sec\": %.0f}%s\n",
                   r.name.c_str(), r.wall_ms,
                   static_cast<unsigned long long>(r.items), r.items_per_sec(),
                   i + 1 < g_results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
