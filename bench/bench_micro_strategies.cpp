// Host-time microbenchmarks (google-benchmark) of the real protocol data
// structures: piggyback build/absorb for each strategy at several store
// sizes, wire serialization, and antecedence-graph traversal. These justify
// the cost-model constants (see net/cost_model.hpp): on a modern CPU the
// per-event and per-vertex costs are a few nanoseconds to a few hundred,
// consistent with what a 2 GHz AthlonXP would spend (~2-10x more).
#include <benchmark/benchmark.h>

#include <chrono>

#include "causal/logon_strategy.hpp"
#include "causal/manetho_strategy.hpp"
#include "causal/vcausal_strategy.hpp"
#include "causal/wire.hpp"
#include "scenario/registry.hpp"

namespace mpiv::causal {
namespace {

constexpr int kRanks = 8;

/// Builds a store + strategy populated with `events` determinants spread
/// over all creators, with chain dependencies.
struct Fixture {
  EventStore store{kRanks};
  net::CostModel cost;
  std::unique_ptr<Strategy> strategy;

  Fixture(const char* kind, int events)
      : strategy(scenario::strategies().at(kind).make()) {
    strategy->attach(&store, &cost, /*rank=*/0, kRanks);
    std::vector<std::uint64_t> seq(kRanks, 0);
    for (int i = 0; i < events; ++i) {
      const std::uint32_t creator = static_cast<std::uint32_t>(i % kRanks);
      const std::uint32_t src = static_cast<std::uint32_t>((i + 1) % kRanks);
      ftapi::Determinant d;
      d.creator = creator;
      d.seq = ++seq[creator];
      d.src = src;
      d.ssn = d.seq;
      d.tag = 7;
      d.dep_creator = src;
      d.dep_seq = seq[src];
      store.add(d);
      strategy->on_local_event(d);
    }
  }
};

void BM_StrategyBuild(benchmark::State& state, const char* kind) {
  const int events = static_cast<int>(state.range(0));
  Fixture fx(kind, events);
  for (auto _ : state) {
    util::Buffer out;
    Strategy::DepShadow deps;
    // Peer 1's view is fresh each time (copy the strategy state? too heavy;
    // measuring the first build against a cold peer is the worst case).
    Fixture fresh(kind, events);
    auto start = std::chrono::high_resolution_clock::now();
    const Strategy::Work w = fresh.strategy->build(1, out, deps);
    auto end = std::chrono::high_resolution_clock::now();
    benchmark::DoNotOptimize(w);
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
  }
  state.counters["events"] = static_cast<double>(events);
}

void BM_WireFactoredRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<ftapi::Determinant> events;
  for (int i = 0; i < n; ++i) {
    ftapi::Determinant d;
    d.creator = 3;
    d.seq = static_cast<std::uint64_t>(i + 1);
    d.src = 2;
    d.ssn = static_cast<std::uint64_t>(i + 1);
    events.push_back(d);
  }
  for (auto _ : state) {
    util::Buffer out;
    wire::factored_serialize(events, out);
    auto parsed = wire::factored_parse(out);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_WirePlainRoundTrip(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<ftapi::Determinant> events;
  for (int i = 0; i < n; ++i) {
    ftapi::Determinant d;
    d.creator = static_cast<std::uint32_t>(i % kRanks);
    d.seq = static_cast<std::uint64_t>(i / kRanks + 1);
    d.src = 2;
    d.ssn = static_cast<std::uint64_t>(i + 1);
    events.push_back(d);
  }
  for (auto _ : state) {
    util::Buffer out;
    wire::plain_serialize(events, out);
    auto parsed = wire::plain_parse(out);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_GraphTraversal(benchmark::State& state) {
  const int events = static_cast<int>(state.range(0));
  Fixture fx("manetho", events);
  auto& strat = static_cast<ManethoStrategy&>(*fx.strategy);
  std::vector<std::uint64_t> reach;
  for (auto _ : state) {
    reach.clear();
    const std::uint64_t visits = strat.graph().known_from(
        1, fx.store.known(1), reach);
    benchmark::DoNotOptimize(visits);
  }
  state.SetItemsProcessed(state.iterations() * events);
}

void BM_LogOnCausalOrder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<ftapi::Determinant> events;
  std::vector<std::uint64_t> seq(kRanks, 0);
  for (int i = 0; i < n; ++i) {
    ftapi::Determinant d;
    d.creator = static_cast<std::uint32_t>(i % kRanks);
    d.seq = ++seq[d.creator];
    d.src = static_cast<std::uint32_t>((i + 3) % kRanks);
    d.ssn = d.seq;
    d.dep_creator = d.src;
    d.dep_seq = seq[d.src];
    events.push_back(d);
  }
  for (auto _ : state) {
    auto ordered = LogOnStrategy::causal_order(events);
    benchmark::DoNotOptimize(ordered);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

// Iterations are bounded explicitly: each measured build pays an
// unmeasured fixture rebuild, so time-targeted iteration counts would
// inflate the wall clock for no statistical gain.
BENCHMARK_CAPTURE(BM_StrategyBuild, vcausal, "vcausal")
    ->Arg(64)->Arg(1024)->Iterations(40)->UseManualTime()->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_StrategyBuild, manetho, "manetho")
    ->Arg(64)->Arg(1024)->Iterations(40)->UseManualTime()->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_StrategyBuild, logon, "logon")
    ->Arg(64)->Arg(1024)->Iterations(40)->UseManualTime()->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WireFactoredRoundTrip)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_WirePlainRoundTrip)->Arg(16)->Arg(256)->Arg(4096);
BENCHMARK(BM_GraphTraversal)->Arg(256)->Arg(4096)->Arg(65536);
BENCHMARK(BM_LogOnCausalOrder)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace mpiv::causal

BENCHMARK_MAIN();
