// Fig. 8(b): causality-information computation cost as a percentage of
// total execution time.
//
// Paper values (%), largest size per kernel:
//   BT/16:  EL {0.7, 1.3, 1.2}    no EL {7.8, 11.8, 12.5}
//   CG/16:  EL {2.4, 6.6, 4.0}    no EL {18, 26.1, 25.6}
//   LU/16:  EL {10.6, 19.1, 13.5} no EL {26, 30.2, 41.5}
//   FT/16:  EL {0.3, 0.6, 0.4}    no EL {2.2, 5.2, 1.8}
// Shape: negligible for low communication ratios (BT, FT), dominant for LU
// without an EL — up to ~40% of the execution burned on piggyback
// management.
#include "bench/fig78_common.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header("Fig. 8(b) — piggyback computation, % of total execution time",
               "BT/FT ~0-1% w/ EL; LU up to ~40% w/o EL");
  for (const Fig78Config& c : fig78_configs()) {
    std::printf("\n-- %s class %c --\n", workloads::nas_kernel_name(c.kernel),
                workloads::nas_class_letter(c.klass));
    std::vector<std::string> headers = {"#procs"};
    for (const char* v : causal_variants()) headers.push_back(variant_label(v));
    util::Table table(headers);
    for (const int procs : c.procs) {
      std::vector<std::string> row = {util::cell("%d", procs)};
      for (const char* v : causal_variants()) {
        const Fig78Cell cell = run_fig78_cell(v, c, procs);
        row.push_back(util::cell("%.2f%%", cell.cpu_pct));
      }
      table.add_row(row);
    }
    table.print();
  }
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
