// Ablation A: how fast must the Event Logger be to be useful?
//
// Sweeps the EL per-event service time on CG class A / 8 ranks (causal,
// Vcausal strategy) and reports piggyback volume, mean ack latency and
// application slowdown. The paper observes this cliff indirectly: on LU/16
// "the Event Logger reaches a state where the time to acknowledge event
// receptions becomes too high to remove all events before a new send
// occurs" — a slow EL converges to no-EL behaviour while still costing EL
// traffic, motivating the distributed-EL future work of §VI.
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header("Ablation A — Event Logger service-time sweep (CG A / 8 ranks)",
               "slow EL converges to no-EL piggyback volume");
  util::Table table({"EL service (us)", "pb % of app bytes", "ack latency (us)",
                     "run time (s)", "EL peak queue"});
  for (const double service_us : {2.0, 6.0, 20.0, 60.0, 200.0, 600.0}) {
    net::CostModel cost;
    cost.el_service = sim::from_us(service_us);
    const scenario::RunResult r = scenario::run_spec(
        variant_scenario("vcausal:el", 8)
            .cost(cost)
            .nas(workloads::NasKernel::kCG, workloads::NasClass::kA, 1.0)
            .build());
    MPIV_CHECK(r.completed, "ablation run did not complete");
    const ftapi::RankStats t = r.report.totals();
    table.add_row({util::cell("%.0f", service_us),
                   util::cell("%.3f", r.report.piggyback_pct()),
                   util::cell("%.1f", t.el_ack_latency_us.mean()),
                   util::cell("%.2f", sim::to_sec(r.report.completion_time)),
                   util::cell("%llu", static_cast<unsigned long long>(
                                          r.report.el_stats.peak_queue))});
  }
  table.print();

  // Reference: the same run without any Event Logger.
  {
    NasOut out = run_nas("vcausal:noel", workloads::NasKernel::kCG,
                         workloads::NasClass::kA, 8, 1.0);
    const ftapi::RankStats t = out.report.totals();
    std::printf("\nno-EL reference: pb %.3f%% of app bytes, run time %.2f s\n",
                100.0 * static_cast<double>(t.pb_bytes_sent) /
                    static_cast<double>(t.app_bytes_sent),
                sim::to_sec(out.report.completion_time));
  }
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
