// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper and
// prints the simulated values next to the paper's published numbers, so
// shape agreement (who wins, by what factor, where crossovers fall) can be
// eyeballed directly; EXPERIMENTS.md records the comparison.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "runtime/cluster.hpp"
#include "util/table.hpp"
#include "workloads/apps.hpp"
#include "workloads/nas.hpp"

namespace mpiv::bench {

/// One protocol variant of the paper's evaluation.
struct Variant {
  const char* label;
  runtime::ProtocolKind protocol;
  causal::StrategyKind strategy = causal::StrategyKind::kVcausal;
  bool event_logger = true;
};

/// The full Fig. 6/9 lineup.
inline const std::vector<Variant>& paper_variants() {
  static const std::vector<Variant> v = {
      {"MPICH-P4", runtime::ProtocolKind::kP4},
      {"MPICH-Vdummy", runtime::ProtocolKind::kVdummy},
      {"Vcausal (EL)", runtime::ProtocolKind::kCausal,
       causal::StrategyKind::kVcausal, true},
      {"Manetho (EL)", runtime::ProtocolKind::kCausal,
       causal::StrategyKind::kManetho, true},
      {"LogOn (EL)", runtime::ProtocolKind::kCausal,
       causal::StrategyKind::kLogOn, true},
      {"Vcausal (no EL)", runtime::ProtocolKind::kCausal,
       causal::StrategyKind::kVcausal, false},
      {"Manetho (no EL)", runtime::ProtocolKind::kCausal,
       causal::StrategyKind::kManetho, false},
      {"LogOn (no EL)", runtime::ProtocolKind::kCausal,
       causal::StrategyKind::kLogOn, false},
  };
  return v;
}

/// The six causal variants of Fig. 7/8.
inline std::vector<Variant> causal_variants() {
  std::vector<Variant> v(paper_variants().begin() + 2, paper_variants().end());
  return v;
}

inline runtime::ClusterConfig variant_config(const Variant& v, int nranks) {
  runtime::ClusterConfig cfg;
  cfg.nranks = nranks;
  cfg.protocol = v.protocol;
  cfg.strategy = v.strategy;
  cfg.event_logger = v.event_logger;
  return cfg;
}

struct NetpipeOut {
  workloads::PingPongResult points;
  runtime::ClusterReport report;
};

inline NetpipeOut run_netpipe(const Variant& v, std::vector<std::uint64_t> sizes,
                              int reps) {
  runtime::ClusterConfig cfg = variant_config(v, 2);
  auto result = std::make_shared<workloads::PingPongResult>();
  runtime::Cluster cluster(cfg);
  runtime::ClusterReport rep =
      cluster.run(workloads::make_pingpong_app(std::move(sizes), reps, result));
  MPIV_CHECK(rep.completed, "netpipe run did not complete (%s)", v.label);
  return {*result, rep};
}

struct NasOut {
  runtime::ClusterReport report;
  double flops = 0;
  double mops() const {
    return report.completion_time > 0
               ? flops / sim::to_sec(report.completion_time) / 1e6
               : 0.0;
  }
};

inline NasOut run_nas(const Variant& v, workloads::NasKernel kernel,
                      workloads::NasClass klass, int nranks, double scale,
                      runtime::ClusterConfig* base = nullptr) {
  runtime::ClusterConfig cfg =
      base ? *base : runtime::ClusterConfig{};
  if (!base) cfg = variant_config(v, nranks);
  cfg.nranks = nranks;
  cfg.protocol = v.protocol;
  cfg.strategy = v.strategy;
  cfg.event_logger = v.event_logger;
  workloads::NasConfig ncfg{kernel, klass, nranks, scale};
  auto result = std::make_shared<workloads::ChecksumResult>(nranks);
  runtime::Cluster cluster(cfg);
  NasOut out;
  out.report = cluster.run(workloads::make_nas_app(ncfg, result));
  out.flops = workloads::nas_scaled_flops(ncfg);
  MPIV_CHECK(out.report.completed, "%s %c/%d under %s did not complete",
             workloads::nas_kernel_name(kernel),
             workloads::nas_class_letter(klass), nranks, v.label);
  return out;
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(paper reference: %s)\n", what, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace mpiv::bench
