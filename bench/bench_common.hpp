// Shared helpers for the benchmark harness.
//
// Every bench binary regenerates one table or figure of the paper and
// prints the simulated values next to the paper's published numbers, so
// shape agreement (who wins, by what factor, where crossovers fall) can be
// eyeballed directly. All benches construct their experiments through the
// scenario layer: variants are registry names ("vcausal:el", "p4", ...),
// configs are ScenarioBuilder specs, runs come back as scenario::RunResult.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "workloads/nas.hpp"

namespace mpiv::bench {

/// The full Fig. 6/9 lineup, by scenario variant name.
inline const std::vector<const char*>& paper_variants() {
  static const std::vector<const char*> v = {
      "p4",           "vdummy",       "vcausal:el", "manetho:el",
      "logon:el",     "vcausal:noel", "manetho:noel", "logon:noel"};
  return v;
}

/// The six causal variants of Fig. 7/8.
inline std::vector<const char*> causal_variants() {
  return {paper_variants().begin() + 2, paper_variants().end()};
}

/// Human label for a variant name ("vcausal:el" -> "Vcausal (EL)").
inline std::string variant_label(const char* variant) {
  return scenario::parse_variant(variant).label;
}

/// Scenario skeleton every bench builds on: one variant at one size.
inline scenario::ScenarioBuilder variant_scenario(const char* variant,
                                                  int nranks) {
  scenario::ScenarioBuilder b("bench");
  b.variant(variant).nranks(nranks);
  return b;
}

struct NetpipeOut {
  workloads::PingPongResult points;
  runtime::ClusterReport report;
};

inline NetpipeOut run_netpipe(const char* variant,
                              const std::vector<std::uint64_t>& sizes,
                              int reps) {
  const scenario::RunResult r = scenario::run_spec(
      variant_scenario(variant, 2).pingpong(sizes, reps).build());
  MPIV_CHECK(r.completed, "netpipe run did not complete (%s)", variant);
  return {r.pingpong, r.report};
}

struct NasOut {
  runtime::ClusterReport report;
  double flops = 0;
  double mops() const {
    return report.completion_time > 0
               ? flops / sim::to_sec(report.completion_time) / 1e6
               : 0.0;
  }
};

inline NasOut run_nas_spec(const scenario::ScenarioSpec& spec) {
  const scenario::RunResult r = scenario::run_spec(spec);
  MPIV_CHECK(r.completed, "scenario '%s' did not complete", spec.name.c_str());
  return {r.report, r.flops};
}

inline NasOut run_nas(const char* variant, workloads::NasKernel kernel,
                      workloads::NasClass klass, int nranks, double scale) {
  return run_nas_spec(
      variant_scenario(variant, nranks).nas(kernel, klass, scale).build());
}

inline void print_header(const char* what, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n(paper reference: %s)\n", what, paper_ref);
  std::printf("================================================================\n");
}

}  // namespace mpiv::bench
