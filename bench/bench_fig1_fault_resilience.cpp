// Fig. 1: fault resilience — execution slowdown of a BT-class run on 25
// nodes as the fault frequency grows, comparing coordinated checkpointing
// (Chandy-Lamport), pessimistic message logging and causal message logging
// (both sender-based, with Event Logger).
//
// Shape to reproduce: all protocols near 100% at zero faults; coordinated
// checkpointing degrades steeply (every fault rolls the whole cluster back
// to the last global snapshot and restart storms hit the shared checkpoint
// server) and approaches a vertical slope by ~2/3 faults/minute; the two
// message-logging protocols degrade gracefully because only the failed
// rank replays.
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

struct Proto {
  const char* label;
  const char* variant;  // scenario variant name
  ckpt::Policy policy;
  sim::Time interval;
};

double run_once(const Proto& p, double faults_per_minute, std::uint64_t seed) {
  const scenario::RunResult r = scenario::run_spec(
      scenario::ScenarioBuilder("fig1")
          .variant(p.variant)
          .nranks(25)
          .seed(seed)
          .fault_rate(faults_per_minute)
          .checkpoint(p.policy, p.interval)
          .max_sim_time(3 * 3600LL * sim::kSecond)  // ~10x: "no progress"
          .nas(workloads::NasKernel::kBT, workloads::NasClass::kA, 40.0)
          .build());
  if (!r.completed) return -1.0;  // no progress before the time budget
  return sim::to_sec(r.report.completion_time);
}

/// Mean over seeds (Poisson fault arrivals are seed-dependent); any
/// no-progress seed makes the whole point "no progress".
double run_rate(const Proto& p, double rate, int seeds) {
  double sum = 0;
  for (int s = 0; s < seeds; ++s) {
    const double t = run_once(p, rate, 1 + static_cast<std::uint64_t>(s));
    if (t < 0) return -1.0;
    sum += t;
  }
  return sum / seeds;
}

int run() {
  print_header(
      "Fig. 1 — slowdown vs fault frequency, BT-class on 25 nodes (in % of "
      "fault-free execution)",
      "coordinated hits a vertical slope by ~2/3 faults/min; logging degrades "
      "gracefully");
  const std::vector<Proto> protos = {
      {"Coordinated (Chandy-Lamport)", "coordinated", ckpt::Policy::kAllAtOnce,
       120 * sim::kSecond},
      {"Pessimistic (sender-based, EL)", "pessimistic",
       ckpt::Policy::kRoundRobin, 5 * sim::kSecond},  // ~125 s per rank
      {"Causal (sender-based, EL)", "manetho:el", ckpt::Policy::kRoundRobin,
       5 * sim::kSecond},
  };
  const std::vector<std::pair<const char*, double>> rates = {
      {"0", 0.0}, {"1/6", 1.0 / 6}, {"1/3", 1.0 / 3}, {"1/2", 0.5}, {"2/3", 2.0 / 3}};

  std::vector<std::string> headers = {"faults/min"};
  for (const Proto& p : protos) headers.push_back(p.label);
  util::Table table(headers);

  std::vector<double> base(protos.size(), 0);
  for (std::size_t i = 0; i < protos.size(); ++i) {
    base[i] = run_once(protos[i], 0.0, 1);
  }
  for (const auto& [label, rate] : rates) {
    std::vector<std::string> row = {label};
    for (std::size_t i = 0; i < protos.size(); ++i) {
      const double t = rate == 0.0 ? base[i] : run_rate(protos[i], rate, 2);
      if (t < 0) {
        row.push_back("no progress");
      } else {
        row.push_back(util::cell("%.0f%%", 100.0 * t / base[i]));
      }
    }
    table.add_row(row);
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
