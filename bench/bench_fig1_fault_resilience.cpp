// Fig. 1: fault resilience — execution slowdown of a BT-class run on 25
// nodes as the fault frequency grows, comparing coordinated checkpointing
// (Chandy-Lamport), pessimistic message logging and causal message logging
// (both sender-based, with Event Logger).
//
// Shape to reproduce: all protocols near 100% at zero faults; coordinated
// checkpointing degrades steeply (every fault rolls the whole cluster back
// to the last global snapshot and restart storms hit the shared checkpoint
// server) and approaches a vertical slope by ~2/3 faults/minute; the two
// message-logging protocols degrade gracefully because only the failed
// rank replays.
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

struct Proto {
  const char* label;
  runtime::ProtocolKind kind;
};

double run_once(const Proto& p, double faults_per_minute, std::uint64_t seed) {
  runtime::ClusterConfig cfg;
  cfg.nranks = 25;
  cfg.protocol = p.kind;
  cfg.strategy = causal::StrategyKind::kManetho;
  cfg.event_logger = true;
  cfg.seed = seed;
  cfg.faults_per_minute = faults_per_minute;
  cfg.ckpt_interval = p.kind == runtime::ProtocolKind::kCoordinated
                          ? 120 * sim::kSecond
                          : 5 * sim::kSecond;  // round-robin: ~125 s per rank
  cfg.ckpt_policy = p.kind == runtime::ProtocolKind::kCoordinated
                        ? ckpt::Policy::kAllAtOnce
                        : ckpt::Policy::kRoundRobin;
  cfg.max_sim_time = 3 * 3600LL * sim::kSecond;  // beyond ~10x: "no progress"
  workloads::NasConfig ncfg{workloads::NasKernel::kBT, workloads::NasClass::kA,
                            cfg.nranks, 40.0};
  auto result = std::make_shared<workloads::ChecksumResult>(cfg.nranks);
  runtime::Cluster cluster(cfg);
  runtime::ClusterReport rep = cluster.run(workloads::make_nas_app(ncfg, result));
  if (!rep.completed) return -1.0;  // no progress before the time budget
  return sim::to_sec(rep.completion_time);
}

/// Mean over seeds (Poisson fault arrivals are seed-dependent); any
/// no-progress seed makes the whole point "no progress".
double run_rate(const Proto& p, double rate, int seeds) {
  double sum = 0;
  for (int s = 0; s < seeds; ++s) {
    const double t = run_once(p, rate, 1 + static_cast<std::uint64_t>(s));
    if (t < 0) return -1.0;
    sum += t;
  }
  return sum / seeds;
}

int run() {
  print_header(
      "Fig. 1 — slowdown vs fault frequency, BT-class on 25 nodes (in % of "
      "fault-free execution)",
      "coordinated hits a vertical slope by ~2/3 faults/min; logging degrades "
      "gracefully");
  const std::vector<Proto> protos = {
      {"Coordinated (Chandy-Lamport)", runtime::ProtocolKind::kCoordinated},
      {"Pessimistic (sender-based, EL)", runtime::ProtocolKind::kPessimistic},
      {"Causal (sender-based, EL)", runtime::ProtocolKind::kCausal},
  };
  const std::vector<std::pair<const char*, double>> rates = {
      {"0", 0.0}, {"1/6", 1.0 / 6}, {"1/3", 1.0 / 3}, {"1/2", 0.5}, {"2/3", 2.0 / 3}};

  std::vector<std::string> headers = {"faults/min"};
  for (const Proto& p : protos) headers.push_back(p.label);
  util::Table table(headers);

  std::vector<double> base(protos.size(), 0);
  for (std::size_t i = 0; i < protos.size(); ++i) {
    base[i] = run_once(protos[i], 0.0, 1);
  }
  for (const auto& [label, rate] : rates) {
    std::vector<std::string> row = {label};
    for (std::size_t i = 0; i < protos.size(); ++i) {
      const double t = rate == 0.0 ? base[i] : run_rate(protos[i], rate, 2);
      if (t < 0) {
        row.push_back("no progress");
      } else {
        row.push_back(util::cell("%.0f%%", 100.0 * t / base[i]));
      }
    }
    table.add_row(row);
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
