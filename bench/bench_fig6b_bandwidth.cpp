// Fig. 6(b): NetPIPE ping-pong bandwidth vs message size over Fast
// Ethernet, for RAW TCP (analytic), MPICH-P4, MPICH-Vdummy and the causal
// variants with/without the Event Logger.
//
// Shape to reproduce: raw TCP tops near ~89 Mb/s, P4 slightly below Vdummy
// at large sizes (Vdummy exploits full duplex), causal variants a further
// step below (sender-based payload copy), and all causal curves essentially
// identical — in ping-pong every variant piggybacks the same single event.
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header("Fig. 6(b) — NetPIPE bandwidth (Mb/s) vs message size",
               "raw TCP ~89 peak; Vdummy > P4 at large sizes; causal ~7-10% below");
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 1; s <= (8u << 20); s *= 4) sizes.push_back(s);

  const std::vector<const char*> shown = {
      paper_variants()[0],  // P4
      paper_variants()[1],  // Vdummy
      paper_variants()[2],  // Vcausal (EL)
      paper_variants()[3],  // Manetho (EL)
      paper_variants()[7],  // LogOn (no EL)
  };

  std::vector<std::string> headers = {"bytes", "RAW TCP"};
  for (const char* v : shown) headers.push_back(variant_label(v));
  util::Table table(headers);

  // Measured curves.
  std::vector<workloads::PingPongResult> results;
  for (const char* v : shown) {
    results.push_back(run_netpipe(v, sizes, 50).points);
  }

  const net::CostModel cost;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::vector<std::string> row;
    row.push_back(util::cell("%llu", static_cast<unsigned long long>(sizes[i])));
    // Analytic raw TCP: one-way = serialization + wire latency.
    const double oneway_us =
        sim::to_us(cost.tx_time(sizes[i] + 66) + cost.wire_latency);
    row.push_back(util::cell("%.2f", static_cast<double>(sizes[i]) * 8.0 / oneway_us));
    for (const auto& r : results) {
      row.push_back(util::cell("%.2f", r.points[i].bandwidth_mbps));
    }
    table.add_row(row);
  }
  table.print();
  std::printf("\nNote: causal curves coincide in ping-pong (same single-event\n"
              "piggyback); the sender-based payload copy causes the drop below\n"
              "Vdummy, the half-duplex ch_p4 protocol the P4 deficit.\n");
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
