// Fig. 9: NAS benchmark performance (total Mop/s) for MPICH-P4,
// MPICH-Vdummy and the causal variants with/without the Event Logger.
//
// Shape to reproduce: all protocols scale together; the causal variants sit
// a little below Vdummy; the EL improves every causal protocol on every
// benchmark (the improvement exceeds the difference between the two graph
// strategies); without the EL, Vcausal trails the graph strategies,
// especially for high communication/computation ratios (LU/16).
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

struct Panel {
  workloads::NasKernel kernel;
  workloads::NasClass klass;
  std::vector<int> procs;
  double scale;
};

int run() {
  using workloads::NasClass;
  using workloads::NasKernel;
  print_header("Fig. 9 — NAS benchmark total Mop/s per protocol",
               "EL > no EL everywhere; causal ~Vdummy at coarse grain; LU/16 separates");
  const std::vector<Panel> panels = {
      {NasKernel::kCG, NasClass::kA, {2, 4, 8, 16}, 1.0},
      {NasKernel::kCG, NasClass::kB, {2, 4, 8, 16}, 0.2},
      {NasKernel::kMG, NasClass::kA, {2, 4, 8, 16}, 1.0},
      {NasKernel::kBT, NasClass::kA, {4, 9, 16}, 0.15},
      {NasKernel::kBT, NasClass::kB, {4, 9, 16}, 0.05},
      {NasKernel::kSP, NasClass::kA, {4, 9, 16}, 0.05},
      {NasKernel::kLU, NasClass::kA, {2, 4, 8, 16}, 0.12},
      {NasKernel::kFT, NasClass::kA, {2, 4, 8, 16}, 1.0},
  };
  for (const Panel& p : panels) {
    std::printf("\n-- %s, Class %c (Mop/s total) --\n",
                workloads::nas_kernel_name(p.kernel),
                workloads::nas_class_letter(p.klass));
    std::vector<std::string> headers = {"#procs"};
    for (const char* v : paper_variants()) headers.push_back(variant_label(v));
    util::Table table(headers);
    for (const int procs : p.procs) {
      std::vector<std::string> row = {util::cell("%d", procs)};
      for (const char* v : paper_variants()) {
        NasOut out = run_nas(v, p.kernel, p.klass, procs, p.scale);
        row.push_back(util::cell("%.0f", out.mops()));
      }
      table.add_row(row);
    }
    table.print();
  }
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
