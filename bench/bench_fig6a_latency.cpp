// Fig. 6(a): NetPIPE 1-byte latency over Fast Ethernet for MPICH-P4,
// MPICH-Vdummy, and the three causal protocols with and without the Event
// Logger. Paper values (us): P4 99.56, Vdummy 134.84, EL {156.92, 156.80,
// 155.83}, no EL {165.17, 173.15, 172.80}.
//
// Shape to reproduce: P4 < Vdummy < causal+EL (all three nearly equal)
// < Vcausal no-EL < graph-based no-EL; without the EL the antecedence graph
// keeps growing, so the no-EL variants get slower with run length.
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

struct PaperRow {
  const char* label;
  double paper_us;
};
const PaperRow kPaper[] = {
    {"MPICH-P4", 99.56},      {"MPICH-Vdummy", 134.84},
    {"Vcausal (EL)", 156.92}, {"Manetho (EL)", 156.80},
    {"LogOn (EL)", 155.83},   {"Vcausal (no EL)", 165.17},
    {"Manetho (no EL)", 173.15}, {"LogOn (no EL)", 172.80},
};

int run() {
  print_header("Fig. 6(a) — NetPIPE 1-byte latency (us), Ethernet 100 Mb/s",
               "P4 99.56 | Vdummy 134.84 | EL ~156 | noEL 165-173");
  util::Table table({"variant", "latency (us)", "paper (us)", "empty piggybacks",
                     "messages"});
  // The paper's NetPIPE run exchanged 4999 messages at the 1-byte point.
  const int reps = 2500;
  for (std::size_t i = 0; i < paper_variants().size(); ++i) {
    const char* v = paper_variants()[i];
    NetpipeOut out = run_netpipe(v, {1}, reps);
    const ftapi::RankStats t = out.report.totals();
    table.add_row({variant_label(v), util::cell("%.2f", out.points.points[0].latency_us),
                   util::cell("%.2f", kPaper[i].paper_us),
                   util::cell("%llu", static_cast<unsigned long long>(t.pb_empty_msgs)),
                   util::cell("%llu", static_cast<unsigned long long>(t.app_msgs_sent))});
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
