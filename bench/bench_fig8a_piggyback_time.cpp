// Fig. 8(a): cumulative time spent preparing causality information to
// piggyback (send side) and merging received piggybacks (receive side), for
// BT/CG/LU/FT class A across process counts and the six causal variants.
//
// Shape to reproduce (paper): Vcausal's simple sequences outperform both
// graph strategies; LogOn pays more on SEND (reordering), Manetho more on
// RECEIVE (graph re-crossing); without the EL every strategy's time
// explodes because the structures keep growing; on FT (all-to-all) Manetho
// is the worst, on LU (many messages) LogOn's serialization suffers.
#include "bench/fig78_common.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header(
      "Fig. 8(a) — cumulative piggyback management time (seconds, send+recv)",
      "Vcausal << graphs; LogOn send-heavy, Manetho recv-heavy; no EL explodes");
  for (const Fig78Config& c : fig78_configs()) {
    std::printf("\n-- %s class %c  (cells: send / recv seconds) --\n",
                workloads::nas_kernel_name(c.kernel),
                workloads::nas_class_letter(c.klass));
    std::vector<std::string> headers = {"#procs"};
    for (const char* v : causal_variants()) headers.push_back(variant_label(v));
    util::Table table(headers);
    for (const int procs : c.procs) {
      std::vector<std::string> row = {util::cell("%d", procs)};
      for (const char* v : causal_variants()) {
        const Fig78Cell cell = run_fig78_cell(v, c, procs);
        row.push_back(
            util::cell("%.4f / %.4f", cell.send_cpu_s, cell.recv_cpu_s));
      }
      table.add_row(row);
    }
    table.print();
  }
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
