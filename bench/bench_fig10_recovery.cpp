// Fig. 10: time (ms) to recover all events to replay when restarting rank 0
// at the middle of its execution, Vcausal protocol, with vs without the
// Event Logger.
//
// Paper values (ms):
//   BT A  (4,9,16,25):  EL {9.6, 16.6, 21.2, 32.4}   no EL {32.5, 97.3, 183.5, 330.9}
//   CG B  (2,4,8,16):   EL {78.7, 81.7, 93.3, 92.8}  no EL {80.8, 118.6, 510.9, 832.2}
//   LU A  (2,4,8,16):   EL {37.6, 76.8, 58.6, 42.6}  no EL {42.5, 219.1, 360.2, 505.5}
// Shape: with the EL the events come in one transfer and recovery time
// barely grows with the cluster; without it every survivor ships its whole
// copy of the failed rank's history and the time explodes with #procs
// (paper: CG +18.7% from 1 to 15 peers with EL, +930.6% without).
//
// The fault engine's RecoveryTimeline additionally decomposes each recovery
// into detect / image / collect / replay phases; the collect phase is the
// paper's Fig. 10 quantity, and the phase columns show where the rest of
// the wall clock goes (detection dominates; replay scales with history).
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

struct Config {
  workloads::NasKernel kernel;
  workloads::NasClass klass;
  std::vector<int> procs;
  double scale;
};

struct Phases {
  double collect_ms = 0;  // the Fig. 10 quantity
  double image_ms = 0;
  double replay_ms = 0;
  std::uint64_t events = 0;
};

Phases recover_phases(const Config& c, int procs, bool el) {
  // Midrun-fault mode: the runner executes a fault-free reference, then
  // reruns the same spec killing rank 0 halfway. No checkpoints: the full
  // determinant history must be recovered (the paper's "middle of correct
  // execution").
  const scenario::RunResult r = scenario::run_spec(
      variant_scenario(el ? "vcausal:el" : "vcausal:noel", procs)
          .nas(c.kernel, c.klass, c.scale)
          .midrun_fault(0)
          .build());
  MPIV_CHECK(r.completed, "fig10 run did not complete");
  MPIV_CHECK(r.report.faults_injected == 1, "fig10: expected 1 fault, got %llu",
             static_cast<unsigned long long>(r.report.faults_injected));
  MPIV_CHECK(r.report.recoveries.size() == 1 && r.report.recoveries[0].complete(),
             "fig10: expected one complete recovery timeline");
  const fault::RecoveryRecord& rec = r.report.recoveries[0];
  Phases p;
  p.collect_ms = sim::to_ms(rec.collect_ns());
  p.image_ms = sim::to_ms(rec.image_ns());
  p.replay_ms = sim::to_ms(rec.replay_ns());
  p.events = rec.replay_events;
  return p;
}

int run() {
  using workloads::NasClass;
  using workloads::NasKernel;
  print_header("Fig. 10 — time to recover all events to replay (ms), Vcausal",
               "EL: one transfer, flat in #procs; no EL: all survivors ship "
               "copies. Phase columns from the recovery timeline.");
  const std::vector<Config> configs = {
      {NasKernel::kBT, NasClass::kA, {4, 9, 16, 25}, 0.15},
      {NasKernel::kCG, NasClass::kB, {2, 4, 8, 16}, 0.2},
      {NasKernel::kLU, NasClass::kA, {2, 4, 8, 16}, 0.12},
  };
  for (const Config& c : configs) {
    std::printf("\n-- %s class %c --\n", workloads::nas_kernel_name(c.kernel),
                workloads::nas_class_letter(c.klass));
    util::Table table({"#procs", "with EL (ms)", "without EL (ms)", "ratio",
                       "image (ms)", "replay (ms)", "events"});
    for (const int procs : c.procs) {
      const Phases with_el = recover_phases(c, procs, true);
      const Phases without_el = recover_phases(c, procs, false);
      table.add_row(
          {util::cell("%d", procs), util::cell("%.3f", with_el.collect_ms),
           util::cell("%.3f", without_el.collect_ms),
           util::cell("%.1fx", without_el.collect_ms /
                                   std::max(0.001, with_el.collect_ms)),
           util::cell("%.3f", with_el.image_ms),
           util::cell("%.3f", with_el.replay_ms),
           util::cell("%llu",
                      static_cast<unsigned long long>(with_el.events))});
    }
    table.print();
  }

  // Beyond the paper: the collect phase against a SATURATED Event Logger.
  // With cost.el_service at 2 ms one shard cannot keep up with the
  // determinant stream, and the recovery read — serialized behind the
  // shard's store queue so the replay union can never miss a queued batch
  // — stalls behind the backlog. Sharding drops the per-shard arrival rate
  // below the service rate and collect returns to milliseconds; this is
  // the per-recovery mechanism behind scenarios/chaos_soak.scn's
  // completion-probability-vs-redundancy curve (docs/BENCHMARKS.md).
  std::printf("\n-- collect vs EL redundancy under a saturated shard "
              "(LU A / 8, el_service = 2 ms) --\n");
  util::Table sat({"el_shards", "collect (ms)", "image (ms)", "replay (ms)",
                   "events"});
  for (const int shards : {1, 2, 4}) {
    const scenario::RunResult r = scenario::run_spec(
        variant_scenario("vcausal:el", 8)
            .nas(NasKernel::kLU, NasClass::kA, 0.12)
            .el_shards(shards)
            .set("cost.el_service", "2ms")
            .midrun_fault(0)
            .build());
    MPIV_CHECK(r.completed, "saturated-shard run did not complete");
    MPIV_CHECK(r.report.recoveries.size() == 1 &&
                   r.report.recoveries[0].complete(),
               "saturated-shard: expected one complete recovery");
    const fault::RecoveryRecord& rec = r.report.recoveries[0];
    sat.add_row({util::cell("%d", shards),
                 util::cell("%.3f", sim::to_ms(rec.collect_ns())),
                 util::cell("%.3f", sim::to_ms(rec.image_ns())),
                 util::cell("%.3f", sim::to_ms(rec.replay_ns())),
                 util::cell("%llu", static_cast<unsigned long long>(
                                        rec.replay_events))});
  }
  sat.print();
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
