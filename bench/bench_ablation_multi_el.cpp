// Ablation D — distributed Event Logger (the paper's §VI future work).
//
// "Using only one Event Logger will lead to a bottleneck as the number of
// processes grows ... assigning a subset of the nodes to one Event Logger
// seems the obvious way to gain scalability", with shards multicasting
// their stable-clock arrays. This bench runs the paper's bottleneck case —
// LU class A on 16 ranks, where Fig. 7 shows the single EL saturating —
// with 1, 2 and 4 EL shards.
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header("Ablation D — distributed Event Logger on the LU/16 bottleneck",
               "paper SVI: sharding the EL relieves the ack backlog");
  util::Table table({"EL shards", "pb % of app bytes", "ack latency (us)",
                     "Mop/s", "EL peak queue"});
  for (const int shards : {1, 2, 4}) {
    runtime::ClusterConfig cfg;
    cfg.nranks = 16;
    cfg.protocol = runtime::ProtocolKind::kCausal;
    cfg.strategy = causal::StrategyKind::kVcausal;
    cfg.event_logger = true;
    cfg.el_shards = shards;
    workloads::NasConfig ncfg{workloads::NasKernel::kLU, workloads::NasClass::kA,
                              16, 0.12};
    auto result = std::make_shared<workloads::ChecksumResult>(16);
    runtime::Cluster cluster(cfg);
    runtime::ClusterReport rep = cluster.run(workloads::make_nas_app(ncfg, result));
    MPIV_CHECK(rep.completed, "multi-EL run did not complete");
    const ftapi::RankStats t = rep.totals();
    const double pct = 100.0 * static_cast<double>(t.pb_bytes_sent) /
                       static_cast<double>(t.app_bytes_sent);
    const double mops = workloads::nas_scaled_flops(ncfg) /
                        sim::to_sec(rep.completion_time) / 1e6;
    table.add_row({util::cell("%d", shards), util::cell("%.3f", pct),
                   util::cell("%.1f", t.el_ack_latency_us.mean()),
                   util::cell("%.0f", mops),
                   util::cell("%llu", static_cast<unsigned long long>(
                                          rep.el_stats.peak_queue))});
  }
  table.print();
  std::printf("\nno-EL reference for the same run:\n");
  {
    Variant noel{"Vcausal (no EL)", runtime::ProtocolKind::kCausal,
                 causal::StrategyKind::kVcausal, false};
    NasOut out = run_nas(noel, workloads::NasKernel::kLU,
                         workloads::NasClass::kA, 16, 0.12);
    const ftapi::RankStats t = out.report.totals();
    std::printf("  pb %.3f%%, %.0f Mop/s\n",
                100.0 * static_cast<double>(t.pb_bytes_sent) /
                    static_cast<double>(t.app_bytes_sent),
                out.mops());
  }
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
