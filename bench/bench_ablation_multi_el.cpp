// Ablation D — distributed Event Logger (the paper's §VI future work).
//
// "Using only one Event Logger will lead to a bottleneck as the number of
// processes grows ... assigning a subset of the nodes to one Event Logger
// seems the obvious way to gain scalability", with shards multicasting
// their stable-clock arrays. This bench runs the paper's bottleneck case —
// LU class A on 16 ranks, where Fig. 7 shows the single EL saturating —
// as one scenario sweep over 1, 2, 4 and 8 EL shards (the ROADMAP scaling
// study past 4; scenarios/ablation_multi_el.scn is the same experiment as
// a data file).
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header("Ablation D — distributed Event Logger on the LU/16 bottleneck",
               "paper SVI: sharding the EL relieves the ack backlog");
  util::Table table({"EL shards", "pb % of app bytes", "ack latency (us)",
                     "Mop/s", "EL peak queue"});
  const scenario::ScenarioSpec spec =
      variant_scenario("vcausal:el", 16)
          .nas(workloads::NasKernel::kLU, workloads::NasClass::kA, 0.12)
          .sweep("el_shards", {"1", "2", "4", "8"})
          .build();
  const scenario::RunSet set = scenario::run(spec);
  for (const scenario::RunResult& r : set.runs) {
    MPIV_CHECK(r.completed, "multi-EL run did not complete (%s)",
               r.label.c_str());
    const ftapi::RankStats t = r.report.totals();
    table.add_row({r.axes[0].second, util::cell("%.3f", r.report.piggyback_pct()),
                   util::cell("%.1f", t.el_ack_latency_us.mean()),
                   util::cell("%.0f", r.mops()),
                   util::cell("%llu", static_cast<unsigned long long>(
                                          r.report.el_stats.peak_queue))});
  }
  table.print();
  std::printf("\nno-EL reference for the same run:\n");
  {
    NasOut out = run_nas("vcausal:noel", workloads::NasKernel::kLU,
                         workloads::NasClass::kA, 16, 0.12);
    const ftapi::RankStats t = out.report.totals();
    std::printf("  pb %.3f%%, %.0f Mop/s\n",
                100.0 * static_cast<double>(t.pb_bytes_sent) /
                    static_cast<double>(t.app_bytes_sent),
                out.mops());
  }
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
