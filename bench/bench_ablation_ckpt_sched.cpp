// Ablation B: checkpoint scheduler policies (paper §IV-B.3).
//
// The checkpoint scheduler "is not necessary to insure fault tolerance but
// is intended to enhance performance": sender-based payloads are garbage
// collected when the *receiver* checkpoints, so the scheduling policy
// drives the sender-log memory watermark and the post-fault replay window.
// Compares round-robin / random / all-at-once on CG A / 8 ranks (causal+EL).
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header("Ablation B — checkpoint scheduler policies (CG A / 8, causal+EL)",
               "round-robin maximizes sender-log GC at steady server load");
  util::Table table({"policy", "run time (s)", "peak sender log (KB)",
                     "recovery events", "recovery time (ms)"});
  const Variant v{"Vcausal (EL)", runtime::ProtocolKind::kCausal,
                  causal::StrategyKind::kVcausal, true};
  for (const ckpt::Policy policy :
       {ckpt::Policy::kRoundRobin, ckpt::Policy::kRandom, ckpt::Policy::kNone}) {
    runtime::ClusterConfig cfg = variant_config(v, 8);
    cfg.ckpt_policy = policy;
    cfg.ckpt_interval = 150 * sim::kMillisecond;
    workloads::NasConfig ncfg{workloads::NasKernel::kCG, workloads::NasClass::kA,
                              8, 1.0};
    // Fault-free pass for the baseline completion time.
    sim::Time ref_time;
    {
      auto result = std::make_shared<workloads::ChecksumResult>(8);
      runtime::Cluster cluster(cfg);
      runtime::ClusterReport rep = cluster.run(workloads::make_nas_app(ncfg, result));
      MPIV_CHECK(rep.completed, "ablation run did not complete");
      ref_time = rep.completion_time;
    }
    // Same run with a mid-run crash of rank 1.
    cfg.faults.push_back(runtime::FaultSpec{ref_time / 2, 1});
    auto result = std::make_shared<workloads::ChecksumResult>(8);
    runtime::Cluster cluster(cfg);
    runtime::ClusterReport rep = cluster.run(workloads::make_nas_app(ncfg, result));
    MPIV_CHECK(rep.completed, "ablation fault run did not complete");
    const ftapi::RankStats t = rep.totals();
    table.add_row(
        {ckpt::policy_name(policy), util::cell("%.2f", sim::to_sec(rep.completion_time)),
         util::cell("%.1f", static_cast<double>(t.sender_log_peak_bytes) / 1024.0),
         util::cell("%llu", static_cast<unsigned long long>(t.recovery_events)),
         util::cell("%.2f", sim::to_ms(rep.rank_stats[1].recovery_total_time))});
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
