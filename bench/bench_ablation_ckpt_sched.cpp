// Ablation B: checkpoint scheduler policies (paper §IV-B.3).
//
// The checkpoint scheduler "is not necessary to insure fault tolerance but
// is intended to enhance performance": sender-based payloads are garbage
// collected when the *receiver* checkpoints, so the scheduling policy
// drives the sender-log memory watermark and the post-fault replay window.
// Compares round-robin / random / all-at-once on CG A / 8 ranks (causal+EL).
#include "bench/bench_common.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header("Ablation B — checkpoint scheduler policies (CG A / 8, causal+EL)",
               "round-robin maximizes sender-log GC at steady server load");
  util::Table table({"policy", "run time (s)", "peak sender log (KB)",
                     "recovery events", "recovery time (ms)"});
  for (const ckpt::Policy policy :
       {ckpt::Policy::kRoundRobin, ckpt::Policy::kRandom, ckpt::Policy::kNone}) {
    // Midrun-fault mode: a fault-free pass sizes the baseline, then the
    // same spec reruns with a mid-run crash of rank 1.
    const scenario::RunResult r = scenario::run_spec(
        variant_scenario("vcausal:el", 8)
            .nas(workloads::NasKernel::kCG, workloads::NasClass::kA, 1.0)
            .checkpoint(policy, 150 * sim::kMillisecond)
            .midrun_fault(1)
            .build());
    MPIV_CHECK(r.has_reference, "ablation reference did not run");
    MPIV_CHECK(r.completed, "ablation fault run did not complete");
    const ftapi::RankStats t = r.report.totals();
    table.add_row(
        {ckpt::policy_name(policy),
         util::cell("%.2f", sim::to_sec(r.report.completion_time)),
         util::cell("%.1f", static_cast<double>(t.sender_log_peak_bytes) / 1024.0),
         util::cell("%llu", static_cast<unsigned long long>(t.recovery_events)),
         util::cell("%.2f", sim::to_ms(r.report.rank_stats[1].recovery_total_time))});
  }
  table.print();
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
