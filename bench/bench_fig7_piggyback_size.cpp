// Fig. 7: amount of piggybacked data exchanged during BT/CG/LU class A as a
// percentage of total application data, for the three reduction strategies
// with and without the Event Logger.
//
// Paper values (%), per kernel at its largest size in this sweep:
//   BT/16:  EL {0.141, 0.138, 0.154}  no EL {7.04, 3.01, 5.9}
//   CG/16:  EL {0.492, 0.433, 0.482}  no EL {11.8, 3.95, 4.97}
//   LU/16:  EL {13.6, 7.19, 13.8}     no EL {50.3, 13.1, 39.8}
// Shape: the EL shrinks piggyback volume by one to two orders of magnitude
// for every strategy; without it Vcausal piggybacks the most and the graph
// strategies reduce further; LU/16 saturates the single EL so even with it
// the volume stays high.
#include "bench/fig78_common.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header("Fig. 7 — piggybacked data, % of application data exchanged",
               "EL cuts volume 10-100x; Vcausal worst w/o EL; LU/16 stresses the EL");
  for (const Fig78Config& c : fig78_configs()) {
    if (c.kernel == workloads::NasKernel::kFT) continue;  // Fig. 7 shows BT/CG/LU
    std::printf("\n-- %s class %c --\n", workloads::nas_kernel_name(c.kernel),
                workloads::nas_class_letter(c.klass));
    std::vector<std::string> headers = {"#procs"};
    for (const char* v : causal_variants()) headers.push_back(variant_label(v));
    util::Table table(headers);
    for (const int procs : c.procs) {
      std::vector<std::string> row = {util::cell("%d", procs)};
      for (const char* v : causal_variants()) {
        const Fig78Cell cell = run_fig78_cell(v, c, procs);
        row.push_back(util::cell("%.3f", cell.pb_pct));
      }
      table.add_row(row);
    }
    table.print();
  }
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
