// Ablation C: wire-format factoring (paper §III-C).
//
// Vcausal/Manetho factor events by creator rank ({rid, nb, events}); the
// LogOn partial order forbids factoring, so every event carries its own
// creator+sequence and is wider. For tiny piggybacks the factored block
// header dominates and the per-event format is actually smaller — the
// paper's "LU benchmark for four nodes highlights the case where no
// factoring can be accomplished". This bench reports measured bytes/event
// for Manetho (factored) vs LogOn (per-event) at both ends of the spectrum.
#include "bench/fig78_common.hpp"
#include "src/causal/wire.hpp"

namespace mpiv::bench {
namespace {

int run() {
  print_header("Ablation C — factored vs per-event piggyback encoding (LU A)",
               "LogOn wider per event, except when blocks are tiny (LU/4)");
  util::Table table({"#procs", "variant", "events", "pb bytes", "bytes/event"});
  const Fig78Config lu{workloads::NasKernel::kLU, workloads::NasClass::kA,
                       {4, 16}, 0.12};
  for (const int procs : lu.procs) {
    for (const char* v : causal_variants()) {
      // Volumes are biggest without the EL.
      if (std::string(v).find(":noel") == std::string::npos) continue;
      const Fig78Cell cell = run_fig78_cell(v, lu, procs);
      const ftapi::RankStats t = cell.report.totals();
      if (t.pb_events_sent == 0) continue;
      table.add_row({util::cell("%d", procs), variant_label(v),
                     util::cell("%llu", static_cast<unsigned long long>(t.pb_events_sent)),
                     util::cell("%llu", static_cast<unsigned long long>(t.pb_bytes_sent)),
                     util::cell("%.2f", static_cast<double>(t.pb_bytes_sent) /
                                            static_cast<double>(t.pb_events_sent))});
    }
  }
  table.print();
  std::printf(
      "\nFormat constants: factored block = %llu B header + %llu B/event;\n"
      "per-event (LogOn) = %llu B/event flat.\n",
      static_cast<unsigned long long>(causal::wire::kFactoredBlockHeader),
      static_cast<unsigned long long>(causal::wire::kFactoredPerEvent),
      static_cast<unsigned long long>(causal::wire::kPlainPerEvent));
  return 0;
}

}  // namespace
}  // namespace mpiv::bench

int main() { return mpiv::bench::run(); }
