// Shared runner for Fig. 7 (piggyback volume) and Fig. 8 (piggyback
// management time): one sweep over the NAS kernels x process counts x the
// six causal variants, reused by the three bench binaries.
#pragma once

#include "bench/bench_common.hpp"

namespace mpiv::bench {

struct Fig78Config {
  workloads::NasKernel kernel;
  workloads::NasClass klass;
  std::vector<int> procs;
  double scale;
};

inline const std::vector<Fig78Config>& fig78_configs() {
  using workloads::NasClass;
  using workloads::NasKernel;
  static const std::vector<Fig78Config> cfgs = {
      {NasKernel::kBT, NasClass::kA, {4, 9, 16}, 0.15},
      {NasKernel::kCG, NasClass::kA, {2, 4, 8, 16}, 1.0},
      {NasKernel::kLU, NasClass::kA, {2, 4, 8, 16}, 0.12},
      {NasKernel::kFT, NasClass::kA, {2, 4, 8, 16}, 1.0},
  };
  return cfgs;
}

struct Fig78Cell {
  runtime::ClusterReport report;
  double pb_pct = 0;          // piggyback bytes, % of app bytes (Fig. 7)
  double send_cpu_s = 0;      // cumulative piggyback send time (Fig. 8a)
  double recv_cpu_s = 0;      // cumulative piggyback receive time (Fig. 8a)
  double cpu_pct = 0;         // piggyback time, % of execution time (Fig. 8b)
};

inline Fig78Cell run_fig78_cell(const char* variant, const Fig78Config& c,
                                int procs) {
  NasOut out = run_nas(variant, c.kernel, c.klass, procs, c.scale);
  Fig78Cell cell;
  cell.report = out.report;
  const ftapi::RankStats t = out.report.totals();
  cell.pb_pct = t.app_bytes_sent
                    ? 100.0 * static_cast<double>(t.pb_bytes_sent) /
                          static_cast<double>(t.app_bytes_sent)
                    : 0.0;
  cell.send_cpu_s = sim::to_sec(t.pb_send_cpu);
  cell.recv_cpu_s = sim::to_sec(t.pb_recv_cpu);
  // CPU fraction: cumulative piggyback time across ranks over the total
  // CPU time (wall x ranks) — the paper's "percent of total execution".
  const double exec = sim::to_sec(out.report.completion_time) * procs;
  cell.cpu_pct = exec > 0 ? 100.0 * (cell.send_cpu_s + cell.recv_cpu_s) / exec : 0.0;
  return cell;
}

}  // namespace mpiv::bench
