// NAS kernel skeleton tests: completion, cross-protocol checksum agreement,
// fault recovery on every kernel, and the workload metadata tables.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "workloads/nas.hpp"

namespace mpiv {
namespace {

using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::ClusterReport;
using runtime::FaultSpec;
using runtime::ProtocolKind;
using workloads::ChecksumResult;
using workloads::NasClass;
using workloads::NasConfig;
using workloads::NasKernel;

constexpr NasKernel kAllKernels[] = {NasKernel::kBT, NasKernel::kCG,
                                     NasKernel::kLU, NasKernel::kFT,
                                     NasKernel::kMG, NasKernel::kSP};

int small_ranks(NasKernel k) {
  return (k == NasKernel::kBT || k == NasKernel::kSP) ? 4 : 4;
}

struct NasRun {
  ClusterReport report;
  ChecksumResult checksums{0};
};

NasRun run_nas(ClusterConfig cfg, NasConfig ncfg) {
  ncfg.nranks = cfg.nranks;
  auto result = std::make_shared<ChecksumResult>(cfg.nranks);
  Cluster cluster(cfg);
  ClusterReport rep = cluster.run(workloads::make_nas_app(ncfg, result));
  return {rep, *result};
}

TEST(NasMeta, ValidRankCounts) {
  EXPECT_TRUE(workloads::nas_valid_nranks(NasKernel::kBT, 9));
  EXPECT_TRUE(workloads::nas_valid_nranks(NasKernel::kBT, 25));
  EXPECT_FALSE(workloads::nas_valid_nranks(NasKernel::kBT, 8));
  EXPECT_TRUE(workloads::nas_valid_nranks(NasKernel::kCG, 16));
  EXPECT_FALSE(workloads::nas_valid_nranks(NasKernel::kCG, 12));
  EXPECT_TRUE(workloads::nas_valid_nranks(NasKernel::kLU, 2));
}

TEST(NasMeta, FlopTablesAreOrdered) {
  for (NasKernel k : kAllKernels) {
    EXPECT_LT(workloads::nas_total_flops(k, NasClass::kS),
              workloads::nas_total_flops(k, NasClass::kA))
        << workloads::nas_kernel_name(k);
    EXPECT_LT(workloads::nas_total_flops(k, NasClass::kA),
              workloads::nas_total_flops(k, NasClass::kB));
    EXPECT_GT(workloads::nas_iterations(k, NasClass::kA), 0);
  }
}

class NasKernelTest : public ::testing::TestWithParam<NasKernel> {};

TEST_P(NasKernelTest, CompletesUnderVdummy) {
  const NasKernel k = GetParam();
  ClusterConfig cfg;
  cfg.nranks = small_ranks(k);
  cfg.protocol = ProtocolKind::kVdummy;
  NasConfig n{k, NasClass::kS, cfg.nranks, 1.0};
  NasRun out = run_nas(cfg, n);
  ASSERT_TRUE(out.report.completed) << workloads::nas_kernel_name(k);
  for (const std::uint64_t c : out.checksums.checksums) EXPECT_NE(c, 0u);
}

TEST_P(NasKernelTest, ProtocolsAgreeOnChecksums) {
  const NasKernel k = GetParam();
  ClusterConfig cfg;
  cfg.nranks = small_ranks(k);
  cfg.protocol = ProtocolKind::kVdummy;
  NasConfig n{k, NasClass::kS, cfg.nranks, 1.0};
  const NasRun ref = run_nas(cfg, n);
  ASSERT_TRUE(ref.report.completed);
  for (causal::StrategyKind s :
       {causal::StrategyKind::kVcausal, causal::StrategyKind::kManetho,
        causal::StrategyKind::kLogOn}) {
    ClusterConfig c2 = cfg;
    c2.protocol = ProtocolKind::kCausal;
    c2.strategy = s;
    for (bool el : {true, false}) {
      c2.event_logger = el;
      NasRun out = run_nas(c2, n);
      ASSERT_TRUE(out.report.completed);
      EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums)
          << workloads::nas_kernel_name(k) << "/"
          << causal::strategy_kind_name(s) << " el=" << el;
    }
  }
}

TEST_P(NasKernelTest, SurvivesCrashWithIdenticalResults) {
  const NasKernel k = GetParam();
  ClusterConfig cfg;
  cfg.nranks = small_ranks(k);
  cfg.protocol = ProtocolKind::kCausal;
  cfg.strategy = causal::StrategyKind::kManetho;
  cfg.ckpt_policy = ckpt::Policy::kRoundRobin;
  cfg.ckpt_interval = 100 * sim::kMillisecond;
  // Scale short kernels up so the fault strikes while every rank is still
  // running (a fault on a finished rank is correctly skipped).
  NasConfig n{k, NasClass::kS, cfg.nranks, 4.0};
  const NasRun ref = run_nas(cfg, n);
  ASSERT_TRUE(ref.report.completed);

  cfg.faults.push_back(FaultSpec{ref.report.completion_time / 5, 1});
  NasRun out = run_nas(cfg, n);
  ASSERT_TRUE(out.report.completed) << workloads::nas_kernel_name(k);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums)
      << workloads::nas_kernel_name(k);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, NasKernelTest,
                         ::testing::ValuesIn(kAllKernels),
                         [](const auto& info) {
                           return workloads::nas_kernel_name(info.param);
                         });

TEST(NasScaling, PiggybackGrowsWithoutEventLogger) {
  // The paper's headline: without the EL nothing is ever pruned, so the
  // piggyback volume must be substantially larger.
  ClusterConfig cfg;
  cfg.nranks = 4;
  cfg.protocol = ProtocolKind::kCausal;
  cfg.strategy = causal::StrategyKind::kVcausal;
  NasConfig n{NasKernel::kCG, NasClass::kS, cfg.nranks, 1.0};

  cfg.event_logger = true;
  const NasRun with_el = run_nas(cfg, n);
  cfg.event_logger = false;
  const NasRun without_el = run_nas(cfg, n);
  ASSERT_TRUE(with_el.report.completed);
  ASSERT_TRUE(without_el.report.completed);
  const auto t_el = with_el.report.totals();
  const auto t_no = without_el.report.totals();
  EXPECT_LT(t_el.pb_bytes_sent, t_no.pb_bytes_sent);
  EXPECT_LT(t_el.pb_events_sent, t_no.pb_events_sent);
}

}  // namespace
}  // namespace mpiv
