// Tests for the metrics subsystem: histogram bucket boundaries and
// percentile math, the engine's observation side-channel, sampler cadence
// and ring wrap, registry merge, the JSON/CSV report shape — and the
// mpiv_stat analysis layer (JSON parse, run flattening, top-N ranking,
// A/B diff). The metrics-on-vs-off schedule goldens live in
// tests/test_determinism.cpp (MetricsCaptureDoesNotPerturbTheGoldens);
// here the same neutrality is asserted as on-vs-off fingerprint equality
// through the scenario layer.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "metrics/metrics.hpp"
#include "metrics/stat.hpp"
#include "scenario/runner.hpp"
#include "sim/engine.hpp"
#include "util/stats.hpp"

namespace mpiv {
namespace {

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, BucketBoundaries) {
  using H = metrics::Histogram;
  // Bucket 0 is [0, 1) and absorbs everything below.
  EXPECT_EQ(H::bucket_of(0.0), 0);
  EXPECT_EQ(H::bucket_of(0.5), 0);
  EXPECT_EQ(H::bucket_of(0.999), 0);
  EXPECT_EQ(H::bucket_of(-7.0), 0);
  // Bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(H::bucket_of(1.0), 1);
  EXPECT_EQ(H::bucket_of(1.99), 1);
  EXPECT_EQ(H::bucket_of(2.0), 2);
  EXPECT_EQ(H::bucket_of(3.0), 2);
  EXPECT_EQ(H::bucket_of(4.0), 3);
  EXPECT_EQ(H::bucket_of(1023.0), 10);
  EXPECT_EQ(H::bucket_of(1024.0), 11);
  // The last bucket absorbs everything beyond 2^62.
  EXPECT_EQ(H::bucket_of(1e30), H::kBuckets - 1);
  // bucket_lo/hi are consistent with bucket_of at every edge.
  for (int i = 1; i < 20; ++i) {
    EXPECT_EQ(H::bucket_of(H::bucket_lo(i)), i) << i;
    EXPECT_EQ(H::bucket_of(H::bucket_hi(i)), i + 1) << i;
  }
}

TEST(Histogram, CountsLandInTheirBuckets) {
  metrics::Histogram h;
  for (double x : {0.2, 1.0, 1.5, 2.0, 3.0, 700.0}) h.add(x);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.bucket(0), 1u);  // 0.2
  EXPECT_EQ(h.bucket(1), 2u);  // 1.0, 1.5
  EXPECT_EQ(h.bucket(2), 2u);  // 2.0, 3.0
  EXPECT_EQ(h.bucket(10), 1u);  // 700 in [512, 1024)
}

TEST(Histogram, PercentilesAreMonotoneAndClampedToTheObservedRange) {
  metrics::Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.percentile(0.0), 1.0);    // p <= 0 -> min
  EXPECT_EQ(h.percentile(100.0), 1000.0);  // p >= 100 -> max
  const double p50 = h.p50(), p90 = h.p90(), p99 = h.p99();
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
  EXPECT_GE(p50, h.min());
  // Uniform 1..1000: the log2 interpolation is coarse but must land in the
  // right half of the distribution.
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 800.0);
  EXPECT_GT(p99, 900.0);
}

TEST(Histogram, SingleValueCollapsesEveryPercentile) {
  metrics::Histogram h;
  for (int i = 0; i < 100; ++i) h.add(7.0);
  EXPECT_EQ(h.p50(), 7.0);
  EXPECT_EQ(h.p90(), 7.0);
  EXPECT_EQ(h.p99(), 7.0);
}

TEST(Histogram, EmptyReportsZeroes) {
  const metrics::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

// ftapi::RankStats swapped its ack-latency util::Accumulator for a
// Histogram; the fault-free goldens require mean/min/max to stay
// bit-identical on the same input stream.
TEST(Histogram, MomentsAreBitIdenticalToTheAccumulatorItReplaced) {
  metrics::Histogram h;
  util::Accumulator a;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double v = static_cast<double>(x % 100000) / 7.0;
    h.add(v);
    a.add(v);
  }
  EXPECT_EQ(h.count(), a.count());
  const double hm = h.mean(), am = a.mean();
  EXPECT_EQ(std::memcmp(&hm, &am, sizeof(double)), 0);
  const double hs = h.sum(), as = a.sum();
  EXPECT_EQ(std::memcmp(&hs, &as, sizeof(double)), 0);
  EXPECT_EQ(h.min(), a.min());
  EXPECT_EQ(h.max(), a.max());
}

TEST(Histogram, MergeAddsCountsAndBuckets) {
  metrics::Histogram a, b;
  for (double x : {1.0, 2.0, 4.0}) a.add(x);
  for (double x : {8.0, 16.0}) b.add(x);
  a.merge(b);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 16.0);
  EXPECT_EQ(a.bucket(4), 1u);  // 8
  EXPECT_EQ(a.bucket(5), 1u);  // 16
  a.reset();
  EXPECT_EQ(a.count(), 0u);
}

// ---------------------------------------------------------------------------
// Sampler + engine side-channel

TEST(Sampler, CadenceAndRingWrap) {
  metrics::Sampler s(/*interval=*/10, /*capacity=*/4);
  std::int64_t level = 0;
  s.add_probe("level", [&level] { return level; });
  ASSERT_EQ(s.columns().size(), 1u);
  for (int i = 1; i <= 7; ++i) {
    level = i * 100;
    s.tick(i * 10);
  }
  EXPECT_EQ(s.total_rows(), 7u);
  EXPECT_EQ(s.retained_rows(), 4u);
  EXPECT_EQ(s.dropped(), 3u);
  // Oldest-to-newest visit starts at the first retained row (t = 40).
  std::vector<sim::Time> times;
  std::vector<std::int64_t> values;
  s.for_each_row([&](sim::Time t, const std::int64_t* row, std::size_t n) {
    ASSERT_EQ(n, 1u);
    times.push_back(t);
    values.push_back(row[0]);
  });
  EXPECT_EQ(times, (std::vector<sim::Time>{40, 50, 60, 70}));
  EXPECT_EQ(values, (std::vector<std::int64_t>{400, 500, 600, 700}));
}

TEST(Sampler, EngineSideChannelFiresOnTheGridWithoutPerturbingTheRun) {
  // Reference run: no sampler armed.
  std::uint64_t ref_executed = 0;
  {
    sim::Engine eng;
    for (int i = 0; i < 10; ++i) eng.at(i * 7, [] {});
    eng.at(95, [] {});
    ref_executed = eng.run();
  }
  // Armed run: identical schedule, plus ticks at 10, 20, ... between events.
  sim::Engine eng;
  for (int i = 0; i < 10; ++i) eng.at(i * 7, [] {});
  eng.at(95, [] {});
  std::vector<sim::Time> ticks;
  eng.set_sampler(/*interval=*/10, /*start=*/10,
                  [&ticks](sim::Time t) { ticks.push_back(t); });
  const std::uint64_t executed = eng.run();
  EXPECT_EQ(executed, ref_executed);  // ticks never count as events
  // Every grid point up to the last event time fired exactly once, in order.
  ASSERT_EQ(ticks.size(), 9u);
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i], static_cast<sim::Time>((i + 1) * 10));
  }
}

// ---------------------------------------------------------------------------
// Registry

TEST(Registry, MergeSumsCountersAndKeepsGaugeWatermarks) {
  metrics::Registry a, b;
  a.counter("ops").add(3);
  b.counter("ops").add(4);
  b.counter("only_b").add(1);
  a.gauge("depth").set(5);
  b.gauge("depth").set(2);
  a.histogram("lat").add(10.0);
  b.histogram("lat").add(20.0);
  a.merge(b);
  EXPECT_EQ(a.counters().at("ops").value(), 7u);
  EXPECT_EQ(a.counters().at("only_b").value(), 1u);
  EXPECT_EQ(a.gauges().at("depth").value(), 5);  // max, not sum
  EXPECT_EQ(a.histograms().at("lat").count(), 2u);
}

TEST(Registry, SnapshotIsNameOrderedAndCarriesTheSeries) {
  metrics::Registry r;
  r.counter("z").add(1);
  r.counter("a").add(2);
  r.histogram("lat").add(4.0);
  metrics::Sampler s(/*interval=*/10, /*capacity=*/8);
  s.add_probe("depth", [] { return std::int64_t{42}; });
  s.tick(10);
  s.tick(20);
  const metrics::Snapshot snap = r.snapshot(&s);
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(snap.sample_interval, 10);
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a");  // std::map order
  EXPECT_EQ(snap.counters[1].first, "z");
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  ASSERT_EQ(snap.series_rows(), 2u);
  EXPECT_EQ(snap.series_columns, (std::vector<std::string>{"depth"}));
  EXPECT_EQ(snap.series_values, (std::vector<std::int64_t>{42, 42}));
  const std::string csv = snap.series_csv();
  EXPECT_EQ(csv, "t_ns,depth\n10,42\n20,42\n");
  // A default snapshot means metrics were off.
  EXPECT_FALSE(metrics::Snapshot{}.enabled);
}

// ---------------------------------------------------------------------------
// End-to-end report shape through the scenario layer

scenario::RunResult run_small(bool metered) {
  scenario::ScenarioBuilder b("metrics_e2e");
  b.variant("vcausal:el").nranks(4).seed(7);
  b.random_any(/*iterations=*/12, /*wseed=*/3, /*bytes=*/1024);
  if (metered) b.metrics().metrics_sample_interval(50 * sim::kMicrosecond);
  return scenario::run_spec(b.build());
}

TEST(Report, MetricsObjectAndAckPercentilesAppearOnlyWhenEnabled) {
  const scenario::RunResult on = run_small(/*metered=*/true);
  ASSERT_TRUE(on.completed);
  ASSERT_TRUE(on.report.metrics.enabled);
  EXPECT_FALSE(on.report.metrics.histograms.empty());
  EXPECT_GT(on.report.metrics.series_rows(), 0u);
  EXPECT_EQ(on.report.metrics.series_csv().rfind("t_ns,", 0), 0u);

  const std::string json_on =
      scenario::to_json(scenario::RunSet{"m", "t", false, {on}});
  EXPECT_NE(json_on.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(json_on.find("\"p50_ack_us\":"), std::string::npos);
  EXPECT_NE(json_on.find("\"p99_ack_us\":"), std::string::npos);
  EXPECT_NE(json_on.find("\"el.ack_us\""), std::string::npos);

  // Metrics off: the report keeps its pre-metrics shape, byte for byte.
  const scenario::RunResult off = run_small(/*metered=*/false);
  EXPECT_FALSE(off.report.metrics.enabled);
  const std::string json_off =
      scenario::to_json(scenario::RunSet{"m", "t", false, {off}});
  EXPECT_EQ(json_off.find("\"metrics\":"), std::string::npos);
  EXPECT_EQ(json_off.find("\"p50_ack_us\":"), std::string::npos);
}

// Schedule neutrality through the full stack: the paper-facing counters of
// a metered run equal the unmetered run exactly (the absolute goldens live
// in tests/test_determinism.cpp).
TEST(Report, MetricsOnAndOffFingerprintsAreIdentical) {
  const scenario::RunResult on = run_small(/*metered=*/true);
  const scenario::RunResult off = run_small(/*metered=*/false);
  EXPECT_EQ(on.events_executed, off.events_executed);
  EXPECT_EQ(on.wire_bytes, off.wire_bytes);
  EXPECT_EQ(on.report.totals().pb_bytes_sent, off.report.totals().pb_bytes_sent);
  EXPECT_EQ(on.checksum_digest(), off.checksum_digest());
  // And mean_ack_us is bit-identical (the histogram embeds the accumulator).
  const double a = on.report.rank_stats[0].el_ack_latency_us.mean();
  const double b = off.report.rank_stats[0].el_ack_latency_us.mean();
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
}

// ---------------------------------------------------------------------------
// stat.hpp: JSON parse, flatten, top-N, diff

TEST(Stat, ParsesJsonPreservingMemberOrder) {
  const metrics::Json doc = metrics::parse_json(
      "{\"z\": 1.5, \"a\": [1, 2], \"s\": \"x\\u0041\", \"b\": true, "
      "\"n\": null, \"o\": {\"k\": -3e2}}");
  ASSERT_EQ(doc.kind, metrics::Json::Kind::kObject);
  ASSERT_EQ(doc.members.size(), 6u);
  EXPECT_EQ(doc.members[0].first, "z");  // file order, not sorted
  EXPECT_EQ(doc.members[0].second.number, 1.5);
  EXPECT_EQ(doc.members[1].second.items.size(), 2u);
  EXPECT_EQ(doc.members[2].second.str, "xA");
  EXPECT_TRUE(doc.members[3].second.boolean);
  ASSERT_NE(doc.find("o"), nullptr);
  EXPECT_EQ(doc.find("o")->find("k")->number, -300.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(metrics::parse_json("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(metrics::parse_json("[1, 2] trailing"), std::runtime_error);
}

TEST(Stat, ExtractsAndFlattensRealReports) {
  const scenario::RunResult r = run_small(/*metered=*/true);
  const std::string json =
      scenario::to_json(scenario::RunSet{"m", "t", false, {r}});
  const metrics::Json doc = metrics::parse_json(json);
  const std::vector<metrics::RunMetrics> runs = metrics::extract_runs(doc);
  ASSERT_EQ(runs.size(), 1u);
  const metrics::RunMetrics& run = runs[0];
  EXPECT_FALSE(run.skipped);
  ASSERT_NE(run.find("events_executed"), nullptr);
  EXPECT_EQ(*run.find("events_executed"),
            static_cast<double>(r.events_executed));
  EXPECT_NE(run.find("el.p99_ack_us"), nullptr);
  EXPECT_NE(run.find("metrics.histograms.el.ack_us.p99"), nullptr);
  EXPECT_EQ(run.find("nope"), nullptr);
  // Multi-set envelopes unwrap too; run-less documents throw.
  const std::string multi = scenario::to_json(std::vector<scenario::RunSet>{
      scenario::RunSet{"m", "t", false, {r}},
      scenario::RunSet{"m2", "t", false, {r}}});
  EXPECT_EQ(metrics::extract_runs(metrics::parse_json(multi)).size(), 2u);
  EXPECT_THROW(metrics::extract_runs(metrics::parse_json("{}")),
               std::runtime_error);
}

TEST(Stat, TopRowsRankPerRankInstruments) {
  metrics::RunMetrics run;
  run.label = "x";
  run.values = {
      {"metrics.histograms.rank0.ack_us.p99", 10.0},
      {"metrics.histograms.rank1.ack_us.p99", 50.0},
      {"metrics.histograms.rank1.ack_us.count", 4.0},
      {"metrics.histograms.rank2.ack_us.p99", 30.0},
      {"metrics.counters.el0.stored_ops", 200.0},
      {"metrics.counters.other", 1.0},  // no entity -> ignored
  };
  const std::vector<metrics::TopRow> rows = metrics::top_rows(run, 3);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].entity, "el0");  // 200 outweighs every rank
  EXPECT_EQ(rows[1].entity, "rank1");
  EXPECT_EQ(rows[1].weight_metric, "ack_us.p99");
  EXPECT_EQ(rows[2].entity, "rank2");
  EXPECT_EQ(rows[1].details.size(), 2u);
}

TEST(Stat, DiffReportsZeroDriftOnIdenticalRunsAndFlagsChanges) {
  const scenario::RunResult r = run_small(/*metered=*/true);
  const std::string json =
      scenario::to_json(scenario::RunSet{"m", "t", false, {r}});
  const metrics::Json a = metrics::parse_json(json);
  // Self-diff: the determinism contract mpiv_stat --diff enforces in CI.
  const metrics::DiffResult self = metrics::diff_reports(a, a, 0.0);
  EXPECT_TRUE(self.clean());
  EXPECT_EQ(self.runs_compared, 1u);
  EXPECT_GT(self.metrics_compared, 10u);

  // Perturb one metric: exact diff flags it, a loose tolerance forgives it.
  std::string bumped = json;
  const std::string needle = "\"events_executed\": ";
  const std::size_t pos = bumped.find(needle);
  ASSERT_NE(pos, std::string::npos);
  bumped.insert(pos + needle.size(), "1");  // prepend a digit: ~10x change
  const metrics::Json b = metrics::parse_json(bumped);
  const metrics::DiffResult strict = metrics::diff_reports(a, b, 0.0);
  ASSERT_FALSE(strict.clean());
  EXPECT_EQ(strict.drifting[0].metric, "events_executed");
  EXPECT_TRUE(metrics::diff_reports(a, b, 0.999).clean());

  // Runs present on only one side, and metrics present on only one side,
  // are reported rather than silently skipped.
  const metrics::Json small_a = metrics::parse_json(
      "{\"runs\": [{\"label\": \"x\", \"v\": 1, \"only_a\": 2}]}");
  const metrics::Json small_b = metrics::parse_json(
      "{\"runs\": [{\"label\": \"x\", \"v\": 1}, {\"label\": \"y\"}]}");
  const metrics::DiffResult lopsided =
      metrics::diff_reports(small_a, small_b, 0.0);
  ASSERT_EQ(lopsided.unmatched_runs.size(), 1u);
  EXPECT_EQ(lopsided.unmatched_runs[0], "y (only in B)");
  ASSERT_EQ(lopsided.drifting.size(), 1u);
  EXPECT_EQ(lopsided.drifting[0].metric, "only_a");
  EXPECT_EQ(lopsided.drifting[0].missing_in, 2);
}

}  // namespace
}  // namespace mpiv
