// Cross-process equivalence harness for the parallel sweep runner: the
// forked worker pool must be invisible in the report. Serial and --jobs N
// executions of the bundled fault grids must produce byte-identical JSON
// (same stanzas, same tallies, same goldens); a worker crash must cost
// exactly its own point (classified `failed`), never the grid.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace mpiv {
namespace {

scenario::ScenarioSpec load(const char* name) {
  const std::string path =
      std::string(MPIV_SOURCE_DIR) + "/scenarios/" + name;
  return scenario::parse_scenario_file(path);
}

std::string run_json(const char* scn, int jobs) {
  scenario::RunOptions opt;
  opt.quick = true;  // the CI-sized grid; identity must hold regardless
  opt.jobs = jobs;
  return scenario::to_json(scenario::run(load(scn), opt));
}

// ---------------------------------------------------------------------------
// Byte identity: the headline contract. Every bundled fault grid renders
// the same bytes out of one process or five.
// ---------------------------------------------------------------------------

TEST(SweepParallel, FaultCampaignByteIdentical) {
  EXPECT_EQ(run_json("fault_campaign.scn", 1), run_json("fault_campaign.scn", 4));
}

TEST(SweepParallel, ChaosSoakByteIdentical) {
  // The chaos grid exercises every outcome class including abandoned
  // points, stochastic fault schedules, and reference passes.
  EXPECT_EQ(run_json("chaos_soak.scn", 1), run_json("chaos_soak.scn", 4));
}

TEST(SweepParallel, FamilyRaceByteIdentical) {
  // Protocol families (replica promotions, ULFM repairs) emit their own
  // conditional JSON sections — the splice must preserve them too.
  EXPECT_EQ(run_json("family_race.scn", 1), run_json("family_race.scn", 4));
}

TEST(SweepParallel, SpecParallelismKeyDrivesThePool) {
  // runner.parallelism in the spec is the no-flag default for run().
  scenario::ScenarioSpec spec = load("fault_campaign.scn");
  spec.runner_parallelism = 3;
  scenario::RunOptions opt;
  opt.quick = true;
  const std::string via_spec = scenario::to_json(scenario::run(spec, opt));
  EXPECT_EQ(via_spec, run_json("fault_campaign.scn", 1));
}

// ---------------------------------------------------------------------------
// --jobs 1 is the exact serial path: results are fully populated in
// process, with no worker transport artifacts.
// ---------------------------------------------------------------------------

TEST(SweepParallel, Jobs1IsTheInProcessSerialPath) {
  scenario::RunOptions opt;
  opt.quick = true;
  opt.jobs = 1;
  std::vector<const scenario::RunPoint*> order;
  opt.on_result = [&order](const scenario::RunPoint& p,
                           const scenario::RunResult&) {
    order.push_back(&p);
  };
  const scenario::RunSet set = scenario::run(load("chaos_soak.scn"), opt);
  ASSERT_FALSE(set.runs.empty());
  std::size_t ran = 0;
  for (const scenario::RunResult& r : set.runs) {
    EXPECT_TRUE(r.prerendered_json.empty()) << r.label;
    EXPECT_EQ(r.forced_outcome, -1) << r.label;
    EXPECT_FALSE(r.failed) << r.label;
    if (!r.skipped) {
      ++ran;
      EXPECT_FALSE(r.checksums.empty()) << r.label;
      EXPECT_GT(r.events_executed, 0u) << r.label;
    }
  }
  EXPECT_GT(ran, 0u);
  // Serial mode reports progress in sweep order.
  EXPECT_EQ(order.size(), set.runs.size());
}

TEST(SweepParallel, ParallelResultsCarryTheSummaryFields) {
  scenario::RunOptions opt;
  opt.quick = true;
  opt.jobs = 4;
  const scenario::RunSet par = scenario::run(load("chaos_soak.scn"), opt);
  opt.jobs = 1;
  const scenario::RunSet ser = scenario::run(load("chaos_soak.scn"), opt);
  ASSERT_EQ(par.runs.size(), ser.runs.size());
  for (std::size_t i = 0; i < par.runs.size(); ++i) {
    EXPECT_EQ(par.runs[i].label, ser.runs[i].label);
    EXPECT_EQ(par.runs[i].outcome(), ser.runs[i].outcome()) << par.runs[i].label;
    EXPECT_EQ(par.runs[i].completed, ser.runs[i].completed);
    EXPECT_EQ(par.runs[i].report.completion_time,
              ser.runs[i].report.completion_time);
  }
  // And the tallies (what mpiv_run's exit code and the soak aggregation
  // read) agree field for field.
  const scenario::OutcomeCounts a = par.tally();
  const scenario::OutcomeCounts b = ser.tally();
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.completed_shrunk, b.completed_shrunk);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.recovered_exact, b.recovered_exact);
}

// ---------------------------------------------------------------------------
// Worker-crash containment: a dying worker costs exactly its point.
// ---------------------------------------------------------------------------

TEST(SweepParallel, WorkerCrashBecomesAFailedPointNotAGridAbort) {
  scenario::ScenarioSpec spec = load("chaos_soak.scn");
  scenario::apply_quick(spec);
  const std::vector<scenario::RunPoint> points = scenario::expand(spec);
  ASSERT_GT(points.size(), 6u);
  const std::string victim = points[5].label;

  scenario::RunOptions opt;
  opt.jobs = 4;
  opt.before_point = [victim](const scenario::RunPoint& p) {
    if (p.label == victim) std::abort();  // inside the forked worker
  };
  const scenario::RunSet set = scenario::run(spec, opt);
  ASSERT_EQ(set.runs.size(), points.size());

  const scenario::RunResult& lost = set.runs[5];
  EXPECT_EQ(lost.outcome(), scenario::Outcome::kFailed);
  EXPECT_TRUE(lost.failed);
  EXPECT_EQ(lost.label, victim);
  EXPECT_NE(lost.fail_reason.find("worker"), std::string::npos)
      << lost.fail_reason;

  // Exactly one point died; every other point still delivered.
  const scenario::OutcomeCounts t = set.tally();
  EXPECT_EQ(t.failed, 1u);
  EXPECT_TRUE(t.degraded());
  EXPECT_EQ(t.total(), set.runs.size());
  for (std::size_t i = 0; i < set.runs.size(); ++i) {
    if (i == 5) continue;
    EXPECT_NE(set.runs[i].outcome(), scenario::Outcome::kFailed)
        << set.runs[i].label;
  }

  // The report stays renderable and names the casualty.
  const std::string json = scenario::to_json(set);
  EXPECT_NE(json.find("\"failed\": true"), std::string::npos);
  EXPECT_NE(json.find("\"fail_reason\""), std::string::npos);
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);
}

}  // namespace
}  // namespace mpiv
