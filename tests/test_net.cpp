// Unit tests for the network model and communication daemon: serialization
// and latency math, ingress contention, duplex modes, crash-epoch frame
// dropping, rendezvous, and the cost model.
#include <gtest/gtest.h>

#include "net/daemon.hpp"
#include "net/network.hpp"
#include "net/service_port.hpp"

namespace mpiv::net {
namespace {

Message frame(NodeId src, NodeId dst, std::uint64_t wire_bytes,
              MsgKind kind = MsgKind::kControl) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.kind = kind;
  m.wire_bytes = wire_bytes;
  return m;
}

struct Net {
  sim::Engine eng;
  CostModel cost;
  Network net{eng, 4, cost};
  std::vector<std::pair<sim::Time, Message>> delivered;

  void attach_all() {
    for (NodeId n = 0; n < 4; ++n) {
      net.attach(n, [this](Message&& m) {
        delivered.emplace_back(eng.now(), std::move(m));
      });
    }
  }
};

TEST(Network, OneWayTimeIsTxPlusWire) {
  Net t;
  t.attach_all();
  const std::uint64_t bytes = 10000;
  t.net.send(frame(0, 1, bytes));
  t.eng.run();
  ASSERT_EQ(t.delivered.size(), 1u);
  EXPECT_EQ(t.delivered[0].first, t.cost.tx_time(bytes) + t.cost.wire_latency);
}

TEST(Network, EgressSerializesBackToBackFrames) {
  Net t;
  t.attach_all();
  t.net.send(frame(0, 1, 5000));
  t.net.send(frame(0, 2, 5000));
  t.eng.run();
  ASSERT_EQ(t.delivered.size(), 2u);
  // Second frame waits for the first to finish serializing at the source.
  EXPECT_EQ(t.delivered[1].first - t.delivered[0].first, t.cost.tx_time(5000));
}

TEST(Network, IngressContentionQueuesConcurrentSenders) {
  // Two senders to one destination: the second transfer queues on the
  // destination NIC — the mechanism that saturates a single Event Logger.
  Net t;
  t.attach_all();
  t.net.send(frame(0, 3, 20000));
  t.net.send(frame(1, 3, 20000));
  t.eng.run();
  ASSERT_EQ(t.delivered.size(), 2u);
  EXPECT_GE(t.delivered[1].first - t.delivered[0].first, t.cost.tx_time(20000));
}

TEST(Network, CrashDropsInFlightTowardNode) {
  Net t;
  t.attach_all();
  t.net.send(frame(0, 1, 100000));  // ~9 ms transfer
  t.eng.run_until(sim::from_ms(1));
  t.net.crash_node(1);
  t.eng.run();
  EXPECT_TRUE(t.delivered.empty());
  EXPECT_EQ(t.net.frames_dropped(), 1u);
}

TEST(Network, FramesFromCrashedNodeStillDeliver) {
  // A frame already on the wire when its sender dies was sent: deliver it.
  Net t;
  t.attach_all();
  t.net.send(frame(0, 1, 1000));
  t.eng.run_until(10);  // frame is in flight
  t.net.crash_node(0);
  t.eng.run();
  EXPECT_EQ(t.delivered.size(), 1u);
}

TEST(Network, RestartAcceptsNewTraffic) {
  Net t;
  t.attach_all();
  t.net.crash_node(2);
  t.net.restart_node(2);
  t.net.send(frame(0, 2, 1000));
  t.eng.run();
  EXPECT_EQ(t.delivered.size(), 1u);
}

TEST(Network, DeadNodeEmitsNothing) {
  Net t;
  t.attach_all();
  t.net.crash_node(0);
  t.net.send(frame(0, 1, 1000));
  t.eng.run();
  EXPECT_TRUE(t.delivered.empty());
}

TEST(Network, PartitionHoldsCrossingFramesUntilHeal) {
  Net t;
  t.attach_all();
  const sim::Time window = 20 * sim::kMillisecond;
  const sim::Time backoff = 2 * sim::kMillisecond;
  t.net.partition({0, 1}, {2, 3}, window, backoff);
  EXPECT_EQ(t.net.active_partitions(), 1u);
  t.net.send(frame(0, 2, 1000));  // crosses the cut: held
  t.net.send(frame(0, 1, 1000));  // same side: unaffected
  t.eng.run();
  ASSERT_EQ(t.delivered.size(), 2u);
  EXPECT_EQ(t.net.frames_partitioned(), 1u);
  // Same-side frame sails through...
  EXPECT_EQ(t.delivered[0].second.dst, NodeId{1});
  EXPECT_LT(t.delivered[0].first, window);
  // ...the crossing frame arrives only after heal + backoff.
  EXPECT_EQ(t.delivered[1].second.dst, NodeId{2});
  EXPECT_GE(t.delivered[1].first, window + backoff);
  EXPECT_EQ(t.net.frames_dropped(), 0u);  // held, never lost
}

TEST(Network, PartitionHealPreservesSendOrder) {
  // Several frames from one source cross the cut mid-window; after the heal
  // they must reach the destination in their original send order (the
  // fabric retries are FIFO for equal release times and the ingress
  // serializer spaces them out).
  Net t;
  t.attach_all();
  t.net.partition({0}, {1}, 10 * sim::kMillisecond, sim::kMillisecond);
  for (std::uint64_t i = 0; i < 4; ++i) {
    Message m = frame(0, 1, 2000);
    m.ssn = i + 1;
    t.net.send(std::move(m));
  }
  t.eng.run();
  ASSERT_EQ(t.delivered.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t.delivered[i].second.ssn, i + 1);
    EXPECT_GE(t.delivered[i].first, 11 * sim::kMillisecond);
  }
  EXPECT_EQ(t.net.frames_partitioned(), 4u);
}

TEST(Network, OverlappingPartitionsCompose) {
  // A frame crossing two active cuts waits for the later heal.
  Net t;
  t.attach_all();
  t.net.partition({0}, {1}, 5 * sim::kMillisecond, 0);
  t.net.partition({0}, {1, 2}, 15 * sim::kMillisecond, 0);
  t.net.send(frame(0, 1, 1000));
  t.eng.run();
  ASSERT_EQ(t.delivered.size(), 1u);
  EXPECT_GE(t.delivered[0].first, 15 * sim::kMillisecond);
}

TEST(Daemon, CrashedDaemonDeliversNothingBeforeRestartAndKeepsOrder) {
  // While the daemon is down nothing crosses the delivery boundary — not
  // even frames whose CPU charge was already in flight when the crash hit —
  // and the backlog releases after restart in arrival (FIFO) order.
  sim::Engine eng;
  CostModel cost;
  Network net{eng, 2, cost};
  Daemon d0(net, 0, ChannelKind::kV);
  Daemon d1(net, 1, ChannelKind::kV);
  std::vector<std::pair<sim::Time, Message>> up1;
  d1.attach_upper([&](Message&& m) { up1.emplace_back(eng.now(), std::move(m)); });
  d0.attach_upper([](Message&&) {});

  d1.crash_daemon();
  for (std::uint64_t i = 1; i <= 3; ++i) {
    Message m;
    m.kind = MsgKind::kAppData;
    m.src = 0;
    m.dst = 1;
    m.src_rank = 0;
    m.dst_rank = 1;
    m.ssn = i;
    m.payload = Payload{512, i};
    d0.submit_app(std::move(m));
  }
  const sim::Time restart_at = 5 * sim::kMillisecond;
  std::size_t drained = 0;
  eng.at(restart_at, [&] { drained = d1.restart_daemon(); });
  eng.run();
  EXPECT_EQ(drained, 3u);
  ASSERT_EQ(up1.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(up1[i].second.ssn, i + 1);       // original send order
    EXPECT_GE(up1[i].first, restart_at);       // nothing leaked early
  }
}

TEST(Daemon, CrashedDaemonHoldsTrafficUntilRestart) {
  // While the daemon is down nothing moves in either direction; the backlog
  // drains in order on restart and nothing is lost.
  sim::Engine eng;
  CostModel cost;
  Network net{eng, 2, cost};
  Daemon d0(net, 0, ChannelKind::kV);
  Daemon d1(net, 1, ChannelKind::kV);
  std::vector<Message> up1;
  d1.attach_upper([&up1](Message&& m) { up1.push_back(std::move(m)); });
  d0.attach_upper([](Message&&) {});

  d1.crash_daemon();
  EXPECT_TRUE(d1.daemon_down());
  Message m;
  m.kind = MsgKind::kAppData;
  m.src = 0;
  m.dst = 1;
  m.src_rank = 0;
  m.dst_rank = 1;
  m.ssn = 1;
  m.payload = Payload{512, 7};
  d0.submit_app(std::move(m));
  eng.run();
  EXPECT_TRUE(up1.empty());  // arrived at the NIC, stuck in the socket buffer

  const std::size_t drained = d1.restart_daemon();
  EXPECT_FALSE(d1.daemon_down());
  EXPECT_EQ(drained, 1u);
  eng.run();
  ASSERT_EQ(up1.size(), 1u);
  EXPECT_EQ(up1[0].ssn, 1u);

  // reset() (a node-level restart) discards any new backlog.
  d1.crash_daemon();
  d1.reset();
  EXPECT_FALSE(d1.daemon_down());
  EXPECT_EQ(d1.restart_daemon(), 0u);
}

TEST(CostModel, TxTimeScalesWithBytes) {
  CostModel c;
  EXPECT_GT(c.tx_time(2000), c.tx_time(1000));
  // 100 Mb/s with framing overhead: 1 MB takes ~94 ms.
  const double ms = sim::to_ms(c.tx_time(1 << 20));
  EXPECT_NEAR(ms, 8.0 * 1.12 * 1.048576 * 10.0, 0.5);
}

TEST(CostModel, FlopsTime) {
  CostModel c;
  EXPECT_NEAR(sim::to_sec(c.flops_time(c.node_gflops * 1e9)), 1.0, 1e-9);
}

TEST(Daemon, AppMessageReachesPeerRuntime) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  Daemon d0(net, 0, ChannelKind::kV);
  Daemon d1(net, 1, ChannelKind::kV);
  std::vector<Message> up1;
  d0.attach_upper([](Message&&) {});
  d1.attach_upper([&](Message&& m) { up1.push_back(std::move(m)); });

  Message m;
  m.src = 0;
  m.dst = 1;
  m.kind = MsgKind::kAppData;
  m.src_rank = 0;
  m.dst_rank = 1;
  m.ssn = 1;
  m.payload = {512, 42};
  d0.submit_app(std::move(m));
  eng.run();
  ASSERT_EQ(up1.size(), 1u);
  EXPECT_EQ(up1[0].payload.check, 42u);
  EXPECT_EQ(d0.app_msgs_sent(), 1u);
  EXPECT_EQ(d0.app_bytes_sent(), 512u);
}

TEST(Daemon, RendezvousForLargeMessages) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  Daemon d0(net, 0, ChannelKind::kV);
  Daemon d1(net, 1, ChannelKind::kV);
  std::vector<Message> up1;
  d0.attach_upper([](Message&&) {});
  d1.attach_upper([&](Message&& m) { up1.push_back(std::move(m)); });

  Message big;
  big.src = 0;
  big.dst = 1;
  big.kind = MsgKind::kAppData;
  big.payload = {cost.eager_threshold + 1, 7};
  d0.submit_app(std::move(big));
  eng.run();
  ASSERT_EQ(up1.size(), 1u);  // RTS/CTS consumed inside the daemons
  EXPECT_EQ(up1[0].payload.check, 7u);
  // Three fabric crossings happened (RTS, CTS, DATA).
  EXPECT_EQ(net.frames_sent(), 3u);
}

TEST(Daemon, ResetDropsParkedRendezvous) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  Daemon d0(net, 0, ChannelKind::kV);
  Daemon d1(net, 1, ChannelKind::kV);
  std::vector<Message> up1;
  d0.attach_upper([](Message&&) {});
  d1.attach_upper([&](Message&& m) { up1.push_back(std::move(m)); });

  Message big;
  big.src = 0;
  big.dst = 1;
  big.kind = MsgKind::kAppData;
  big.payload = {cost.eager_threshold + 1, 7};
  d0.submit_app(std::move(big));
  d0.reset();  // crash before the CTS comes back: payload is gone
  eng.run();
  EXPECT_TRUE(up1.empty());
}

TEST(Daemon, P4HandoffCostsMoreThanVPipe) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  Daemon p4(net, 0, ChannelKind::kP4);
  Daemon v(net, 1, ChannelKind::kV);
  EXPECT_GT(p4.app_handoff_cost(1), v.app_handoff_cost(1));
  // Per-byte: P4 pays the extra staging copy.
  const sim::Time p4_per_byte = p4.app_handoff_cost(100000) - p4.app_handoff_cost(0);
  const sim::Time v_per_byte = v.app_handoff_cost(100000) - v.app_handoff_cost(0);
  EXPECT_GT(p4_per_byte, v_per_byte);
}

TEST(ServicePort, ChargesSerializeFifo) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  ServicePort port(net, 0);
  std::vector<sim::Time> at;
  port.charge_then(1000, [&] { at.push_back(eng.now()); });
  port.charge_then(500, [&] { at.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 1000);
  EXPECT_EQ(at[1], 1500);
}

}  // namespace
}  // namespace mpiv::net
