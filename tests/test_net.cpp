// Unit tests for the network model and communication daemon: serialization
// and latency math, ingress contention, duplex modes, crash-epoch frame
// dropping, rendezvous, and the cost model.
#include <gtest/gtest.h>

#include "net/daemon.hpp"
#include "net/network.hpp"
#include "net/service_port.hpp"

namespace mpiv::net {
namespace {

Message frame(NodeId src, NodeId dst, std::uint64_t wire_bytes,
              MsgKind kind = MsgKind::kControl) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.kind = kind;
  m.wire_bytes = wire_bytes;
  return m;
}

struct Net {
  sim::Engine eng;
  CostModel cost;
  Network net{eng, 4, cost};
  std::vector<std::pair<sim::Time, Message>> delivered;

  void attach_all() {
    for (NodeId n = 0; n < 4; ++n) {
      net.attach(n, [this](Message&& m) {
        delivered.emplace_back(eng.now(), std::move(m));
      });
    }
  }
};

TEST(Network, OneWayTimeIsTxPlusWire) {
  Net t;
  t.attach_all();
  const std::uint64_t bytes = 10000;
  t.net.send(frame(0, 1, bytes));
  t.eng.run();
  ASSERT_EQ(t.delivered.size(), 1u);
  EXPECT_EQ(t.delivered[0].first, t.cost.tx_time(bytes) + t.cost.wire_latency);
}

TEST(Network, EgressSerializesBackToBackFrames) {
  Net t;
  t.attach_all();
  t.net.send(frame(0, 1, 5000));
  t.net.send(frame(0, 2, 5000));
  t.eng.run();
  ASSERT_EQ(t.delivered.size(), 2u);
  // Second frame waits for the first to finish serializing at the source.
  EXPECT_EQ(t.delivered[1].first - t.delivered[0].first, t.cost.tx_time(5000));
}

TEST(Network, IngressContentionQueuesConcurrentSenders) {
  // Two senders to one destination: the second transfer queues on the
  // destination NIC — the mechanism that saturates a single Event Logger.
  Net t;
  t.attach_all();
  t.net.send(frame(0, 3, 20000));
  t.net.send(frame(1, 3, 20000));
  t.eng.run();
  ASSERT_EQ(t.delivered.size(), 2u);
  EXPECT_GE(t.delivered[1].first - t.delivered[0].first, t.cost.tx_time(20000));
}

TEST(Network, CrashDropsInFlightTowardNode) {
  Net t;
  t.attach_all();
  t.net.send(frame(0, 1, 100000));  // ~9 ms transfer
  t.eng.run_until(sim::from_ms(1));
  t.net.crash_node(1);
  t.eng.run();
  EXPECT_TRUE(t.delivered.empty());
  EXPECT_EQ(t.net.frames_dropped(), 1u);
}

TEST(Network, FramesFromCrashedNodeStillDeliver) {
  // A frame already on the wire when its sender dies was sent: deliver it.
  Net t;
  t.attach_all();
  t.net.send(frame(0, 1, 1000));
  t.eng.run_until(10);  // frame is in flight
  t.net.crash_node(0);
  t.eng.run();
  EXPECT_EQ(t.delivered.size(), 1u);
}

TEST(Network, RestartAcceptsNewTraffic) {
  Net t;
  t.attach_all();
  t.net.crash_node(2);
  t.net.restart_node(2);
  t.net.send(frame(0, 2, 1000));
  t.eng.run();
  EXPECT_EQ(t.delivered.size(), 1u);
}

TEST(Network, DeadNodeEmitsNothing) {
  Net t;
  t.attach_all();
  t.net.crash_node(0);
  t.net.send(frame(0, 1, 1000));
  t.eng.run();
  EXPECT_TRUE(t.delivered.empty());
}

TEST(CostModel, TxTimeScalesWithBytes) {
  CostModel c;
  EXPECT_GT(c.tx_time(2000), c.tx_time(1000));
  // 100 Mb/s with framing overhead: 1 MB takes ~94 ms.
  const double ms = sim::to_ms(c.tx_time(1 << 20));
  EXPECT_NEAR(ms, 8.0 * 1.12 * 1.048576 * 10.0, 0.5);
}

TEST(CostModel, FlopsTime) {
  CostModel c;
  EXPECT_NEAR(sim::to_sec(c.flops_time(c.node_gflops * 1e9)), 1.0, 1e-9);
}

TEST(Daemon, AppMessageReachesPeerRuntime) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  Daemon d0(net, 0, ChannelKind::kV);
  Daemon d1(net, 1, ChannelKind::kV);
  std::vector<Message> up1;
  d0.attach_upper([](Message&&) {});
  d1.attach_upper([&](Message&& m) { up1.push_back(std::move(m)); });

  Message m;
  m.src = 0;
  m.dst = 1;
  m.kind = MsgKind::kAppData;
  m.src_rank = 0;
  m.dst_rank = 1;
  m.ssn = 1;
  m.payload = {512, 42};
  d0.submit_app(std::move(m));
  eng.run();
  ASSERT_EQ(up1.size(), 1u);
  EXPECT_EQ(up1[0].payload.check, 42u);
  EXPECT_EQ(d0.app_msgs_sent(), 1u);
  EXPECT_EQ(d0.app_bytes_sent(), 512u);
}

TEST(Daemon, RendezvousForLargeMessages) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  Daemon d0(net, 0, ChannelKind::kV);
  Daemon d1(net, 1, ChannelKind::kV);
  std::vector<Message> up1;
  d0.attach_upper([](Message&&) {});
  d1.attach_upper([&](Message&& m) { up1.push_back(std::move(m)); });

  Message big;
  big.src = 0;
  big.dst = 1;
  big.kind = MsgKind::kAppData;
  big.payload = {cost.eager_threshold + 1, 7};
  d0.submit_app(std::move(big));
  eng.run();
  ASSERT_EQ(up1.size(), 1u);  // RTS/CTS consumed inside the daemons
  EXPECT_EQ(up1[0].payload.check, 7u);
  // Three fabric crossings happened (RTS, CTS, DATA).
  EXPECT_EQ(net.frames_sent(), 3u);
}

TEST(Daemon, ResetDropsParkedRendezvous) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  Daemon d0(net, 0, ChannelKind::kV);
  Daemon d1(net, 1, ChannelKind::kV);
  std::vector<Message> up1;
  d0.attach_upper([](Message&&) {});
  d1.attach_upper([&](Message&& m) { up1.push_back(std::move(m)); });

  Message big;
  big.src = 0;
  big.dst = 1;
  big.kind = MsgKind::kAppData;
  big.payload = {cost.eager_threshold + 1, 7};
  d0.submit_app(std::move(big));
  d0.reset();  // crash before the CTS comes back: payload is gone
  eng.run();
  EXPECT_TRUE(up1.empty());
}

TEST(Daemon, P4HandoffCostsMoreThanVPipe) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  Daemon p4(net, 0, ChannelKind::kP4);
  Daemon v(net, 1, ChannelKind::kV);
  EXPECT_GT(p4.app_handoff_cost(1), v.app_handoff_cost(1));
  // Per-byte: P4 pays the extra staging copy.
  const sim::Time p4_per_byte = p4.app_handoff_cost(100000) - p4.app_handoff_cost(0);
  const sim::Time v_per_byte = v.app_handoff_cost(100000) - v.app_handoff_cost(0);
  EXPECT_GT(p4_per_byte, v_per_byte);
}

TEST(ServicePort, ChargesSerializeFifo) {
  sim::Engine eng;
  CostModel cost;
  Network net(eng, 2, cost);
  ServicePort port(net, 0);
  std::vector<sim::Time> at;
  port.charge_then(1000, [&] { at.push_back(eng.now()); });
  port.charge_then(500, [&] { at.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 1000);
  EXPECT_EQ(at[1], 1500);
}

}  // namespace
}  // namespace mpiv::net
