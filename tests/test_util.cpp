// Unit tests for util: RNG determinism & distributions, buffer round-trips,
// sequence-window storage, slab recycling, statistics accumulators.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/buffer.hpp"
#include "util/rng.hpp"
#include "util/seq_window.hpp"
#include "util/slab.hpp"
#include "util/stats.hpp"

namespace mpiv::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, StateSaveRestoreReplaysStream) {
  Rng r(9);
  r.next_u64();
  const Rng::State st = r.state();
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(r.next_u64());
  r.restore(st);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.next_u64(), first[static_cast<size_t>(i)]);
}

TEST(Buffer, PrimitiveRoundTrip) {
  Buffer b;
  b.put_u8(0xAB);
  b.put_u16(0xBEEF);
  b.put_u32(0xDEADBEEFu);
  b.put_u64(0x0123456789ABCDEFull);
  b.put_i64(-42);
  b.put_f64(3.25);
  b.put_string("event-logger");
  EXPECT_EQ(b.get_u8(), 0xAB);
  EXPECT_EQ(b.get_u16(), 0xBEEF);
  EXPECT_EQ(b.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(b.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(b.get_i64(), -42);
  EXPECT_EQ(b.get_f64(), 3.25);
  EXPECT_EQ(b.get_string(), "event-logger");
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(Buffer, NestedBuffers) {
  Buffer inner;
  inner.put_u32(77);
  Buffer outer;
  outer.put_u8(1);
  outer.put_bytes(inner);
  outer.put_u8(2);
  EXPECT_EQ(outer.get_u8(), 1);
  BufferView got = outer.get_view();
  EXPECT_EQ(got.get_u32(), 77u);
  EXPECT_EQ(outer.get_u8(), 2);
}

TEST(Buffer, SizeCountsExactBytes) {
  Buffer b;
  b.put_u32(1);
  b.put_u64(2);
  EXPECT_EQ(b.size(), 12u);
}

TEST(BufferView, ReadsInPlaceWithoutConsumingParent) {
  Buffer b;
  b.put_u32(7);
  b.put_string("view");
  b.put_u64(99);
  BufferView v = b.view();
  EXPECT_EQ(v.get_u32(), 7u);
  EXPECT_EQ(v.get_string(), "view");
  EXPECT_EQ(v.get_u64(), 99u);
  EXPECT_EQ(v.remaining(), 0u);
  EXPECT_EQ(b.cursor(), 0u);  // parent cursor untouched
  EXPECT_EQ(b.get_u32(), 7u);
}

TEST(BufferView, GetViewParsesNestedRangeWithoutCopy) {
  Buffer inner;
  inner.put_u32(77);
  Buffer outer;
  outer.put_u8(1);
  outer.put_bytes(inner);
  outer.put_u8(2);
  EXPECT_EQ(outer.get_u8(), 1);
  BufferView got = outer.get_view();
  EXPECT_EQ(got.data(), outer.bytes().data() + 1 + 4);  // aliases the parent
  EXPECT_EQ(got.get_u32(), 77u);
  EXPECT_EQ(outer.get_u8(), 2);
}

TEST(BufferView, SkipAdvancesPastBlob) {
  Buffer b;
  b.put_u32(3);
  b.put_u8(1);
  b.put_u8(2);
  b.put_u8(3);
  b.put_u16(0xCAFE);
  BufferView v = b.view();
  const std::uint32_t n = v.get_u32();
  v.skip(n);
  EXPECT_EQ(v.get_u16(), 0xCAFE);
}

TEST(BufferViewDeath, UnderrunPanics) {
  Buffer b;
  b.put_u8(1);
  BufferView v = b.view();
  v.get_u8();
  EXPECT_DEATH(v.get_u32(), "underrun");
}

TEST(BufferDeath, UnderrunPanics) {
  Buffer b;
  b.put_u8(1);
  b.get_u8();
  EXPECT_DEATH(b.get_u32(), "underrun");
}

TEST(SeqWindow, EmplaceFindAndDuplicates) {
  SeqWindow<int> w;
  EXPECT_TRUE(w.empty());
  EXPECT_TRUE(w.emplace(1, 10));
  EXPECT_TRUE(w.emplace(3, 30));
  EXPECT_FALSE(w.emplace(3, 31));  // duplicate keeps the original
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(*w.find(3), 30);
  EXPECT_EQ(w.find(2), nullptr);  // hole
  EXPECT_EQ(w.find(4), nullptr);  // beyond top
  EXPECT_EQ(w.max_seq(), 3u);
}

TEST(SeqWindow, HolesIterateInOrder) {
  SeqWindow<int> w;
  // Insert out of order with gaps — the below-stable holes the causal
  // stores see when a sender piggybacks only its unstable suffix.
  for (std::uint64_t s : {9ull, 2ull, 5ull, 12ull}) {
    EXPECT_TRUE(w.emplace(s, static_cast<int>(s * 10)));
  }
  std::vector<std::uint64_t> seqs;
  w.for_each([&](std::uint64_t s, const int& v) {
    seqs.push_back(s);
    EXPECT_EQ(v, static_cast<int>(s * 10));
  });
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{2, 5, 9, 12}));
  seqs.clear();
  w.for_range(2, 9, [&](std::uint64_t s, const int&) { seqs.push_back(s); });
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{5, 9}));  // (lo, hi]
}

TEST(SeqWindow, PrunePrefixRejectsBelowBase) {
  SeqWindow<int> w;
  for (std::uint64_t s = 1; s <= 10; ++s) w.emplace(s, static_cast<int>(s));
  int dropped_sum = 0;
  w.prune_to(6, [&](const int& v) { dropped_sum += v; });
  EXPECT_EQ(dropped_sum, 1 + 2 + 3 + 4 + 5 + 6);
  EXPECT_EQ(w.base(), 6u);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.find(6), nullptr);
  EXPECT_FALSE(w.emplace(6, 60));  // at/below base: pruned forever
  EXPECT_FALSE(w.emplace(3, 30));
  EXPECT_TRUE(w.contains(7));
  w.prune_to(4);  // regression is a no-op
  EXPECT_EQ(w.base(), 6u);
  w.prune_to(100);  // past the top: empties the window
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.max_seq(), 0u);
  EXPECT_TRUE(w.emplace(101, 1));
}

TEST(SeqWindow, WraparoundGrowthKeepsEntries) {
  SeqWindow<std::string> w;
  // Slide a window of ~32 live entries across a long sequence so slots wrap
  // around the ring many times, forcing several in-place growths early on.
  std::uint64_t pruned = 0;
  for (std::uint64_t s = 1; s <= 5000; ++s) {
    ASSERT_TRUE(w.emplace(s, "v" + std::to_string(s)));
    if (s % 7 == 0 && s > 32) {
      pruned = s - 32;
      w.prune_to(pruned);
    }
  }
  EXPECT_EQ(w.base(), pruned);
  EXPECT_EQ(w.size(), 5000 - pruned);
  for (std::uint64_t s = pruned + 1; s <= 5000; ++s) {
    ASSERT_NE(w.find(s), nullptr) << s;
    EXPECT_EQ(*w.find(s), "v" + std::to_string(s));
  }
}

TEST(SeqWindow, GrowthWithHolesRehomesOnlyOccupied) {
  SeqWindow<int> w;
  w.emplace(2, 2);
  w.emplace(40, 40);  // forces growth past the initial capacity
  w.emplace(1000, 1000);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(*w.find(2), 2);
  EXPECT_EQ(*w.find(40), 40);
  EXPECT_EQ(*w.find(1000), 1000);
  EXPECT_EQ(w.find(999), nullptr);
}

TEST(SeqWindow, PruneOnEmptyRaisesBaseForHighSequences) {
  // The restore pattern: raise a fresh window's base to just below the
  // lowest live key so capacity tracks the live span, not the absolute
  // sequence value reached by a long run.
  SeqWindow<int> w;
  w.prune_to(2'999'999);
  EXPECT_TRUE(w.emplace(3'000'000, 1));
  EXPECT_TRUE(w.emplace(3'000'005, 2));
  EXPECT_EQ(w.size(), 2u);
  EXPECT_EQ(w.max_seq(), 3'000'005u);
  EXPECT_FALSE(w.emplace(2'999'999, 9));
  EXPECT_EQ(*w.find(3'000'000), 1);
}

TEST(SeqWindow, HolesAndPruneAcrossPowerOfTwoBoundary) {
  // The window starts at 16 slots; drive the live span across the 16 and 32
  // slot boundaries with deliberate holes so the ring wraps exactly at a
  // power of two while partially occupied, then prune across the wrap point.
  SeqWindow<int> w;
  for (std::uint64_t s = 1; s <= 16; ++s) {
    if (s % 3 == 0) continue;  // holes inside the first capacity
    ASSERT_TRUE(w.emplace(s, static_cast<int>(s)));
  }
  // seq 17 lands on slot ((17-1) & 15) = 0 — the exact wraparound slot —
  // and must instead force growth to 32 because seq 1 still lives there.
  ASSERT_TRUE(w.emplace(17, 17));
  EXPECT_EQ(*w.find(1), 1);
  EXPECT_EQ(*w.find(17), 17);
  EXPECT_EQ(w.find(3), nullptr);  // the holes stayed holes through growth
  EXPECT_EQ(w.find(15), nullptr);

  // Prune across the old boundary: drops 1..16's survivors (1,2,4,...,16
  // minus the multiples of 3), keeps 17, and the dropped values arrive in
  // ascending order.
  std::vector<int> dropped;
  w.prune_to(16, [&dropped](const int& v) { dropped.push_back(v); });
  EXPECT_EQ(w.base(), 16u);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(*w.find(17), 17);
  ASSERT_FALSE(dropped.empty());
  EXPECT_TRUE(std::is_sorted(dropped.begin(), dropped.end()));
  EXPECT_EQ(dropped.front(), 1);
  EXPECT_EQ(dropped.back(), 16);
  // The freed pre-boundary slots are reusable at their post-wrap sequences.
  for (std::uint64_t s = 18; s <= 33; ++s) {
    ASSERT_TRUE(w.emplace(s, static_cast<int>(s))) << s;
  }
  EXPECT_FALSE(w.emplace(16, 0));  // at the watermark: pruned forever
  EXPECT_EQ(w.size(), 17u);
  EXPECT_EQ(w.max_seq(), 33u);
}

TEST(Slab, PutTakeRecyclesSlotsLifo) {
  Slab<std::string> slab;
  const std::uint32_t a = slab.put("alpha");
  const std::uint32_t b = slab.put("beta");
  const std::uint32_t c = slab.put("gamma");
  EXPECT_EQ(slab.in_use(), 3u);
  EXPECT_EQ(slab[b], "beta");

  EXPECT_EQ(slab.take(b), "beta");
  EXPECT_EQ(slab.take(a), "alpha");
  EXPECT_EQ(slab.in_use(), 1u);
  // Freed slots come back LIFO: the most recently freed slot first.
  EXPECT_EQ(slab.put("delta"), a);
  EXPECT_EQ(slab.put("epsilon"), b);
  EXPECT_EQ(slab.in_use(), 3u);
  EXPECT_EQ(slab[a], "delta");
  EXPECT_EQ(slab[b], "epsilon");
  EXPECT_EQ(slab[c], "gamma");
}

TEST(Slab, ReuseAfterRecycleOverwritesTheHusk) {
  // take() leaves a moved-from husk in the slot; the next put() must
  // move-assign a fresh value over it, and release() must clear the value
  // eagerly (a parked message holding payload memory must not linger).
  Slab<std::vector<int>> slab;
  const std::uint32_t s0 = slab.put({1, 2, 3});
  const std::vector<int> first = slab.take(s0);
  EXPECT_EQ(first.size(), 3u);

  const std::uint32_t s1 = slab.put({7, 8});
  EXPECT_EQ(s1, s0);  // recycled, not appended
  EXPECT_EQ(slab[s1], (std::vector<int>{7, 8}));

  slab.release(s1);
  EXPECT_EQ(slab.in_use(), 0u);
  const std::uint32_t s2 = slab.put({9});
  EXPECT_EQ(s2, s1);
  EXPECT_EQ(slab[s2], (std::vector<int>{9}));

  slab.clear();
  EXPECT_EQ(slab.in_use(), 0u);
  EXPECT_EQ(slab.put({4, 5}), 0u);  // fresh slab indexes from zero again
}

TEST(SeqWindow, ResetClearsBaseAndEntries) {
  SeqWindow<int> w;
  for (std::uint64_t s = 1; s <= 8; ++s) w.emplace(s, 1);
  w.prune_to(4);
  w.reset();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.base(), 0u);
  EXPECT_TRUE(w.emplace(1, 1));  // below the old base: admitted again
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {1.0, 2.0, 3.0, 4.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_NEAR(a.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Accumulator all, left, right;
  Rng r(21);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double() * 10;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

}  // namespace
}  // namespace mpiv::util
