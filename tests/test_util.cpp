// Unit tests for util: RNG determinism & distributions, buffer round-trips,
// statistics accumulators.
#include <gtest/gtest.h>

#include <cmath>

#include "util/buffer.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mpiv::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng r(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng r(5);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.next_exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, StateSaveRestoreReplaysStream) {
  Rng r(9);
  r.next_u64();
  const Rng::State st = r.state();
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(r.next_u64());
  r.restore(st);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.next_u64(), first[static_cast<size_t>(i)]);
}

TEST(Buffer, PrimitiveRoundTrip) {
  Buffer b;
  b.put_u8(0xAB);
  b.put_u16(0xBEEF);
  b.put_u32(0xDEADBEEFu);
  b.put_u64(0x0123456789ABCDEFull);
  b.put_i64(-42);
  b.put_f64(3.25);
  b.put_string("event-logger");
  EXPECT_EQ(b.get_u8(), 0xAB);
  EXPECT_EQ(b.get_u16(), 0xBEEF);
  EXPECT_EQ(b.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(b.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(b.get_i64(), -42);
  EXPECT_EQ(b.get_f64(), 3.25);
  EXPECT_EQ(b.get_string(), "event-logger");
  EXPECT_EQ(b.remaining(), 0u);
}

TEST(Buffer, NestedBuffers) {
  Buffer inner;
  inner.put_u32(77);
  Buffer outer;
  outer.put_u8(1);
  outer.put_bytes(inner);
  outer.put_u8(2);
  EXPECT_EQ(outer.get_u8(), 1);
  Buffer got = outer.get_bytes();
  EXPECT_EQ(got.get_u32(), 77u);
  EXPECT_EQ(outer.get_u8(), 2);
}

TEST(Buffer, SizeCountsExactBytes) {
  Buffer b;
  b.put_u32(1);
  b.put_u64(2);
  EXPECT_EQ(b.size(), 12u);
}

TEST(BufferDeath, UnderrunPanics) {
  Buffer b;
  b.put_u8(1);
  b.get_u8();
  EXPECT_DEATH(b.get_u32(), "underrun");
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {1.0, 2.0, 3.0, 4.0}) a.add(x);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_NEAR(a.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Accumulator, MergeMatchesCombinedStream) {
  Accumulator all, left, right;
  Rng r(21);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double() * 10;
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
}

}  // namespace
}  // namespace mpiv::util
