// Tests for the distributed Event Logger (the paper's §VI future work; see
// PAPER.md — "Key observations" 6-7 — for the LU/16 single-EL saturation
// that motivates sharding):
// determinants shard by creator rank, shards exchange stable-clock arrays,
// garbage collection still happens everywhere, and crash recovery remains
// exact with any shard count.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "workloads/apps.hpp"

namespace mpiv {
namespace {

using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::ClusterReport;
using runtime::FaultSpec;
using runtime::ProtocolKind;
using workloads::ChecksumResult;

ClusterConfig cfg_with_shards(int shards, int nranks = 6) {
  ClusterConfig cfg;
  cfg.nranks = nranks;
  cfg.protocol = ProtocolKind::kCausal;
  cfg.strategy = causal::StrategyKind::kVcausal;
  cfg.event_logger = true;
  cfg.el_shards = shards;
  cfg.ckpt_policy = ckpt::Policy::kRoundRobin;
  cfg.ckpt_interval = 60 * sim::kMillisecond;
  return cfg;
}

TEST(MultiEl, ShardAssignmentIsRoundRobin) {
  ftapi::NodeLayout layout{6, 3};
  EXPECT_EQ(layout.el_shard_for_rank(0), 0);
  EXPECT_EQ(layout.el_shard_for_rank(1), 1);
  EXPECT_EQ(layout.el_shard_for_rank(2), 2);
  EXPECT_EQ(layout.el_shard_for_rank(3), 0);
  EXPECT_NE(layout.el_node(0), layout.el_node(2));
  EXPECT_EQ(layout.total_nodes(), 6u + 3u + 2u);
  EXPECT_GT(layout.ckpt_node(), layout.el_node(2));
}

TEST(MultiEl, EventsLandOnTheOwningShard) {
  ClusterConfig cfg = cfg_with_shards(2);
  auto result = std::make_shared<ChecksumResult>(cfg.nranks);
  Cluster cluster(cfg);
  ClusterReport rep = cluster.run(workloads::make_ring_app(20, 1024, result));
  ASSERT_TRUE(rep.completed);
  // Every rank's determinants are stable at its own shard.
  for (int r = 0; r < cfg.nranks; ++r) {
    const int shard = r % 2;
    EXPECT_GT(cluster.event_logger(shard).stable(static_cast<std::uint32_t>(r)), 0u)
        << "rank " << r;
  }
}

TEST(MultiEl, ClockExchangeSpreadsStability) {
  // After the run, shard 0 must know (via the exchange) about stability of
  // ranks owned by shard 1 and vice versa.
  ClusterConfig cfg = cfg_with_shards(2);
  auto result = std::make_shared<ChecksumResult>(cfg.nranks);
  Cluster cluster(cfg);
  ClusterReport rep = cluster.run(workloads::make_ring_app(20, 1024, result));
  ASSERT_TRUE(rep.completed);
  EXPECT_GT(cluster.event_logger(0).stable(1), 0u);  // rank 1 owned by shard 1
  EXPECT_GT(cluster.event_logger(1).stable(0), 0u);  // rank 0 owned by shard 0
}

class MultiElRecovery : public ::testing::TestWithParam<int> {};

TEST_P(MultiElRecovery, CrashRecoveryExactWithAnyShardCount) {
  ClusterConfig cfg = cfg_with_shards(GetParam());
  auto ref_result = std::make_shared<ChecksumResult>(cfg.nranks);
  sim::Time ref_time;
  {
    Cluster cluster(cfg);
    ClusterReport rep = cluster.run(
        workloads::make_random_then_ring_app(10, 25, 7, 1024, ref_result));
    ASSERT_TRUE(rep.completed);
    ref_time = rep.completion_time;
  }
  cfg.faults.push_back(FaultSpec{ref_time * 3 / 4, 1});
  auto result = std::make_shared<ChecksumResult>(cfg.nranks);
  Cluster cluster(cfg);
  ClusterReport rep = cluster.run(
      workloads::make_random_then_ring_app(10, 25, 7, 1024, result));
  ASSERT_TRUE(rep.completed);
  EXPECT_EQ(rep.faults_injected, 1u);
  EXPECT_EQ(result->checksums, ref_result->checksums);
}

INSTANTIATE_TEST_SUITE_P(Shards, MultiElRecovery, ::testing::Values(1, 2, 3, 6),
                         [](const auto& info) {
                           return "shards" + std::to_string(info.param);
                         });

TEST(MultiEl, ShardsReducePiggybackUnderLoad) {
  // The LU-like bottleneck: with one overloaded EL the acks lag and
  // piggybacks accumulate; sharding restores the garbage collection.
  auto run_shards = [](int shards) {
    ClusterConfig cfg = cfg_with_shards(shards, 8);
    cfg.ckpt_policy = ckpt::Policy::kNone;
    cfg.cost.el_service = 120 * sim::kMicrosecond;  // deliberately slow EL
    auto result = std::make_shared<ChecksumResult>(cfg.nranks);
    Cluster cluster(cfg);
    ClusterReport rep =
        cluster.run(workloads::make_random_any_app(40, 3, 512, result));
    EXPECT_TRUE(rep.completed);
    return rep.totals();
  };
  const ftapi::RankStats one = run_shards(1);
  const ftapi::RankStats four = run_shards(4);
  EXPECT_LT(four.pb_bytes_sent, one.pb_bytes_sent);
  EXPECT_LT(four.el_ack_latency_us.mean(), one.el_ack_latency_us.mean());
}

}  // namespace
}  // namespace mpiv
