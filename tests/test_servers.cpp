// Unit tests for the stable servers: Event Logger storage/acks/GC/recovery
// and the transactional checkpoint server with versioning.
#include <gtest/gtest.h>

#include "ckpt/checkpoint_server.hpp"
#include "ckpt/scheduler.hpp"
#include "elog/event_logger.hpp"

namespace mpiv {
namespace {

struct Rig {
  sim::Engine eng;
  ftapi::NodeLayout layout{4};
  net::CostModel cost;
  net::Network net{eng, layout.total_nodes(), cost};
  ftapi::ElStats el_stats;
  elog::EventLogger el{net, layout, &el_stats};
  ckpt::CheckpointServer ckpt{net, layout};
  std::vector<net::Message> inbox;

  Rig() {
    // Node 0 plays the client; capture whatever comes back.
    net.attach(0, [this](net::Message&& m) { inbox.push_back(std::move(m)); });
    for (net::NodeId n = 1; n < 4; ++n) net.attach(n, [](net::Message&&) {});
    net.attach(layout.dispatcher_node(), [](net::Message&&) {});
  }

  void send(net::Message m) {
    m.src = 0;
    m.wire_bytes = cost.header_bytes + m.payload.bytes + m.body.size();
    net.send(std::move(m));
  }

  net::Message el_event(std::uint32_t creator, std::uint64_t seq) {
    net::Message m;
    m.kind = net::MsgKind::kElEvent;
    m.dst = layout.el_node();
    m.src_rank = static_cast<int>(creator);
    m.body.put_u32(1);
    ftapi::Determinant d;
    d.creator = creator;
    d.seq = seq;
    d.src = 1;
    d.ssn = seq;
    d.serialize(m.body);
    return m;
  }
};

TEST(EventLoggerTest, StoresAndAcksWithStableVector) {
  Rig r;
  r.send(r.el_event(0, 1));
  r.send(r.el_event(0, 2));
  r.eng.run();
  EXPECT_EQ(r.el.stable(0), 2u);
  ASSERT_GE(r.inbox.size(), 2u);
  // The last ack's stable vector covers both events.
  net::Message& ack = r.inbox.back();
  ASSERT_EQ(ack.kind, net::MsgKind::kElAck);
  EXPECT_EQ(ack.body.get_u64(), 2u);  // creator 0
  EXPECT_EQ(ack.body.get_u64(), 0u);  // creator 1
}

TEST(EventLoggerTest, OutOfOrderEventsDoNotAdvanceStability) {
  Rig r;
  r.send(r.el_event(0, 2));  // gap: seq 1 missing
  r.eng.run();
  EXPECT_EQ(r.el.stable(0), 0u);
  r.send(r.el_event(0, 1));
  r.eng.run();
  EXPECT_EQ(r.el.stable(0), 2u);  // hole filled
}

TEST(EventLoggerTest, DuplicateResubmissionsIgnored) {
  Rig r;
  r.send(r.el_event(0, 1));
  r.send(r.el_event(0, 1));
  r.eng.run();
  EXPECT_EQ(r.el.stable(0), 1u);
  EXPECT_EQ(r.el.stored_count(), 1u);
}

TEST(EventLoggerTest, GcAdvancesStabilityAndPrunes) {
  Rig r;
  r.send(r.el_event(0, 1));
  r.eng.run();
  net::Message gc;
  gc.kind = net::MsgKind::kControl;
  gc.tag = static_cast<std::int32_t>(mpi::CtlSub::kElGc);
  gc.src_rank = 0;
  gc.arg = 5;  // checkpoint covers receptions <= 5
  gc.dst = r.layout.el_node();
  r.send(std::move(gc));
  r.eng.run();
  EXPECT_EQ(r.el.stable(0), 5u);
  EXPECT_EQ(r.el.stored_count(), 0u);
}

TEST(EventLoggerTest, RecoveryReturnsStableVectorAndDeterminants) {
  Rig r;
  for (std::uint64_t s = 1; s <= 3; ++s) r.send(r.el_event(2, s));
  r.eng.run();
  r.inbox.clear();
  net::Message req;
  req.kind = net::MsgKind::kElRecoveryReq;
  req.dst = r.layout.el_node();
  req.arg = 2;
  r.send(std::move(req));
  r.eng.run();
  ASSERT_EQ(r.inbox.size(), 1u);
  net::Message& resp = r.inbox[0];
  ASSERT_EQ(resp.kind, net::MsgKind::kElRecoveryResp);
  // Stable vector first...
  EXPECT_EQ(resp.body.get_u64(), 0u);
  EXPECT_EQ(resp.body.get_u64(), 0u);
  EXPECT_EQ(resp.body.get_u64(), 3u);
  EXPECT_EQ(resp.body.get_u64(), 0u);
  // ...then the stored determinants of rank 2.
  const std::uint32_t n = resp.body.get_u32();
  ASSERT_EQ(n, 3u);
  for (std::uint32_t i = 0; i < n; ++i) {
    const ftapi::Determinant d = ftapi::Determinant::deserialize(resp.body);
    EXPECT_EQ(d.creator, 2u);
    EXPECT_EQ(d.seq, i + 1);
  }
}

TEST(CheckpointServerTest, StoreFetchRoundTrip) {
  Rig r;
  net::Message st;
  st.kind = net::MsgKind::kCkptStore;
  st.dst = r.layout.ckpt_node();
  st.src_rank = 0;
  st.arg = 1;  // version
  st.payload.bytes = 1 << 20;
  st.body.put_u64(0xFACE);
  r.send(std::move(st));
  r.eng.run();
  ASSERT_EQ(r.inbox.size(), 1u);
  EXPECT_EQ(r.inbox[0].kind, net::MsgKind::kCkptStoreAck);
  EXPECT_TRUE(r.ckpt.has_image(0));
  EXPECT_EQ(r.ckpt.latest_version(0), 1u);

  r.inbox.clear();
  net::Message f;
  f.kind = net::MsgKind::kCkptFetchReq;
  f.dst = r.layout.ckpt_node();
  f.arg = 0;  // rank
  f.ssn = 0;  // latest
  r.send(std::move(f));
  r.eng.run();
  ASSERT_EQ(r.inbox.size(), 1u);
  EXPECT_EQ(r.inbox[0].arg, 1u);
  EXPECT_EQ(r.inbox[0].body.get_u64(), 0xFACEu);
  EXPECT_EQ(r.inbox[0].payload.bytes, 1u << 20);
}

TEST(CheckpointServerTest, FetchMissingRankSaysNo) {
  Rig r;
  net::Message f;
  f.kind = net::MsgKind::kCkptFetchReq;
  f.dst = r.layout.ckpt_node();
  f.arg = 3;
  r.send(std::move(f));
  r.eng.run();
  ASSERT_EQ(r.inbox.size(), 1u);
  EXPECT_EQ(r.inbox[0].arg, 0u);
}

TEST(CheckpointServerTest, VersionedFetchForCoordinatedRollback) {
  Rig r;
  for (std::uint64_t v = 1; v <= 2; ++v) {
    net::Message st;
    st.kind = net::MsgKind::kCkptStore;
    st.dst = r.layout.ckpt_node();
    st.src_rank = 0;
    st.arg = v;
    st.body.put_u64(0xA0 + v);
    r.send(std::move(st));
  }
  r.eng.run();
  r.inbox.clear();
  net::Message f;
  f.kind = net::MsgKind::kCkptFetchReq;
  f.dst = r.layout.ckpt_node();
  f.arg = 0;
  f.ssn = 1;  // the older, globally-complete snapshot
  r.send(std::move(f));
  r.eng.run();
  ASSERT_EQ(r.inbox.size(), 1u);
  EXPECT_EQ(r.inbox[0].arg, 1u);
  EXPECT_EQ(r.inbox[0].body.get_u64(), 0xA1u);
}

TEST(CheckpointServerTest, DiskSerializesConcurrentStores) {
  Rig r;
  const sim::Time t0 = r.eng.now();
  for (int rank = 0; rank < 2; ++rank) {
    net::Message st;
    st.kind = net::MsgKind::kCkptStore;
    st.dst = r.layout.ckpt_node();
    st.src_rank = rank;
    st.arg = 1;
    st.payload.bytes = 4 << 20;
    r.send(std::move(st));
  }
  r.eng.run();
  // Two 4 MB images through one disk: at least 2 x disk time.
  const double disk_s = 2.0 * (4.0 * (1 << 20)) * 8.0 / r.cost.ckpt_disk_bps;
  EXPECT_GE(sim::to_sec(r.eng.now() - t0), disk_s);
}

TEST(SchedulerTest, RoundRobinCyclesThroughRanks) {
  sim::Engine eng;
  ftapi::NodeLayout layout{3};
  net::CostModel cost;
  net::Network net(eng, layout.total_nodes(), cost);
  std::vector<int> requests;
  for (int rk = 0; rk < 3; ++rk) {
    net.attach(layout.rank_node(rk), [&requests, rk](net::Message&& m) {
      if (m.kind == net::MsgKind::kControl &&
          m.tag == static_cast<std::int32_t>(mpi::CtlSub::kCkptRequest)) {
        requests.push_back(rk);
      }
    });
  }
  net.attach(layout.el_node(), [](net::Message&&) {});
  net.attach(layout.ckpt_node(), [](net::Message&&) {});
  net.attach(layout.dispatcher_node(), [](net::Message&&) {});
  ckpt::CheckpointScheduler sched(net, layout, ckpt::Policy::kRoundRobin,
                                  10 * sim::kMillisecond, 1);
  sched.start();
  eng.run_until(65 * sim::kMillisecond);
  sched.stop();
  eng.run_until(100 * sim::kMillisecond);
  ASSERT_GE(requests.size(), 6u);
  EXPECT_EQ(requests[0], 0);
  EXPECT_EQ(requests[1], 1);
  EXPECT_EQ(requests[2], 2);
  EXPECT_EQ(requests[3], 0);
}

TEST(SchedulerTest, NonePolicyNeverRequests) {
  sim::Engine eng;
  ftapi::NodeLayout layout{2};
  net::CostModel cost;
  net::Network net(eng, layout.total_nodes(), cost);
  for (net::NodeId n = 0; n < layout.total_nodes(); ++n) {
    net.attach(n, [](net::Message&&) {});
  }
  ckpt::CheckpointScheduler sched(net, layout, ckpt::Policy::kNone,
                                  10 * sim::kMillisecond, 1);
  sched.start();
  eng.run_until(100 * sim::kMillisecond);
  EXPECT_EQ(sched.requests_sent(), 0u);
}

}  // namespace
}  // namespace mpiv
