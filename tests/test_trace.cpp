// Tests for the trace subsystem: ring-lane semantics, merge-sorted dumps,
// stream parse round-trips, the logical-sequence projection, divergence
// localization on deliberately corrupted streams — and the replay-
// equivalence harness, which re-runs every bundled fault scenario with
// lanes on and asserts the post-recovery trace is record-identical to the
// compare_reference twin (the paper's replay guarantee at record
// granularity, not just final checksums).
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "trace/divergence.hpp"
#include "trace/trace.hpp"

namespace mpiv {
namespace {

using trace::Kind;
using trace::Record;

Record rec(sim::Time t, Kind kind, std::int32_t peer, std::uint64_t seq,
           std::uint64_t aux = 0, std::uint64_t digest = 0,
           std::uint8_t code = 0) {
  return Record{t, kind, code, peer, seq, aux, digest};
}

// ---------------------------------------------------------------------------
// Lane ring semantics
// ---------------------------------------------------------------------------

TEST(Lane, RetainsEverythingBelowCapacity) {
  trace::Lane lane("r0", 8);
  for (int i = 0; i < 5; ++i) {
    lane.push(rec(i, Kind::kSend, 1, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(lane.total(), 5u);
  EXPECT_EQ(lane.retained(), 5u);
  EXPECT_EQ(lane.dropped(), 0u);
  std::vector<std::uint64_t> seqs;
  lane.for_each([&seqs](const Record& r) { seqs.push_back(r.seq); });
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Lane, WrapOverwritesOldestAndCountsDrops) {
  trace::Lane lane("r0", 4);
  for (int i = 0; i < 11; ++i) {
    lane.push(rec(i * 10, Kind::kRecvMatch, 0, static_cast<std::uint64_t>(i)));
  }
  EXPECT_EQ(lane.total(), 11u);
  EXPECT_EQ(lane.retained(), 4u);
  EXPECT_EQ(lane.dropped(), 7u);
  // Oldest-to-newest visit order, and only the newest four survive.
  std::vector<std::uint64_t> seqs;
  lane.for_each([&seqs](const Record& r) { seqs.push_back(r.seq); });
  EXPECT_EQ(seqs, (std::vector<std::uint64_t>{7, 8, 9, 10}));
}

TEST(Record, SameContentIgnoresOnlyTheTimestamp) {
  const Record a = rec(100, Kind::kRecvMatch, 3, 7, 9, 0xabc);
  Record b = a;
  b.t = 9999;
  EXPECT_TRUE(a.same_content(b));
  b = a;
  b.digest = 0xdef;
  EXPECT_FALSE(a.same_content(b));
  b = a;
  b.code = 1;
  EXPECT_FALSE(a.same_content(b));
}

// ---------------------------------------------------------------------------
// Dump merge order + parse round-trip
// ---------------------------------------------------------------------------

TEST(TraceSink, DumpMergesLanesByTimestampWithLaneTieBreak) {
  trace::TraceSink sink(/*nranks=*/2, /*el_shards=*/1, /*capacity=*/16);
  // Interleave timestamps across lanes; equal stamps must come out in lane
  // order (r0, r1, el0, engine).
  sink.rank_lane(1)->push(rec(10, Kind::kSend, 0, 1));
  sink.rank_lane(0)->push(rec(10, Kind::kRecvMatch, 1, 1, 1));
  sink.el_lane(0)->push(rec(5, Kind::kElAck, 0, 3, 0, 0, 1));
  sink.engine_lane()->push(
      rec(20, Kind::kFault, 2, 0, 0, 0, trace::kRankCrash));
  sink.rank_lane(0)->push(rec(30, Kind::kSend, 1, 2));

  const trace::Stream s = trace::parse_stream(sink.dump());
  ASSERT_EQ(s.records.size(), 5u);
  EXPECT_EQ(s.records[0].lane, "el0");     // t=5
  EXPECT_EQ(s.records[1].lane, "r0");      // t=10, lane index 0 wins the tie
  EXPECT_EQ(s.records[2].lane, "r1");      // t=10
  EXPECT_EQ(s.records[3].lane, "engine");  // t=20
  EXPECT_EQ(s.records[4].lane, "r0");      // t=30
  for (std::size_t i = 1; i < s.records.size(); ++i) {
    EXPECT_LE(s.records[i - 1].rec.t, s.records[i].rec.t);
  }
}

TEST(TraceSink, ParseRoundTripPreservesEveryField) {
  trace::TraceSink sink(1, 0, 8);
  const Record orig =
      rec(123456789, Kind::kDeterminant, -1, 42, 7, 0xdeadbeefcafe, 1);
  sink.rank_lane(0)->push(orig);
  sink.rank_lane(0)->push(rec(123456790, Kind::kRecovery, 3, 9, 0, 0,
                              trace::kPhaseElFailover));
  const trace::Stream s = trace::parse_stream(sink.dump());
  ASSERT_EQ(s.records.size(), 2u);
  EXPECT_TRUE(s.records[0].rec.same_content(orig));
  EXPECT_EQ(s.records[0].rec.t, orig.t);
  const trace::LaneInfo* li = s.lane_info("r0");
  ASSERT_NE(li, nullptr);
  EXPECT_EQ(li->total, 2u);
  EXPECT_EQ(li->dropped, 0u);
  // Lane headers survive even for empty lanes.
  EXPECT_NE(s.lane_info("engine"), nullptr);
}

TEST(TraceSink, ParserRejectsGarbage) {
  EXPECT_THROW(trace::parse_stream("10 r0 send 0 1 2 3 4\n"),
               std::runtime_error);  // no header
  EXPECT_THROW(trace::parse_stream("# mpiv-trace v1\n10 r0 blip 0 1 2 3 4\n"),
               std::runtime_error);  // unknown kind
  EXPECT_THROW(trace::parse_stream("# mpiv-trace v1\n10 r0 send 0\n"),
               std::runtime_error);  // short record
  EXPECT_NO_THROW(trace::parse_stream("# mpiv-trace v1\n"));
}

// ---------------------------------------------------------------------------
// Logical-sequence projection (the divergence comparator's core)
// ---------------------------------------------------------------------------

TEST(LogicalSequence, KeepsOnlySendsAndRecvMatches) {
  const std::vector<Record> lane = {
      rec(1, Kind::kSend, 1, 1),
      rec(2, Kind::kDeterminant, 0, 1, 0),
      rec(3, Kind::kRecvMatch, 0, 1, 1),
      rec(4, Kind::kCkpt, 0, 1),
      rec(5, Kind::kFault, 0, 0, 0, 0, trace::kRankCrash),
  };
  const std::vector<Record> seq = trace::logical_sequence(lane);
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0].kind, Kind::kSend);
  EXPECT_EQ(seq[1].kind, Kind::kRecvMatch);
}

TEST(LogicalSequence, ReplayedOccurrenceSupersedesRolledBackOne) {
  // Pre-crash the rank matched rsn 5 from peer 0 with ssn 9; after recovery
  // it re-matches rsn 5 (same logical event, later timestamp). The replayed
  // copy must win and order must be preserved for the survivors.
  const std::vector<Record> lane = {
      rec(10, Kind::kRecvMatch, 0, 4, 8),
      rec(20, Kind::kRecvMatch, 0, 5, 9),
      rec(30, Kind::kSend, 1, 3),
      // crash + replay:
      rec(100, Kind::kRecvMatch, 0, 5, 9),
      rec(110, Kind::kRecvMatch, 0, 6, 10),
  };
  const std::vector<Record> seq = trace::logical_sequence(lane);
  ASSERT_EQ(seq.size(), 4u);
  EXPECT_EQ(seq[0].seq, 4u);
  EXPECT_EQ(seq[1].kind, Kind::kSend);
  EXPECT_EQ(seq[2].seq, 5u);
  EXPECT_EQ(seq[2].t, 100);  // the replayed copy, not the rolled-back one
  EXPECT_EQ(seq[3].seq, 6u);
}

// ---------------------------------------------------------------------------
// Divergence localization on corrupted streams
// ---------------------------------------------------------------------------

std::string two_rank_stream(bool corrupt_ssn, bool drop_tail,
                            bool with_fault) {
  trace::TraceSink sink(2, 0, 64);
  if (with_fault) {
    sink.rank_lane(1)->push(
        rec(15, Kind::kFault, 1, 2, 0, 0, trace::kRankCrash));
  }
  sink.rank_lane(0)->push(rec(10, Kind::kSend, 1, 1, 0, 0x11));
  sink.rank_lane(1)->push(
      rec(20, Kind::kRecvMatch, 0, 1, corrupt_ssn ? 99u : 1u, 0x11));
  sink.rank_lane(1)->push(rec(30, Kind::kSend, 0, 1, 0, 0x22));
  if (!drop_tail) {
    sink.rank_lane(0)->push(rec(40, Kind::kRecvMatch, 1, 1, 1, 0x22));
  }
  return sink.dump();
}

TEST(Divergence, IdenticalStreamsAreEquivalent) {
  const trace::Stream a = trace::parse_stream(two_rank_stream(false, false,
                                                              true));
  const trace::Stream b = trace::parse_stream(two_rank_stream(false, false,
                                                              false));
  const trace::DivergenceReport rep = trace::compare_streams(a, b, 2);
  EXPECT_TRUE(rep.equivalent);
  EXPECT_EQ(rep.victim, 1);  // the kFault record names the victim
  EXPECT_EQ(rep.victim_fault_at, 15);
  EXPECT_EQ(rep.first_divergent(), nullptr);
}

TEST(Divergence, CorruptedRecordIsLocalizedToLaneAndRecord) {
  const trace::Stream faulty =
      trace::parse_stream(two_rank_stream(/*corrupt_ssn=*/true, false, true));
  const trace::Stream reference =
      trace::parse_stream(two_rank_stream(false, false, false));
  const trace::DivergenceReport rep =
      trace::compare_streams(faulty, reference, 2);
  EXPECT_FALSE(rep.equivalent);
  const trace::LaneDivergence* d = rep.first_divergent();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->lane, "r1");  // the corrupted reception lives on rank 1
  ASSERT_TRUE(d->has_faulty);
  ASSERT_TRUE(d->has_reference);
  EXPECT_EQ(d->faulty.kind, Kind::kRecvMatch);
  EXPECT_EQ(d->faulty.aux, 99u);      // what the faulty run matched
  EXPECT_EQ(d->reference.aux, 1u);    // what it should have matched
  EXPECT_NE(d->what.find("recv-match"), std::string::npos) << d->what;
  // Rank 0's lane is unaffected and still compares clean.
  ASSERT_EQ(rep.lanes.size(), 2u);
  EXPECT_FALSE(rep.lanes[0].diverged);
}

TEST(Divergence, MissingTailRecordIsReported) {
  const trace::Stream faulty =
      trace::parse_stream(two_rank_stream(false, /*drop_tail=*/true, true));
  const trace::Stream reference =
      trace::parse_stream(two_rank_stream(false, false, false));
  const trace::DivergenceReport rep =
      trace::compare_streams(faulty, reference, 2);
  EXPECT_FALSE(rep.equivalent);
  const trace::LaneDivergence* d = rep.first_divergent();
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->lane, "r0");
  EXPECT_TRUE(d->has_reference);
  EXPECT_FALSE(d->has_faulty);
  EXPECT_NE(d->what.find("missing"), std::string::npos) << d->what;
}

TEST(Divergence, RingTruncationFallsBackToSuffixAlignment) {
  // The faulty ring lost its prefix (capacity 4, six sends): comparison
  // must align at the first surviving logical event and pass on a clean
  // suffix instead of reporting the lost prefix as a divergence.
  trace::TraceSink small(1, 0, 4);
  trace::TraceSink big(1, 0, 64);
  for (int i = 1; i <= 6; ++i) {
    const Record r = rec(i * 10, Kind::kSend, 1, static_cast<std::uint64_t>(i),
                         0, 0x40 + static_cast<std::uint64_t>(i));
    small.rank_lane(0)->push(r);
    big.rank_lane(0)->push(r);
  }
  const trace::DivergenceReport rep = trace::compare_streams(
      trace::parse_stream(small.dump()), trace::parse_stream(big.dump()), 1);
  EXPECT_TRUE(rep.equivalent);
  ASSERT_EQ(rep.lanes.size(), 1u);
  EXPECT_TRUE(rep.lanes[0].compared);
  EXPECT_TRUE(rep.lanes[0].truncated);

  // A corrupted record inside the surviving suffix is still caught.
  small.rank_lane(0)->push(rec(70, Kind::kSend, 1, 7, 0, 0xbad));
  big.rank_lane(0)->push(rec(70, Kind::kSend, 1, 7, 0, 0x47));
  const trace::DivergenceReport rep2 = trace::compare_streams(
      trace::parse_stream(small.dump()), trace::parse_stream(big.dump()), 1);
  EXPECT_FALSE(rep2.equivalent);
  EXPECT_TRUE(rep2.lanes[0].truncated);
  EXPECT_EQ(rep2.lanes[0].faulty.digest, 0xbadu);
}

// ---------------------------------------------------------------------------
// End-to-end: a traced faulty run against its reference twin
// ---------------------------------------------------------------------------

scenario::RunResult traced_midrun_run(std::uint32_t capacity = 8192) {
  scenario::ScenarioBuilder b("traced");
  b.variant("vcausal:el")
      .nranks(4)
      .checkpoint(ckpt::Policy::kRoundRobin, 20 * sim::kMillisecond)
      .ring(/*laps=*/30, /*token_bytes=*/1024)
      .midrun_fault(/*rank=*/2)
      .trace()
      .trace_capacity(capacity);
  return scenario::run_spec(b.build());
}

TEST(TraceRun, FaultyAndReferenceStreamsAreCapturedAndEquivalent) {
  const scenario::RunResult r = traced_midrun_run();
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(r.recovered_exact);
  ASSERT_FALSE(r.trace_dump.empty());
  ASSERT_FALSE(r.reference_trace_dump.empty());
  const trace::Stream faulty = trace::parse_stream(r.trace_dump);
  const trace::Stream reference = trace::parse_stream(r.reference_trace_dump);
  const trace::DivergenceReport rep =
      trace::compare_streams(faulty, reference, 4);
  EXPECT_EQ(rep.victim, 2);
  EXPECT_GT(rep.victim_fault_at, 0);
  EXPECT_TRUE(rep.equivalent) << rep.first_divergent()->what;
  // The faulty stream carries the recovery phase ladder for the victim.
  bool saw_restart = false, saw_replay_done = false;
  for (const Record& rec : faulty.lane_records("r2")) {
    if (rec.kind == Kind::kRecovery) {
      saw_restart |= rec.code == trace::kPhaseRestart;
      saw_replay_done |= rec.code == trace::kPhaseReplayDone;
    }
  }
  EXPECT_TRUE(saw_restart);
  EXPECT_TRUE(saw_replay_done);
}

TEST(TraceRun, TinyRingStillComparesViaSuffixAlignment) {
  const scenario::RunResult r = traced_midrun_run(/*capacity=*/64);
  ASSERT_TRUE(r.completed);
  ASSERT_FALSE(r.trace_dump.empty());
  const trace::Stream faulty = trace::parse_stream(r.trace_dump);
  // With 64-record lanes this workload must overflow at least one rank lane.
  bool any_dropped = false;
  for (const trace::LaneInfo& li : faulty.lanes) any_dropped |= li.dropped > 0;
  EXPECT_TRUE(any_dropped);
  const trace::DivergenceReport rep = trace::compare_streams(
      faulty, trace::parse_stream(r.reference_trace_dump), 4);
  EXPECT_TRUE(rep.equivalent) << rep.first_divergent()->what;
}

TEST(TraceRun, DisabledTracingProducesNoStream) {
  scenario::ScenarioBuilder b("untraced");
  b.variant("vcausal:el").nranks(4).ring(5, 256);
  const scenario::RunResult r = scenario::run_spec(b.build());
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.trace_dump.empty());
}

// ---------------------------------------------------------------------------
// Replay-equivalence harness: every bundled fault scenario
// ---------------------------------------------------------------------------

// Re-runs each scenarios/*.scn that injects faults (quick grid) with trace
// lanes and the reference twin forced on. Every point the outcome
// classifier calls recovered_exact — the checksums matched — must also be
// record-identical at trace level: the recovered ranks' logical
// send/recv-match sequences equal the fault-free reference's. This is the
// paper's replay guarantee pinned at its strongest observable granularity.
TEST(ReplayEquivalence, EveryBundledFaultScenarioMatchesItsReference) {
  const std::filesystem::path dir =
      std::filesystem::path(MPIV_SOURCE_DIR) / "scenarios";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int scenarios_with_faults = 0;
  int points_checked = 0;
  std::vector<std::filesystem::path> files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".scn") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  for (const std::filesystem::path& path : files) {
    scenario::ScenarioSpec spec =
        scenario::parse_scenario_file(path.string());
    scenario::apply_quick(spec);
    if (!spec.faults.any()) continue;
    ++scenarios_with_faults;
    spec.trace.enabled = true;
    spec.compare_reference = true;
    SCOPED_TRACE(path.filename().string());
    for (const scenario::RunPoint& p : scenario::expand(spec)) {
      const scenario::RunResult r = scenario::run_point(p);
      if (r.outcome() != scenario::Outcome::kRecoveredExact) continue;
      ASSERT_FALSE(r.trace_dump.empty()) << p.label;
      ASSERT_FALSE(r.reference_trace_dump.empty()) << p.label;
      const trace::DivergenceReport rep = trace::compare_streams(
          trace::parse_stream(r.trace_dump),
          trace::parse_stream(r.reference_trace_dump), p.spec.nranks);
      const trace::LaneDivergence* d = rep.first_divergent();
      EXPECT_TRUE(rep.equivalent)
          << p.label << ": " << (d != nullptr ? d->what : "?") << " on "
          << (d != nullptr ? d->lane : "?");
      ++points_checked;
    }
  }
  // The bundle must actually exercise the harness (fault_campaign,
  // chaos_soak, fig10, ... all inject faults).
  EXPECT_GE(scenarios_with_faults, 4) << "fault scenarios went missing";
  EXPECT_GE(points_checked, 5) << "no recovered_exact points to verify";
}

}  // namespace
}  // namespace mpiv
