// Tests for the scenario layer: builder validation, registry lookups,
// scenario-file parse round-trips, sweep expansion (cartesian + skip
// semantics), quick overlays, lowering, and the JSON report shape.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace mpiv {
namespace {

using scenario::ScenarioBuilder;
using scenario::ScenarioSpec;
using scenario::SpecError;

std::string error_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const SpecError& e) {
    return e.what();
  }
  return "";
}

// ---------------------------------------------------------------------------
// Builder validation (build() must reject, with actionable messages)
// ---------------------------------------------------------------------------

TEST(Builder, RejectsNonPositiveRanks) {
  const std::string msg =
      error_of([] { ScenarioBuilder("t").nranks(0).build(); });
  EXPECT_NE(msg.find("nranks must be positive"), std::string::npos) << msg;
  EXPECT_THROW(ScenarioBuilder("t").nranks(-3).build(), SpecError);
}

TEST(Builder, RejectsBadShardCounts) {
  const std::string msg = error_of(
      [] { ScenarioBuilder("t").variant("vcausal:el").el_shards(0).build(); });
  EXPECT_NE(msg.find("el_shards must be >= 1"), std::string::npos) << msg;
  // More shards than ranks is impossible to place.
  EXPECT_THROW(
      ScenarioBuilder("t").variant("vcausal:el").nranks(4).el_shards(8).build(),
      SpecError);
}

TEST(Builder, RejectsShardsWithoutEventLogger) {
  const std::string msg = error_of([] {
    ScenarioBuilder("t").variant("vcausal:noel").nranks(8).el_shards(2).build();
  });
  EXPECT_NE(msg.find("disables the event logger"), std::string::npos) << msg;
  // Unset shards with a no-EL variant stays fine, and so does an explicit
  // el_shards = 1 (no sharding) — matching the Cluster-level check.
  EXPECT_NO_THROW(ScenarioBuilder("t").variant("vcausal:noel").build());
  EXPECT_NO_THROW(
      ScenarioBuilder("t").variant("vcausal:noel").el_shards(1).build());
}

TEST(Builder, RejectsFaultPlanNamingMissingRank) {
  const std::string msg = error_of([] {
    ScenarioBuilder("t").nranks(4).variant("vcausal:el").fault_at(1000, 4).build();
  });
  EXPECT_NE(msg.find("names rank 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("0..3"), std::string::npos) << msg;
  EXPECT_THROW(
      ScenarioBuilder("t").nranks(4).variant("vcausal:el").midrun_fault(9).build(),
      SpecError);
}

TEST(Builder, RejectsFaultsUnderP4) {
  EXPECT_THROW(ScenarioBuilder("t").variant("p4").fault_at(10, 0).build(),
               SpecError);
}

TEST(Builder, RejectsUnknownWorkloadParameters) {
  const std::string msg = error_of([] {
    ScenarioBuilder("t").workload("ring").wparam("lapz", 20).build();
  });
  EXPECT_NE(msg.find("no parameter 'lapz'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("laps, bytes"), std::string::npos) << msg;
}

TEST(Builder, SwitchingWorkloadsDropsStaleParameters) {
  // The textual path (apply_key / scenario files / --set) matches the
  // builder contract: a new workload name clears the old workload's
  // parameters instead of leaking them into the new one.
  ScenarioSpec spec = scenario::parse_scenario_text(
      "workload = random_any\n"
      "workload.bytes = 1111\n"
      "workload = ring\n");
  EXPECT_TRUE(spec.workload.params.empty());
  scenario::apply_key(spec, "nas", "lu:A:0.1");
  EXPECT_EQ(spec.workload.params.size(), 3u);  // kernel/class/scale only
}

TEST(Builder, AcceptsTheDefaultSpec) {
  const ScenarioSpec spec = ScenarioBuilder("defaults").build();
  EXPECT_EQ(spec.nranks, 4);
  EXPECT_EQ(spec.variant.protocol, runtime::ProtocolKind::kVdummy);
  EXPECT_EQ(spec.workload.name, "ring");
}

// ---------------------------------------------------------------------------
// Registries
// ---------------------------------------------------------------------------

TEST(Registry, ResolvesKnownNames) {
  EXPECT_EQ(scenario::protocols().at("p4").kind, runtime::ProtocolKind::kP4);
  EXPECT_EQ(scenario::strategies().at("manetho").kind,
            causal::StrategyKind::kManetho);
  EXPECT_NE(scenario::workload_registry().find("nas"), nullptr);
  EXPECT_EQ(scenario::workload_registry().find("no_such_thing"), nullptr);
}

TEST(Registry, UnknownNameErrorListsWhatIsRegistered) {
  const std::string msg =
      error_of([] { scenario::strategies().at("vclausal"); });
  EXPECT_NE(msg.find("unknown strategy 'vclausal'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("vcausal"), std::string::npos) << msg;
  EXPECT_NE(msg.find("logon"), std::string::npos) << msg;
}

TEST(Registry, UnknownProtocolErrorNamesOffenderAndFamilies) {
  const std::string msg = error_of([] { scenario::protocols().at("raft"); });
  EXPECT_NE(msg.find("unknown protocol 'raft'"), std::string::npos) << msg;
  // The listing must include the newer families, not just the seed set.
  EXPECT_NE(msg.find("replica"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ulfm"), std::string::npos) << msg;
  EXPECT_NE(msg.find("coordinated"), std::string::npos) << msg;
}

TEST(Registry, UnknownWorkloadErrorNamesOffender) {
  const std::string msg =
      error_of([] { scenario::workload_registry().at("matmul"); });
  EXPECT_NE(msg.find("unknown workload 'matmul'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("ring"), std::string::npos) << msg;
  EXPECT_NE(msg.find("nas"), std::string::npos) << msg;
}

TEST(Registry, EveryRegisteredNameParsesBackThroughScn) {
  // Whatever is registered must be reachable from a .scn file and survive
  // a serialize/reparse cycle — a protocol you can instantiate but not
  // name in a scenario is a registration bug.
  for (const auto& [name, e] : scenario::protocols().entries()) {
    if (e.kind == runtime::ProtocolKind::kCausal) continue;  // needs strategy
    const ScenarioSpec spec =
        scenario::parse_scenario_text("variant = " + name + "\n");
    EXPECT_EQ(spec.variant.protocol, e.kind) << name;
    const ScenarioSpec again =
        scenario::parse_scenario_text(scenario::to_scenario_text(spec));
    EXPECT_EQ(again.variant.protocol, e.kind) << name;
    EXPECT_EQ(again.variant.name, spec.variant.name) << name;
  }
  for (const auto& [name, e] : scenario::strategies().entries()) {
    for (const char* suffix : {":el", ":noel"}) {
      const ScenarioSpec spec =
          scenario::parse_scenario_text("variant = " + name + suffix + "\n");
      EXPECT_EQ(spec.variant.protocol, runtime::ProtocolKind::kCausal);
      EXPECT_EQ(spec.variant.strategy, e.kind) << name << suffix;
      const ScenarioSpec again =
          scenario::parse_scenario_text(scenario::to_scenario_text(spec));
      EXPECT_EQ(again.variant.strategy, e.kind) << name << suffix;
      EXPECT_EQ(again.variant.event_logger, spec.variant.event_logger);
    }
  }
  for (const auto& [name, e] : scenario::workload_registry().entries()) {
    const ScenarioSpec spec =
        scenario::parse_scenario_text("workload = " + name + "\n");
    EXPECT_EQ(spec.workload.name, name);
    const ScenarioSpec again =
        scenario::parse_scenario_text(scenario::to_scenario_text(spec));
    EXPECT_EQ(again.workload.name, name);
  }
}

TEST(Registry, StrategyFactoryResolvesThroughRegistry) {
  // causal::make_strategy is now a registry lookup; names must agree.
  auto s = causal::make_strategy(causal::StrategyKind::kLogOn);
  EXPECT_STREQ(s->name(), "LogOn");
  EXPECT_STREQ(causal::strategy_kind_name(causal::StrategyKind::kVcausal),
               "Vcausal");
}

TEST(Registry, VariantNamesParse) {
  const scenario::VariantSpec v = scenario::parse_variant("manetho:noel");
  EXPECT_EQ(v.protocol, runtime::ProtocolKind::kCausal);
  EXPECT_EQ(v.strategy, causal::StrategyKind::kManetho);
  EXPECT_FALSE(v.event_logger);
  EXPECT_EQ(v.label, "Manetho (no EL)");
  // Unsuffixed causal strategies default to the EL being on.
  EXPECT_TRUE(scenario::parse_variant("vcausal").event_logger);
  EXPECT_THROW(scenario::parse_variant("p4:noel"), SpecError);
  const std::string msg =
      error_of([] { scenario::parse_variant("mpich-p5"); });
  EXPECT_NE(msg.find("unknown variant"), std::string::npos) << msg;
}

// ---------------------------------------------------------------------------
// Scenario file format
// ---------------------------------------------------------------------------

TEST(ScenarioFile, ParseRoundTripPreservesTheSpec) {
  ScenarioBuilder b("roundtrip");
  net::CostModel cost;
  cost.el_service = 120 * sim::kMicrosecond;
  b.variant("logon:el")
      .nranks(9)
      .el_shards(3)
      .seed(42)
      .cost(cost)
      .checkpoint(ckpt::Policy::kRandom, 75 * sim::kMillisecond)
      .fault_at(120 * sim::kMillisecond, 2)
      .fault_rate(0.5)
      .nas(workloads::NasKernel::kBT, workloads::NasClass::kA, 0.15)
      .sweep("nranks", {"4", "9", "16"});
  const ScenarioSpec spec = b.build();

  const ScenarioSpec reparsed =
      scenario::parse_scenario_text(scenario::to_scenario_text(spec));
  EXPECT_EQ(reparsed.name, spec.name);
  EXPECT_EQ(reparsed.variant.name, spec.variant.name);
  EXPECT_EQ(reparsed.variant.protocol, spec.variant.protocol);
  EXPECT_EQ(reparsed.variant.strategy, spec.variant.strategy);
  EXPECT_EQ(reparsed.nranks, spec.nranks);
  EXPECT_EQ(reparsed.el_shards, spec.el_shards);
  EXPECT_EQ(reparsed.seed, spec.seed);
  EXPECT_EQ(reparsed.cost.el_service, spec.cost.el_service);
  EXPECT_EQ(reparsed.ckpt_policy, spec.ckpt_policy);
  EXPECT_EQ(reparsed.ckpt_interval, spec.ckpt_interval);
  ASSERT_EQ(reparsed.faults.faults.size(), 1u);
  EXPECT_EQ(reparsed.faults.faults[0].at, spec.faults.faults[0].at);
  EXPECT_EQ(reparsed.faults.faults[0].rank, spec.faults.faults[0].rank);
  EXPECT_DOUBLE_EQ(reparsed.faults.faults_per_minute, 0.5);
  EXPECT_EQ(reparsed.workload.name, "nas");
  EXPECT_EQ(reparsed.workload.params, spec.workload.params);
  ASSERT_EQ(reparsed.sweep.size(), 1u);
  EXPECT_EQ(reparsed.sweep[0].first, "nranks");
  EXPECT_EQ(reparsed.sweep[0].second,
            (std::vector<std::string>{"4", "9", "16"}));
}

TEST(ScenarioFile, TraceKeysRoundTripAndStayOutOfDefaultText) {
  ScenarioBuilder b("traced");
  b.variant("vcausal:el")
      .nranks(4)
      .trace()
      .trace_capacity(1024)
      .trace_dir("/tmp/mpiv-traces")
      .compare_reference();
  const ScenarioSpec spec = b.build();

  const std::string text = scenario::to_scenario_text(spec);
  EXPECT_NE(text.find("[trace]"), std::string::npos) << text;
  const ScenarioSpec reparsed = scenario::parse_scenario_text(text);
  EXPECT_TRUE(reparsed.trace.enabled);
  EXPECT_EQ(reparsed.trace.capacity, 1024u);
  EXPECT_EQ(reparsed.trace_dir, "/tmp/mpiv-traces");
  EXPECT_TRUE(reparsed.compare_reference);

  // A spec that never touched the trace knobs must not grow a [trace]
  // section (keeps goldens of emitted text stable).
  ScenarioBuilder plain("plain");
  plain.variant("vcausal:el").nranks(4);
  EXPECT_EQ(scenario::to_scenario_text(plain.build()).find("[trace]"),
            std::string::npos);

  // The flat key spelling works outside the section header too.
  const ScenarioSpec flat = scenario::parse_scenario_text(
      "trace.enabled = true\ntrace.capacity = 256\n");
  EXPECT_TRUE(flat.trace.enabled);
  EXPECT_EQ(flat.trace.capacity, 256u);

  // validate() bounds the per-lane ring.
  const std::string msg = error_of([] {
    ScenarioSpec bad;
    bad.trace.capacity = 4;
    scenario::validate(bad);
  });
  EXPECT_NE(msg.find("trace.capacity"), std::string::npos) << msg;
}

TEST(ScenarioFile, FamilyKeysRoundTripAndStayOutOfDefaultText) {
  const ScenarioSpec spec = scenario::parse_scenario_text(
      "variant = replica\n"
      "replica.sync_interval = 4\n"
      "ulfm.repair_cost = 7ms\n");
  EXPECT_EQ(spec.replica_sync_interval, 4);
  EXPECT_EQ(spec.ulfm_repair_cost, 7 * sim::kMillisecond);

  const std::string text = scenario::to_scenario_text(spec);
  EXPECT_NE(text.find("replica.sync_interval = 4"), std::string::npos) << text;
  const ScenarioSpec reparsed = scenario::parse_scenario_text(text);
  EXPECT_EQ(reparsed.replica_sync_interval, 4);
  EXPECT_EQ(reparsed.ulfm_repair_cost, 7 * sim::kMillisecond);

  // Default values stay out of emitted text (keeps text goldens stable).
  const std::string plain =
      scenario::to_scenario_text(ScenarioBuilder("plain").build());
  EXPECT_EQ(plain.find("replica.sync_interval"), std::string::npos);
  EXPECT_EQ(plain.find("ulfm.repair_cost"), std::string::npos);
  EXPECT_EQ(plain.find("payload_at_sender"), std::string::npos);

  // validate() bounds the new knobs.
  EXPECT_NE(error_of([] {
              scenario::validate(scenario::parse_scenario_text(
                  "replica.sync_interval = -2\n"));
            }).find("replica.sync_interval"),
            std::string::npos);
}

TEST(ScenarioFile, RunnerParallelismRoundTripsAndIsBounded) {
  const ScenarioSpec spec = scenario::parse_scenario_text(
      "variant = vcausal:el\n"
      "runner.parallelism = 4\n");
  EXPECT_EQ(spec.runner_parallelism, 4);

  const std::string text = scenario::to_scenario_text(spec);
  EXPECT_NE(text.find("runner.parallelism = 4"), std::string::npos) << text;
  EXPECT_EQ(scenario::parse_scenario_text(text).runner_parallelism, 4);

  // The default (serial) stays out of emitted text.
  EXPECT_EQ(scenario::to_scenario_text(ScenarioBuilder("plain").build())
                .find("runner.parallelism"),
            std::string::npos);

  // validate() bounds the worker count on both sides.
  for (const char* bad : {"runner.parallelism = 0\n",
                          "runner.parallelism = -2\n",
                          "runner.parallelism = 4096\n"}) {
    EXPECT_NE(error_of([bad] {
                scenario::validate(scenario::parse_scenario_text(bad));
              }).find("runner.parallelism"),
              std::string::npos)
        << bad;
  }
  EXPECT_EQ(ScenarioBuilder("b").runner_parallelism(8).build()
                .runner_parallelism,
            8);
}

TEST(ScenarioFile, FuzzedTextParsesOrRaisesSpecErrorNeverCrashes) {
  // Seeded mutation fuzz over the parser: every mutant must either parse
  // into a spec whose serialization is a fixed point of the round trip, or
  // raise SpecError — anything else (crash, UB under the sanitizer leg,
  // non-canonical serialization) fails here.
  std::vector<std::string> bases;
  {
    ScenarioBuilder b("fuzz_base");
    b.variant("manetho:el")
        .nranks(8)
        .el_shards(2)
        .seed(7)
        .checkpoint(ckpt::Policy::kRoundRobin, 30 * sim::kMillisecond)
        .compare_reference()
        .runner_parallelism(4)
        .sweep("nranks", {"4", "8"})
        .sweep("seed", {"1", "2", "3"});
    bases.push_back(scenario::to_scenario_text(b.build()));
  }
  {
    std::ifstream f(std::string(MPIV_SOURCE_DIR) +
                    "/scenarios/chaos_soak.scn");
    ASSERT_TRUE(f.good());
    std::ostringstream text;
    text << f.rdbuf();
    bases.push_back(text.str());
  }

  const std::string charset =
      "abcdefghijklmnopqrstuvwxyz0123456789=.,:[]#|+- \t\n";
  std::mt19937_64 rng(0xf022);
  std::size_t parsed_ok = 0;
  for (int iter = 0; iter < 400; ++iter) {
    std::string text = bases[iter % bases.size()];
    const int edits = 1 + static_cast<int>(rng() % 3);
    for (int e = 0; e < edits && !text.empty(); ++e) {
      const std::size_t at = rng() % text.size();
      switch (rng() % 4) {
        case 0: text[at] = charset[rng() % charset.size()]; break;
        case 1: text.erase(at, 1); break;
        case 2:
          text.insert(at, 1, charset[rng() % charset.size()]);
          break;
        case 3: {  // duplicate the line containing `at`
          std::size_t begin = text.rfind('\n', at);
          begin = begin == std::string::npos ? 0 : begin + 1;
          std::size_t end = text.find('\n', at);
          end = end == std::string::npos ? text.size() : end + 1;
          text.insert(begin, text.substr(begin, end - begin));
          break;
        }
      }
    }
    try {
      const ScenarioSpec spec = scenario::parse_scenario_text(text, "fuzz");
      const std::string t1 = scenario::to_scenario_text(spec);
      const ScenarioSpec reparsed = scenario::parse_scenario_text(t1, "fuzz2");
      ASSERT_EQ(scenario::to_scenario_text(reparsed), t1)
          << "round trip is not a fixed point for mutant " << iter << ":\n"
          << text;
      ++parsed_ok;
    } catch (const SpecError&) {
      // Rejecting a mutant is fine; crashing on one is not.
    }
  }
  // The mutation distribution must exercise the accept path too, or the
  // round-trip half of this test silently tests nothing.
  EXPECT_GT(parsed_ok, 20u);
}

TEST(ScenarioFile, PayloadAtSenderIsCausalOnly) {
  // The flag round-trips on a causal variant...
  ScenarioBuilder b("pas");
  b.variant("vcausal:el").payload_at_sender();
  const std::string text = scenario::to_scenario_text(b.build());
  EXPECT_NE(text.find("payload_at_sender = true"), std::string::npos) << text;
  EXPECT_TRUE(scenario::parse_scenario_text(text).payload_at_sender);
  EXPECT_NO_THROW(scenario::validate(scenario::parse_scenario_text(text)));

  // ...and is rejected, naming the variant, anywhere else.
  const std::string msg = error_of([] {
    scenario::validate(scenario::parse_scenario_text(
        "variant = replica\npayload_at_sender = true\n"));
  });
  EXPECT_NE(msg.find("payload_at_sender"), std::string::npos) << msg;
  EXPECT_NE(msg.find("replica"), std::string::npos) << msg;
}

TEST(ScenarioFile, ParseErrorsCarryFileAndLine) {
  const std::string msg = error_of([] {
    scenario::parse_scenario_text("[scenario]\nnranks = 4\nbogus_key = 1\n",
                                  "demo.scn");
  });
  EXPECT_NE(msg.find("demo.scn:3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unknown scenario key 'bogus_key'"), std::string::npos)
      << msg;
  EXPECT_THROW(scenario::parse_scenario_text("[nonsense]\n"), SpecError);
  EXPECT_THROW(scenario::parse_scenario_text("no equals sign\n"), SpecError);
  EXPECT_THROW(scenario::parse_scenario_text("nranks = twelve\n"), SpecError);
}

TEST(ScenarioFile, DurationsAndCommentsParse) {
  const ScenarioSpec spec = scenario::parse_scenario_text(
      "# comment\n"
      "ckpt_policy = round-robin   # trailing comment\n"
      "ckpt_interval = 75ms\n"
      "detection_delay = 250us\n"
      "max_sim_time = 2h\n");
  EXPECT_EQ(spec.ckpt_policy, ckpt::Policy::kRoundRobin);
  EXPECT_EQ(spec.ckpt_interval, 75 * sim::kMillisecond);
  EXPECT_EQ(spec.detection_delay, 250 * sim::kMicrosecond);
  EXPECT_EQ(spec.max_sim_time, 2LL * 3600 * sim::kSecond);
}

// ---------------------------------------------------------------------------
// Sweep expansion and quick overlays
// ---------------------------------------------------------------------------

TEST(Sweep, CartesianExpansionWithSkips) {
  ScenarioSpec spec = scenario::parse_scenario_text(
      "workload = nas\n"
      "nas = bt:A:0.1\n"
      "[sweep]\n"
      "nranks = 2, 4, 9\n"
      "variant = vcausal:el, manetho:el\n");
  const std::vector<scenario::RunPoint> points = scenario::expand(spec);
  ASSERT_EQ(points.size(), 6u);  // 3 x 2
  // BT needs square rank counts: the nranks=2 points are skipped, not lost.
  EXPECT_TRUE(points[0].skipped);
  EXPECT_NE(points[0].skip_reason.find("BT"), std::string::npos);
  EXPECT_FALSE(points[2].skipped);  // nranks=4
  EXPECT_EQ(points[2].spec.nranks, 4);
  EXPECT_EQ(points[2].spec.variant.strategy, causal::StrategyKind::kVcausal);
  EXPECT_EQ(points[3].spec.variant.strategy, causal::StrategyKind::kManetho);
  EXPECT_NE(points[3].label.find("Manetho (EL)"), std::string::npos);
  EXPECT_NE(points[3].label.find("nranks=4"), std::string::npos);
}

TEST(Sweep, InfeasibleSweepCornersAreSkippedNotFatal) {
  // A cross-product sweep may have corners the spec validator rejects
  // (8 shards on 4 ranks, shards crossed with a no-EL variant); those
  // become skipped points with the validation message as the reason,
  // while the feasible corners still run.
  ScenarioSpec spec = scenario::parse_scenario_text(
      "nranks = 4\n"
      "[sweep]\n"
      "variant = vcausal:el, vcausal:noel\n"
      "el_shards = 1, 8\n");
  const std::vector<scenario::RunPoint> points = scenario::expand(spec);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_FALSE(points[0].skipped);  // el, 1 shard
  EXPECT_TRUE(points[1].skipped);   // el, 8 shards > 4 ranks
  EXPECT_NE(points[1].skip_reason.find("cannot exceed"), std::string::npos);
  EXPECT_FALSE(points[2].skipped);  // noel, 1 shard (no sharding)
  EXPECT_TRUE(points[3].skipped);   // noel, 8 shards
  // A sweepless spec still escalates the same failure to an error.
  ScenarioSpec bad = scenario::parse_scenario_text(
      "variant = vcausal:el\nnranks = 4\nel_shards = 8\n");
  EXPECT_THROW(scenario::expand(bad), SpecError);
}

TEST(Quick, OverlayReplacesAxesAndScalars) {
  ScenarioSpec spec = scenario::parse_scenario_text(
      "nranks = 8\n"
      "workload = ring\n"
      "workload.laps = 60\n"
      "[sweep]\n"
      "variant = vcausal:el, manetho:el, logon:el\n"
      "[quick]\n"
      "workload.laps = 5\n"
      "variant = vcausal:el\n");
  scenario::apply_quick(spec);
  EXPECT_EQ(spec.workload.params.at("laps"), "5");
  ASSERT_EQ(spec.sweep.size(), 1u);  // axis replaced, not duplicated
  EXPECT_EQ(spec.sweep[0].second, (std::vector<std::string>{"vcausal:el"}));
  EXPECT_TRUE(spec.quick.empty());
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

TEST(Lowering, MapsEveryFieldOntoClusterConfig) {
  ScenarioBuilder b("lowering");
  b.variant("manetho:noel")
      .nranks(6)
      .seed(99)
      .checkpoint(ckpt::Policy::kRoundRobin, 50 * sim::kMillisecond)
      .fault_at(70 * sim::kMillisecond, 5)
      .detection_delay(100 * sim::kMillisecond)
      .max_sim_time(30 * sim::kSecond);
  const runtime::ClusterConfig cfg = scenario::lower(b.build());
  EXPECT_EQ(cfg.nranks, 6);
  EXPECT_EQ(cfg.protocol, runtime::ProtocolKind::kCausal);
  EXPECT_EQ(cfg.strategy, causal::StrategyKind::kManetho);
  EXPECT_FALSE(cfg.event_logger);
  EXPECT_EQ(cfg.el_shards, 1);
  EXPECT_EQ(cfg.seed, 99u);
  EXPECT_EQ(cfg.ckpt_policy, ckpt::Policy::kRoundRobin);
  EXPECT_EQ(cfg.ckpt_interval, 50 * sim::kMillisecond);
  ASSERT_EQ(cfg.faults.size(), 1u);
  EXPECT_EQ(cfg.faults[0].rank, 5);
  EXPECT_EQ(cfg.detection_delay, 100 * sim::kMillisecond);
  EXPECT_EQ(cfg.max_sim_time, 30 * sim::kSecond);
}

// Legacy construction validates too: a hand-built ClusterConfig that the
// builder would reject dies with the same story.
using ClusterDeath = ::testing::Test;

TEST(ClusterDeath, RejectsShardsWithoutEventLogger) {
  runtime::ClusterConfig cfg;
  cfg.nranks = 8;
  cfg.protocol = runtime::ProtocolKind::kCausal;
  cfg.event_logger = false;
  cfg.el_shards = 2;
  EXPECT_DEATH(runtime::Cluster{cfg}, "requires event_logger");
}

TEST(ClusterDeath, RejectsFaultOnMissingRank) {
  runtime::ClusterConfig cfg;
  cfg.nranks = 4;
  cfg.protocol = runtime::ProtocolKind::kCausal;
  cfg.faults.push_back(runtime::FaultSpec{1000, 7});
  EXPECT_DEATH(runtime::Cluster{cfg}, "names rank 7");
}

// ---------------------------------------------------------------------------
// Runner + JSON report shape
// ---------------------------------------------------------------------------

/// Minimal recursive-descent JSON well-formedness checker (no external
/// dependencies; enough to catch every malformed report).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::strchr("+-.eE", s_[pos_]) != nullptr)) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(Report, JsonIsWellFormedAndCarriesTheSweep) {
  ScenarioBuilder b("report");
  b.nranks(4)
      .ring(/*laps=*/5, /*token_bytes=*/256)
      .sweep("variant", {"vdummy", "vcausal:el"});
  scenario::RunSet set = scenario::run(b.build());
  set.origin = "test";
  ASSERT_EQ(set.runs.size(), 2u);
  EXPECT_TRUE(set.runs[0].completed);
  EXPECT_TRUE(set.runs[1].completed);

  const std::string json = scenario::to_json(set);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  for (const char* needle :
       {"\"scenario\": \"report\"", "\"runs\":", "\"label\": \"Vcausal (EL)\"",
        "\"completed\": true", "\"pb_bytes\":", "\"checksum\":",
        "\"sim_time_s\":", "\"el\":", "\"recovery\":", "\"axes\":"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
  }
  // Multi-report envelope is valid too.
  EXPECT_TRUE(JsonChecker(scenario::to_json(std::vector<scenario::RunSet>{
                              set, set}))
                  .valid());
}

TEST(Report, SkippedPointsAreReportedNotDropped) {
  ScenarioSpec spec = scenario::parse_scenario_text(
      "workload = nas\n"
      "nas = bt:A:0.05\n"
      "variant = vcausal:el\n"
      "[sweep]\n"
      "nranks = 2, 4\n");
  const scenario::RunSet set = scenario::run(spec);
  ASSERT_EQ(set.runs.size(), 2u);
  EXPECT_TRUE(set.runs[0].skipped);
  EXPECT_FALSE(set.runs[1].skipped);
  const std::string json = scenario::to_json(set);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("\"skipped\": true"), std::string::npos);
  EXPECT_NE(json.find("\"skip_reason\":"), std::string::npos);
}

TEST(Runner, PingpongResultsLandInTheReport) {
  ScenarioBuilder b("pp");
  b.variant("vcausal:el").nranks(2).pingpong({1, 1024}, 20);
  const scenario::RunResult r = scenario::run_spec(b.build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.pingpong.points.size(), 2u);
  EXPECT_GT(r.pingpong.points[0].latency_us, 0);
  const std::string json =
      scenario::to_json(scenario::RunSet{"pp", "t", false, {r}});
  EXPECT_NE(json.find("\"points\":"), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).valid());
}

TEST(Report, DegradedTallyDrivesTheDistinctExitCode) {
  // An abandoned point (max_sim_time hit) makes the grid degraded — the
  // contract behind mpiv_run's exit status 3.
  ScenarioBuilder b("starved");
  b.variant("vcausal:el")
      .nranks(4)
      .ring(/*laps=*/200, /*token_bytes=*/4096)
      .max_sim_time(1 * sim::kMicrosecond);
  const scenario::RunResult r = scenario::run_spec(b.build());
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.outcome(), scenario::Outcome::kAbandoned);

  scenario::RunSet set{"starved", "t", false, {r}};
  scenario::OutcomeCounts t = set.tally();
  EXPECT_EQ(t.abandoned, 1u);
  EXPECT_TRUE(t.degraded());

  // A failed point (lost worker) degrades the grid the same way, and the
  // report names it in the always-present outcomes tally.
  scenario::RunResult lost;
  lost.label = "casualty";
  lost.failed = true;
  lost.fail_reason = "worker killed by signal 9 before delivering a result";
  set.runs.push_back(lost);
  t = set.tally();
  EXPECT_EQ(t.failed, 1u);
  EXPECT_EQ(t.total(), 2u);
  EXPECT_TRUE(t.degraded());
  const std::string json = scenario::to_json(set);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"outcome\": \"failed\""), std::string::npos);
  EXPECT_NE(json.find("\"fail_reason\""), std::string::npos);
  EXPECT_NE(json.find("\"failed\": 1"), std::string::npos);

  // A clean grid is not degraded, and still carries the failed counter
  // (always emitted, so serial and parallel reports stay byte-identical).
  ScenarioBuilder ok("ok");
  ok.variant("vcausal:el").nranks(2).ring(3, 128);
  const scenario::RunSet clean =
      scenario::RunSet{"ok", "t", false, {scenario::run_spec(ok.build())}};
  EXPECT_FALSE(clean.tally().degraded());
  EXPECT_NE(scenario::to_json(clean).find("\"failed\": 0"),
            std::string::npos);
}

TEST(Runner, MidrunFaultProducesReferenceAndExactRecovery) {
  ScenarioBuilder b("midrun");
  b.variant("vcausal:el")
      .nranks(4)
      .checkpoint(ckpt::Policy::kRoundRobin, 20 * sim::kMillisecond)
      .ring(/*laps=*/30, /*token_bytes=*/1024)
      .midrun_fault(/*rank=*/2);
  const scenario::RunResult r = scenario::run_spec(b.build());
  ASSERT_TRUE(r.completed);
  ASSERT_TRUE(r.has_reference);
  EXPECT_GT(r.reference_time, 0);
  EXPECT_EQ(r.report.faults_injected, 1u);
  EXPECT_TRUE(r.recovered_exact);
  const std::string json =
      scenario::to_json(scenario::RunSet{"midrun", "t", false, {r}});
  EXPECT_NE(json.find("\"recovered_exact\": true"), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).valid());
}

}  // namespace
}  // namespace mpiv
