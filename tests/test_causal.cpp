// Unit and property tests for the causal-logging core: determinant wire
// formats, the event store, the antecedence graph (including the paper's
// Fig. 3 scenario), the sender log, and the strategy invariants —
// no-event-sent-twice, graph-pruning soundness (Manetho/LogOn piggyback a
// subset of Vcausal's), and LogOn's partial-order emission.
#include <gtest/gtest.h>

#include <set>

#include "causal/antecedence_graph.hpp"
#include "causal/event_store.hpp"
#include "causal/logon_strategy.hpp"
#include "causal/manetho_strategy.hpp"
#include "causal/sender_log.hpp"
#include "causal/vcausal_strategy.hpp"
#include "causal/wire.hpp"
#include "util/rng.hpp"

namespace mpiv::causal {
namespace {

ftapi::Determinant det(std::uint32_t creator, std::uint64_t seq,
                       std::uint32_t src, std::uint64_t ssn, int tag = 0) {
  ftapi::Determinant d;
  d.creator = creator;
  d.seq = seq;
  d.src = src;
  d.ssn = ssn;
  d.tag = tag;
  return d;
}

// --- wire formats -------------------------------------------------------------

TEST(Wire, FactoredRoundTrip) {
  std::vector<ftapi::Determinant> events;
  for (std::uint64_t s = 5; s < 9; ++s) events.push_back(det(2, s, 1, s + 10, 3));
  for (std::uint64_t s = 1; s < 3; ++s) events.push_back(det(4, s, 0, s, 9));
  util::Buffer b;
  wire::factored_serialize(events, b);
  const auto parsed = wire::factored_parse(b);
  ASSERT_EQ(parsed.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) EXPECT_EQ(parsed[i], events[i]);
}

TEST(Wire, PlainRoundTripPreservesOrder) {
  std::vector<ftapi::Determinant> events = {det(3, 7, 1, 2), det(1, 1, 3, 9),
                                            det(3, 8, 0, 5)};
  util::Buffer b;
  wire::plain_serialize(events, b);
  const auto parsed = wire::plain_parse(b);
  ASSERT_EQ(parsed.size(), 3u);
  for (std::size_t i = 0; i < events.size(); ++i) EXPECT_EQ(parsed[i], events[i]);
}

TEST(Wire, FactoredSmallerForRuns) {
  // 100 consecutive events of one creator: one block header amortized.
  std::vector<ftapi::Determinant> events;
  for (std::uint64_t s = 1; s <= 100; ++s) events.push_back(det(2, s, 1, s));
  util::Buffer fact, plain;
  wire::factored_serialize(events, fact);
  wire::plain_serialize(events, plain);
  EXPECT_LT(fact.size(), plain.size());
}

TEST(Wire, PlainSmallerForSingleEvents) {
  // The paper's LU/4 case: one event per piggyback — the factored block
  // header exceeds the per-event format.
  std::vector<ftapi::Determinant> one = {det(2, 1, 1, 1)};
  util::Buffer fact, plain;
  wire::factored_serialize(one, fact);
  wire::plain_serialize(one, plain);
  EXPECT_GT(fact.size(), plain.size());
}

TEST(Wire, FactoredSplitsNonContiguousRuns) {
  std::vector<ftapi::Determinant> events = {det(2, 1, 1, 1), det(2, 3, 1, 3)};
  util::Buffer b;
  wire::factored_serialize(events, b);
  const auto parsed = wire::factored_parse(b);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].seq, 1u);
  EXPECT_EQ(parsed[1].seq, 3u);
}

// --- event store ---------------------------------------------------------------

TEST(EventStoreTest, AddAndKnownTracksPrefix) {
  EventStore s(4);
  EXPECT_TRUE(s.add(det(1, 1, 0, 1)));
  EXPECT_TRUE(s.add(det(1, 2, 0, 2)));
  EXPECT_FALSE(s.add(det(1, 2, 0, 2)));  // duplicate
  EXPECT_EQ(s.known(1), 2u);
  EXPECT_EQ(s.known(2), 0u);
}

TEST(EventStoreTest, StablePruningDropsCoveredEvents) {
  EventStore s(4);
  for (std::uint64_t q = 1; q <= 10; ++q) s.add(det(1, q, 0, q));
  s.set_stable({0, 7, 0, 0});
  EXPECT_EQ(s.stable(1), 7u);
  EXPECT_EQ(s.known(1), 10u);
  EXPECT_EQ(s.find(1, 7), nullptr);
  EXPECT_NE(s.find(1, 8), nullptr);
  ftapi::DeterminantList out;
  s.collect(1, out);
  EXPECT_EQ(out.size(), 3u);
  // A determinant below the stable point is rejected.
  EXPECT_FALSE(s.add(det(1, 5, 0, 5)));
}

TEST(EventStoreTest, GapAboveStableIsAllowed) {
  // A sender only piggybacks its unstable suffix: the receiver may learn
  // (10..12] while 6..10 went straight to the EL.
  EventStore s(4);
  for (std::uint64_t q = 1; q <= 5; ++q) s.add(det(1, q, 0, q));
  EXPECT_TRUE(s.add(det(1, 11, 0, 11)));
  EXPECT_TRUE(s.add(det(1, 12, 0, 12)));
  EXPECT_EQ(s.known(1), 12u);
}

TEST(EventStoreTest, SerializeRestoreRoundTrip) {
  EventStore s(3);
  for (std::uint64_t q = 1; q <= 6; ++q) s.add(det(2, q, 0, q));
  s.set_stable({0, 0, 3});
  util::Buffer b;
  s.serialize(b);
  EventStore t(3);
  t.restore(b);
  EXPECT_EQ(t.known(2), 6u);
  EXPECT_EQ(t.stable(2), 3u);
  EXPECT_EQ(t.held_count(), 3u);
}

// --- antecedence graph ----------------------------------------------------------

TEST(Graph, ReachabilityFollowsProcessOrderAndCrossEdges) {
  AntecedenceGraph g(3);
  // P1 events 1..3; P2 event 1 depends on P1's event 2.
  for (std::uint64_t q = 1; q <= 3; ++q) g.add(det(1, q, 0, q));
  ftapi::Determinant e = det(2, 1, 1, 5);
  e.dep_creator = 1;
  e.dep_seq = 2;
  g.add(e);
  std::vector<std::uint64_t> known;
  g.known_from(2, 1, known);
  EXPECT_EQ(known[2], 1u);
  EXPECT_EQ(known[1], 2u);  // through the cross edge, then process order
  EXPECT_EQ(known[0], 0u);
}

TEST(Graph, PaperFig3TransitiveKnowledge) {
  // Paper Fig. 3: P3 never exchanged with P2 directly, but learned P2's
  // event via a relay; the graph walk proves P2 knows its own causal past,
  // so those events need not be piggybacked — Vcausal cannot see this.
  AntecedenceGraph g(4);
  // P0 creates a,b (seq 1,2). P2's event h (seq 1) has cross edge to P0#2.
  g.add(det(0, 1, 3, 1));
  g.add(det(0, 2, 3, 2));
  ftapi::Determinant h = det(2, 1, 0, 9);
  h.dep_creator = 0;
  h.dep_seq = 2;
  g.add(h);
  // P3 (us) holds all of it; what does P2 know?
  std::vector<std::uint64_t> known;
  g.known_from(2, 1, known);
  EXPECT_EQ(known[0], 2u);  // P2 provably knows P0's events 1..2
}

TEST(Graph, PruneStableRemovesVertices) {
  AntecedenceGraph g(2);
  for (std::uint64_t q = 1; q <= 8; ++q) g.add(det(1, q, 0, q));
  EXPECT_EQ(g.vertex_count(), 8u);
  g.prune_stable({0, 5});
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_FALSE(g.contains(1, 5));
  EXPECT_TRUE(g.contains(1, 6));
}

TEST(Graph, CachedTraversalMatchesFullTraversal) {
  util::Rng rng(77);
  AntecedenceGraph g(4);
  std::vector<std::uint64_t> seq(4, 0);
  for (int i = 0; i < 200; ++i) {
    const auto c = static_cast<std::uint32_t>(rng.next_below(4));
    const auto s = static_cast<std::uint32_t>(rng.next_below(4));
    ftapi::Determinant d = det(c, ++seq[c], s, seq[c]);
    d.dep_creator = s;
    d.dep_seq = seq[s];
    g.add(d);
    if (i % 20 == 19) {
      std::vector<std::uint64_t> full, cached;
      g.known_from(1, seq[1], full);
      std::vector<std::uint64_t> cache;  // fresh cache each time
      g.known_from_cached(1, seq[1], cache);
      EXPECT_EQ(cache, full);
    }
  }
}

// --- sender log -------------------------------------------------------------------

TEST(SenderLogTest, LogGcAndPending) {
  SenderLog log(4);
  for (std::uint64_t ssn = 1; ssn <= 10; ++ssn) {
    log.log(2, ssn, 5, {100 * ssn, ssn});
  }
  EXPECT_EQ(log.entries(), 10u);
  EXPECT_EQ(log.bytes(), 100u * 55);
  log.gc(2, 6);
  EXPECT_EQ(log.entries(), 4u);
  std::vector<std::uint64_t> pending;
  log.for_pending(2, 8, [&](const SenderLog::Entry& e) { pending.push_back(e.ssn); });
  EXPECT_EQ(pending, (std::vector<std::uint64_t>{9, 10}));
}

TEST(SenderLogTest, SerializeRestoreRoundTrip) {
  SenderLog log(2);
  log.log(1, 3, 7, {512, 99});
  util::Buffer b;
  log.serialize(b);
  SenderLog log2(2);
  log2.restore(b);
  EXPECT_EQ(log2.entries(), 1u);
  EXPECT_EQ(log2.bytes(), 512u);
  std::vector<std::uint64_t> checks;
  log2.for_pending(1, 0, [&](const SenderLog::Entry& e) { checks.push_back(e.payload.check); });
  EXPECT_EQ(checks, (std::vector<std::uint64_t>{99}));
}

// --- strategy properties -------------------------------------------------------------

struct StratFixture {
  EventStore store{4};
  net::CostModel cost;
  std::unique_ptr<Strategy> strat;

  explicit StratFixture(StrategyKind k) : strat(make_strategy(k)) {
    strat->attach(&store, &cost, /*rank=*/3, 4);
  }
  void local_event(std::uint32_t src, std::uint64_t ssn) {
    ftapi::Determinant d = det(3, store.known(3) + 1, src, ssn);
    d.dep_creator = src;
    d.dep_seq = store.known(src);
    store.add(d);
    strat->on_local_event(d);
  }
  std::vector<ftapi::Determinant> build(int dst, util::Buffer* out = nullptr,
                                        Strategy::DepShadow* deps_out = nullptr) {
    util::Buffer local;
    util::Buffer& b = out ? *out : local;
    Strategy::DepShadow deps;
    strat->build(dst, b, deps);
    if (deps_out) *deps_out = deps;
    // Parse back through the matching wire format.
    b.rewind();
    return dynamic_cast<LogOnStrategy*>(strat.get()) ? wire::plain_parse(b)
                                                     : wire::factored_parse(b);
  }
};

class StrategyProperty : public ::testing::TestWithParam<StrategyKind> {};

TEST_P(StrategyProperty, NoEventSentTwiceToSamePeer) {
  StratFixture fx(GetParam());
  std::set<std::pair<std::uint32_t, std::uint64_t>> sent;
  util::Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 5; ++i) {
      fx.local_event(static_cast<std::uint32_t>(rng.next_below(3)), rng.next_u64() % 1000);
    }
    for (const ftapi::Determinant& d : fx.build(1)) {
      const auto key = std::make_pair(d.creator, d.seq);
      EXPECT_TRUE(sent.insert(key).second)
          << "event (" << d.creator << "," << d.seq << ") piggybacked twice";
    }
  }
}

TEST_P(StrategyProperty, StableEventsNeverPiggybacked) {
  StratFixture fx(GetParam());
  for (int i = 0; i < 10; ++i) fx.local_event(0, static_cast<std::uint64_t>(i + 1));
  std::vector<std::uint64_t> stable = {0, 0, 0, 6};
  fx.store.set_stable(stable);
  fx.strat->on_stable(stable);
  for (const ftapi::Determinant& d : fx.build(1)) {
    EXPECT_GT(d.seq, 6u);
  }
}

TEST_P(StrategyProperty, NeverSendsReceiverItsOwnEvents) {
  StratFixture fx(GetParam());
  // Learn some events created by peer 1 (as if piggybacked to us).
  util::Buffer in;
  Strategy::DepShadow deps;
  std::vector<ftapi::Determinant> theirs;
  for (std::uint64_t q = 1; q <= 4; ++q) {
    theirs.push_back(det(1, q, 2, q));
    deps.emplace_back(UINT32_MAX, 0);
  }
  if (GetParam() == StrategyKind::kLogOn) {
    wire::plain_serialize(theirs, in);
  } else {
    wire::factored_serialize(theirs, in);
  }
  in.rewind();
  fx.strat->absorb(1, in, deps);
  fx.local_event(0, 1);
  for (const ftapi::Determinant& d : fx.build(1)) {
    EXPECT_NE(d.creator, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyProperty,
                         ::testing::Values(StrategyKind::kVcausal,
                                           StrategyKind::kManetho,
                                           StrategyKind::kLogOn),
                         [](const auto& info) {
                           return std::string(strategy_kind_name(info.param));
                         });

TEST(StrategyComparison, GraphStrategiesPiggybackSubsetOfVcausal) {
  // Same event history in all three; the graph strategies may prune
  // strictly more (transitive knowledge) but never less safely: their
  // emitted set must be a subset of Vcausal's.
  StratFixture vc(StrategyKind::kVcausal);
  StratFixture ma(StrategyKind::kManetho);
  StratFixture lo(StrategyKind::kLogOn);
  util::Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    const auto src = static_cast<std::uint32_t>(rng.next_below(3));
    const std::uint64_t ssn = static_cast<std::uint64_t>(i + 1);
    vc.local_event(src, ssn);
    ma.local_event(src, ssn);
    lo.local_event(src, ssn);
  }
  auto key_set = [](const std::vector<ftapi::Determinant>& v) {
    std::set<std::pair<std::uint32_t, std::uint64_t>> s;
    for (const auto& d : v) s.emplace(d.creator, d.seq);
    return s;
  };
  const auto vset = key_set(vc.build(1));
  const auto mset = key_set(ma.build(1));
  const auto lset = key_set(lo.build(1));
  for (const auto& k : mset) EXPECT_TRUE(vset.count(k));
  for (const auto& k : lset) EXPECT_TRUE(vset.count(k));
  EXPECT_EQ(mset, lset);  // same pruning, different wire format
}

TEST(LogOnOrder, EmissionRespectsPartialOrder) {
  // For the emitted sequence m_1..m_k: for i < j, m_j must not be in the
  // causal past of m_i (paper §III-C) — i.e. ancestors come first.
  StratFixture fx(StrategyKind::kLogOn);
  util::Rng rng(13);
  for (int i = 0; i < 40; ++i) {
    fx.local_event(static_cast<std::uint32_t>(rng.next_below(3)),
                   static_cast<std::uint64_t>(i + 1));
  }
  Strategy::DepShadow deps;
  const std::vector<ftapi::Determinant> emitted = fx.build(1, nullptr, &deps);
  ASSERT_EQ(deps.size(), emitted.size());
  std::set<std::pair<std::uint32_t, std::uint64_t>> seen;
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    const ftapi::Determinant& d = emitted[i];
    // Process-order antecedent must already have been emitted (if in set).
    if (d.seq > 1) {
      bool in_set = false;
      for (const auto& e : emitted) {
        if (e.creator == d.creator && e.seq == d.seq - 1) in_set = true;
      }
      if (in_set) {
        EXPECT_TRUE(seen.count({d.creator, d.seq - 1}))
            << "process-order violated at index " << i;
      }
    }
    // Cross-edge antecedent likewise.
    const auto [dc, ds] = deps[i];
    if (dc != UINT32_MAX && ds > 0) {
      bool in_set = false;
      for (const auto& e : emitted) {
        if (e.creator == dc && e.seq == ds) in_set = true;
      }
      if (in_set) {
        EXPECT_TRUE(seen.count({dc, ds})) << "cross edge violated at index " << i;
      }
    }
    seen.emplace(d.creator, d.seq);
  }
}

TEST(LogOnOrder, CausalOrderIsStableUnderPermutation) {
  std::vector<ftapi::Determinant> events;
  std::vector<std::uint64_t> seq(4, 0);
  util::Rng rng(21);
  for (int i = 0; i < 20; ++i) {
    const auto c = static_cast<std::uint32_t>(rng.next_below(4));
    ftapi::Determinant d = det(c, ++seq[c], (c + 1) % 4, seq[c]);
    d.dep_creator = (c + 1) % 4;
    d.dep_seq = seq[(c + 1) % 4];
    events.push_back(d);
  }
  const auto ordered = LogOnStrategy::causal_order(events);
  EXPECT_EQ(ordered.size(), events.size());
  std::reverse(events.begin(), events.end());
  const auto ordered2 = LogOnStrategy::causal_order(events);
  EXPECT_EQ(ordered2.size(), ordered.size());
}

TEST(PeerViewTest, RestartClampsAndCaps) {
  PeerView v;
  v.init(3);
  v.learned = {5, 9, 2};
  v.sent = {7, 1, 0};
  v.on_restart({4, 4, 4});
  EXPECT_EQ(v.learned, (std::vector<std::uint64_t>{4, 4, 2}));
  EXPECT_EQ(v.sent, (std::vector<std::uint64_t>{4, 1, 0}));
  EXPECT_EQ(v.cap, (std::vector<std::uint64_t>{4, 4, 4}));
  v.raise_cap(0, 6);
  EXPECT_EQ(v.cap[0], 6u);
}

}  // namespace
}  // namespace mpiv::causal
