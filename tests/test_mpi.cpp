// Unit tests for the MPI layer: matching semantics (FIFO, tags, wildcard),
// arrival dedup, collectives correctness across sizes/roots (property
// sweeps), and collective determinism.
#include <gtest/gtest.h>

#include <numeric>

#include "mpi/collectives.hpp"
#include "mpi/matching.hpp"
#include "runtime/cluster.hpp"
#include "workloads/apps.hpp"

namespace mpiv {
namespace {

using mpi::ArrivalDedup;

TEST(ArrivalDedupTest, InOrderAccepts) {
  ArrivalDedup d;
  for (std::uint64_t s = 1; s <= 10; ++s) EXPECT_TRUE(d.accept(s));
  EXPECT_EQ(d.watermark(), 10u);
}

TEST(ArrivalDedupTest, DuplicatesDrop) {
  ArrivalDedup d;
  EXPECT_TRUE(d.accept(1));
  EXPECT_FALSE(d.accept(1));
  EXPECT_TRUE(d.accept(2));
  EXPECT_FALSE(d.accept(1));
  EXPECT_FALSE(d.accept(2));
}

TEST(ArrivalDedupTest, OutOfOrderTolerated) {
  // Rendezvous can reorder a large message behind later eager ones.
  ArrivalDedup d;
  EXPECT_TRUE(d.accept(2));
  EXPECT_EQ(d.watermark(), 0u);
  EXPECT_TRUE(d.accept(1));
  EXPECT_EQ(d.watermark(), 2u);  // hole filled, watermark advances
  EXPECT_FALSE(d.accept(2));
  EXPECT_TRUE(d.accept(4));
  EXPECT_FALSE(d.accept(4));
  EXPECT_TRUE(d.accept(3));
  EXPECT_EQ(d.watermark(), 4u);
}

TEST(ArrivalDedupTest, SerializeRoundTrip) {
  ArrivalDedup d;
  d.accept(1);
  d.accept(2);
  d.accept(5);
  util::Buffer b;
  d.serialize(b);
  ArrivalDedup e;
  e.restore(b);
  EXPECT_EQ(e.watermark(), 2u);
  EXPECT_FALSE(e.accept(5));
  EXPECT_TRUE(e.accept(3));
  EXPECT_TRUE(e.accept(4));
  EXPECT_EQ(e.watermark(), 5u);
}

// --- matching semantics through the full runtime -----------------------------

// Runs a 2-rank app where rank 0 sends tagged messages and rank 1 receives
// them in a chosen order; returns rank 1's observations.
struct TagProbe {
  std::vector<int> tags_received;
  std::vector<std::uint64_t> checks;
};

TEST(Matching, TagSelectionPullsFromUnexpectedQueue) {
  runtime::ClusterConfig cfg;
  cfg.nranks = 2;
  auto probe = std::make_shared<TagProbe>();
  runtime::Cluster cluster(cfg);
  auto app = [probe](mpi::Comm& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, /*tag=*/10, 64, 100);
      co_await c.send(1, /*tag=*/20, 64, 200);
      co_await c.send(1, /*tag=*/30, 64, 300);
    } else {
      // Receive in reverse tag order: matching must pick by tag, not FIFO.
      for (const int tag : {30, 20, 10}) {
        const mpi::RecvResult r = co_await c.recv(0, tag);
        probe->tags_received.push_back(r.tag);
        probe->checks.push_back(r.check);
      }
    }
  };
  runtime::ClusterReport rep = cluster.run(app);
  ASSERT_TRUE(rep.completed);
  EXPECT_EQ(probe->tags_received, (std::vector<int>{30, 20, 10}));
  EXPECT_EQ(probe->checks, (std::vector<std::uint64_t>{300, 200, 100}));
}

TEST(Matching, SameTagIsFifoPerSender) {
  runtime::ClusterConfig cfg;
  cfg.nranks = 2;
  auto probe = std::make_shared<TagProbe>();
  runtime::Cluster cluster(cfg);
  auto app = [probe](mpi::Comm& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      for (int i = 0; i < 5; ++i) co_await c.send(1, 7, 64, static_cast<std::uint64_t>(i));
    } else {
      for (int i = 0; i < 5; ++i) {
        const mpi::RecvResult r = co_await c.recv(0, 7);
        probe->checks.push_back(r.check);
      }
    }
  };
  ASSERT_TRUE(cluster.run(app).completed);
  EXPECT_EQ(probe->checks, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Matching, WildcardReceivesFromAnySource) {
  runtime::ClusterConfig cfg;
  cfg.nranks = 4;
  auto probe = std::make_shared<TagProbe>();
  runtime::Cluster cluster(cfg);
  auto app = [probe](mpi::Comm& c) -> sim::Task<void> {
    if (c.rank() == 0) {
      std::uint64_t sum = 0;
      for (int i = 0; i < 3; ++i) {
        const mpi::RecvResult r = co_await c.recv(mpi::kAnySource, 5);
        sum += r.check;
      }
      probe->checks.push_back(sum);
    } else {
      co_await c.send(0, 5, 64, static_cast<std::uint64_t>(c.rank()));
    }
  };
  ASSERT_TRUE(cluster.run(app).completed);
  ASSERT_EQ(probe->checks.size(), 1u);
  EXPECT_EQ(probe->checks[0], 1u + 2u + 3u);
}

// --- collectives ---------------------------------------------------------------

class CollectiveSizes : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveSizes, AllreduceComputesGlobalSum) {
  const int n = GetParam();
  runtime::ClusterConfig cfg;
  cfg.nranks = n;
  auto sums = std::make_shared<std::vector<std::uint64_t>>(n, 0);
  runtime::Cluster cluster(cfg);
  auto app = [sums](mpi::Comm& c) -> sim::Task<void> {
    const std::uint64_t contrib = static_cast<std::uint64_t>(c.rank() + 1) * 11;
    (*sums)[static_cast<std::size_t>(c.rank())] =
        co_await mpi::allreduce(c, 8, contrib);
  };
  ASSERT_TRUE(cluster.run(app).completed);
  const std::uint64_t expect = 11ull * n * (n + 1) / 2;
  for (const std::uint64_t s : *sums) EXPECT_EQ(s, expect);
}

TEST_P(CollectiveSizes, BcastDeliversRootValueFromEveryRoot) {
  const int n = GetParam();
  for (int root = 0; root < n; root += std::max(1, n / 3)) {
    runtime::ClusterConfig cfg;
    cfg.nranks = n;
    auto got = std::make_shared<std::vector<std::uint64_t>>(n, 0);
    runtime::Cluster cluster(cfg);
    auto app = [got, root](mpi::Comm& c) -> sim::Task<void> {
      const std::uint64_t value = c.rank() == root ? 0xBEEF : 0;
      (*got)[static_cast<std::size_t>(c.rank())] =
          co_await mpi::bcast(c, root, 256, value);
    };
    ASSERT_TRUE(cluster.run(app).completed);
    for (const std::uint64_t v : *got) EXPECT_EQ(v, 0xBEEFu) << "root " << root;
  }
}

TEST_P(CollectiveSizes, ReduceOnlyRootGetsTotal) {
  const int n = GetParam();
  runtime::ClusterConfig cfg;
  cfg.nranks = n;
  auto got = std::make_shared<std::vector<std::uint64_t>>(n, 0);
  runtime::Cluster cluster(cfg);
  auto app = [got](mpi::Comm& c) -> sim::Task<void> {
    (*got)[static_cast<std::size_t>(c.rank())] =
        co_await mpi::reduce(c, 0, 8, static_cast<std::uint64_t>(c.rank() + 1));
  };
  ASSERT_TRUE(cluster.run(app).completed);
  EXPECT_EQ((*got)[0], static_cast<std::uint64_t>(n) * (n + 1) / 2);
  for (int r = 1; r < n; ++r) EXPECT_EQ((*got)[static_cast<std::size_t>(r)], 0u);
}

TEST_P(CollectiveSizes, AlltoallAndAllgatherSumAllContributions) {
  const int n = GetParam();
  runtime::ClusterConfig cfg;
  cfg.nranks = n;
  auto a2a = std::make_shared<std::vector<std::uint64_t>>(n, 0);
  auto ag = std::make_shared<std::vector<std::uint64_t>>(n, 0);
  runtime::Cluster cluster(cfg);
  auto app = [a2a, ag](mpi::Comm& c) -> sim::Task<void> {
    const std::uint64_t contrib = static_cast<std::uint64_t>(c.rank() + 1);
    (*a2a)[static_cast<std::size_t>(c.rank())] = co_await mpi::alltoall(c, 64, contrib);
    (*ag)[static_cast<std::size_t>(c.rank())] = co_await mpi::allgather(c, 64, contrib);
  };
  ASSERT_TRUE(cluster.run(app).completed);
  const std::uint64_t expect = static_cast<std::uint64_t>(n) * (n + 1) / 2;
  for (const std::uint64_t v : *a2a) EXPECT_EQ(v, expect);
  for (const std::uint64_t v : *ag) EXPECT_EQ(v, expect);
}

TEST_P(CollectiveSizes, BarrierSynchronizes) {
  const int n = GetParam();
  runtime::ClusterConfig cfg;
  cfg.nranks = n;
  auto after = std::make_shared<std::vector<sim::Time>>(n, 0);
  auto slowest = std::make_shared<sim::Time>(0);
  runtime::Cluster cluster(cfg);
  auto app = [after, slowest](mpi::Comm& c) -> sim::Task<void> {
    // Rank r computes r ms before the barrier.
    const sim::Time work = static_cast<sim::Time>(c.rank()) * sim::kMillisecond;
    co_await c.compute(work);
    if (work > *slowest) *slowest = work;
    co_await mpi::barrier(c);
    (*after)[static_cast<std::size_t>(c.rank())] = c.now();
  };
  ASSERT_TRUE(cluster.run(app).completed);
  for (const sim::Time t : *after) EXPECT_GE(t, *slowest);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16));

TEST(Collectives, BackToBackInstancesDoNotCrossMatch) {
  runtime::ClusterConfig cfg;
  cfg.nranks = 4;
  auto ok = std::make_shared<bool>(true);
  runtime::Cluster cluster(cfg);
  auto app = [ok](mpi::Comm& c) -> sim::Task<void> {
    for (int i = 0; i < 20; ++i) {
      const std::uint64_t sum =
          co_await mpi::allreduce(c, 8, static_cast<std::uint64_t>(i));
      if (sum != static_cast<std::uint64_t>(i) * 4) *ok = false;
    }
  };
  ASSERT_TRUE(cluster.run(app).completed);
  EXPECT_TRUE(*ok);
}

}  // namespace
}  // namespace mpiv
