// Unit tests for the discrete-event engine and coroutine machinery: ordering
// determinism, sleep semantics, nested task chains, wait queues, and — most
// importantly — kill/restart safety at arbitrary suspension points.
#include <gtest/gtest.h>

#include <queue>
#include <random>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mpiv::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(30, [&] { order.push_back(3); });
  eng.at(10, [&] { order.push_back(1); });
  eng.at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    eng.at(5, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine eng;
  int hits = 0;
  eng.at(10, [&] { ++hits; });
  eng.at(100, [&] { ++hits; });
  eng.run_until(50);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(eng.now(), 50);
  eng.run();
  EXPECT_EQ(hits, 2);
}

TEST(Engine, CallbacksMayScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) eng.after(10, chain);
  };
  eng.at(0, chain);
  eng.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(eng.now(), 40);
}

TEST(Process, SleepAdvancesSimTime) {
  Engine eng;
  Process& p = eng.create_process("sleeper");
  Time woke_at = -1;
  p.start([](Engine& e, Time* out) -> Task<void> {
    co_await e.sleep(100 * kMicrosecond);
    *out = e.now();
  }(eng, &woke_at));
  eng.run();
  EXPECT_EQ(woke_at, 100 * kMicrosecond);
  EXPECT_TRUE(p.finished());
}

TEST(Process, NestedTaskChainCompletes) {
  Engine eng;
  Process& p = eng.create_process("nested");
  std::vector<int> trace;

  struct Fns {
    static Task<int> leaf(Engine& e, std::vector<int>& tr) {
      tr.push_back(1);
      co_await e.sleep(10);
      tr.push_back(2);
      co_return 42;
    }
    static Task<int> mid(Engine& e, std::vector<int>& tr) {
      const int v = co_await leaf(e, tr);
      tr.push_back(3);
      co_await e.sleep(5);
      co_return v + 1;
    }
    static Task<void> top(Engine& e, std::vector<int>& tr) {
      const int v = co_await mid(e, tr);
      tr.push_back(v);
    }
  };
  p.start(Fns::top(eng, trace));
  eng.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 43}));
  EXPECT_EQ(eng.now(), 15);
}

TEST(WaitQueue, WakeOneResumesFifo) {
  Engine eng;
  WaitQueue q(eng);
  std::vector<int> order;

  auto waiter = [](WaitQueue& wq, std::vector<int>& ord, int id) -> Task<void> {
    co_await wq.wait();
    ord.push_back(id);
  };
  for (int i = 0; i < 3; ++i) {
    eng.create_process("w").start(waiter(q, order, i));
  }
  eng.run();  // all parked
  EXPECT_EQ(q.size(), 3u);
  q.wake_one();
  q.wake_one();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  q.wake_all();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, WakeAtFutureTime) {
  Engine eng;
  WaitQueue q(eng);
  Time woke = -1;
  eng.create_process("w").start([](Engine& e, WaitQueue& wq, Time* out) -> Task<void> {
    co_await wq.wait();
    *out = e.now();
  }(eng, q, &woke));
  eng.run();
  q.wake_one(500);
  eng.run();
  EXPECT_EQ(woke, 500);
}

TEST(Kill, KilledWhileSleepingNeverResumes) {
  Engine eng;
  Process& p = eng.create_process("victim");
  bool after_sleep = false;
  p.start([](Engine& e, bool* flag) -> Task<void> {
    co_await e.sleep(1000);
    *flag = true;
  }(eng, &after_sleep));
  eng.at(500, [&] { p.kill(); });
  eng.run();
  EXPECT_FALSE(after_sleep);
  EXPECT_FALSE(p.running());
  EXPECT_FALSE(p.finished());
}

TEST(Kill, KilledWhileWaitingUnlinksFromQueue) {
  Engine eng;
  WaitQueue q(eng);
  Process& p = eng.create_process("victim");
  bool resumed = false;
  p.start([](WaitQueue& wq, bool* flag) -> Task<void> {
    co_await wq.wait();
    *flag = true;
  }(q, &resumed));
  eng.run();
  EXPECT_EQ(q.size(), 1u);
  p.kill();
  EXPECT_TRUE(q.empty());  // waiter destructor unlinked itself
  q.wake_all();
  eng.run();
  EXPECT_FALSE(resumed);
}

TEST(Kill, WokenThenKilledBeforeResumeFires) {
  Engine eng;
  WaitQueue q(eng);
  Process& p = eng.create_process("victim");
  bool resumed = false;
  p.start([](WaitQueue& wq, bool* flag) -> Task<void> {
    co_await wq.wait();
    *flag = true;
  }(q, &resumed));
  eng.run();
  q.wake_one(100);   // resume scheduled for t=100...
  eng.at(50, [&] { p.kill(); });  // ...but the process dies at t=50
  eng.run();
  EXPECT_FALSE(resumed);
}

TEST(Kill, KillDestroysNestedFrames) {
  // A three-deep coroutine chain parked in a wait queue; killing the process
  // must unwind all frames (observable via RAII sentinels).
  Engine eng;
  WaitQueue q(eng);
  struct Sentinel {
    int* counter;
    explicit Sentinel(int* c) : counter(c) { ++*counter; }
    ~Sentinel() { --*counter; }
  };
  int live = 0;

  struct Fns {
    static Task<void> leaf(WaitQueue& wq, int* live) {
      Sentinel s(live);
      co_await wq.wait();
    }
    static Task<void> mid(WaitQueue& wq, int* live) {
      Sentinel s(live);
      co_await leaf(wq, live);
    }
    static Task<void> top(WaitQueue& wq, int* live) {
      Sentinel s(live);
      co_await mid(wq, live);
    }
  };
  Process& p = eng.create_process("victim");
  p.start(Fns::top(q, &live));
  eng.run();
  EXPECT_EQ(live, 3);
  p.kill();
  EXPECT_EQ(live, 0);
  EXPECT_TRUE(q.empty());
}

TEST(Kill, RestartRunsFreshIncarnation) {
  Engine eng;
  Process& p = eng.create_process("phoenix");
  int runs = 0;
  auto body = [](Engine& e, int* r) -> Task<void> {
    co_await e.sleep(100);
    ++*r;
  };
  p.start(body(eng, &runs));
  eng.at(50, [&] {
    p.kill();
    p.start(body(eng, &runs));  // restart from scratch
  });
  eng.run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(p.incarnation(), 1u);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(eng.now(), 150);
}

TEST(Determinism, TwoIdenticalRunsProduceIdenticalTraces) {
  auto run_once = [] {
    Engine eng;
    WaitQueue q(eng);
    std::vector<std::pair<Time, int>> trace;
    for (int i = 0; i < 4; ++i) {
      eng.create_process("p").start(
          [](Engine& e, WaitQueue& wq, std::vector<std::pair<Time, int>>& tr,
             int id) -> Task<void> {
            co_await e.sleep(10 * (id + 1));
            tr.emplace_back(e.now(), id);
            co_await wq.wait();
            tr.emplace_back(e.now(), id + 100);
          }(eng, q, trace, i));
    }
    eng.at(100, [&] { q.wake_all(); });
    eng.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// CalendarQueue: differential tests against a reference binary heap. The
// engine swapped its std::priority_queue for the calendar queue; these pin
// that the pop order — including the same-timestamp FIFO tie-break the
// determinism goldens rely on — is bit-for-bit unchanged.
// ---------------------------------------------------------------------------

namespace {

struct QItem {
  Time t = 0;
  std::uint64_t seq = 0;
};
struct QItemLater {
  bool operator()(const QItem& a, const QItem& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};
using RefHeap = std::priority_queue<QItem, std::vector<QItem>, QItemLater>;

}  // namespace

TEST(CalendarQueue, FifoTieBreakIsPinned) {
  CalendarQueue<QItem> q;
  for (std::uint64_t s = 0; s < 200; ++s) q.push(QItem{42, s});
  for (std::uint64_t s = 0; s < 200; ++s) {
    ASSERT_EQ(q.top().t, 42);
    ASSERT_EQ(q.top().seq, s);  // insertion order, exactly
    q.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, MatchesReferenceHeapOnRandomizedStreams) {
  // Engine-shaped streams: time only moves forward (every push lands at or
  // after the last popped timestamp), with same-timestamp bursts and
  // occasional far-future outliers that force bucket-geometry rebuilds.
  for (const std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
    std::mt19937_64 rng(seed);
    CalendarQueue<QItem> q;
    RefHeap ref;
    Time now = 0;
    std::uint64_t seq = 0;
    const auto push_one = [&] {
      Time gap;
      switch (rng() % 8) {
        case 0: gap = 0; break;                                // tie burst
        case 1: gap = static_cast<Time>(rng() % 4); break;     // dense
        case 6: gap = static_cast<Time>(rng() % 50'000'000); break;  // sparse
        case 7:  // far-future outlier: way past the current calendar year
          gap = static_cast<Time>(1'000'000'000'000ULL + rng() % 16);
          break;
        default: gap = static_cast<Time>(rng() % 20'000); break;
      }
      const QItem it{now + gap, seq++};
      q.push(it);
      ref.push(it);
    };
    for (int i = 0; i < 40'000; ++i) {
      if (ref.empty() || rng() % 3 != 0) {
        push_one();
        if (rng() % 16 == 0) {  // burst: stress one bucket's sorted insert
          for (int b = 0; b < 32; ++b) push_one();
        }
      } else {
        ASSERT_EQ(q.size(), ref.size());
        ASSERT_EQ(q.top().t, ref.top().t) << "i=" << i << " seed=" << seed;
        ASSERT_EQ(q.top().seq, ref.top().seq) << "i=" << i << " seed=" << seed;
        now = ref.top().t;  // pops advance the clock, like run_until
        q.pop();
        ref.pop();
      }
    }
    while (!ref.empty()) {
      ASSERT_EQ(q.top().t, ref.top().t);
      ASSERT_EQ(q.top().seq, ref.top().seq);
      q.pop();
      ref.pop();
    }
    EXPECT_TRUE(q.empty());
  }
}

TEST(CalendarQueue, NearPushAfterShrinkRebuildWithFarFutureSurvivors) {
  // Regression: the shrink rebuild used to jump the day cursor to the day
  // of the surviving minimum. With only far-future events left, a later
  // push just above the last popped timestamp (perfectly legal under the
  // engine contract) landed below the cursor, locate()'s year scan skipped
  // it, and the far-future event popped first — out of (t, seq) order.
  CalendarQueue<QItem> q;
  RefHeap ref;
  std::uint64_t seq = 0;
  const auto push_both = [&](Time t) {
    const QItem it{t, seq++};
    q.push(it);
    ref.push(it);
  };
  // Grow past the first geometry rebuild: a dense near block plus a
  // far-future block that will be the only survivors of the drain.
  for (Time t = 100; t < 237; ++t) push_both(t);
  for (int i = 0; i < 63; ++i) push_both(1'000'000'000);
  // Drain the near block; the shrink rebuild fires mid-drain (population
  // falls 4x below the grown bucket count) with only t=1e9 remaining.
  Time now = 0;
  for (int i = 0; i < 137; ++i) {
    ASSERT_EQ(q.top().t, ref.top().t) << "i=" << i;
    ASSERT_EQ(q.top().seq, ref.top().seq) << "i=" << i;
    now = ref.top().t;
    q.pop();
    ref.pop();
  }
  // Schedule just above the last pop: it must become the new top.
  push_both(now + 64);
  ASSERT_EQ(q.top().t, now + 64);
  while (!ref.empty()) {
    ASSERT_EQ(q.top().t, ref.top().t);
    ASSERT_EQ(q.top().seq, ref.top().seq);
    q.pop();
    ref.pop();
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, NearPushAfterEmptyYearFallbackPeek) {
  // Regression, same invariant via the other path: a top() peek whose year
  // scan comes up empty falls back to a direct min and jumps the cursor to
  // that minimum's day. run_until() peeks without popping, so the caller
  // may still schedule below that minimum (but at/above the last pop) —
  // the push must pull the cursor back down or it gets skipped.
  CalendarQueue<QItem> q;
  q.push(QItem{100, 0});
  q.push(QItem{1'000'000'000'000, 1});  // more than a calendar year out
  ASSERT_EQ(q.top().t, 100);
  q.pop();
  ASSERT_EQ(q.top().t, 1'000'000'000'000);  // fallback peek jumps the cursor
  q.push(QItem{150, 2});
  ASSERT_EQ(q.top().t, 150);
  q.pop();
  EXPECT_EQ(q.top().t, 1'000'000'000'000);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, ShrinksBackAfterADrain) {
  // Grow past several rebuilds, drain to a trickle, then verify ordering
  // still holds through the shrink rebuilds on the way down.
  CalendarQueue<QItem> q;
  RefHeap ref;
  std::mt19937_64 rng(99);
  std::uint64_t seq = 0;
  for (int i = 0; i < 5000; ++i) {
    const QItem it{static_cast<Time>(rng() % 1'000'000), seq++};
    q.push(it);
    ref.push(it);
  }
  Time now = 0;
  int sprinkles = 48;  // bounded, or the drain would never finish
  while (!ref.empty()) {
    ASSERT_EQ(q.top().t, ref.top().t);
    ASSERT_EQ(q.top().seq, ref.top().seq);
    now = ref.top().t;
    q.pop();
    ref.pop();
    if (sprinkles > 0 && ref.size() % 100 == 17) {  // pushes mid-drain
      --sprinkles;
      const QItem it{now + static_cast<Time>(rng() % 100), seq++};
      q.push(it);
      ref.push(it);
    }
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace mpiv::sim
