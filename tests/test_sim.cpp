// Unit tests for the discrete-event engine and coroutine machinery: ordering
// determinism, sleep semantics, nested task chains, wait queues, and — most
// importantly — kill/restart safety at arbitrary suspension points.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace mpiv::sim {
namespace {

TEST(Engine, EventsRunInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(30, [&] { order.push_back(3); });
  eng.at(10, [&] { order.push_back(1); });
  eng.at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, TiesBreakByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    eng.at(5, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine eng;
  int hits = 0;
  eng.at(10, [&] { ++hits; });
  eng.at(100, [&] { ++hits; });
  eng.run_until(50);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(eng.now(), 50);
  eng.run();
  EXPECT_EQ(hits, 2);
}

TEST(Engine, CallbacksMayScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) eng.after(10, chain);
  };
  eng.at(0, chain);
  eng.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(eng.now(), 40);
}

TEST(Process, SleepAdvancesSimTime) {
  Engine eng;
  Process& p = eng.create_process("sleeper");
  Time woke_at = -1;
  p.start([](Engine& e, Time* out) -> Task<void> {
    co_await e.sleep(100 * kMicrosecond);
    *out = e.now();
  }(eng, &woke_at));
  eng.run();
  EXPECT_EQ(woke_at, 100 * kMicrosecond);
  EXPECT_TRUE(p.finished());
}

TEST(Process, NestedTaskChainCompletes) {
  Engine eng;
  Process& p = eng.create_process("nested");
  std::vector<int> trace;

  struct Fns {
    static Task<int> leaf(Engine& e, std::vector<int>& tr) {
      tr.push_back(1);
      co_await e.sleep(10);
      tr.push_back(2);
      co_return 42;
    }
    static Task<int> mid(Engine& e, std::vector<int>& tr) {
      const int v = co_await leaf(e, tr);
      tr.push_back(3);
      co_await e.sleep(5);
      co_return v + 1;
    }
    static Task<void> top(Engine& e, std::vector<int>& tr) {
      const int v = co_await mid(e, tr);
      tr.push_back(v);
    }
  };
  p.start(Fns::top(eng, trace));
  eng.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 43}));
  EXPECT_EQ(eng.now(), 15);
}

TEST(WaitQueue, WakeOneResumesFifo) {
  Engine eng;
  WaitQueue q(eng);
  std::vector<int> order;

  auto waiter = [](WaitQueue& wq, std::vector<int>& ord, int id) -> Task<void> {
    co_await wq.wait();
    ord.push_back(id);
  };
  for (int i = 0; i < 3; ++i) {
    eng.create_process("w").start(waiter(q, order, i));
  }
  eng.run();  // all parked
  EXPECT_EQ(q.size(), 3u);
  q.wake_one();
  q.wake_one();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  q.wake_all();
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(WaitQueue, WakeAtFutureTime) {
  Engine eng;
  WaitQueue q(eng);
  Time woke = -1;
  eng.create_process("w").start([](Engine& e, WaitQueue& wq, Time* out) -> Task<void> {
    co_await wq.wait();
    *out = e.now();
  }(eng, q, &woke));
  eng.run();
  q.wake_one(500);
  eng.run();
  EXPECT_EQ(woke, 500);
}

TEST(Kill, KilledWhileSleepingNeverResumes) {
  Engine eng;
  Process& p = eng.create_process("victim");
  bool after_sleep = false;
  p.start([](Engine& e, bool* flag) -> Task<void> {
    co_await e.sleep(1000);
    *flag = true;
  }(eng, &after_sleep));
  eng.at(500, [&] { p.kill(); });
  eng.run();
  EXPECT_FALSE(after_sleep);
  EXPECT_FALSE(p.running());
  EXPECT_FALSE(p.finished());
}

TEST(Kill, KilledWhileWaitingUnlinksFromQueue) {
  Engine eng;
  WaitQueue q(eng);
  Process& p = eng.create_process("victim");
  bool resumed = false;
  p.start([](WaitQueue& wq, bool* flag) -> Task<void> {
    co_await wq.wait();
    *flag = true;
  }(q, &resumed));
  eng.run();
  EXPECT_EQ(q.size(), 1u);
  p.kill();
  EXPECT_TRUE(q.empty());  // waiter destructor unlinked itself
  q.wake_all();
  eng.run();
  EXPECT_FALSE(resumed);
}

TEST(Kill, WokenThenKilledBeforeResumeFires) {
  Engine eng;
  WaitQueue q(eng);
  Process& p = eng.create_process("victim");
  bool resumed = false;
  p.start([](WaitQueue& wq, bool* flag) -> Task<void> {
    co_await wq.wait();
    *flag = true;
  }(q, &resumed));
  eng.run();
  q.wake_one(100);   // resume scheduled for t=100...
  eng.at(50, [&] { p.kill(); });  // ...but the process dies at t=50
  eng.run();
  EXPECT_FALSE(resumed);
}

TEST(Kill, KillDestroysNestedFrames) {
  // A three-deep coroutine chain parked in a wait queue; killing the process
  // must unwind all frames (observable via RAII sentinels).
  Engine eng;
  WaitQueue q(eng);
  struct Sentinel {
    int* counter;
    explicit Sentinel(int* c) : counter(c) { ++*counter; }
    ~Sentinel() { --*counter; }
  };
  int live = 0;

  struct Fns {
    static Task<void> leaf(WaitQueue& wq, int* live) {
      Sentinel s(live);
      co_await wq.wait();
    }
    static Task<void> mid(WaitQueue& wq, int* live) {
      Sentinel s(live);
      co_await leaf(wq, live);
    }
    static Task<void> top(WaitQueue& wq, int* live) {
      Sentinel s(live);
      co_await mid(wq, live);
    }
  };
  Process& p = eng.create_process("victim");
  p.start(Fns::top(q, &live));
  eng.run();
  EXPECT_EQ(live, 3);
  p.kill();
  EXPECT_EQ(live, 0);
  EXPECT_TRUE(q.empty());
}

TEST(Kill, RestartRunsFreshIncarnation) {
  Engine eng;
  Process& p = eng.create_process("phoenix");
  int runs = 0;
  auto body = [](Engine& e, int* r) -> Task<void> {
    co_await e.sleep(100);
    ++*r;
  };
  p.start(body(eng, &runs));
  eng.at(50, [&] {
    p.kill();
    p.start(body(eng, &runs));  // restart from scratch
  });
  eng.run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(p.incarnation(), 1u);
  EXPECT_TRUE(p.finished());
  EXPECT_EQ(eng.now(), 150);
}

TEST(Determinism, TwoIdenticalRunsProduceIdenticalTraces) {
  auto run_once = [] {
    Engine eng;
    WaitQueue q(eng);
    std::vector<std::pair<Time, int>> trace;
    for (int i = 0; i < 4; ++i) {
      eng.create_process("p").start(
          [](Engine& e, WaitQueue& wq, std::vector<std::pair<Time, int>>& tr,
             int id) -> Task<void> {
            co_await e.sleep(10 * (id + 1));
            tr.emplace_back(e.now(), id);
            co_await wq.wait();
            tr.emplace_back(e.now(), id + 100);
          }(eng, q, trace, i));
    }
    eng.at(100, [&] { q.wake_all(); });
    eng.run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace mpiv::sim
