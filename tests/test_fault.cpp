// Fault-injection engine tests: campaign parsing and round-trips, trigger
// semantics (timed / event-triggered / stochastic), recovery-timeline phase
// accounting, link perturbations, service outages with client retransmits,
// and the validation satellites (duplicate faults, t <= 0, midrun_frac).
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "scenario/runner.hpp"
#include "workloads/apps.hpp"

namespace mpiv {
namespace {

using fault::Action;
using fault::Injection;
using fault::Target;
using fault::Trigger;
using scenario::ScenarioBuilder;
using scenario::ScenarioSpec;
using scenario::SpecError;

/// Baseline spec every engine test perturbs: causal logging with an EL,
/// wildcard traffic (so replay correctness is order-sensitive), periodic
/// checkpoints feeding the GC paths.
ScenarioBuilder base(const char* name, int nranks = 6, int shards = 1) {
  ScenarioBuilder b(name);
  b.variant("vcausal:el")
      .nranks(nranks)
      .seed(9)
      .checkpoint(ckpt::Policy::kRoundRobin, 25 * sim::kMillisecond)
      .random_then_ring(/*rand_iters=*/10, /*ring_laps=*/10, /*wseed=*/5,
                        /*bytes=*/2048);
  if (shards > 1) b.el_shards(shards);
  return b;
}

/// Ring-only twin: the ring's matching is source-pinned, so its checksums
/// are invariant under ANY timing perturbation — the right baseline for
/// link faults and service outages, whose different-but-valid wildcard
/// interleavings would legitimately change random_then_ring results.
ScenarioBuilder ring_base(const char* name, int nranks = 6, int shards = 1,
                          int laps = 50) {
  ScenarioBuilder b(name);
  b.variant("vcausal:el")
      .nranks(nranks)
      .seed(9)
      .checkpoint(ckpt::Policy::kRoundRobin, 25 * sim::kMillisecond)
      .ring(laps, 2048);
  if (shards > 1) b.el_shards(shards);
  return b;
}

// ---------------------------------------------------------------------------
// Campaign model: scenario-file syntax, round-trip, builder conveniences.
// ---------------------------------------------------------------------------

TEST(FaultCampaign, FaultsSectionParses) {
  const char* text =
      "[scenario]\n"
      "variant = vcausal:el\n"
      "nranks = 8\n"
      "el_shards = 2\n"
      "el_standby = 1\n"
      "[faults]\n"
      "crash_rank = 120ms:3\n"
      "crash_rank = ckpt@5:1\n"
      "crash_el = 60ms:0\n"
      "crash_el = stored@2000:1\n"
      "el_outage = 10ms:1:25ms\n"
      "ckpt_outage = 40ms:30ms\n"
      "link_latency = 5ms:2:1ms:20ms\n"
      "link_drop = 7ms:4:8ms:2ms\n"
      "rank_rate = 0.5\n"
      "el_failover = standby\n"
      "el_failover_delay = 12ms\n"
      "service_retry = 300ms\n"
      "seed_salt = 77\n";
  const ScenarioSpec spec = scenario::parse_scenario_text(text);
  const fault::Campaign& c = spec.faults.campaign;
  ASSERT_EQ(c.injections.size(), 9u);

  EXPECT_EQ(c.injections[0].target, Target::kRank);
  EXPECT_EQ(c.injections[0].trigger, Trigger::kAt);
  EXPECT_EQ(c.injections[0].at, 120 * sim::kMillisecond);
  EXPECT_EQ(c.injections[0].index, 3);

  EXPECT_EQ(c.injections[1].trigger, Trigger::kOnCheckpoint);
  EXPECT_EQ(c.injections[1].nth, 5u);
  EXPECT_EQ(c.injections[1].index, 1);

  EXPECT_EQ(c.injections[2].target, Target::kElShard);
  EXPECT_EQ(c.injections[2].action, Action::kCrash);

  EXPECT_EQ(c.injections[3].trigger, Trigger::kOnElStored);
  EXPECT_EQ(c.injections[3].nth, 2000u);

  EXPECT_EQ(c.injections[4].action, Action::kOutage);
  EXPECT_EQ(c.injections[4].duration, 25 * sim::kMillisecond);

  EXPECT_EQ(c.injections[5].target, Target::kCkptServer);
  EXPECT_EQ(c.injections[6].action, Action::kLatencySpike);
  EXPECT_EQ(c.injections[6].magnitude, sim::kMillisecond);
  EXPECT_EQ(c.injections[7].action, Action::kDropWindow);
  EXPECT_EQ(c.injections[7].magnitude, 2 * sim::kMillisecond);
  EXPECT_EQ(c.injections[8].trigger, Trigger::kRate);
  EXPECT_DOUBLE_EQ(c.injections[8].rate_per_minute, 0.5);

  EXPECT_EQ(c.el_failover, fault::ElFailover::kStandby);
  EXPECT_EQ(c.el_failover_delay, 12 * sim::kMillisecond);
  EXPECT_EQ(c.service_retry, 300 * sim::kMillisecond);
  EXPECT_EQ(c.seed_salt, 77u);
  EXPECT_EQ(spec.el_standby, 1);
}

TEST(FaultCampaign, DaemonAndPartitionKeysParse) {
  const char* text =
      "[scenario]\n"
      "variant = vcausal:el\n"
      "nranks = 8\n"
      "[faults]\n"
      "crash_daemon = 50ms:2\n"
      "crash_daemon = 80ms:5:15ms\n"
      "daemon_rate = 1.5\n"
      "daemon_restart_delay = 35ms\n"
      "partition = 10ms:0-2+6|3-5:25ms:3ms\n"
      "partition = 40ms:0|1:5ms\n";
  const ScenarioSpec spec = scenario::parse_scenario_text(text);
  const fault::Campaign& c = spec.faults.campaign;
  ASSERT_EQ(c.injections.size(), 5u);

  EXPECT_EQ(c.injections[0].target, Target::kDaemon);
  EXPECT_EQ(c.injections[0].at, 50 * sim::kMillisecond);
  EXPECT_EQ(c.injections[0].index, 2);
  EXPECT_EQ(c.injections[0].duration, 0);  // campaign default downtime

  EXPECT_EQ(c.injections[1].index, 5);
  EXPECT_EQ(c.injections[1].duration, 15 * sim::kMillisecond);

  EXPECT_EQ(c.injections[2].target, Target::kDaemon);
  EXPECT_EQ(c.injections[2].trigger, Trigger::kRate);
  EXPECT_DOUBLE_EQ(c.injections[2].rate_per_minute, 1.5);
  EXPECT_EQ(c.injections[2].index, -1);

  EXPECT_EQ(c.injections[3].target, Target::kFabric);
  EXPECT_EQ(c.injections[3].action, Action::kPartition);
  EXPECT_EQ(c.injections[3].group_a, (std::vector<int>{0, 1, 2, 6}));
  EXPECT_EQ(c.injections[3].group_b, (std::vector<int>{3, 4, 5}));
  EXPECT_EQ(c.injections[3].duration, 25 * sim::kMillisecond);
  EXPECT_EQ(c.injections[3].magnitude, 3 * sim::kMillisecond);

  EXPECT_EQ(c.injections[4].magnitude, 2 * sim::kMillisecond);  // default

  EXPECT_EQ(c.daemon_restart_delay, 35 * sim::kMillisecond);
}

TEST(FaultCampaign, ServicePartitionKeysParse) {
  const char* text =
      "[scenario]\n"
      "variant = vcausal:el\n"
      "nranks = 6\n"
      "el_shards = 2\n"
      "[faults]\n"
      "partition_services = 30ms:el0|2+4:80ms:3ms\n"
      "partition_services = 50ms:ckpt+el1|0-2:10ms\n"
      "detection_delay = 5ms\n";
  const ScenarioSpec spec = scenario::parse_scenario_text(text);
  const fault::Campaign& c = spec.faults.campaign;
  ASSERT_EQ(c.injections.size(), 2u);

  EXPECT_EQ(c.injections[0].target, Target::kFabric);
  EXPECT_EQ(c.injections[0].action, Action::kPartition);
  EXPECT_EQ(c.injections[0].at, 30 * sim::kMillisecond);
  EXPECT_TRUE(c.injections[0].group_a.empty());
  EXPECT_EQ(c.injections[0].services_a, (std::vector<int>{0}));
  EXPECT_EQ(c.injections[0].group_b, (std::vector<int>{2, 4}));
  EXPECT_TRUE(c.injections[0].services_b.empty());
  EXPECT_EQ(c.injections[0].duration, 80 * sim::kMillisecond);
  EXPECT_EQ(c.injections[0].magnitude, 3 * sim::kMillisecond);
  EXPECT_TRUE(c.injections[0].cuts_services());

  EXPECT_EQ(c.injections[1].services_a,
            (std::vector<int>{fault::kCkptService, 1}));
  EXPECT_EQ(c.injections[1].group_b, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(c.injections[1].magnitude, 2 * sim::kMillisecond);  // default

  EXPECT_EQ(c.detection_delay, 5 * sim::kMillisecond);

  // A service partition without a service token belongs to faults.partition.
  ScenarioSpec s2;
  EXPECT_THROW(
      scenario::apply_key(s2, "faults.partition_services", "1ms:0|1:5ms"),
      SpecError);
  // The suspicion window must be positive (-1 = inherit is the default, not
  // a scenario-file value).
  EXPECT_THROW(scenario::apply_key(s2, "faults.detection_delay", "0ms"),
               SpecError);
}

TEST(FaultCampaign, KeyTableExamplesAllParse) {
  // The table is the contract between the parser, `mpiv_run --list` and
  // docs/SCENARIOS.md: every listed example must go through apply_key, and
  // any key the parser would accept must be listed (unlisted keys are
  // rejected before the dispatch chain).
  for (const scenario::FaultKeyInfo& e : scenario::fault_key_table()) {
    ScenarioSpec spec;
    spec.nranks = 8;
    EXPECT_NO_THROW(scenario::apply_key(spec, e.key, e.example)) << e.key;
  }
  ScenarioSpec spec;
  EXPECT_THROW(scenario::apply_key(spec, "faults.no_such_key", "1"), SpecError);
}

TEST(FaultCampaign, BuilderRoundTripsThroughScenarioText) {
  const ScenarioSpec spec =
      base("roundtrip", 8, 2)
          .el_standby(1)
          .crash_el_at(60 * sim::kMillisecond, 0)
          .crash_el_on_stored(1, 500)
          .crash_rank_on_ckpt(3, 2)
          .el_outage(5 * sim::kMillisecond, 1, 9 * sim::kMillisecond)
          .ckpt_outage(11 * sim::kMillisecond, 13 * sim::kMillisecond)
          .link_latency(2 * sim::kMillisecond, 4, 500 * sim::kMicrosecond,
                        6 * sim::kMillisecond)
          .link_drop(3 * sim::kMillisecond, 5, 4 * sim::kMillisecond)
          .crash_daemon_at(8 * sim::kMillisecond, 6)
          .crash_daemon_at(9 * sim::kMillisecond, 7, 3 * sim::kMillisecond)
          .daemon_rate(0.25)
          .daemon_restart_delay(21 * sim::kMillisecond)
          .partition(4 * sim::kMillisecond, {0, 1, 2}, {5, 6},
                     7 * sim::kMillisecond)
          .partition_services(6 * sim::kMillisecond, {}, {2, 4}, {0},
                              {fault::kCkptService}, 9 * sim::kMillisecond)
          .fault_detection_delay(11 * sim::kMillisecond)
          .el_failover(fault::ElFailover::kStandby, 17 * sim::kMillisecond)
          .build();
  const ScenarioSpec back =
      scenario::parse_scenario_text(scenario::to_scenario_text(spec));
  const fault::Campaign& a = spec.faults.campaign;
  const fault::Campaign& b = back.faults.campaign;
  ASSERT_EQ(a.injections.size(), b.injections.size());
  for (std::size_t i = 0; i < a.injections.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(a.injections[i].target, b.injections[i].target);
    EXPECT_EQ(a.injections[i].index, b.injections[i].index);
    EXPECT_EQ(a.injections[i].trigger, b.injections[i].trigger);
    EXPECT_EQ(a.injections[i].at, b.injections[i].at);
    EXPECT_EQ(a.injections[i].nth, b.injections[i].nth);
    EXPECT_EQ(a.injections[i].action, b.injections[i].action);
    EXPECT_EQ(a.injections[i].duration, b.injections[i].duration);
    EXPECT_EQ(a.injections[i].magnitude, b.injections[i].magnitude);
    EXPECT_EQ(a.injections[i].group_a, b.injections[i].group_a);
    EXPECT_EQ(a.injections[i].group_b, b.injections[i].group_b);
    EXPECT_EQ(a.injections[i].services_a, b.injections[i].services_a);
    EXPECT_EQ(a.injections[i].services_b, b.injections[i].services_b);
  }
  EXPECT_EQ(a.el_failover, b.el_failover);
  EXPECT_EQ(a.el_failover_delay, b.el_failover_delay);
  EXPECT_EQ(a.detection_delay, b.detection_delay);
  EXPECT_EQ(a.daemon_restart_delay, b.daemon_restart_delay);
  EXPECT_EQ(spec.el_standby, back.el_standby);
}

// ---------------------------------------------------------------------------
// Validation satellites.
// ---------------------------------------------------------------------------

TEST(FaultValidation, RejectsDuplicateFaults) {
  ScenarioBuilder b = base("dup");
  b.fault_at(100 * sim::kMillisecond, 2).fault_at(100 * sim::kMillisecond, 2);
  EXPECT_THROW(b.build(), SpecError);
  // Same rank at a different time stays legal (repeated-crash tests rely
  // on it).
  ScenarioBuilder ok = base("dup_ok");
  ok.fault_at(100 * sim::kMillisecond, 2).fault_at(200 * sim::kMillisecond, 2);
  EXPECT_NO_THROW(ok.build());
}

TEST(FaultValidation, RejectsNonPositiveFaultTime) {
  ScenarioBuilder b = base("t0");
  b.fault_at(0, 1);
  EXPECT_THROW(b.build(), SpecError);
}

TEST(FaultValidation, RejectsMidrunFracOutsideUnitInterval) {
  EXPECT_THROW(base("frac_hi").midrun_fault(1, 1.5).build(), SpecError);
  EXPECT_THROW(base("frac_lo").midrun_fault(1, 0.0).build(), SpecError);
  // A bad frac is rejected even without a midrun rank: it is a config typo
  // either way.
  EXPECT_THROW(base("frac_set").set("midrun_fault_frac", "2.0").build(),
               SpecError);
}

TEST(FaultValidation, RejectsCampaignAgainstMissingTargets) {
  // EL crash without an event logger.
  EXPECT_THROW(ScenarioBuilder("noel")
                   .variant("vcausal:noel")
                   .nranks(4)
                   .ring(10, 1024)
                   .crash_el_at(sim::kMillisecond, 0)
                   .build(),
               SpecError);
  // Shard index out of range.
  EXPECT_THROW(base("shard_oob", 6, 2).crash_el_at(sim::kMillisecond, 2).build(),
               SpecError);
  // Permanent crash of the only shard: no failover target.
  EXPECT_THROW(base("no_target").crash_el_at(sim::kMillisecond, 0).build(),
               SpecError);
  // ...but a transient outage of the only shard is fine.
  EXPECT_NO_THROW(
      base("outage_ok").el_outage(sim::kMillisecond, 0, sim::kMillisecond).build());
  // Link fault naming a non-rank.
  EXPECT_THROW(base("link_oob")
                   .link_latency(sim::kMillisecond, 6, sim::kMicrosecond,
                                 sim::kMillisecond)
                   .build(),
               SpecError);
  // Daemon fault naming a non-rank.
  EXPECT_THROW(base("daemon_oob").crash_daemon_at(sim::kMillisecond, 6).build(),
               SpecError);
  // Partition with a rank on both sides / out of range / an empty group.
  EXPECT_THROW(
      base("part_overlap")
          .partition(sim::kMillisecond, {0, 1}, {1, 2}, sim::kMillisecond)
          .build(),
      SpecError);
  EXPECT_THROW(
      base("part_oob")
          .partition(sim::kMillisecond, {0}, {9}, sim::kMillisecond)
          .build(),
      SpecError);
  EXPECT_THROW(base("part_empty")
                   .partition(sim::kMillisecond, {}, {1}, sim::kMillisecond)
                   .build(),
               SpecError);
}

TEST(FaultValidation, ServicePartitionTargetsAreValidated) {
  // Shard id out of range.
  EXPECT_THROW(base("svc_oob", 6, 2)
                   .partition_services(sim::kMillisecond, {}, {2, 4}, {2}, {},
                                       5 * sim::kMillisecond)
                   .build(),
               SpecError);
  // The same shard on both sides of the cut.
  EXPECT_THROW(base("svc_overlap", 6, 2)
                   .partition_services(sim::kMillisecond, {1}, {2}, {0}, {0},
                                       5 * sim::kMillisecond)
                   .build(),
               SpecError);
  // A shard reference without an event logger.
  EXPECT_THROW(ScenarioBuilder("svc_noel")
                   .variant("vcausal:noel")
                   .nranks(4)
                   .ring(10, 1024)
                   .partition_services(sim::kMillisecond, {}, {1, 2}, {0}, {},
                                       5 * sim::kMillisecond)
                   .build(),
               SpecError);
  // A services-only side is legal (the checkpoint server cut away from two
  // ranks), including standby shard ids above el_shards.
  EXPECT_NO_THROW(base("svc_ckpt")
                      .partition_services(sim::kMillisecond, {}, {1, 2},
                                          {fault::kCkptService}, {},
                                          5 * sim::kMillisecond)
                      .build());
  EXPECT_NO_THROW(base("svc_standby", 6, 2)
                      .el_standby(1)
                      .partition_services(sim::kMillisecond, {}, {2, 4}, {2},
                                          {}, 5 * sim::kMillisecond)
                      .build());
}

TEST(FaultValidation, SweptServicePartitionStripsOnlyItsOwnKind) {
  // faults.partition and faults.partition_services are both kFabric, but a
  // sweep axis on one must not strip the other: the rank-only cut survives
  // a swept service cut, and vice versa.
  ScenarioBuilder b = base("svc_sweep", 6, 2);
  b.partition(4 * sim::kMillisecond, {0, 1}, {3, 5}, 7 * sim::kMillisecond)
      .partition_services(6 * sim::kMillisecond, {}, {2, 4}, {0}, {},
                          9 * sim::kMillisecond)
      .sweep("faults.partition_services",
             {"10ms:el0|2+4:20ms", "30ms:el1|1+3:40ms"});
  const std::vector<scenario::RunPoint> points = scenario::expand(b.build());
  ASSERT_EQ(points.size(), 2u);
  for (const scenario::RunPoint& p : points) {
    int plain = 0, service = 0;
    for (const Injection& i : p.spec.faults.campaign.injections) {
      if (i.target != Target::kFabric) continue;
      i.cuts_services() ? ++service : ++plain;
    }
    EXPECT_EQ(plain, 1) << p.label;
    EXPECT_EQ(service, 1) << p.label;
  }
  EXPECT_EQ(points[0].spec.faults.campaign.injections.back().services_a,
            (std::vector<int>{0}));
  EXPECT_EQ(points[1].spec.faults.campaign.injections.back().services_a,
            (std::vector<int>{1}));
}

TEST(FaultValidation, LegacyClusterRejectsBadPlansToo) {
  runtime::ClusterConfig dup;
  dup.protocol = runtime::ProtocolKind::kCausal;
  dup.faults.push_back(runtime::FaultSpec{1000, 1});
  dup.faults.push_back(runtime::FaultSpec{1000, 1});
  EXPECT_DEATH(runtime::Cluster{dup}, "duplicate fault");

  runtime::ClusterConfig zero;
  zero.protocol = runtime::ProtocolKind::kCausal;
  zero.faults.push_back(runtime::FaultSpec{0, 1});
  EXPECT_DEATH(runtime::Cluster{zero}, "t <= 0");
}

TEST(FaultValidation, SeedSweepAxisExpands) {
  ScenarioBuilder b = base("seed_sweep");
  b.set("faults.rank_rate", "2.0").sweep("seed", {"1", "2", "3"});
  const std::vector<scenario::RunPoint> points = scenario::expand(b.build());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].spec.seed, 1u);
  EXPECT_EQ(points[1].spec.seed, 2u);
  EXPECT_EQ(points[2].spec.seed, 3u);
  // The campaign rides along into every point.
  EXPECT_EQ(points[2].spec.faults.campaign.injections.size(), 1u);
}

TEST(FaultValidation, SweptInjectionKeyReplacesTheBaseLine) {
  // A base [faults] crash_el plus a faults.crash_el sweep axis: each point
  // must carry exactly ONE EL crash (the swept value), not base + sweep —
  // injection keys override under sweeps like every scalar axis. Unrelated
  // injections (the outage) survive.
  ScenarioBuilder b = base("sweep_replace", 6, 2);
  b.crash_el_at(5 * sim::kMillisecond, 0)
      .el_outage(40 * sim::kMillisecond, 1, sim::kMillisecond)
      .sweep("faults.crash_el", {"2ms:0", "8ms:1"});
  const std::vector<scenario::RunPoint> points = scenario::expand(b.build());
  ASSERT_EQ(points.size(), 2u);
  for (const scenario::RunPoint& p : points) {
    int crashes = 0, outages = 0;
    for (const Injection& i : p.spec.faults.campaign.injections) {
      if (i.target == Target::kElShard && i.action == Action::kCrash) ++crashes;
      if (i.target == Target::kElShard && i.action == Action::kOutage) ++outages;
    }
    EXPECT_EQ(crashes, 1) << p.label;
    EXPECT_EQ(outages, 1) << p.label;
  }
  EXPECT_EQ(points[0].spec.faults.campaign.injections.back().at,
            2 * sim::kMillisecond);
  EXPECT_EQ(points[1].spec.faults.campaign.injections.back().index, 1);
}

// ---------------------------------------------------------------------------
// Trigger semantics.
// ---------------------------------------------------------------------------

TEST(FaultTriggers, CheckpointTriggerKillsTheRank) {
  // A short cadence so the victim commits a checkpoint well before the run
  // ends; the ring workload keeps checksums timing-invariant.
  auto make = [](const char* name) {
    return ring_base(name, 6, 1, /*laps=*/80)
        .checkpoint(ckpt::Policy::kRoundRobin, 8 * sim::kMillisecond);
  };
  const scenario::RunResult ref = scenario::run_spec(make("ckpt_ref").build());
  ASSERT_TRUE(ref.completed);

  const scenario::RunResult r =
      scenario::run_spec(make("ckpt_trig").crash_rank_on_ckpt(1, 1).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.report.faults_injected, 1u);
  EXPECT_EQ(r.report.fault_counts.rank_crashes, 1u);
  EXPECT_EQ(r.checksums, ref.checksums);
  // The victim's record exists and is complete.
  ASSERT_EQ(r.report.recoveries.size(), 1u);
  EXPECT_EQ(r.report.recoveries[0].rank, 1);
  EXPECT_TRUE(r.report.recoveries[0].complete());
  // The trigger fired only after the rank committed a checkpoint (its slot
  // in the round-robin cadence is the second tick).
  EXPECT_GT(r.report.recoveries[0].fault_at, 16 * sim::kMillisecond);
}

TEST(FaultTriggers, StoredCountTriggerCrashesTheShard) {
  const scenario::RunResult ref =
      scenario::run_spec(ring_base("stored_ref", 6, 2).build());
  ASSERT_TRUE(ref.completed);

  const scenario::RunResult r = scenario::run_spec(
      ring_base("stored_trig", 6, 2).crash_el_on_stored(0, 40).build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.report.fault_counts.el_crashes, 1u);
  EXPECT_EQ(r.report.fault_counts.el_failovers, 1u);
  EXPECT_GT(r.report.first_el_fault, 0);
  EXPECT_EQ(r.checksums, ref.checksums);
}

// ---------------------------------------------------------------------------
// Recovery timeline accounting.
// ---------------------------------------------------------------------------

TEST(RecoveryTimeline, PhasesAreExhaustiveAndOrdered) {
  const scenario::RunResult ref = scenario::run_spec(base("tl_ref").build());
  ASSERT_TRUE(ref.completed);
  const sim::Time crash_at = ref.report.completion_time / 2;

  const scenario::RunResult r =
      scenario::run_spec(base("tl").fault_at(crash_at, 2).build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.report.recoveries.size(), 1u);
  const fault::RecoveryRecord& rec = r.report.recoveries[0];
  EXPECT_EQ(rec.rank, 2);
  EXPECT_FALSE(rec.coordinated);
  ASSERT_TRUE(rec.complete());
  EXPECT_EQ(rec.fault_at, crash_at);
  // Detect is exactly the failure detector's delay.
  EXPECT_EQ(rec.detect_ns(), 250 * sim::kMillisecond);
  // Phases are non-negative and partition [fault, replay_done].
  EXPECT_GE(rec.image_ns(), 0);
  EXPECT_GE(rec.collect_ns(), 0);
  EXPECT_GE(rec.replay_ns(), 0);
  EXPECT_EQ(rec.detect_ns() + rec.image_ns() + rec.collect_ns() +
                rec.replay_ns(),
            rec.total_ns());
  // The record's replay count matches the stats probe.
  EXPECT_EQ(rec.replay_events, r.report.totals().recovery_events);
  EXPECT_EQ(r.checksums, ref.checksums);
}

TEST(RecoveryTimeline, CoordinatedRollbackRecordsEveryRank) {
  scenario::ScenarioBuilder b("coord_tl");
  b.variant("coordinated")
      .nranks(4)
      .seed(3)
      .checkpoint(ckpt::Policy::kAllAtOnce, 40 * sim::kMillisecond)
      .ring(40, 2048);
  const scenario::RunResult ref = scenario::run_spec(b.build());
  ASSERT_TRUE(ref.completed);
  scenario::ScenarioBuilder bf("coord_tl_fault");
  bf.variant("coordinated")
      .nranks(4)
      .seed(3)
      .checkpoint(ckpt::Policy::kAllAtOnce, 40 * sim::kMillisecond)
      .ring(40, 2048)
      .fault_at(ref.report.completion_time / 2, 1);
  const scenario::RunResult r = scenario::run_spec(bf.build());
  ASSERT_TRUE(r.completed);
  // One fault, but every rank rolled back: four records, all coordinated.
  ASSERT_EQ(r.report.recoveries.size(), 4u);
  for (const fault::RecoveryRecord& rec : r.report.recoveries) {
    EXPECT_TRUE(rec.coordinated);
    EXPECT_TRUE(rec.complete());
    EXPECT_EQ(rec.replay_events, 0u);  // rollback replays nothing
  }
  EXPECT_EQ(r.checksums, ref.checksums);
}

// ---------------------------------------------------------------------------
// Link perturbation and service outages.
// ---------------------------------------------------------------------------

TEST(LinkFaults, LatencySpikeSlowsTheRunButKeepsResults) {
  const scenario::RunResult ref =
      scenario::run_spec(ring_base("lat_ref").build());
  ASSERT_TRUE(ref.completed);
  const scenario::RunResult r = scenario::run_spec(
      ring_base("lat")
          .link_latency(5 * sim::kMillisecond, 2, sim::kMillisecond,
                        ref.report.completion_time)
          .build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.report.fault_counts.link_faults, 1u);
  EXPECT_GT(r.report.completion_time, ref.report.completion_time);
  EXPECT_EQ(r.checksums, ref.checksums);
}

TEST(LinkFaults, DropWindowDelaysButLosesNothing) {
  const scenario::RunResult ref =
      scenario::run_spec(ring_base("drop_ref").build());
  ASSERT_TRUE(ref.completed);
  const scenario::RunResult r = scenario::run_spec(
      ring_base("drop")
          .link_drop(10 * sim::kMillisecond, 3, 15 * sim::kMillisecond)
          .build());
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.report.completion_time, ref.report.completion_time);
  EXPECT_EQ(r.checksums, ref.checksums);
}

TEST(ServiceOutages, CheckpointServerOutageIsRiddenOut) {
  // The outage covers several checkpoint ticks; clients retransmit and the
  // run (plus a later recovery from one of those images) stays exact.
  const scenario::RunResult ref =
      scenario::run_spec(ring_base("cs_ref").build());
  ASSERT_TRUE(ref.completed);
  const scenario::RunResult r = scenario::run_spec(
      ring_base("cs")
          .ckpt_outage(20 * sim::kMillisecond, 60 * sim::kMillisecond)
          .set("faults.service_retry", "40ms")
          .fault_at(ref.report.completion_time * 9 / 10, 1)
          .build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.report.fault_counts.ckpt_outages, 1u);
  EXPECT_EQ(r.report.faults_injected, 1u);
  EXPECT_EQ(r.checksums, ref.checksums);
}

TEST(ServiceOutages, ElOutageFreezesThenResumesStability) {
  const scenario::RunResult ref =
      scenario::run_spec(ring_base("elo_ref").build());
  ASSERT_TRUE(ref.completed);
  const scenario::RunResult r = scenario::run_spec(
      ring_base("elo")
          .el_outage(10 * sim::kMillisecond, 0, 30 * sim::kMillisecond)
          .build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.report.fault_counts.el_outages, 1u);
  EXPECT_EQ(r.checksums, ref.checksums);
  // Acks resumed after the outage (stability did not stay frozen).
  EXPECT_GT(r.report.el_stats.acks_sent, 0u);
}

// ---------------------------------------------------------------------------
// Daemon faults and partitions (the failure domains split from rank loss).
// ---------------------------------------------------------------------------

TEST(DaemonFaults, DaemonCrashStallsTheRankButLosesNothing) {
  const scenario::RunResult ref =
      scenario::run_spec(ring_base("dmn_ref").build());
  ASSERT_TRUE(ref.completed);
  const scenario::RunResult r = scenario::run_spec(
      ring_base("dmn")
          .crash_daemon_at(10 * sim::kMillisecond, 2,
                           30 * sim::kMillisecond)
          .build());
  ASSERT_TRUE(r.completed);
  // The rank never died — only its daemon: no recovery, no replay, results
  // identical, and the stall shows up as pure slowdown.
  EXPECT_EQ(r.report.fault_counts.daemon_crashes, 1u);
  EXPECT_EQ(r.report.fault_counts.rank_crashes, 0u);
  EXPECT_EQ(r.report.faults_injected, 0u);
  EXPECT_TRUE(r.report.recoveries.empty());
  EXPECT_EQ(r.checksums, ref.checksums);
  EXPECT_GT(r.report.completion_time, ref.report.completion_time);
  // The outage record carries the daemon's own phases.
  ASSERT_EQ(r.report.daemon_outages.size(), 1u);
  const fault::DaemonOutageRecord& rec = r.report.daemon_outages[0];
  EXPECT_EQ(rec.rank, 2);
  ASSERT_TRUE(rec.complete());
  EXPECT_EQ(rec.fault_at, 10 * sim::kMillisecond);
  EXPECT_EQ(rec.down_ns(), 30 * sim::kMillisecond);
  EXPECT_GT(rec.held_frames, 0u);  // the ring kept talking at the dead node
  EXPECT_EQ(r.report.totals().daemon_down_time, 30 * sim::kMillisecond);
}

TEST(DaemonFaults, OutageRecordClosesWhenTheRunOutlastsIt) {
  // The daemon dies moments before the workload finishes: the run completes
  // while the daemon is still down (the victim had nothing left to send),
  // and the dispatcher stops the engine at completion so the respawn timer
  // never fires. The outage record must still close — at drain time, when
  // teardown restarts the daemon — because an open-ended record here would
  // misreport "lost until abandonment" for a downtime the run outlived.
  const scenario::RunResult ref =
      scenario::run_spec(ring_base("drain_ref").build());
  ASSERT_TRUE(ref.completed);
  const sim::Time t = ref.report.completion_time;

  const sim::Time downtime = 30 * sim::kMillisecond;
  const scenario::RunResult r = scenario::run_spec(
      ring_base("drain_close")
          .crash_daemon_at(t - 20 * sim::kMicrosecond, 1, downtime)
          .build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.report.daemon_outages.size(), 1u);
  const fault::DaemonOutageRecord& rec = r.report.daemon_outages[0];
  // The run finished before the respawn: the interesting window this test
  // exists for.
  ASSERT_LT(r.report.completion_time, rec.fault_at + downtime);
  EXPECT_TRUE(rec.complete());
  EXPECT_FALSE(rec.interrupted);
  // Drain-time close: the outage ends when the run does, not at the full
  // scheduled downtime (which lies beyond the run).
  EXPECT_EQ(rec.restart_at, r.report.completion_time);
  EXPECT_GT(rec.down_ns(), 0);
  EXPECT_LT(rec.down_ns(), downtime);
  EXPECT_EQ(r.checksums, ref.checksums);
}

TEST(DaemonFaults, DefaultRestartDelayApplies) {
  const scenario::RunResult r = scenario::run_spec(
      ring_base("dmn_delay")
          .crash_daemon_at(10 * sim::kMillisecond, 1)
          .daemon_restart_delay(12 * sim::kMillisecond)
          .build());
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.report.daemon_outages.size(), 1u);
  EXPECT_EQ(r.report.daemon_outages[0].down_ns(), 12 * sim::kMillisecond);
}

TEST(Partitions, PartitionDelaysButPreservesResults) {
  // Split the ring down the middle for a while: every neighbor pair across
  // the cut stalls, then the held frames heal through in order and the run
  // finishes with identical results.
  const scenario::RunResult ref =
      scenario::run_spec(ring_base("part_ref").build());
  ASSERT_TRUE(ref.completed);
  const scenario::RunResult r = scenario::run_spec(
      ring_base("part")
          .partition(10 * sim::kMillisecond, {0, 1, 2}, {3, 4, 5},
                     25 * sim::kMillisecond)
          .build());
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.report.fault_counts.partitions, 1u);
  EXPECT_EQ(r.checksums, ref.checksums);
  EXPECT_GT(r.report.completion_time, ref.report.completion_time);
}

TEST(Partitions, HealReleasesAfterWindowPlusBackoff) {
  // Partition one rank away from everyone long enough that the window, not
  // the workload, dominates: completion is pushed past heal time.
  const sim::Time window = 200 * sim::kMillisecond;
  const scenario::RunResult r = scenario::run_spec(
      ring_base("part_heal")
          .partition(5 * sim::kMillisecond, {0}, {1, 2, 3, 4, 5}, window,
                     4 * sim::kMillisecond)
          .build());
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.report.completion_time, 5 * sim::kMillisecond + window);
}

// ---------------------------------------------------------------------------
// Chaos soak machinery: compare_reference + the outcome tally.
// ---------------------------------------------------------------------------

TEST(ChaosSoak, MiniSoakTallySumsToSweepSize) {
  // A seeded miniature of scenarios/chaos_soak.scn: Poisson rank + daemon
  // faults crossed with EL redundancy and seeds. Every point must classify
  // into exactly one outcome and the tally must cover the whole sweep.
  // Rates are per minute against runs of ~0.5 simulated seconds, so they
  // need to be in the hundreds to matter; the tight max_sim_time turns a
  // crash spiral into a cheap "abandoned" instead of a 4-hour simulation.
  ScenarioBuilder b = ring_base("mini_soak", 6, 1, /*laps=*/120);
  b.compare_reference()
      .max_sim_time(4 * sim::kSecond)
      .set("faults.service_retry", "100ms")
      .sweep("faults.rank_rate", {"120", "360"})
      .sweep("faults.daemon_rate", {"0", "120"})
      .sweep("el_shards", {"1", "2"})
      .sweep("seed", {"1", "2"});
  const scenario::RunSet set = scenario::run(b.build());
  ASSERT_EQ(set.runs.size(), 16u);
  const scenario::OutcomeCounts t = set.tally();
  EXPECT_EQ(t.total(), set.runs.size());
  EXPECT_EQ(t.skipped, 0u);
  // Faults were really injected (the soak is not a quiet run in disguise)
  // and at least one point made it through with an exact replay.
  std::uint64_t crashes = 0;
  for (const scenario::RunResult& r : set.runs) {
    crashes += r.report.fault_counts.rank_crashes +
               r.report.fault_counts.daemon_crashes;
    EXPECT_TRUE(r.has_reference) << r.label;
  }
  EXPECT_GT(crashes, 0u);
  EXPECT_GT(t.recovered_exact, 0u);
}

TEST(ChaosSoak, RankFaultFreePointRunsOnceAndCountsAsExact) {
  // With compare_reference but no rank crashes anywhere in the plan, the
  // reference IS the measured run (deterministic simulator): one cluster
  // execution serves as both, classified recovered_exact, with the
  // environment faults (here a daemon crash) still injected.
  const scenario::RunResult r = scenario::run_spec(
      ring_base("soak_corner")
          .compare_reference()
          .crash_daemon_at(10 * sim::kMillisecond, 1)
          .build());
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.has_reference);
  EXPECT_EQ(r.outcome(), scenario::Outcome::kRecoveredExact);
  EXPECT_EQ(r.checksums, r.reference_checksums);
  EXPECT_EQ(r.report.fault_counts.daemon_crashes, 1u);
}

TEST(ChaosSoak, OutcomeNamesAreStable) {
  // The JSON report and the aggregation script key on these strings.
  EXPECT_STREQ(scenario::outcome_name(scenario::Outcome::kSkipped), "skipped");
  EXPECT_STREQ(scenario::outcome_name(scenario::Outcome::kAbandoned),
               "abandoned");
  EXPECT_STREQ(scenario::outcome_name(scenario::Outcome::kCompleted),
               "completed");
  EXPECT_STREQ(scenario::outcome_name(scenario::Outcome::kRecoveredExact),
               "recovered_exact");
}

TEST(ServiceOutages, PiggybacksRegrowWhileTheElIsDown) {
  // Random traffic: every message targets a fresh destination, so the
  // growing unstable suffix is re-shipped — the regrowth the ring's fixed
  // neighbor topology hides. (Checksums aren't compared here: wildcard
  // interleavings legitimately differ under perturbed timing; the exact-
  // replay guarantees are covered by the other outage tests.)
  auto make = [](const char* name) {
    ScenarioBuilder b(name);
    b.variant("vcausal:el")
        .nranks(6)
        .seed(9)
        .checkpoint(ckpt::Policy::kRoundRobin, 25 * sim::kMillisecond)
        .random_any(/*iterations=*/30, /*wseed=*/5, /*bytes=*/2048);
    return b;
  };
  const scenario::RunResult healthy = scenario::run_spec(make("regrow_ref").build());
  ASSERT_TRUE(healthy.completed);
  // A long outage: stability freezes, every message carries the growing
  // unstable suffix — the no-EL regime entered dynamically.
  const scenario::RunResult outage = scenario::run_spec(
      make("regrow")
          .el_outage(5 * sim::kMillisecond, 0, healthy.report.completion_time)
          .build());
  ASSERT_TRUE(outage.completed);
  EXPECT_GT(outage.report.totals().pb_peak_msg_events,
            healthy.report.totals().pb_peak_msg_events);
  EXPECT_GT(outage.report.totals().pb_peak_msg_bytes,
            healthy.report.totals().pb_peak_msg_bytes);
}

}  // namespace
}  // namespace mpiv
