// Edge-case fault-injection tests: crashes during checkpoint stores
// (transactionality end-to-end), crash storms, faults while another
// recovery is pending, pessimistic wildcard replay, coordinated rollback
// with repeated faults, and recovery under a starved Event Logger.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "workloads/apps.hpp"

namespace mpiv {
namespace {

using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::ClusterReport;
using runtime::FaultSpec;
using runtime::ProtocolKind;
using workloads::ChecksumResult;

struct RunOutput {
  ClusterReport report;
  ChecksumResult checksums{0};
};

RunOutput run_ring(ClusterConfig cfg, int laps = 50) {
  auto result = std::make_shared<ChecksumResult>(cfg.nranks);
  Cluster cluster(cfg);
  ClusterReport rep = cluster.run(workloads::make_ring_app(laps, 2048, result));
  return {rep, *result};
}

ClusterConfig causal_cfg(int nranks = 5) {
  ClusterConfig cfg;
  cfg.nranks = nranks;
  cfg.protocol = ProtocolKind::kCausal;
  cfg.strategy = causal::StrategyKind::kManetho;
  cfg.ckpt_policy = ckpt::Policy::kRoundRobin;
  cfg.ckpt_interval = 30 * sim::kMillisecond;
  return cfg;
}

TEST(RecoveryEdge, CrashSweepAcrossRunAndRanks) {
  // Property sweep: kill rank r at fraction f of the run, for a grid of
  // (r, f) — every combination must recover to identical results.
  ClusterConfig cfg = causal_cfg();
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  for (int rank = 0; rank < cfg.nranks; rank += 2) {
    for (int pct : {10, 35, 60, 85}) {
      ClusterConfig c2 = cfg;
      c2.faults.push_back(
          FaultSpec{ref.report.completion_time * pct / 100, rank});
      RunOutput out = run_ring(c2);
      ASSERT_TRUE(out.report.completed) << "rank " << rank << " at " << pct << "%";
      EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums)
          << "rank " << rank << " at " << pct << "%";
    }
  }
}

TEST(RecoveryEdge, CrashLikelyDuringCheckpointKeepsOldImageUsable) {
  // Dense fault times around the checkpoint cadence: some runs kill the
  // rank while its store transaction is in flight. Either the transaction
  // committed (new image) or it did not (old image) — both must recover.
  ClusterConfig cfg = causal_cfg(4);
  cfg.ckpt_interval = 20 * sim::kMillisecond;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  for (int k = 1; k <= 6; ++k) {
    ClusterConfig c2 = cfg;
    // Just after every k-th scheduler tick, when rank (k-1)%4 may be
    // mid-store (the store itself takes ~5+ ms).
    c2.faults.push_back(FaultSpec{
        20 * sim::kMillisecond * k + 6 * sim::kMillisecond, (k - 1) % 4});
    RunOutput out = run_ring(c2);
    ASSERT_TRUE(out.report.completed) << "tick " << k;
    EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums) << "tick " << k;
  }
}

TEST(RecoveryEdge, RepeatedCrashesOfSameRank) {
  ClusterConfig cfg = causal_cfg(4);
  const RunOutput ref = run_ring(cfg, 80);
  ASSERT_TRUE(ref.report.completed);
  ClusterConfig c2 = cfg;
  for (int k = 1; k <= 4; ++k) {
    c2.faults.push_back(FaultSpec{ref.report.completion_time * k / 5, 2});
  }
  RunOutput out = run_ring(c2, 80);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 4u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, NearSimultaneousFaultsAreSerialized) {
  // Two faults 1 ms apart: the dispatcher must queue the second until the
  // first recovery completes, and both must replay correctly.
  ClusterConfig cfg = causal_cfg(5);
  const RunOutput ref = run_ring(cfg, 60);
  ASSERT_TRUE(ref.report.completed);
  ClusterConfig c2 = cfg;
  c2.faults.push_back(FaultSpec{ref.report.completion_time / 2, 1});
  c2.faults.push_back(
      FaultSpec{ref.report.completion_time / 2 + sim::kMillisecond, 3});
  RunOutput out = run_ring(c2, 60);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 2u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, PessimisticReplaysWildcardOrders) {
  ClusterConfig cfg;
  cfg.nranks = 6;
  cfg.protocol = ProtocolKind::kPessimistic;
  cfg.ckpt_policy = ckpt::Policy::kNone;
  auto run_it = [&cfg] {
    auto result = std::make_shared<ChecksumResult>(cfg.nranks);
    Cluster cluster(cfg);
    ClusterReport rep = cluster.run(
        workloads::make_random_then_ring_app(10, 25, 11, 1024, result));
    return RunOutput{rep, *result};
  };
  const RunOutput ref = run_it();
  ASSERT_TRUE(ref.report.completed);
  cfg.faults.push_back(FaultSpec{ref.report.completion_time * 3 / 4, 2});
  RunOutput out = run_it();
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, CoordinatedSurvivesRepeatedRollbacks) {
  ClusterConfig cfg;
  cfg.nranks = 4;
  cfg.protocol = ProtocolKind::kCoordinated;
  cfg.ckpt_policy = ckpt::Policy::kAllAtOnce;
  cfg.ckpt_interval = 60 * sim::kMillisecond;
  const RunOutput ref = run_ring(cfg, 70);
  ASSERT_TRUE(ref.report.completed);
  ClusterConfig c2 = cfg;
  c2.faults.push_back(FaultSpec{ref.report.completion_time / 3, 0});
  c2.faults.push_back(FaultSpec{ref.report.completion_time * 2 / 3, 2});
  RunOutput out = run_ring(c2, 70);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 2u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, StarvedEventLoggerStillRecoversCorrectly) {
  // An EL that cannot keep up degrades performance, never correctness.
  ClusterConfig cfg = causal_cfg(4);
  cfg.cost.el_service = 400 * sim::kMicrosecond;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  ClusterConfig c2 = cfg;
  c2.faults.push_back(FaultSpec{ref.report.completion_time / 2, 1});
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, FaultFreeRunsPayNoRecoveryCost) {
  ClusterConfig cfg = causal_cfg(4);
  RunOutput out = run_ring(cfg);
  ASSERT_TRUE(out.report.completed);
  const ftapi::RankStats t = out.report.totals();
  EXPECT_EQ(t.recovery_events, 0u);
  EXPECT_EQ(t.replayed_receptions, 0u);
  EXPECT_EQ(t.recovery_total_time, 0);
}

}  // namespace
}  // namespace mpiv
