// Edge-case fault-injection tests: crashes during checkpoint stores
// (transactionality end-to-end), crash storms, faults while another
// recovery is pending, pessimistic wildcard replay, coordinated rollback
// with repeated faults, and recovery under a starved Event Logger.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "workloads/apps.hpp"

namespace mpiv {
namespace {

using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::ClusterReport;
using runtime::FaultSpec;
using runtime::ProtocolKind;
using workloads::ChecksumResult;

struct RunOutput {
  ClusterReport report;
  ChecksumResult checksums{0};
};

RunOutput run_ring(ClusterConfig cfg, int laps = 50) {
  auto result = std::make_shared<ChecksumResult>(cfg.nranks);
  Cluster cluster(cfg);
  ClusterReport rep = cluster.run(workloads::make_ring_app(laps, 2048, result));
  return {rep, *result};
}

ClusterConfig causal_cfg(int nranks = 5) {
  ClusterConfig cfg;
  cfg.nranks = nranks;
  cfg.protocol = ProtocolKind::kCausal;
  cfg.strategy = causal::StrategyKind::kManetho;
  cfg.ckpt_policy = ckpt::Policy::kRoundRobin;
  cfg.ckpt_interval = 30 * sim::kMillisecond;
  return cfg;
}

TEST(RecoveryEdge, CrashSweepAcrossRunAndRanks) {
  // Property sweep: kill rank r at fraction f of the run, for a grid of
  // (r, f) — every combination must recover to identical results.
  ClusterConfig cfg = causal_cfg();
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  for (int rank = 0; rank < cfg.nranks; rank += 2) {
    for (int pct : {10, 35, 60, 85}) {
      ClusterConfig c2 = cfg;
      c2.faults.push_back(
          FaultSpec{ref.report.completion_time * pct / 100, rank});
      RunOutput out = run_ring(c2);
      ASSERT_TRUE(out.report.completed) << "rank " << rank << " at " << pct << "%";
      EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums)
          << "rank " << rank << " at " << pct << "%";
    }
  }
}

TEST(RecoveryEdge, CrashLikelyDuringCheckpointKeepsOldImageUsable) {
  // Dense fault times around the checkpoint cadence: some runs kill the
  // rank while its store transaction is in flight. Either the transaction
  // committed (new image) or it did not (old image) — both must recover.
  ClusterConfig cfg = causal_cfg(4);
  cfg.ckpt_interval = 20 * sim::kMillisecond;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  for (int k = 1; k <= 6; ++k) {
    ClusterConfig c2 = cfg;
    // Just after every k-th scheduler tick, when rank (k-1)%4 may be
    // mid-store (the store itself takes ~5+ ms).
    c2.faults.push_back(FaultSpec{
        20 * sim::kMillisecond * k + 6 * sim::kMillisecond, (k - 1) % 4});
    RunOutput out = run_ring(c2);
    ASSERT_TRUE(out.report.completed) << "tick " << k;
    EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums) << "tick " << k;
  }
}

TEST(RecoveryEdge, RepeatedCrashesOfSameRank) {
  ClusterConfig cfg = causal_cfg(4);
  const RunOutput ref = run_ring(cfg, 80);
  ASSERT_TRUE(ref.report.completed);
  ClusterConfig c2 = cfg;
  for (int k = 1; k <= 4; ++k) {
    c2.faults.push_back(FaultSpec{ref.report.completion_time * k / 5, 2});
  }
  RunOutput out = run_ring(c2, 80);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 4u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, NearSimultaneousFaultsAreSerialized) {
  // Two faults 1 ms apart: the dispatcher must queue the second until the
  // first recovery completes, and both must replay correctly.
  ClusterConfig cfg = causal_cfg(5);
  const RunOutput ref = run_ring(cfg, 60);
  ASSERT_TRUE(ref.report.completed);
  ClusterConfig c2 = cfg;
  c2.faults.push_back(FaultSpec{ref.report.completion_time / 2, 1});
  c2.faults.push_back(
      FaultSpec{ref.report.completion_time / 2 + sim::kMillisecond, 3});
  RunOutput out = run_ring(c2, 60);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 2u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, PessimisticReplaysWildcardOrders) {
  ClusterConfig cfg;
  cfg.nranks = 6;
  cfg.protocol = ProtocolKind::kPessimistic;
  cfg.ckpt_policy = ckpt::Policy::kNone;
  auto run_it = [&cfg] {
    auto result = std::make_shared<ChecksumResult>(cfg.nranks);
    Cluster cluster(cfg);
    ClusterReport rep = cluster.run(
        workloads::make_random_then_ring_app(10, 25, 11, 1024, result));
    return RunOutput{rep, *result};
  };
  const RunOutput ref = run_it();
  ASSERT_TRUE(ref.report.completed);
  cfg.faults.push_back(FaultSpec{ref.report.completion_time * 3 / 4, 2});
  RunOutput out = run_it();
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, CoordinatedSurvivesRepeatedRollbacks) {
  ClusterConfig cfg;
  cfg.nranks = 4;
  cfg.protocol = ProtocolKind::kCoordinated;
  cfg.ckpt_policy = ckpt::Policy::kAllAtOnce;
  cfg.ckpt_interval = 60 * sim::kMillisecond;
  const RunOutput ref = run_ring(cfg, 70);
  ASSERT_TRUE(ref.report.completed);
  ClusterConfig c2 = cfg;
  c2.faults.push_back(FaultSpec{ref.report.completion_time / 3, 0});
  c2.faults.push_back(FaultSpec{ref.report.completion_time * 2 / 3, 2});
  RunOutput out = run_ring(c2, 70);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 2u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, StarvedEventLoggerStillRecoversCorrectly) {
  // An EL that cannot keep up degrades performance, never correctness.
  ClusterConfig cfg = causal_cfg(4);
  cfg.cost.el_service = 400 * sim::kMicrosecond;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  ClusterConfig c2 = cfg;
  c2.faults.push_back(FaultSpec{ref.report.completion_time / 2, 1});
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, FaultFreeRunsPayNoRecoveryCost) {
  ClusterConfig cfg = causal_cfg(4);
  RunOutput out = run_ring(cfg);
  ASSERT_TRUE(out.report.completed);
  const ftapi::RankStats t = out.report.totals();
  EXPECT_EQ(t.recovery_events, 0u);
  EXPECT_EQ(t.replayed_receptions, 0u);
  EXPECT_EQ(t.recovery_total_time, 0);
}

// --- Event Logger shard loss ------------------------------------------------

/// Injects a permanent crash of EL shard `shard` at `at` into `cfg`.
void crash_el(ClusterConfig& cfg, sim::Time at, int shard) {
  fault::Injection inj;
  inj.target = fault::Target::kElShard;
  inj.index = shard;
  inj.at = at;
  cfg.campaign.injections.push_back(inj);
}

TEST(RecoveryEdge, ElShardLossThenRankCrashRecoversExactly) {
  // Shard 0 (even ranks) dies; shard 1 mounts its log and absorbs its
  // ranks. A re-homed rank then crashes: its replay set must reassemble
  // from the successor's mounted log + survivors, bit for bit.
  ClusterConfig cfg = causal_cfg(6);
  cfg.el_shards = 2;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);

  ClusterConfig c2 = cfg;
  crash_el(c2, ref.report.completion_time / 4, 0);
  c2.campaign.el_failover_delay = 10 * sim::kMillisecond;
  c2.faults.push_back(FaultSpec{ref.report.completion_time / 2, 2});
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.el_crashes, 1u);
  EXPECT_EQ(out.report.fault_counts.el_failovers, 1u);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  // The recovery has a complete per-phase timeline.
  ASSERT_EQ(out.report.recoveries.size(), 1u);
  EXPECT_TRUE(out.report.recoveries[0].complete());
}

TEST(RecoveryEdge, RankCrashDuringElOutageWindowStillRecovers) {
  // The rank dies while its home shard is down and before failover
  // completes: the recovery fetch retransmits until the successor serves
  // the mounted log.
  ClusterConfig cfg = causal_cfg(6);
  cfg.el_shards = 2;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);

  ClusterConfig c2 = cfg;
  const sim::Time crash_at = ref.report.completion_time / 2;
  crash_el(c2, crash_at - sim::kMillisecond, 0);
  // Failover completes only after the rank's recovery already started
  // (detection takes 250 ms, the first fetch fires into the dead shard).
  c2.campaign.el_failover_delay = 300 * sim::kMillisecond;
  c2.campaign.service_retry = 60 * sim::kMillisecond;
  c2.faults.push_back(FaultSpec{crash_at, 0});
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.el_failovers, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, ElShardLossFailsOverToStandby) {
  ClusterConfig cfg = causal_cfg(6);
  cfg.el_shards = 2;
  cfg.el_standby = 1;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);

  ClusterConfig c2 = cfg;
  crash_el(c2, ref.report.completion_time / 4, 1);
  c2.campaign.el_failover = fault::ElFailover::kStandby;
  c2.campaign.el_failover_delay = 10 * sim::kMillisecond;
  c2.faults.push_back(FaultSpec{ref.report.completion_time / 2, 1});
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.el_failovers, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, ShardCrashDuringPeerOutageWaitsForTheOutageToEnd) {
  // Shard 0 crashes while shard 1 — the only failover target — is in a
  // transient outage. The engine must retry the failover until shard 1 is
  // back (its log was never lost) instead of abandoning shard 0's ranks to
  // the permanent no-EL regime.
  ClusterConfig cfg = causal_cfg(6);
  cfg.el_shards = 2;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  const sim::Time t = ref.report.completion_time;

  ClusterConfig c2 = cfg;
  {
    fault::Injection outage;
    outage.target = fault::Target::kElShard;
    outage.index = 1;
    outage.at = t / 5;
    outage.action = fault::Action::kOutage;
    outage.duration = 40 * sim::kMillisecond;
    c2.campaign.injections.push_back(outage);
  }
  crash_el(c2, t / 5 + sim::kMillisecond, 0);  // inside shard 1's outage
  c2.campaign.el_failover_delay = 5 * sim::kMillisecond;
  c2.faults.push_back(FaultSpec{t / 5 + 60 * sim::kMillisecond, 2});
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  // The failover eventually landed (no abandonment) and recovery is exact.
  EXPECT_EQ(out.report.fault_counts.el_failovers, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, CascadingShardCrashesExhaustAndAbandonTheEl) {
  // Both shards die. The second crash finds no successor: its ranks run in
  // the no-EL regime from then on — the run must still complete and, with
  // no later rank faults, stay exact.
  ClusterConfig cfg = causal_cfg(6);
  cfg.el_shards = 2;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);

  ClusterConfig c2 = cfg;
  crash_el(c2, ref.report.completion_time / 5, 0);
  crash_el(c2, ref.report.completion_time / 2, 1);
  c2.campaign.el_failover_delay = 10 * sim::kMillisecond;
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.el_crashes, 2u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(RecoveryEdge, DaemonCrashDuringElFailoverStillRecovers) {
  // Shard 0 dies; while the successor is still mounting its log, the
  // daemon of a re-homed rank dies too. The rank's EL traffic backs up in
  // the dead daemon, drains into the successor after the respawn, and a
  // later crash of that same rank must replay exactly from the mounted log.
  ClusterConfig cfg = causal_cfg(6);
  cfg.el_shards = 2;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  const sim::Time t = ref.report.completion_time;

  ClusterConfig c2 = cfg;
  crash_el(c2, t / 4, 0);
  c2.campaign.el_failover_delay = 20 * sim::kMillisecond;
  c2.campaign.service_retry = 60 * sim::kMillisecond;
  {
    fault::Injection dmn;  // rank 2 is served by shard 0 (round-robin)
    dmn.target = fault::Target::kDaemon;
    dmn.index = 2;
    dmn.at = t / 4 + 5 * sim::kMillisecond;  // inside the failover window
    dmn.duration = 30 * sim::kMillisecond;
    c2.campaign.injections.push_back(dmn);
  }
  c2.faults.push_back(runtime::FaultSpec{t / 2, 2});
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.el_failovers, 1u);
  EXPECT_EQ(out.report.fault_counts.daemon_crashes, 1u);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  ASSERT_EQ(out.report.daemon_outages.size(), 1u);
  EXPECT_TRUE(out.report.daemon_outages[0].complete());
}

TEST(RecoveryEdge, RankCrashWhileItsDaemonIsDownSupersedesTheOutage) {
  // The rank dies mid-daemon-outage: the node-level restart replaces the
  // daemon respawn (the pending respawn must not resurrect stale frames),
  // and the recovery itself must still be exact.
  ClusterConfig cfg = causal_cfg(6);
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  const sim::Time t = ref.report.completion_time;

  ClusterConfig c2 = cfg;
  {
    fault::Injection dmn;
    dmn.target = fault::Target::kDaemon;
    dmn.index = 3;
    dmn.at = t / 2 - 5 * sim::kMillisecond;
    dmn.duration = 40 * sim::kMillisecond;  // outage spans the rank crash
    c2.campaign.injections.push_back(dmn);
  }
  c2.faults.push_back(runtime::FaultSpec{t / 2, 3});
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.daemon_crashes, 1u);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  // The outage record stays open-ended — the node restart superseded it.
  ASSERT_EQ(out.report.daemon_outages.size(), 1u);
  EXPECT_FALSE(out.report.daemon_outages[0].complete());
}

TEST(RecoveryEdge, DaemonFaultAfterSupersedingRankCrashStillFires) {
  // Daemon of rank 3 dies; the rank itself crashes moments later, which
  // restarts the node (daemon included) and ends the outage early. A
  // second daemon fault inside the ORIGINAL respawn window must still
  // fire — the engine must consult the live daemon state, not a latch
  // pinned until the first (now superseded) respawn timer.
  ClusterConfig cfg = causal_cfg(6);
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  const sim::Time t = ref.report.completion_time;

  ClusterConfig c2 = cfg;
  auto daemon_at = [&c2](sim::Time at, sim::Time downtime) {
    fault::Injection dmn;
    dmn.target = fault::Target::kDaemon;
    dmn.index = 3;
    dmn.at = at;
    dmn.duration = downtime;
    c2.campaign.injections.push_back(dmn);
  };
  daemon_at(t / 2 - 2 * sim::kMillisecond, 60 * sim::kMillisecond);
  c2.faults.push_back(runtime::FaultSpec{t / 2, 3});  // supersedes outage 1
  daemon_at(t / 2 + 10 * sim::kMillisecond, 20 * sim::kMillisecond);
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.daemon_crashes, 2u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  // Outage 1 stays open-ended (superseded); outage 2 completes on its own
  // respawn timer.
  ASSERT_EQ(out.report.daemon_outages.size(), 2u);
  EXPECT_FALSE(out.report.daemon_outages[0].complete());
  EXPECT_TRUE(out.report.daemon_outages[1].complete());
}

TEST(RecoveryEdge, PartitionAcrossARecoveryHealsInOrder) {
  // A partition cuts the recovering rank off from half the survivors right
  // around the crash: determinant collection and payload resends stall
  // until the heal, then the held frames arrive in their original order and
  // the replay must still be exact.
  ClusterConfig cfg = causal_cfg(6);
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  const sim::Time t = ref.report.completion_time;

  ClusterConfig c2 = cfg;
  {
    fault::Injection part;
    part.target = fault::Target::kFabric;
    part.action = fault::Action::kPartition;
    part.at = t / 2 + sim::kMillisecond;  // opens while detection runs
    part.duration = 400 * sim::kMillisecond;  // outlives detect (250 ms)
    part.magnitude = 2 * sim::kMillisecond;
    part.group_a = {1};
    part.group_b = {4, 5};
    c2.campaign.injections.push_back(part);
  }
  c2.faults.push_back(runtime::FaultSpec{t / 2, 1});
  RunOutput out = run_ring(c2);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.partitions, 1u);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  ASSERT_EQ(out.report.recoveries.size(), 1u);
  EXPECT_TRUE(out.report.recoveries[0].complete());
}

/// Injects a service-side partition: `services_a` (EL shard ids) cut away
/// from ranks `group_b` for `duration`.
void cut_services(ClusterConfig& cfg, sim::Time at, std::vector<int> services_a,
                  std::vector<int> group_b, sim::Time duration) {
  fault::Injection inj;
  inj.target = fault::Target::kFabric;
  inj.action = fault::Action::kPartition;
  inj.at = at;
  inj.duration = duration;
  inj.magnitude = 2 * sim::kMillisecond;
  inj.services_a = std::move(services_a);
  inj.group_b = std::move(group_b);
  cfg.campaign.injections.push_back(inj);
}

TEST(RecoveryEdge, SplitBrainReconcilesToOneLogAndReplaysExactly) {
  // Shard 0 is cut away from ranks 2 and 4 but NOT from rank 0: it stays
  // live, still storing rank 0's determinants, while suspicion re-homes
  // the cut clients onto shard 1 with an epoch bump — both shards accept
  // submissions until the heal. Records shard 0 stored whose acks the cut
  // parked are resubmitted to shard 1 (el_ack_build is raised so some are
  // always in that window), so the heal-time merge must drop real
  // (creator, seq) duplicates. A post-heal crash of a re-homed rank then
  // proves the merged log replays the reference bit for bit.
  ClusterConfig cfg = causal_cfg(6);
  cfg.el_shards = 2;
  cfg.cost.el_ack_build = 500 * sim::kMicrosecond;
  const RunOutput ref = run_ring(cfg, 80);
  ASSERT_TRUE(ref.report.completed);
  const sim::Time t = ref.report.completion_time;

  ClusterConfig c2 = cfg;
  cut_services(c2, t / 4, {0}, {2, 4}, 60 * sim::kMillisecond);
  c2.campaign.detection_delay = 10 * sim::kMillisecond;
  c2.campaign.service_retry = 10 * sim::kMillisecond;
  c2.faults.push_back(FaultSpec{t / 4 + 100 * sim::kMillisecond, 2});
  RunOutput out = run_ring(c2, 80);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.partitions, 1u);
  EXPECT_EQ(out.report.fault_counts.el_suspects, 1u);
  EXPECT_EQ(out.report.fault_counts.el_failovers, 1u);
  EXPECT_EQ(out.report.fault_counts.el_reconciles, 1u);
  ASSERT_EQ(out.report.el_reconciles.size(), 1u);
  const fault::ElReconcileRecord& rec = out.report.el_reconciles[0];
  EXPECT_TRUE(rec.complete());
  EXPECT_EQ(rec.stale_shard, 0);
  EXPECT_EQ(rec.successor, 1);
  EXPECT_EQ(rec.moved_ranks, 2);
  EXPECT_EQ(rec.detect_ns(), 10 * sim::kMillisecond);
  // The dual-log window produced real duplicates, the merge dropped them,
  // and the first one is localized to a moved rank.
  EXPECT_GE(rec.dup_dropped, 1u);
  EXPECT_TRUE(rec.first_dup_rank == 2 || rec.first_dup_rank == 4);
  const std::uint64_t dup_total =
      out.report.rank_stats[2].el_dup_submissions +
      out.report.rank_stats[4].el_dup_submissions;
  EXPECT_GE(dup_total, rec.dup_dropped);
  // Ranks outside the cut never hit the dedup or fence paths.
  for (const int r : {0, 1, 3, 5}) {
    EXPECT_EQ(out.report.rank_stats[static_cast<std::size_t>(r)]
                  .el_dup_submissions,
              0u)
        << "rank " << r;
    EXPECT_EQ(out.report.rank_stats[static_cast<std::size_t>(r)]
                  .stale_acks_fenced,
              0u)
        << "rank " << r;
  }
  // The replay from the merged log is exact.
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  ASSERT_EQ(out.report.recoveries.size(), 1u);
  EXPECT_TRUE(out.report.recoveries[0].complete());
}

TEST(RecoveryEdge, RehomeWhileSuccessorPartitionedRetriesIntoTheHeal) {
  // Shard 0 crashes while the only successor (shard 1) is itself cut away
  // from shard 0's clients. The failover must not mount the log onto an
  // unreachable successor: it retries until the cut heals, then mounts,
  // and a later crash of a re-homed rank still replays exactly.
  ClusterConfig cfg = causal_cfg(6);
  cfg.el_shards = 2;
  const RunOutput ref = run_ring(cfg, 80);
  ASSERT_TRUE(ref.report.completed);
  const sim::Time t = ref.report.completion_time;

  ClusterConfig c2 = cfg;
  // Shard 1 unreachable from the even ranks (shard 0's clientele); shard
  // 1's own clients are untouched, so no suspicion fires for the cut
  // itself — it is pure environment for the crash failover under test.
  cut_services(c2, t / 4 - 2 * sim::kMillisecond, {1}, {0, 2, 4},
               40 * sim::kMillisecond);
  crash_el(c2, t / 4, 0);
  c2.campaign.el_failover_delay = 5 * sim::kMillisecond;
  c2.campaign.service_retry = 10 * sim::kMillisecond;
  c2.faults.push_back(FaultSpec{t / 4 + 80 * sim::kMillisecond, 2});
  RunOutput out = run_ring(c2, 80);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.fault_counts.el_crashes, 1u);
  // Exactly one failover — the retries did not double-mount — and no
  // split-brain machinery engaged (the dead shard cannot stay live).
  EXPECT_EQ(out.report.fault_counts.el_failovers, 1u);
  EXPECT_EQ(out.report.fault_counts.el_suspects, 0u);
  EXPECT_TRUE(out.report.el_reconciles.empty());
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  ASSERT_EQ(out.report.recoveries.size(), 1u);
  EXPECT_TRUE(out.report.recoveries[0].complete());
}

TEST(RecoveryEdge, FaultStormSurvivesOverlappingInjections) {
  // Chaos: an EL shard dies, a link degrades, the checkpoint server blips,
  // and two ranks crash close together — all overlapping. Results must
  // still match the quiet run.
  ClusterConfig cfg = causal_cfg(6);
  cfg.el_shards = 2;
  const RunOutput ref = run_ring(cfg, 70);
  ASSERT_TRUE(ref.report.completed);
  const sim::Time t = ref.report.completion_time;

  ClusterConfig c2 = cfg;
  crash_el(c2, t / 5, 1);
  c2.campaign.el_failover_delay = 15 * sim::kMillisecond;
  c2.campaign.service_retry = 80 * sim::kMillisecond;
  {
    fault::Injection link;
    link.target = fault::Target::kLink;
    link.index = 4;
    link.at = t / 4;
    link.action = fault::Action::kDropWindow;
    link.duration = 10 * sim::kMillisecond;
    link.magnitude = 2 * sim::kMillisecond;
    c2.campaign.injections.push_back(link);
    fault::Injection cs;
    cs.target = fault::Target::kCkptServer;
    cs.at = t / 3;
    cs.action = fault::Action::kOutage;
    cs.duration = 50 * sim::kMillisecond;
    c2.campaign.injections.push_back(cs);
  }
  c2.faults.push_back(FaultSpec{t / 2, 3});
  c2.faults.push_back(FaultSpec{t / 2 + 2 * sim::kMillisecond, 0});
  RunOutput out = run_ring(c2, 70);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 2u);
  EXPECT_EQ(out.report.fault_counts.el_crashes, 1u);
  EXPECT_EQ(out.report.fault_counts.ckpt_outages, 1u);
  EXPECT_EQ(out.report.fault_counts.link_faults, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  // Every recovery carries a timeline record.
  EXPECT_EQ(out.report.recoveries.size(), 2u);
}

}  // namespace
}  // namespace mpiv
