// End-to-end tests of the full MPICH-V stack, driven through the scenario
// API: fault-free runs across all protocols produce identical application
// checksums, and — the crux of message logging — runs with injected
// crashes reproduce the exact fault-free results, including for wildcard
// (MPI_ANY_SOURCE) receptions whose delivery order only a correct
// determinant replay can reproduce.
#include <gtest/gtest.h>

#include "scenario/runner.hpp"

namespace mpiv {
namespace {

using scenario::RunResult;
using scenario::ScenarioBuilder;

RunResult run_ring(const scenario::ScenarioSpec& spec) {
  return scenario::run_spec(spec);
}

ScenarioBuilder base_scenario(const char* variant, int nranks = 4) {
  ScenarioBuilder b("integration");
  b.variant(variant)
      .nranks(nranks)
      .checkpoint(ckpt::Policy::kRoundRobin, 50 * sim::kMillisecond)
      .ring(/*laps=*/40, /*token_bytes=*/4096);
  return b;
}

TEST(FaultFree, VdummyRingCompletes) {
  const RunResult out = run_ring(base_scenario("vdummy").build());
  ASSERT_TRUE(out.completed);
  for (const std::uint64_t c : out.checksums) EXPECT_NE(c, 0u);
}

TEST(FaultFree, AllProtocolsAgreeOnRingChecksums) {
  const RunResult ref = run_ring(base_scenario("vdummy").build());
  ASSERT_TRUE(ref.completed);
  for (const char* v : {"p4", "vcausal:el", "vcausal:noel", "pessimistic",
                        "coordinated"}) {
    const RunResult out = run_ring(base_scenario(v).build());
    ASSERT_TRUE(out.completed) << "variant " << v;
    EXPECT_EQ(out.checksums, ref.checksums) << "variant " << v;
  }
}

TEST(FaultFree, CausalStrategiesAgree) {
  const RunResult ref = run_ring(base_scenario("vdummy").build());
  for (const char* v : {"vcausal:el", "vcausal:noel", "manetho:el",
                        "manetho:noel", "logon:el", "logon:noel"}) {
    const RunResult out = run_ring(base_scenario(v).build());
    ASSERT_TRUE(out.completed);
    EXPECT_EQ(out.checksums, ref.checksums) << v;
  }
}

// The central correctness claim: a crash + recovery reproduces the exact
// fault-free execution results. Parameterized over the scenario variant
// names of the six causal configurations.
class FaultRecovery : public ::testing::TestWithParam<const char*> {};

TEST_P(FaultRecovery, RingSurvivesMidRunCrash) {
  ScenarioBuilder b = base_scenario(GetParam());
  const RunResult ref = run_ring(b.build());
  ASSERT_TRUE(ref.completed);

  b.fault_at(ref.report.completion_time / 2, 1);
  const RunResult out = run_ring(b.build());
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_EQ(out.checksums, ref.checksums);
  EXPECT_GE(out.report.completion_time, ref.report.completion_time);
}

TEST_P(FaultRecovery, WildcardReplayReproducesDeliveryOrder) {
  // Phase 1 (wildcard storm) happens before the fault, phase 2 (ring) is
  // deterministic; with no checkpoints the crashed rank must replay all of
  // phase 1 from determinants. The order-sensitive checksum matches the
  // fault-free run iff every nondeterministic delivery order was replayed
  // exactly.
  ScenarioBuilder b("integration");
  b.variant(GetParam())
      .nranks(6)
      .random_then_ring(/*rand_iters=*/12, /*ring_laps=*/30, /*wseed=*/42,
                        /*bytes=*/2048);
  const RunResult ref = scenario::run_spec(b.build());
  ASSERT_TRUE(ref.completed);

  b.fault_at(ref.report.completion_time * 3 / 4, 2);
  const RunResult out = scenario::run_spec(b.build());
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_EQ(out.checksums, ref.checksums);
}

TEST_P(FaultRecovery, WildcardFaultRunIsDeterministic) {
  // A faulted wildcard run may legitimately diverge from the fault-free
  // order *after* the crash, but it must itself be reproducible.
  ScenarioBuilder b("integration");
  b.variant(GetParam())
      .nranks(6)
      .checkpoint(ckpt::Policy::kRoundRobin, 50 * sim::kMillisecond)
      .random_any(/*iterations=*/30, /*wseed=*/42, /*bytes=*/2048)
      .fault_at(120 * sim::kMillisecond, 2);
  const RunResult a = scenario::run_spec(b.build());
  const RunResult b_run = scenario::run_spec(b.build());
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b_run.completed);
  EXPECT_EQ(a.checksums, b_run.checksums);
  EXPECT_EQ(a.report.completion_time, b_run.report.completion_time);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, FaultRecovery,
                         ::testing::Values("vcausal:el", "vcausal:noel",
                                           "manetho:el", "manetho:noel",
                                           "logon:el", "logon:noel"),
                         [](const auto& info) {
                           std::string name = info.param;
                           const std::size_t colon = name.find(':');
                           return name.substr(0, colon) + "_" +
                                  (name.substr(colon + 1) == "el" ? "EL"
                                                                  : "noEL");
                         });

TEST(FaultRecovery, PessimisticSurvivesCrash) {
  ScenarioBuilder b = base_scenario("pessimistic");
  const RunResult ref = run_ring(b.build());
  ASSERT_TRUE(ref.completed);
  b.fault_at(ref.report.completion_time / 2, 0);
  const RunResult out = run_ring(b.build());
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.checksums, ref.checksums);
}

TEST(FaultRecovery, CoordinatedRollsEveryoneBack) {
  ScenarioBuilder b = base_scenario("coordinated");
  b.checkpoint(ckpt::Policy::kAllAtOnce, 80 * sim::kMillisecond);
  const RunResult ref = run_ring(b.build());
  ASSERT_TRUE(ref.completed);
  b.fault_at(ref.report.completion_time / 2, 3);
  const RunResult out = run_ring(b.build());
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.checksums, ref.checksums);
  EXPECT_GT(out.report.completion_time, ref.report.completion_time);
}

TEST(FaultRecovery, CrashBeforeFirstCheckpointRestartsFromScratch) {
  ScenarioBuilder b = base_scenario("vcausal:el");
  b.checkpoint(ckpt::Policy::kNone, 0);  // no checkpoints at all
  const RunResult ref = run_ring(b.build());
  ASSERT_TRUE(ref.completed);
  b.fault_at(ref.report.completion_time / 2, 1);
  const RunResult out = run_ring(b.build());
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.checksums, ref.checksums);
}

TEST(FaultRecovery, TwoSequentialFaults) {
  ScenarioBuilder b = base_scenario("vcausal:el");
  b.ring(/*laps=*/60, /*token_bytes=*/4096);
  const RunResult ref = run_ring(b.build());
  ASSERT_TRUE(ref.completed);
  b.fault_at(ref.report.completion_time / 4, 1);
  b.fault_at(ref.report.completion_time / 2, 2);
  const RunResult out = run_ring(b.build());
  ASSERT_TRUE(out.completed);
  EXPECT_EQ(out.report.faults_injected, 2u);
  EXPECT_EQ(out.checksums, ref.checksums);
}

TEST(FaultRecovery, MidrunFaultModeMatchesExplicitFault) {
  // The runner's midrun-fault mode (reference + crash at half completion)
  // is exactly the two-run pattern above, packaged.
  ScenarioBuilder b = base_scenario("vcausal:el");
  b.midrun_fault(/*rank=*/1);
  const RunResult out = scenario::run_spec(b.build());
  ASSERT_TRUE(out.completed);
  ASSERT_TRUE(out.has_reference);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_TRUE(out.recovered_exact);
  EXPECT_GE(out.report.completion_time, out.reference_time);
}

TEST(Determinism, IdenticalConfigIdenticalCompletionTime) {
  ScenarioBuilder b = base_scenario("vcausal:el");
  b.fault_at(200 * sim::kMillisecond, 1);
  const RunResult a = run_ring(b.build());
  const RunResult c = run_ring(b.build());
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(a.report.completion_time, c.report.completion_time);
  EXPECT_EQ(a.checksums, c.checksums);
}

}  // namespace
}  // namespace mpiv
