// End-to-end tests of the full MPICH-V stack: fault-free runs across all
// protocols produce identical application checksums, and — the crux of
// message logging — runs with injected crashes reproduce the exact
// fault-free results, including for wildcard (MPI_ANY_SOURCE) receptions
// whose delivery order only a correct determinant replay can reproduce.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "workloads/apps.hpp"

namespace mpiv {
namespace {

using runtime::Cluster;
using runtime::ClusterConfig;
using runtime::ClusterReport;
using runtime::FaultSpec;
using runtime::ProtocolKind;
using workloads::ChecksumResult;

struct RunOutput {
  ClusterReport report;
  ChecksumResult checksums{0};
};

RunOutput run_ring(ClusterConfig cfg, int laps = 40) {
  auto result = std::make_shared<ChecksumResult>(cfg.nranks);
  Cluster cluster(cfg);
  ClusterReport rep =
      cluster.run(workloads::make_ring_app(laps, 4096, result));
  return {rep, *result};
}

RunOutput run_random(ClusterConfig cfg, int iters = 30) {
  auto result = std::make_shared<ChecksumResult>(cfg.nranks);
  Cluster cluster(cfg);
  ClusterReport rep =
      cluster.run(workloads::make_random_any_app(iters, 42, 2048, result));
  return {rep, *result};
}

ClusterConfig base_cfg(ProtocolKind p, int nranks = 4) {
  ClusterConfig cfg;
  cfg.nranks = nranks;
  cfg.protocol = p;
  cfg.ckpt_policy = ckpt::Policy::kRoundRobin;
  cfg.ckpt_interval = 50 * sim::kMillisecond;
  return cfg;
}

TEST(FaultFree, VdummyRingCompletes) {
  RunOutput out = run_ring(base_cfg(ProtocolKind::kVdummy));
  ASSERT_TRUE(out.report.completed);
  for (const std::uint64_t c : out.checksums.checksums) EXPECT_NE(c, 0u);
}

TEST(FaultFree, AllProtocolsAgreeOnRingChecksums) {
  const RunOutput ref = run_ring(base_cfg(ProtocolKind::kVdummy));
  ASSERT_TRUE(ref.report.completed);
  for (ProtocolKind p : {ProtocolKind::kP4, ProtocolKind::kCausal,
                         ProtocolKind::kPessimistic, ProtocolKind::kCoordinated}) {
    for (bool el : {true, false}) {
      if (p != ProtocolKind::kCausal && !el) continue;
      ClusterConfig cfg = base_cfg(p);
      cfg.event_logger = el;
      RunOutput out = run_ring(cfg);
      ASSERT_TRUE(out.report.completed)
          << "protocol " << static_cast<int>(p) << " el=" << el;
      EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums)
          << "protocol " << static_cast<int>(p) << " el=" << el;
    }
  }
}

TEST(FaultFree, CausalStrategiesAgree) {
  const RunOutput ref = run_ring(base_cfg(ProtocolKind::kVdummy));
  for (causal::StrategyKind s :
       {causal::StrategyKind::kVcausal, causal::StrategyKind::kManetho,
        causal::StrategyKind::kLogOn}) {
    for (bool el : {true, false}) {
      ClusterConfig cfg = base_cfg(ProtocolKind::kCausal);
      cfg.strategy = s;
      cfg.event_logger = el;
      RunOutput out = run_ring(cfg);
      ASSERT_TRUE(out.report.completed);
      EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums)
          << causal::strategy_kind_name(s) << " el=" << el;
    }
  }
}

// The central correctness claim: a crash + recovery reproduces the exact
// fault-free execution results.
class FaultRecovery
    : public ::testing::TestWithParam<std::tuple<causal::StrategyKind, bool>> {};

TEST_P(FaultRecovery, RingSurvivesMidRunCrash) {
  const auto [strategy, el] = GetParam();
  ClusterConfig cfg = base_cfg(ProtocolKind::kCausal);
  cfg.strategy = strategy;
  cfg.event_logger = el;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);

  cfg.faults.push_back(FaultSpec{ref.report.completion_time / 2, 1});
  RunOutput out = run_ring(cfg);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  EXPECT_GE(out.report.completion_time, ref.report.completion_time);
}

TEST_P(FaultRecovery, WildcardReplayReproducesDeliveryOrder) {
  // Phase 1 (wildcard storm) happens before the fault, phase 2 (ring) is
  // deterministic; with no checkpoints the crashed rank must replay all of
  // phase 1 from determinants. The order-sensitive checksum matches the
  // fault-free run iff every nondeterministic delivery order was replayed
  // exactly.
  const auto [strategy, el] = GetParam();
  ClusterConfig cfg = base_cfg(ProtocolKind::kCausal, 6);
  cfg.ckpt_policy = ckpt::Policy::kNone;
  cfg.ckpt_interval = 0;
  cfg.strategy = strategy;
  cfg.event_logger = el;
  auto run_it = [&cfg] {
    auto result = std::make_shared<ChecksumResult>(cfg.nranks);
    Cluster cluster(cfg);
    ClusterReport rep = cluster.run(
        workloads::make_random_then_ring_app(12, 30, 42, 2048, result));
    return RunOutput{rep, *result};
  };
  const RunOutput ref = run_it();
  ASSERT_TRUE(ref.report.completed);

  cfg.faults.push_back(FaultSpec{ref.report.completion_time * 3 / 4, 2});
  RunOutput out = run_it();
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 1u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST_P(FaultRecovery, WildcardFaultRunIsDeterministic) {
  // A faulted wildcard run may legitimately diverge from the fault-free
  // order *after* the crash, but it must itself be reproducible.
  const auto [strategy, el] = GetParam();
  ClusterConfig cfg = base_cfg(ProtocolKind::kCausal, 6);
  cfg.strategy = strategy;
  cfg.event_logger = el;
  cfg.faults.push_back(FaultSpec{120 * sim::kMillisecond, 2});
  const RunOutput a = run_random(cfg);
  const RunOutput b = run_random(cfg);
  ASSERT_TRUE(a.report.completed);
  ASSERT_TRUE(b.report.completed);
  EXPECT_EQ(a.checksums.checksums, b.checksums.checksums);
  EXPECT_EQ(a.report.completion_time, b.report.completion_time);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, FaultRecovery,
    ::testing::Combine(::testing::Values(causal::StrategyKind::kVcausal,
                                         causal::StrategyKind::kManetho,
                                         causal::StrategyKind::kLogOn),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(causal::strategy_kind_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_EL" : "_noEL");
    });

TEST(FaultRecovery, PessimisticSurvivesCrash) {
  ClusterConfig cfg = base_cfg(ProtocolKind::kPessimistic);
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  cfg.faults.push_back(FaultSpec{ref.report.completion_time / 2, 0});
  RunOutput out = run_ring(cfg);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(FaultRecovery, CoordinatedRollsEveryoneBack) {
  ClusterConfig cfg = base_cfg(ProtocolKind::kCoordinated);
  cfg.ckpt_policy = ckpt::Policy::kAllAtOnce;
  cfg.ckpt_interval = 80 * sim::kMillisecond;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  cfg.faults.push_back(FaultSpec{ref.report.completion_time / 2, 3});
  RunOutput out = run_ring(cfg);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
  EXPECT_GT(out.report.completion_time, ref.report.completion_time);
}

TEST(FaultRecovery, CrashBeforeFirstCheckpointRestartsFromScratch) {
  ClusterConfig cfg = base_cfg(ProtocolKind::kCausal);
  cfg.ckpt_policy = ckpt::Policy::kNone;  // no checkpoints at all
  cfg.ckpt_interval = 0;
  const RunOutput ref = run_ring(cfg);
  ASSERT_TRUE(ref.report.completed);
  cfg.faults.push_back(FaultSpec{ref.report.completion_time / 2, 1});
  RunOutput out = run_ring(cfg);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(FaultRecovery, TwoSequentialFaults) {
  ClusterConfig cfg = base_cfg(ProtocolKind::kCausal);
  const RunOutput ref = run_ring(cfg, 60);
  ASSERT_TRUE(ref.report.completed);
  cfg.faults.push_back(FaultSpec{ref.report.completion_time / 4, 1});
  cfg.faults.push_back(FaultSpec{ref.report.completion_time / 2, 2});
  RunOutput out = run_ring(cfg, 60);
  ASSERT_TRUE(out.report.completed);
  EXPECT_EQ(out.report.faults_injected, 2u);
  EXPECT_EQ(out.checksums.checksums, ref.checksums.checksums);
}

TEST(Determinism, IdenticalConfigIdenticalCompletionTime) {
  ClusterConfig cfg = base_cfg(ProtocolKind::kCausal);
  cfg.faults.push_back(FaultSpec{200 * sim::kMillisecond, 1});
  const RunOutput a = run_ring(cfg);
  const RunOutput b = run_ring(cfg);
  ASSERT_TRUE(a.report.completed);
  EXPECT_EQ(a.report.completion_time, b.report.completion_time);
  EXPECT_EQ(a.checksums.checksums, b.checksums.checksums);
}

}  // namespace
}  // namespace mpiv
