// Determinism-regression fingerprints for the hot-path storage/engine work.
//
// Runs one small mixed workload (wildcard traffic, then a ring) under every
// causal strategy with and without the Event Logger and asserts that the
// simulation fingerprint — events executed, wire bytes, piggyback bytes —
// is byte-identical to golden values recorded before the sequence-indexed
// storage and engine-lane rewrites. Any storage or scheduling change that
// alters *semantics* (rather than host-side speed) moves at least one of
// these counters; a refactor that keeps them is provably behaviour-
// preserving for everything the paper measures.
#include <gtest/gtest.h>

#include "runtime/cluster.hpp"
#include "workloads/apps.hpp"

namespace mpiv {
namespace {

struct Fingerprint {
  std::uint64_t events_executed = 0;  // sim::Engine events (scheduling trace)
  std::uint64_t wire_bytes = 0;       // every byte on the fabric
  std::uint64_t pb_bytes = 0;         // causal piggyback bytes (Fig. 7 input)
  std::uint64_t checksum = 0;         // order-sensitive app checksum
};

Fingerprint run_variant(causal::StrategyKind strategy, bool el, bool ckpt) {
  runtime::ClusterConfig cfg;
  cfg.nranks = 4;
  cfg.protocol = runtime::ProtocolKind::kCausal;
  cfg.strategy = strategy;
  cfg.event_logger = el;
  cfg.seed = 7;
  if (ckpt) {
    // Round-robin checkpoints exercise the GC paths: sender-log pruning,
    // Event Logger pruning, and stable-clock advances on the stores.
    cfg.ckpt_policy = ckpt::Policy::kRoundRobin;
    cfg.ckpt_interval = 5 * sim::kMillisecond;
  }
  auto result = std::make_shared<workloads::ChecksumResult>(cfg.nranks);
  runtime::Cluster cluster(cfg);
  runtime::ClusterReport rep = cluster.run(
      ckpt ? workloads::make_random_any_app(24, 7, 2048, result)
           : workloads::make_random_then_ring_app(6, 4, 7, 2048, result));
  EXPECT_TRUE(rep.completed);
  Fingerprint fp;
  fp.events_executed = cluster.engine().events_executed();
  fp.wire_bytes = cluster.network().bytes_sent();
  fp.pb_bytes = rep.totals().pb_bytes_sent;
  for (std::uint64_t c : result->checksums) fp.checksum = workloads::word(fp.checksum, c, 0x5eedULL);
  return fp;
}

struct Golden {
  causal::StrategyKind strategy;
  bool el;
  bool ckpt;
  Fingerprint fp;
};

// Recorded from the pre-refactor tree (std::map storage, std::function
// engine). The refactor must reproduce these exactly.
const Golden kGolden[] = {
    {causal::StrategyKind::kVcausal, true, false, {1431ull, 113312ull, 5016ull, 0xd2b99efda9bae7f3ull}},
    {causal::StrategyKind::kVcausal, false, false, {730ull, 98120ull, 8832ull, 0xa1c6926540643335ull}},
    {causal::StrategyKind::kManetho, true, false, {1431ull, 113312ull, 5016ull, 0xd2b99efda9bae7f3ull}},
    {causal::StrategyKind::kManetho, false, false, {730ull, 97798ull, 8510ull, 0xa1c6926540643335ull}},
    {causal::StrategyKind::kLogOn, true, false, {1431ull, 113560ull, 5264ull, 0xd2b99efda9bae7f3ull}},
    {causal::StrategyKind::kLogOn, false, false, {730ull, 99616ull, 10328ull, 0xa1c6926540643335ull}},
    {causal::StrategyKind::kVcausal, true, true, {6818ull, 4784224ull, 11968ull, 0x85929bbaddbf9432ull}},
    {causal::StrategyKind::kManetho, true, true, {6819ull, 4784224ull, 11968ull, 0x85929bbaddbf9432ull}},
    {causal::StrategyKind::kLogOn, true, true, {6819ull, 4784832ull, 12576ull, 0x85929bbaddbf9432ull}},
};

TEST(Determinism, FingerprintMatchesGolden) {
  for (const Golden& g : kGolden) {
    const Fingerprint fp = run_variant(g.strategy, g.el, g.ckpt);
    SCOPED_TRACE(testing::Message()
                 << causal::strategy_kind_name(g.strategy)
                 << (g.el ? " (EL)" : " (no EL)") << (g.ckpt ? " +ckpt" : ""));
    if (g.fp.events_executed == 0) {
      // Recording mode: goldens not yet baked in — print what to record.
      std::printf("GOLDEN {causal::StrategyKind::k%s, %s, %s, {%lluull, %lluull, %lluull, 0x%llxull}},\n",
                  causal::strategy_kind_name(g.strategy), g.el ? "true" : "false",
                  g.ckpt ? "true" : "false",
                  static_cast<unsigned long long>(fp.events_executed),
                  static_cast<unsigned long long>(fp.wire_bytes),
                  static_cast<unsigned long long>(fp.pb_bytes),
                  static_cast<unsigned long long>(fp.checksum));
      ADD_FAILURE() << "golden values not recorded yet";
      continue;
    }
    EXPECT_EQ(fp.events_executed, g.fp.events_executed);
    EXPECT_EQ(fp.wire_bytes, g.fp.wire_bytes);
    EXPECT_EQ(fp.pb_bytes, g.fp.pb_bytes);
    EXPECT_EQ(fp.checksum, g.fp.checksum);
  }
}

// The run is a pure function of the config: two identical runs in one
// process must produce identical fingerprints (catches hidden global state
// or address-dependent ordering in the storage containers).
TEST(Determinism, RepeatRunIsIdentical) {
  const Fingerprint a = run_variant(causal::StrategyKind::kManetho, true, true);
  const Fingerprint b = run_variant(causal::StrategyKind::kManetho, true, true);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.pb_bytes, b.pb_bytes);
  EXPECT_EQ(a.checksum, b.checksum);
}

}  // namespace
}  // namespace mpiv
