// Determinism-regression fingerprints for the hot-path storage/engine work
// — now driven through the scenario layer.
//
// Runs one small mixed workload (wildcard traffic, then a ring) under every
// causal variant with and without the Event Logger and asserts that the
// simulation fingerprint — events executed, wire bytes, piggyback bytes —
// is byte-identical to golden values recorded before the sequence-indexed
// storage and engine-lane rewrites. Any storage or scheduling change that
// alters *semantics* (rather than host-side speed) moves at least one of
// these counters; a refactor that keeps them is provably behaviour-
// preserving for everything the paper measures. Because the runs are built
// from ScenarioSpecs, the goldens also pin the spec -> ClusterConfig
// lowering: if the scenario layer lowered anything differently from the
// hand-built configs these values were recorded with, every row would move.
#include <gtest/gtest.h>

#include "scenario/runner.hpp"

namespace mpiv {
namespace {

struct Fingerprint {
  std::uint64_t events_executed = 0;  // sim::Engine events (scheduling trace)
  std::uint64_t wire_bytes = 0;       // every byte on the fabric
  std::uint64_t pb_bytes = 0;         // causal piggyback bytes (Fig. 7 input)
  std::uint64_t checksum = 0;         // order-sensitive app checksum
};

Fingerprint run_variant(const char* variant, bool ckpt, bool traced = false,
                        bool metered = false) {
  scenario::ScenarioBuilder b("determinism");
  b.variant(variant).nranks(4).seed(7);
  if (traced) b.trace();
  if (metered) b.metrics().metrics_sample_interval(100 * sim::kMicrosecond);
  if (ckpt) {
    // Round-robin checkpoints exercise the GC paths: sender-log pruning,
    // Event Logger pruning, and stable-clock advances on the stores.
    b.checkpoint(ckpt::Policy::kRoundRobin, 5 * sim::kMillisecond);
    b.random_any(/*iterations=*/24, /*wseed=*/7, /*bytes=*/2048);
  } else {
    b.random_then_ring(/*rand_iters=*/6, /*ring_laps=*/4, /*wseed=*/7,
                       /*bytes=*/2048);
  }
  const scenario::RunResult r = scenario::run_spec(b.build());
  EXPECT_TRUE(r.completed);
  Fingerprint fp;
  fp.events_executed = r.events_executed;
  fp.wire_bytes = r.wire_bytes;
  fp.pb_bytes = r.report.totals().pb_bytes_sent;
  fp.checksum = r.checksum_digest();
  return fp;
}

struct Golden {
  const char* variant;
  bool ckpt;
  Fingerprint fp;
};

// Recorded from the pre-refactor tree (std::map storage, std::function
// engine, hand-built ClusterConfigs). The scenario lowering must
// reproduce these exactly.
const Golden kGolden[] = {
    {"vcausal:el", false, {1431ull, 113312ull, 5016ull, 0xd2b99efda9bae7f3ull}},
    {"vcausal:noel", false, {730ull, 98120ull, 8832ull, 0xa1c6926540643335ull}},
    {"manetho:el", false, {1431ull, 113312ull, 5016ull, 0xd2b99efda9bae7f3ull}},
    {"manetho:noel", false, {730ull, 97798ull, 8510ull, 0xa1c6926540643335ull}},
    {"logon:el", false, {1431ull, 113560ull, 5264ull, 0xd2b99efda9bae7f3ull}},
    {"logon:noel", false, {730ull, 99616ull, 10328ull, 0xa1c6926540643335ull}},
    {"vcausal:el", true, {6818ull, 4784224ull, 11968ull, 0x85929bbaddbf9432ull}},
    {"manetho:el", true, {6819ull, 4784224ull, 11968ull, 0x85929bbaddbf9432ull}},
    {"logon:el", true, {6819ull, 4784832ull, 12576ull, 0x85929bbaddbf9432ull}},
};

TEST(Determinism, FingerprintMatchesGolden) {
  for (const Golden& g : kGolden) {
    const Fingerprint fp = run_variant(g.variant, g.ckpt);
    SCOPED_TRACE(testing::Message()
                 << g.variant << (g.ckpt ? " +ckpt" : ""));
    if (g.fp.events_executed == 0) {
      // Recording mode: goldens not yet baked in — print what to record.
      std::printf("GOLDEN {\"%s\", %s, {%lluull, %lluull, %lluull, 0x%llxull}},\n",
                  g.variant, g.ckpt ? "true" : "false",
                  static_cast<unsigned long long>(fp.events_executed),
                  static_cast<unsigned long long>(fp.wire_bytes),
                  static_cast<unsigned long long>(fp.pb_bytes),
                  static_cast<unsigned long long>(fp.checksum));
      ADD_FAILURE() << "golden values not recorded yet";
      continue;
    }
    EXPECT_EQ(fp.events_executed, g.fp.events_executed);
    EXPECT_EQ(fp.wire_bytes, g.fp.wire_bytes);
    EXPECT_EQ(fp.pb_bytes, g.fp.pb_bytes);
    EXPECT_EQ(fp.checksum, g.fp.checksum);
  }
}

// Trace capture must be schedule-neutral: a lane write is a struct copy
// stamped with the engine clock, never an event or an allocation the
// engine can observe. Every golden row must therefore be byte-identical
// with tracing on — if enabling lanes moves any counter, capture leaked
// into the simulation.
TEST(Determinism, TraceCaptureDoesNotPerturbTheGoldens) {
  for (const Golden& g : kGolden) {
    const Fingerprint fp = run_variant(g.variant, g.ckpt, /*traced=*/true);
    SCOPED_TRACE(testing::Message()
                 << g.variant << (g.ckpt ? " +ckpt" : "") << " +trace");
    EXPECT_EQ(fp.events_executed, g.fp.events_executed);
    EXPECT_EQ(fp.wire_bytes, g.fp.wire_bytes);
    EXPECT_EQ(fp.pb_bytes, g.fp.pb_bytes);
    EXPECT_EQ(fp.checksum, g.fp.checksum);
  }
}

// Metrics capture rides the engine's observation side-channel: instruments
// are plain accumulation and the gauge sampler fires between events without
// scheduling anything. Every golden row must therefore be byte-identical
// with metrics on — if arming the sampler moves any counter, the metrics
// layer leaked into the simulation.
TEST(Determinism, MetricsCaptureDoesNotPerturbTheGoldens) {
  for (const Golden& g : kGolden) {
    const Fingerprint fp =
        run_variant(g.variant, g.ckpt, /*traced=*/false, /*metered=*/true);
    SCOPED_TRACE(testing::Message()
                 << g.variant << (g.ckpt ? " +ckpt" : "") << " +metrics");
    EXPECT_EQ(fp.events_executed, g.fp.events_executed);
    EXPECT_EQ(fp.wire_bytes, g.fp.wire_bytes);
    EXPECT_EQ(fp.pb_bytes, g.fp.pb_bytes);
    EXPECT_EQ(fp.checksum, g.fp.checksum);
  }
}

// The run is a pure function of the config: two identical runs in one
// process must produce identical fingerprints (catches hidden global state
// or address-dependent ordering in the storage containers).
TEST(Determinism, RepeatRunIsIdentical) {
  const Fingerprint a = run_variant("manetho:el", true);
  const Fingerprint b = run_variant("manetho:el", true);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.pb_bytes, b.pb_bytes);
  EXPECT_EQ(a.checksum, b.checksum);
}

// A scenario spec that parses from text lowers to the exact same run as
// the equivalent builder spec (the file format is a faithful face of the
// API, not an approximation).
TEST(Determinism, ParsedScenarioMatchesBuilderScenario) {
  const char* text =
      "[scenario]\n"
      "name = determinism\n"
      "variant = manetho:el\n"
      "nranks = 4\n"
      "seed = 7\n"
      "ckpt_policy = round-robin\n"
      "ckpt_interval = 5ms\n"
      "workload = random_any\n"
      "workload.iters = 24\n"
      "workload.seed = 7\n"
      "workload.bytes = 2048\n";
  const scenario::RunResult r =
      scenario::run_spec(scenario::parse_scenario_text(text));
  const Fingerprint direct = run_variant("manetho:el", true);
  EXPECT_EQ(r.events_executed, direct.events_executed);
  EXPECT_EQ(r.wire_bytes, direct.wire_bytes);
  EXPECT_EQ(r.report.totals().pb_bytes_sent, direct.pb_bytes);
  EXPECT_EQ(r.checksum_digest(), direct.checksum);
}

}  // namespace
}  // namespace mpiv
