// End-to-end tests for the non-logging recovery-protocol families: the
// replication hybrid (hot shadow, crash-transparent promotion) and
// ULFM-style shrink-and-repair (survivors revoke, rebuild and continue
// without the victim). Both plug in through the scenario registry, so the
// tests drive them exactly the way mpiv_run does.
#include <gtest/gtest.h>

#include "scenario/registry.hpp"
#include "scenario/runner.hpp"

namespace mpiv {
namespace {

using scenario::Outcome;
using scenario::ScenarioBuilder;

// ---------------------------------------------------------------------------
// Replica hybrid
// ---------------------------------------------------------------------------

TEST(Replica, CrashIsTransparent) {
  ScenarioBuilder b("replica_crash");
  b.variant("replica")
      .nranks(4)
      .ring(/*laps=*/40, /*token_bytes=*/1024)
      .detection_delay(2 * sim::kMillisecond)
      .fault_at(30 * sim::kMillisecond, 1)
      .compare_reference();
  const scenario::RunResult r = scenario::run_spec(b.build());

  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.report.faults_injected, 1u);
  // The defining property: no rollback and no replay — the shadow already
  // holds the state, so the recovery timeline has no restart records and
  // nothing was ever replayed.
  EXPECT_TRUE(r.report.recoveries.empty());
  EXPECT_EQ(r.report.totals().replayed_receptions, 0u);
  ASSERT_EQ(r.report.promotions.size(), 1u);
  EXPECT_EQ(r.report.promotions[0].rank, 1);
  EXPECT_TRUE(r.report.promotions[0].complete());
  // Nothing was lost, so the run reproduces the fault-free reference.
  EXPECT_TRUE(r.recovered_exact);
  EXPECT_EQ(r.outcome(), Outcome::kRecoveredExact);
}

TEST(Replica, SteadyStateIsPriced) {
  ScenarioBuilder b("replica_price");
  b.variant("replica")
      .nranks(4)
      .replica_sync_interval(4)
      .ring(/*laps=*/40, /*token_bytes=*/2048);
  const scenario::RunResult r = scenario::run_spec(b.build());

  ASSERT_TRUE(r.completed);
  const ftapi::RankStats t = r.report.totals();
  // The visible slice of the 2x compute: every send mirrors its payload.
  EXPECT_GT(t.replica_mirror_cpu, 0);
  // Shadow-sync frames are real fabric traffic, one per sync_interval sends.
  EXPECT_GT(t.replica_sync_msgs, 0u);
  EXPECT_GT(t.replica_sync_bytes, 0u);
  EXPECT_GE(t.app_msgs_sent / 4, t.replica_sync_msgs);
}

TEST(Replica, PromotionsOfDistinctRanksOverlap) {
  // Two crashes inside one detection window: promotions do not serialize
  // (there is no shared recovery resource to contend for).
  ScenarioBuilder b("replica_two");
  b.variant("replica")
      .nranks(4)
      .ring(/*laps=*/40, /*token_bytes=*/1024)
      .detection_delay(5 * sim::kMillisecond)
      .fault_at(30 * sim::kMillisecond, 1)
      .fault_at(31 * sim::kMillisecond, 2);
  const scenario::RunResult r = scenario::run_spec(b.build());

  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.report.faults_injected, 2u);
  EXPECT_TRUE(r.report.recoveries.empty());
  ASSERT_EQ(r.report.promotions.size(), 2u);
  EXPECT_TRUE(r.report.promotions[0].complete());
  EXPECT_TRUE(r.report.promotions[1].complete());
}

// ---------------------------------------------------------------------------
// ULFM shrink-and-repair
// ---------------------------------------------------------------------------

TEST(Ulfm, ShrinkAndRepairContinuesWithSurvivors) {
  ScenarioBuilder b("ulfm_crash");
  b.variant("ulfm")
      .nranks(4)
      .ring(/*laps=*/40, /*token_bytes=*/1024)
      .detection_delay(2 * sim::kMillisecond)
      .ulfm_repair_cost(5 * sim::kMillisecond)
      .fault_at(30 * sim::kMillisecond, 1)
      .compare_reference();
  const scenario::RunResult r = scenario::run_spec(b.build());

  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.report.faults_injected, 1u);
  // No restart/replay machinery: the victim stays dead.
  EXPECT_TRUE(r.report.recoveries.empty());
  ASSERT_EQ(r.report.repairs.size(), 1u);
  const fault::RepairRecord& rec = r.report.repairs[0];
  EXPECT_EQ(rec.victim, 1);
  EXPECT_EQ(rec.survivors, 3);
  EXPECT_TRUE(rec.complete());
  EXPECT_GT(rec.repair_ns(), 0);
  // Each of the three survivors saw the revoke and rebuilt once.
  const ftapi::RankStats t = r.report.totals();
  EXPECT_EQ(t.ulfm_revokes_seen, 3u);
  EXPECT_EQ(t.ulfm_repairs, 3u);
  // A shrunk run cannot match the nranks-wide reference — it classifies as
  // completed_shrunk, strictly better than a bare completion.
  EXPECT_FALSE(r.recovered_exact);
  EXPECT_EQ(r.outcome(), Outcome::kCompletedShrunk);
}

TEST(Ulfm, SecondCrashShrinksAgain) {
  ScenarioBuilder b("ulfm_twice");
  b.variant("ulfm")
      .nranks(4)
      .ring(/*laps=*/60, /*token_bytes=*/1024)
      .detection_delay(2 * sim::kMillisecond)
      .ulfm_repair_cost(5 * sim::kMillisecond)
      .fault_at(20 * sim::kMillisecond, 3)
      .fault_at(60 * sim::kMillisecond, 1);
  const scenario::RunResult r = scenario::run_spec(b.build());

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.report.repairs.size(), 2u);
  EXPECT_EQ(r.report.repairs[0].victim, 3);
  EXPECT_EQ(r.report.repairs[0].survivors, 3);
  EXPECT_EQ(r.report.repairs[1].victim, 1);
  EXPECT_EQ(r.report.repairs[1].survivors, 2);
  EXPECT_TRUE(r.report.repairs[0].complete());
  EXPECT_TRUE(r.report.repairs[1].complete());
  EXPECT_EQ(r.outcome(), Outcome::kCompletedShrunk);
}

TEST(Ulfm, SoleSurvivorStillFinishes) {
  // Shrinking a 2-rank job leaves one survivor; the ring degenerates to
  // its compute phase and the run still completes (shrunk).
  ScenarioBuilder b("ulfm_sole");
  b.variant("ulfm")
      .nranks(2)
      .ring(/*laps=*/30, /*token_bytes=*/1024)
      .detection_delay(2 * sim::kMillisecond)
      .ulfm_repair_cost(5 * sim::kMillisecond)
      .fault_at(10 * sim::kMillisecond, 0);
  const scenario::RunResult r = scenario::run_spec(b.build());

  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.report.repairs.size(), 1u);
  EXPECT_EQ(r.report.repairs[0].survivors, 1);
  EXPECT_TRUE(r.report.repairs[0].complete());
  EXPECT_EQ(r.outcome(), Outcome::kCompletedShrunk);
}

TEST(Ulfm, AllDeadIsAbandonment) {
  // The second crash lands inside the first repair window and kills the
  // last survivor: nobody is left to rebuild with, so the run can only be
  // abandoned — it must NOT report completion off a done-set full of
  // corpses.
  ScenarioBuilder b("ulfm_wipeout");
  b.variant("ulfm")
      .nranks(2)
      .ring(/*laps=*/30, /*token_bytes=*/1024)
      .detection_delay(2 * sim::kMillisecond)
      .ulfm_repair_cost(10 * sim::kMillisecond)
      .fault_at(10 * sim::kMillisecond, 0)
      .fault_at(15 * sim::kMillisecond, 1);
  const scenario::RunResult r = scenario::run_spec(b.build());

  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.outcome(), Outcome::kAbandoned);
  ASSERT_EQ(r.report.repairs.size(), 2u);
  EXPECT_EQ(r.report.repairs[1].survivors, 0);
}

// ---------------------------------------------------------------------------
// payload_at_sender (causal satellite)
// ---------------------------------------------------------------------------

TEST(PayloadAtSender, SkipsTheCopyAndKeepsTheAnswer) {
  const auto run = [](bool at_sender) {
    ScenarioBuilder b(at_sender ? "pas_on" : "pas_off");
    b.variant("vcausal:el")
        .nranks(4)
        .ring(/*laps=*/40, /*token_bytes=*/65536)
        .payload_at_sender(at_sender);
    return scenario::run_spec(b.build());
  };
  const scenario::RunResult off = run(false);
  const scenario::RunResult on = run(true);

  ASSERT_TRUE(off.completed);
  ASSERT_TRUE(on.completed);
  // Same computation, so identical checksums...
  EXPECT_EQ(on.checksums, off.checksums);
  // ...but the per-byte daemon-side copy is off the critical path.
  EXPECT_LT(on.report.completion_time, off.report.completion_time);
  // Retention is still priced: the sender-log watermark is unchanged.
  EXPECT_EQ(on.report.totals().sender_log_peak_bytes,
            off.report.totals().sender_log_peak_bytes);
}

TEST(PayloadAtSender, StillRecoversExactly) {
  ScenarioBuilder b("pas_recover");
  b.variant("vcausal:el")
      .nranks(4)
      .checkpoint(ckpt::Policy::kRoundRobin, 20 * sim::kMillisecond)
      .ring(/*laps=*/30, /*token_bytes=*/1024)
      .payload_at_sender()
      .midrun_fault(/*rank=*/2);
  const scenario::RunResult r = scenario::run_spec(b.build());
  ASSERT_TRUE(r.completed);
  EXPECT_TRUE(r.recovered_exact);
}

}  // namespace
}  // namespace mpiv
