#include "runtime/cluster.hpp"

#include "causal/causal_protocol.hpp"
#include "coord/coordinated_protocol.hpp"
#include "ftapi/vprotocol.hpp"
#include "pessimist/pessimistic_protocol.hpp"

namespace mpiv::runtime {

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(cfg),
      layout_{cfg.nranks, cfg.el_shards},
      net_(eng_, layout_.total_nodes(), cfg.cost),
      stats_(static_cast<std::size_t>(cfg.nranks)) {
  MPIV_CHECK(cfg.nranks >= 1 && cfg.nranks <= 4096, "bad nranks %d", cfg.nranks);
  MPIV_CHECK(cfg.el_shards >= 1 && cfg.el_shards <= cfg.nranks,
             "bad el_shards %d", cfg.el_shards);
  MPIV_CHECK(cfg.protocol != ProtocolKind::kP4 || cfg.faults.empty(),
             "MPICH-P4 is not fault tolerant");
  if (cfg_.protocol == ProtocolKind::kCoordinated &&
      cfg_.ckpt_policy != ckpt::Policy::kNone) {
    // Coordinated checkpointing is a global wave by construction.
    cfg_.ckpt_policy = ckpt::Policy::kAllAtOnce;
  }

  const net::ChannelKind channel = cfg.protocol == ProtocolKind::kP4
                                       ? net::ChannelKind::kP4
                                       : net::ChannelKind::kV;
  for (int r = 0; r < cfg.nranks; ++r) {
    ranks_.push_back(std::make_unique<mpi::RankRuntime>(
        eng_, net_, layout_, r, channel, make_protocol(),
        &stats_[static_cast<std::size_t>(r)], cfg.seed));
    ranks_.back()->set_process(
        &eng_.create_process("rank" + std::to_string(r)));
  }
  for (int shard = 0; shard < cfg.el_shards; ++shard) {
    els_.push_back(
        std::make_unique<elog::EventLogger>(net_, layout_, &el_stats_, shard));
  }
  ckpt_ = std::make_unique<ckpt::CheckpointServer>(net_, layout_);
  sched_ = std::make_unique<ckpt::CheckpointScheduler>(
      net_, layout_, cfg.ckpt_policy, cfg.ckpt_interval, cfg.seed);
}

Cluster::~Cluster() = default;

std::unique_ptr<ftapi::VProtocol> Cluster::make_protocol() const {
  switch (cfg_.protocol) {
    case ProtocolKind::kP4:
    case ProtocolKind::kVdummy:
      return std::make_unique<ftapi::Vdummy>();
    case ProtocolKind::kCausal:
      return std::make_unique<causal::CausalProtocol>(cfg_.strategy,
                                                      cfg_.event_logger);
    case ProtocolKind::kPessimistic:
      return std::make_unique<pessimist::PessimisticProtocol>();
    case ProtocolKind::kCoordinated:
      return std::make_unique<coord::CoordinatedProtocol>();
  }
  MPIV_PANIC("bad protocol kind %d", static_cast<int>(cfg_.protocol));
}

std::string Cluster::protocol_label() const {
  switch (cfg_.protocol) {
    case ProtocolKind::kP4:
      return "MPICH-P4";
    case ProtocolKind::kVdummy:
      return "MPICH-Vdummy";
    case ProtocolKind::kCausal:
      return std::string(causal::strategy_kind_name(cfg_.strategy)) +
             (cfg_.event_logger ? " (EL)" : " (no EL)");
    case ProtocolKind::kPessimistic:
      return "Pessimistic";
    case ProtocolKind::kCoordinated:
      return "Coordinated (Chandy-Lamport)";
  }
  return "?";
}

ClusterReport Cluster::run(mpi::AppFactory factory) {
  dispatcher_ = std::make_unique<Dispatcher>(
      net_, layout_, [this] {
        std::vector<mpi::RankRuntime*> v;
        for (auto& r : ranks_) v.push_back(r.get());
        return v;
      }(),
      factory, cfg_.protocol == ProtocolKind::kCoordinated,
      cfg_.detection_delay);
  dispatcher_->arm_faults(cfg_.faults, cfg_.faults_per_minute, cfg_.seed);
  sched_->start();
  dispatcher_->launch_all();

  if (cfg_.max_sim_time > 0) {
    eng_.run_until(cfg_.max_sim_time);
  } else {
    eng_.run();
  }

  ClusterReport rep;
  rep.completed = dispatcher_->all_done();
  rep.completion_time = dispatcher_->completion_time();
  rep.faults_injected = dispatcher_->faults_injected();
  rep.rank_stats = stats_;
  rep.el_stats = el_stats_;
  return rep;
}

}  // namespace mpiv::runtime
