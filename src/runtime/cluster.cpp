#include "runtime/cluster.hpp"

#include <algorithm>
#include <string>

#include "fault/engine.hpp"
#include "scenario/registry.hpp"

namespace mpiv::runtime {

namespace {

/// Validates and normalizes a config before any member sizes anything off
/// it (a bad nranks must hit these diagnostics, not a multi-GB allocation
/// in Network / the stats vector).
ClusterConfig validated(ClusterConfig cfg) {
  MPIV_CHECK(cfg.nranks >= 1 && cfg.nranks <= 4096,
             "nranks must be in [1, 4096] (got %d)", cfg.nranks);
  MPIV_CHECK(cfg.el_shards >= 1, "el_shards must be >= 1 (got %d)",
             cfg.el_shards);
  MPIV_CHECK(cfg.el_shards <= cfg.nranks,
             "el_shards (%d) cannot exceed nranks (%d)", cfg.el_shards,
             cfg.nranks);
  MPIV_CHECK(cfg.el_shards == 1 || cfg.event_logger,
             "el_shards = %d requires event_logger = true (sharding a "
             "disabled Event Logger is meaningless)",
             cfg.el_shards);
  MPIV_CHECK(cfg.el_standby >= 0 && cfg.el_standby <= 64,
             "el_standby must be in [0, 64] (got %d)", cfg.el_standby);
  MPIV_CHECK(cfg.el_standby == 0 || cfg.event_logger,
             "el_standby = %d requires event_logger = true", cfg.el_standby);
  MPIV_CHECK(cfg.protocol != ProtocolKind::kP4 ||
                 (cfg.faults.empty() && cfg.faults_per_minute == 0.0 &&
                  cfg.campaign.empty()),
             "MPICH-P4 is not fault tolerant");
  for (std::size_t i = 0; i < cfg.faults.size(); ++i) {
    const FaultSpec& f = cfg.faults[i];
    MPIV_CHECK(f.rank >= 0 && f.rank < cfg.nranks,
               "fault plan names rank %d but only ranks 0..%d exist", f.rank,
               cfg.nranks - 1);
    MPIV_CHECK(f.at > 0, "fault for rank %d scheduled at t <= 0 (got %lld)",
               f.rank, static_cast<long long>(f.at));
    for (std::size_t j = 0; j < i; ++j) {
      MPIV_CHECK(cfg.faults[j].rank != f.rank || cfg.faults[j].at != f.at,
                 "duplicate fault: rank %d at t = %lld named twice", f.rank,
                 static_cast<long long>(f.at));
    }
  }
  // Campaign sanity through the shared rule set (fault/campaign.hpp): every
  // injection must name a real target and an implementable trigger/action
  // combination before anything is scheduled.
  fault::validate_campaign(cfg.campaign, cfg.nranks,
                           cfg.el_shards + cfg.el_standby, cfg.event_logger,
                           [](const std::string& what) {
                             MPIV_CHECK(false, "campaign: %s", what.c_str());
                           });
  if (cfg.protocol == ProtocolKind::kCoordinated &&
      cfg.ckpt_policy != ckpt::Policy::kNone) {
    // Coordinated checkpointing is a global wave by construction.
    cfg.ckpt_policy = ckpt::Policy::kAllAtOnce;
  }
  return cfg;
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(validated(std::move(cfg))),
      layout_{cfg_.nranks, cfg_.el_shards + cfg_.el_standby},
      net_(eng_, layout_.total_nodes(), cfg_.cost),
      stats_(static_cast<std::size_t>(cfg_.nranks)) {
  el_dir_.init(cfg_.nranks, cfg_.el_shards, cfg_.el_standby);
  timeline_.reset(cfg_.nranks);
  if (cfg_.trace.enabled) {
    trace_ = std::make_unique<trace::TraceSink>(cfg_.nranks, layout_.el_count,
                                                cfg_.trace.capacity);
    net_.set_trace(trace_->engine_lane());
  }

  for (int shard = 0; shard < layout_.el_count; ++shard) {
    els_.push_back(std::make_unique<elog::EventLogger>(
        net_, layout_, &el_stats_, shard, &el_dir_, nullptr));
    if (trace_) els_.back()->set_trace(trace_->el_lane(shard));
  }

  fault::FaultEngine::Bindings fb;
  fb.eng = &eng_;
  fb.net = &net_;
  fb.layout = layout_;
  fb.directory = &el_dir_;
  for (auto& e : els_) fb.els.push_back(e.get());
  fb.crash_rank = [this](int r) {
    if (dispatcher_) dispatcher_->fault(r);
  };
  fb.alive_ranks = [this] {
    return dispatcher_ ? dispatcher_->alive_ranks() : std::vector<int>{};
  };
  fb.run_done = [this] { return dispatcher_ && dispatcher_->all_done(); };
  fb.send_ctl = [this](net::Message&& m) {
    if (dispatcher_) dispatcher_->send_ctl(std::move(m));
  };
  fb.crash_daemon = [this](int r) {
    ranks_[static_cast<std::size_t>(r)]->daemon_crash();
  };
  fb.restart_daemon = [this](int r) {
    return ranks_[static_cast<std::size_t>(r)]->daemon_restart();
  };
  fb.daemon_is_down = [this](int r) {
    return ranks_[static_cast<std::size_t>(r)]->daemon_down();
  };
  fb.timeline = &timeline_;
  if (trace_) fb.trace = trace_->engine_lane();
  // The same detector window the dispatcher uses for rank crashes bounds
  // how long a service cut goes unsuspected (faults.detection_delay
  // overrides it per campaign).
  fb.detection_delay = cfg_.detection_delay;
  fault_engine_ = std::make_unique<fault::FaultEngine>(cfg_.campaign, cfg_.seed,
                                                       std::move(fb));
  for (auto& e : els_) e->set_observer(fault_engine_.get());

  mpi::RankHooks hooks;
  hooks.el_directory = &el_dir_;
  hooks.observer = fault_engine_.get();
  hooks.timeline = &timeline_;
  hooks.el_fault_at = fault_engine_->first_el_fault_ptr();
  // Retransmit timers fire only under a campaign: fault-free runs stay
  // event-for-event identical to the pre-engine runtime (the determinism
  // goldens pin this).
  hooks.service_retry = cfg_.campaign.empty() ? 0 : cfg_.campaign.service_retry;
  hooks.trace = trace_.get();

  const net::ChannelKind channel = cfg_.protocol == ProtocolKind::kP4
                                       ? net::ChannelKind::kP4
                                       : net::ChannelKind::kV;
  for (int r = 0; r < cfg_.nranks; ++r) {
    ranks_.push_back(std::make_unique<mpi::RankRuntime>(
        eng_, net_, layout_, r, channel, make_protocol(),
        &stats_[static_cast<std::size_t>(r)], cfg_.seed, hooks));
    ranks_.back()->set_process(
        &eng_.create_process("rank" + std::to_string(r)));
  }
  ckpt_ = std::make_unique<ckpt::CheckpointServer>(net_, layout_);
  sched_ = std::make_unique<ckpt::CheckpointScheduler>(
      net_, layout_, cfg_.ckpt_policy, cfg_.ckpt_interval, cfg_.seed);
  arm_metrics();
}

namespace {
/// Per-rank series columns are emitted only up to this rank count; beyond
/// it the CSV keeps the always-present sum/max aggregates (a 4096-rank
/// sweep must not produce a 4096-column series).
constexpr int kPerRankSeriesCap = 32;
}  // namespace

void Cluster::arm_metrics() {
  if (!cfg_.metrics.enabled) return;
  metrics_ = std::make_unique<metrics::Registry>();
  sampler_ = std::make_unique<metrics::Sampler>(cfg_.metrics.sample_interval);
  metrics::Sampler& s = *sampler_;
  // EL shards: submissions awaiting ack, and the stability-watermark lag —
  // determinants created by the shard's clientele that its contiguous
  // stable clock does not yet cover (what keeps piggyback sets fat).
  for (int sh = 0; sh < layout_.el_count; ++sh) {
    elog::EventLogger* el = els_[static_cast<std::size_t>(sh)].get();
    const std::string tag = "el" + std::to_string(sh);
    s.add_probe(tag + ".queue",
                [el] { return static_cast<std::int64_t>(el->queue_depth()); });
    s.add_probe(tag + ".lag", [this, el] {
      std::int64_t lag = 0;
      for (int r = 0; r < cfg_.nranks; ++r) {
        if (!el->owns_rank(r)) continue;
        const auto created = static_cast<std::int64_t>(
            stats_[static_cast<std::size_t>(r)].dets_created);
        const auto stable =
            static_cast<std::int64_t>(el->stable(static_cast<std::uint32_t>(r)));
        lag += std::max<std::int64_t>(0, created - stable);
      }
      return lag;
    });
  }
  s.add_probe("net.inflight", [this] {
    return static_cast<std::int64_t>(net_.inflight_frames());
  });
  s.add_probe("daemon.backlog", [this] {
    std::int64_t held = 0;
    for (auto& r : ranks_)
      held += static_cast<std::int64_t>(r->daemon().held_depth());
    return held;
  });
  s.add_probe("heap", [this] {
    return static_cast<std::int64_t>(eng_.queue_size());
  });
  // Piggyback set sizes: per-rank columns for small clusters, sum/max
  // aggregates always.
  if (cfg_.nranks <= kPerRankSeriesCap) {
    for (int r = 0; r < cfg_.nranks; ++r) {
      std::string col = "r";
      col += std::to_string(r);
      col += ".pb";
      s.add_probe(std::move(col), [this, r] {
        return static_cast<std::int64_t>(
            ranks_[static_cast<std::size_t>(r)]->protocol().pb_set_size());
      });
    }
  }
  s.add_probe("pb.sum", [this] {
    std::int64_t sum = 0;
    for (auto& r : ranks_)
      sum += static_cast<std::int64_t>(r->protocol().pb_set_size());
    return sum;
  });
  s.add_probe("pb.max", [this] {
    std::int64_t mx = 0;
    for (auto& r : ranks_)
      mx = std::max(mx,
                    static_cast<std::int64_t>(r->protocol().pb_set_size()));
    return mx;
  });
  // The engine's observation side-channel: fires between events, schedules
  // nothing — the run's event sequence stays byte-identical to metrics-off
  // (tests/test_determinism.cpp pins it).
  eng_.set_sampler(cfg_.metrics.sample_interval, cfg_.metrics.sample_interval,
                   [this](sim::Time t) { sampler_->tick(t); });
}

Cluster::~Cluster() = default;

std::unique_ptr<ftapi::VProtocol> Cluster::make_protocol() const {
  return scenario::protocol_entry(cfg_.protocol).make(cfg_);
}

std::string Cluster::protocol_label() const {
  return scenario::protocol_entry(cfg_.protocol).label(cfg_);
}

ClusterReport Cluster::run(mpi::AppFactory factory) {
  RecoveryMode mode = RecoveryMode::kRestart;
  switch (cfg_.protocol) {
    case ProtocolKind::kCoordinated: mode = RecoveryMode::kCoordinated; break;
    case ProtocolKind::kReplica: mode = RecoveryMode::kPromote; break;
    case ProtocolKind::kUlfm: mode = RecoveryMode::kShrink; break;
    default: break;
  }
  dispatcher_ = std::make_unique<Dispatcher>(
      net_, layout_, [this] {
        std::vector<mpi::RankRuntime*> v;
        for (auto& r : ranks_) v.push_back(r.get());
        return v;
      }(),
      factory, mode, cfg_.detection_delay, &timeline_, cfg_.ulfm_repair_cost);
  std::vector<std::pair<sim::Time, int>> legacy;
  legacy.reserve(cfg_.faults.size());
  for (const FaultSpec& f : cfg_.faults) legacy.emplace_back(f.at, f.rank);
  fault_engine_->arm(legacy, cfg_.faults_per_minute);
  sched_->start();
  dispatcher_->launch_all();

  if (cfg_.max_sim_time > 0) {
    eng_.run_until(cfg_.max_sim_time);
  } else {
    eng_.run();
  }

  // A daemon can still be inside a specified downtime window when the
  // workload completes (the victim had nothing left to send, or a
  // partition heal redelivered the last completion frame): the dispatcher
  // stops the engine at completion, so the respawn timer never fires.
  // Teardown drains those daemons here — the outage ends at run end —
  // instead of leaving the record open as if the daemon were lost.
  // Abandoned runs keep their records open: there "still down at run end"
  // is the truth.
  if (dispatcher_->all_done()) {
    for (int r = 0; r < cfg_.nranks; ++r) {
      mpi::RankRuntime& rr = *ranks_[static_cast<std::size_t>(r)];
      if (!rr.daemon_down()) continue;
      const long drained = rr.daemon_restart();
      if (drained >= 0) {
        timeline_.end_daemon(r, eng_.now(),
                             static_cast<std::uint64_t>(drained));
      }
    }
  }

  ClusterReport rep;
  rep.completed = dispatcher_->all_done();
  rep.completion_time = dispatcher_->completion_time();
  rep.faults_injected = dispatcher_->faults_injected();
  rep.rank_stats = stats_;
  // EL-side split-brain counters are kept per creator rank inside each
  // shard (all shards share one ElStats); fold them into the per-rank rows.
  for (const auto& e : els_) {
    for (int r = 0; r < cfg_.nranks; ++r) {
      rep.rank_stats[static_cast<std::size_t>(r)].el_dup_submissions +=
          e->dup_submissions(r);
      rep.rank_stats[static_cast<std::size_t>(r)].el_reconciled_records +=
          e->reconciled_records(r);
    }
  }
  rep.el_stats = el_stats_;
  rep.recoveries = timeline_.records();
  rep.daemon_outages = timeline_.daemon_records();
  rep.el_reconciles = timeline_.reconcile_records();
  rep.repairs = timeline_.repair_records();
  rep.promotions = timeline_.promotion_records();
  rep.fault_counts = fault_engine_->counts();
  rep.first_el_fault = fault_engine_->first_el_fault();
  fold_metrics(rep);
  return rep;
}

void Cluster::fold_metrics(ClusterReport& rep) {
  if (!metrics_) return;
  metrics::Registry& m = *metrics_;
  // Fabric totals.
  m.counter("net.frames_sent").add(net_.frames_sent());
  m.counter("net.frames_dropped").add(net_.frames_dropped());
  m.counter("net.frames_delayed").add(net_.frames_delayed());
  m.counter("net.frames_partitioned").add(net_.frames_partitioned());
  m.counter("net.bytes_sent").add(net_.bytes_sent());
  // Event Logger totals plus per-shard store activity (feeds `mpiv_stat
  // --top` shard ranking).
  m.counter("el.events_stored").add(el_stats_.events_stored);
  m.counter("el.acks_sent").add(el_stats_.acks_sent);
  m.counter("el.bytes_in").add(el_stats_.bytes_in);
  m.gauge("el.peak_queue").set(static_cast<std::int64_t>(el_stats_.peak_queue));
  for (int sh = 0; sh < layout_.el_count; ++sh) {
    m.counter("el" + std::to_string(sh) + ".stored_ops")
        .add(els_[static_cast<std::size_t>(sh)]->stored_ops());
  }
  // EL ack latency: per-rank histograms (feeds `--top` rank ranking) plus
  // the cluster-wide fold.
  metrics::Histogram all_acks;
  for (int r = 0; r < cfg_.nranks; ++r) {
    const metrics::Histogram& h =
        rep.rank_stats[static_cast<std::size_t>(r)].el_ack_latency_us;
    if (h.count() == 0) continue;
    m.histogram("rank" + std::to_string(r) + ".ack_us").merge(h);
    all_acks.merge(h);
  }
  if (all_acks.count() != 0) m.histogram("el.ack_us").merge(all_acks);
  // Per-rank piggyback traffic (the Fig. 7 quantity, rankable by --top).
  for (int r = 0; r < cfg_.nranks; ++r) {
    const ftapi::RankStats& rs =
        rep.rank_stats[static_cast<std::size_t>(r)];
    if (rs.pb_bytes_sent != 0) {
      m.counter("rank" + std::to_string(r) + ".pb_bytes").add(rs.pb_bytes_sent);
    }
  }
  // Recovery phase durations (Figs. 9-10): one histogram sample per
  // completed recovery, folded off-schedule from the timeline.
  for (const fault::RecoveryRecord& rec : rep.recoveries) {
    if (!rec.complete()) continue;
    m.histogram("recovery.detect_ms").add(sim::to_ms(rec.detect_ns()));
    m.histogram("recovery.image_ms").add(sim::to_ms(rec.image_ns()));
    m.histogram("recovery.collect_ms").add(sim::to_ms(rec.collect_ns()));
    m.histogram("recovery.replay_ms").add(sim::to_ms(rec.replay_ns()));
    m.histogram("recovery.total_ms").add(sim::to_ms(rec.total_ns()));
  }
  for (const fault::DaemonOutageRecord& d : rep.daemon_outages) {
    if (d.complete()) m.histogram("daemon.down_ms").add(sim::to_ms(d.down_ns()));
  }
  // Trace-lane ring overflow, visible in the report instead of only in
  // dump headers: one gauge per overflowed lane plus the total.
  if (trace_) {
    std::int64_t total_dropped = 0;
    for (const trace::Lane& lane : trace_->lanes()) {
      const auto dropped = static_cast<std::int64_t>(lane.dropped());
      total_dropped += dropped;
      if (dropped != 0) {
        m.gauge("trace." + lane.name() + ".dropped").set(dropped);
      }
    }
    m.gauge("trace.dropped_total").set(total_dropped);
  }
  rep.metrics = m.snapshot(sampler_.get());
}

}  // namespace mpiv::runtime
