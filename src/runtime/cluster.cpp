#include "runtime/cluster.hpp"

#include "scenario/registry.hpp"

namespace mpiv::runtime {

namespace {

/// Validates and normalizes a config before any member sizes anything off
/// it (a bad nranks must hit these diagnostics, not a multi-GB allocation
/// in Network / the stats vector).
ClusterConfig validated(ClusterConfig cfg) {
  MPIV_CHECK(cfg.nranks >= 1 && cfg.nranks <= 4096,
             "nranks must be in [1, 4096] (got %d)", cfg.nranks);
  MPIV_CHECK(cfg.el_shards >= 1, "el_shards must be >= 1 (got %d)",
             cfg.el_shards);
  MPIV_CHECK(cfg.el_shards <= cfg.nranks,
             "el_shards (%d) cannot exceed nranks (%d)", cfg.el_shards,
             cfg.nranks);
  MPIV_CHECK(cfg.el_shards == 1 || cfg.event_logger,
             "el_shards = %d requires event_logger = true (sharding a "
             "disabled Event Logger is meaningless)",
             cfg.el_shards);
  MPIV_CHECK(cfg.protocol != ProtocolKind::kP4 ||
                 (cfg.faults.empty() && cfg.faults_per_minute == 0.0),
             "MPICH-P4 is not fault tolerant");
  for (const FaultSpec& f : cfg.faults) {
    MPIV_CHECK(f.rank >= 0 && f.rank < cfg.nranks,
               "fault plan names rank %d but only ranks 0..%d exist", f.rank,
               cfg.nranks - 1);
  }
  if (cfg.protocol == ProtocolKind::kCoordinated &&
      cfg.ckpt_policy != ckpt::Policy::kNone) {
    // Coordinated checkpointing is a global wave by construction.
    cfg.ckpt_policy = ckpt::Policy::kAllAtOnce;
  }
  return cfg;
}

}  // namespace

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(validated(std::move(cfg))),
      layout_{cfg_.nranks, cfg_.el_shards},
      net_(eng_, layout_.total_nodes(), cfg_.cost),
      stats_(static_cast<std::size_t>(cfg_.nranks)) {
  const net::ChannelKind channel = cfg_.protocol == ProtocolKind::kP4
                                       ? net::ChannelKind::kP4
                                       : net::ChannelKind::kV;
  for (int r = 0; r < cfg_.nranks; ++r) {
    ranks_.push_back(std::make_unique<mpi::RankRuntime>(
        eng_, net_, layout_, r, channel, make_protocol(),
        &stats_[static_cast<std::size_t>(r)], cfg_.seed));
    ranks_.back()->set_process(
        &eng_.create_process("rank" + std::to_string(r)));
  }
  for (int shard = 0; shard < cfg_.el_shards; ++shard) {
    els_.push_back(
        std::make_unique<elog::EventLogger>(net_, layout_, &el_stats_, shard));
  }
  ckpt_ = std::make_unique<ckpt::CheckpointServer>(net_, layout_);
  sched_ = std::make_unique<ckpt::CheckpointScheduler>(
      net_, layout_, cfg_.ckpt_policy, cfg_.ckpt_interval, cfg_.seed);
}

Cluster::~Cluster() = default;

std::unique_ptr<ftapi::VProtocol> Cluster::make_protocol() const {
  return scenario::protocol_entry(cfg_.protocol).make(cfg_);
}

std::string Cluster::protocol_label() const {
  return scenario::protocol_entry(cfg_.protocol).label(cfg_);
}

ClusterReport Cluster::run(mpi::AppFactory factory) {
  dispatcher_ = std::make_unique<Dispatcher>(
      net_, layout_, [this] {
        std::vector<mpi::RankRuntime*> v;
        for (auto& r : ranks_) v.push_back(r.get());
        return v;
      }(),
      factory, cfg_.protocol == ProtocolKind::kCoordinated,
      cfg_.detection_delay);
  dispatcher_->arm_faults(cfg_.faults, cfg_.faults_per_minute, cfg_.seed);
  sched_->start();
  dispatcher_->launch_all();

  if (cfg_.max_sim_time > 0) {
    eng_.run_until(cfg_.max_sim_time);
  } else {
    eng_.run();
  }

  ClusterReport rep;
  rep.completed = dispatcher_->all_done();
  rep.completion_time = dispatcher_->completion_time();
  rep.faults_injected = dispatcher_->faults_injected();
  rep.rank_stats = stats_;
  rep.el_stats = el_stats_;
  return rep;
}

}  // namespace mpiv::runtime
