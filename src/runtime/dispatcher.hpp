// The MPICH-V dispatcher (paper §IV-B.1): launches the runtime, monitors
// the execution, detects faults and relaunches crashed MPI processes.
//
// Fault *scheduling* (timed, stochastic and event-triggered injections)
// lives in fault::FaultEngine; the dispatcher executes rank faults the
// engine hands it and serializes recoveries: a fault that strikes while
// another rank is still collecting its determinants is queued until that
// recovery finishes, so survivors are always available to answer recovery
// requests. It also stamps the detect phase of every recovery timeline.
#pragma once

#include <deque>
#include <functional>
#include <set>
#include <vector>

#include "coord/coordinated_protocol.hpp"
#include "fault/timeline.hpp"
#include "ftapi/services.hpp"
#include "mpi/comm.hpp"
#include "mpi/rank_runtime.hpp"
#include "net/service_port.hpp"
#include "ulfm/ulfm_protocol.hpp"

namespace mpiv::runtime {

struct FaultSpec {
  sim::Time at = 0;
  int rank = 0;
};

/// How the dispatcher answers a rank crash (lowered from the protocol
/// family — scenario::lower / Cluster::run pick it from ProtocolKind).
enum class RecoveryMode : std::uint8_t {
  kRestart,      // message logging: restart the victim, replay its log
  kCoordinated,  // global rollback to the last complete snapshot
  kPromote,      // replica hybrid: promote the shadow, no rollback
  kShrink,       // ULFM: revoke + repair, survivors continue without victim
};

class Dispatcher {
 public:
  Dispatcher(net::Network& net, const ftapi::NodeLayout& layout,
             std::vector<mpi::RankRuntime*> ranks, mpi::AppFactory factory,
             RecoveryMode mode, sim::Time detection_delay,
             fault::RecoveryTimeline* timeline = nullptr,
             sim::Time repair_cost = 0)
      : net_(net),
        layout_(layout),
        port_(net, layout.dispatcher_node()),
        ranks_(std::move(ranks)),
        factory_(std::move(factory)),
        mode_(mode),
        detection_delay_(detection_delay),
        repair_cost_(repair_cost),
        timeline_(timeline),
        coordinator_(net, layout) {
    net.attach(layout.dispatcher_node(),
               [this](net::Message&& m) { on_frame(std::move(m)); });
  }

  /// Starts every rank's application process.
  void launch_all() {
    for (mpi::RankRuntime* r : ranks_) r->launch(factory_);
  }

  /// Injects a fault into `rank` (the fault engine's rank-crash primitive).
  /// Queued if another recovery is still in flight; dropped once the run
  /// completed or the rank already finished.
  void fault(int rank) {
    if (getenv("MPIV_DEBUG_RECOVERY")) {
      std::fprintf(stderr, "[dbg] fault(%d) at %.3fs: all_done=%d done=%zu busy=%d\n",
                   rank, sim::to_sec(port_.engine().now()), all_done(), done_.size(),
                   recovery_busy_);
    }
    if (all_done() || done_.count(rank) != 0 || dead_.count(rank) != 0 ||
        promoting_.count(rank) != 0) {
      return;
    }
    if (recovery_busy_) {
      pending_faults_.push_back(rank);
      return;
    }
    execute_fault(rank);
  }

  /// Ranks the fault engine may still crash (alive = not yet finished).
  std::vector<int> alive_ranks() const {
    std::vector<int> alive;
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      if (done_.count(static_cast<int>(r)) == 0) alive.push_back(static_cast<int>(r));
    }
    return alive;
  }

  /// Emits a control frame from the dispatcher node (fault-engine
  /// notifications, e.g. EL failover notices) at select-loop cost.
  void send_ctl(net::Message&& m) {
    port_.send_after(net_.cost().ctl_per_msg, std::move(m));
  }

  /// Every rank accounted for — and at least one survivor actually finished
  /// the workload (an all-dead shrink fills done_ with corpses; that is an
  /// abandonment, not a completion).
  bool all_done() const {
    return done_.size() == ranks_.size() && dead_.size() < ranks_.size();
  }
  sim::Time completion_time() const { return completion_time_; }
  std::uint64_t faults_injected() const { return faults_injected_; }
  const coord::WaveCoordinator& coordinator() const { return coordinator_; }

 private:
  void execute_fault(int rank) {
    const sim::Time now = port_.engine().now();
    if (mode_ == RecoveryMode::kPromote) {
      // Replica hybrid: no rollback and no serialized recovery window — the
      // hot shadow already holds the state. The victim's daemon parks its
      // traffic for the switchover stall; after the detection delay the
      // shadow serves as the primary and the held frames drain to it.
      // Promotions of distinct ranks overlap freely.
      ++faults_injected_;
      const bool held =
          ranks_[static_cast<std::size_t>(rank)]->promote_hold();
      promoting_.insert(rank);
      const int idx =
          timeline_ != nullptr ? timeline_->begin_promotion(rank, now) : -1;
      port_.engine().after(detection_delay_, [this, rank, idx, held] {
        const long drained =
            held ? ranks_[static_cast<std::size_t>(rank)]->promote_release()
                 : 0;
        if (timeline_ != nullptr) {
          timeline_->end_promotion(
              idx, port_.engine().now(),
              drained < 0 ? 0 : static_cast<std::uint64_t>(drained));
        }
        promoting_.erase(rank);
      });
      return;
    }
    if (mode_ == RecoveryMode::kShrink) {
      // ULFM shrink-and-repair: the victim is dead for good. After the
      // detection window the dispatcher broadcasts revoke notices to the
      // survivors; one repair_cost_ later (the priced agreement +
      // communicator rebuild) every survivor relaunches the workload on
      // the shrunk communicator — previously-finished survivors included,
      // since their completed work named the old communicator.
      ++faults_injected_;
      recovery_busy_ = true;
      ranks_[static_cast<std::size_t>(rank)]->crash();
      dead_.insert(rank);
      done_.insert(rank);
      std::vector<int> survivors;
      for (std::size_t r = 0; r < ranks_.size(); ++r) {
        if (dead_.count(static_cast<int>(r)) == 0) {
          survivors.push_back(static_cast<int>(r));
        }
      }
      const int idx =
          timeline_ != nullptr
              ? timeline_->begin_repair(
                    rank, static_cast<int>(survivors.size()), now)
              : -1;
      if (survivors.empty()) {
        // Nobody left to repair with: the run can only be abandoned (the
        // all_done() guard keeps the corpse-filled done_ set from
        // reporting completion).
        recovery_busy_ = false;
        return;
      }
      port_.engine().after(detection_delay_, [this, rank, idx, survivors] {
        if (timeline_ != nullptr) {
          timeline_->mark_revoke(idx, port_.engine().now());
        }
        for (const int s : survivors) {
          net::Message m;
          m.kind = net::MsgKind::kControl;
          m.tag = static_cast<std::int32_t>(ulfm::kUlfmRevoke);
          m.dst = layout_.rank_node(s);
          m.dst_rank = s;
          m.arg = static_cast<std::uint64_t>(rank);
          send_ctl(std::move(m));
        }
        port_.engine().after(repair_cost_, [this, rank, idx, survivors] {
          for (const int s : survivors) {
            done_.erase(s);
            ranks_[static_cast<std::size_t>(s)]->shrink_relaunch(
                factory_, survivors, /*victim=*/rank);
          }
          if (timeline_ != nullptr) {
            timeline_->end_repair(idx, port_.engine().now());
          }
          recovery_busy_ = false;
          if (!pending_faults_.empty()) {
            const int next = pending_faults_.front();
            pending_faults_.pop_front();
            fault(next);
          }
        });
      });
      return;
    }
    ++faults_injected_;
    recovery_busy_ = true;
    if (mode_ == RecoveryMode::kCoordinated) {
      // Global rollback: every rank dies and restarts from the last
      // globally-complete snapshot.
      const std::uint64_t snapshot = coordinator_.last_complete();
      done_.clear();
      for (mpi::RankRuntime* r : ranks_) r->crash();
      if (timeline_ != nullptr) {
        for (std::size_t r = 0; r < ranks_.size(); ++r) {
          timeline_->begin(static_cast<int>(r), now, /*coordinated=*/true);
        }
      }
      port_.engine().after(detection_delay_, [this, snapshot] {
        recoveries_outstanding_ = ranks_.size();
        for (std::size_t r = 0; r < ranks_.size(); ++r) {
          if (timeline_ != nullptr) {
            timeline_->mark_restart(static_cast<int>(r), port_.engine().now());
          }
          ranks_[r]->restart(factory_, snapshot);
        }
      });
      return;
    }
    ranks_[static_cast<std::size_t>(rank)]->crash();
    if (timeline_ != nullptr) timeline_->begin(rank, now, /*coordinated=*/false);
    done_.erase(rank);
    port_.engine().after(detection_delay_, [this, rank] {
      recoveries_outstanding_ = 1;
      if (timeline_ != nullptr) timeline_->mark_restart(rank, port_.engine().now());
      ranks_[static_cast<std::size_t>(rank)]->restart(factory_, 0);
    });
  }

  void on_frame(net::Message&& m) {
    if (m.kind != net::MsgKind::kControl) return;
    if (coordinator_.on_ctl(m)) return;
    switch (static_cast<mpi::CtlSub>(m.tag)) {
      case mpi::CtlSub::kAppDone:
        done_.insert(m.src_rank);
        // A shrink repair in flight voids survivors' completions (their
        // done_ entries are erased at relaunch), so completion is only
        // declared outside a recovery window.
        if (all_done() && !recovery_busy_) {
          completion_time_ = port_.engine().now();
          port_.engine().stop();
        }
        return;
      case mpi::CtlSub::kRecoveryDone:
        if (recoveries_outstanding_ > 0) --recoveries_outstanding_;
        if (recoveries_outstanding_ == 0) {
          recovery_busy_ = false;
          if (!pending_faults_.empty()) {
            const int next = pending_faults_.front();
            pending_faults_.pop_front();
            fault(next);
          }
        }
        return;
      default:
        return;
    }
  }

  net::Network& net_;
  ftapi::NodeLayout layout_;
  net::ServicePort port_;
  std::vector<mpi::RankRuntime*> ranks_;
  mpi::AppFactory factory_;
  RecoveryMode mode_;
  sim::Time detection_delay_;
  sim::Time repair_cost_;
  fault::RecoveryTimeline* timeline_;
  coord::WaveCoordinator coordinator_;

  std::set<int> done_;
  std::set<int> dead_;       // shrink mode: ranks excluded for good
  std::set<int> promoting_;  // promote mode: switchover stall in flight
  sim::Time completion_time_ = 0;
  bool recovery_busy_ = false;
  std::size_t recoveries_outstanding_ = 0;
  std::deque<int> pending_faults_;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace mpiv::runtime
