// Cluster: one self-contained MPICH-V deployment (Fig. 5 of the paper) —
// N compute nodes (MPI process + communication daemon each), the Event
// Logger, the checkpoint server, and the dispatcher with its checkpoint
// scheduler, all on one simulated Fast Ethernet switch.
//
// This is the top-level entry point of the library: configure, call run()
// with an application factory, read the report.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ckpt/checkpoint_server.hpp"
#include "ckpt/scheduler.hpp"
#include "causal/strategy.hpp"
#include "elog/el_directory.hpp"
#include "elog/event_logger.hpp"
#include "fault/campaign.hpp"
#include "fault/timeline.hpp"
#include "ftapi/stats.hpp"
#include "metrics/metrics.hpp"
#include "mpi/rank_runtime.hpp"
#include "runtime/dispatcher.hpp"
#include "trace/trace.hpp"

namespace mpiv::fault {
class FaultEngine;
}

namespace mpiv::runtime {

enum class ProtocolKind : std::uint8_t {
  kP4,           // MPICH-P4 reference: direct channel, no fault tolerance
  kVdummy,       // MPICH-V framework without fault tolerance
  kCausal,       // causal message logging (strategy selects the reduction)
  kPessimistic,  // MPICH-V2-style pessimistic logging
  kCoordinated,  // Chandy-Lamport coordinated checkpointing
  kReplica,      // replication hybrid: shadow replica absorbs the crash
  kUlfm,         // ULFM-style shrink-and-repair: survivors continue without
                 // the victim on a rebuilt communicator
};

struct ClusterConfig {
  int nranks = 4;
  ProtocolKind protocol = ProtocolKind::kVdummy;
  causal::StrategyKind strategy = causal::StrategyKind::kVcausal;
  bool event_logger = true;
  /// Number of Event Logger shards (paper §VI future work: > 1 distributes
  /// determinant logging; shards exchange their stable-clock arrays).
  int el_shards = 1;
  /// Cold standby EL shard nodes: provisioned and exchanging clocks but
  /// serving no ranks until a shard crash fails over onto one.
  int el_standby = 0;
  net::CostModel cost{};
  std::uint64_t seed = 1;

  ckpt::Policy ckpt_policy = ckpt::Policy::kNone;
  sim::Time ckpt_interval = 0;

  std::vector<FaultSpec> faults;
  double faults_per_minute = 0.0;
  /// Declarative chaos campaign (EL shard crashes, checkpoint-server
  /// outages, link perturbations, event-triggered rank kills) executed by
  /// the fault engine alongside the legacy plan above.
  fault::Campaign campaign;
  sim::Time detection_delay = 250 * sim::kMillisecond;

  /// Replica hybrid: the shadow is refreshed with one sync frame every this
  /// many application sends (0 = every send).
  int replica_sync_interval = 8;
  /// ULFM shrink-and-repair: the priced agreement + communicator-rebuild
  /// window between revoke and the survivors' relaunch.
  sim::Time ulfm_repair_cost = 10 * sim::kMillisecond;
  /// Causal variant knob: keep logged payloads in the sender's application
  /// memory instead of copying them into the daemon (skips the per-byte
  /// daemon copy charge; the retention watermark is still priced via
  /// sender_log_peak_bytes).
  bool payload_at_sender = false;

  /// Per-rank trace lanes (trace::Config{} = disabled, zero overhead).
  trace::Config trace{};

  /// Aggregate metrics + virtual-time sampler (metrics::Config{} =
  /// disabled: no registry, no sampler armed, identical event schedule).
  metrics::Config metrics{};

  /// Safety net for runaway simulations (0 = unlimited).
  sim::Time max_sim_time = 4L * 3600 * sim::kSecond;
};

struct ClusterReport {
  bool completed = false;
  sim::Time completion_time = 0;
  std::uint64_t faults_injected = 0;
  std::vector<ftapi::RankStats> rank_stats;
  ftapi::ElStats el_stats;
  /// Per-recovery phase breakdown (detect / image / collect / replay).
  std::vector<fault::RecoveryRecord> recoveries;
  /// Daemon-process outages (failure domain split from the rank: the app
  /// survived, stalled, while the dispatcher respawned the daemon).
  std::vector<fault::DaemonOutageRecord> daemon_outages;
  /// Split-brain EL reconciliations (service-side partitions: suspected
  /// failover behind the cut, heal-time merge of the two live logs).
  std::vector<fault::ElReconcileRecord> el_reconciles;
  /// ULFM communicator repairs (revoke -> agreement -> shrunk relaunch).
  std::vector<fault::RepairRecord> repairs;
  /// Replica shadow promotions (crash absorbed with no rollback).
  std::vector<fault::PromotionRecord> promotions;
  /// What the fault engine actually injected.
  fault::FaultCounts fault_counts;
  sim::Time first_el_fault = 0;
  /// Frozen metrics (default Snapshot with enabled = false when metrics
  /// were off — consumers key off that flag, keeping metrics-off report
  /// output byte-identical to the pre-metrics shape).
  metrics::Snapshot metrics;

  ftapi::RankStats totals() const {
    ftapi::RankStats t;
    for (const ftapi::RankStats& r : rank_stats) t.merge(r);
    return t;
  }
  /// Piggybacked bytes as a percentage of total application bytes (Fig. 7).
  double piggyback_pct() const {
    const ftapi::RankStats t = totals();
    return t.app_bytes_sent == 0
               ? 0.0
               : 100.0 * static_cast<double>(t.pb_bytes_sent) /
                     static_cast<double>(t.app_bytes_sent);
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig cfg);
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  sim::Engine& engine() { return eng_; }
  net::Network& network() { return net_; }
  mpi::RankRuntime& rank(int r) { return *ranks_[static_cast<std::size_t>(r)]; }
  elog::EventLogger& event_logger(int shard = 0) { return *els_[static_cast<std::size_t>(shard)]; }
  ckpt::CheckpointServer& checkpoint_server() { return *ckpt_; }
  const elog::ElDirectory& el_directory() const { return el_dir_; }
  fault::FaultEngine& fault_engine() { return *fault_engine_; }
  const fault::RecoveryTimeline& timeline() const { return timeline_; }
  const ClusterConfig& config() const { return cfg_; }
  /// Null when tracing is disabled.
  trace::TraceSink* trace_sink() { return trace_.get(); }
  /// Null when metrics are disabled.
  metrics::Registry* metrics_registry() { return metrics_.get(); }

  /// Human-readable protocol tag ("Manetho (no EL)", "MPICH-P4", ...).
  std::string protocol_label() const;

  /// Runs `factory` on every rank to completion (or until max_sim_time).
  ClusterReport run(mpi::AppFactory factory);

 private:
  std::unique_ptr<ftapi::VProtocol> make_protocol() const;
  void arm_metrics();
  void fold_metrics(ClusterReport& rep);

  ClusterConfig cfg_;
  sim::Engine eng_;
  ftapi::NodeLayout layout_;
  net::Network net_;
  std::vector<ftapi::RankStats> stats_;
  ftapi::ElStats el_stats_;
  elog::ElDirectory el_dir_;
  fault::RecoveryTimeline timeline_;
  std::unique_ptr<trace::TraceSink> trace_;
  std::unique_ptr<metrics::Registry> metrics_;
  std::unique_ptr<metrics::Sampler> sampler_;
  std::unique_ptr<fault::FaultEngine> fault_engine_;
  std::vector<std::unique_ptr<mpi::RankRuntime>> ranks_;
  std::vector<std::unique_ptr<elog::EventLogger>> els_;
  std::unique_ptr<ckpt::CheckpointServer> ckpt_;
  std::unique_ptr<ckpt::CheckpointScheduler> sched_;
  std::unique_ptr<Dispatcher> dispatcher_;
};

}  // namespace mpiv::runtime
