// Deterministic discrete-event engine with coroutine processes.
//
// The engine owns a calendar queue of timed events (ties broken by
// insertion sequence, so identical inputs give byte-identical runs) and a
// registry of `Process` objects. A Process hosts one coroutine call chain —
// a simulated MPI rank. Killing a process destroys its coroutine frames
// mid-suspend; every scheduled resume carries a (pid, incarnation) token and
// is dropped if the incarnation changed, which makes crash injection safe at
// any await point.
//
// The queue holds plain 48-byte records, not closures. Coroutine resumes —
// the bulk of all scheduled work — travel in a dedicated lane as
// {token, handle} inline in the record; only generic at()/after() callbacks
// carry a std::function, parked in a recycled slab and referenced by slot,
// so steady-state scheduling does no per-event heap allocation.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/check.hpp"
#include "util/slab.hpp"

namespace mpiv::sim {

class Engine;
class Process;

/// Identifies one incarnation of one process; stale tokens are inert.
struct ProcToken {
  std::uint32_t pid = UINT32_MAX;
  std::uint32_t incarnation = 0;
  bool operator==(const ProcToken&) const = default;
};

/// Root coroutine wrapper: drives a Task<void> and flags completion on the
/// owning Process. Suspends at final_suspend so the frame is destroyed only
/// by its owner (Process::reap/kill), never mid-execution.
struct RootCoro {
  struct promise_type {
    Process* proc = nullptr;
    RootCoro get_return_object() noexcept {
      return RootCoro{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() const noexcept { return {}; }
    std::suspend_always final_suspend() const noexcept;
    void return_void() const noexcept {}
    void unhandled_exception() noexcept { std::abort(); }
  };
  std::coroutine_handle<promise_type> handle;
};

class Process {
 public:
  Process(Engine& eng, std::uint32_t pid, std::string name)
      : eng_(eng), pid_(pid), name_(std::move(name)) {}
  ~Process() { destroy_frame(); }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  std::uint32_t pid() const { return pid_; }
  std::uint32_t incarnation() const { return incarnation_; }
  const std::string& name() const { return name_; }
  ProcToken token() const { return {pid_, incarnation_}; }

  bool running() const { return root_ && !finished_; }
  bool finished() const { return finished_; }

  /// Launches `main` as this process's coroutine; the first resume is
  /// scheduled at the current simulated time (or `at` if given).
  void start(Task<void> main);
  void start_at(Time at, Task<void> main);

  /// Crash: destroys the coroutine frames and invalidates the incarnation.
  /// Safe to call while the process is suspended at any await point; must
  /// not be called from within the process's own execution.
  void kill();

  Engine& engine() const { return eng_; }

  /// Internal: called by the root driver coroutine when `main` returns.
  void on_main_done() { finished_ = true; }

 private:
  friend struct RootCoro::promise_type;
  friend class Engine;
  void destroy_frame();

  Engine& eng_;
  std::uint32_t pid_;
  std::string name_;
  std::uint32_t incarnation_ = 0;
  bool finished_ = false;
  std::coroutine_handle<RootCoro::promise_type> root_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Schedules a callback at absolute simulated time `t` (>= now).
  void at(Time t, std::function<void()> fn) {
    MPIV_CHECK(t >= now_, "scheduling into the past: %lld < %lld",
               static_cast<long long>(t), static_cast<long long>(now_));
    Ev ev;
    ev.t = t;
    ev.seq = seq_++;
    ev.slot = callbacks_.put(std::move(fn));
    queue_.push(ev);
  }
  void after(Time dt, std::function<void()> fn) { at(now_ + dt, std::move(fn)); }

  /// Schedules the resume of a suspended process coroutine; dropped if the
  /// process was killed/restarted in the meantime. Resume records travel
  /// inline in the event queue — no callback, no allocation.
  void schedule_resume(ProcToken tok, std::coroutine_handle<> h, Time t) {
    MPIV_CHECK(t >= now_, "scheduling into the past: %lld < %lld",
               static_cast<long long>(t), static_cast<long long>(now_));
    Ev ev;
    ev.t = t;
    ev.seq = seq_++;
    ev.resume = h;
    ev.tok = tok;
    queue_.push(ev);
  }

  bool token_alive(ProcToken tok) const {
    return tok.pid < procs_.size() &&
           procs_[tok.pid]->incarnation() == tok.incarnation &&
           procs_[tok.pid]->running();
  }

  /// Runs events until the queue is empty or `stop()` is called.
  /// Returns the number of events executed.
  std::uint64_t run();
  /// Runs events with timestamp <= t (then sets now = t if it advanced less).
  std::uint64_t run_until(Time t);
  void stop() { stopped_ = true; }

  Process& create_process(std::string name) {
    procs_.push_back(std::make_unique<Process>(
        *this, static_cast<std::uint32_t>(procs_.size()), std::move(name)));
    return *procs_.back();
  }
  Process& process(std::uint32_t pid) {
    MPIV_CHECK(pid < procs_.size(), "bad pid %u", pid);
    return *procs_[pid];
  }
  std::size_t process_count() const { return procs_.size(); }

  /// Non-null while the engine is executing (a resume of) a process
  /// coroutine; awaitables use it to learn who is suspending.
  Process* current_process() const { return current_; }

  /// Awaitable: suspend the current process for `dt` simulated time.
  auto sleep(Time dt) {
    struct SleepAwaiter {
      Engine& eng;
      Time dt;
      bool await_ready() const noexcept { return dt <= 0; }
      void await_suspend(std::coroutine_handle<> h) const {
        Process* p = eng.current_process();
        MPIV_CHECK(p != nullptr, "sleep outside of a process coroutine");
        eng.schedule_resume(p->token(), h, eng.now() + dt);
      }
      void await_resume() const noexcept {}
    };
    return SleepAwaiter{*this, dt};
  }

  /// Total events executed so far (proxy for simulation work).
  std::uint64_t events_executed() const { return executed_; }

  /// Pending events in the queue (observability probe).
  std::size_t queue_size() const { return queue_.size(); }

  /// Arms the observation side-channel: `fn(t)` fires at t = start,
  /// start + interval, ... *between* events in run_until, never through the
  /// event queue — it does not consume a seq number, does not count toward
  /// events_executed(), and must not schedule. An armed sampler therefore
  /// leaves the event schedule byte-identical to an unarmed one. Pass a null
  /// fn to disarm.
  void set_sampler(Time interval, Time start, std::function<void(Time)> fn) {
    MPIV_CHECK(!fn || interval > 0, "sampler interval must be positive");
    sampler_interval_ = interval;
    sampler_next_ = start;
    sampler_ = std::move(fn);
  }

 private:
  friend class Process;
  void resume_in_process(Process* p, std::coroutine_handle<> h) {
    Process* prev = current_;
    current_ = p;
    h.resume();
    current_ = prev;
  }

  /// One scheduled event: either a process resume (resume != nullptr, token
  /// checked at fire time) or a parked callback (slot into callbacks_).
  struct Ev {
    Time t = 0;
    std::uint64_t seq = 0;
    std::coroutine_handle<> resume{};
    ProcToken tok{};
    std::uint32_t slot = UINT32_MAX;
  };

  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  Process* current_ = nullptr;
  CalendarQueue<Ev> queue_;
  util::Slab<std::function<void()>> callbacks_;
  std::vector<std::unique_ptr<Process>> procs_;
  // Observation side-channel (set_sampler): drained in run_until before
  // each popped event, outside the queue/seq/executed machinery.
  Time sampler_next_ = 0;
  Time sampler_interval_ = 0;
  std::function<void(Time)> sampler_;
};

// --- Intrusive wait queue -------------------------------------------------
//
// The parking primitive for blocking operations. An awaiter embeds a Waiter
// node that lives in the coroutine frame; wake_* unlinks the node and
// schedules a tokened resume. If the frame is destroyed first (process
// killed), the Waiter destructor unlinks itself, and any already-scheduled
// resume is dropped by the token check.

class WaitQueue;

class Waiter {
 public:
  Waiter() = default;
  ~Waiter() { unlink(); }
  Waiter(const Waiter&) = delete;
  Waiter& operator=(const Waiter&) = delete;

  bool linked() const { return queue_ != nullptr; }
  void unlink();

 private:
  friend class WaitQueue;
  WaitQueue* queue_ = nullptr;
  Waiter* prev_ = nullptr;
  Waiter* next_ = nullptr;
  std::coroutine_handle<> handle_;
  ProcToken token_;
};

class WaitQueue {
 public:
  explicit WaitQueue(Engine& eng) : eng_(eng) {}
  ~WaitQueue() {
    // Outstanding waiters' frames outlive the queue only on teardown bugs.
    while (head_) head_->unlink();
  }
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  bool empty() const { return head_ == nullptr; }
  std::size_t size() const { return count_; }

  /// Awaitable: parks the current process until woken.
  auto wait() {
    struct WaitAwaiter {
      WaitQueue& q;
      Waiter node;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        Process* p = q.eng_.current_process();
        MPIV_CHECK(p != nullptr, "wait outside of a process coroutine");
        node.handle_ = h;
        node.token_ = p->token();
        q.push_back(&node);
      }
      void await_resume() const noexcept {}
    };
    return WaitAwaiter{*this, {}};
  }

  /// Wakes the longest-waiting process at simulated time `t` (>= now).
  /// Returns false if no one was waiting.
  bool wake_one(Time t) {
    Waiter* w = head_;
    if (!w) return false;
    const std::coroutine_handle<> h = w->handle_;
    const ProcToken tok = w->token_;
    w->unlink();
    eng_.schedule_resume(tok, h, t);
    return true;
  }
  bool wake_one() { return wake_one(eng_.now()); }

  std::size_t wake_all(Time t) {
    std::size_t n = 0;
    while (wake_one(t)) ++n;
    return n;
  }
  std::size_t wake_all() { return wake_all(eng_.now()); }

 private:
  friend class Waiter;
  void push_back(Waiter* w) {
    MPIV_DCHECK(!w->linked(), "waiter already linked");
    w->queue_ = this;
    w->next_ = nullptr;
    w->prev_ = tail_;
    if (tail_) {
      tail_->next_ = w;
    } else {
      head_ = w;
    }
    tail_ = w;
    ++count_;
  }

  Engine& eng_;
  Waiter* head_ = nullptr;
  Waiter* tail_ = nullptr;
  std::size_t count_ = 0;  // size() is called from stats paths inside runs
};

inline void Waiter::unlink() {
  if (!queue_) return;
  --queue_->count_;
  if (prev_) {
    prev_->next_ = next_;
  } else {
    queue_->head_ = next_;
  }
  if (next_) {
    next_->prev_ = prev_;
  } else {
    queue_->tail_ = prev_;
  }
  prev_ = next_ = nullptr;
  queue_ = nullptr;
}

}  // namespace mpiv::sim
