#include "sim/engine.hpp"

namespace mpiv::sim {

namespace {
// The driver coroutine owns the user task; destroying the driver frame
// (kill) destroys the whole chain. `proc` is set right after creation.
RootCoro run_root(Process* proc, Task<void> main) {
  co_await main;
  proc->on_main_done();
}
}  // namespace

std::suspend_always RootCoro::promise_type::final_suspend() const noexcept {
  return {};
}

void Process::start(Task<void> main) { start_at(eng_.now(), std::move(main)); }

void Process::start_at(Time at, Task<void> main) {
  MPIV_CHECK(!running(), "process %s already running", name_.c_str());
  destroy_frame();
  finished_ = false;
  RootCoro rc = run_root(this, std::move(main));
  rc.handle.promise().proc = this;
  root_ = rc.handle;
  eng_.schedule_resume(token(), root_, at);
}

void Process::kill() {
  MPIV_CHECK(eng_.current_process() != this,
             "process %s cannot kill itself", name_.c_str());
  ++incarnation_;
  destroy_frame();
  finished_ = false;
}

void Process::destroy_frame() {
  if (root_) {
    root_.destroy();
    root_ = {};
  }
}

std::uint64_t Engine::run() { return run_until(INT64_MAX); }

std::uint64_t Engine::run_until(Time t) {
  stopped_ = false;
  std::uint64_t n = 0;
  while (!queue_.empty() && !stopped_) {
    const Ev top = queue_.top();
    if (top.t > t) break;
    // Observation ticks due at or before this event fire first, between
    // events: the sampler sees the state every event <= its tick time left
    // behind, and the schedule itself is untouched (no queue entry, no seq,
    // no executed_ increment, now_ not modified by the tick).
    while (sampler_ && sampler_next_ <= top.t) {
      sampler_(sampler_next_);
      sampler_next_ += sampler_interval_;
    }
    now_ = top.t;
    queue_.pop();
    if (top.resume) {
      // Resume lane: stale incarnations (process killed/restarted since the
      // schedule) are dropped, but still count as executed events — the
      // event fired, it just had nothing live to do.
      if (token_alive(top.tok)) {
        resume_in_process(procs_[top.tok.pid].get(), top.resume);
      }
    } else {
      // Callback lane: take the slot out before running so the callback can
      // schedule new events (and reuse the slot) freely.
      std::function<void()> fn = callbacks_.take(top.slot);
      fn();
    }
    ++n;
    ++executed_;
  }
  if (t != INT64_MAX && now_ < t && !stopped_) now_ = t;
  return n;
}

}  // namespace mpiv::sim
