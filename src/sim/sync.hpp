// Small synchronization primitives layered on WaitQueue.
#pragma once

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace mpiv::sim {

/// Level-triggered event: once set, waiters pass through immediately.
class OneShot {
 public:
  explicit OneShot(Engine& eng) : q_(eng) {}

  bool ready() const { return ready_; }
  void set() {
    ready_ = true;
    q_.wake_all();
  }
  void reset() { ready_ = false; }
  /// Wakes waiters without setting the event — waiters using wait() re-park,
  /// waiters using wait_once() get control back (timeout/retry loops).
  void poke() { q_.wake_all(); }

  Task<void> wait() {
    while (!ready_) co_await q_.wait();
  }
  /// Parks at most once: returns on set() OR poke(). The caller re-checks
  /// ready() and its own deadline — the building block for retransmit loops
  /// against crashable services.
  Task<void> wait_once() {
    if (!ready_) co_await q_.wait();
  }

 private:
  bool ready_ = false;
  WaitQueue q_;
};

/// Counts arrivals toward a (resettable) expected total.
class CountLatch {
 public:
  explicit CountLatch(Engine& eng) : q_(eng) {}

  void expect(std::size_t n) {
    expected_ = n;
    count_ = 0;
  }
  void arrive() {
    ++count_;
    if (count_ >= expected_) q_.wake_all();
  }
  std::size_t count() const { return count_; }

  Task<void> wait() {
    while (count_ < expected_) co_await q_.wait();
  }

 private:
  std::size_t expected_ = 0;
  std::size_t count_ = 0;
  WaitQueue q_;
};

}  // namespace mpiv::sim
