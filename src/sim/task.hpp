// Lazy coroutine task with symmetric transfer.
//
// This is the execution vehicle for every simulated MPI rank: application
// code is written in blocking style (`co_await comm.recv(...)`) and the
// whole call chain suspends into the discrete-event engine. Tasks are lazy
// (started when first awaited) and single-owner; destroying a Task destroys
// the (possibly suspended) coroutine frame, which recursively destroys any
// child Task held in that frame — the property the fault injector relies on
// to kill a process mid-operation.
#pragma once

#include <coroutine>
#include <cstdlib>
#include <optional>
#include <type_traits>
#include <utility>

namespace mpiv::sim {

template <class T>
class Task;

namespace detail {

struct TaskPromiseBase {
  std::coroutine_handle<> continuation = std::noop_coroutine();

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    template <class P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) const noexcept {
      return h.promise().continuation;
    }
    void await_resume() const noexcept {}
  };

  std::suspend_always initial_suspend() const noexcept { return {}; }
  FinalAwaiter final_suspend() const noexcept { return {}; }
  // Simulated protocol code reports errors by value; an exception escaping a
  // simulation coroutine is a library bug.
  void unhandled_exception() noexcept { std::abort(); }
};

template <class T>
struct TaskPromise final : TaskPromiseBase {
  std::optional<T> value;

  Task<T> get_return_object() noexcept;
  template <class U = T>
  void return_value(U&& v) {
    value.emplace(std::forward<U>(v));
  }
};

template <>
struct TaskPromise<void> final : TaskPromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() const noexcept {}
};

}  // namespace detail

template <class T = void>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> h) noexcept : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(h_); }
  bool done() const noexcept { return h_ && h_.done(); }

  /// Awaiting starts the (lazy) task with the awaiting coroutine as its
  /// continuation; on completion control transfers straight back.
  auto operator co_await() const noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return !h || h.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) const noexcept {
        h.promise().continuation = parent;
        return h;
      }
      T await_resume() const {
        if constexpr (!std::is_void_v<T>) {
          return std::move(*h.promise().value);
        }
      }
    };
    return Awaiter{h_};
  }

  std::coroutine_handle<promise_type> handle() const noexcept { return h_; }
  /// Transfers frame ownership to the caller (used by the root driver).
  std::coroutine_handle<promise_type> release() noexcept {
    return std::exchange(h_, {});
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  std::coroutine_handle<promise_type> h_;
};

namespace detail {

template <class T>
Task<T> TaskPromise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace mpiv::sim
