// Bucketed calendar queue (Brown 1988) for the engine's event heap.
//
// The binary heap's O(log n) push/pop and cache-hostile sift paths were the
// last allocation-bearing hot structure in the simulator; a calendar queue
// exploits what an event-driven simulation guarantees anyway — time moves
// forward, and most new events land a short, roughly constant distance in
// the future. Events hash into `nbuckets` (a power of two) day buckets of
// 2^shift nanoseconds each; push is an insertion into one short sorted
// bucket, pop scans at most one "year" of days from a monotonic cursor.
//
// Contract (matches Engine exactly, and the differential test in
// tests/test_sim.cpp pins it against std::priority_queue):
//   - T exposes `.t` (sim::Time, >= 0) and `.seq` (monotonically assigned
//     std::uint64_t) members.
//   - pushes never go below the last popped timestamp (the engine CHECKs
//     t >= now) — but the queue does not rely on that: push() clamps the
//     day cursor down, so even a peek-then-push below the current minimum
//     (legal whenever the minimum sits above the last pop) stays ordered;
//   - pop order is strictly (t ascending, seq ascending) — the same-time
//     FIFO tie-break the determinism goldens depend on.
//
// Resizing is lazy: geometry is recomputed (bucket count from the live
// population, bucket width from the observed inter-event spacing near the
// head) only when the population crosses a threshold, by redistributing the
// sorted event list — never on the pop path.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace mpiv::sim {

template <typename T>
class CalendarQueue {
 public:
  CalendarQueue() : buckets_(kMinBuckets) {}

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(const T& ev) {
    // Keep the pop cursor a true lower bound on every event's day. pop(),
    // rebuild(), and locate()'s empty-year fallback all advance cur_day_ to
    // the day of the *current* minimum — which can sit far above the last
    // popped timestamp that future pushes are measured against. Clamping
    // here is what keeps the year scan in locate() from skipping a new
    // near event and popping out of (t, seq) order.
    const std::uint64_t d = day(ev.t);
    if (d < cur_day_) cur_day_ = d;
    std::vector<T>& b = buckets_[bucket_of(ev.t)];
    // Buckets stay sorted ascending by (t, seq). New events usually carry
    // the largest timestamp their bucket has seen, so scan from the back —
    // the common case is a plain append.
    auto it = b.end();
    while (it != b.begin() && earlier(ev, *std::prev(it))) --it;
    b.insert(it, ev);
    ++size_;
    top_valid_ = false;
    if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets) {
      rebuild();
    }
  }

  /// Minimum event by (t, seq). Non-const: caches the located bucket so the
  /// following pop() does not re-scan.
  const T& top() {
    locate();
    return buckets_[top_bucket_].front();
  }

  void pop() {
    locate();
    std::vector<T>& b = buckets_[top_bucket_];
    cur_day_ = day(b.front().t);
    b.erase(b.begin());
    --size_;
    top_valid_ = false;
    if (size_ > 0 && buckets_.size() > kMinBuckets &&
        size_ * 4 < buckets_.size()) {
      rebuild();
    }
  }

 private:
  static constexpr std::size_t kMinBuckets = 64;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 17;

  static bool earlier(const T& a, const T& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  std::uint64_t day(std::int64_t t) const {
    return static_cast<std::uint64_t>(t) >> shift_;
  }
  std::size_t bucket_of(std::int64_t t) const {
    return static_cast<std::size_t>(day(t) & (buckets_.size() - 1));
  }

  /// Finds the bucket holding the (t, seq) minimum. Scans one calendar year
  /// of days starting at the cursor (a lower bound on the minimum's day —
  /// pop/rebuild set it from a popped or surviving minimum and push() clamps
  /// it back down); each day maps to exactly one bucket, so
  /// the first bucket whose head lies in the scanned day holds the global
  /// minimum. If a whole year is empty the survivors live more than a year
  /// out — fall back to a direct min over bucket heads and jump the cursor.
  void locate() {
    MPIV_CHECK(size_ > 0, "top/pop on an empty calendar queue");
    if (top_valid_) return;
    const std::size_t mask = buckets_.size() - 1;
    std::uint64_t d = cur_day_;
    for (std::size_t i = 0; i < buckets_.size(); ++i, ++d) {
      const std::vector<T>& b = buckets_[d & mask];
      if (!b.empty() && day(b.front().t) == d) {
        top_bucket_ = d & mask;
        top_valid_ = true;
        return;
      }
    }
    std::size_t best = buckets_.size();
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i].empty()) continue;
      if (best == buckets_.size() ||
          earlier(buckets_[i].front(), buckets_[best].front())) {
        best = i;
      }
    }
    top_bucket_ = best;
    top_valid_ = true;
    cur_day_ = day(buckets_[best].front().t);
  }

  /// Recomputes geometry from the live population and redistributes.
  /// Bucket count targets ~1 event per bucket; bucket width targets the
  /// mean inter-event gap near the head (robust against one far-future
  /// outlier stretching the whole span).
  void rebuild() {
    std::vector<T> all;
    all.reserve(size_);
    for (std::vector<T>& b : buckets_) {
      all.insert(all.end(), b.begin(), b.end());
      b.clear();
    }
    std::sort(all.begin(), all.end(),
              [](const T& a, const T& b) { return earlier(a, b); });

    const std::size_t nb = std::min(
        kMaxBuckets, std::bit_ceil(std::max(size_, kMinBuckets)));
    buckets_.assign(nb, {});
    const std::size_t head = std::min<std::size_t>(all.size() - 1, 64);
    if (head > 0) {
      const std::uint64_t span =
          static_cast<std::uint64_t>(all[head].t) -
          static_cast<std::uint64_t>(all.front().t);
      const std::uint64_t width = std::max<std::uint64_t>(span / head, 1);
      shift_ = std::min(63, static_cast<int>(std::bit_width(width)));
    }
    cur_day_ = day(all.front().t);
    // `all` is globally sorted, so per-bucket appends land already sorted.
    for (const T& ev : all) buckets_[bucket_of(ev.t)].push_back(ev);
    top_valid_ = false;
  }

  std::vector<std::vector<T>> buckets_;
  std::size_t size_ = 0;
  int shift_ = 13;  // 8.192 us days until the first rebuild calibrates
  std::uint64_t cur_day_ = 0;  // lower bound on every event's day (push clamps)
  std::size_t top_bucket_ = 0;
  bool top_valid_ = false;
};

}  // namespace mpiv::sim
