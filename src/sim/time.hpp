// Simulated time base: signed 64-bit nanoseconds.
#pragma once

#include <cstdint>

namespace mpiv::sim {

using Time = std::int64_t;

constexpr Time kNanosecond = 1;
constexpr Time kMicrosecond = 1000;
constexpr Time kMillisecond = 1000 * kMicrosecond;
constexpr Time kSecond = 1000 * kMillisecond;
constexpr Time kMinute = 60 * kSecond;

constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }
constexpr double to_sec(Time t) { return static_cast<double>(t) / 1e9; }

constexpr Time from_us(double us) { return static_cast<Time>(us * 1e3); }
constexpr Time from_ms(double ms) { return static_cast<Time>(ms * 1e6); }
constexpr Time from_sec(double s) { return static_cast<Time>(s * 1e9); }

}  // namespace mpiv::sim
