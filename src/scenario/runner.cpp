#include "scenario/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "scenario/parallel.hpp"
#include "scenario/registry.hpp"

namespace mpiv::scenario {

namespace {

/// One cluster execution of a resolved, validated spec.
struct ClusterRun {
  runtime::ClusterReport report;
  std::uint64_t events_executed = 0;
  std::uint64_t wire_bytes = 0;
  std::vector<std::uint64_t> checksums;
  workloads::PingPongResult pingpong;
  double flops = 0;
  std::string protocol_label;
  std::string trace_dump;
};

ClusterRun run_cluster(const ScenarioSpec& spec) {
  const WorkloadEntry& entry = workload_registry().at(spec.workload.name);
  WorkloadInstance wl = entry.make(spec);
  ClusterRun out;
  runtime::Cluster cluster(lower(spec));
  out.protocol_label = cluster.protocol_label();
  out.report = cluster.run(wl.app);
  out.events_executed = cluster.engine().events_executed();
  out.wire_bytes = cluster.network().bytes_sent();
  if (wl.checksums) out.checksums = wl.checksums->checksums;
  if (wl.pingpong) out.pingpong = *wl.pingpong;
  out.flops = wl.flops;
  if (trace::TraceSink* sink = cluster.trace_sink()) {
    out.trace_dump = sink->dump();
  }
  return out;
}

/// Point labels double as trace file stems; anything outside the portable
/// filename alphabet collapses to '_'.
std::string sanitize_label(const std::string& label) {
  std::string s = label;
  for (char& ch : s) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '.' || ch == '-' ||
                    ch == '_';
    if (!ok) ch = '_';
  }
  return s;
}

/// Writes one trace stream under `dir`, returning the path ("" on failure —
/// a broken report path must not abort a finished run).
std::string write_trace_file(const std::string& dir, const std::string& stem,
                             const std::string& dump) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + stem + ".trace";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return "";
  f << dump;
  return f.good() ? path : "";
}

/// Same contract for the metrics time-series CSV.
std::string write_metrics_csv(const std::string& dir, const std::string& stem,
                              const std::string& csv) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/" + stem + ".csv";
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return "";
  f << csv;
  return f.good() ? path : "";
}

}  // namespace

std::uint64_t RunResult::checksum_digest() const {
  std::uint64_t d = 0;
  for (const std::uint64_t c : checksums) d = workloads::word(d, c, 0x5eedULL);
  return d;
}

const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kFailed: return "failed";
    case Outcome::kSkipped: return "skipped";
    case Outcome::kAbandoned: return "abandoned";
    case Outcome::kCompletedShrunk: return "completed_shrunk";
    case Outcome::kCompleted: return "completed";
    case Outcome::kRecoveredExact: return "recovered_exact";
  }
  return "?";
}

OutcomeCounts RunSet::tally() const {
  OutcomeCounts t;
  for (const RunResult& r : runs) {
    switch (r.outcome()) {
      case Outcome::kFailed: ++t.failed; break;
      case Outcome::kSkipped: ++t.skipped; break;
      case Outcome::kAbandoned: ++t.abandoned; break;
      case Outcome::kCompletedShrunk: ++t.completed_shrunk; break;
      case Outcome::kCompleted: ++t.completed; break;
      case Outcome::kRecoveredExact: ++t.recovered_exact; break;
    }
  }
  return t;
}

void apply_quick(ScenarioSpec& spec) {
  for (const auto& [key, value] : spec.quick) {
    auto axis = spec.sweep.begin();
    while (axis != spec.sweep.end() && axis->first != key) ++axis;
    if (axis != spec.sweep.end()) {
      axis->second = split_list(value);
      if (axis->second.empty()) {
        throw SpecError("scenario '" + spec.name + "': quick override for '" +
                        key + "' empties the sweep axis");
      }
    } else {
      strip_fault_key(spec, key);  // injection keys override, not append
      apply_key(spec, key, value);
    }
  }
  spec.quick.clear();
}

std::vector<RunPoint> expand(const ScenarioSpec& spec) {
  ScenarioSpec base = spec;
  const auto axes = base.sweep;
  base.sweep.clear();
  base.quick.clear();

  std::vector<RunPoint> points;
  // Odometer over the cartesian product, first axis slowest.
  std::vector<std::size_t> idx(axes.size(), 0);
  while (true) {
    RunPoint p;
    p.spec = base;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const std::string& value = axes[a].second[idx[a]];
      // A swept injection key replaces the base [faults] line of its kind —
      // the same override semantics every scalar axis has.
      strip_fault_key(p.spec, axes[a].first);
      apply_key(p.spec, axes[a].first, value);
      p.axes.emplace_back(axes[a].first, value);
    }
    try {
      validate(p.spec);
    } catch (const SpecError& e) {
      // An infeasible corner of a cross-product sweep (say, el_shards = 8
      // crossed with nranks = 4) is a skipped point like a workload/rank
      // mismatch — only a sweepless spec escalates to an error.
      if (axes.empty()) throw;
      p.skipped = true;
      p.skip_reason = e.what();
    }
    if (p.axes.empty()) {
      p.label = p.spec.name;
    } else {
      for (const auto& [axis, value] : p.axes) {
        if (!p.label.empty()) p.label += ", ";
        p.label += axis == "variant" ? p.spec.variant.label
                                     : axis + "=" + value;
      }
    }
    if (!p.skipped) {
      std::string why;
      const WorkloadEntry& wl = workload_registry().at(p.spec.workload.name);
      if (!wl.valid(p.spec, &why)) {
        p.skipped = true;
        p.skip_reason = why;
      }
    }
    points.push_back(std::move(p));

    std::size_t a = axes.size();
    while (a > 0) {
      --a;
      if (++idx[a] < axes[a].second.size()) break;
      idx[a] = 0;
      if (a == 0) return points;
    }
    if (axes.empty()) return points;
  }
}

runtime::ClusterConfig lower(const ScenarioSpec& spec) {
  runtime::ClusterConfig cfg;
  cfg.nranks = spec.nranks;
  cfg.protocol = spec.variant.protocol;
  cfg.strategy = spec.variant.strategy;
  cfg.event_logger = spec.variant.event_logger;
  cfg.el_shards = spec.el_shards;
  cfg.el_standby = spec.el_standby;
  cfg.cost = spec.cost;
  cfg.seed = spec.seed;
  cfg.ckpt_policy = spec.ckpt_policy;
  cfg.ckpt_interval = spec.ckpt_interval;
  cfg.faults = spec.faults.faults;
  cfg.faults_per_minute = spec.faults.faults_per_minute;
  cfg.campaign = spec.faults.campaign;
  cfg.detection_delay = spec.detection_delay;
  cfg.replica_sync_interval = spec.replica_sync_interval;
  cfg.ulfm_repair_cost = spec.ulfm_repair_cost;
  cfg.payload_at_sender = spec.payload_at_sender;
  cfg.trace = spec.trace;
  cfg.metrics = spec.metrics;
  cfg.max_sim_time = spec.max_sim_time;
  return cfg;
}

RunResult run_point(const RunPoint& point) {
  RunResult r;
  r.label = point.label;
  r.axes = point.axes;
  r.skipped = point.skipped;
  r.skip_reason = point.skip_reason;
  if (r.skipped) return r;

  // The single place a cluster execution's fields land in the result —
  // both the measured pass and the reference-doubles-as-measurement
  // shortcut go through it.
  const auto adopt = [&r](const ClusterRun& run) {
    r.completed = run.report.completed;
    r.protocol_label = run.protocol_label;
    r.report = run.report;
    r.events_executed = run.events_executed;
    r.wire_bytes = run.wire_bytes;
    r.checksums = run.checksums;
    r.pingpong = run.pingpong;
    r.flops = run.flops;
    r.trace_dump = run.trace_dump;
  };

  // Trace streams leave the process only when the spec names a directory;
  // both return paths below funnel through this.
  const auto persist_traces = [&r, &point] {
    if (point.spec.trace_dir.empty()) return;
    const std::string stem = sanitize_label(r.label);
    if (!r.trace_dump.empty()) {
      r.trace_path = write_trace_file(point.spec.trace_dir, stem, r.trace_dump);
    }
    if (!r.reference_trace_dump.empty()) {
      r.reference_trace_path = write_trace_file(
          point.spec.trace_dir, stem + ".reference", r.reference_trace_dump);
    }
  };

  // The measured run's metrics time series leaves the process only when
  // the spec names metrics.dir (the summary always travels in the JSON).
  const auto persist_metrics = [&r, &point] {
    if (point.spec.metrics_dir.empty() || !r.report.metrics.enabled ||
        r.report.metrics.series_rows() == 0) {
      return;
    }
    r.metrics_csv_path =
        write_metrics_csv(point.spec.metrics_dir, sanitize_label(r.label),
                          r.report.metrics.series_csv());
  };

  ScenarioSpec spec = point.spec;
  if (spec.faults.midrun_rank >= 0 || spec.compare_reference) {
    // The paper's "middle of correct execution" protocol: a rank-fault-free
    // reference pass sizes the crash time for the measured pass. The
    // reference strips every rank crash (timed, stochastic, midrun) but
    // keeps the campaign's *environment* faults — EL crashes, daemon
    // crashes, server outages, link perturbations, partitions — so both
    // passes see identical timing up to the measured crash and
    // `recovered_exact` isolates recovery correctness, not incidental
    // wildcard reorderings. `compare_reference` runs the same reference
    // without scheduling a midrun crash, so a chaos campaign's outcome can
    // be classified as recovered_exact too.
    ScenarioSpec ref = spec;
    ref.compare_reference = false;
    ref.faults.faults.clear();
    ref.faults.faults_per_minute = 0.0;
    ref.faults.midrun_rank = -1;
    auto& inj = ref.faults.campaign.injections;
    inj.erase(std::remove_if(inj.begin(), inj.end(),
                             [](const fault::Injection& i) {
                               return i.target == fault::Target::kRank;
                             }),
              inj.end());
    // When the point carries no rank crashes at all (a compare_reference
    // sweep corner like rank_rate = 0), the reference IS the measured run
    // — the simulator is deterministic, so don't pay for it twice.
    const bool ref_is_measured =
        spec.faults.midrun_rank < 0 && spec.faults.faults.empty() &&
        spec.faults.faults_per_minute == 0.0 &&
        inj.size() == spec.faults.campaign.injections.size();
    const ClusterRun ref_run = run_cluster(ref);
    r.has_reference = true;
    r.reference_time = ref_run.report.completion_time;
    r.reference_checksums = ref_run.checksums;
    r.reference_trace_dump = ref_run.trace_dump;
    if (!ref_run.report.completed || ref_is_measured) {
      // Either the reference never finished (nothing to measure against)
      // or it doubles as the measurement itself.
      adopt(ref_run);
      r.recovered_exact = ref_is_measured && r.completed && !r.checksums.empty();
      persist_traces();
      persist_metrics();
      return r;
    }
    if (spec.faults.midrun_rank >= 0) {
      spec.faults.faults.push_back(runtime::FaultSpec{
          static_cast<sim::Time>(static_cast<double>(r.reference_time) *
                                 spec.faults.midrun_frac),
          spec.faults.midrun_rank});
      spec.faults.midrun_rank = -1;
    }
  }

  const ClusterRun run = run_cluster(spec);
  adopt(run);
  if (r.has_reference) {
    r.recovered_exact = !r.checksums.empty() &&
                        r.checksums == r.reference_checksums;
  }
  persist_traces();
  persist_metrics();
  return r;
}

RunResult run_spec(const ScenarioSpec& spec) {
  if (!spec.sweep.empty()) {
    throw SpecError("scenario '" + spec.name +
                    "': run_spec expects no sweep axes — use run()");
  }
  validate(spec);
  std::vector<RunPoint> points = expand(spec);
  if (points.front().skipped) {
    throw SpecError("scenario '" + spec.name + "': " +
                    points.front().skip_reason);
  }
  return run_point(points.front());
}

RunSet run(const ScenarioSpec& spec, const RunOptions& options) {
  ScenarioSpec resolved = spec;
  if (options.quick) {
    apply_quick(resolved);
  } else {
    resolved.quick.clear();
  }
  RunSet set;
  set.scenario = resolved.name;
  set.origin = "<builder>";
  set.quick = options.quick;
  const std::vector<RunPoint> points = expand(resolved);
  const int jobs =
      options.jobs > 0 ? options.jobs : resolved.runner_parallelism;
  if (jobs > 1 && points.size() > 1) {
    // Fan the grid across forked workers; results come back in sweep order
    // carrying prerendered JSON stanzas, so the report is byte-identical
    // to the serial loop below.
    set.runs = detail::run_points_parallel(points, jobs, options);
    return set;
  }
  for (const RunPoint& p : points) {
    RunResult r = run_point(p);
    if (options.on_result) options.on_result(p, r);
    set.runs.push_back(std::move(r));
  }
  return set;
}

// ---------------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------------

namespace {

void json_escape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out << buf;
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

std::string json_num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  // JSON has no inf/nan.
  if (std::string(buf).find_first_of("in") != std::string::npos) return "null";
  return buf;
}

void write_run(std::ostringstream& out, const RunResult& r,
               const std::string& indent) {
  if (!r.prerendered_json.empty()) {
    // A parallel worker already rendered this run at zero indent; splice it
    // back re-indented. json_escape leaves no raw newline inside strings,
    // so every '\n' in the fragment is structural and the splice is
    // byte-identical to rendering in-process.
    out << indent;
    for (const char ch : r.prerendered_json) {
      out << ch;
      if (ch == '\n') out << indent;
    }
    return;
  }
  auto key = [&out, &indent](const char* k) -> std::ostringstream& {
    out << indent << "  ";
    json_escape(out, k);
    out << ": ";
    return out;
  };
  out << indent << "{\n";
  key("label");
  json_escape(out, r.label);
  out << ",\n";
  key("axes") << "{";
  for (std::size_t i = 0; i < r.axes.size(); ++i) {
    if (i) out << ", ";
    json_escape(out, r.axes[i].first);
    out << ": ";
    json_escape(out, r.axes[i].second);
  }
  out << "},\n";
  if (r.failed) {
    // Worker-crash containment: the point ran in a worker that died before
    // delivering a result. Everything known about it is why it failed.
    key("skipped") << "false,\n";
    key("outcome");
    json_escape(out, outcome_name(r.outcome()));
    out << ",\n";
    key("failed") << "true,\n";
    key("fail_reason");
    json_escape(out, r.fail_reason);
    out << "\n" << indent << "}";
    return;
  }
  if (r.skipped) {
    key("skipped") << "true,\n";
    key("outcome");
    json_escape(out, outcome_name(r.outcome()));
    out << ",\n";
    key("skip_reason");
    json_escape(out, r.skip_reason);
    out << "\n" << indent << "}";
    return;
  }
  key("skipped") << "false,\n";
  key("outcome");
  json_escape(out, outcome_name(r.outcome()));
  out << ",\n";
  key("protocol");
  json_escape(out, r.protocol_label);
  out << ",\n";
  key("completed") << (r.completed ? "true" : "false") << ",\n";
  key("sim_time_s") << json_num(r.sim_seconds()) << ",\n";
  key("faults_injected") << r.report.faults_injected << ",\n";
  const ftapi::RankStats t = r.report.totals();
  key("app_msgs") << t.app_msgs_sent << ",\n";
  key("app_bytes") << t.app_bytes_sent << ",\n";
  key("pb_events") << t.pb_events_sent << ",\n";
  key("pb_bytes") << t.pb_bytes_sent << ",\n";
  key("pb_pct") << json_num(r.report.piggyback_pct()) << ",\n";
  key("pb_peak_msg_bytes") << t.pb_peak_msg_bytes << ",\n";
  key("pb_peak_msg_events") << t.pb_peak_msg_events << ",\n";
  key("pb_peak_post_el_fault_bytes") << t.pb_peak_post_el_fault_bytes << ",\n";
  key("pb_peak_post_el_fault_events") << t.pb_peak_post_el_fault_events
                                      << ",\n";
  key("pb_send_cpu_s") << json_num(sim::to_sec(t.pb_send_cpu)) << ",\n";
  key("pb_recv_cpu_s") << json_num(sim::to_sec(t.pb_recv_cpu)) << ",\n";
  key("events_executed") << r.events_executed << ",\n";
  key("wire_bytes") << r.wire_bytes << ",\n";
  {
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(r.checksum_digest()));
    key("checksum");
    json_escape(out, buf);
    out << ",\n";
  }
  if (r.flops > 0) {
    key("mops") << json_num(r.mops()) << ",\n";
  }
  key("el") << "{\"events_stored\": " << r.report.el_stats.events_stored
            << ", \"acks_sent\": " << r.report.el_stats.acks_sent
            << ", \"peak_queue\": " << r.report.el_stats.peak_queue
            << ", \"mean_ack_us\": " << json_num(t.el_ack_latency_us.mean());
  if (r.report.metrics.enabled) {
    // Tail percentiles ride along only when metrics are on, keeping the
    // metrics-off report shape byte-identical to the pre-metrics goldens.
    out << ", \"p50_ack_us\": " << json_num(t.el_ack_latency_us.p50())
        << ", \"p99_ack_us\": " << json_num(t.el_ack_latency_us.p99());
  }
  out << "},\n";
  key("recovery") << "{\"events\": " << t.recovery_events
                  << ", \"collect_ms\": "
                  << json_num(sim::to_ms(t.recovery_collect_time))
                  << ", \"total_ms\": "
                  << json_num(sim::to_ms(t.recovery_total_time)) << "},\n";
  const fault::FaultCounts& fc = r.report.fault_counts;
  key("faults") << "{\"rank_crashes\": " << fc.rank_crashes
                << ", \"daemon_crashes\": " << fc.daemon_crashes
                << ", \"el_crashes\": " << fc.el_crashes
                << ", \"el_outages\": " << fc.el_outages
                << ", \"el_failovers\": " << fc.el_failovers
                << ", \"ckpt_outages\": " << fc.ckpt_outages
                << ", \"link_faults\": " << fc.link_faults
                << ", \"partitions\": " << fc.partitions
                << ", \"el_suspects\": " << fc.el_suspects
                << ", \"el_reconciles\": " << fc.el_reconciles
                << ", \"first_el_fault_s\": "
                << json_num(sim::to_sec(r.report.first_el_fault)) << "},\n";
  // One timeline entry per recovery: the per-phase breakdown Fig. 10's
  // scalar hides. Interrupted recoveries (crash mid-recovery) report
  // complete = false with the phases that did finish.
  key("recoveries") << "[";
  for (std::size_t i = 0; i < r.report.recoveries.size(); ++i) {
    const fault::RecoveryRecord& rec = r.report.recoveries[i];
    if (i) out << ", ";
    out << "{\"rank\": " << rec.rank
        << ", \"coordinated\": " << (rec.coordinated ? "true" : "false")
        << ", \"complete\": " << (rec.complete() ? "true" : "false")
        << ", \"fault_s\": " << json_num(sim::to_sec(rec.fault_at))
        << ", \"events\": " << rec.replay_events;
    if (rec.restart_at != 0) {
      out << ", \"detect_ms\": " << json_num(sim::to_ms(rec.detect_ns()));
    }
    if (rec.image_at != 0) {
      out << ", \"image_ms\": " << json_num(sim::to_ms(rec.image_ns()));
    }
    if (rec.collect_at != 0) {
      out << ", \"collect_ms\": " << json_num(sim::to_ms(rec.collect_ns()));
    }
    if (rec.complete()) {
      out << ", \"replay_ms\": " << json_num(sim::to_ms(rec.replay_ns()))
          << ", \"total_ms\": " << json_num(sim::to_ms(rec.total_ns()));
    }
    out << "}";
  }
  out << "]";
  if (!r.report.daemon_outages.empty()) {
    out << ",\n";
    // The daemon failure domain: the app survived each of these, stalled,
    // while the dispatcher respawned the daemon. An incomplete record means
    // a rank crash superseded the respawn.
    key("daemon_outages") << "[";
    for (std::size_t i = 0; i < r.report.daemon_outages.size(); ++i) {
      const fault::DaemonOutageRecord& rec = r.report.daemon_outages[i];
      if (i) out << ", ";
      out << "{\"rank\": " << rec.rank
          << ", \"complete\": " << (rec.complete() ? "true" : "false")
          << ", \"interrupted\": " << (rec.interrupted ? "true" : "false")
          << ", \"fault_s\": " << json_num(sim::to_sec(rec.fault_at));
      if (rec.complete()) {
        out << ", \"down_ms\": " << json_num(sim::to_ms(rec.down_ns()))
            << ", \"held_frames\": " << rec.held_frames;
      }
      out << "}";
    }
    out << "]";
  }
  if (!r.report.repairs.empty()) {
    out << ",\n";
    // ULFM repairs: fault -> revoke broadcast -> agreement/rebuild ->
    // survivors relaunched shrunk. An incomplete record means the run hit
    // max_sim_time inside the repair window.
    key("repairs") << "[";
    for (std::size_t i = 0; i < r.report.repairs.size(); ++i) {
      const fault::RepairRecord& rec = r.report.repairs[i];
      if (i) out << ", ";
      out << "{\"victim\": " << rec.victim
          << ", \"survivors\": " << rec.survivors
          << ", \"complete\": " << (rec.complete() ? "true" : "false")
          << ", \"fault_s\": " << json_num(sim::to_sec(rec.fault_at));
      if (rec.revoke_at != 0) {
        out << ", \"detect_ms\": " << json_num(sim::to_ms(rec.detect_ns()));
      }
      if (rec.complete()) {
        out << ", \"repair_ms\": " << json_num(sim::to_ms(rec.repair_ns()))
            << ", \"total_ms\": " << json_num(sim::to_ms(rec.total_ns()));
      }
      out << "}";
    }
    out << "]";
  }
  if (!r.report.promotions.empty()) {
    out << ",\n";
    // Replica promotions: the shadow took over in place — no rollback, so
    // the only cost is the switchover window holding the victim's frames.
    key("promotions") << "[";
    for (std::size_t i = 0; i < r.report.promotions.size(); ++i) {
      const fault::PromotionRecord& rec = r.report.promotions[i];
      if (i) out << ", ";
      out << "{\"rank\": " << rec.rank
          << ", \"complete\": " << (rec.complete() ? "true" : "false")
          << ", \"fault_s\": " << json_num(sim::to_sec(rec.fault_at));
      if (rec.complete()) {
        out << ", \"promote_ms\": " << json_num(sim::to_ms(rec.promote_ns()))
            << ", \"held_frames\": " << rec.held_frames;
      }
      out << "}";
    }
    out << "]";
  }
  if (t.replica_sync_msgs != 0 || t.replica_mirror_cpu != 0) {
    out << ",\n";
    // The replication hybrid's steady-state price: the visible slice of the
    // 2x compute (mirror copies) plus the shadow-sync fabric traffic.
    key("replica") << "{\"sync_msgs\": " << t.replica_sync_msgs
                   << ", \"sync_bytes\": " << t.replica_sync_bytes
                   << ", \"mirror_cpu_s\": "
                   << json_num(sim::to_sec(t.replica_mirror_cpu)) << "}";
  }
  if (t.ulfm_revokes_seen != 0 || t.ulfm_repairs != 0) {
    out << ",\n";
    key("ulfm") << "{\"revokes_seen\": " << t.ulfm_revokes_seen
                << ", \"repairs\": " << t.ulfm_repairs << "}";
  }
  if (!r.report.el_reconciles.empty()) {
    out << ",\n";
    // Split-brain merges: a suspected failover behind a service cut left
    // two shards accepting submissions; the heal folded the stale log into
    // the successor's, dropping (creator, seq) duplicates.
    key("el_reconciles") << "[";
    for (std::size_t i = 0; i < r.report.el_reconciles.size(); ++i) {
      const fault::ElReconcileRecord& rec = r.report.el_reconciles[i];
      if (i) out << ", ";
      out << "{\"stale_shard\": " << rec.stale_shard
          << ", \"successor\": " << rec.successor
          << ", \"moved_ranks\": " << rec.moved_ranks
          << ", \"complete\": " << (rec.complete() ? "true" : "false")
          << ", \"detect_ms\": " << json_num(sim::to_ms(rec.detect_ns()));
      if (rec.complete()) {
        out << ", \"split_ms\": " << json_num(sim::to_ms(rec.split_ns()))
            << ", \"merge_ms\": " << json_num(sim::to_ms(rec.merge_ns()))
            << ", \"merged_records\": " << rec.merged_records
            << ", \"dup_dropped\": " << rec.dup_dropped;
        if (rec.first_dup_rank >= 0) {
          out << ", \"first_dup_rank\": " << rec.first_dup_rank
              << ", \"first_dup_seq\": " << rec.first_dup_seq;
        }
      }
      out << "}";
    }
    out << "]";
  }
  {
    bool split_brain = false;
    for (const ftapi::RankStats& s : r.report.rank_stats) {
      split_brain = split_brain || s.el_dup_submissions != 0 ||
                    s.el_reconciled_records != 0 || s.stale_acks_fenced != 0;
    }
    // Per-rank split-brain counters, emitted only when a run actually
    // exercised the dual-log window so fault-free JSON keeps its shape.
    if (split_brain) {
      out << ",\n";
      key("rank_stats") << "[";
      for (std::size_t i = 0; i < r.report.rank_stats.size(); ++i) {
        const ftapi::RankStats& s = r.report.rank_stats[i];
        if (i) out << ", ";
        out << "{\"rank\": " << i
            << ", \"el_dup_submissions\": " << s.el_dup_submissions
            << ", \"el_reconciled_records\": " << s.el_reconciled_records
            << ", \"stale_acks_fenced\": " << s.stale_acks_fenced << "}";
      }
      out << "]";
    }
  }
  if (r.has_reference) {
    out << ",\n";
    key("reference") << "{\"sim_time_s\": "
                     << json_num(sim::to_sec(r.reference_time))
                     << ", \"recovered_exact\": "
                     << (r.recovered_exact ? "true" : "false") << "}";
  }
  if (!r.trace_dump.empty()) {
    out << ",\n";
    key("trace") << "{\"records\": ";
    // Header + lane lines start with '#'; everything else is one record.
    std::uint64_t records = 0;
    bool line_start = true;
    bool comment = false;
    for (const char ch : r.trace_dump) {
      if (line_start) comment = ch == '#';
      line_start = ch == '\n';
      if (line_start && !comment) ++records;
    }
    out << records;
    if (!r.trace_path.empty()) {
      out << ", \"path\": ";
      json_escape(out, r.trace_path);
    }
    if (!r.reference_trace_path.empty()) {
      out << ", \"reference_path\": ";
      json_escape(out, r.reference_trace_path);
    }
    out << "}";
  }
  if (r.report.metrics.enabled) {
    const metrics::Snapshot& ms = r.report.metrics;
    out << ",\n";
    key("metrics") << "{\n";
    out << indent << "    \"sample_interval_ns\": " << ms.sample_interval
        << ",\n";
    out << indent << "    \"counters\": {";
    for (std::size_t i = 0; i < ms.counters.size(); ++i) {
      if (i) out << ", ";
      json_escape(out, ms.counters[i].first);
      out << ": " << ms.counters[i].second;
    }
    out << "},\n";
    out << indent << "    \"gauges\": {";
    for (std::size_t i = 0; i < ms.gauges.size(); ++i) {
      if (i) out << ", ";
      json_escape(out, ms.gauges[i].first);
      out << ": " << ms.gauges[i].second;
    }
    out << "},\n";
    out << indent << "    \"histograms\": {";
    for (std::size_t i = 0; i < ms.histograms.size(); ++i) {
      const metrics::HistogramSummary& h = ms.histograms[i];
      out << (i ? "," : "") << "\n" << indent << "      ";
      json_escape(out, h.name);
      out << ": {\"count\": " << h.count
          << ", \"mean\": " << json_num(h.mean)
          << ", \"min\": " << json_num(h.min)
          << ", \"max\": " << json_num(h.max)
          << ", \"p50\": " << json_num(h.p50)
          << ", \"p90\": " << json_num(h.p90)
          << ", \"p99\": " << json_num(h.p99) << "}";
    }
    if (!ms.histograms.empty()) out << "\n" << indent << "    ";
    out << "},\n";
    out << indent << "    \"series\": {\"columns\": [";
    for (std::size_t i = 0; i < ms.series_columns.size(); ++i) {
      if (i) out << ", ";
      json_escape(out, ms.series_columns[i]);
    }
    out << "], \"rows\": " << ms.series_rows()
        << ", \"dropped\": " << ms.series_dropped;
    if (!r.metrics_csv_path.empty()) {
      out << ", \"csv_path\": ";
      json_escape(out, r.metrics_csv_path);
    }
    out << "}\n" << indent << "  }";
  }
  if (!r.pingpong.points.empty()) {
    out << ",\n";
    key("points") << "[";
    for (std::size_t i = 0; i < r.pingpong.points.size(); ++i) {
      const auto& p = r.pingpong.points[i];
      if (i) out << ", ";
      out << "{\"bytes\": " << p.bytes
          << ", \"latency_us\": " << json_num(p.latency_us)
          << ", \"bandwidth_mbps\": " << json_num(p.bandwidth_mbps) << "}";
    }
    out << "]";
  }
  out << "\n" << indent << "}";
}

void write_set(std::ostringstream& out, const RunSet& set,
               const std::string& indent) {
  out << indent << "{\n";
  out << indent << "  \"scenario\": ";
  json_escape(out, set.scenario);
  out << ",\n" << indent << "  \"origin\": ";
  json_escape(out, set.origin);
  out << ",\n" << indent << "  \"quick\": " << (set.quick ? "true" : "false");
  const OutcomeCounts t = set.tally();
  out << ",\n"
      << indent << "  \"outcomes\": {\"recovered_exact\": " << t.recovered_exact
      << ", \"completed\": " << t.completed
      << ", \"completed_shrunk\": " << t.completed_shrunk
      << ", \"abandoned\": " << t.abandoned << ", \"failed\": " << t.failed
      << ", \"skipped\": " << t.skipped
      << ", \"total\": " << t.total() << "}";
  out << ",\n" << indent << "  \"runs\": [\n";
  for (std::size_t i = 0; i < set.runs.size(); ++i) {
    write_run(out, set.runs[i], indent + "    ");
    out << (i + 1 < set.runs.size() ? ",\n" : "\n");
  }
  out << indent << "  ]\n" << indent << "}";
}

}  // namespace

std::string run_json_fragment(const RunResult& r) {
  std::ostringstream out;
  write_run(out, r, "");
  return out.str();
}

std::string to_json(const RunSet& set) {
  std::ostringstream out;
  write_set(out, set, "");
  out << "\n";
  return out.str();
}

std::string to_json(const std::vector<RunSet>& sets) {
  std::ostringstream out;
  out << "{\n  \"reports\": [\n";
  for (std::size_t i = 0; i < sets.size(); ++i) {
    write_set(out, sets[i], "    ");
    out << (i + 1 < sets.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace mpiv::scenario
