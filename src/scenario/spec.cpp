// Spec plumbing: typed parameter access, the shared key=value mutation
// path, the scenario text format, and build-time validation.
#include "scenario/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "scenario/registry.hpp"

namespace mpiv::scenario {

namespace {

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  throw SpecError("bad value '" + value + "' for '" + key + "' (expected " +
                  expected + ")");
}

std::int64_t parse_i64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const std::int64_t v = std::stoll(value, &used);
    if (trim(value.substr(used)).empty()) return v;
  } catch (const std::exception&) {
  }
  bad_value(key, value, "an integer");
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    if (!value.empty() && value[0] != '-') {
      const std::uint64_t v = std::stoull(value, &used, 0);
      if (trim(value.substr(used)).empty()) return v;
    }
  } catch (const std::exception&) {
  }
  bad_value(key, value, "an unsigned integer");
}

double parse_f64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (trim(value.substr(used)).empty()) return v;
  } catch (const std::exception&) {
  }
  bad_value(key, value, "a number");
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "on" || value == "1" || value == "yes") {
    return true;
  }
  if (value == "false" || value == "off" || value == "0" || value == "no") {
    return false;
  }
  bad_value(key, value, "a boolean (true/false)");
}

/// Durations accept a unit suffix: "250ms", "5s", "32us", "123456ns";
/// a bare number is nanoseconds.
sim::Time parse_time(const std::string& key, const std::string& value) {
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(value, &used);
  } catch (const std::exception&) {
    bad_value(key, value, "a duration like 250ms / 5s / 32us");
  }
  const std::string unit = trim(value.substr(used));
  if (unit.empty() || unit == "ns") return static_cast<sim::Time>(v);
  if (unit == "us") return sim::from_us(v);
  if (unit == "ms") return sim::from_ms(v);
  if (unit == "s") return sim::from_sec(v);
  if (unit == "min") return static_cast<sim::Time>(v * sim::kMinute);
  if (unit == "h") return static_cast<sim::Time>(v * 60 * sim::kMinute);
  bad_value(key, value, "a duration like 250ms / 5s / 32us");
}

ckpt::Policy parse_policy(const std::string& key, const std::string& value) {
  if (value == "none") return ckpt::Policy::kNone;
  if (value == "round-robin") return ckpt::Policy::kRoundRobin;
  if (value == "random") return ckpt::Policy::kRandom;
  if (value == "all-at-once") return ckpt::Policy::kAllAtOnce;
  bad_value(key, value, "none / round-robin / random / all-at-once");
}

/// Parses a partition rank group: '+'-separated elements, each a rank or
/// an inclusive range "a-b" ("0-2+5" = {0,1,2,5}). Commas are taken by the
/// sweep-axis tokenizer, so groups use '+'.
std::vector<int> parse_rank_group(const std::string& key,
                                  const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t plus = s.find('+', pos);
    if (plus == std::string::npos) plus = s.size();
    const std::string tok = trim(s.substr(pos, plus - pos));
    pos = plus + 1;
    if (tok.empty()) bad_value(key, s, "ranks like '0+1' or ranges '0-3'");
    // A '-' after the first character splits a range (a leading '-' would
    // be a negative rank, rejected downstream by validation).
    const std::size_t dash = tok.find('-', 1);
    if (dash == std::string::npos) {
      out.push_back(static_cast<int>(parse_i64(key, tok)));
    } else {
      const int lo = static_cast<int>(parse_i64(key, tok.substr(0, dash)));
      const int hi = static_cast<int>(parse_i64(key, tok.substr(dash + 1)));
      if (hi < lo) bad_value(key, s, "an ascending range like '0-3'");
      for (int r = lo; r <= hi; ++r) out.push_back(r);
    }
    if (pos > s.size()) break;
  }
  return out;
}

std::string format_rank_group(const std::vector<int>& ranks) {
  std::string out;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    if (i) out += "+";
    out += std::to_string(ranks[i]);
  }
  return out;
}

/// Parses one side of a service partition: the rank-group grammar extended
/// with service tokens — "elK" names EL shard K, "ckpt" the checkpoint
/// server ("el0+2+4" = shard 0 plus ranks {2,4}). Ranks land in `ranks`,
/// service ids in `services` (fault::kCkptService for the ckpt server).
void parse_service_group(const std::string& key, const std::string& s,
                         std::vector<int>& ranks, std::vector<int>& services) {
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t plus = s.find('+', pos);
    if (plus == std::string::npos) plus = s.size();
    const std::string tok = trim(s.substr(pos, plus - pos));
    pos = plus + 1;
    if (tok.empty()) {
      bad_value(key, s, "ranks/ranges plus service tokens like 'el0' / 'ckpt'");
    }
    if (tok == "ckpt") {
      services.push_back(fault::kCkptService);
    } else if (tok.size() > 2 && tok.rfind("el", 0) == 0 &&
               tok.find_first_not_of("0123456789", 2) == std::string::npos) {
      services.push_back(static_cast<int>(parse_i64(key, tok.substr(2))));
    } else {
      const std::size_t dash = tok.find('-', 1);
      if (dash == std::string::npos) {
        ranks.push_back(static_cast<int>(parse_i64(key, tok)));
      } else {
        const int lo = static_cast<int>(parse_i64(key, tok.substr(0, dash)));
        const int hi = static_cast<int>(parse_i64(key, tok.substr(dash + 1)));
        if (hi < lo) bad_value(key, s, "an ascending range like '0-3'");
        for (int r = lo; r <= hi; ++r) ranks.push_back(r);
      }
    }
    if (pos > s.size()) break;
  }
}

std::string format_service_group(const std::vector<int>& ranks,
                                 const std::vector<int>& services) {
  std::string out = format_rank_group(ranks);
  for (const int s : services) {
    if (!out.empty()) out += "+";
    out += s == fault::kCkptService ? std::string("ckpt")
                                    : "el" + std::to_string(s);
  }
  return out;
}

/// Splits ':'-separated injection fields, trimming each.
std::vector<std::string> split_fields(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t colon = s.find(':', pos);
    if (colon == std::string::npos) colon = s.size();
    out.push_back(trim(s.substr(pos, colon - pos)));
    pos = colon + 1;
  }
  return out;
}

/// Campaign trigger token: a time ("120ms") or an execution count
/// ("ckpt@5" on crash_rank, "stored@2000" on crash_el — '@', because '#'
/// starts a comment in scenario files).
void parse_fault_trigger(const std::string& key, const std::string& tok,
                         const char* event_word, fault::Trigger event_trigger,
                         fault::Injection& inj) {
  const std::string prefix = std::string(event_word) + "@";
  if (tok.rfind(prefix, 0) == 0) {
    inj.trigger = event_trigger;
    inj.nth = parse_u64(key, tok.substr(prefix.size()));
    return;
  }
  inj.trigger = fault::Trigger::kAt;
  inj.at = parse_time(key, tok);
}

[[noreturn]] void bad_fields(const std::string& key, const std::string& value,
                             const char* expected) {
  bad_value(key, value, expected);
}

/// The `faults.*` key family — the scenario-file face of fault::Campaign.
/// Every key handled here MUST be listed in fault_key_table() (the parser
/// rejects unlisted keys up front, and a unit test feeds each table
/// example back through this function), so the table, the CLI listing and
/// docs/SCENARIOS.md cannot silently diverge.
bool apply_fault_key(ScenarioSpec& spec, const std::string& key,
                     const std::string& value) {
  bool listed = false;
  for (const FaultKeyInfo& e : fault_key_table()) listed |= key == e.key;
  if (!listed) return false;
  fault::Campaign& c = spec.faults.campaign;
  const std::vector<std::string> f = split_fields(value);
  if (key == "faults.crash_rank") {
    // "<time>:<rank>" or "ckpt@N:<rank>".
    if (f.size() != 2) bad_fields(key, value, "'<time|ckpt@N>:<rank>'");
    fault::Injection inj;
    inj.target = fault::Target::kRank;
    parse_fault_trigger(key, f[0], "ckpt", fault::Trigger::kOnCheckpoint, inj);
    inj.index = static_cast<int>(parse_i64(key, f[1]));
    c.injections.push_back(inj);
  } else if (key == "faults.crash_el") {
    // "<time>:<shard>" or "stored@N:<shard>".
    if (f.size() != 2) bad_fields(key, value, "'<time|stored@N>:<shard>'");
    fault::Injection inj;
    inj.target = fault::Target::kElShard;
    parse_fault_trigger(key, f[0], "stored", fault::Trigger::kOnElStored, inj);
    inj.index = static_cast<int>(parse_i64(key, f[1]));
    c.injections.push_back(inj);
  } else if (key == "faults.el_outage") {
    if (f.size() != 3) bad_fields(key, value, "'<time>:<shard>:<duration>'");
    fault::Injection inj;
    inj.target = fault::Target::kElShard;
    inj.action = fault::Action::kOutage;
    inj.at = parse_time(key, f[0]);
    inj.index = static_cast<int>(parse_i64(key, f[1]));
    inj.duration = parse_time(key, f[2]);
    c.injections.push_back(inj);
  } else if (key == "faults.ckpt_outage") {
    if (f.size() != 2) bad_fields(key, value, "'<time>:<duration>'");
    fault::Injection inj;
    inj.target = fault::Target::kCkptServer;
    inj.action = fault::Action::kOutage;
    inj.at = parse_time(key, f[0]);
    inj.duration = parse_time(key, f[1]);
    c.injections.push_back(inj);
  } else if (key == "faults.link_latency") {
    if (f.size() != 4) {
      bad_fields(key, value, "'<time>:<rank>:<extra>:<duration>'");
    }
    fault::Injection inj;
    inj.target = fault::Target::kLink;
    inj.action = fault::Action::kLatencySpike;
    inj.at = parse_time(key, f[0]);
    inj.index = static_cast<int>(parse_i64(key, f[1]));
    inj.magnitude = parse_time(key, f[2]);
    inj.duration = parse_time(key, f[3]);
    c.injections.push_back(inj);
  } else if (key == "faults.link_drop") {
    if (f.size() != 3 && f.size() != 4) {
      bad_fields(key, value, "'<time>:<rank>:<duration>[:<backoff>]'");
    }
    fault::Injection inj;
    inj.target = fault::Target::kLink;
    inj.action = fault::Action::kDropWindow;
    inj.at = parse_time(key, f[0]);
    inj.index = static_cast<int>(parse_i64(key, f[1]));
    inj.duration = parse_time(key, f[2]);
    inj.magnitude =
        f.size() == 4 ? parse_time(key, f[3]) : 5 * sim::kMillisecond;
    c.injections.push_back(inj);
  } else if (key == "faults.rank_rate") {
    // A Poisson crash process over random live ranks — the campaign twin of
    // the legacy `faults_per_minute` key, salted/swept independently. Rate
    // 0 = stream off, so a sweep axis can include the fault-free corner.
    const double rate = parse_f64(key, value);
    if (rate < 0) bad_value(key, value, "a rate >= 0 (0 = off)");
    if (rate > 0) {
      fault::Injection inj;
      inj.target = fault::Target::kRank;
      inj.index = -1;
      inj.trigger = fault::Trigger::kRate;
      inj.rate_per_minute = rate;
      c.injections.push_back(inj);
    }
  } else if (key == "faults.crash_daemon") {
    // "<time>:<rank>[:<downtime>]" — only the communication daemon dies;
    // the app rank stalls until the dispatcher respawns it.
    if (f.size() != 2 && f.size() != 3) {
      bad_fields(key, value, "'<time>:<rank>[:<downtime>]'");
    }
    fault::Injection inj;
    inj.target = fault::Target::kDaemon;
    inj.at = parse_time(key, f[0]);
    inj.index = static_cast<int>(parse_i64(key, f[1]));
    if (f.size() == 3) inj.duration = parse_time(key, f[2]);
    c.injections.push_back(inj);
  } else if (key == "faults.daemon_rate") {
    // The daemon twin of rank_rate: Poisson daemon crashes over random
    // live ranks (the rank survives each one, stalled). 0 = off.
    const double rate = parse_f64(key, value);
    if (rate < 0) bad_value(key, value, "a rate >= 0 (0 = off)");
    if (rate > 0) {
      fault::Injection inj;
      inj.target = fault::Target::kDaemon;
      inj.index = -1;
      inj.trigger = fault::Trigger::kRate;
      inj.rate_per_minute = rate;
      c.injections.push_back(inj);
    }
  } else if (key == "faults.daemon_restart_delay") {
    c.daemon_restart_delay = parse_time(key, value);
  } else if (key == "faults.partition") {
    // "<time>:<groupA>|<groupB>:<duration>[:<backoff>]" with '+'-separated
    // ranks or 'a-b' ranges per group, e.g. "10ms:0-3|4-7:25ms:2ms".
    if (f.size() != 3 && f.size() != 4) {
      bad_fields(key, value, "'<time>:<ranks>|<ranks>:<duration>[:<backoff>]'");
    }
    const std::size_t bar = f[1].find('|');
    if (bar == std::string::npos) {
      bad_fields(key, value, "two '|'-separated rank groups like '0-3|4-7'");
    }
    fault::Injection inj;
    inj.target = fault::Target::kFabric;
    inj.action = fault::Action::kPartition;
    inj.at = parse_time(key, f[0]);
    inj.group_a = parse_rank_group(key, trim(f[1].substr(0, bar)));
    inj.group_b = parse_rank_group(key, trim(f[1].substr(bar + 1)));
    inj.duration = parse_time(key, f[2]);
    inj.magnitude =
        f.size() == 4 ? parse_time(key, f[3]) : 2 * sim::kMillisecond;
    c.injections.push_back(inj);
  } else if (key == "faults.partition_services") {
    // Like faults.partition, but each side may also name service endpoints:
    // "elK" (EL shard K) or "ckpt", e.g. "30ms:el0|2+4:80ms:2ms" cuts shard
    // 0 away from ranks 2 and 4 (split-brain when a failover fires inside
    // the window).
    if (f.size() != 3 && f.size() != 4) {
      bad_fields(key, value,
                 "'<time>:<group>|<group>:<duration>[:<backoff>]' with "
                 "ranks, 'elK' and 'ckpt' tokens per group");
    }
    const std::size_t bar = f[1].find('|');
    if (bar == std::string::npos) {
      bad_fields(key, value, "two '|'-separated groups like 'el0|2+4'");
    }
    fault::Injection inj;
    inj.target = fault::Target::kFabric;
    inj.action = fault::Action::kPartition;
    inj.at = parse_time(key, f[0]);
    parse_service_group(key, trim(f[1].substr(0, bar)), inj.group_a,
                        inj.services_a);
    parse_service_group(key, trim(f[1].substr(bar + 1)), inj.group_b,
                        inj.services_b);
    if (inj.services_a.empty() && inj.services_b.empty()) {
      bad_fields(key, value,
                 "at least one 'elK' / 'ckpt' token (use faults.partition "
                 "for rank-only cuts)");
    }
    inj.duration = parse_time(key, f[2]);
    inj.magnitude =
        f.size() == 4 ? parse_time(key, f[3]) : 2 * sim::kMillisecond;
    c.injections.push_back(inj);
  } else if (key == "faults.detection_delay") {
    c.detection_delay = parse_time(key, value);
    if (c.detection_delay <= 0) {
      bad_value(key, value, "a positive duration like 5ms");
    }
  } else if (key == "faults.el_failover") {
    if (value == "reassign") {
      c.el_failover = fault::ElFailover::kReassign;
    } else if (value == "standby") {
      c.el_failover = fault::ElFailover::kStandby;
    } else {
      bad_value(key, value, "reassign / standby");
    }
  } else if (key == "faults.el_failover_delay") {
    c.el_failover_delay = parse_time(key, value);
  } else if (key == "faults.service_retry") {
    c.service_retry = parse_time(key, value);
  } else if (key == "faults.seed_salt") {
    c.seed_salt = parse_u64(key, value);
  } else {
    return false;
  }
  return true;
}

std::string protocol_name(runtime::ProtocolKind kind) {
  for (const auto& entry : protocols().entries()) {
    if (entry.second.kind == kind) return entry.first;
  }
  return "?";
}

std::string strategy_name(causal::StrategyKind kind) {
  for (const auto& entry : strategies().entries()) {
    if (entry.second.kind == kind) return entry.first;
  }
  return "?";
}

/// Recomputes the canonical name + label after a piecemeal edit
/// (protocol / strategy / event_logger keys).
void refresh_variant(VariantSpec& v) {
  if (v.protocol == runtime::ProtocolKind::kCausal) {
    const StrategyEntry& s = strategy_entry(v.strategy);
    v.name = strategy_name(v.strategy) + (v.event_logger ? ":el" : ":noel");
    v.label = std::string(s.display) + (v.event_logger ? " (EL)" : " (no EL)");
  } else {
    const ProtocolEntry& p = protocol_entry(v.protocol);
    v.name = protocol_name(v.protocol);
    runtime::ClusterConfig tmp;
    tmp.protocol = v.protocol;
    v.label = p.label(tmp);
  }
}

/// `cost.*` keys: the calibration knobs scenarios are allowed to retune.
bool apply_cost_key(net::CostModel& cost, const std::string& key,
                    const std::string& value) {
  if (key == "cost.bandwidth_mbps") {
    cost.bandwidth_bps = parse_f64(key, value) * 1e6;
  } else if (key == "cost.wire_latency") {
    cost.wire_latency = parse_time(key, value);
  } else if (key == "cost.el_service") {
    cost.el_service = parse_time(key, value);
  } else if (key == "cost.el_ack_build") {
    cost.el_ack_build = parse_time(key, value);
  } else if (key == "cost.mlog_send_fixed") {
    cost.mlog_send_fixed = parse_time(key, value);
  } else if (key == "cost.mlog_recv_fixed") {
    cost.mlog_recv_fixed = parse_time(key, value);
  } else if (key == "cost.eager_threshold") {
    cost.eager_threshold = parse_u64(key, value);
  } else if (key == "cost.node_gflops") {
    cost.node_gflops = parse_f64(key, value);
  } else if (key == "cost.ckpt_disk_mbps") {
    cost.ckpt_disk_bps = parse_f64(key, value) * 1e6 * 8;
  } else if (key == "cost.slog_ns_per_byte") {
    cost.slog_ns_per_byte = parse_f64(key, value);
  } else {
    return false;
  }
  return true;
}

}  // namespace

// The single source of truth for the `faults.*` key family. The parser
// consults it before dispatching, `mpiv_run --list` prints it, a unit test
// replays every example through apply_key, and scripts/check_docs.sh greps
// the region between the markers to assert docs/SCENARIOS.md documents
// every key. Keep the markers on their own lines.
// BEGIN FAULT KEY TABLE (scripts/check_docs.sh)
const std::vector<FaultKeyInfo>& fault_key_table() {
  static const std::vector<FaultKeyInfo> table = {
      {"faults.crash_rank", "<time|ckpt@N>:<rank>", "120ms:3",
       "kill the rank at a time or on its Nth checkpoint commit"},
      {"faults.rank_rate", "<per-minute>", "0.5",
       "Poisson rank crashes over random live ranks"},
      {"faults.crash_daemon", "<time>:<rank>[:<downtime>]", "50ms:2",
       "kill only the rank's daemon; the app stalls until respawn"},
      {"faults.daemon_rate", "<per-minute>", "1.5",
       "Poisson daemon crashes over random live ranks"},
      {"faults.daemon_restart_delay", "<duration>", "40ms",
       "daemon detect + respawn + reconnect delay"},
      {"faults.crash_el", "<time|stored@N>:<shard>", "60ms:0",
       "permanently crash the EL shard (failover follows)"},
      {"faults.el_outage", "<time>:<shard>:<duration>", "10ms:0:25ms",
       "transient EL service outage; the persistent log survives"},
      {"faults.ckpt_outage", "<time>:<duration>", "40ms:30ms",
       "checkpoint-server outage; images persist, clients retransmit"},
      {"faults.link_latency", "<time>:<rank>:<extra>:<duration>",
       "5ms:2:1ms:20ms", "latency spike on the rank's link"},
      {"faults.link_drop", "<time>:<rank>:<duration>[:<backoff>]",
       "7ms:4:8ms:2ms", "drop-with-retransmit window on the rank's link"},
      {"faults.partition", "<time>:<ranks>|<ranks>:<duration>[:<backoff>]",
       "10ms:0-1|2-3:25ms:2ms",
       "partial partition: the two rank groups mutually unreachable"},
      {"faults.partition_services",
       "<time>:<group>|<group>:<duration>[:<backoff>]", "30ms:el0|2+4:80ms:2ms",
       "partition whose sides may name services ('elK', 'ckpt'); cutting a "
       "serving EL shard arms split-brain reconciliation"},
      {"faults.detection_delay", "<duration>", "5ms",
       "suspicion window for a service cut (default: cluster "
       "detection_delay)"},
      {"faults.el_failover", "reassign | standby", "standby",
       "what mounts a dead shard's log: surviving shard or cold standby"},
      {"faults.el_failover_delay", "<duration>", "25ms",
       "shard-crash detection + log-mount initiation delay"},
      {"faults.service_retry", "<duration>", "500ms",
       "client retransmit interval for unacked EL/ckpt requests"},
      {"faults.seed_salt", "<u64>", "77",
       "salt mixed into the campaign's stochastic streams"},
  };
  return table;
}
// END FAULT KEY TABLE (scripts/check_docs.sh)

void strip_fault_key(ScenarioSpec& spec, const std::string& key) {
  using fault::Action;
  using fault::Injection;
  using fault::Target;
  using fault::Trigger;
  bool (*match)(const Injection&) = nullptr;
  if (key == "faults.crash_rank") {
    match = [](const Injection& i) {
      return i.target == Target::kRank && i.trigger != Trigger::kRate;
    };
  } else if (key == "faults.rank_rate") {
    match = [](const Injection& i) {
      return i.target == Target::kRank && i.trigger == Trigger::kRate;
    };
  } else if (key == "faults.crash_daemon") {
    match = [](const Injection& i) {
      return i.target == Target::kDaemon && i.trigger != Trigger::kRate;
    };
  } else if (key == "faults.daemon_rate") {
    match = [](const Injection& i) {
      return i.target == Target::kDaemon && i.trigger == Trigger::kRate;
    };
  } else if (key == "faults.partition") {
    match = [](const Injection& i) {
      return i.target == Target::kFabric && !i.cuts_services();
    };
  } else if (key == "faults.partition_services") {
    match = [](const Injection& i) {
      return i.target == Target::kFabric && i.cuts_services();
    };
  } else if (key == "faults.crash_el") {
    match = [](const Injection& i) {
      return i.target == Target::kElShard && i.action == Action::kCrash;
    };
  } else if (key == "faults.el_outage") {
    match = [](const Injection& i) {
      return i.target == Target::kElShard && i.action == Action::kOutage;
    };
  } else if (key == "faults.ckpt_outage") {
    match = [](const Injection& i) { return i.target == Target::kCkptServer; };
  } else if (key == "faults.link_latency") {
    match = [](const Injection& i) {
      return i.target == Target::kLink && i.action == Action::kLatencySpike;
    };
  } else if (key == "faults.link_drop") {
    match = [](const Injection& i) {
      return i.target == Target::kLink && i.action == Action::kDropWindow;
    };
  } else {
    return;  // scalar keys override naturally
  }
  auto& inj = spec.faults.campaign.injections;
  inj.erase(std::remove_if(inj.begin(), inj.end(), match), inj.end());
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string tok = trim(csv.substr(pos, comma - pos));
    if (!tok.empty()) out.push_back(tok);
    pos = comma + 1;
  }
  return out;
}

std::int64_t WorkloadSpec::get_int(const std::string& key,
                                   std::int64_t fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback
                            : parse_i64("workload." + key, it->second);
}

std::uint64_t WorkloadSpec::get_u64(const std::string& key,
                                    std::uint64_t fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback
                            : parse_u64("workload." + key, it->second);
}

double WorkloadSpec::get_double(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback
                            : parse_f64("workload." + key, it->second);
}

std::string WorkloadSpec::get_str(const std::string& key,
                                  const std::string& fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

void apply_key(ScenarioSpec& spec, const std::string& raw_key,
               const std::string& raw_value) {
  const std::string key = trim(raw_key);
  const std::string value = trim(raw_value);
  if (key == "name") {
    spec.name = value;
  } else if (key == "notes") {
    spec.notes = value;
  } else if (key == "variant") {
    spec.variant = parse_variant(value);
  } else if (key == "protocol") {
    spec.variant.protocol = protocols().at(value).kind;
    refresh_variant(spec.variant);
  } else if (key == "strategy") {
    spec.variant.strategy = strategies().at(value).kind;
    refresh_variant(spec.variant);
  } else if (key == "event_logger") {
    spec.variant.event_logger = parse_bool(key, value);
    refresh_variant(spec.variant);
  } else if (key == "nranks") {
    spec.nranks = static_cast<int>(parse_i64(key, value));
  } else if (key == "el_shards") {
    spec.el_shards = static_cast<int>(parse_i64(key, value));
    spec.el_shards_set = true;
  } else if (key == "el_standby") {
    spec.el_standby = static_cast<int>(parse_i64(key, value));
  } else if (key == "seed") {
    spec.seed = parse_u64(key, value);
  } else if (key == "ckpt_policy") {
    spec.ckpt_policy = parse_policy(key, value);
  } else if (key == "ckpt_interval") {
    spec.ckpt_interval = parse_time(key, value);
  } else if (key == "detection_delay") {
    spec.detection_delay = parse_time(key, value);
  } else if (key == "max_sim_time") {
    spec.max_sim_time = parse_time(key, value);
  } else if (key == "compare_reference") {
    spec.compare_reference = parse_bool(key, value);
  } else if (key == "replica.sync_interval") {
    spec.replica_sync_interval = static_cast<int>(parse_i64(key, value));
  } else if (key == "runner.parallelism") {
    spec.runner_parallelism = static_cast<int>(parse_i64(key, value));
  } else if (key == "ulfm.repair_cost") {
    spec.ulfm_repair_cost = parse_time(key, value);
  } else if (key == "payload_at_sender") {
    spec.payload_at_sender = parse_bool(key, value);
  } else if (key == "faults_per_minute") {
    spec.faults.faults_per_minute = parse_f64(key, value);
  } else if (key == "fault") {
    // "<time>:<rank>", e.g. "120ms:1" — repeat the key for more faults.
    const std::size_t colon = value.rfind(':');
    if (colon == std::string::npos) bad_value(key, value, "'<time>:<rank>'");
    spec.faults.faults.push_back(runtime::FaultSpec{
        parse_time(key, value.substr(0, colon)),
        static_cast<int>(parse_i64(key, value.substr(colon + 1)))});
  } else if (key == "midrun_fault_rank") {
    spec.faults.midrun_rank = static_cast<int>(parse_i64(key, value));
  } else if (key == "midrun_fault_frac") {
    spec.faults.midrun_frac = parse_f64(key, value);
  } else if (key == "workload") {
    // Same contract as ScenarioBuilder::workload(): switching workloads
    // drops the previous workload's parameters.
    spec.workload.name = value;
    spec.workload.params.clear();
  } else if (key == "nas") {
    // Compound NAS selector "<kernel>:<class>:<scale>" — one sweep axis
    // value carries the kernel together with its calibrated scale.
    const std::size_t c1 = value.find(':');
    const std::size_t c2 = c1 == std::string::npos ? c1 : value.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      bad_value(key, value, "'<kernel>:<class>:<scale>' like bt:A:0.15");
    }
    spec.workload.name = "nas";
    spec.workload.params.clear();
    spec.workload.params["kernel"] = trim(value.substr(0, c1));
    spec.workload.params["class"] = trim(value.substr(c1 + 1, c2 - c1 - 1));
    spec.workload.params["scale"] = trim(value.substr(c2 + 1));
  } else if (key.rfind("workload.", 0) == 0) {
    spec.workload.params[key.substr(sizeof("workload.") - 1)] = value;
  } else if (key.rfind("faults.", 0) == 0) {
    if (!apply_fault_key(spec, key, value)) {
      std::string known;
      for (const FaultKeyInfo& e : fault_key_table()) {
        if (!known.empty()) known += ", ";
        known += e.key;
      }
      throw SpecError("unknown faults key '" + key + "' (known: " + known +
                      ")");
    }
  } else if (key == "trace.enabled") {
    spec.trace.enabled = parse_bool(key, value);
  } else if (key == "trace.capacity") {
    spec.trace.capacity = static_cast<std::uint32_t>(parse_u64(key, value));
  } else if (key == "trace.dir") {
    spec.trace_dir = value;
  } else if (key == "metrics.enabled") {
    spec.metrics.enabled = parse_bool(key, value);
  } else if (key == "metrics.sample_interval") {
    spec.metrics.sample_interval = parse_time(key, value);
  } else if (key == "metrics.dir") {
    spec.metrics_dir = value;
  } else if (key.rfind("cost.", 0) == 0) {
    if (!apply_cost_key(spec.cost, key, value)) {
      throw SpecError("unknown cost key '" + key + "'");
    }
  } else {
    throw SpecError("unknown scenario key '" + key + "'");
  }
}

ScenarioSpec parse_scenario_text(const std::string& text,
                                 const std::string& origin) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string line;
  std::string section = "scenario";
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (const std::size_t hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    try {
      if (line.front() == '[') {
        if (line.back() != ']') throw SpecError("unterminated section header");
        section = trim(line.substr(1, line.size() - 2));
        if (section != "scenario" && section != "cost" && section != "sweep" &&
            section != "quick" && section != "faults" && section != "trace" &&
            section != "metrics") {
          throw SpecError("unknown section [" + section +
                          "] (use [scenario], [cost], [faults], [trace], "
                          "[metrics], [sweep], [quick])");
        }
        continue;
      }
      const std::size_t eq = line.find('=');
      if (eq == std::string::npos) {
        throw SpecError("expected 'key = value', got '" + line + "'");
      }
      const std::string key = trim(line.substr(0, eq));
      const std::string value = trim(line.substr(eq + 1));
      if (key.empty()) throw SpecError("empty key");
      if (section == "scenario") {
        apply_key(spec, key, value);
      } else if (section == "cost") {
        apply_key(spec, "cost." + key, value);
      } else if (section == "faults") {
        apply_key(spec, "faults." + key, value);
      } else if (section == "trace") {
        apply_key(spec, "trace." + key, value);
      } else if (section == "metrics") {
        apply_key(spec, "metrics." + key, value);
      } else if (section == "sweep") {
        const std::vector<std::string> values = split_list(value);
        if (values.empty()) {
          throw SpecError("sweep axis '" + key + "' has no values");
        }
        spec.sweep.emplace_back(key, values);
      } else {  // quick
        spec.quick.emplace_back(key, value);
      }
    } catch (const SpecError& e) {
      throw SpecError(origin + ":" + std::to_string(lineno) + ": " + e.what());
    }
  }
  return spec;
}

ScenarioSpec parse_scenario_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw SpecError("cannot open scenario file '" + path + "'");
  std::ostringstream body;
  body << f.rdbuf();
  ScenarioSpec spec = parse_scenario_text(body.str(), path);
  if (spec.name == "unnamed") {
    // Default the name to the file stem.
    std::string stem = path;
    if (const std::size_t slash = stem.find_last_of('/'); slash != std::string::npos) {
      stem = stem.substr(slash + 1);
    }
    if (const std::size_t dot = stem.find_last_of('.'); dot != std::string::npos) {
      stem = stem.substr(0, dot);
    }
    spec.name = stem;
  }
  return spec;
}

std::string to_scenario_text(const ScenarioSpec& spec) {
  std::ostringstream out;
  char buf[64];
  auto num = [&buf](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  out << "[scenario]\n";
  out << "name = " << spec.name << "\n";
  if (!spec.notes.empty()) out << "notes = " << spec.notes << "\n";
  out << "variant = " << spec.variant.name << "\n";
  out << "nranks = " << spec.nranks << "\n";
  if (spec.el_shards_set) out << "el_shards = " << spec.el_shards << "\n";
  if (spec.el_standby != 0) out << "el_standby = " << spec.el_standby << "\n";
  out << "seed = " << spec.seed << "\n";
  if (spec.ckpt_policy != ckpt::Policy::kNone || spec.ckpt_interval != 0) {
    out << "ckpt_policy = " << ckpt::policy_name(spec.ckpt_policy) << "\n";
    out << "ckpt_interval = " << spec.ckpt_interval << "ns\n";
  }
  out << "detection_delay = " << spec.detection_delay << "ns\n";
  out << "max_sim_time = " << spec.max_sim_time << "ns\n";
  if (spec.compare_reference) out << "compare_reference = true\n";
  // Protocol-family knobs: emitted only when they depart from the defaults
  // (same contract as [trace] / [cost] below), so existing scenarios
  // round-trip byte-identically.
  const ScenarioSpec sdef{};
  if (spec.replica_sync_interval != sdef.replica_sync_interval) {
    out << "replica.sync_interval = " << spec.replica_sync_interval << "\n";
  }
  if (spec.ulfm_repair_cost != sdef.ulfm_repair_cost) {
    out << "ulfm.repair_cost = " << spec.ulfm_repair_cost << "ns\n";
  }
  if (spec.runner_parallelism != sdef.runner_parallelism) {
    out << "runner.parallelism = " << spec.runner_parallelism << "\n";
  }
  if (spec.payload_at_sender) out << "payload_at_sender = true\n";
  if (spec.faults.faults_per_minute > 0) {
    out << "faults_per_minute = " << num(spec.faults.faults_per_minute) << "\n";
  }
  for (const runtime::FaultSpec& f : spec.faults.faults) {
    out << "fault = " << f.at << "ns:" << f.rank << "\n";
  }
  if (spec.faults.midrun_rank >= 0) {
    out << "midrun_fault_rank = " << spec.faults.midrun_rank << "\n";
    out << "midrun_fault_frac = " << num(spec.faults.midrun_frac) << "\n";
  }
  out << "workload = " << spec.workload.name << "\n";
  for (const auto& [k, v] : spec.workload.params) {
    out << "workload." << k << " = " << v << "\n";
  }
  // The [trace] section is emitted only when tracing departs from the
  // all-defaults (disabled) config — same contract as [cost] below.
  const trace::Config tdef{};
  if (spec.trace.enabled || spec.trace.capacity != tdef.capacity ||
      !spec.trace_dir.empty()) {
    out << "\n[trace]\n";
    out << "enabled = " << (spec.trace.enabled ? "true" : "false") << "\n";
    if (spec.trace.capacity != tdef.capacity) {
      out << "capacity = " << spec.trace.capacity << "\n";
    }
    if (!spec.trace_dir.empty()) out << "dir = " << spec.trace_dir << "\n";
  }
  // The [metrics] section, same only-when-non-default contract.
  const metrics::Config mdef{};
  if (spec.metrics.enabled ||
      spec.metrics.sample_interval != mdef.sample_interval ||
      !spec.metrics_dir.empty()) {
    out << "\n[metrics]\n";
    out << "enabled = " << (spec.metrics.enabled ? "true" : "false") << "\n";
    if (spec.metrics.sample_interval != mdef.sample_interval) {
      out << "sample_interval = " << spec.metrics.sample_interval << "ns\n";
    }
    if (!spec.metrics_dir.empty()) out << "dir = " << spec.metrics_dir << "\n";
  }
  // The [cost] section is emitted only when a supported knob differs from
  // the calibrated default.
  const net::CostModel def{};
  std::ostringstream cost_body;
  const net::CostModel& c = spec.cost;
  if (c.bandwidth_bps != def.bandwidth_bps) {
    cost_body << "bandwidth_mbps = " << num(c.bandwidth_bps / 1e6) << "\n";
  }
  if (c.wire_latency != def.wire_latency) {
    cost_body << "wire_latency = " << c.wire_latency << "ns\n";
  }
  if (c.el_service != def.el_service) {
    cost_body << "el_service = " << c.el_service << "ns\n";
  }
  if (c.el_ack_build != def.el_ack_build) {
    cost_body << "el_ack_build = " << c.el_ack_build << "ns\n";
  }
  if (c.mlog_send_fixed != def.mlog_send_fixed) {
    cost_body << "mlog_send_fixed = " << c.mlog_send_fixed << "ns\n";
  }
  if (c.mlog_recv_fixed != def.mlog_recv_fixed) {
    cost_body << "mlog_recv_fixed = " << c.mlog_recv_fixed << "ns\n";
  }
  if (c.eager_threshold != def.eager_threshold) {
    cost_body << "eager_threshold = " << c.eager_threshold << "\n";
  }
  if (c.node_gflops != def.node_gflops) {
    cost_body << "node_gflops = " << num(c.node_gflops) << "\n";
  }
  if (c.ckpt_disk_bps != def.ckpt_disk_bps) {
    cost_body << "ckpt_disk_mbps = " << num(c.ckpt_disk_bps / 8 / 1e6) << "\n";
  }
  if (c.slog_ns_per_byte != def.slog_ns_per_byte) {
    cost_body << "slog_ns_per_byte = " << num(c.slog_ns_per_byte) << "\n";
  }
  if (!cost_body.str().empty()) {
    out << "\n[cost]\n" << cost_body.str();
  }
  // The [faults] campaign section: one line per injection plus any
  // non-default engine knobs (same keys apply_fault_key parses back).
  const fault::Campaign& camp = spec.faults.campaign;
  const fault::Campaign defc{};
  std::ostringstream fb;
  for (const fault::Injection& inj : camp.injections) {
    switch (inj.target) {
      case fault::Target::kRank:
        if (inj.trigger == fault::Trigger::kRate) {
          fb << "rank_rate = " << num(inj.rate_per_minute) << "\n";
        } else if (inj.trigger == fault::Trigger::kOnCheckpoint) {
          fb << "crash_rank = ckpt@" << inj.nth << ":" << inj.index << "\n";
        } else {
          fb << "crash_rank = " << inj.at << "ns:" << inj.index << "\n";
        }
        break;
      case fault::Target::kElShard:
        if (inj.action == fault::Action::kOutage) {
          fb << "el_outage = " << inj.at << "ns:" << inj.index << ":"
             << inj.duration << "ns\n";
        } else if (inj.trigger == fault::Trigger::kOnElStored) {
          fb << "crash_el = stored@" << inj.nth << ":" << inj.index << "\n";
        } else {
          fb << "crash_el = " << inj.at << "ns:" << inj.index << "\n";
        }
        break;
      case fault::Target::kDaemon:
        if (inj.trigger == fault::Trigger::kRate) {
          fb << "daemon_rate = " << num(inj.rate_per_minute) << "\n";
        } else if (inj.duration > 0) {
          fb << "crash_daemon = " << inj.at << "ns:" << inj.index << ":"
             << inj.duration << "ns\n";
        } else {
          fb << "crash_daemon = " << inj.at << "ns:" << inj.index << "\n";
        }
        break;
      case fault::Target::kFabric:
        if (inj.cuts_services()) {
          fb << "partition_services = " << inj.at << "ns:"
             << format_service_group(inj.group_a, inj.services_a) << "|"
             << format_service_group(inj.group_b, inj.services_b) << ":"
             << inj.duration << "ns:" << inj.magnitude << "ns\n";
        } else {
          fb << "partition = " << inj.at << "ns:"
             << format_rank_group(inj.group_a) << "|"
             << format_rank_group(inj.group_b) << ":" << inj.duration << "ns:"
             << inj.magnitude << "ns\n";
        }
        break;
      case fault::Target::kCkptServer:
        fb << "ckpt_outage = " << inj.at << "ns:" << inj.duration << "ns\n";
        break;
      case fault::Target::kLink:
        if (inj.action == fault::Action::kDropWindow) {
          fb << "link_drop = " << inj.at << "ns:" << inj.index << ":"
             << inj.duration << "ns:" << inj.magnitude << "ns\n";
        } else {
          fb << "link_latency = " << inj.at << "ns:" << inj.index << ":"
             << inj.magnitude << "ns:" << inj.duration << "ns\n";
        }
        break;
    }
  }
  if (camp.el_failover != defc.el_failover) {
    fb << "el_failover = " << fault::el_failover_name(camp.el_failover) << "\n";
  }
  if (camp.el_failover_delay != defc.el_failover_delay) {
    fb << "el_failover_delay = " << camp.el_failover_delay << "ns\n";
  }
  if (camp.detection_delay != defc.detection_delay) {
    fb << "detection_delay = " << camp.detection_delay << "ns\n";
  }
  if (camp.daemon_restart_delay != defc.daemon_restart_delay) {
    fb << "daemon_restart_delay = " << camp.daemon_restart_delay << "ns\n";
  }
  if (camp.service_retry != defc.service_retry) {
    fb << "service_retry = " << camp.service_retry << "ns\n";
  }
  if (camp.seed_salt != defc.seed_salt) {
    fb << "seed_salt = " << camp.seed_salt << "\n";
  }
  if (!fb.str().empty()) {
    out << "\n[faults]\n" << fb.str();
  }
  if (!spec.sweep.empty()) {
    out << "\n[sweep]\n";
    for (const auto& [axis, values] : spec.sweep) {
      out << axis << " = ";
      for (std::size_t i = 0; i < values.size(); ++i) {
        out << (i ? ", " : "") << values[i];
      }
      out << "\n";
    }
  }
  if (!spec.quick.empty()) {
    out << "\n[quick]\n";
    for (const auto& [k, v] : spec.quick) out << k << " = " << v << "\n";
  }
  return out.str();
}

void validate(const ScenarioSpec& spec) {
  auto fail = [&spec](const std::string& what) {
    throw SpecError("scenario '" + spec.name + "': " + what);
  };
  if (spec.nranks <= 0) {
    fail("nranks must be positive (got " + std::to_string(spec.nranks) + ")");
  }
  if (spec.nranks > 4096) {
    fail("nranks " + std::to_string(spec.nranks) + " exceeds the 4096 limit");
  }
  if (spec.el_shards < 1) {
    fail("el_shards must be >= 1 (got " + std::to_string(spec.el_shards) + ")");
  }
  if (spec.el_shards > spec.nranks) {
    fail("el_shards (" + std::to_string(spec.el_shards) +
         ") cannot exceed nranks (" + std::to_string(spec.nranks) + ")");
  }
  if (spec.el_shards_set && spec.el_shards > 1 && !spec.variant.event_logger) {
    // Mirrors the Cluster-level check: one shard means no sharding, so an
    // explicit el_shards = 1 stays legal without an event logger.
    fail("el_shards = " + std::to_string(spec.el_shards) + " but variant '" +
         spec.variant.name +
         "' disables the event logger — sharding needs event_logger = true");
  }
  if (spec.el_standby < 0 || spec.el_standby > 64) {
    fail("el_standby must be in [0, 64] (got " +
         std::to_string(spec.el_standby) + ")");
  }
  if (spec.el_standby > 0 && !spec.variant.event_logger) {
    fail("el_standby = " + std::to_string(spec.el_standby) + " but variant '" +
         spec.variant.name + "' disables the event logger");
  }
  if (spec.variant.protocol == runtime::ProtocolKind::kP4 &&
      spec.faults.any()) {
    fail("MPICH-P4 is not fault tolerant — remove the fault plan");
  }
  for (std::size_t i = 0; i < spec.faults.faults.size(); ++i) {
    const runtime::FaultSpec& f = spec.faults.faults[i];
    if (f.rank < 0 || f.rank >= spec.nranks) {
      fail("fault plan names rank " + std::to_string(f.rank) +
           " but only ranks 0.." + std::to_string(spec.nranks - 1) + " exist");
    }
    if (f.at <= 0) fail("fault time must be > 0");
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.faults.faults[j].rank == f.rank &&
          spec.faults.faults[j].at == f.at) {
        fail("duplicate fault: rank " + std::to_string(f.rank) + " at t = " +
             std::to_string(f.at) + "ns named twice");
      }
    }
  }
  if (spec.faults.midrun_rank >= spec.nranks) {
    fail("midrun fault names rank " + std::to_string(spec.faults.midrun_rank) +
         " but only ranks 0.." + std::to_string(spec.nranks - 1) + " exist");
  }
  if (spec.faults.midrun_frac <= 0 || spec.faults.midrun_frac >= 1) {
    fail("midrun_fault_frac must be in (0, 1)");
  }
  if (spec.faults.faults_per_minute < 0) {
    fail("faults_per_minute must be >= 0");
  }
  // Campaign sanity through the shared rule set (fault/campaign.hpp) —
  // scenario files must fail with a reportable SpecError, not an abort.
  fault::validate_campaign(spec.faults.campaign, spec.nranks,
                           spec.el_shards + spec.el_standby,
                           spec.variant.event_logger, fail);
  if (spec.ckpt_interval < 0) fail("ckpt_interval must be >= 0");
  if (spec.replica_sync_interval < 0) {
    fail("replica.sync_interval must be >= 0 (got " +
         std::to_string(spec.replica_sync_interval) + ")");
  }
  if (spec.ulfm_repair_cost < 0) fail("ulfm.repair_cost must be >= 0");
  if (spec.runner_parallelism < 1 || spec.runner_parallelism > 1024) {
    fail("runner.parallelism must be in [1, 1024] (got " +
         std::to_string(spec.runner_parallelism) + ")");
  }
  if (spec.payload_at_sender &&
      spec.variant.protocol != runtime::ProtocolKind::kCausal) {
    fail("payload_at_sender is a causal-logging knob but variant '" +
         spec.variant.name + "' is not causal");
  }
  if (spec.trace.capacity < 16 || spec.trace.capacity > (1u << 22)) {
    fail("trace.capacity must be in [16, 4194304] (got " +
         std::to_string(spec.trace.capacity) + ")");
  }
  if (spec.metrics.sample_interval <= 0) {
    fail("metrics.sample_interval must be > 0 (got " +
         std::to_string(spec.metrics.sample_interval) + "ns)");
  }
  const WorkloadEntry& wl = workload_registry().at(spec.workload.name);
  for (const auto& [param, value] : spec.workload.params) {
    bool known = false;
    for (const char* k : wl.params) known = known || param == k;
    if (!known) {
      std::string msg = "workload '" + spec.workload.name +
                        "' has no parameter '" + param + "' (parameters: ";
      for (std::size_t i = 0; i < wl.params.size(); ++i) {
        if (i) msg += ", ";
        msg += wl.params[i];
      }
      fail(msg + ")");
    }
  }
}

ScenarioBuilder& ScenarioBuilder::wparam(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return wparam(key, std::string(buf));
}

ScenarioBuilder& ScenarioBuilder::ring(int laps, std::uint64_t token_bytes) {
  return workload("ring")
      .wparam("laps", laps)
      .wparam("bytes", token_bytes);
}

ScenarioBuilder& ScenarioBuilder::random_any(int iterations,
                                             std::uint64_t wseed,
                                             std::uint64_t bytes) {
  return workload("random_any")
      .wparam("iters", iterations)
      .wparam("seed", wseed)
      .wparam("bytes", bytes);
}

ScenarioBuilder& ScenarioBuilder::random_then_ring(int rand_iters,
                                                   int ring_laps,
                                                   std::uint64_t wseed,
                                                   std::uint64_t bytes) {
  return workload("random_then_ring")
      .wparam("rand_iters", rand_iters)
      .wparam("ring_laps", ring_laps)
      .wparam("seed", wseed)
      .wparam("bytes", bytes);
}

ScenarioBuilder& ScenarioBuilder::pingpong(
    const std::vector<std::uint64_t>& sizes, int reps) {
  std::string csv;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (i) csv += ",";
    csv += std::to_string(sizes[i]);
  }
  return workload("pingpong").wparam("sizes", csv).wparam("reps", reps);
}

ScenarioBuilder& ScenarioBuilder::nas(workloads::NasKernel kernel,
                                      workloads::NasClass klass, double scale) {
  const char* kname = "cg";
  switch (kernel) {
    case workloads::NasKernel::kBT: kname = "bt"; break;
    case workloads::NasKernel::kCG: kname = "cg"; break;
    case workloads::NasKernel::kLU: kname = "lu"; break;
    case workloads::NasKernel::kFT: kname = "ft"; break;
    case workloads::NasKernel::kMG: kname = "mg"; break;
    case workloads::NasKernel::kSP: kname = "sp"; break;
  }
  return workload("nas")
      .wparam("kernel", std::string(kname))
      .wparam("class", std::string(1, workloads::nas_class_letter(klass)))
      .wparam("scale", scale);
}

}  // namespace mpiv::scenario
