// Name-based registries for protocols, piggyback strategies, and
// workloads — the single place the experiment layer resolves "vcausal",
// "coordinated" or "nas" into running code. They replace the hard-coded
// ProtocolKind/StrategyKind switch sites that used to live in
// runtime/cluster.cpp and causal/strategy_factory.cpp: runtime::Cluster
// instantiates its VProtocol through protocols(), causal::make_strategy is
// a strategies() lookup, and the scenario runner instantiates applications
// through workloads(). Registration order is the canonical listing order
// (mpiv_run --list, error messages).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "scenario/spec.hpp"

namespace mpiv::scenario {

template <class Entry>
class Registry {
 public:
  explicit Registry(std::string kind) : kind_(std::move(kind)) {}

  Registry& add(std::string name, Entry entry) {
    if (find(name) != nullptr) {
      throw SpecError("duplicate " + kind_ + " registration '" + name + "'");
    }
    entries_.emplace_back(std::move(name), std::move(entry));
    return *this;
  }

  const Entry* find(std::string_view name) const {
    for (const auto& [n, e] : entries_) {
      if (n == name) return &e;
    }
    return nullptr;
  }

  /// Lookup that throws a SpecError listing every registered name.
  const Entry& at(std::string_view name) const {
    if (const Entry* e = find(name)) return *e;
    std::string msg = "unknown " + kind_ + " '" + std::string(name) +
                      "' (registered: ";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (i) msg += ", ";
      msg += entries_[i].first;
    }
    msg += ")";
    throw SpecError(msg);
  }

  template <class Pred>
  const Entry* find_if(Pred pred) const {
    for (const auto& [n, e] : entries_) {
      if (pred(e)) return &e;
    }
    return nullptr;
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    for (const auto& entry : entries_) out.push_back(entry.first);
    return out;
  }

  const std::vector<std::pair<std::string, Entry>>& entries() const {
    return entries_;
  }

 private:
  std::string kind_;
  std::vector<std::pair<std::string, Entry>> entries_;
};

/// Protocol registry payload: how to instantiate the per-rank VProtocol
/// for a lowered config, and how to label it in reports.
struct ProtocolEntry {
  runtime::ProtocolKind kind;
  const char* summary;
  bool fault_tolerant;
  std::unique_ptr<ftapi::VProtocol> (*make)(const runtime::ClusterConfig&);
  std::string (*label)(const runtime::ClusterConfig&);
};

/// Strategy registry payload: the causal piggyback-reduction strategies.
struct StrategyEntry {
  causal::StrategyKind kind;
  const char* display;  // paper name ("Vcausal", "Manetho", "LogOn")
  const char* summary;
  std::unique_ptr<causal::Strategy> (*make)();
};

/// A workload instantiated for one run: the app factory plus the handles
/// the runner reads results from after the cluster completes.
struct WorkloadInstance {
  mpi::AppFactory app;
  std::shared_ptr<workloads::ChecksumResult> checksums;  // null for pingpong
  std::shared_ptr<workloads::PingPongResult> pingpong;   // null unless pingpong
  double flops = 0;  // executed flops (Mop/s reporting); 0 when n/a
};

struct WorkloadEntry {
  const char* summary;
  /// The parameter names this workload understands — validate() rejects
  /// anything else, so a typoed `workload.lapz` cannot silently run the
  /// default configuration.
  std::vector<const char*> params;
  /// Returns false and fills `why` when the workload cannot run at the
  /// spec's rank count (sweep points use this to skip invalid combos).
  bool (*valid)(const ScenarioSpec& spec, std::string* why);
  WorkloadInstance (*make)(const ScenarioSpec& spec);
};

Registry<ProtocolEntry>& protocols();
Registry<StrategyEntry>& strategies();
Registry<WorkloadEntry>& workload_registry();

/// Entry lookup by lowered enum (used by runtime::Cluster, which holds the
/// compact ClusterConfig rather than names).
const ProtocolEntry& protocol_entry(runtime::ProtocolKind kind);
const StrategyEntry& strategy_entry(causal::StrategyKind kind);

}  // namespace mpiv::scenario
