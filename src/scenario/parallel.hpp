// Fork-based worker pool for sweep execution (internal to the scenario
// layer; the public entry point is run() with RunOptions::jobs or the
// spec's runner.parallelism).
#pragma once

#include <vector>

#include "scenario/runner.hpp"

namespace mpiv::scenario::detail {

/// Runs the expanded points across up to `jobs` forked workers and returns
/// results in sweep order. Each worker receives one point index at a time
/// over its request pipe, executes run_point there, and ships back the
/// outcome plus a prerendered JSON stanza over its result pipe, so the
/// parent's report is byte-identical to the serial loop. A worker that
/// dies mid-point takes exactly that point down with it: the point is
/// classified `failed`, a replacement worker is forked, and the rest of
/// the grid keeps running. Skipped points never leave the parent.
std::vector<RunResult> run_points_parallel(const std::vector<RunPoint>& points,
                                           int jobs,
                                           const RunOptions& options);

}  // namespace mpiv::scenario::detail
