// Declarative experiment specs (the paper's comparison matrix as data).
//
// A ScenarioSpec names everything one experiment varies — protocol variant,
// EL topology, cost model, checkpoint policy, fault plan, workload, sweep
// axes — in registry-resolved strings, so a scenario is equally expressible
// as fluent C++ (ScenarioBuilder), a text file (parse_scenario_file, the
// `mpiv_run` driver), or a sweep axis value. runtime::ClusterConfig remains
// the *lowered* form: scenario::lower() maps a validated spec onto it
// field-for-field, so a spec-driven run is byte-identical to a hand-built
// ClusterConfig run (tests/test_determinism.cpp pins this).
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/scheduler.hpp"
#include "fault/campaign.hpp"
#include "runtime/cluster.hpp"
#include "workloads/nas.hpp"

namespace mpiv::scenario {

/// Recoverable configuration error: unknown names, out-of-range values,
/// malformed scenario files. (MPIV_CHECK aborts; spec validation must be
/// reportable to the user instead.)
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One protocol variant of the evaluation, lowered from a name such as
/// "p4", "vdummy", "pessimistic", "coordinated", "vcausal:el",
/// "manetho:noel". Causal strategies default to ":el" when unsuffixed.
struct VariantSpec {
  std::string name = "vdummy";  // canonical registry name
  std::string label = "MPICH-Vdummy";
  runtime::ProtocolKind protocol = runtime::ProtocolKind::kVdummy;
  causal::StrategyKind strategy = causal::StrategyKind::kVcausal;
  bool event_logger = true;
};

/// Registry-resolved workload plus its string-typed parameters (exact for
/// the integral knobs every bundled workload uses).
struct WorkloadSpec {
  std::string name = "ring";
  std::map<std::string, std::string> params;

  bool has(const std::string& key) const { return params.count(key) != 0; }
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::string get_str(const std::string& key, const std::string& fallback) const;
};

/// When and whom to crash. `midrun_rank >= 0` is the paper's "middle of
/// correct execution" protocol: the runner first executes a fault-free
/// reference, then reruns with a crash of that rank at
/// `midrun_frac * reference completion time`. `campaign` is the fault
/// engine's declarative chaos surface (EL-shard crashes, server outages,
/// link perturbations, event-triggered kills — the `[faults]` section of
/// scenario files).
struct FaultPlan {
  std::vector<runtime::FaultSpec> faults;
  double faults_per_minute = 0.0;
  int midrun_rank = -1;
  double midrun_frac = 0.5;
  fault::Campaign campaign;

  bool any() const {
    return !faults.empty() || faults_per_minute > 0 || midrun_rank >= 0 ||
           !campaign.empty();
  }
};

/// The full declarative experiment description. Field defaults mirror
/// runtime::ClusterConfig so an empty spec lowers to the seed defaults.
struct ScenarioSpec {
  std::string name = "unnamed";
  std::string notes;

  VariantSpec variant;
  int nranks = 4;
  bool el_shards_set = false;  // true once el_shards was explicitly chosen
  int el_shards = 1;
  int el_standby = 0;  // cold standby EL shard nodes (failover targets)
  std::uint64_t seed = 1;
  net::CostModel cost{};

  ckpt::Policy ckpt_policy = ckpt::Policy::kNone;
  sim::Time ckpt_interval = 0;

  FaultPlan faults;
  sim::Time detection_delay = 250 * sim::kMillisecond;
  sim::Time max_sim_time = 4L * 3600 * sim::kSecond;

  /// Replica hybrid: application sends between shadow sync frames
  /// (`replica.sync_interval`; <= 1 syncs on every send).
  int replica_sync_interval = 8;
  /// ULFM shrink-and-repair: agreement + communicator-rebuild window
  /// between revoke and the survivors' relaunch (`ulfm.repair_cost`).
  sim::Time ulfm_repair_cost = 10 * sim::kMillisecond;
  /// Causal variant knob (`payload_at_sender`): retain logged payloads in
  /// sender application memory instead of copying into the daemon.
  bool payload_at_sender = false;

  /// Run a fault-free reference pass even without a midrun fault, so
  /// `recovered_exact` is computed for ANY faulty run (the chaos-soak
  /// outcome classifier). The reference strips rank crashes but keeps the
  /// campaign's environment faults, exactly like the midrun protocol.
  bool compare_reference = false;

  /// Per-rank trace lanes (`[trace]` section / `trace.*` keys). When a
  /// reference pass runs, it inherits the same trace config so the two
  /// streams can be aligned by mpiv_trace.
  trace::Config trace{};
  /// Directory for trace stream files ("" = keep in memory / JSON only).
  std::string trace_dir;

  /// Aggregate metrics + virtual-time gauge sampler (`[metrics]` section /
  /// `metrics.*` keys). Off by default; schedule-neutral when on.
  metrics::Config metrics{};
  /// Directory for per-run time-series CSV files ("" = JSON summary only).
  std::string metrics_dir;

  /// Sweep-point fan-out (`runner.parallelism`): how many forked workers
  /// run() may spread the expanded grid across. 1 = in-process serial
  /// execution; mpiv_run --jobs overrides it. The report is byte-identical
  /// either way — workers ship back prerendered results reassembled in
  /// sweep order.
  int runner_parallelism = 1;

  WorkloadSpec workload;

  /// Cartesian sweep axes in declaration order: each key is any scalar
  /// spec key ("variant", "nranks", "el_shards", "workload.kernel", ...).
  std::vector<std::pair<std::string, std::vector<std::string>>> sweep;

  /// Overrides applied in quick mode (mpiv_run --quick / CI smoke). A key
  /// that names a sweep axis replaces that axis.
  std::vector<std::pair<std::string, std::string>> quick;
};

/// Resolves a variant name through the protocol/strategy registries.
/// Throws SpecError for unknown names, listing what is registered.
VariantSpec parse_variant(const std::string& name);

/// Applies one textual `key = value` setting to the spec — the single
/// mutation path shared by the file parser, sweep expansion and quick
/// overlays. Throws SpecError on unknown keys or unparsable values.
void apply_key(ScenarioSpec& spec, const std::string& key,
               const std::string& value);

/// Removes the campaign injections a `faults.*` injection key previously
/// produced (no-op for other keys). Sweep axes and quick overlays call this
/// before re-applying, so a swept injection key REPLACES the base
/// `[faults]` line of the same kind — matching every other axis's override
/// semantics — while repeated lines within a `[faults]` section still
/// accumulate.
void strip_fault_key(ScenarioSpec& spec, const std::string& key);

/// Splits a comma-separated value list, trimming each element (the sweep-
/// axis and quick-overlay tokenizer).
std::vector<std::string> split_list(const std::string& csv);

/// One `faults.*` scenario key: name, value syntax, an example value the
/// parser accepts, and a one-line summary. The table below is the single
/// source of truth the parser, `mpiv_run --list` and the docs check share —
/// a key can be parsed only if it is listed here, and scripts/check_docs.sh
/// fails when a listed key is missing from docs/SCENARIOS.md.
struct FaultKeyInfo {
  const char* key;
  const char* syntax;
  const char* example;
  const char* summary;
};
const std::vector<FaultKeyInfo>& fault_key_table();

/// Parses the `mpiv_run` scenario text format (INI-style sections
/// [scenario] / [cost] / [sweep] / [quick], '#' comments). Throws
/// SpecError with file:line context on malformed input.
ScenarioSpec parse_scenario_text(const std::string& text,
                                 const std::string& origin = "<string>");
ScenarioSpec parse_scenario_file(const std::string& path);

/// Serializes a spec back to scenario-file text (parse round-trip).
std::string to_scenario_text(const ScenarioSpec& spec);

/// Validates a fully-resolved spec (no sweep axes considered). Throws
/// SpecError naming the scenario and the offending field.
void validate(const ScenarioSpec& spec);

/// Fluent, validating construction — the C++ face of the scenario API.
/// Every setter returns *this; build() validates and throws SpecError.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::string name = "unnamed") {
    spec_.name = std::move(name);
  }

  ScenarioBuilder& notes(std::string n) { spec_.notes = std::move(n); return *this; }
  /// Compound variant name ("vcausal:el", "p4", ...).
  ScenarioBuilder& variant(const std::string& v) {
    spec_.variant = parse_variant(v);
    return *this;
  }
  ScenarioBuilder& nranks(int n) { spec_.nranks = n; return *this; }
  ScenarioBuilder& el_shards(int n) {
    spec_.el_shards = n;
    spec_.el_shards_set = true;
    return *this;
  }
  ScenarioBuilder& seed(std::uint64_t s) { spec_.seed = s; return *this; }
  ScenarioBuilder& cost(const net::CostModel& c) { spec_.cost = c; return *this; }
  ScenarioBuilder& checkpoint(ckpt::Policy policy, sim::Time interval) {
    spec_.ckpt_policy = policy;
    spec_.ckpt_interval = interval;
    return *this;
  }
  ScenarioBuilder& fault_at(sim::Time at, int rank) {
    spec_.faults.faults.push_back(runtime::FaultSpec{at, rank});
    return *this;
  }
  ScenarioBuilder& fault_rate(double per_minute) {
    spec_.faults.faults_per_minute = per_minute;
    return *this;
  }
  ScenarioBuilder& midrun_fault(int rank, double frac = 0.5) {
    spec_.faults.midrun_rank = rank;
    spec_.faults.midrun_frac = frac;
    return *this;
  }

  // --- fault-engine campaign (chaos) surface -------------------------------
  /// Raw injection escape hatch; the named conveniences below cover the
  /// bundled experiments.
  ScenarioBuilder& inject(const fault::Injection& inj) {
    spec_.faults.campaign.injections.push_back(inj);
    return *this;
  }
  /// Kills rank `rank`'s communication daemon at `at`; the dispatcher
  /// respawns it `downtime` later (0 = the campaign's daemon_restart_delay).
  /// The app rank survives, stalled, with its volatile state intact.
  ScenarioBuilder& crash_daemon_at(sim::Time at, int rank,
                                   sim::Time downtime = 0) {
    fault::Injection inj;
    inj.target = fault::Target::kDaemon;
    inj.index = rank;
    inj.at = at;
    inj.duration = downtime;
    return inject(inj);
  }
  /// Seeded Poisson daemon-crash process over random live ranks. Rate 0 =
  /// stream off, mirroring the `faults.daemon_rate` scenario key (so the
  /// fault-free sweep corner is expressible from C++ too).
  ScenarioBuilder& daemon_rate(double per_minute) {
    if (per_minute <= 0) return *this;
    fault::Injection inj;
    inj.target = fault::Target::kDaemon;
    inj.index = -1;
    inj.trigger = fault::Trigger::kRate;
    inj.rate_per_minute = per_minute;
    return inject(inj);
  }
  /// Detection + respawn + reconnect delay for daemon crashes.
  ScenarioBuilder& daemon_restart_delay(sim::Time t) {
    spec_.faults.campaign.daemon_restart_delay = t;
    return *this;
  }
  /// Partial partition: ranks in `a` and ranks in `b` mutually unreachable
  /// from `at` for `duration`; held frames re-deliver `backoff` after heal.
  ScenarioBuilder& partition(sim::Time at, std::vector<int> a,
                             std::vector<int> b, sim::Time duration,
                             sim::Time backoff = 2 * sim::kMillisecond) {
    fault::Injection inj;
    inj.target = fault::Target::kFabric;
    inj.action = fault::Action::kPartition;
    inj.at = at;
    inj.duration = duration;
    inj.magnitude = backoff;
    inj.group_a = std::move(a);
    inj.group_b = std::move(b);
    return inject(inj);
  }
  /// Service-side partition: like partition(), but each side additionally
  /// names service endpoints — EL shard ids in `sa` / `sb`, or
  /// fault::kCkptService for the checkpoint server. Cutting a serving EL
  /// shard from its clients arms suspicion and split-brain reconciliation.
  ScenarioBuilder& partition_services(sim::Time at, std::vector<int> a,
                                      std::vector<int> b, std::vector<int> sa,
                                      std::vector<int> sb, sim::Time duration,
                                      sim::Time backoff = 2 *
                                                          sim::kMillisecond) {
    fault::Injection inj;
    inj.target = fault::Target::kFabric;
    inj.action = fault::Action::kPartition;
    inj.at = at;
    inj.duration = duration;
    inj.magnitude = backoff;
    inj.group_a = std::move(a);
    inj.group_b = std::move(b);
    inj.services_a = std::move(sa);
    inj.services_b = std::move(sb);
    return inject(inj);
  }
  /// Campaign-level suspicion window for service cuts (-1 inherits the
  /// cluster detection_delay).
  ScenarioBuilder& fault_detection_delay(sim::Time t) {
    spec_.faults.campaign.detection_delay = t;
    return *this;
  }
  /// Kills `rank` when it commits its `nth` checkpoint.
  ScenarioBuilder& crash_rank_on_ckpt(int rank, std::uint64_t nth) {
    fault::Injection inj;
    inj.target = fault::Target::kRank;
    inj.index = rank;
    inj.trigger = fault::Trigger::kOnCheckpoint;
    inj.nth = nth;
    return inject(inj);
  }
  /// Permanently crashes EL shard `shard` at `at` (failover follows).
  ScenarioBuilder& crash_el_at(sim::Time at, int shard) {
    fault::Injection inj;
    inj.target = fault::Target::kElShard;
    inj.index = shard;
    inj.at = at;
    return inject(inj);
  }
  /// Crashes EL shard `shard` once it has stored `nth` determinants.
  ScenarioBuilder& crash_el_on_stored(int shard, std::uint64_t nth) {
    fault::Injection inj;
    inj.target = fault::Target::kElShard;
    inj.index = shard;
    inj.trigger = fault::Trigger::kOnElStored;
    inj.nth = nth;
    return inject(inj);
  }
  /// Transient EL service outage: down at `at`, back `duration` later with
  /// its persistent log intact.
  ScenarioBuilder& el_outage(sim::Time at, int shard, sim::Time duration) {
    fault::Injection inj;
    inj.target = fault::Target::kElShard;
    inj.index = shard;
    inj.at = at;
    inj.action = fault::Action::kOutage;
    inj.duration = duration;
    return inject(inj);
  }
  /// Checkpoint-server service outage (images persist; clients retransmit).
  ScenarioBuilder& ckpt_outage(sim::Time at, sim::Time duration) {
    fault::Injection inj;
    inj.target = fault::Target::kCkptServer;
    inj.at = at;
    inj.action = fault::Action::kOutage;
    inj.duration = duration;
    return inject(inj);
  }
  /// +`extra` latency on rank `rank`'s link for `duration`.
  ScenarioBuilder& link_latency(sim::Time at, int rank, sim::Time extra,
                                sim::Time duration) {
    fault::Injection inj;
    inj.target = fault::Target::kLink;
    inj.index = rank;
    inj.at = at;
    inj.action = fault::Action::kLatencySpike;
    inj.magnitude = extra;
    inj.duration = duration;
    return inject(inj);
  }
  /// Frames toward rank `rank` held for `duration`, retransmitted after
  /// `backoff`.
  ScenarioBuilder& link_drop(sim::Time at, int rank, sim::Time duration,
                             sim::Time backoff = 5 * sim::kMillisecond) {
    fault::Injection inj;
    inj.target = fault::Target::kLink;
    inj.index = rank;
    inj.at = at;
    inj.action = fault::Action::kDropWindow;
    inj.magnitude = backoff;
    inj.duration = duration;
    return inject(inj);
  }
  ScenarioBuilder& el_failover(fault::ElFailover mode, sim::Time delay) {
    spec_.faults.campaign.el_failover = mode;
    spec_.faults.campaign.el_failover_delay = delay;
    return *this;
  }
  ScenarioBuilder& el_standby(int n) {
    spec_.el_standby = n;
    return *this;
  }
  ScenarioBuilder& detection_delay(sim::Time t) { spec_.detection_delay = t; return *this; }
  ScenarioBuilder& max_sim_time(sim::Time t) { spec_.max_sim_time = t; return *this; }
  /// Replica hybrid: sends between shadow sync frames (<= 1 = every send).
  ScenarioBuilder& replica_sync_interval(int sends) {
    spec_.replica_sync_interval = sends;
    return *this;
  }
  /// ULFM: priced agreement + communicator-rebuild window.
  ScenarioBuilder& ulfm_repair_cost(sim::Time t) {
    spec_.ulfm_repair_cost = t;
    return *this;
  }
  /// Causal: keep logged payloads in sender memory (skip the daemon copy).
  ScenarioBuilder& payload_at_sender(bool on = true) {
    spec_.payload_at_sender = on;
    return *this;
  }
  /// Always run the fault-free reference pass (recovered_exact on any
  /// faulty run — the chaos-soak outcome classifier).
  ScenarioBuilder& compare_reference(bool on = true) {
    spec_.compare_reference = on;
    return *this;
  }
  /// Fan the expanded sweep across N forked workers (1 = serial).
  ScenarioBuilder& runner_parallelism(int jobs) {
    spec_.runner_parallelism = jobs;
    return *this;
  }
  /// Per-rank trace lanes (merged stream in the report / trace_dir files).
  ScenarioBuilder& trace(bool on = true) {
    spec_.trace.enabled = on;
    return *this;
  }
  ScenarioBuilder& trace_capacity(std::uint32_t records_per_lane) {
    spec_.trace.capacity = records_per_lane;
    return *this;
  }
  ScenarioBuilder& trace_dir(std::string dir) {
    spec_.trace_dir = std::move(dir);
    return *this;
  }
  /// Aggregate metrics: histogram summaries in the report plus the
  /// virtual-time gauge series (CSV under metrics_dir when set).
  ScenarioBuilder& metrics(bool on = true) {
    spec_.metrics.enabled = on;
    return *this;
  }
  ScenarioBuilder& metrics_sample_interval(sim::Time interval) {
    spec_.metrics.sample_interval = interval;
    return *this;
  }
  ScenarioBuilder& metrics_dir(std::string dir) {
    spec_.metrics_dir = std::move(dir);
    return *this;
  }

  ScenarioBuilder& workload(const std::string& name) {
    spec_.workload.name = name;
    spec_.workload.params.clear();
    return *this;
  }
  ScenarioBuilder& wparam(const std::string& key, const std::string& value) {
    spec_.workload.params[key] = value;
    return *this;
  }
  ScenarioBuilder& wparam(const std::string& key, std::uint64_t value) {
    return wparam(key, std::to_string(value));
  }
  ScenarioBuilder& wparam(const std::string& key, int value) {
    return wparam(key, std::to_string(value));
  }
  ScenarioBuilder& wparam(const std::string& key, double value);

  // Bundled-workload conveniences.
  ScenarioBuilder& ring(int laps, std::uint64_t token_bytes);
  ScenarioBuilder& random_any(int iterations, std::uint64_t wseed,
                              std::uint64_t bytes);
  ScenarioBuilder& random_then_ring(int rand_iters, int ring_laps,
                                    std::uint64_t wseed, std::uint64_t bytes);
  ScenarioBuilder& pingpong(const std::vector<std::uint64_t>& sizes, int reps);
  ScenarioBuilder& nas(workloads::NasKernel kernel, workloads::NasClass klass,
                       double scale);

  /// Adds a cartesian sweep axis (expanded by scenario::expand / run).
  ScenarioBuilder& sweep(const std::string& key,
                         const std::vector<std::string>& values) {
    spec_.sweep.emplace_back(key, values);
    return *this;
  }
  /// Generic textual setting — same key space as scenario files.
  ScenarioBuilder& set(const std::string& key, const std::string& value) {
    apply_key(spec_, key, value);
    return *this;
  }

  /// Validates and returns the finished spec. Throws SpecError.
  ScenarioSpec build() const {
    validate(spec_);
    return spec_;
  }

 private:
  ScenarioSpec spec_;
};

}  // namespace mpiv::scenario
