// Registry contents: every protocol, strategy and workload the experiment
// layer can name. This file owns the instantiation knowledge that used to
// be spread over switch statements in runtime/cluster.cpp (make_protocol,
// protocol_label) and causal/strategy_factory.cpp (make_strategy) — those
// entry points now resolve through the tables below, so adding a protocol,
// strategy or workload is one registration here plus its implementation.
#include "scenario/registry.hpp"

#include "causal/causal_protocol.hpp"
#include "causal/logon_strategy.hpp"
#include "causal/manetho_strategy.hpp"
#include "causal/vcausal_strategy.hpp"
#include "coord/coordinated_protocol.hpp"
#include "ftapi/vprotocol.hpp"
#include "pessimist/pessimistic_protocol.hpp"
#include "replica/replica_protocol.hpp"
#include "ulfm/ulfm_protocol.hpp"
#include "util/check.hpp"
#include "workloads/apps.hpp"

namespace mpiv::scenario {

namespace {

std::string fixed_label(const char* s) { return s; }

std::vector<std::uint64_t> parse_size_list(const std::string& csv) {
  std::vector<std::uint64_t> sizes;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    std::string tok = csv.substr(pos, comma - pos);
    // Trim spaces; accept k/m suffixes (bytes).
    std::size_t b = tok.find_first_not_of(" \t");
    std::size_t e = tok.find_last_not_of(" \t");
    if (b == std::string::npos) {
      pos = comma + 1;
      continue;
    }
    tok = tok.substr(b, e - b + 1);
    std::uint64_t mult = 1;
    char suffix = tok.back();
    if (suffix == 'k' || suffix == 'K') mult = 1024;
    if (suffix == 'm' || suffix == 'M') mult = 1024 * 1024;
    if (mult != 1) tok.pop_back();
    try {
      sizes.push_back(std::stoull(tok) * mult);
    } catch (const std::exception&) {
      throw SpecError("bad size list element '" + tok + "' in '" + csv + "'");
    }
    pos = comma + 1;
  }
  if (sizes.empty()) throw SpecError("empty message-size list '" + csv + "'");
  return sizes;
}

workloads::NasKernel parse_nas_kernel(const std::string& s) {
  using workloads::NasKernel;
  if (s == "bt") return NasKernel::kBT;
  if (s == "cg") return NasKernel::kCG;
  if (s == "lu") return NasKernel::kLU;
  if (s == "ft") return NasKernel::kFT;
  if (s == "mg") return NasKernel::kMG;
  if (s == "sp") return NasKernel::kSP;
  throw SpecError("unknown NAS kernel '" + s +
                  "' (registered: bt, cg, lu, ft, mg, sp)");
}

workloads::NasClass parse_nas_class(const std::string& s) {
  using workloads::NasClass;
  if (s == "S" || s == "s") return NasClass::kS;
  if (s == "W" || s == "w") return NasClass::kW;
  if (s == "A" || s == "a") return NasClass::kA;
  if (s == "B" || s == "b") return NasClass::kB;
  throw SpecError("unknown NAS class '" + s + "' (registered: S, W, A, B)");
}

workloads::NasConfig nas_config(const ScenarioSpec& spec) {
  workloads::NasConfig ncfg;
  ncfg.kernel = parse_nas_kernel(spec.workload.get_str("kernel", "cg"));
  ncfg.klass = parse_nas_class(spec.workload.get_str("class", "A"));
  ncfg.nranks = spec.nranks;
  ncfg.scale = spec.workload.get_double("scale", 1.0);
  return ncfg;
}

bool always_valid(const ScenarioSpec&, std::string*) { return true; }

bool two_or_more_ranks(const ScenarioSpec& spec, std::string* why) {
  if (spec.nranks >= 2) return true;
  if (why) *why = "pingpong needs at least 2 ranks";
  return false;
}

bool nas_ranks_valid(const ScenarioSpec& spec, std::string* why) {
  const workloads::NasConfig ncfg = nas_config(spec);
  if (workloads::nas_valid_nranks(ncfg.kernel, ncfg.nranks)) return true;
  if (why) {
    *why = std::string(workloads::nas_kernel_name(ncfg.kernel)) +
           " does not support " + std::to_string(ncfg.nranks) +
           " ranks (BT/SP: squares; others: powers of two)";
  }
  return false;
}

}  // namespace

Registry<ProtocolEntry>& protocols() {
  static Registry<ProtocolEntry>* reg = [] {
    auto* r = new Registry<ProtocolEntry>("protocol");
    r->add("p4",
           {runtime::ProtocolKind::kP4,
            "MPICH-P4 reference: direct channel, no fault tolerance",
            /*fault_tolerant=*/false,
            [](const runtime::ClusterConfig&) -> std::unique_ptr<ftapi::VProtocol> {
              return std::make_unique<ftapi::Vdummy>();
            },
            [](const runtime::ClusterConfig&) { return fixed_label("MPICH-P4"); }});
    r->add("vdummy",
           {runtime::ProtocolKind::kVdummy,
            "MPICH-V framework without fault tolerance",
            /*fault_tolerant=*/false,
            [](const runtime::ClusterConfig&) -> std::unique_ptr<ftapi::VProtocol> {
              return std::make_unique<ftapi::Vdummy>();
            },
            [](const runtime::ClusterConfig&) { return fixed_label("MPICH-Vdummy"); }});
    r->add("causal",
           {runtime::ProtocolKind::kCausal,
            "causal message logging (strategy selects the reduction)",
            /*fault_tolerant=*/true,
            [](const runtime::ClusterConfig& cfg) -> std::unique_ptr<ftapi::VProtocol> {
              return std::make_unique<causal::CausalProtocol>(
                  cfg.strategy, cfg.event_logger, cfg.payload_at_sender);
            },
            [](const runtime::ClusterConfig& cfg) {
              return std::string(causal::strategy_kind_name(cfg.strategy)) +
                     (cfg.event_logger ? " (EL)" : " (no EL)");
            }});
    r->add("pessimistic",
           {runtime::ProtocolKind::kPessimistic,
            "MPICH-V2-style pessimistic logging",
            /*fault_tolerant=*/true,
            [](const runtime::ClusterConfig&) -> std::unique_ptr<ftapi::VProtocol> {
              return std::make_unique<pessimist::PessimisticProtocol>();
            },
            [](const runtime::ClusterConfig&) { return fixed_label("Pessimistic"); }});
    r->add("coordinated",
           {runtime::ProtocolKind::kCoordinated,
            "Chandy-Lamport coordinated checkpointing",
            /*fault_tolerant=*/true,
            [](const runtime::ClusterConfig&) -> std::unique_ptr<ftapi::VProtocol> {
              return std::make_unique<coord::CoordinatedProtocol>();
            },
            [](const runtime::ClusterConfig&) {
              return fixed_label("Coordinated (Chandy-Lamport)");
            }});
    r->add("replica",
           {runtime::ProtocolKind::kReplica,
            "replication hybrid: hot shadow absorbs the crash, no rollback",
            /*fault_tolerant=*/true,
            [](const runtime::ClusterConfig& cfg) -> std::unique_ptr<ftapi::VProtocol> {
              return std::make_unique<replica::ReplicaProtocol>(
                  cfg.replica_sync_interval);
            },
            [](const runtime::ClusterConfig&) {
              return fixed_label("Replica hybrid");
            }});
    r->add("ulfm",
           {runtime::ProtocolKind::kUlfm,
            "ULFM-style shrink-and-repair: survivors rebuild and continue",
            /*fault_tolerant=*/true,
            [](const runtime::ClusterConfig&) -> std::unique_ptr<ftapi::VProtocol> {
              return std::make_unique<ulfm::UlfmProtocol>();
            },
            [](const runtime::ClusterConfig&) {
              return fixed_label("ULFM shrink-and-repair");
            }});
    return r;
  }();
  return *reg;
}

Registry<StrategyEntry>& strategies() {
  static Registry<StrategyEntry>* reg = [] {
    auto* r = new Registry<StrategyEntry>("strategy");
    r->add("vcausal",
           {causal::StrategyKind::kVcausal, "Vcausal",
            "plain per-creator sequences, append-only",
            []() -> std::unique_ptr<causal::Strategy> {
              return std::make_unique<causal::VcausalStrategy>();
            }});
    r->add("manetho",
           {causal::StrategyKind::kManetho, "Manetho",
            "antecedence graph, transitive reduction on receive",
            []() -> std::unique_ptr<causal::Strategy> {
              return std::make_unique<causal::ManethoStrategy>();
            }});
    r->add("logon",
           {causal::StrategyKind::kLogOn, "LogOn",
            "partial-order log, reordering on send",
            []() -> std::unique_ptr<causal::Strategy> {
              return std::make_unique<causal::LogOnStrategy>();
            }});
    return r;
  }();
  return *reg;
}

Registry<WorkloadEntry>& workload_registry() {
  static Registry<WorkloadEntry>* reg = [] {
    auto* r = new Registry<WorkloadEntry>("workload");
    r->add("ring",
           {"token ring with order-sensitive checksum (params: laps, bytes)",
            {"laps", "bytes"},
            always_valid,
            [](const ScenarioSpec& spec) {
              WorkloadInstance w;
              w.checksums =
                  std::make_shared<workloads::ChecksumResult>(spec.nranks);
              w.app = workloads::make_ring_app(
                  static_cast<int>(spec.workload.get_int("laps", 40)),
                  spec.workload.get_u64("bytes", 4096), w.checksums);
              return w;
            }});
    r->add("random_any",
           {"wildcard (MPI_ANY_SOURCE) random traffic "
            "(params: iters, seed, bytes)",
            {"iters", "seed", "bytes"},
            always_valid,
            [](const ScenarioSpec& spec) {
              WorkloadInstance w;
              w.checksums =
                  std::make_shared<workloads::ChecksumResult>(spec.nranks);
              w.app = workloads::make_random_any_app(
                  static_cast<int>(spec.workload.get_int("iters", 30)),
                  spec.workload.get_u64("seed", 42),
                  spec.workload.get_u64("bytes", 2048), w.checksums);
              return w;
            }});
    r->add("random_then_ring",
           {"wildcard storm then deterministic ring — the replay acid test "
            "(params: rand_iters, ring_laps, seed, bytes)",
            {"rand_iters", "ring_laps", "seed", "bytes"},
            always_valid,
            [](const ScenarioSpec& spec) {
              WorkloadInstance w;
              w.checksums =
                  std::make_shared<workloads::ChecksumResult>(spec.nranks);
              w.app = workloads::make_random_then_ring_app(
                  static_cast<int>(spec.workload.get_int("rand_iters", 12)),
                  static_cast<int>(spec.workload.get_int("ring_laps", 30)),
                  spec.workload.get_u64("seed", 42),
                  spec.workload.get_u64("bytes", 2048), w.checksums);
              return w;
            }});
    r->add("pingpong",
           {"NetPIPE-style ping-pong between ranks 0 and 1 "
            "(params: sizes, reps)",
            {"sizes", "reps"},
            two_or_more_ranks,
            [](const ScenarioSpec& spec) {
              WorkloadInstance w;
              w.pingpong = std::make_shared<workloads::PingPongResult>();
              w.app = workloads::make_pingpong_app(
                  parse_size_list(spec.workload.get_str("sizes", "1")),
                  static_cast<int>(spec.workload.get_int("reps", 100)),
                  w.pingpong);
              return w;
            }});
    r->add("nas",
           {"NAS Parallel Benchmark skeleton "
            "(params: kernel, class, scale)",
            {"kernel", "class", "scale"},
            nas_ranks_valid,
            [](const ScenarioSpec& spec) {
              WorkloadInstance w;
              const workloads::NasConfig ncfg = nas_config(spec);
              w.checksums =
                  std::make_shared<workloads::ChecksumResult>(spec.nranks);
              w.app = workloads::make_nas_app(ncfg, w.checksums);
              w.flops = workloads::nas_scaled_flops(ncfg);
              return w;
            }});
    return r;
  }();
  return *reg;
}

// Kind-based lookups serve internal callers holding the lowered enums; a
// miss there is a corrupted enum, not user input, so it panics like the
// switch defaults it replaced (name-based lookups throw SpecError).
const ProtocolEntry& protocol_entry(runtime::ProtocolKind kind) {
  const ProtocolEntry* e = protocols().find_if(
      [kind](const ProtocolEntry& p) { return p.kind == kind; });
  if (e == nullptr) {
    MPIV_PANIC("no registered protocol for kind %d", static_cast<int>(kind));
  }
  return *e;
}

const StrategyEntry& strategy_entry(causal::StrategyKind kind) {
  const StrategyEntry* e = strategies().find_if(
      [kind](const StrategyEntry& s) { return s.kind == kind; });
  if (e == nullptr) {
    MPIV_PANIC("no registered strategy for kind %d", static_cast<int>(kind));
  }
  return *e;
}

VariantSpec parse_variant(const std::string& name) {
  VariantSpec v;
  v.name = name;
  std::string head = name;
  std::string suffix;
  if (const std::size_t colon = name.find(':'); colon != std::string::npos) {
    head = name.substr(0, colon);
    suffix = name.substr(colon + 1);
  }

  if (const StrategyEntry* s = strategies().find(head)) {
    // Causal variant: "<strategy>[:el|:noel]", EL on by default.
    v.protocol = runtime::ProtocolKind::kCausal;
    v.strategy = s->kind;
    if (suffix.empty() || suffix == "el") {
      v.event_logger = true;
    } else if (suffix == "noel") {
      v.event_logger = false;
    } else {
      throw SpecError("bad variant suffix ':" + suffix + "' in '" + name +
                      "' (use :el or :noel)");
    }
    v.label = std::string(s->display) + (v.event_logger ? " (EL)" : " (no EL)");
    return v;
  }

  if (!suffix.empty()) {
    throw SpecError("variant suffix ':" + suffix + "' is only valid for "
                    "causal strategies, not '" + head + "'");
  }
  const ProtocolEntry* p = protocols().find(head);
  if (p == nullptr || p->kind == runtime::ProtocolKind::kCausal) {
    std::string msg = "unknown variant '" + name + "' (registered: ";
    bool first = true;
    for (const auto& [n, e] : protocols().entries()) {
      if (e.kind == runtime::ProtocolKind::kCausal) continue;
      if (!first) msg += ", ";
      msg += n;
      first = false;
    }
    for (const auto& entry : strategies().entries()) {
      msg += ", " + entry.first + "[:el|:noel]";
    }
    msg += ")";
    throw SpecError(msg);
  }
  v.protocol = p->kind;
  // Non-causal protocols ignore the strategy; EL stays on so the default
  // lowering matches a hand-built ClusterConfig.
  v.event_logger = true;
  runtime::ClusterConfig tmp;
  tmp.protocol = p->kind;
  v.label = p->label(tmp);
  return v;
}

}  // namespace mpiv::scenario

namespace mpiv::causal {

// Strategy lookups, resolved through the registry (the switch that lived
// in strategy_factory.cpp before the scenario layer existed).
const char* strategy_kind_name(StrategyKind k) {
  return scenario::strategy_entry(k).display;
}

std::unique_ptr<Strategy> make_strategy(StrategyKind k) {
  return scenario::strategy_entry(k).make();
}

}  // namespace mpiv::causal
