// Scenario execution: sweep expansion, lowering onto runtime::Cluster, and
// the machine-readable report `mpiv_run` and the bench harness share.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenario/spec.hpp"
#include "workloads/apps.hpp"

namespace mpiv::scenario {

/// One fully-resolved point of a scenario's sweep.
struct RunPoint {
  ScenarioSpec spec;
  std::string label;
  std::vector<std::pair<std::string, std::string>> axes;
  bool skipped = false;       // workload can't run at this point (e.g. BT/2)
  std::string skip_reason;
};

/// How one run point ended — the chaos-soak classifier. Ordered from worst
/// to best so tallies can be compared at a glance.
enum class Outcome : std::uint8_t {
  kFailed,           // the worker executing the point died (parallel mode:
                     // the crash is contained, the rest of the grid runs)
  kSkipped,          // the point never ran (workload/rank mismatch, ...)
  kAbandoned,        // hit max_sim_time without finishing
  kCompletedShrunk,  // finished on a repaired, smaller communicator (ULFM:
                     // the victim's share was redone by the survivors)
  kCompleted,        // finished, but no reference (or an inexact replay)
  kRecoveredExact,   // finished AND reproduced the fault-free reference
                     // checksums bit for bit
};

const char* outcome_name(Outcome o);

/// Everything one cluster run produced, plus the reference run when the
/// point uses the midrun-fault protocol.
struct RunResult {
  std::string label;
  std::vector<std::pair<std::string, std::string>> axes;
  bool skipped = false;
  std::string skip_reason;

  // Worker-crash containment (parallel mode): the process running this
  // point died before delivering a result. The grid keeps going; the point
  // is classified kFailed, never silently dropped.
  bool failed = false;
  std::string fail_reason;

  bool completed = false;
  std::string protocol_label;
  runtime::ClusterReport report;
  std::uint64_t events_executed = 0;  // sim::Engine scheduling trace
  std::uint64_t wire_bytes = 0;       // every byte on the fabric
  std::vector<std::uint64_t> checksums;  // per-rank workload checksums
  workloads::PingPongResult pingpong;    // filled by the pingpong workload
  double flops = 0;                      // executed flops (nas), else 0

  // Rank-fault-free reference (midrun-fault protocol or compare_reference).
  bool has_reference = false;
  sim::Time reference_time = 0;
  std::vector<std::uint64_t> reference_checksums;
  bool recovered_exact = false;  // checksums == reference_checksums

  // Merged trace streams (empty when trace.enabled = false). The reference
  // dump is the alignment twin mpiv_trace localizes divergence against.
  std::string trace_dump;
  std::string reference_trace_dump;
  // Where the dumps landed when the spec named a trace.dir ("" = in-memory).
  std::string trace_path;
  std::string reference_trace_path;
  // Where the metrics time-series CSV landed when the spec named a
  // metrics.dir ("" = none written). The summary itself travels inside
  // report.metrics.
  std::string metrics_csv_path;

  // Parallel-mode transport: a worker runs the point, renders its JSON
  // stanza with run_json_fragment() and ships it back with the summary
  // fields above; the parent splices the fragment verbatim (re-indented)
  // so the report is byte-identical to the serial path. The heavyweight
  // per-run payloads (report, checksums, traces) stay in the worker.
  std::string prerendered_json;
  // Outcome as classified where the point actually ran (parallel mode:
  // the parent-side RunResult lacks the fields outcome() derives from).
  int forced_outcome = -1;

  Outcome outcome() const {
    if (failed) return Outcome::kFailed;
    if (forced_outcome >= 0) return static_cast<Outcome>(forced_outcome);
    if (skipped) return Outcome::kSkipped;
    if (!completed) return Outcome::kAbandoned;
    // A repaired run finished on fewer ranks than the reference — it can
    // never be recovered_exact, but it did not merely "complete" either.
    if (!report.repairs.empty()) return Outcome::kCompletedShrunk;
    if (has_reference && recovered_exact) return Outcome::kRecoveredExact;
    return Outcome::kCompleted;
  }

  double sim_seconds() const { return sim::to_sec(report.completion_time); }
  double mops() const {
    return flops > 0 && report.completion_time > 0
               ? flops / sim::to_sec(report.completion_time) / 1e6
               : 0.0;
  }
  /// Order-sensitive digest over the per-rank checksums (the determinism
  /// fingerprint component).
  std::uint64_t checksum_digest() const;
};

/// Per-outcome counts over a RunSet (the chaos-soak tally: always sums to
/// runs.size()).
struct OutcomeCounts {
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t abandoned = 0;
  std::size_t completed_shrunk = 0;
  std::size_t completed = 0;
  std::size_t recovered_exact = 0;

  std::size_t total() const {
    return failed + skipped + abandoned + completed_shrunk + completed +
           recovered_exact;
  }
  /// True when the grid holds a point that ran but produced no result —
  /// mpiv_run turns this into exit status 3 so CI can't silently pass.
  bool degraded() const { return failed + abandoned > 0; }
};

/// The report of one scenario execution.
struct RunSet {
  std::string scenario;
  std::string origin;  // scenario file path or "<builder>"
  bool quick = false;
  std::vector<RunResult> runs;

  OutcomeCounts tally() const;
};

/// Applies the [quick] overrides in place: a key naming a sweep axis
/// replaces that axis (comma lists stay axes), anything else applies as a
/// scalar setting.
void apply_quick(ScenarioSpec& spec);

/// Expands the sweep axes (cartesian, declaration order) into validated
/// run points. Throws SpecError if any point fails validation; points
/// whose workload rejects the rank count come back `skipped`.
std::vector<RunPoint> expand(const ScenarioSpec& spec);

/// Lowers a resolved spec onto the internal config (field-for-field; the
/// determinism goldens pin this mapping).
runtime::ClusterConfig lower(const ScenarioSpec& spec);

/// Runs one point (including its reference pass in midrun-fault mode).
RunResult run_point(const RunPoint& point);

/// Validates, resolves and runs a single non-sweep spec.
RunResult run_spec(const ScenarioSpec& spec);

struct RunOptions {
  bool quick = false;
  /// Called after each point completes (progress reporting). Serial mode
  /// fires in sweep order; parallel mode fires in completion order (the
  /// report itself is reassembled in sweep order either way).
  std::function<void(const RunPoint&, const RunResult&)> on_result;
  /// Worker count: 0 = take the spec's runner.parallelism, 1 = the serial
  /// in-process path, > 1 = fan points across that many forked workers.
  int jobs = 0;
  /// Test hook, parallel mode only: runs inside the worker right before a
  /// point executes (used to induce deterministic worker crashes).
  std::function<void(const RunPoint&)> before_point;
};

/// Expands and runs a whole scenario.
RunSet run(const ScenarioSpec& spec, const RunOptions& options = {});

/// Renders one run's JSON stanza at zero indent — the parallel workers'
/// wire format; to_json splices these fragments back byte-identically.
std::string run_json_fragment(const RunResult& r);

/// Serializes a report as JSON (the mpiv_run output format).
std::string to_json(const RunSet& set);
std::string to_json(const std::vector<RunSet>& sets);

}  // namespace mpiv::scenario
