// The sweep worker pool: fork, feed point indices over per-worker pipes,
// reassemble prerendered results in sweep order.
//
// Protocol. The parent keeps exactly one point outstanding per worker (a
// point is orders of magnitude slower than the dispatch round-trip, so
// deeper prefetch buys nothing and would smear a worker crash over more
// than one point). Requests are 4-byte little-endian point indices; the
// sentinel 0xffffffff tells a worker to exit. A worker answers each index
// with one length-prefixed result frame:
//
//   u32 frame_len | u32 index | u8 outcome | u8 completed |
//   i64 completion_time | u32 fragment_len | fragment bytes
//
// where `fragment` is run_json_fragment() of the finished RunResult — the
// parent splices it into the report byte-identically instead of shipping
// the whole ClusterReport across the process boundary.
//
// Crash containment. EOF on a worker's result pipe before its outstanding
// point answered means the worker died running it (assert failure, OOM
// kill, sanitizer abort): the point becomes a `failed` result carrying the
// wait status, a replacement worker is forked, and the grid continues.
// Every crash consumes its point, so a pathological grid degrades into at
// most one fork per point, never a livelock.
#include "scenario/parallel.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

namespace mpiv::scenario::detail {

namespace {

constexpr std::uint32_t kSentinel = 0xffffffffu;

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<unsigned char*>(buf);
  while (n > 0) {
    const ssize_t k = ::read(fd, p, n);
    if (k <= 0) {
      if (k < 0 && errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(buf);
  while (n > 0) {
    const ssize_t k = ::write(fd, p, n);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_i64(std::string& out, std::int64_t v) {
  const auto u = static_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(u >> (8 * i)));
}

std::uint32_t get_u32(const std::string& buf, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(buf[at + i]))
         << (8 * i);
  }
  return v;
}

std::int64_t get_i64(const std::string& buf, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(buf[at + i]))
         << (8 * i);
  }
  return static_cast<std::int64_t>(v);
}

[[noreturn]] void worker_main(int req_rd, int res_wr,
                              const std::vector<RunPoint>& points,
                              const RunOptions& options) {
  for (;;) {
    std::uint32_t idx = 0;
    if (!read_exact(req_rd, &idx, 4) || idx == kSentinel) ::_exit(0);
    const RunPoint& p = points[idx];
    if (options.before_point) options.before_point(p);
    const RunResult r = run_point(p);

    std::string payload;
    put_u32(payload, idx);
    payload.push_back(static_cast<char>(r.outcome()));
    payload.push_back(r.completed ? 1 : 0);
    put_i64(payload, r.report.completion_time);
    const std::string frag = run_json_fragment(r);
    put_u32(payload, static_cast<std::uint32_t>(frag.size()));
    payload += frag;

    std::string msg;
    put_u32(msg, static_cast<std::uint32_t>(payload.size()));
    msg += payload;
    if (!write_exact(res_wr, msg.data(), msg.size())) ::_exit(1);
  }
}

struct Worker {
  pid_t pid = -1;
  int req_wr = -1;
  int res_rd = -1;
  std::string buf;            // partial result frames
  std::int64_t outstanding = -1;  // point index in flight, -1 = idle
  bool draining = false;      // sentinel sent, waiting for clean EOF
};

/// Forks one worker. `live` is every other worker whose parent-side fds
/// the child must close — otherwise a held write end would mask a sibling
/// crash from the parent's EOF detection.
bool spawn_worker(const std::vector<RunPoint>& points,
                  const RunOptions& options, const std::vector<Worker>& live,
                  Worker& out) {
  int req[2] = {-1, -1};
  int res[2] = {-1, -1};
  if (::pipe(req) != 0) return false;
  if (::pipe(res) != 0) {
    ::close(req[0]);
    ::close(req[1]);
    return false;
  }
  std::fflush(nullptr);  // don't let the child flush inherited stdio buffers
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(req[0]);
    ::close(req[1]);
    ::close(res[0]);
    ::close(res[1]);
    return false;
  }
  if (pid == 0) {
    ::close(req[1]);
    ::close(res[0]);
    for (const Worker& w : live) {
      if (w.req_wr >= 0) ::close(w.req_wr);
      if (w.res_rd >= 0) ::close(w.res_rd);
    }
    worker_main(req[0], res[1], points, options);
  }
  ::close(req[0]);
  ::close(res[1]);
  out = Worker{};
  out.pid = pid;
  out.req_wr = req[1];
  out.res_rd = res[0];
  return true;
}

RunResult make_failed(const RunPoint& p, std::string why) {
  RunResult r;
  r.label = p.label;
  r.axes = p.axes;
  r.failed = true;
  r.fail_reason = std::move(why);
  return r;
}

RunResult make_failed(const RunPoint& p, int wstatus) {
  char why[80];
  if (WIFSIGNALED(wstatus)) {
    std::snprintf(why, sizeof why,
                  "worker killed by signal %d before delivering a result",
                  WTERMSIG(wstatus));
  } else {
    std::snprintf(why, sizeof why,
                  "worker exited with status %d before delivering a result",
                  WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1);
  }
  return make_failed(p, std::string(why));
}

void retire(Worker& w) {
  if (w.req_wr >= 0) ::close(w.req_wr);
  if (w.res_rd >= 0) ::close(w.res_rd);
  w.req_wr = w.res_rd = -1;
}

}  // namespace

std::vector<RunResult> run_points_parallel(const std::vector<RunPoint>& points,
                                           int jobs,
                                           const RunOptions& options) {
  std::vector<RunResult> results(points.size());
  std::vector<std::size_t> work;  // indices the workers actually run
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].skipped) {
      // Skip classification is pure metadata — no cluster runs, so there
      // is nothing to gain (and a fork to lose) shipping it to a worker.
      results[i] = run_point(points[i]);
      if (options.on_result) options.on_result(points[i], results[i]);
    } else {
      work.push_back(i);
    }
  }
  if (work.empty()) return results;

  // The parent writes request pipes that a crashed worker no longer reads;
  // that must surface as EPIPE handled below, not a fatal SIGPIPE.
  using SigHandler = void (*)(int);
  const SigHandler old_sigpipe = ::signal(SIGPIPE, SIG_IGN);

  std::vector<Worker> workers;
  const std::size_t target =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), work.size());
  for (std::size_t i = 0; i < target; ++i) {
    Worker w;
    if (spawn_worker(points, options, workers, w)) workers.push_back(w);
  }

  std::size_t next = 0;  // next unassigned entry in `work`
  std::size_t done = 0;
  std::size_t respawns = 0;
  const std::size_t respawn_cap = work.size() + target + 8;

  const auto feed = [&](Worker& w) {
    if (next < work.size()) {
      const auto idx = static_cast<std::uint32_t>(work[next]);
      w.outstanding = static_cast<std::int64_t>(work[next]);
      ++next;
      // A write failure means the worker died already; the EOF on its
      // result pipe marks the outstanding point failed.
      write_exact(w.req_wr, &idx, 4);
    } else {
      w.outstanding = -1;
      w.draining = true;
      const std::uint32_t s = kSentinel;
      write_exact(w.req_wr, &s, 4);
    }
  };
  for (Worker& w : workers) feed(w);

  const auto record = [&](std::size_t idx, RunResult r) {
    results[idx] = std::move(r);
    ++done;
    if (options.on_result) options.on_result(points[idx], results[idx]);
  };

  while (done < work.size()) {
    if (workers.empty()) {
      // Could not fork (or every replacement died): finish in-process so
      // the grid still completes and reports every point.
      while (next < work.size()) {
        const std::size_t idx = work[next++];
        record(idx, run_point(points[idx]));
      }
      break;
    }

    std::vector<pollfd> fds(workers.size());
    for (std::size_t i = 0; i < workers.size(); ++i) {
      fds[i] = pollfd{workers[i].res_rd, POLLIN, 0};
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; the serial fallback above finishes the grid
    }

    for (std::size_t i = workers.size(); i-- > 0;) {
      if (fds[i].revents == 0) continue;
      Worker& w = workers[i];
      char chunk[65536];
      const ssize_t k = ::read(w.res_rd, chunk, sizeof chunk);
      bool malformed = false;
      if (k > 0) {
        w.buf.append(chunk, static_cast<std::size_t>(k));
        while (w.buf.size() >= 4) {
          // Validate the frame before trusting any of its fields: the
          // payload is 18 fixed bytes plus the fragment, and it must answer
          // the one point this worker has outstanding. Anything else is a
          // protocol violation from a misbehaving worker — contain it like
          // a crash instead of indexing results[] on the worker's say-so.
          const std::uint32_t len = get_u32(w.buf, 0);
          if (len < 18 || len > (std::uint32_t{1} << 30)) {
            malformed = true;
            break;
          }
          if (w.buf.size() < 4 + static_cast<std::size_t>(len)) break;
          const std::size_t idx = get_u32(w.buf, 4);
          const std::uint32_t frag_len = get_u32(w.buf, 18);
          if (static_cast<std::uint64_t>(len) !=
                  18 + static_cast<std::uint64_t>(frag_len) ||
              idx >= points.size() ||
              static_cast<std::int64_t>(idx) != w.outstanding) {
            malformed = true;
            break;
          }
          RunResult r;
          r.label = points[idx].label;
          r.axes = points[idx].axes;
          r.forced_outcome = static_cast<unsigned char>(w.buf[8]);
          r.completed = w.buf[9] != 0;
          r.report.completion_time = get_i64(w.buf, 10);
          r.prerendered_json = w.buf.substr(22, frag_len);
          w.buf.erase(0, 4 + len);
          w.outstanding = -1;
          record(idx, std::move(r));
          feed(w);
        }
        if (!malformed) continue;
      }
      if (!malformed && k < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      // EOF (clean exit after the sentinel, or a crash mid-point) — or a
      // protocol violation, in which case the worker is still alive and
      // must be killed before waitpid can reap it.
      if (malformed) ::kill(w.pid, SIGKILL);
      int wstatus = 0;
      ::waitpid(w.pid, &wstatus, 0);
      retire(w);
      const std::int64_t lost = w.outstanding;
      const bool crashed = !w.draining;
      workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(i));
      if (lost >= 0) {
        const RunPoint& p = points[static_cast<std::size_t>(lost)];
        record(static_cast<std::size_t>(lost),
               malformed
                   ? make_failed(p, "worker sent a malformed result frame")
                   : make_failed(p, wstatus));
      }
      if (crashed && done < work.size() && respawns < respawn_cap) {
        ++respawns;
        Worker fresh;
        if (spawn_worker(points, options, workers, fresh)) {
          feed(fresh);
          workers.push_back(fresh);
        }
      }
    }
  }

  for (Worker& w : workers) {
    if (!w.draining) {
      const std::uint32_t s = kSentinel;
      write_exact(w.req_wr, &s, 4);
    }
    retire(w);
    int wstatus = 0;
    ::waitpid(w.pid, &wstatus, 0);
  }
  ::signal(SIGPIPE, old_sigpipe);
  return results;
}

}  // namespace mpiv::scenario::detail
