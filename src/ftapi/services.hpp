// Node layout and the service bundle handed to fault-tolerance protocols.
#pragma once

#include <cstdint>

#include "elog/el_directory.hpp"
#include "ftapi/stats.hpp"
#include "net/cost_model.hpp"
#include "net/daemon.hpp"
#include "net/message.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace mpiv::ftapi {

/// Execution-event sink for trigger-based fault injection ("kill rank 3 on
/// its 5th checkpoint", "crash shard 0 once N determinants are stored").
/// The fault engine implements it; a null observer costs nothing.
class FaultObserver {
 public:
  virtual ~FaultObserver() = default;
  /// `completed` = how many checkpoint transactions this rank has committed.
  virtual void on_rank_checkpoint(int rank, std::uint64_t completed) {
    (void)rank;
    (void)completed;
  }
  /// `stored` = determinant store operations the shard has performed.
  virtual void on_el_stored(int shard, std::uint64_t stored) {
    (void)shard;
    (void)stored;
  }
};

/// Cluster node numbering: ranks first, then the stable auxiliary servers
/// (Fig. 5 of the paper: checkpoint server, Event Logger(s), dispatcher
/// with its checkpoint scheduler). `el_count > 1` enables the distributed
/// Event Logger of the paper's future work (§VI): ranks are assigned to
/// shards round-robin and the shards exchange their stable-clock arrays.
struct NodeLayout {
  int nranks = 0;
  int el_count = 1;

  net::NodeId rank_node(int r) const { return static_cast<net::NodeId>(r); }
  net::NodeId el_node(int shard = 0) const {
    return static_cast<net::NodeId>(nranks + shard);
  }
  /// The EL shard responsible for rank `r`'s determinants.
  int el_shard_for_rank(int r) const { return r % el_count; }
  net::NodeId el_node_for_rank(int r) const {
    return el_node(el_shard_for_rank(r));
  }
  net::NodeId ckpt_node() const {
    return static_cast<net::NodeId>(nranks + el_count);
  }
  net::NodeId dispatcher_node() const {
    return static_cast<net::NodeId>(nranks + el_count + 1);
  }
  std::uint32_t total_nodes() const {
    return static_cast<std::uint32_t>(nranks + el_count + 2);
  }
  bool is_rank_node(net::NodeId n) const { return n < static_cast<net::NodeId>(nranks); }
};

/// Everything a V-protocol may use, owned by the rank runtime.
struct RankServices {
  sim::Engine* eng = nullptr;
  net::Daemon* daemon = nullptr;
  const net::CostModel* cost = nullptr;
  int rank = -1;
  int nranks = 0;
  NodeLayout layout{};
  bool el_enabled = false;
  RankStats* stats = nullptr;
  /// Dynamic rank -> EL shard routing (null = the layout's static
  /// round-robin; clusters with fault campaigns install a live directory so
  /// shard failover re-routes every client automatically).
  const elog::ElDirectory* el_dir = nullptr;
  /// > 0: retransmit interval for unacked checkpoint/EL requests (armed
  /// only under fault campaigns, so fault-free runs schedule no timers).
  sim::Time service_retry = 0;
  /// This rank's trace lane (null = tracing disabled).
  trace::Lane* trace = nullptr;

  int el_shard_for(int r) const {
    return el_dir != nullptr ? el_dir->shard_of(r) : layout.el_shard_for_rank(r);
  }
  net::NodeId el_node_for(int r) const { return layout.el_node(el_shard_for(r)); }

  /// Sends a control frame from this rank's node.
  void send_ctl(net::NodeId dst, net::Message&& m) const {
    m.src = layout.rank_node(rank);
    m.dst = dst;
    daemon->submit_ctl(std::move(m));
  }
  void send_ctl_to_rank(int dst_rank, net::Message&& m) const {
    send_ctl(layout.rank_node(dst_rank), std::move(m));
  }
};

}  // namespace mpiv::ftapi
