// The V-protocol hook interface (the "fault tolerance API" of MPICH-V).
//
// The generic rank runtime (src/mpi) calls these hooks at the relevant
// points of the message path, exactly as the paper describes for the ch_v
// channel: every fault-tolerance protocol — Vdummy, the causal family,
// pessimistic logging, coordinated checkpointing — is an implementation of
// this interface, so all protocols share the same framework overheads and
// can be compared fairly.
#pragma once

#include <cstdint>
#include <vector>

#include "ftapi/determinant.hpp"
#include "ftapi/services.hpp"
#include "net/message.hpp"
#include "sim/task.hpp"
#include "util/buffer.hpp"

namespace mpiv::ftapi {

/// Runtime checkpoint operations exposed to protocols at checkpoint sites.
class ICheckpointOps {
 public:
  virtual ~ICheckpointOps() = default;
  /// True if the checkpoint scheduler asked this rank to checkpoint.
  virtual bool checkpoint_requested() const = 0;
  virtual void clear_checkpoint_request() = 0;
  /// Assembles the full image (app state + matching state + protocol state),
  /// stores it on the checkpoint server (blocking transaction) and
  /// broadcasts the sender-log GC notice to peers and the Event Logger.
  /// `version` tags the image (0 = auto-increment; coordinated waves pass
  /// the wave number so a global rollback can name a consistent snapshot).
  virtual sim::Task<void> store_checkpoint(const util::Buffer& app_state,
                                           std::uint64_t version) = 0;
};

struct PiggybackOut {
  util::Buffer bytes;       // protocol bytes appended to the message body
  sim::Time cpu = 0;        // total cost charged to the sender
  // The causality-management part of `cpu` (strategy selection +
  // serialization), the quantity the paper's Fig. 8 reports — excludes
  // payload copies and generic logging bookkeeping.
  sim::Time stats_cpu = 0;
  std::uint64_t events = 0; // events piggybacked (Fig. 7 probe)
  // Cross-edge targets of the piggybacked events, in piggyback order
  // (simulator-side shadow; see net::Message::dep_shadow).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> deps;
};

class VProtocol {
 public:
  virtual ~VProtocol() = default;
  virtual const char* name() const = 0;
  /// Message-logging protocols replay receptions after a crash; coordinated
  /// checkpointing rolls everyone back instead.
  virtual bool is_message_logging() const { return false; }
  /// Events currently held for piggybacking (not yet EL-stable / pruned) —
  /// the metrics sampler's per-rank causality-footprint probe. Protocols
  /// without a piggyback set report 0.
  virtual std::size_t pb_set_size() const { return 0; }

  virtual void bind(const RankServices& svc) { svc_ = svc; }

  // --- fault-free path -----------------------------------------------------
  /// Awaited before every app send (pessimistic logging blocks here until
  /// its events are stable; everyone else passes through).
  virtual sim::Task<void> send_gate() { co_return; }
  /// An app message is leaving: log the payload (sender-based logging) and
  /// build the causal piggyback for `dst_rank`.
  virtual PiggybackOut on_send(int dst_rank, std::uint64_t ssn,
                               const net::Payload& payload, std::int32_t tag) {
    (void)dst_rank; (void)ssn; (void)payload; (void)tag;
    return {};
  }
  struct PacketCost {
    sim::Time cpu = 0;        // total cost charged on the receive path
    sim::Time stats_cpu = 0;  // causality-management part (Fig. 8 probe)
  };
  /// An app packet arrived (before matching): absorb its piggyback.
  virtual PacketCost on_packet(net::Message& m) {
    (void)m;
    return {};
  }
  /// A reception event was created at matching time.
  virtual sim::Time on_deliver(const Determinant& d) {
    (void)d;
    return 0;
  }
  /// Control frames addressed to the protocol (Event Logger acks, recovery
  /// requests/responses, coordinated-checkpoint markers, GC notices).
  virtual void on_ctl(net::Message&& m) { (void)m; }

  // --- checkpoint ------------------------------------------------------------
  /// Called at every application checkpoint site. The default takes an
  /// uncoordinated checkpoint if the scheduler requested one; coordinated
  /// checkpointing overrides this with its marker flush wave.
  virtual sim::Task<void> at_checkpoint_site(ICheckpointOps& ops,
                                             const util::Buffer& app_state) {
    if (ops.checkpoint_requested()) {
      ops.clear_checkpoint_request();
      co_await ops.store_checkpoint(app_state, 0);
    }
  }
  /// Protocol state carried inside the checkpoint image.
  virtual void serialize(util::Buffer& b) const { (void)b; }
  virtual void restore(util::Buffer& b) { (void)b; }
  /// Called on the new incarnation after a crash, before restore().
  virtual void reset() {}

  // --- recovery --------------------------------------------------------------
  /// Restarting rank: collect every determinant of this rank with
  /// seq > `already_rsn` (receptions after the checkpoint) and trigger
  /// payload resends from survivors. `arr_watermarks[s]` is the restored
  /// per-sender arrival watermark (survivors resend logged payloads above
  /// it). The protocol attaches its own restored-knowledge vector to the
  /// requests so survivors can clamp their beliefs (docs/DESIGN.md §4).
  virtual sim::Task<DeterminantList> recover(
      std::uint64_t already_rsn,
      const std::vector<std::uint64_t>& arr_watermarks) {
    (void)already_rsn; (void)arr_watermarks;
    co_return DeterminantList{};
  }
  /// Survivor side: receiver `peer` checkpointed; all messages whose
  /// arrival ssn on channel (this rank -> peer) is <= `arr_ssn` may be
  /// garbage-collected from the sender-based payload log.
  virtual void on_peer_checkpoint(int peer, std::uint64_t arr_ssn) {
    (void)peer; (void)arr_ssn;
  }

 protected:
  RankServices svc_{};
};

/// Vdummy: the trivial implementation of the hooks — no fault tolerance.
/// Running it measures the raw cost of the generic MPICH-V framework
/// itself (Fig. 6a: P4 vs Vdummy).
class Vdummy final : public VProtocol {
 public:
  const char* name() const override { return "Vdummy"; }
};

}  // namespace mpiv::ftapi
