// Probes shared across the stack — the quantities the paper's evaluation
// section reports (piggyback bytes, piggyback management time, recovery
// timing, Event Logger behaviour).
#pragma once

#include <cstdint>
#include <vector>

#include "metrics/metrics.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

namespace mpiv::ftapi {

struct RankStats {
  // Application traffic.
  std::uint64_t app_msgs_sent = 0;
  std::uint64_t app_bytes_sent = 0;
  // Piggyback volume (Fig. 7).
  std::uint64_t pb_events_sent = 0;
  std::uint64_t pb_bytes_sent = 0;
  std::uint64_t pb_empty_msgs = 0;  // app messages that carried no events
  // Worst single-message piggyback — the regrowth probe: during an Event
  // Logger outage stability freezes and this peak climbs toward the no-EL
  // regime, then shrinks back once the failover shard starts acking. The
  // post_el_fault pair counts only messages sent after the first EL fault,
  // so a single report shows the regrowth against the startup transient.
  std::uint64_t pb_peak_msg_bytes = 0;
  std::uint64_t pb_peak_msg_events = 0;
  std::uint64_t pb_peak_post_el_fault_bytes = 0;
  std::uint64_t pb_peak_post_el_fault_events = 0;
  // Piggyback management time (Fig. 8): simulated CPU charged.
  sim::Time pb_send_cpu = 0;   // select + serialize on the send path
  sim::Time pb_recv_cpu = 0;   // parse + merge on the receive path
  // Determinants and the Event Logger.
  std::uint64_t dets_created = 0;
  // Histogram, not just a mean: the EL ack tail (p99) is what bounds how
  // long events linger in piggyback sets. mean() is bit-identical to the
  // util::Accumulator this replaced (the histogram embeds one), so the
  // fault-free `mean_ack_us` goldens are unaffected.
  metrics::Histogram el_ack_latency_us;
  // Recovery (Fig. 10).
  sim::Time recovery_collect_time = 0;  // time to gather all events to replay
  sim::Time recovery_total_time = 0;    // image fetch + events + replay
  std::uint64_t recovery_events = 0;
  std::uint64_t replayed_receptions = 0;
  // Daemon-process faults (failure domain split from the rank: the app
  // survives, stalled, while the dispatcher respawns the daemon).
  std::uint64_t daemon_crashes = 0;
  sim::Time daemon_down_time = 0;
  // Split-brain reconciliation (service-side partitions). The first two are
  // EL-side, attributed to the creator rank: submissions the shard dropped
  // as duplicates of records it already held, and records a heal-time merge
  // pulled over from the stale shard's live log. The third is client-side:
  // acks discarded because they carried a pre-failover directory epoch from
  // a shard that is no longer the rank's home.
  std::uint64_t el_dup_submissions = 0;
  std::uint64_t el_reconciled_records = 0;
  std::uint64_t stale_acks_fenced = 0;
  // Replica hybrid pricing: sync frames shipped to the shadow, their bytes,
  // and the per-send mirror copy keeping the shadow's image warm (the 2×
  // compute shows up as mirror cpu, the fabric share as sync bytes).
  std::uint64_t replica_sync_msgs = 0;
  std::uint64_t replica_sync_bytes = 0;
  sim::Time replica_mirror_cpu = 0;
  // ULFM shrink-and-repair: revoke notices this rank absorbed and the
  // agreement rounds it participated in.
  std::uint64_t ulfm_revokes_seen = 0;
  std::uint64_t ulfm_repairs = 0;
  // Memory watermarks.
  std::uint64_t sender_log_peak_bytes = 0;
  std::uint64_t event_store_peak = 0;
  std::uint64_t graph_peak_nodes = 0;

  void merge(const RankStats& o) {
    app_msgs_sent += o.app_msgs_sent;
    app_bytes_sent += o.app_bytes_sent;
    pb_events_sent += o.pb_events_sent;
    pb_bytes_sent += o.pb_bytes_sent;
    pb_empty_msgs += o.pb_empty_msgs;
    pb_peak_msg_bytes = std::max(pb_peak_msg_bytes, o.pb_peak_msg_bytes);
    pb_peak_msg_events = std::max(pb_peak_msg_events, o.pb_peak_msg_events);
    pb_peak_post_el_fault_bytes =
        std::max(pb_peak_post_el_fault_bytes, o.pb_peak_post_el_fault_bytes);
    pb_peak_post_el_fault_events =
        std::max(pb_peak_post_el_fault_events, o.pb_peak_post_el_fault_events);
    pb_send_cpu += o.pb_send_cpu;
    pb_recv_cpu += o.pb_recv_cpu;
    dets_created += o.dets_created;
    el_ack_latency_us.merge(o.el_ack_latency_us);
    recovery_collect_time += o.recovery_collect_time;
    recovery_total_time += o.recovery_total_time;
    recovery_events += o.recovery_events;
    replayed_receptions += o.replayed_receptions;
    daemon_crashes += o.daemon_crashes;
    daemon_down_time += o.daemon_down_time;
    el_dup_submissions += o.el_dup_submissions;
    el_reconciled_records += o.el_reconciled_records;
    stale_acks_fenced += o.stale_acks_fenced;
    replica_sync_msgs += o.replica_sync_msgs;
    replica_sync_bytes += o.replica_sync_bytes;
    replica_mirror_cpu += o.replica_mirror_cpu;
    ulfm_revokes_seen += o.ulfm_revokes_seen;
    ulfm_repairs += o.ulfm_repairs;
    sender_log_peak_bytes = std::max(sender_log_peak_bytes, o.sender_log_peak_bytes);
    event_store_peak = std::max(event_store_peak, o.event_store_peak);
    graph_peak_nodes = std::max(graph_peak_nodes, o.graph_peak_nodes);
  }
};

struct ElStats {
  std::uint64_t events_stored = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t peak_queue = 0;
};

}  // namespace mpiv::ftapi
