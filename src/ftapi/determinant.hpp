// Reception determinants — the nondeterministic events of message logging.
//
// Message-logging protocols assume piecewise-deterministic execution: a
// process's run is fully determined by the sequence of its reception events.
// A determinant records one reception: "my `seq`-th delivery matched the
// message with send-sequence `ssn` from rank `src`". Replaying the
// determinant sequence after a crash reproduces the pre-crash run.
#pragma once

#include <cstdint>
#include <vector>

#include "util/buffer.hpp"

namespace mpiv::ftapi {

struct Determinant {
  std::uint32_t creator = 0;  // rank whose reception this describes
  std::uint64_t seq = 0;      // creator's reception sequence number (1-based)
  std::uint32_t src = 0;      // sender of the matched message
  std::uint64_t ssn = 0;      // sender's (src -> creator) send sequence
  std::int32_t tag = 0;

  // Simulator-side causal dependency (antecedence-graph edge target): the
  // latest event of `src` known when the message was sent. Real Manetho
  // recovers this from the structure of its graph-fragment piggyback, so it
  // is NOT counted as wire bytes (see docs/DESIGN.md §2).
  std::uint32_t dep_creator = UINT32_MAX;
  std::uint64_t dep_seq = 0;

  bool operator==(const Determinant& o) const {
    return creator == o.creator && seq == o.seq && src == o.src &&
           ssn == o.ssn && tag == o.tag;
  }

  /// Bytes of one determinant in the Event Logger / recovery wire format.
  static constexpr std::uint64_t kWireSize = 2 + 8 + 2 + 8 + 4;

  void serialize(util::Buffer& b) const {
    b.put_u16(static_cast<std::uint16_t>(creator));
    b.put_u64(seq);
    b.put_u16(static_cast<std::uint16_t>(src));
    b.put_u64(ssn);
    b.put_u32(static_cast<std::uint32_t>(tag));
  }
  static Determinant deserialize(util::Buffer& b) {
    Determinant d;
    d.creator = b.get_u16();
    d.seq = b.get_u64();
    d.src = b.get_u16();
    d.ssn = b.get_u64();
    d.tag = static_cast<std::int32_t>(b.get_u32());
    return d;
  }
};

using DeterminantList = std::vector<Determinant>;

}  // namespace mpiv::ftapi
