#include "causal/wire.hpp"

#include "util/check.hpp"

namespace mpiv::causal::wire {

void factored_serialize(const std::vector<ftapi::Determinant>& events,
                        util::Buffer& out) {
  // Count blocks: a block is a maximal run of the same creator with
  // consecutive sequence numbers.
  std::uint16_t nblocks = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i == 0 || events[i].creator != events[i - 1].creator ||
        events[i].seq != events[i - 1].seq + 1) {
      ++nblocks;
    }
  }
  out.put_u16(nblocks);
  std::size_t i = 0;
  while (i < events.size()) {
    std::size_t j = i + 1;
    while (j < events.size() && events[j].creator == events[j - 1].creator &&
           events[j].seq == events[j - 1].seq + 1) {
      ++j;
    }
    out.put_u16(static_cast<std::uint16_t>(events[i].creator));
    out.put_u16(static_cast<std::uint16_t>(j - i));
    out.put_u64(events[i].seq);
    for (std::size_t k = i; k < j; ++k) {
      out.put_u16(static_cast<std::uint16_t>(events[k].src));
      out.put_u64(events[k].ssn);
      out.put_u32(static_cast<std::uint32_t>(events[k].tag));
    }
    i = j;
  }
}

std::vector<ftapi::Determinant> factored_parse(util::Buffer& in) {
  std::vector<ftapi::Determinant> out;
  const std::uint16_t nblocks = in.get_u16();
  for (std::uint16_t b = 0; b < nblocks; ++b) {
    const std::uint16_t creator = in.get_u16();
    const std::uint16_t count = in.get_u16();
    const std::uint64_t first = in.get_u64();
    for (std::uint16_t k = 0; k < count; ++k) {
      ftapi::Determinant d;
      d.creator = creator;
      d.seq = first + k;
      d.src = in.get_u16();
      d.ssn = in.get_u64();
      d.tag = static_cast<std::int32_t>(in.get_u32());
      out.push_back(d);
    }
  }
  return out;
}

void plain_serialize(const std::vector<ftapi::Determinant>& events,
                     util::Buffer& out) {
  MPIV_CHECK(events.size() <= UINT16_MAX, "piggyback too large: %zu events",
             events.size());
  out.put_u16(static_cast<std::uint16_t>(events.size()));
  for (const ftapi::Determinant& d : events) {
    out.put_u16(static_cast<std::uint16_t>(d.creator));
    out.put_u64(d.seq);
    out.put_u16(static_cast<std::uint16_t>(d.src));
    out.put_u64(d.ssn);
    out.put_u32(static_cast<std::uint32_t>(d.tag));
  }
}

std::vector<ftapi::Determinant> plain_parse(util::Buffer& in) {
  std::vector<ftapi::Determinant> out;
  const std::uint16_t n = in.get_u16();
  out.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    ftapi::Determinant d;
    d.creator = in.get_u16();
    d.seq = in.get_u64();
    d.src = in.get_u16();
    d.ssn = in.get_u64();
    d.tag = static_cast<std::int32_t>(in.get_u32());
    out.push_back(d);
  }
  return out;
}

}  // namespace mpiv::causal::wire
