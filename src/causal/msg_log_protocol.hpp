// Shared base for the message-logging V-protocols (causal and pessimistic).
//
// Owns the machinery the two families have in common: the sender-based
// payload log with checkpoint-driven GC, the Event Logger client, the
// determinant store, and the recovery exchange — the restarting rank
// queries the EL and/or broadcasts a recovery request, survivors respond
// with every determinant of the failed rank they hold and re-send logged
// payloads above the restored arrival watermark.
#pragma once

#include <memory>
#include <optional>

#include "causal/el_client.hpp"
#include "causal/event_store.hpp"
#include "causal/sender_log.hpp"
#include "ftapi/vprotocol.hpp"
#include "mpi/rank_runtime.hpp"
#include "sim/sync.hpp"

namespace mpiv::causal {

class MsgLogProtocolBase : public ftapi::VProtocol {
 public:
  explicit MsgLogProtocolBase(bool use_el) : use_el_(use_el) {}

  bool is_message_logging() const override { return true; }
  bool uses_event_logger() const { return use_el_; }
  std::size_t pb_set_size() const override {
    return store_ ? store_->held_count() : 0;
  }

  void bind(const ftapi::RankServices& svc) override {
    ftapi::VProtocol::bind(svc);
    store_ = std::make_unique<EventStore>(svc.nranks);
    slog_ = std::make_unique<SenderLog>(svc.nranks);
    el_.attach(svc, [this](const std::vector<std::uint64_t>& stable) {
      store_->set_stable(stable);
      on_stable(stable);
    });
    resp_latch_ = std::make_unique<sim::CountLatch>(*svc.eng);
  }

  void on_peer_checkpoint(int peer, std::uint64_t arr_ssn) override {
    slog_->gc(peer, arr_ssn);
  }

  void on_ctl(net::Message&& m) override {
    switch (m.kind) {
      case net::MsgKind::kElAck: {
        el_.on_ack(std::move(m));
        trace::emit(svc_.trace, svc_.eng->now(), trace::Kind::kElAck, 0,
                    svc_.el_shard_for(svc_.rank), el_.own_stable());
        return;
      }
      case net::MsgKind::kElRecoveryResp:
        el_.on_recovery_resp(std::move(m));
        return;
      case net::MsgKind::kRecoveryReq:
        handle_peer_recovery(m);
        return;
      case net::MsgKind::kRecoveryResp: {
        const std::uint32_t n = m.body.get_u32();
        for (std::uint32_t i = 0; i < n; ++i) {
          gathered_.push_back(ftapi::Determinant::deserialize(m.body));
        }
        resp_latch_->arrive();
        return;
      }
      case net::MsgKind::kControl:
        if (static_cast<mpi::CtlSub>(m.tag) == mpi::CtlSub::kElFailover) {
          on_el_failover(m.arg);
        }
        return;
      default:
        return;  // not ours (e.g. stray frames after restart)
    }
  }

  /// EL-shard failover notice: our home shard died and (when a successor
  /// exists) the directory already re-homed us. Everything the dead shard
  /// never durably acknowledged — our unstable suffix, still held locally —
  /// is re-persisted on the successor; until its acks land, stability is
  /// frozen and piggybacks regrow, exactly the paper's no-EL regime entered
  /// dynamically.
  void on_el_failover(std::uint64_t arg) {
    if (!use_el_) return;
    trace::emit(svc_.trace, svc_.eng->now(), trace::Kind::kRecovery,
                trace::kPhaseElFailover, mpi::el_failover_dead(arg),
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(mpi::el_failover_successor(arg))));
    if (mpi::el_failover_successor(arg) < 0) return;  // abandoned: no-EL now
    const auto me = static_cast<std::uint32_t>(svc_.rank);
    ftapi::DeterminantList mine;
    store_->for_range(me, el_.own_stable(), store_->known(me),
                      [&mine](const ftapi::Determinant& d) {
                        mine.push_back(d);
                      });
    el_.submit_batch(mine);
  }

  /// True when this rank's determinants are unreachable at any Event Logger
  /// (home shard dead with no successor): recovery and the send gate must
  /// not wait on it.
  bool el_unreachable() const {
    return svc_.el_dir != nullptr &&
           svc_.el_dir->abandoned(svc_.el_shard_for(svc_.rank));
  }

  sim::Task<ftapi::DeterminantList> recover(
      std::uint64_t already_rsn,
      const std::vector<std::uint64_t>& arr_watermarks) override {
    (void)already_rsn;
    ftapi::DeterminantList all;
    if (use_el_ && !el_unreachable()) {
      all = co_await el_.fetch_mine();
    }
    // Ask every survivor for the determinants it holds about us and for the
    // logged payloads we have not provably received.
    gathered_.clear();
    resp_latch_->expect(static_cast<std::size_t>(svc_.nranks - 1));
    const std::vector<std::uint64_t> known = store_->known_vector();
    for (int peer = 0; peer < svc_.nranks; ++peer) {
      if (peer == svc_.rank) continue;
      net::Message m;
      m.kind = net::MsgKind::kRecoveryReq;
      m.src_rank = svc_.rank;
      m.body.put_u64(arr_watermarks[static_cast<std::size_t>(peer)]);
      for (const std::uint64_t k : known) m.body.put_u64(k);
      svc_.send_ctl_to_rank(peer, std::move(m));
    }
    co_await resp_latch_->wait();
    // Survivors may ship third-party determinants (no-EL mode): those
    // rebuild our causal knowledge; only our own creations are replayed.
    for (const ftapi::Determinant& d : gathered_) {
      if (d.creator == static_cast<std::uint32_t>(svc_.rank)) {
        all.push_back(d);
      } else {
        store_->add(d);
      }
    }
    gathered_.clear();
    co_return all;
  }

  void serialize(util::Buffer& b) const override {
    store_->serialize(b);
    slog_->serialize(b);
    el_.serialize(b);
  }
  void restore(util::Buffer& b) override {
    store_->restore(b);
    slog_->restore(b);
    el_.restore(b);
  }
  void reset() override {
    store_->reset();
    slog_->reset();
    el_.reset();
    gathered_.clear();
  }

  EventStore& store() { return *store_; }
  SenderLog& sender_log() { return *slog_; }
  ElClient& el() { return el_; }

 protected:
  /// Hook for strategies: a peer restarted with knowledge vector `known`.
  virtual void on_peer_restart(int peer, const std::vector<std::uint64_t>& known) {
    (void)peer; (void)known;
  }
  /// Hook: the stable vector advanced (store already pruned).
  virtual void on_stable(const std::vector<std::uint64_t>& stable) {
    (void)stable;
  }

  void handle_peer_recovery(net::Message& m) {
    const int failed = m.src_rank;
    const std::uint64_t arr_ssn = m.body.get_u64();
    std::vector<std::uint64_t> known(static_cast<std::size_t>(svc_.nranks));
    for (std::uint64_t& k : known) k = m.body.get_u64();
    on_peer_restart(failed, known);

    // With an EL, the failed rank's own determinants beyond its checkpoint
    // suffice (the EL covers the stable prefix and the stable vector covers
    // third-party knowledge). Without one, the restarting rank must also
    // rebuild its causal knowledge of everyone else, so each survivor ships
    // its ENTIRE held determinant set — the volume (and the recovery-time
    // blow-up with cluster size) the paper's Fig. 10 measures.
    ftapi::DeterminantList dets;
    if (use_el_) {
      store_->collect(static_cast<std::uint32_t>(failed), dets);
    } else {
      for (int c = 0; c < svc_.nranks; ++c) {
        store_->collect(static_cast<std::uint32_t>(c), dets);
      }
    }
    net::Message resp;
    resp.kind = net::MsgKind::kRecoveryResp;
    resp.src_rank = svc_.rank;
    resp.body.put_u32(static_cast<std::uint32_t>(dets.size()));
    for (const ftapi::Determinant& d : dets) d.serialize(resp.body);
    svc_.send_ctl_to_rank(failed, std::move(resp));

    // Re-send logged payloads the failed rank's checkpoint does not cover.
    if (getenv("MPIV_DEBUG_RECOVERY")) {
      std::fprintf(stderr, "[dbg] rank %d: peer %d recovering, arr_ssn=%llu, log entries to peer=%zu\n",
                   svc_.rank, failed, (unsigned long long)arr_ssn, slog_->entries());
    }
    slog_->for_pending(failed, arr_ssn, [&](const SenderLog::Entry& e) {
      if (getenv("MPIV_DEBUG_RECOVERY")) {
        std::fprintf(stderr, "[dbg]   resend %d->%d ssn=%llu tag=%d\n", svc_.rank,
                     failed, (unsigned long long)e.ssn, e.tag);
      }
      net::Message r;
      r.kind = net::MsgKind::kPayloadResend;
      r.src = svc_.layout.rank_node(svc_.rank);
      r.dst = svc_.layout.rank_node(failed);
      r.src_rank = svc_.rank;
      r.dst_rank = failed;
      r.tag = e.tag;
      r.ssn = e.ssn;
      r.payload = e.payload;
      svc_.daemon->submit_app(std::move(r));
    });
  }

  bool use_el_;
  std::unique_ptr<EventStore> store_;
  std::unique_ptr<SenderLog> slog_;
  ElClient el_;
  std::unique_ptr<sim::CountLatch> resp_latch_;
  ftapi::DeterminantList gathered_;
};

}  // namespace mpiv::causal
