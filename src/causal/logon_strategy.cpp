#include "causal/logon_strategy.hpp"

#include <algorithm>
#include <map>

#include "causal/wire.hpp"

namespace mpiv::causal {

std::vector<ftapi::Determinant> LogOnStrategy::causal_order(
    std::vector<ftapi::Determinant> events) {
  // Kahn's algorithm over the in-set dependency edges: process-order
  // (creator, seq-1) -> (creator, seq) and cross edge dep -> event.
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::size_t> index;
  for (std::size_t i = 0; i < events.size(); ++i) {
    index[{events[i].creator, events[i].seq}] = i;
  }
  std::vector<int> indegree(events.size(), 0);
  std::vector<std::vector<std::size_t>> out(events.size());
  auto add_edge = [&](std::uint32_t c, std::uint64_t s, std::size_t to) {
    auto it = index.find({c, s});
    if (it == index.end()) return;  // antecedent outside the set
    out[it->second].push_back(to);
    ++indegree[to];
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ftapi::Determinant& d = events[i];
    if (d.seq > 1) add_edge(d.creator, d.seq - 1, i);
    if (d.dep_creator != UINT32_MAX && d.dep_seq > 0) {
      add_edge(d.dep_creator, d.dep_seq, i);
    }
  }
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<ftapi::Determinant> ordered;
  ordered.reserve(events.size());
  // FIFO processing keeps the order deterministic.
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const std::size_t i = ready[head];
    ordered.push_back(events[i]);
    for (const std::size_t j : out[i]) {
      if (--indegree[j] == 0) ready.push_back(j);
    }
  }
  MPIV_CHECK(ordered.size() == events.size(),
             "cycle in causal order: %zu of %zu emitted", ordered.size(),
             events.size());
  return ordered;
}

Strategy::Work LogOnStrategy::build(int dst, util::Buffer& out,
                                    DepShadow& deps) {
  Work w;
  PeerView& view = views_[static_cast<std::size_t>(dst)];

  std::vector<std::uint64_t>& reach = reach_cache_[static_cast<std::size_t>(dst)];
  graph_->known_from_cached(static_cast<std::uint32_t>(dst),
                            store_->known(static_cast<std::uint32_t>(dst)),
                            reach);
  for (int c = 0; c < nranks_; ++c) {
    const auto creator = static_cast<std::uint32_t>(c);
    if (reach[creator] > store_->stable(creator)) {
      w.visits += reach[creator] - store_->stable(creator);
    }
  }

  std::vector<ftapi::Determinant> events;
  for (int c = 0; c < nranks_; ++c) {
    if (c == dst) continue;
    const auto creator = static_cast<std::uint32_t>(c);
    const std::uint64_t graph_known = std::min(reach[creator], view.cap[creator]);
    const std::uint64_t lo = std::max({store_->stable(creator),
                                       view.floor_known(creator), graph_known});
    const std::uint64_t hi = store_->known(creator);
    if (hi <= lo) continue;
    std::uint64_t top = 0;
    store_->for_range(creator, lo, hi, [&](const ftapi::Determinant& d) {
      events.push_back(d);
      top = d.seq;
    });
    if (top > view.sent[creator]) view.sent[creator] = top;
    view.raise_cap(creator, top);
  }
  events = causal_order(std::move(events));
  for (const ftapi::Determinant& d : events) {
    deps.emplace_back(d.dep_creator, d.dep_seq);
  }
  wire::plain_serialize(events, out);
  w.events = events.size();
  w.bytes = out.size();
  w.cpu = w.visits * cost_->graph_visit +
          static_cast<sim::Time>(events.size()) *
              (cost_->ev_serialize + cost_->logon_reorder);
  return w;
}

Strategy::Work LogOnStrategy::absorb(int src, util::Buffer& in,
                                     const DepShadow& deps) {
  Work w;
  std::vector<ftapi::Determinant> events = wire::plain_parse(in);
  MPIV_CHECK(deps.size() == events.size(), "dep shadow size %zu vs %zu",
             deps.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    ftapi::Determinant& d = events[i];
    d.dep_creator = deps[i].first;
    d.dep_seq = deps[i].second;
    if (store_->add(d)) graph_->add(d);
    note_learned(src, d);
  }
  w.events = events.size();
  // Single-pass merge: the partial order guarantees antecedents precede
  // their descendants, so no re-traversal is needed.
  w.cpu = static_cast<sim::Time>(events.size()) *
          (cost_->ev_deserialize + cost_->logon_fastmerge);
  return w;
}

}  // namespace mpiv::causal
