// LogOn piggyback reduction (Lee, Park, Yeom, Cho — SRDS'98; paper §III-B.2).
//
// Selects the same event set as Manetho (antecedence-graph pruning) but
// emits it in a causal (topological) order: for any two piggybacked events
// m_i, m_j with i < j, m_j is never in the causal past of m_i. The receiver
// can then merge the piggyback in a single pass — every event's
// antecedents are already in place — making receive cheap; the reordering
// work moves to the send side, and the partial order forbids factoring, so
// each event carries its creator and sequence (wider wire format).
#pragma once

#include "causal/manetho_strategy.hpp"

namespace mpiv::causal {

class LogOnStrategy final : public ManethoStrategy {
 public:
  const char* name() const override { return "LogOn"; }
  Work build(int dst, util::Buffer& out, DepShadow& deps) override;
  Work absorb(int src, util::Buffer& in, const DepShadow& deps) override;

  /// Orders `events` topologically w.r.t. causal dependencies (ancestors
  /// first). Exposed for the property tests.
  static std::vector<ftapi::Determinant> causal_order(
      std::vector<ftapi::Determinant> events);
};

}  // namespace mpiv::causal
