// Node-side Event Logger client.
//
// Each reception determinant is sent asynchronously to the EL; the EL's
// acknowledgements carry the global stable-clock vector ("the last event
// stored for each process"), which lets the node discard its own and other
// processes' determinant copies — the garbage-collection effect whose
// impact the paper measures. The client also measures ack latency (how long
// a determinant stays piggybackable) and serves the pessimistic protocol's
// wait-until-stable gate.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "ftapi/determinant.hpp"
#include "ftapi/services.hpp"
#include "sim/sync.hpp"

namespace mpiv::causal {

class ElClient {
 public:
  using StableFn = std::function<void(const std::vector<std::uint64_t>&)>;

  void attach(const ftapi::RankServices& svc, StableFn on_stable) {
    svc_ = svc;
    on_stable_ = std::move(on_stable);
    stable_.assign(static_cast<std::size_t>(svc.nranks), 0);
    own_waiters_ = std::make_unique<sim::WaitQueue>(*svc.eng);
    fetch_done_ = std::make_unique<sim::OneShot>(*svc.eng);
  }

  /// Asynchronously ships a local determinant to the Event Logger.
  void submit(const ftapi::Determinant& d) {
    pending_.emplace(d.seq, svc_.eng->now());
    net::Message m;
    m.kind = net::MsgKind::kElEvent;
    m.src_rank = svc_.rank;
    m.arg = dir_epoch();  // epoch-stamped store batch (0 fault-free)
    m.body.put_u32(1);
    d.serialize(m.body);
    svc_.send_ctl(svc_.el_node_for(svc_.rank), std::move(m));
  }

  /// Re-ships a batch of determinants in one frame — the EL failover path:
  /// after re-homing, everything the dead shard never durably acknowledged
  /// is persisted again on the successor.
  void submit_batch(const ftapi::DeterminantList& dets) {
    if (dets.empty()) return;
    net::Message m;
    m.kind = net::MsgKind::kElEvent;
    m.src_rank = svc_.rank;
    m.arg = dir_epoch();
    m.body.put_u32(static_cast<std::uint32_t>(dets.size()));
    for (const ftapi::Determinant& d : dets) {
      pending_.emplace(d.seq, svc_.eng->now());
      d.serialize(m.body);
    }
    svc_.send_ctl(svc_.el_node_for(svc_.rank), std::move(m));
  }

  /// Handles a stable-clock acknowledgement from the EL.
  void on_ack(net::Message&& m) {
    // Split-brain fence: an ack stamped with a pre-failover directory epoch
    // by a shard that is no longer our home carries a minority-side
    // watermark — a heal-time redelivery from the stale side of a cut.
    // Pruning against it could discard determinants only the stale shard's
    // unmerged log covers, so drop it. Fault-free both epochs are 0 and the
    // stamp shard equals the home shard.
    if (m.arg < dir_epoch() &&
        static_cast<int>(m.src_rank) != svc_.el_shard_for(svc_.rank)) {
      ++svc_.stats->stale_acks_fenced;
      trace::emit(svc_.trace, svc_.eng->now(), trace::Kind::kElAck, 2,
                  m.src_rank, m.arg, dir_epoch());
      return;
    }
    std::vector<std::uint64_t> vec(stable_.size());
    for (std::uint64_t& v : vec) v = m.body.get_u64();
    // Ack latency: time from determinant creation to coverage by an ack.
    const std::uint64_t own = vec[static_cast<std::size_t>(svc_.rank)];
    for (auto it = pending_.begin(); it != pending_.end() && it->first <= own;) {
      svc_.stats->el_ack_latency_us.add(sim::to_us(svc_.eng->now() - it->second));
      it = pending_.erase(it);
    }
    apply_stable(vec);
  }

  void apply_stable(const std::vector<std::uint64_t>& vec) {
    bool advanced = false;
    for (std::size_t c = 0; c < stable_.size(); ++c) {
      if (vec[c] > stable_[c]) {
        stable_[c] = vec[c];
        advanced = true;
      }
    }
    if (advanced) {
      if (on_stable_) on_stable_(stable_);
      own_waiters_->wake_all();
    }
  }

  const std::vector<std::uint64_t>& stable() const { return stable_; }
  std::uint64_t own_stable() const {
    return stable_[static_cast<std::size_t>(svc_.rank)];
  }
  /// The directory epoch this client sees (0 without live routing).
  std::uint64_t dir_epoch() const {
    return svc_.el_dir != nullptr ? svc_.el_dir->epoch() : 0;
  }

  /// Pessimistic gate: waits until all own determinants up to `seq` are
  /// safely stored at the EL.
  sim::Task<void> wait_own_stable(std::uint64_t seq) {
    while (own_stable() < seq) co_await own_waiters_->wait();
  }

  /// Recovery: fetches every determinant of this rank stored at the EL.
  /// With svc_.service_retry armed (fault campaigns), an unanswered request
  /// is retransmitted — re-routed through the directory, so a fetch that
  /// raced a shard crash lands on the successor once failover completes.
  sim::Task<ftapi::DeterminantList> fetch_mine() {
    fetch_done_->reset();
    fetched_.clear();
    for (;;) {
      // A cascade may abandon our home shard while the fetch is in flight
      // (dead, no successor): stop retrying into a hole — survivors are
      // the only source left.
      if (svc_.el_dir != nullptr &&
          svc_.el_dir->abandoned(svc_.el_shard_for(svc_.rank))) {
        fetched_.clear();
        break;
      }
      net::Message m;
      m.kind = net::MsgKind::kElRecoveryReq;
      m.src_rank = svc_.rank;
      m.arg = static_cast<std::uint64_t>(svc_.rank);
      svc_.send_ctl(svc_.el_node_for(svc_.rank), std::move(m));
      if (svc_.service_retry <= 0) {
        co_await fetch_done_->wait();
        break;
      }
      const sim::Time deadline = svc_.eng->now() + svc_.service_retry;
      svc_.eng->at(deadline, [done = fetch_done_.get()] { done->poke(); });
      while (!fetch_done_->ready() && svc_.eng->now() < deadline) {
        co_await fetch_done_->wait_once();
      }
      if (fetch_done_->ready()) break;
    }
    co_return std::move(fetched_);
  }
  void on_recovery_resp(net::Message&& m) {
    // Resync the stable vector from the EL's authoritative copy.
    std::vector<std::uint64_t> vec(stable_.size());
    for (std::uint64_t& v : vec) v = m.body.get_u64();
    apply_stable(vec);
    const std::uint32_t n = m.body.get_u32();
    fetched_.clear();
    fetched_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      fetched_.push_back(ftapi::Determinant::deserialize(m.body));
    }
    fetch_done_->set();
  }

  void serialize(util::Buffer& b) const {
    for (const std::uint64_t v : stable_) b.put_u64(v);
  }
  void restore(util::Buffer& b) {
    for (std::uint64_t& v : stable_) v = b.get_u64();
  }
  void reset() {
    std::fill(stable_.begin(), stable_.end(), 0);
    pending_.clear();
  }

 private:
  ftapi::RankServices svc_{};
  StableFn on_stable_;
  std::vector<std::uint64_t> stable_;
  std::map<std::uint64_t, sim::Time> pending_;
  std::unique_ptr<sim::WaitQueue> own_waiters_;
  std::unique_ptr<sim::OneShot> fetch_done_;
  ftapi::DeterminantList fetched_;
};

}  // namespace mpiv::causal
