// Per-creator determinant knowledge held by one rank.
//
// Causal logging replicates determinants: besides its own reception events,
// a rank accumulates events created by others (learned from piggybacks) so
// that any crashed process can reassemble its reception history from the
// survivors. Knowledge per creator is (mostly) a prefix of that creator's
// event sequence; events below the Event Logger's stable watermark are
// pruned — that pruning is precisely the EL benefit the paper measures.
//
// A holder's set may contain holes *below another holder's stable point*
// (a sender only piggybacks its unstable suffix, so a receiver can learn
// (10..15] while never seeing 6..10 that are already safely at the EL);
// storage is a sequence-indexed window (util::SeqWindow) whose base is the
// stable watermark and whose slots admit holes, and recovery takes the
// union of the EL prefix and every survivor's ranges — contiguity of that
// union is asserted at the recovery site.
#pragma once

#include <cstdint>
#include <vector>

#include "ftapi/determinant.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"
#include "util/seq_window.hpp"

namespace mpiv::causal {

class EventStore {
 public:
  explicit EventStore(int nranks)
      : per_(static_cast<std::size_t>(nranks)) {}

  int nranks() const { return static_cast<int>(per_.size()); }

  /// Records a determinant. Returns true if it was new.
  bool add(const ftapi::Determinant& d) {
    Per& p = at(d.creator);
    if (d.seq <= p.stable) return false;
    const bool inserted = p.dets.emplace(d.seq, d);
    if (d.seq > p.known) p.known = d.seq;
    if (inserted) ++held_;
    return inserted;
  }

  /// Highest event sequence of `creator` this rank has heard of.
  std::uint64_t known(std::uint32_t creator) const { return at(creator).known; }
  /// Stable watermark (acknowledged by the Event Logger).
  std::uint64_t stable(std::uint32_t creator) const { return at(creator).stable; }

  const ftapi::Determinant* find(std::uint32_t creator, std::uint64_t seq) const {
    return at(creator).dets.find(seq);
  }

  /// Advances stability and prunes covered determinants (the EL's garbage
  /// collection effect on computing nodes).
  void set_stable(const std::vector<std::uint64_t>& stable) {
    MPIV_CHECK(stable.size() == per_.size(), "stable vector size %zu vs %zu",
               stable.size(), per_.size());
    for (std::size_t c = 0; c < per_.size(); ++c) {
      Per& p = per_[c];
      if (stable[c] <= p.stable) continue;
      p.stable = stable[c];
      p.dets.prune_to(p.stable, [this](const ftapi::Determinant&) { --held_; });
    }
  }

  /// All held determinants created by `creator` (for recovery collection).
  void collect(std::uint32_t creator, ftapi::DeterminantList& out) const {
    at(creator).dets.for_each(
        [&out](std::uint64_t, const ftapi::Determinant& d) { out.push_back(d); });
  }

  /// Iterates held determinants of `creator` in (lo, hi], in seq order.
  template <class Fn>
  void for_range(std::uint32_t creator, std::uint64_t lo, std::uint64_t hi,
                 Fn&& fn) const {
    at(creator).dets.for_range(
        lo, hi, [&fn](std::uint64_t, const ftapi::Determinant& d) { fn(d); });
  }

  std::size_t held_count() const { return held_; }

  void serialize(util::Buffer& b) const {
    for (const Per& p : per_) {
      b.put_u64(p.stable);
      b.put_u64(p.known);
      b.put_u32(static_cast<std::uint32_t>(p.dets.size()));
      p.dets.for_each([&b](std::uint64_t, const ftapi::Determinant& d) {
        d.serialize(b);
        b.put_u16(static_cast<std::uint16_t>(
            d.dep_creator == UINT32_MAX ? 0xFFFF : d.dep_creator));
        b.put_u64(d.dep_seq);
      });
    }
  }
  void restore(util::Buffer& b) {
    held_ = 0;
    for (Per& p : per_) {
      p.dets.reset();
      p.stable = b.get_u64();
      p.known = b.get_u64();
      p.dets.prune_to(p.stable);  // base = stable: below-stable adds rejected
      const std::uint32_t n = b.get_u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        ftapi::Determinant d = ftapi::Determinant::deserialize(b);
        const std::uint16_t dc = b.get_u16();
        d.dep_creator = dc == 0xFFFF ? UINT32_MAX : dc;
        d.dep_seq = b.get_u64();
        if (p.dets.emplace(d.seq, d)) ++held_;
      }
    }
  }
  void reset() {
    for (Per& p : per_) {
      p.stable = 0;
      p.known = 0;
      p.dets.reset();
    }
    held_ = 0;
  }

  /// Knowledge vector (per-creator `known`), e.g. for restart clamping.
  std::vector<std::uint64_t> known_vector() const {
    std::vector<std::uint64_t> v(per_.size());
    for (std::size_t c = 0; c < per_.size(); ++c) v[c] = per_[c].known;
    return v;
  }
  std::vector<std::uint64_t> stable_vector() const {
    std::vector<std::uint64_t> v(per_.size());
    for (std::size_t c = 0; c < per_.size(); ++c) v[c] = per_[c].stable;
    return v;
  }

 private:
  struct Per {
    std::uint64_t stable = 0;
    std::uint64_t known = 0;
    util::SeqWindow<ftapi::Determinant> dets;
  };
  Per& at(std::uint32_t c) {
    MPIV_CHECK(c < per_.size(), "bad creator %u", c);
    return per_[c];
  }
  const Per& at(std::uint32_t c) const {
    MPIV_CHECK(c < per_.size(), "bad creator %u", c);
    return per_[c];
  }
  std::vector<Per> per_;
  std::size_t held_ = 0;  // total occupied slots across creators (O(1) stat)
};

}  // namespace mpiv::causal
