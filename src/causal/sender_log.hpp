// Sender-based payload logging (paper §III): every sent message's payload
// is kept in the sender's volatile memory until the receiver's checkpoint
// covers its delivery; a restarting receiver asks senders to re-send.
//
// Per destination the log is keyed by the send sequence number — a dense,
// monotonically growing key pruned from the bottom on peer checkpoints —
// so entries live in a sequence-indexed window (util::SeqWindow) instead
// of a node-allocating map.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"
#include "util/seq_window.hpp"

namespace mpiv::causal {

class SenderLog {
 public:
  explicit SenderLog(int nranks) : per_(static_cast<std::size_t>(nranks)) {}

  struct Entry {
    std::uint64_t ssn = 0;
    std::int32_t tag = 0;
    net::Payload payload;
  };

  void log(int dst, std::uint64_t ssn, std::int32_t tag,
           const net::Payload& payload) {
    auto& w = per_[idx(dst)];
    // Ssns per destination are strictly monotone, so an empty window (fresh
    // incarnation, restored image with no live entries, or fully GC'd) can
    // jump its base to just below the new ssn: capacity then tracks the
    // live span, not the absolute ssn reached by a long run.
    if (w.empty()) w.prune_to(ssn - 1);
    if (w.emplace(ssn, Entry{ssn, tag, payload})) {
      bytes_ += payload.bytes;
      ++entries_;
    }
  }

  /// Receiver `dst` checkpointed: deliveries with arrival ssn <= `arr_ssn`
  /// are covered by its image and their payloads can be dropped.
  void gc(int dst, std::uint64_t arr_ssn) {
    per_[idx(dst)].prune_to(arr_ssn, [this](const Entry& e) {
      bytes_ -= e.payload.bytes;
      --entries_;
    });
  }

  /// Iterates logged messages to `dst` with ssn > `from_ssn` (resend set).
  template <class Fn>
  void for_pending(int dst, std::uint64_t from_ssn, Fn&& fn) const {
    const auto& w = per_[idx(dst)];
    w.for_range(from_ssn, w.max_seq(),
                [&fn](std::uint64_t, const Entry& e) { fn(e); });
  }

  std::uint64_t bytes() const { return bytes_; }
  std::size_t entries() const { return entries_; }

  void serialize(util::Buffer& b) const {
    for (const auto& w : per_) {
      b.put_u32(static_cast<std::uint32_t>(w.size()));
      w.for_each([&b](std::uint64_t, const Entry& e) {
        b.put_u64(e.ssn);
        b.put_u32(static_cast<std::uint32_t>(e.tag));
        b.put_u64(e.payload.bytes);
        b.put_u64(e.payload.check);
      });
    }
  }
  void restore(util::Buffer& b) {
    bytes_ = 0;
    entries_ = 0;
    for (auto& w : per_) {
      w.reset();
      const std::uint32_t n = b.get_u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        Entry e;
        e.ssn = b.get_u64();
        e.tag = static_cast<std::int32_t>(b.get_u32());
        e.payload.bytes = b.get_u64();
        e.payload.check = b.get_u64();
        // Entries are serialized ascending: raise the fresh window's base to
        // just below the lowest live ssn so capacity tracks the live span,
        // not the absolute ssn (which grows with run length).
        if (i == 0) w.prune_to(e.ssn - 1);
        if (w.emplace(e.ssn, e)) {
          bytes_ += e.payload.bytes;
          ++entries_;
        }
      }
    }
  }
  void reset() {
    for (auto& w : per_) w.reset();
    bytes_ = 0;
    entries_ = 0;
  }

 private:
  std::size_t idx(int dst) const {
    MPIV_CHECK(dst >= 0 && dst < static_cast<int>(per_.size()), "bad dst %d", dst);
    return static_cast<std::size_t>(dst);
  }
  std::vector<util::SeqWindow<Entry>> per_;
  std::uint64_t bytes_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace mpiv::causal
