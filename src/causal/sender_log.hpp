// Sender-based payload logging (paper §III): every sent message's payload
// is kept in the sender's volatile memory until the receiver's checkpoint
// covers its delivery; a restarting receiver asks senders to re-send.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/message.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"

namespace mpiv::causal {

class SenderLog {
 public:
  explicit SenderLog(int nranks) : per_(static_cast<std::size_t>(nranks)) {}

  struct Entry {
    std::uint64_t ssn = 0;
    std::int32_t tag = 0;
    net::Payload payload;
  };

  void log(int dst, std::uint64_t ssn, std::int32_t tag,
           const net::Payload& payload) {
    auto [it, inserted] = per_[idx(dst)].emplace(ssn, Entry{ssn, tag, payload});
    (void)it;
    if (inserted) bytes_ += payload.bytes;
  }

  /// Receiver `dst` checkpointed: deliveries with arrival ssn <= `arr_ssn`
  /// are covered by its image and their payloads can be dropped.
  void gc(int dst, std::uint64_t arr_ssn) {
    auto& m = per_[idx(dst)];
    auto end = m.upper_bound(arr_ssn);
    for (auto it = m.begin(); it != end; ++it) bytes_ -= it->second.payload.bytes;
    m.erase(m.begin(), end);
  }

  /// Iterates logged messages to `dst` with ssn > `from_ssn` (resend set).
  template <class Fn>
  void for_pending(int dst, std::uint64_t from_ssn, Fn&& fn) const {
    const auto& m = per_[idx(dst)];
    for (auto it = m.upper_bound(from_ssn); it != m.end(); ++it) {
      fn(it->second);
    }
  }

  std::uint64_t bytes() const { return bytes_; }
  std::size_t entries() const {
    std::size_t n = 0;
    for (const auto& m : per_) n += m.size();
    return n;
  }

  void serialize(util::Buffer& b) const {
    for (const auto& m : per_) {
      b.put_u32(static_cast<std::uint32_t>(m.size()));
      for (const auto& [ssn, e] : m) {
        b.put_u64(e.ssn);
        b.put_u32(static_cast<std::uint32_t>(e.tag));
        b.put_u64(e.payload.bytes);
        b.put_u64(e.payload.check);
      }
    }
  }
  void restore(util::Buffer& b) {
    bytes_ = 0;
    for (auto& m : per_) {
      m.clear();
      const std::uint32_t n = b.get_u32();
      for (std::uint32_t i = 0; i < n; ++i) {
        Entry e;
        e.ssn = b.get_u64();
        e.tag = static_cast<std::int32_t>(b.get_u32());
        e.payload.bytes = b.get_u64();
        e.payload.check = b.get_u64();
        bytes_ += e.payload.bytes;
        m.emplace(e.ssn, e);
      }
    }
  }
  void reset() {
    for (auto& m : per_) m.clear();
    bytes_ = 0;
  }

 private:
  std::size_t idx(int dst) const {
    MPIV_CHECK(dst >= 0 && dst < static_cast<int>(per_.size()), "bad dst %d", dst);
    return static_cast<std::size_t>(dst);
  }
  std::vector<std::map<std::uint64_t, Entry>> per_;
  std::uint64_t bytes_ = 0;
};

}  // namespace mpiv::causal
