// Vcausal piggyback reduction (paper §III-B.1).
//
// The light-computation strategy: one reception sequence per creator plus,
// per peer, the last event of each creator exchanged with that peer. On
// send, everything above that watermark (and above the EL-stable point)
// goes out; there is no graph and no traversal, so serialization cost is
// linear in the events emitted — "the Vcausal serialization outperforms the
// other two protocols" — at the price of a weak reduction: transitive
// knowledge (what the peer learned via third parties) is invisible to it.
#pragma once

#include "causal/strategy.hpp"

namespace mpiv::causal {

class VcausalStrategy final : public Strategy {
 public:
  const char* name() const override { return "Vcausal"; }
  Work build(int dst, util::Buffer& out, DepShadow& deps) override;
  Work absorb(int src, util::Buffer& in, const DepShadow& deps) override;
};

}  // namespace mpiv::causal
