// Manetho piggyback reduction (Elnozahy & Zwaenepoel; paper §III-B.2).
//
// Maintains the antecedence graph and, on each send, traverses it backward
// from the receiver's newest known event: everything reachable is already
// known to the receiver and need not be piggybacked. The traversal makes
// send-side cost grow with graph size (unbounded without an Event Logger);
// on receive, the new events must be inserted *and* the graph re-walked to
// generate the new edges, which is why Manetho's receive side is the
// expensive one in Fig. 8.
#pragma once

#include "causal/antecedence_graph.hpp"
#include "causal/strategy.hpp"

namespace mpiv::causal {

class ManethoStrategy : public Strategy {
 public:
  const char* name() const override { return "Manetho"; }

  void attach(EventStore* store, const net::CostModel* cost, int rank,
              int nranks) override {
    Strategy::attach(store, cost, rank, nranks);
    graph_ = std::make_unique<AntecedenceGraph>(nranks);
    reach_cache_.assign(static_cast<std::size_t>(nranks), {});
  }

  Work build(int dst, util::Buffer& out, DepShadow& deps) override;
  Work absorb(int src, util::Buffer& in, const DepShadow& deps) override;
  void on_local_event(const ftapi::Determinant& d) override { graph_->add(d); }
  void on_stable(const std::vector<std::uint64_t>& stable) override {
    graph_->prune_stable(stable);
  }
  void restore(util::Buffer& b) override {
    Strategy::restore(b);
    rebuild_graph();
    reach_cache_.assign(static_cast<std::size_t>(nranks_), {});
  }
  void reset() override {
    Strategy::reset();
    graph_->reset();
    reach_cache_.assign(static_cast<std::size_t>(nranks_), {});
  }
  std::size_t graph_vertices() const override { return graph_->vertex_count(); }

  const AntecedenceGraph& graph() const { return *graph_; }

 protected:
  /// The graph's vertices are exactly the held (unstable) determinants, so
  /// after a restore it is rebuilt from the EventStore.
  void rebuild_graph() {
    graph_->reset();
    for (int c = 0; c < nranks_; ++c) {
      ftapi::DeterminantList dets;
      store_->collect(static_cast<std::uint32_t>(c), dets);
      for (const ftapi::Determinant& d : dets) graph_->add(d);
    }
  }

  std::unique_ptr<AntecedenceGraph> graph_;
  // Per-peer monotone reach vectors (host-side cache; rebuilt lazily after
  // restore, costs are charged from the reach extents either way).
  std::vector<std::vector<std::uint64_t>> reach_cache_;
};

}  // namespace mpiv::causal
