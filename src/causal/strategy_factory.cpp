#include "causal/logon_strategy.hpp"
#include "causal/manetho_strategy.hpp"
#include "causal/strategy.hpp"
#include "causal/vcausal_strategy.hpp"
#include "util/check.hpp"

namespace mpiv::causal {

const char* strategy_kind_name(StrategyKind k) {
  switch (k) {
    case StrategyKind::kVcausal:
      return "Vcausal";
    case StrategyKind::kManetho:
      return "Manetho";
    case StrategyKind::kLogOn:
      return "LogOn";
  }
  MPIV_PANIC("bad strategy kind %d", static_cast<int>(k));
}

std::unique_ptr<Strategy> make_strategy(StrategyKind k) {
  switch (k) {
    case StrategyKind::kVcausal:
      return std::make_unique<VcausalStrategy>();
    case StrategyKind::kManetho:
      return std::make_unique<ManethoStrategy>();
    case StrategyKind::kLogOn:
      return std::make_unique<LogOnStrategy>();
  }
  MPIV_PANIC("bad strategy kind %d", static_cast<int>(k));
}

}  // namespace mpiv::causal
