// The antecedence graph shared by the Manetho and LogOn strategies.
//
// Vertices are reception events; each vertex has an implicit process-order
// edge to its creator's previous event and an explicit cross edge to the
// sender's latest event before the message was sent (paper §III-B.2,
// Fig. 3). Traversing backward from a peer's newest event yields everything
// that peer provably knows, which is what both graph strategies prune from
// the piggyback. Without an Event Logger the graph is never pruned, so this
// traversal grows with execution time — that growth is the cost the paper's
// Fig. 6a/8 attribute to "no EL" configurations.
//
// With the per-creator prefix structure, the reachable set per creator is a
// prefix, so a traversal reports one watermark per creator and each vertex
// is visited at most once per query (visits are counted and priced by the
// cost model).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ftapi/determinant.hpp"
#include "util/check.hpp"

namespace mpiv::causal {

class AntecedenceGraph {
 public:
  explicit AntecedenceGraph(int nranks)
      : per_(static_cast<std::size_t>(nranks)) {}

  /// Adds a vertex for determinant `d` (dep_* fields are the cross edge).
  void add(const ftapi::Determinant& d) {
    per_[d.creator].emplace(d.seq, Vertex{d.dep_creator, d.dep_seq});
  }

  /// Removes all vertices with seq <= stable[creator] (Event Logger GC:
  /// "the Manetho and LogOn antecedence graphs lose some vertices and
  /// incident edges").
  void prune_stable(const std::vector<std::uint64_t>& stable) {
    for (std::size_t c = 0; c < per_.size(); ++c) {
      auto& m = per_[c];
      m.erase(m.begin(), m.upper_bound(stable[c]));
    }
  }

  /// Backward traversal from (creator, seq): fills `known[c]` with the
  /// highest event of each creator reachable (hence known to whoever owns
  /// the start event). Returns the number of vertex visits (priced work).
  std::uint64_t known_from(std::uint32_t creator, std::uint64_t seq,
                           std::vector<std::uint64_t>& known) const {
    known.assign(per_.size(), 0);
    if (seq == 0) return 0;
    std::uint64_t visits = 0;
    // Worklist of (creator, seq) start points; walk process-order chains
    // downward, following cross edges, marking visited ranges.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> stack;
    std::vector<std::map<std::uint64_t, std::uint64_t>> visited(per_.size());
    stack.emplace_back(creator, seq);
    while (!stack.empty()) {
      auto [c, s] = stack.back();
      stack.pop_back();
      auto& vis = visited[c];
      std::uint64_t cur = s;
      while (cur > 0) {
        // Stop if cur is inside an already-visited range [lo, hi].
        auto it = vis.upper_bound(cur);
        if (it != vis.begin()) {
          auto prev = std::prev(it);
          if (cur >= prev->first && cur <= prev->second) break;
        }
        auto vit = per_[c].find(cur);
        if (vit == per_[c].end()) break;  // pruned / never learned: stop
        ++visits;
        if (cur > known[c]) known[c] = cur;
        const Vertex& v = vit->second;
        if (v.dep_creator != UINT32_MAX && v.dep_seq > 0 &&
            v.dep_seq > known[v.dep_creator]) {
          stack.emplace_back(v.dep_creator, v.dep_seq);
        }
        --cur;
      }
      // Record the walked range (cur, s].
      if (cur < s) merge_range(vis, cur + 1, s);
    }
    return visits;
  }

  /// Incremental variant: `cache` holds the reach vector of a previous
  /// query for the same peer; because a peer's knowledge is monotone, the
  /// walk skips everything at or below the cached watermarks and visits
  /// each vertex at most once per peer over its lifetime. `cache` is
  /// updated to the new reach vector. Returns the number of NEW vertex
  /// visits (the full-traversal cost the paper describes is priced
  /// separately from the resulting reach vector).
  std::uint64_t known_from_cached(std::uint32_t creator, std::uint64_t seq,
                                  std::vector<std::uint64_t>& cache) const {
    if (cache.size() != per_.size()) cache.assign(per_.size(), 0);
    if (seq == 0 || seq <= cache[creator]) return 0;
    std::uint64_t visits = 0;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> stack;
    stack.emplace_back(creator, seq);
    while (!stack.empty()) {
      auto [c, s] = stack.back();
      stack.pop_back();
      std::uint64_t cur = s;
      while (cur > cache[c]) {
        auto vit = per_[c].find(cur);
        if (vit == per_[c].end()) break;  // pruned / never learned: stop
        ++visits;
        const Vertex& v = vit->second;
        if (v.dep_creator != UINT32_MAX && v.dep_seq > cache[v.dep_creator]) {
          stack.emplace_back(v.dep_creator, v.dep_seq);
        }
        --cur;
      }
      // Everything in (cur, s] is now known-reachable for this peer.
      if (s > cache[c]) cache[c] = s;
    }
    return visits;
  }

  std::size_t vertex_count() const {
    std::size_t n = 0;
    for (const auto& m : per_) n += m.size();
    return n;
  }
  std::size_t vertex_count(std::uint32_t creator) const {
    return per_[creator].size();
  }
  bool contains(std::uint32_t creator, std::uint64_t seq) const {
    return per_[creator].count(seq) != 0;
  }

  void reset() {
    for (auto& m : per_) m.clear();
  }

 private:
  struct Vertex {
    std::uint32_t dep_creator = UINT32_MAX;
    std::uint64_t dep_seq = 0;
  };
  static void merge_range(std::map<std::uint64_t, std::uint64_t>& vis,
                          std::uint64_t lo, std::uint64_t hi) {
    // Ranges are kept disjoint; traversals only shrink remaining work, so a
    // simple insert + neighbour merge suffices.
    auto [it, ok] = vis.emplace(lo, hi);
    if (!ok) {
      it->second = std::max(it->second, hi);
    }
    // Merge with successor(s).
    auto next = std::next(it);
    while (next != vis.end() && next->first <= it->second + 1) {
      it->second = std::max(it->second, next->second);
      next = vis.erase(next);
    }
    // Merge with predecessor.
    if (it != vis.begin()) {
      auto prev = std::prev(it);
      if (it->first <= prev->second + 1) {
        prev->second = std::max(prev->second, it->second);
        vis.erase(it);
      }
    }
  }

  std::vector<std::map<std::uint64_t, Vertex>> per_;
};

}  // namespace mpiv::causal
