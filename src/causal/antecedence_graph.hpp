// The antecedence graph shared by the Manetho and LogOn strategies.
//
// Vertices are reception events; each vertex has an implicit process-order
// edge to its creator's previous event and an explicit cross edge to the
// sender's latest event before the message was sent (paper §III-B.2,
// Fig. 3). Traversing backward from a peer's newest event yields everything
// that peer provably knows, which is what both graph strategies prune from
// the piggyback. Without an Event Logger the graph is never pruned, so this
// traversal grows with execution time — that growth is the cost the paper's
// Fig. 6a/8 attribute to "no EL" configurations.
//
// With the per-creator prefix structure, the reachable set per creator is a
// prefix, so a traversal reports one watermark per creator and each vertex
// is visited at most once per query (visits are counted and priced by the
// cost model). Vertices live in sequence-indexed windows (util::SeqWindow),
// and the per-query visited set is an epoch stamp on the vertex itself:
// a walked range is exactly a run of existing visited vertices, so "seq is
// inside a visited range" = "vertex exists and carries the current query
// epoch" — no per-query map allocation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "ftapi/determinant.hpp"
#include "util/check.hpp"
#include "util/seq_window.hpp"

namespace mpiv::causal {

class AntecedenceGraph {
 public:
  explicit AntecedenceGraph(int nranks)
      : per_(static_cast<std::size_t>(nranks)) {}

  /// Adds a vertex for determinant `d` (dep_* fields are the cross edge).
  void add(const ftapi::Determinant& d) {
    per_[d.creator].emplace(d.seq, Vertex{d.dep_creator, d.dep_seq});
  }

  /// Removes all vertices with seq <= stable[creator] (Event Logger GC:
  /// "the Manetho and LogOn antecedence graphs lose some vertices and
  /// incident edges").
  void prune_stable(const std::vector<std::uint64_t>& stable) {
    for (std::size_t c = 0; c < per_.size(); ++c) {
      per_[c].prune_to(stable[c]);
    }
  }

  /// Backward traversal from (creator, seq): fills `known[c]` with the
  /// highest event of each creator reachable (hence known to whoever owns
  /// the start event). Returns the number of vertex visits (priced work).
  std::uint64_t known_from(std::uint32_t creator, std::uint64_t seq,
                           std::vector<std::uint64_t>& known) const {
    known.assign(per_.size(), 0);
    if (seq == 0) return 0;
    std::uint64_t visits = 0;
    const std::uint64_t epoch = ++epoch_;
    // Worklist of (creator, seq) start points; walk process-order chains
    // downward, following cross edges, stamping visited vertices.
    stack_.clear();
    stack_.emplace_back(creator, seq);
    while (!stack_.empty()) {
      auto [c, s] = stack_.back();
      stack_.pop_back();
      std::uint64_t cur = s;
      while (cur > 0) {
        const Vertex* v = per_[c].find(cur);
        if (v == nullptr) break;           // pruned / never learned: stop
        if (v->visited_epoch == epoch) break;  // already walked this query
        v->visited_epoch = epoch;
        ++visits;
        if (cur > known[c]) known[c] = cur;
        if (v->dep_creator != UINT32_MAX && v->dep_seq > 0 &&
            v->dep_seq > known[v->dep_creator]) {
          stack_.emplace_back(v->dep_creator, v->dep_seq);
        }
        --cur;
      }
    }
    return visits;
  }

  /// Incremental variant: `cache` holds the reach vector of a previous
  /// query for the same peer; because a peer's knowledge is monotone, the
  /// walk skips everything at or below the cached watermarks and visits
  /// each vertex at most once per peer over its lifetime. `cache` is
  /// updated to the new reach vector. Returns the number of NEW vertex
  /// visits (the full-traversal cost the paper describes is priced
  /// separately from the resulting reach vector).
  std::uint64_t known_from_cached(std::uint32_t creator, std::uint64_t seq,
                                  std::vector<std::uint64_t>& cache) const {
    if (cache.size() != per_.size()) cache.assign(per_.size(), 0);
    if (seq == 0 || seq <= cache[creator]) return 0;
    std::uint64_t visits = 0;
    stack_.clear();
    stack_.emplace_back(creator, seq);
    while (!stack_.empty()) {
      auto [c, s] = stack_.back();
      stack_.pop_back();
      std::uint64_t cur = s;
      while (cur > cache[c]) {
        const Vertex* v = per_[c].find(cur);
        if (v == nullptr) break;  // pruned / never learned: stop
        ++visits;
        if (v->dep_creator != UINT32_MAX && v->dep_seq > cache[v->dep_creator]) {
          stack_.emplace_back(v->dep_creator, v->dep_seq);
        }
        --cur;
      }
      // Everything in (cur, s] is now known-reachable for this peer.
      if (s > cache[c]) cache[c] = s;
    }
    return visits;
  }

  std::size_t vertex_count() const {
    std::size_t n = 0;
    for (const auto& w : per_) n += w.size();
    return n;
  }
  std::size_t vertex_count(std::uint32_t creator) const {
    return per_[creator].size();
  }
  bool contains(std::uint32_t creator, std::uint64_t seq) const {
    return per_[creator].contains(seq);
  }

  void reset() {
    for (auto& w : per_) w.reset();
  }

 private:
  struct Vertex {
    std::uint32_t dep_creator = UINT32_MAX;
    std::uint64_t dep_seq = 0;
    // Per-query visited stamp for known_from (mutable: traversal is const).
    mutable std::uint64_t visited_epoch = 0;
  };

  std::vector<util::SeqWindow<Vertex>> per_;
  mutable std::uint64_t epoch_ = 0;
  // Reused traversal worklist (allocation-free after warmup).
  mutable std::vector<std::pair<std::uint32_t, std::uint64_t>> stack_;
};

}  // namespace mpiv::causal
