// The causal message-logging V-protocol (paper §III-A, Fig. 2).
//
// Shared causal mechanics over a pluggable piggyback-reduction strategy:
//  - sender-based payload logging on every send,
//  - piggyback of unstable determinants built by the strategy,
//  - asynchronous determinant shipping to the Event Logger (when enabled)
//    and pruning on stable-clock acks,
//  - recovery by union of the EL prefix and survivors' knowledge.
//
// With use_el = false the protocol is still correct — determinants are then
// reclaimable only from survivors and nothing is ever pruned, which is
// exactly the configuration the paper contrasts against.
#pragma once

#include "causal/msg_log_protocol.hpp"
#include "causal/strategy.hpp"

namespace mpiv::causal {

class CausalProtocol final : public MsgLogProtocolBase {
 public:
  // payload_at_sender: keep logged payloads in the sender's own memory
  // instead of copying them through the daemon on every send. The per-byte
  // slog copy disappears from the critical path; the price moves to
  // retention (sender_log_peak_bytes grows identically and is only pruned
  // by the same GC notices — the paper's copy-vs-memory trade).
  CausalProtocol(StrategyKind kind, bool use_el, bool payload_at_sender = false)
      : MsgLogProtocolBase(use_el),
        kind_(kind),
        payload_at_sender_(payload_at_sender),
        strategy_(make_strategy(kind)) {}

  const char* name() const override { return strategy_->name(); }
  StrategyKind strategy_kind() const { return kind_; }
  Strategy& strategy() { return *strategy_; }

  void bind(const ftapi::RankServices& svc) override {
    MsgLogProtocolBase::bind(svc);
    strategy_->attach(store_.get(), svc.cost, svc.rank, svc.nranks);
  }

  ftapi::PiggybackOut on_send(int dst_rank, std::uint64_t ssn,
                              const net::Payload& payload,
                              std::int32_t tag) override {
    slog_->log(dst_rank, ssn, tag, payload);
    ftapi::PiggybackOut out;
    const Strategy::Work w = strategy_->build(dst_rank, out.bytes, out.deps);
    out.events = w.events;
    // Fixed logging bookkeeping + sender-based copy + piggyback work; only
    // the last is "time to prepare causality information" (Fig. 8).
    out.stats_cpu = w.cpu;
    out.cpu = svc_.cost->mlog_send_fixed + w.cpu;
    if (!payload_at_sender_) {
      // Daemon-side copy into the sender log; with payload_at_sender the
      // buffer is merely pinned in place and this copy never happens.
      out.cpu += static_cast<sim::Time>(static_cast<double>(payload.bytes) *
                                        svc_.cost->slog_ns_per_byte);
    }
    update_peaks();
    return out;
  }

  PacketCost on_packet(net::Message& m) override {
    PacketCost c;
    c.cpu = svc_.cost->mlog_recv_fixed;
    if (!m.body.empty()) {
      const Strategy::Work w = strategy_->absorb(m.src_rank, m.body, m.dep_shadow);
      update_peaks();
      c.cpu += w.cpu;
      c.stats_cpu = w.cpu;
    }
    return c;
  }

  sim::Time on_deliver(const ftapi::Determinant& d) override {
    ftapi::Determinant full = d;
    // Cross edge: the freshest event of the message's sender we know —
    // its events arrived (piggybacked) with or before this very message.
    full.dep_creator = d.src;
    full.dep_seq = store_->known(d.src);
    store_->add(full);
    strategy_->on_local_event(full);
    ++svc_.stats->dets_created;
    // The only place the antecedence edge exists rank-side: peer/aux carry
    // (dep_creator, dep_seq) so mpiv_trace can rebuild the graph.
    trace::emit(svc_.trace, svc_.eng->now(), trace::Kind::kDeterminant, 0,
                static_cast<std::int32_t>(full.dep_creator), full.seq,
                full.dep_seq, full.ssn);
    if (use_el_) el_.submit(full);
    return svc_.cost->det_create;
  }

  void serialize(util::Buffer& b) const override {
    MsgLogProtocolBase::serialize(b);
    strategy_->serialize(b);
  }
  void restore(util::Buffer& b) override {
    MsgLogProtocolBase::restore(b);
    strategy_->restore(b);
  }
  void reset() override {
    MsgLogProtocolBase::reset();
    strategy_->reset();
  }

 protected:
  void on_stable(const std::vector<std::uint64_t>& stable) override {
    strategy_->on_stable(stable);
  }
  void on_peer_restart(int peer,
                       const std::vector<std::uint64_t>& known) override {
    strategy_->on_peer_restart(peer, known);
  }

 private:
  void update_peaks() {
    ftapi::RankStats& st = *svc_.stats;
    st.sender_log_peak_bytes = std::max(st.sender_log_peak_bytes, slog_->bytes());
    st.event_store_peak =
        std::max(st.event_store_peak, static_cast<std::uint64_t>(store_->held_count()));
    st.graph_peak_nodes = std::max(
        st.graph_peak_nodes, static_cast<std::uint64_t>(strategy_->graph_vertices()));
  }

  StrategyKind kind_;
  bool payload_at_sender_;
  std::unique_ptr<Strategy> strategy_;
};

}  // namespace mpiv::causal
