// Piggyback-reduction strategy interface (paper §III-B).
//
// The three strategies share one EventStore (actual determinant data) and
// differ in (a) how they decide what a peer already knows, (b) the data
// structure maintained to decide it (plain sequences vs antecedence graph),
// (c) the wire format, and (d) — through the cost model — how much CPU the
// decision costs. All of those are exactly the axes the paper compares.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "causal/event_store.hpp"
#include "net/cost_model.hpp"
#include "util/buffer.hpp"

namespace mpiv::causal {

/// What this rank believes peer `j` knows, per creator. `learned[c]` grows
/// when j's piggybacks arrive, `sent[c]` when we piggyback to j; `cap[c]`
/// bounds graph-derived (transitive) inference after j restarts from a
/// checkpoint — j's replay does not reconstruct third-party determinant
/// copies, so pre-crash transitive evidence about j is no longer valid
/// (docs/DESIGN.md §4).
struct PeerView {
  std::vector<std::uint64_t> learned;
  std::vector<std::uint64_t> sent;
  std::vector<std::uint64_t> cap;

  void init(int nranks) {
    learned.assign(static_cast<std::size_t>(nranks), 0);
    sent.assign(static_cast<std::size_t>(nranks), 0);
    cap.assign(static_cast<std::size_t>(nranks), UINT64_MAX);
  }
  std::uint64_t floor_known(std::uint32_t c) const {
    return std::max(learned[c], sent[c]);
  }
  void on_restart(const std::vector<std::uint64_t>& known) {
    for (std::size_t c = 0; c < learned.size(); ++c) {
      learned[c] = std::min(learned[c], known[c]);
      sent[c] = std::min(sent[c], known[c]);
      cap[c] = known[c];
    }
  }
  void raise_cap(std::uint32_t c, std::uint64_t seq) {
    if (cap[c] != UINT64_MAX && seq > cap[c]) cap[c] = seq;
  }
  void serialize(util::Buffer& b) const {
    for (std::uint64_t v : learned) b.put_u64(v);
    for (std::uint64_t v : sent) b.put_u64(v);
    for (std::uint64_t v : cap) b.put_u64(v);
  }
  void restore(util::Buffer& b) {
    for (std::uint64_t& v : learned) v = b.get_u64();
    for (std::uint64_t& v : sent) v = b.get_u64();
    for (std::uint64_t& v : cap) v = b.get_u64();
  }
};

class Strategy {
 public:
  struct Work {
    std::uint64_t events = 0;
    std::uint64_t bytes = 0;
    std::uint64_t visits = 0;  // antecedence-graph vertices touched
    sim::Time cpu = 0;
  };

  virtual ~Strategy() = default;
  virtual const char* name() const = 0;

  virtual void attach(EventStore* store, const net::CostModel* cost, int rank,
                      int nranks) {
    store_ = store;
    cost_ = cost;
    rank_ = rank;
    nranks_ = nranks;
    views_.assign(static_cast<std::size_t>(nranks), PeerView{});
    for (PeerView& v : views_) v.init(nranks);
  }

  using DepShadow = std::vector<std::pair<std::uint32_t, std::uint64_t>>;

  /// Selects and serializes the events to piggyback to `dst`; `deps`
  /// receives the events' cross-edge targets in piggyback order.
  virtual Work build(int dst, util::Buffer& out, DepShadow& deps) = 0;
  /// Parses a piggyback received from `src` and merges it into knowledge;
  /// `deps` are the shadowed cross-edge targets (same order as the wire).
  virtual Work absorb(int src, util::Buffer& in, const DepShadow& deps) = 0;
  /// A determinant of this rank was created (already in the store).
  virtual void on_local_event(const ftapi::Determinant& d) { (void)d; }
  /// The Event Logger's stable vector advanced (store already pruned).
  virtual void on_stable(const std::vector<std::uint64_t>& stable) {
    (void)stable;
  }
  /// Peer restarted from a checkpoint whose knowledge vector is `known`.
  virtual void on_peer_restart(int peer, const std::vector<std::uint64_t>& known) {
    views_[static_cast<std::size_t>(peer)].on_restart(known);
  }

  virtual void serialize(util::Buffer& b) const {
    for (const PeerView& v : views_) v.serialize(b);
  }
  virtual void restore(util::Buffer& b) {
    for (PeerView& v : views_) v.restore(b);
  }
  virtual void reset() {
    for (PeerView& v : views_) v.init(nranks_);
  }

  virtual std::size_t graph_vertices() const { return 0; }

 protected:
  /// Records knowledge implied by a piggyback received from `src`.
  void note_learned(int src, const ftapi::Determinant& d) {
    PeerView& v = views_[static_cast<std::size_t>(src)];
    if (d.seq > v.learned[d.creator]) v.learned[d.creator] = d.seq;
    v.raise_cap(d.creator, d.seq);
  }

  EventStore* store_ = nullptr;
  const net::CostModel* cost_ = nullptr;
  int rank_ = -1;
  int nranks_ = 0;
  std::vector<PeerView> views_;
};

enum class StrategyKind : std::uint8_t { kVcausal, kManetho, kLogOn };

const char* strategy_kind_name(StrategyKind k);
std::unique_ptr<Strategy> make_strategy(StrategyKind k);

}  // namespace mpiv::causal
