#include "causal/vcausal_strategy.hpp"

#include <algorithm>

#include "causal/wire.hpp"

namespace mpiv::causal {

Strategy::Work VcausalStrategy::build(int dst, util::Buffer& out,
                                      DepShadow& deps) {
  Work w;
  PeerView& view = views_[static_cast<std::size_t>(dst)];
  std::vector<ftapi::Determinant> events;
  for (int c = 0; c < nranks_; ++c) {
    if (c == dst) continue;  // never send a peer its own events back
    const auto creator = static_cast<std::uint32_t>(c);
    const std::uint64_t lo =
        std::max(store_->stable(creator), view.floor_known(creator));
    const std::uint64_t hi = store_->known(creator);
    if (hi <= lo) continue;
    std::uint64_t top = 0;
    store_->for_range(creator, lo, hi, [&](const ftapi::Determinant& d) {
      events.push_back(d);
      top = d.seq;
    });
    if (top > view.sent[creator]) view.sent[creator] = top;
  }
  for (const ftapi::Determinant& d : events) {
    deps.emplace_back(d.dep_creator, d.dep_seq);
  }
  wire::factored_serialize(events, out);
  w.events = events.size();
  w.bytes = out.size();
  // Selection scans the held sequences (grows without an Event Logger).
  w.cpu = static_cast<sim::Time>(events.size()) * cost_->ev_serialize +
          static_cast<sim::Time>(static_cast<double>(store_->held_count()) *
                                 cost_->vc_scan_ns_per_held);
  return w;
}

Strategy::Work VcausalStrategy::absorb(int src, util::Buffer& in,
                                       const DepShadow& deps) {
  Work w;
  std::vector<ftapi::Determinant> events = wire::factored_parse(in);
  MPIV_CHECK(deps.size() == events.size(), "dep shadow size %zu vs %zu",
             deps.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    ftapi::Determinant& d = events[i];
    d.dep_creator = deps[i].first;
    d.dep_seq = deps[i].second;
    store_->add(d);
    note_learned(src, d);
  }
  w.events = events.size();
  w.cpu = static_cast<sim::Time>(events.size()) *
          (cost_->ev_deserialize + cost_->seq_append);
  return w;
}

}  // namespace mpiv::causal
