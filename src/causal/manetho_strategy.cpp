#include "causal/manetho_strategy.hpp"

#include <algorithm>

#include "causal/wire.hpp"

namespace mpiv::causal {

Strategy::Work ManethoStrategy::build(int dst, util::Buffer& out,
                                      DepShadow& deps) {
  Work w;
  PeerView& view = views_[static_cast<std::size_t>(dst)];

  // What does dst know? Traverse the graph backward from dst's newest event
  // we hold; the reachable prefix per creator is provably known to dst.
  // The walk itself is incremental (each vertex visited once per peer), but
  // the PRICED work is Manetho's full traversal of the current graph region
  // reachable for this peer — the cost that grows without an Event Logger.
  std::vector<std::uint64_t>& reach = reach_cache_[static_cast<std::size_t>(dst)];
  graph_->known_from_cached(static_cast<std::uint32_t>(dst),
                            store_->known(static_cast<std::uint32_t>(dst)),
                            reach);
  for (int c = 0; c < nranks_; ++c) {
    const auto creator = static_cast<std::uint32_t>(c);
    if (reach[creator] > store_->stable(creator)) {
      w.visits += reach[creator] - store_->stable(creator);
    }
  }

  std::vector<ftapi::Determinant> events;
  for (int c = 0; c < nranks_; ++c) {
    if (c == dst) continue;
    const auto creator = static_cast<std::uint32_t>(c);
    // Transitive (graph) evidence is capped after dst restarts (DESIGN §4).
    const std::uint64_t graph_known = std::min(reach[creator], view.cap[creator]);
    const std::uint64_t lo = std::max({store_->stable(creator),
                                       view.floor_known(creator), graph_known});
    const std::uint64_t hi = store_->known(creator);
    if (hi <= lo) continue;
    std::uint64_t top = 0;
    store_->for_range(creator, lo, hi, [&](const ftapi::Determinant& d) {
      events.push_back(d);
      top = d.seq;
    });
    if (top > view.sent[creator]) view.sent[creator] = top;
    view.raise_cap(creator, top);
  }
  for (const ftapi::Determinant& d : events) {
    deps.emplace_back(d.dep_creator, d.dep_seq);
  }
  wire::factored_serialize(events, out);
  w.events = events.size();
  w.bytes = out.size();
  w.cpu = w.visits * cost_->graph_visit +
          static_cast<sim::Time>(events.size()) * cost_->ev_serialize;
  return w;
}

Strategy::Work ManethoStrategy::absorb(int src, util::Buffer& in,
                                       const DepShadow& deps) {
  Work w;
  std::vector<ftapi::Determinant> events = wire::factored_parse(in);
  MPIV_CHECK(deps.size() == events.size(), "dep shadow size %zu vs %zu",
             deps.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    ftapi::Determinant& d = events[i];
    d.dep_creator = deps[i].first;
    d.dep_seq = deps[i].second;
    if (store_->add(d)) graph_->add(d);
    note_learned(src, d);
  }
  w.events = events.size();
  // Manetho must first add the events, then re-cross the graph to generate
  // the new edges (paper §III-B.2) — the extra per-event walk is what makes
  // its receive side slower than LogOn's.
  w.visits = 2 * events.size();
  w.cpu = static_cast<sim::Time>(events.size()) *
              (cost_->ev_deserialize + cost_->graph_insert) +
          w.visits * cost_->graph_visit;
  return w;
}

}  // namespace mpiv::causal
