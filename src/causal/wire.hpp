// Piggyback wire formats (paper §III-C).
//
// Vcausal and Manetho factor events by the rank that created them ("the
// receiver rank of the event"): a block carries {creator, count, first_seq}
// once, then per-event {src, ssn, tag}. LogOn's partial order forbids
// factoring — events from different creators interleave — so every event
// carries its creator and sequence explicitly, making each event wider:
// "for the same number of events to piggyback, the actual size in bytes of
// data added to the message is higher for LogOn". For very small piggybacks
// the factored block header dominates and LogOn is the smaller format (the
// paper's LU/4-nodes observation).
#pragma once

#include <cstdint>
#include <vector>

#include "ftapi/determinant.hpp"
#include "util/buffer.hpp"

namespace mpiv::causal::wire {

// Factored format sizes.
constexpr std::uint64_t kFactoredHeader = 2;              // u16 block count
constexpr std::uint64_t kFactoredBlockHeader = 2 + 2 + 8; // creator,count,first
constexpr std::uint64_t kFactoredPerEvent = 2 + 8 + 4;    // src,ssn,tag
// Per-event (LogOn) format sizes.
constexpr std::uint64_t kPlainHeader = 2;                  // u16 event count
constexpr std::uint64_t kPlainPerEvent = 2 + 8 + 2 + 8 + 4;// creator,seq,src,ssn,tag

/// Serializes events factored by creator. `events` must be grouped by
/// creator with contiguous seq runs inside a group (the builder emits runs).
void factored_serialize(const std::vector<ftapi::Determinant>& events,
                        util::Buffer& out);
/// Parses a factored piggyback (inverse of factored_serialize).
std::vector<ftapi::Determinant> factored_parse(util::Buffer& in);

/// Serializes events one-by-one preserving their order (LogOn format).
void plain_serialize(const std::vector<ftapi::Determinant>& events,
                     util::Buffer& out);
std::vector<ftapi::Determinant> plain_parse(util::Buffer& in);

}  // namespace mpiv::causal::wire
