#include "net/network.hpp"

#include <algorithm>

namespace mpiv::net {

void Network::send(Message&& m) {
  Node& src = at(m.src);
  Node& dst = at(m.dst);
  MPIV_CHECK(m.wire_bytes > 0, "frame without wire size (%u -> %u kind %d)",
             m.src, m.dst, static_cast<int>(m.kind));
  if (!src.up) return;  // a dead node emits nothing

  ++frames_sent_;
  bytes_sent_ += m.wire_bytes;

  const sim::Time now = eng_.now();
  const sim::Time tx = cost_.tx_time(m.wire_bytes);

  // Egress serialization at the source NIC.
  sim::Time start = std::max(now, src.egress_free);
  if (src.half_duplex) start = std::max(start, src.ingress_free);
  const sim::Time egress_done = start + tx;
  src.egress_free = egress_done;
  if (src.half_duplex) src.ingress_free = std::max(src.ingress_free, egress_done);

  // The switch forwards frame by frame (cut-through at MTU granularity):
  // the message starts arriving at the destination one wire latency after
  // the first frame leaves, and the ingress NIC is occupied for one
  // serialization time ending no earlier than that. An active latency
  // spike on either endpoint's link stretches the crossing.
  sim::Time lat = cost_.wire_latency;
  if (now < src.lat_until) lat += src.lat_extra;
  if (now < dst.lat_until) lat += dst.lat_extra;
  const sim::Time first_frame_at_dst = start + lat;
  Flight fl;
  fl.tx = tx;
  fl.dst = m.dst;
  // Frames are stamped with the destination epoch at send time; a crash
  // bumps the epoch so frames still in flight are dropped (TCP reset).
  fl.dst_epoch = dst.epoch;
  fl.msg = std::move(m);
  const std::uint32_t slot = flights_.put(std::move(fl));
  eng_.at(first_frame_at_dst, [this, slot] { on_fabric(slot); });
}

void Network::partition(const std::vector<NodeId>& a,
                        const std::vector<NodeId>& b, sim::Time duration,
                        sim::Time backoff) {
  Partition p;
  p.side.assign(nodes_.size(), 0);
  for (const NodeId n : a) {
    MPIV_CHECK(n < nodes_.size(), "partition: bad node %u", n);
    p.side[n] = 'a';
  }
  for (const NodeId n : b) {
    MPIV_CHECK(n < nodes_.size(), "partition: bad node %u", n);
    MPIV_CHECK(p.side[n] != 'a', "partition: node %u on both sides", n);
    p.side[n] = 'b';
  }
  p.until = eng_.now() + duration;
  p.backoff = backoff;
  trace::emit(trace_, eng_.now(), trace::Kind::kFault, trace::kPartition,
              static_cast<std::int32_t>(a.empty() ? kNoNode : a.front()),
              a.size(), b.size(), static_cast<std::uint64_t>(duration));
  std::erase_if(partitions_,
                [this](const Partition& q) { return q.until <= eng_.now(); });
  // Prune after the heal completes so partition_release()'s per-frame scan
  // — and the !partitions_.empty() fast path in on_fabric — return to the
  // fault-free steady state once the last window closes. (Held frames
  // retry at exactly until + backoff; a same-timestamp prune is harmless
  // either way, since expired windows obstruct nothing.)
  eng_.at(p.until + p.backoff, [this] {
    std::erase_if(partitions_,
                  [this](const Partition& q) { return q.until <= eng_.now(); });
  });
  partitions_.push_back(std::move(p));
}

std::size_t Network::active_partitions() const {
  std::size_t n = 0;
  for (const Partition& p : partitions_) {
    if (p.until > eng_.now()) ++n;
  }
  return n;
}

sim::Time Network::partition_release(NodeId src, NodeId dst) const {
  sim::Time release = 0;
  for (const Partition& p : partitions_) {
    if (eng_.now() >= p.until) continue;
    const std::uint8_t s = p.side[src];
    const std::uint8_t d = p.side[dst];
    if (s != 0 && d != 0 && s != d) {
      release = std::max(release, p.until + p.backoff);
    }
  }
  return release;
}

void Network::on_fabric(std::uint32_t slot) {
  Flight& fl = flights_[slot];
  Node& d = at(fl.dst);
  if (!d.up || d.epoch != fl.dst_epoch) {
    ++frames_dropped_;  // connection reset: receiver crashed in flight
    flights_.release(slot);
    return;
  }
  if (!partitions_.empty()) {
    // The cut is checked at fabric-crossing time, so it also catches frames
    // sent during the window. Held frames retry in their original order (the
    // heap is FIFO for equal timestamps) and may wait out a second cut that
    // opened meanwhile.
    const sim::Time release = partition_release(fl.msg.src, fl.dst);
    if (release > eng_.now()) {
      ++frames_partitioned_;
      eng_.at(release, [this, slot] { on_fabric(slot); });
      return;
    }
  }
  if (eng_.now() < d.drop_until) {
    // Drop-with-retransmit window: the frame is lost at the NIC and TCP
    // re-delivers it after the window closes plus a retransmit backoff.
    ++frames_delayed_;
    eng_.at(d.drop_until + d.drop_backoff, [this, slot] { on_fabric(slot); });
    return;
  }
  sim::Time start = std::max(eng_.now(), d.ingress_free);
  if (d.half_duplex) start = std::max(start, d.egress_free);
  const sim::Time done = start + fl.tx;
  d.ingress_free = done;
  if (d.half_duplex) d.egress_free = std::max(d.egress_free, done);

  eng_.at(done, [this, slot] { on_ingress_done(slot); });
}

void Network::on_ingress_done(std::uint32_t slot) {
  Flight fl = flights_.take(slot);
  Node& d = at(fl.dst);
  if (!d.up || d.epoch != fl.dst_epoch) {
    ++frames_dropped_;
    return;
  }
  MPIV_CHECK(static_cast<bool>(d.deliver), "node %u has no daemon", fl.dst);
  d.deliver(std::move(fl.msg));
}

}  // namespace mpiv::net
