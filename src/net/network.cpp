#include "net/network.hpp"

#include <algorithm>
#include <memory>

namespace mpiv::net {

void Network::send(Message&& m) {
  Node& src = at(m.src);
  Node& dst = at(m.dst);
  MPIV_CHECK(m.wire_bytes > 0, "frame without wire size (%u -> %u kind %d)",
             m.src, m.dst, static_cast<int>(m.kind));
  if (!src.up) return;  // a dead node emits nothing

  ++frames_sent_;
  bytes_sent_ += m.wire_bytes;

  const sim::Time now = eng_.now();
  const sim::Time tx = cost_.tx_time(m.wire_bytes);

  // Egress serialization at the source NIC.
  sim::Time start = std::max(now, src.egress_free);
  if (src.half_duplex) start = std::max(start, src.ingress_free);
  const sim::Time egress_done = start + tx;
  src.egress_free = egress_done;
  if (src.half_duplex) src.ingress_free = std::max(src.ingress_free, egress_done);

  // The switch forwards frame by frame (cut-through at MTU granularity):
  // the message starts arriving at the destination one wire latency after
  // the first frame leaves, and the ingress NIC is occupied for one
  // serialization time ending no earlier than that.
  const sim::Time first_frame_at_dst = start + cost_.wire_latency;
  const NodeId dst_id = m.dst;
  const std::uint64_t dst_epoch = dst.epoch;

  auto frame = std::make_shared<Message>(std::move(m));
  eng_.at(first_frame_at_dst, [this, frame, tx, dst_id, dst_epoch] {
    Node& d = at(dst_id);
    if (!d.up || d.epoch != dst_epoch) {
      ++frames_dropped_;  // connection reset: receiver crashed in flight
      return;
    }
    sim::Time start2 = std::max(eng_.now(), d.ingress_free);
    if (d.half_duplex) start2 = std::max(start2, d.egress_free);
    const sim::Time done = start2 + tx;
    d.ingress_free = done;
    if (d.half_duplex) d.egress_free = std::max(d.egress_free, done);

    eng_.at(done, [this, frame, dst_id, dst_epoch] {
      Node& dd = at(dst_id);
      if (!dd.up || dd.epoch != dst_epoch) {
        ++frames_dropped_;
        return;
      }
      MPIV_CHECK(static_cast<bool>(dd.deliver), "node %u has no daemon", dst_id);
      dd.deliver(std::move(*frame));
    });
  });
}

}  // namespace mpiv::net
