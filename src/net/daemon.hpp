// MPICH-V communication daemon (the "Vdaemon" of the paper, Fig. 4/5).
//
// Each compute node runs the MPI process and a separate communication
// daemon connected by a pair of pipes; the daemon owns all network I/O.
// This file models that structure's costs and mechanics:
//  - per-message software cost on each side (v_per_msg),
//  - pipe crossings with per-byte copy cost (the ~35 us latency the paper
//    attributes to the daemon separation, cf. Fig. 6a P4 vs Vdummy),
//  - a single daemon CPU serializing message handling (select loop),
//  - the short/eager/rendezvous protocol layer,
//  - the alternative ch_p4 direct channel (no daemon, half-duplex NIC use).
//
// Fault-tolerance protocols live *above* the daemon (see ftapi); the daemon
// also carries their control frames (Event Logger records, checkpoints) at
// select-loop cost, without pipe crossings.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "net/network.hpp"
#include "trace/trace.hpp"
#include "util/slab.hpp"

namespace mpiv::net {

enum class ChannelKind : std::uint8_t {
  kP4,  // MPICH-P4 reference channel: direct, no daemon, no fault tolerance
  kV,   // MPICH-V channel: communication daemon + hooks
};

class Daemon {
 public:
  /// Upcall delivering a fully received message to the rank runtime.
  using UpFn = std::function<void(Message&&)>;

  Daemon(Network& net, NodeId node, ChannelKind channel)
      : net_(net), node_(node), channel_(channel) {
    if (channel_ == ChannelKind::kP4 && net_.cost().p4_half_duplex) {
      net_.set_half_duplex(node, true);
    }
    net_.attach(node, [this](Message&& m) { on_frame(std::move(m)); });
  }
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  NodeId node() const { return node_; }
  ChannelKind channel() const { return channel_; }
  Network& network() { return net_; }
  const CostModel& cost() const { return net_.cost(); }

  void attach_upper(UpFn fn) { up_ = std::move(fn); }
  /// Owning rank's trace lane (null = tracing off): daemon outages and
  /// respawns are recorded there.
  void set_trace(trace::Lane* lane) { trace_ = lane; }

  /// Sender-side cost charged to the *application* coroutine before the
  /// message is handed to the daemon (pipe write + copy), in ns.
  sim::Time app_handoff_cost(std::uint64_t payload_bytes) const;

  /// Submits an application message (payload + protocol body already
  /// attached). Handles eager/rendezvous. The caller has already charged
  /// app_handoff_cost to the sending coroutine.
  void submit_app(Message&& m);

  /// Submits a protocol/control frame (EL records, checkpoints, recovery,
  /// dispatcher control). No pipe crossing; select-loop cost only.
  void submit_ctl(Message&& m);

  /// Crash/restart: drop rendezvous state held for the old incarnation.
  void reset();

  // --- daemon-process faults (failure domain distinct from the rank) -------
  /// The daemon process dies while the MPI process survives: nothing is
  /// forwarded in either direction until the respawn. Work keeps queueing
  /// through the daemon's single CPU clock (outbound submissions back up in
  /// the app-side pipe, inbound frames in the kernel socket buffers — the
  /// respawned daemon will have to do that processing anyway), but every
  /// completed charge HOLDS at the delivery boundary instead of injecting
  /// or delivering up. That keeps one strict FIFO through the daemon: the
  /// backlog releases in charge-completion order on restart, ahead of any
  /// charge still pending, so no frame overtakes an older one across the
  /// outage. Nothing is lost (the channel stays reliable across the
  /// respawn — peers' TCP stacks retransmit unacked data, and the respawned
  /// daemon re-reads its pipe). A rank-level crash (reset()) supersedes the
  /// outage: the node restart discards the held frames with the rest of the
  /// volatile state.
  void crash_daemon();
  /// The dispatcher's respawned daemon reconnects: the held backlog
  /// releases in charge-completion (i.e. arrival) order, its processing
  /// cost already paid while it queued. Returns how many frames were held
  /// (no-op returning 0 when the daemon was not down).
  std::size_t restart_daemon();
  bool daemon_down() const { return down_; }

  // --- Stats ---------------------------------------------------------------
  std::uint64_t app_msgs_sent() const { return app_msgs_sent_; }
  std::uint64_t app_bytes_sent() const { return app_bytes_sent_; }
  std::uint64_t wire_bytes_sent() const { return wire_bytes_sent_; }
  /// Messages parked while the daemon is down (metrics backlog probe).
  std::size_t held_depth() const { return held_.size(); }

 private:
  /// What to do with a parked message once its CPU charge elapses.
  enum class Charged : std::uint8_t {
    kInject,     // hand to the fabric (outbound)
    kDeliverUp,  // hand to the rank runtime (inbound)
  };

  void on_frame(Message&& m);
  /// Occupies the daemon CPU for `cpu` and runs `fn` when done.
  void charge_then(sim::Time cpu, std::function<void()> fn);
  /// Occupies the daemon CPU for `cpu`, then injects or delivers `m`. The
  /// message is parked in a slab so the scheduled closure stays inline in
  /// std::function (no per-message allocation).
  void charge_msg(sim::Time cpu, Message&& m, Charged action);
  void inject(Message&& m);

  /// Performs a charged message's final hop (fabric injection or upward
  /// delivery) — or holds it in `held_` while the daemon is down.
  void finish_charged(Message&& m, Charged action);

  Network& net_;
  NodeId node_;
  ChannelKind channel_;
  UpFn up_;
  trace::Lane* trace_ = nullptr;
  util::Slab<Message> parked_;
  sim::Time cpu_free_ = 0;
  bool down_ = false;
  // Fully-charged frames held at the delivery boundary while the daemon is
  // down, in charge-completion (FIFO) order.
  std::deque<std::pair<Message, Charged>> held_;
  std::uint64_t app_msgs_sent_ = 0;
  std::uint64_t app_bytes_sent_ = 0;
  std::uint64_t wire_bytes_sent_ = 0;
  std::uint64_t rdv_cookie_ = 0;
  // Messages parked waiting for a rendezvous CTS, keyed by cookie.
  std::vector<std::pair<std::uint64_t, Message>> rdv_pending_;
};

}  // namespace mpiv::net
