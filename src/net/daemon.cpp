#include "net/daemon.hpp"

#include <algorithm>

namespace mpiv::net {

sim::Time Daemon::app_handoff_cost(std::uint64_t payload_bytes) const {
  const CostModel& c = cost();
  if (channel_ == ChannelKind::kP4) {
    return c.p4_per_msg + c.memcpy_time(payload_bytes) +
           static_cast<sim::Time>(static_cast<double>(payload_bytes) *
                                  c.p4_extra_copy_ns_per_byte);
  }
  return c.pipe_cross + c.memcpy_time(payload_bytes);
}

void Daemon::charge_then(sim::Time cpu, std::function<void()> fn) {
  sim::Engine& eng = net_.engine();
  const sim::Time start = std::max(eng.now(), cpu_free_);
  cpu_free_ = start + cpu;
  eng.at(cpu_free_, std::move(fn));
}

void Daemon::charge_msg(sim::Time cpu, Message&& m, Charged action) {
  const std::uint32_t slot = parked_.put(std::move(m));
  charge_then(cpu, [this, slot, action] {
    finish_charged(parked_.take(slot), action);
  });
}

void Daemon::finish_charged(Message&& m, Charged action) {
  if (down_) {
    // Daemon-process outage: the work is done (charged) but nothing leaves
    // the node — the frame holds at the delivery boundary until the
    // respawned daemon releases the backlog.
    held_.emplace_back(std::move(m), action);
    return;
  }
  if (action == Charged::kInject) {
    inject(std::move(m));
  } else {
    MPIV_CHECK(static_cast<bool>(up_), "daemon %u has no upper layer", node_);
    up_(std::move(m));
  }
}

void Daemon::inject(Message&& m) {
  m.wire_bytes = cost().header_bytes + m.payload.bytes + m.body.size();
  wire_bytes_sent_ += m.wire_bytes;
  net_.send(std::move(m));
}

void Daemon::crash_daemon() {
  down_ = true;
  trace::emit(trace_, net_.engine().now(), trace::Kind::kFault,
              trace::kDaemonCrash, static_cast<std::int32_t>(node_),
              held_.size());
}

std::size_t Daemon::restart_daemon() {
  if (!down_) return 0;
  down_ = false;
  trace::emit(trace_, net_.engine().now(), trace::Kind::kRecovery,
              trace::kPhaseDaemonUp, static_cast<std::int32_t>(node_),
              held_.size());
  // Everything in held_ finished its charge BEFORE any charge still
  // pending on the CPU clock, so releasing the backlog now — and leaving
  // cpu_free_ alone — preserves the daemon's strict FIFO across the
  // outage: no frame overtakes an older one.
  const std::size_t drained = held_.size();
  while (!held_.empty()) {
    auto [m, action] = std::move(held_.front());
    held_.pop_front();
    finish_charged(std::move(m), action);
  }
  return drained;
}

void Daemon::submit_app(Message&& m) {
  ++app_msgs_sent_;
  app_bytes_sent_ += m.payload.bytes;
  const CostModel& c = cost();
  // ch_p4 has no separate daemon process: the whole send-side software cost
  // is the app handoff already charged by the caller.
  const sim::Time per_msg = channel_ == ChannelKind::kP4 ? 0 : c.v_per_msg;
  if (channel_ == ChannelKind::kV && m.payload.bytes > c.eager_threshold) {
    // Rendezvous: park the payload, ask the receiver for clearance.
    const std::uint64_t cookie = ++rdv_cookie_;
    Message rts;
    rts.src = m.src;
    rts.dst = m.dst;
    rts.kind = MsgKind::kRendezvousRts;
    rts.arg = cookie;
    rdv_pending_.emplace_back(cookie, std::move(m));
    charge_msg(per_msg, std::move(rts), Charged::kInject);
    return;
  }
  charge_msg(per_msg, std::move(m), Charged::kInject);
}

void Daemon::submit_ctl(Message&& m) {
  charge_msg(cost().ctl_per_msg, std::move(m), Charged::kInject);
}

void Daemon::reset() {
  rdv_pending_.clear();
  cpu_free_ = 0;
  // A node-level restart supersedes any daemon-process outage: the fresh
  // daemon starts live and the old backlog died with the node.
  down_ = false;
  held_.clear();
}

void Daemon::on_frame(Message&& m) {
  const CostModel& c = cost();
  switch (m.kind) {
    case MsgKind::kRendezvousRts: {
      // Grant clearance immediately (receive buffers are the daemon's).
      Message cts;
      cts.src = node_;
      cts.dst = m.src;
      cts.kind = MsgKind::kRendezvousCts;
      cts.arg = m.arg;
      charge_msg(c.ctl_per_msg, std::move(cts), Charged::kInject);
      return;
    }
    case MsgKind::kRendezvousCts: {
      const std::uint64_t cookie = m.arg;
      auto it = std::find_if(rdv_pending_.begin(), rdv_pending_.end(),
                             [cookie](const auto& p) { return p.first == cookie; });
      if (it == rdv_pending_.end()) return;  // stale (peer restarted)
      Message data = std::move(it->second);
      rdv_pending_.erase(it);
      charge_msg(c.v_per_msg, std::move(data), Charged::kInject);
      return;
    }
    default:
      break;
  }
  // Inbound delivery to the rank runtime: daemon handling + pipe crossing
  // for application data; control frames skip the pipe.
  const bool app_path =
      m.kind == MsgKind::kAppData || m.kind == MsgKind::kPayloadResend;
  sim::Time cpu;
  if (channel_ == ChannelKind::kP4) {
    cpu = c.p4_per_msg + c.memcpy_time(m.payload.bytes);
  } else if (app_path) {
    cpu = c.v_per_msg + c.pipe_cross + c.memcpy_time(m.payload.bytes);
  } else {
    cpu = c.ctl_per_msg;
  }
  charge_msg(cpu, std::move(m), Charged::kDeliverUp);
}

}  // namespace mpiv::net
