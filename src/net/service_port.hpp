// Network endpoint for the stable auxiliary servers (Event Logger,
// checkpoint server, dispatcher): a single-threaded select-loop model with
// one CPU busy-until serializing its work, sending frames directly on the
// fabric (servers do not use the rank daemon).
#pragma once

#include <algorithm>

#include "net/network.hpp"
#include "util/slab.hpp"

namespace mpiv::net {

class ServicePort {
 public:
  ServicePort(Network& net, NodeId node) : net_(net), node_(node) {}

  NodeId node() const { return node_; }
  sim::Engine& engine() { return net_.engine(); }
  const CostModel& cost() const { return net_.cost(); }

  /// Occupies the service CPU for `cpu`, then runs `fn`. FIFO per server.
  void charge_then(sim::Time cpu, std::function<void()> fn) {
    sim::Engine& eng = net_.engine();
    cpu_free_ = std::max(eng.now(), cpu_free_) + cpu;
    eng.at(cpu_free_, std::move(fn));
  }

  /// Sends `m` from this node after `cpu` of service time. The frame parks
  /// in a slab so the scheduled closure stays inline in std::function.
  void send_after(sim::Time cpu, Message&& m) {
    m.src = node_;
    const std::uint32_t slot = parked_.put(std::move(m));
    charge_then(cpu, [this, slot] {
      Message frame = parked_.take(slot);
      frame.wire_bytes =
          net_.cost().header_bytes + frame.payload.bytes + frame.body.size();
      net_.send(std::move(frame));
    });
  }

 private:
  Network& net_;
  NodeId node_;
  util::Slab<Message> parked_;
  sim::Time cpu_free_ = 0;
};

}  // namespace mpiv::net
