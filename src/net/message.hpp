// Wire messages exchanged between simulated nodes.
//
// A Message models one TCP-level application frame. Routing/matching
// metadata lives in typed fields whose wire size is accounted by the cost
// model's header constant; *protocol* content that the paper measures in
// bytes (causal piggybacks, Event Logger records, checkpoint images) is
// carried as real serialized bytes in `body` so byte counts are exact.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/buffer.hpp"

namespace mpiv::net {

using NodeId = std::uint32_t;
constexpr NodeId kNoNode = UINT32_MAX;

enum class MsgKind : std::uint8_t {
  // Application path (MPI payload, possibly with causal piggyback in body).
  kAppData,
  kRendezvousRts,
  kRendezvousCts,
  // Event Logger protocol.
  kElEvent,          // determinant record(s) -> EL
  kElAck,            // EL -> node: stable clock vector
  kElRecoveryReq,    // restarting node -> EL
  kElRecoveryResp,   // EL -> restarting node: stored determinants
  // Checkpoint server protocol.
  kCkptStore,
  kCkptStoreAck,
  kCkptFetchReq,
  kCkptFetchResp,
  kCkptDelete,
  // Recovery between peers.
  kRecoveryReq,      // restarting node -> survivor
  kRecoveryResp,     // survivor -> restarting node: determinants it holds
  kPayloadResend,    // survivor -> restarting node: logged payload
  // Runtime control (dispatcher, checkpoint scheduler, snapshot markers).
  kControl,
};

/// Logical application payload: workloads exchange sizes plus a checksum
/// word standing in for content, so multi-megabyte NAS messages cost no
/// host memory while fault-recovery tests can still verify replayed bytes.
struct Payload {
  std::uint64_t bytes = 0;
  std::uint64_t check = 0;
};

struct Message {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  MsgKind kind = MsgKind::kAppData;

  // Total wire size (headers + payload + body) — computed by the daemon.
  std::uint64_t wire_bytes = 0;

  // MPI-level addressing (kAppData / kPayloadResend).
  std::int32_t src_rank = -1;
  std::int32_t dst_rank = -1;
  std::int32_t tag = 0;
  std::uint64_t ssn = 0;  // per (src_rank,dst_rank) send sequence number
  Payload payload;

  // Protocol bytes: piggyback, determinants, images, control records.
  util::Buffer body;

  // Simulator-side shadow of the piggybacked events' causal dependencies
  // (cross-edge targets), in piggyback order. Real Manetho derives these
  // from the positional structure of its graph-fragment piggyback, so they
  // are NOT wire bytes (docs/DESIGN.md §2); carrying them out of band keeps the
  // byte accounting identical to the paper's formats while keeping every
  // node's antecedence graph causally exact.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> dep_shadow;

  // Generic small scalar for control messages (avoids a body round-trip).
  std::uint64_t arg = 0;
};

}  // namespace mpiv::net
