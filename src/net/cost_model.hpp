// Calibrated cost model: converts protocol work into simulated time.
//
// All constants model the paper's testbed — AthlonXP 2800+ nodes on
// 100 Mbit/s switched Fast Ethernet, MPICH 1.2.5 — and are calibrated so
// the NetPIPE microbenchmark (Fig. 6a/6b of the paper) lands near the
// published latencies: P4 99.56 us, Vdummy 134.84 us, causal+EL ~156 us,
// causal without EL ~165-173 us. Protocol *work* (events serialized, graph
// nodes visited, bytes copied) is computed by executing the real
// algorithms; this struct only prices that work.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mpiv::net {

struct CostModel {
  // --- Network fabric ----------------------------------------------------
  double bandwidth_bps = 100e6;   // Fast Ethernet
  sim::Time wire_latency = 32 * sim::kMicrosecond;  // propagation + switch
  // Per-frame (1500B MTU) framing overhead on the wire: headers, preamble,
  // interframe gap and the TCP ack share (calibrated to the paper's ~89
  // Mb/s raw-TCP NetPIPE peak).
  double frame_overhead = 1.12;
  bool full_duplex = true;        // the V daemon exploits full duplex...
  bool p4_half_duplex = true;     // ...while ch_p4's protocol does not

  // Per-frame protocol headers (eth+ip+tcp + MPICH envelope).
  std::uint64_t header_bytes = 78;

  // --- Software path, per message ----------------------------------------
  // MPICH-P4 direct channel: user-space stack cost on each side, plus an
  // extra staging copy per byte (ch_p4 cannot overlap its copies the way
  // the V daemon pipeline does — Fig. 6b shows Vdummy above P4 at large
  // sizes).
  sim::Time p4_per_msg = 30 * sim::kMicrosecond;
  double p4_extra_copy_ns_per_byte = 3.0;
  // MPICH-V generic layer: MPI lib cost + pipe crossing + context switch
  // + daemon select-loop handling, per side.
  sim::Time v_per_msg = 28 * sim::kMicrosecond;
  sim::Time pipe_cross = 20 * sim::kMicrosecond;  // app<->daemon pipe + switch
  // Control frames originate inside the daemon (no pipe crossing): one
  // select-loop iteration.
  sim::Time ctl_per_msg = 8 * sim::kMicrosecond;
  // Copies (pipe transfer): DDR-era memcpy.
  double memcpy_ns_per_byte = 0.9;  // ~1.1 GB/s effective
  // Sender-based payload logging: copy + allocator pressure per byte.
  double slog_ns_per_byte = 4.5;

  // --- Message protocol layer ---------------------------------------------
  std::uint64_t eager_threshold = 128 * 1024;  // bytes; above: rendezvous

  // --- Message logging fixed costs ------------------------------------------
  // Envelope bookkeeping, sender-based log insertion, determinant plumbing:
  // charged per message on each side by every message-logging protocol
  // (calibrated so causal+EL ping-pong lands at the paper's ~156 us).
  sim::Time mlog_send_fixed = 8 * sim::kMicrosecond;
  sim::Time mlog_recv_fixed = 6 * sim::kMicrosecond;

  // --- Causal protocol work pricing ---------------------------------------
  sim::Time det_create = 2 * sim::kMicrosecond;    // determinant creation
  sim::Time ev_serialize = 550;                    // ns per event packed
  sim::Time ev_deserialize = 500;                  // ns per event parsed
  sim::Time graph_visit = 8;                       // ns per graph vertex visited
  sim::Time graph_insert = 600;                    // ns per graph node+edges added
  sim::Time logon_reorder = 420;                   // ns per event reordered (send)
  sim::Time logon_fastmerge = 220;                 // ns per event merged (receive)
  sim::Time seq_append = 90;                       // ns per event appended (Vcausal)
  // Vcausal per-send scan over the held (unstable) event sequences; with an
  // EL the sequences stay short, without one this grows with run length.
  double vc_scan_ns_per_held = 2.4;

  // --- Event Logger --------------------------------------------------------
  sim::Time el_service = 25 * sim::kMicrosecond;   // per event record stored
  sim::Time el_ack_build = 2 * sim::kMicrosecond;  // per ack message
  // Bulk read-out of a stored determinant log at recovery (sequential scan,
  // much cheaper than the per-event online path).
  sim::Time el_recovery_read = 1 * sim::kMicrosecond;

  // --- Checkpoint server ----------------------------------------------------
  double ckpt_disk_bps = 25e6 * 8;  // IDE ATA100 effective ~25 MB/s
  sim::Time ckpt_txn_overhead = 3 * sim::kMillisecond;

  // --- Node compute ---------------------------------------------------------
  double node_gflops = 0.55;  // AthlonXP 2800+ sustained on NAS kernels

  // Serialization time of `bytes` on the wire at `bandwidth_bps`,
  // including per-frame framing overhead.
  sim::Time tx_time(std::uint64_t bytes) const {
    return static_cast<sim::Time>(static_cast<double>(bytes) * frame_overhead *
                                  8.0 * 1e9 / bandwidth_bps);
  }
  sim::Time memcpy_time(std::uint64_t bytes) const {
    return static_cast<sim::Time>(static_cast<double>(bytes) *
                                  memcpy_ns_per_byte);
  }
  sim::Time flops_time(double flops) const {
    return static_cast<sim::Time>(flops / (node_gflops * 1e9) * 1e9);
  }
};

}  // namespace mpiv::net
