// Switched-Ethernet network model.
//
// Topology: every node has one NIC connected to a single store-and-forward
// switch (the paper's 32-port Fast Ethernet switch). A frame:
//   1. queues on the source NIC egress serializer (bytes at line rate),
//   2. crosses the fabric after a fixed wire latency,
//   3. queues on the destination NIC ingress serializer — this is where a
//      single Event Logger node saturates when every rank streams
//      determinants at it, reproducing the paper's LU/16 observation,
//   4. is handed to the destination node's deliver callback.
// Full duplex gives each NIC independent egress/ingress serializers;
// half-duplex (the ch_p4 emulation) shares one.
//
// Crash semantics: each node has an epoch. Frames are stamped with the
// destination epoch at *arrival* time; crashing a node bumps its epoch so
// frames still in flight toward it are dropped (TCP reset), while frames it
// emitted before dying are still delivered.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/cost_model.hpp"
#include "net/message.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"
#include "util/slab.hpp"

namespace mpiv::net {

class Network {
 public:
  using DeliverFn = std::function<void(Message&&)>;

  Network(sim::Engine& eng, std::uint32_t nodes, CostModel cost)
      : eng_(eng), cost_(cost), nodes_(nodes) {}

  sim::Engine& engine() { return eng_; }
  const CostModel& cost() const { return cost_; }
  std::uint32_t node_count() const { return static_cast<std::uint32_t>(nodes_.size()); }

  /// Installs the ingress handler for a node (its communication daemon).
  void attach(NodeId node, DeliverFn fn) {
    MPIV_CHECK(node < nodes_.size(), "attach: bad node %u", node);
    nodes_[node].deliver = std::move(fn);
  }

  /// Marks a node half-duplex (shared egress/ingress serializer), used to
  /// emulate the ch_p4 channel behaviour.
  void set_half_duplex(NodeId node, bool half) { nodes_[node].half_duplex = half; }

  /// Fabric-level trace lane (the cluster's "engine" lane; null = off).
  void set_trace(trace::Lane* lane) { trace_ = lane; }

  /// Injects a frame. `wire_bytes` must already be set by the sender.
  void send(Message&& m);

  /// Crash: bump epoch (drops in-flight frames toward the node) and mark down.
  void crash_node(NodeId node) {
    Node& n = at(node);
    ++n.epoch;
    n.up = false;
    trace::emit(trace_, eng_.now(), trace::Kind::kFault, trace::kNodeCrash,
                static_cast<std::int32_t>(node), n.epoch);
  }
  /// Restart: node accepts traffic again (new epoch already in effect).
  void restart_node(NodeId node) {
    Node& n = at(node);
    n.up = true;
    trace::emit(trace_, eng_.now(), trace::Kind::kFault, trace::kNodeRestart,
                static_cast<std::int32_t>(node), n.epoch);
  }
  bool node_up(NodeId node) const { return nodes_[node].up; }
  std::uint64_t node_epoch(NodeId node) const { return nodes_[node].epoch; }

  // --- Link perturbation (fault injection) ---------------------------------
  /// Latency spike: frames to/from `node` pay +`extra` propagation for
  /// `duration` (flaky cable / congested uplink). Overlapping spikes keep
  /// the larger extra and the later end.
  void perturb_latency(NodeId node, sim::Time extra, sim::Time duration) {
    Node& n = at(node);
    const sim::Time until = eng_.now() + duration;
    n.lat_extra = std::max(n.lat_extra, extra);
    n.lat_until = std::max(n.lat_until, until);
    trace::emit(trace_, eng_.now(), trace::Kind::kFault, trace::kLinkLatency,
                static_cast<std::int32_t>(node),
                static_cast<std::uint64_t>(extra),
                static_cast<std::uint64_t>(duration));
  }
  /// Drop-with-retransmit window: frames arriving at `node` inside the
  /// window are held and re-delivered `backoff` after it closes (TCP loses
  /// nothing, it retransmits — unlike crash_node's connection reset).
  void perturb_drop(NodeId node, sim::Time duration, sim::Time backoff) {
    Node& n = at(node);
    n.drop_until = std::max(n.drop_until, eng_.now() + duration);
    n.drop_backoff = std::max(n.drop_backoff, backoff);
    trace::emit(trace_, eng_.now(), trace::Kind::kFault, trace::kLinkDrop,
                static_cast<std::int32_t>(node),
                static_cast<std::uint64_t>(duration),
                static_cast<std::uint64_t>(backoff));
  }
  /// Partial partition: the switch stops forwarding between the `a` nodes
  /// and the `b` nodes until `duration` elapses (a failed uplink between
  /// two leaf switches). Frames crossing the cut are held at the fabric
  /// and re-delivered `backoff` after the heal in their original send
  /// order; traffic within either side is untouched. Distinct from the
  /// per-NIC perturbations above: membership is pairwise, not per node.
  /// Overlapping partitions compose (a frame waits out every cut it
  /// crosses).
  void partition(const std::vector<NodeId>& a, const std::vector<NodeId>& b,
                 sim::Time duration, sim::Time backoff);
  /// Active partitions right now (expired windows are pruned lazily).
  std::size_t active_partitions() const;
  /// True when a frame `a -> b` would reach the destination unobstructed:
  /// both nodes up and no active cut between them. The fault engine's
  /// suspicion and failover logic keys off this (a service behind a cut is
  /// indistinguishable from a dead one until the heal).
  bool reachable(NodeId a, NodeId b) const {
    return a < nodes_.size() && b < nodes_.size() && nodes_[a].up &&
           nodes_[b].up && partition_release(a, b) == 0;
  }

  // --- Introspection / stats ----------------------------------------------
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t frames_delayed() const { return frames_delayed_; }
  /// Partition HOLD events, not distinct frames: a frame that retries into
  /// a second cut that opened during its first wait is counted again (like
  /// frames_delayed() counts per drop-window hold).
  std::uint64_t frames_partitioned() const { return frames_partitioned_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  /// Frames currently in flight through the fabric (serializing, crossing,
  /// or held by a partition) — the metrics sampler's congestion probe.
  std::size_t inflight_frames() const { return flights_.in_use(); }
  /// Earliest time the egress serializer of `node` is free (for tests).
  sim::Time egress_free(NodeId node) const { return nodes_[node].egress_free; }

 private:
  struct Node {
    DeliverFn deliver;
    bool up = true;
    bool half_duplex = false;
    std::uint64_t epoch = 0;
    sim::Time egress_free = 0;
    sim::Time ingress_free = 0;
    // Link-fault windows (see perturb_latency / perturb_drop).
    sim::Time lat_extra = 0;
    sim::Time lat_until = 0;
    sim::Time drop_until = 0;
    sim::Time drop_backoff = 0;
  };

  /// An in-flight frame parked in the slab between the two scheduling hops
  /// (fabric crossing, ingress serialization). Keeping the Message and its
  /// routing snapshot here lets the scheduled closures capture only
  /// {this, slot} — inline in std::function, no per-frame allocation.
  struct Flight {
    Message msg;
    sim::Time tx = 0;
    NodeId dst = kNoNode;
    std::uint64_t dst_epoch = 0;
  };

  /// One active partition window: `side[node]` is 0 (unaffected), 'a' or
  /// 'b'. A frame crosses the cut iff its endpoints sit on opposite sides.
  struct Partition {
    std::vector<std::uint8_t> side;
    sim::Time until = 0;
    sim::Time backoff = 0;
  };

  void on_fabric(std::uint32_t slot);
  void on_ingress_done(std::uint32_t slot);
  /// When `src -> dst` crosses an active cut, the time the frame may try
  /// the fabric again (max over all cuts it crosses); 0 = unobstructed.
  sim::Time partition_release(NodeId src, NodeId dst) const;

  Node& at(NodeId node) {
    MPIV_CHECK(node < nodes_.size(), "bad node %u", node);
    return nodes_[node];
  }

  sim::Engine& eng_;
  CostModel cost_;
  trace::Lane* trace_ = nullptr;
  std::vector<Node> nodes_;
  util::Slab<Flight> flights_;
  std::vector<Partition> partitions_;  // empty on fault-free runs
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_delayed_ = 0;
  std::uint64_t frames_partitioned_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace mpiv::net
