#include "trace/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace mpiv::trace {

namespace {

struct KindName {
  Kind kind;
  const char* name;
};

constexpr KindName kKindNames[] = {
    {Kind::kSend, "send"},
    {Kind::kRecvMatch, "recv-match"},
    {Kind::kDeterminant, "determinant"},
    {Kind::kPiggyback, "piggyback"},
    {Kind::kCkpt, "ckpt"},
    {Kind::kElAck, "el-ack"},
    {Kind::kFault, "fault"},
    {Kind::kRecovery, "recovery"},
};

/// "r<k>" / "el<s>" built via snprintf: `"r" + std::to_string(r)` trips a
/// GCC 12 -Wrestrict false positive under -Werror (same issue the vendored
/// gtest has).
std::string lane_name(const char* prefix, int i) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%d", prefix, i);
  return buf;
}

}  // namespace

const char* kind_name(Kind k) {
  for (const KindName& kn : kKindNames) {
    if (kn.kind == k) return kn.name;
  }
  return "?";
}

bool parse_kind(const std::string& name, Kind* out) {
  for (const KindName& kn : kKindNames) {
    if (name == kn.name) {
      *out = kn.kind;
      return true;
    }
  }
  return false;
}

TraceSink::TraceSink(int nranks, int el_shards, std::uint32_t capacity)
    : nranks_(nranks), el_shards_(el_shards) {
  const std::size_t cap = capacity == 0 ? 1 : capacity;
  lanes_.reserve(static_cast<std::size_t>(nranks + el_shards + 1));
  for (int r = 0; r < nranks; ++r) {
    lanes_.emplace_back(lane_name("r", r), cap);
  }
  for (int s = 0; s < el_shards; ++s) {
    lanes_.emplace_back(lane_name("el", s), cap);
  }
  lanes_.emplace_back("engine", cap);
}

std::string TraceSink::dump() const {
  // Snapshot every lane, then k-way merge by (timestamp, lane index, lane
  // order). Lane index breaks timestamp ties deterministically; within a
  // lane the ring order is already the capture order.
  struct Cursor {
    std::size_t lane;
    std::vector<Record> recs;
    std::size_t next = 0;
  };
  std::vector<Cursor> cursors;
  cursors.reserve(lanes_.size());
  for (std::size_t li = 0; li < lanes_.size(); ++li) {
    Cursor c;
    c.lane = li;
    c.recs.reserve(lanes_[li].retained());
    lanes_[li].for_each([&c](const Record& r) { c.recs.push_back(r); });
    cursors.push_back(std::move(c));
  }

  std::ostringstream out;
  out << "# mpiv-trace v1\n";
  for (const Lane& l : lanes_) {
    out << "# lane " << l.name() << " total=" << l.total()
        << " dropped=" << l.dropped() << "\n";
  }

  char line[160];
  for (;;) {
    Cursor* best = nullptr;
    for (Cursor& c : cursors) {
      if (c.next >= c.recs.size()) continue;
      if (best == nullptr ||
          c.recs[c.next].t < best->recs[best->next].t) {
        best = &c;
      }
    }
    if (best == nullptr) break;
    const Record& r = best->recs[best->next++];
    std::snprintf(line, sizeof(line),
                  "%" PRId64 " %s %s %u %d %" PRIu64 " %" PRIu64 " %" PRIx64
                  "\n",
                  static_cast<std::int64_t>(r.t),
                  lanes_[best->lane].name().c_str(), kind_name(r.kind),
                  static_cast<unsigned>(r.code), r.peer, r.seq, r.aux,
                  r.digest);
    out << line;
  }
  return out.str();
}

const LaneInfo* Stream::lane_info(const std::string& name) const {
  for (const LaneInfo& li : lanes) {
    if (li.name == name) return &li;
  }
  return nullptr;
}

std::vector<Record> Stream::lane_records(const std::string& name) const {
  std::vector<Record> out;
  for (const StreamRecord& sr : records) {
    if (sr.lane == name) out.push_back(sr.rec);
  }
  return out;
}

Stream parse_stream(const std::string& text) {
  Stream s;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto bad = [&lineno](const std::string& why) {
    throw std::runtime_error("trace stream line " + std::to_string(lineno) +
                             ": " + why);
  };
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# mpiv-trace", 0) == 0) {
        saw_header = true;
        continue;
      }
      if (line.rfind("# lane ", 0) == 0) {
        LaneInfo li;
        char name[64];
        unsigned long long total = 0, dropped = 0;
        if (std::sscanf(line.c_str(), "# lane %63s total=%llu dropped=%llu",
                        name, &total, &dropped) != 3) {
          bad("malformed lane header");
        }
        li.name = name;
        li.total = total;
        li.dropped = dropped;
        s.lanes.push_back(std::move(li));
      }
      continue;  // other comments ignored
    }
    if (!saw_header) bad("missing '# mpiv-trace' header");
    StreamRecord sr;
    char lane[64];
    char kind[32];
    long long t = 0;
    unsigned code = 0;
    int peer = 0;
    unsigned long long seq = 0, aux = 0, digest = 0;
    if (std::sscanf(line.c_str(), "%lld %63s %31s %u %d %llu %llu %llx", &t,
                    lane, kind, &code, &peer, &seq, &aux, &digest) != 8) {
      bad("malformed record");
    }
    Kind k{};
    if (!parse_kind(kind, &k)) bad(std::string("unknown kind '") + kind + "'");
    if (code > 0xFF) bad("code out of range");
    sr.lane = lane;
    sr.rec.t = static_cast<sim::Time>(t);
    sr.rec.kind = k;
    sr.rec.code = static_cast<std::uint8_t>(code);
    sr.rec.peer = peer;
    sr.rec.seq = seq;
    sr.rec.aux = aux;
    sr.rec.digest = digest;
    s.records.push_back(std::move(sr));
  }
  if (!saw_header) {
    throw std::runtime_error("trace stream: missing '# mpiv-trace' header");
  }
  return s;
}

std::string format_record(const std::string& lane, const Record& r) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s %s t=%.6fs code=%u peer=%d seq=%" PRIu64 " aux=%" PRIu64
                " digest=0x%" PRIx64,
                lane.c_str(), kind_name(r.kind), sim::to_sec(r.t),
                static_cast<unsigned>(r.code), r.peer, r.seq, r.aux, r.digest);
  return buf;
}

}  // namespace mpiv::trace
