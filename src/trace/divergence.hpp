// Semantic replay-equivalence between a faulty run's trace stream and its
// compare_reference twin.
//
// The oracle from the paper: causal logging must replay a crashed rank's
// reception sequence *exactly*, so after recovery every rank's logical
// sequence of sends and reception matches must be record-identical to the
// fault-free reference execution — only the timestamps move. The
// comparator projects each rank lane down to that logical sequence
// (deduplicating re-executed events by keeping the LAST occurrence of
// each (kind, key): the replayed copy supersedes the pre-crash one) and
// compares content, never wall time. When a ring overflowed and dropped
// early records, comparison falls back to aligning at the first key both
// sides retain and checking the suffix (and says so via `truncated`).
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace mpiv::trace {

/// Outcome of comparing one rank lane.
struct LaneDivergence {
  std::string lane;
  bool compared = false;   // lane present in both streams
  bool truncated = false;  // ring drops forced suffix-only alignment
  bool diverged = false;
  std::string what;  // human description when diverged
  bool has_faulty = false;
  bool has_reference = false;
  Record faulty{};     // record at the divergence point (faulty side)
  Record reference{};  // record at the divergence point (reference side)
};

struct DivergenceReport {
  // First rank-crash fault record in the faulty stream (the reference pass
  // strips rank injections, so this exists only on the faulty side).
  int victim = -1;
  sim::Time victim_fault_at = 0;
  bool equivalent = true;  // every compared rank lane matched
  std::vector<LaneDivergence> lanes;

  const LaneDivergence* first_divergent() const {
    for (const LaneDivergence& l : lanes) {
      if (l.diverged) return &l;
    }
    return nullptr;
  }
};

/// Projects a rank lane to its logical send/recv-match sequence:
/// kSend keyed by (peer, ssn), kRecvMatch keyed by rsn, last occurrence
/// wins, original order of the survivors preserved.
std::vector<Record> logical_sequence(const std::vector<Record>& lane);

DivergenceReport compare_streams(const Stream& faulty, const Stream& reference,
                                 int nranks);

}  // namespace mpiv::trace
