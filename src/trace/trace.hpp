// Per-rank structured trace lanes — the debugging instrument for replay.
//
// Every rank (plus each Event Logger shard and the fault engine) owns a
// fixed-capacity ring of POD records describing the events that determine
// an execution: sends, reception matches, determinant creations,
// piggybacks, checkpoints, EL acks, faults and recovery phases. Capture is
// a single ring write stamped with the engine clock and never schedules
// anything, so a traced run is event-for-event identical to an untraced
// one (tests/test_determinism.cpp pins the goldens both ways); with
// tracing disabled every hook is one null-pointer test.
//
// A dump merge-sorts all lanes by virtual timestamp into one text stream
// (emitted alongside the scenario JSON when `trace.dir` is set); the
// stream parses back losslessly, which is what `mpiv_trace` and the
// replay-equivalence harness consume: aligning a faulty run's stream with
// its `compare_reference` twin localizes a wrong replay to the exact
// record instead of a final checksum mismatch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mpiv::trace {

enum class Kind : std::uint8_t {
  kSend = 0,     // app message left the rank        seq=ssn  peer=dst  aux=tag
  kRecvMatch,    // reception matched                seq=rsn  peer=src  aux=ssn
  kDeterminant,  // determinant created/stored       seq=rsn  peer=dep/creator
  kPiggyback,    // non-empty piggyback attached     seq=ssn  peer=dst  aux=events
  kCkpt,         // checkpoint transaction committed seq=version
  kElAck,        // EL stable-clock ack              seq=own stable watermark
  kFault,        // a failure struck (code = FaultCode)
  kRecovery,     // a recovery phase mark (code = PhaseCode)
};
const char* kind_name(Kind k);
bool parse_kind(const std::string& name, Kind* out);

/// `code` values of kFault records.
enum FaultCode : std::uint8_t {
  kRankCrash = 1,
  kDaemonCrash,
  kElCrash,
  kElOutage,
  kCkptOutage,
  kLinkLatency,
  kLinkDrop,
  kPartition,
  kNodeCrash,    // network-level node epoch bump (any node id)
  kNodeRestart,
  kElSuspect,      // shard behind a cut declared suspect (peer = shard,
                   // seq = cut clients, aux = successor shard)
  kPartitionHeal,  // service cut healed; reconciliation starts
};

/// `code` values of kRecovery records.
enum PhaseCode : std::uint8_t {
  kPhaseRestart = 1,  // new incarnation launched
  kPhaseImage,        // checkpoint image fetched + state restored
  kPhaseCollect,      // replay set assembled (seq = determinants to replay)
  kPhaseReplayDone,   // forced replay drained: execution live again
  kPhaseElFailover,   // home shard re-homed (peer = dead shard, aux = successor)
  kPhaseDaemonUp,     // respawned daemon serving again (seq = drained frames)
  kPhaseLogMounted,   // successor shard mounted a dead shard's log
  kPhaseReconcile,    // split-brain heal merged two live logs (peer = stale
                      // shard, seq = records merged, aux = duplicates dropped)
  kPhaseDupDrop,      // a duplicate submission dropped during reconciliation
                      // (peer = creator rank, seq = duplicate seq)
  kPhasePromote,      // replica shadow promoted to primary (seq = held
                      // frames drained to the new incarnation)
  kPhaseRevoke,       // ULFM revoke notice reached this survivor
                      // (peer = victim rank)
  kPhaseRepairDone,   // shrunk communicator live (peer = victim,
                      // seq = surviving communicator size)
};

/// One trace record. POD on purpose: capture is a struct copy into the
/// ring, nothing more. `t` orders the merged stream; the meaning of
/// `code`/`peer`/`seq`/`aux`/`digest` depends on `kind` (see above).
struct Record {
  sim::Time t = 0;
  Kind kind = Kind::kSend;
  std::uint8_t code = 0;
  std::int32_t peer = -1;
  std::uint64_t seq = 0;
  std::uint64_t aux = 0;
  std::uint64_t digest = 0;

  /// Record identity for replay-equivalence: everything but the wall
  /// timestamp (a recovered run re-creates the same records later).
  bool same_content(const Record& o) const {
    return kind == o.kind && code == o.code && peer == o.peer &&
           seq == o.seq && aux == o.aux && digest == o.digest;
  }
};

/// Trace knobs lowered from the scenario layer (ClusterConfig::trace).
struct Config {
  bool enabled = false;
  std::uint32_t capacity = 8192;  // retained records per lane
};

/// One ring lane. Appends are O(1) struct copies; when the ring wraps the
/// oldest records are overwritten and `dropped()` reports how many (the
/// divergence comparator falls back to suffix alignment in that case).
class Lane {
 public:
  Lane(std::string name, std::size_t capacity)
      : name_(std::move(name)), ring_(capacity) {}

  void push(const Record& r) {
    ring_[static_cast<std::size_t>(total_ % ring_.size())] = r;
    ++total_;
  }

  const std::string& name() const { return name_; }
  std::uint64_t total() const { return total_; }
  std::size_t retained() const {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
  }
  std::uint64_t dropped() const { return total_ - retained(); }

  /// Visits retained records oldest to newest (engine time is monotone, so
  /// this is also nondecreasing-timestamp order).
  template <class Fn>
  void for_each(Fn&& fn) const {
    const std::uint64_t start = total_ - retained();
    for (std::uint64_t i = start; i < total_; ++i) {
      fn(ring_[static_cast<std::size_t>(i % ring_.size())]);
    }
  }

 private:
  std::string name_;
  std::vector<Record> ring_;
  std::uint64_t total_ = 0;
};

/// The per-cluster registry: one lane per rank ("r<k>"), one per EL shard
/// ("el<s>"), one for the fault engine / fabric ("engine"). Owned by
/// runtime::Cluster and handed out as raw Lane pointers, stable for the
/// cluster's lifetime.
class TraceSink {
 public:
  TraceSink(int nranks, int el_shards, std::uint32_t capacity);

  Lane* rank_lane(int r) { return &lanes_[static_cast<std::size_t>(r)]; }
  Lane* el_lane(int shard) {
    return &lanes_[static_cast<std::size_t>(nranks_ + shard)];
  }
  Lane* engine_lane() {
    return &lanes_[static_cast<std::size_t>(nranks_ + el_shards_)];
  }
  int nranks() const { return nranks_; }
  const std::vector<Lane>& lanes() const { return lanes_; }

  /// Merge-sorts every lane by (timestamp, lane index, lane order) into one
  /// deterministic text stream (format parsed back by parse_stream).
  std::string dump() const;

 private:
  int nranks_;
  int el_shards_;
  std::vector<Lane> lanes_;
};

/// Capture helper used at every hook site: one branch when disabled.
inline void emit(Lane* lane, sim::Time t, Kind kind, std::uint8_t code,
                 std::int32_t peer, std::uint64_t seq, std::uint64_t aux = 0,
                 std::uint64_t digest = 0) {
  if (lane == nullptr) return;
  lane->push(Record{t, kind, code, peer, seq, aux, digest});
}

// --- parsed stream (the mpiv_trace / test-harness side) ---------------------

struct StreamRecord {
  std::string lane;  // "r2", "el0", "engine"
  Record rec;
};

struct LaneInfo {
  std::string name;
  std::uint64_t total = 0;
  std::uint64_t dropped = 0;
};

struct Stream {
  std::vector<LaneInfo> lanes;
  std::vector<StreamRecord> records;  // merged dump order

  const LaneInfo* lane_info(const std::string& name) const;
  /// Records of one lane, in stream (= lane) order.
  std::vector<Record> lane_records(const std::string& name) const;
};

/// Parses a dump() stream back. Throws std::runtime_error with a line
/// number on malformed input.
Stream parse_stream(const std::string& text);

/// One-line human rendering of a record ("r2 recv-match seq=57 peer=0 ...").
std::string format_record(const std::string& lane, const Record& r);

}  // namespace mpiv::trace
