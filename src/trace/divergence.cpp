#include "trace/divergence.hpp"

#include <cstdio>
#include <map>
#include <tuple>

namespace mpiv::trace {

namespace {

// Logical identity of a send/recv-match record within one rank lane.
// kSend: (dst, ssn) — ssn is per-destination. kRecvMatch: rsn alone (the
// reception sequence number is the per-rank total order the paper replays).
using Key = std::tuple<int, std::int32_t, std::uint64_t>;

Key key_of(const Record& r) {
  if (r.kind == Kind::kSend) return {0, r.peer, r.seq};
  return {1, -1, r.seq};
}

std::string describe(const Record& r) {
  if (r.kind == Kind::kSend) {
    return "send ssn=" + std::to_string(r.seq) + " to r" +
           std::to_string(r.peer);
  }
  return "recv-match rsn=" + std::to_string(r.seq) + " from r" +
         std::to_string(r.peer) + " ssn=" + std::to_string(r.aux);
}

}  // namespace

std::vector<Record> logical_sequence(const std::vector<Record>& lane) {
  std::vector<Record> out;
  std::vector<bool> dead;
  std::map<Key, std::size_t> last;
  for (const Record& r : lane) {
    if (r.kind != Kind::kSend && r.kind != Kind::kRecvMatch) continue;
    const Key k = key_of(r);
    auto [it, fresh] = last.try_emplace(k, out.size());
    if (!fresh) {
      // Re-execution after a crash: the replayed occurrence supersedes the
      // rolled-back one.
      dead[it->second] = true;
      it->second = out.size();
    }
    out.push_back(r);
    dead.push_back(false);
  }
  std::vector<Record> live;
  live.reserve(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!dead[i]) live.push_back(out[i]);
  }
  return live;
}

DivergenceReport compare_streams(const Stream& faulty, const Stream& reference,
                                 int nranks) {
  DivergenceReport rep;

  for (const StreamRecord& sr : faulty.records) {
    if (sr.rec.kind == Kind::kFault && sr.rec.code == kRankCrash) {
      rep.victim = sr.rec.peer;
      rep.victim_fault_at = sr.rec.t;
      break;
    }
  }

  for (int r = 0; r < nranks; ++r) {
    LaneDivergence ld;
    // snprintf, not "r" + to_string: GCC 12 -Wrestrict false positive.
    char lane[16];
    std::snprintf(lane, sizeof(lane), "r%d", r);
    ld.lane = lane;
    const LaneInfo* fi = faulty.lane_info(ld.lane);
    const LaneInfo* ri = reference.lane_info(ld.lane);
    if (fi == nullptr || ri == nullptr) {
      rep.lanes.push_back(std::move(ld));
      continue;
    }
    ld.compared = true;
    const std::vector<Record> fa =
        logical_sequence(faulty.lane_records(ld.lane));
    const std::vector<Record> re =
        logical_sequence(reference.lane_records(ld.lane));
    ld.truncated = fi->dropped > 0 || ri->dropped > 0;

    std::size_t i = 0, j = 0;
    if (ld.truncated) {
      // The rings lost their prefixes; align at the first logical event the
      // faulty side retains that the reference also retains, then the
      // suffixes must agree.
      std::map<Key, std::size_t> ref_at;
      for (std::size_t k = 0; k < re.size(); ++k) {
        ref_at.try_emplace(key_of(re[k]), k);
      }
      bool aligned = false;
      for (; i < fa.size(); ++i) {
        auto it = ref_at.find(key_of(fa[i]));
        if (it != ref_at.end()) {
          j = it->second;
          aligned = true;
          break;
        }
      }
      if (!aligned) {
        ld.diverged = true;
        ld.what = "no overlapping records after ring truncation";
        rep.lanes.push_back(std::move(ld));
        rep.equivalent = false;
        continue;
      }
    }

    for (; i < fa.size() && j < re.size(); ++i, ++j) {
      if (!fa[i].same_content(re[j])) {
        ld.diverged = true;
        ld.has_faulty = true;
        ld.has_reference = true;
        ld.faulty = fa[i];
        ld.reference = re[j];
        ld.what = "faulty " + describe(fa[i]) + " vs reference " +
                  describe(re[j]);
        break;
      }
    }
    if (!ld.diverged && (i < fa.size() || j < re.size())) {
      ld.diverged = true;
      if (i < fa.size()) {
        ld.has_faulty = true;
        ld.faulty = fa[i];
        ld.what = "faulty run has extra " + describe(fa[i]);
      } else {
        ld.has_reference = true;
        ld.reference = re[j];
        ld.what = "faulty run is missing " + describe(re[j]);
      }
    }
    if (ld.diverged) rep.equivalent = false;
    rep.lanes.push_back(std::move(ld));
  }
  return rep;
}

}  // namespace mpiv::trace
