// Transactional checkpoint server (paper §IV-B.2): stores remote checkpoint
// images; store/retrieve/delete are transactions — a failure before
// completion leaves the previous image intact (the client simply never
// receives the ack, and the commit happens atomically at disk-write
// completion). One disk serializes all writes, which is what makes
// coordinated checkpoint waves (and coordinated restarts) pay a storm
// penalty that uncoordinated message-logging checkpoints avoid.
#pragma once

#include <cstdint>
#include <map>

#include "ftapi/services.hpp"
#include "net/service_port.hpp"
#include "util/buffer.hpp"

namespace mpiv::ckpt {

class CheckpointServer {
 public:
  CheckpointServer(net::Network& net, const ftapi::NodeLayout& layout)
      : net_(net), port_(net, layout.ckpt_node()) {
    net.attach(layout.ckpt_node(),
               [this](net::Message&& m) { on_frame(std::move(m)); });
  }

  bool has_image(int rank) const { return images_.count(rank) != 0; }
  /// Latest committed version for `rank` (0 if none).
  std::uint64_t latest_version(int rank) const {
    auto it = images_.find(rank);
    return it == images_.end() || it->second.empty() ? 0
                                                     : it->second.rbegin()->first;
  }
  std::uint64_t stores_completed() const { return stores_; }

 private:
  struct Image {
    util::Buffer body;
    std::uint64_t logical_bytes = 0;
  };

  sim::Time disk_time(std::uint64_t bytes) const {
    return static_cast<sim::Time>(static_cast<double>(bytes) * 8.0 * 1e9 /
                                  net_.cost().ckpt_disk_bps);
  }

  void on_frame(net::Message&& m) {
    switch (m.kind) {
      case net::MsgKind::kCkptStore: {
        const int rank = m.src_rank;
        const std::uint64_t version = m.arg;
        const std::uint64_t total = m.body.size() + m.payload.bytes;
        Image img{std::move(m.body), m.payload.bytes};
        const net::NodeId reply_to = m.src;
        // Transaction: the image becomes visible only when the disk write
        // completes; the ack is sent after the commit.
        disk_free_ = std::max(port_.engine().now(), disk_free_) +
                     net_.cost().ckpt_txn_overhead + disk_time(total);
        port_.engine().at(disk_free_, [this, rank, version, reply_to,
                                       img = std::move(img)]() mutable {
          auto& versions = images_[rank];
          versions[version] = std::move(img);
          // Keep the last two versions (coordinated rollback may need the
          // previous globally-complete snapshot).
          while (versions.size() > 2) versions.erase(versions.begin());
          ++stores_;
          net::Message ack;
          ack.kind = net::MsgKind::kCkptStoreAck;
          ack.dst = reply_to;
          ack.arg = version;
          port_.send_after(0, std::move(ack));
        });
        return;
      }
      case net::MsgKind::kCkptFetchReq: {
        const int rank = static_cast<int>(m.arg);
        const std::uint64_t version = m.ssn;  // 0 = latest
        const net::NodeId reply_to = m.src;
        net::Message resp;
        resp.kind = net::MsgKind::kCkptFetchResp;
        resp.dst = reply_to;
        resp.arg = 0;
        std::uint64_t total = 0;
        auto it = images_.find(rank);
        if (it != images_.end() && !it->second.empty()) {
          auto vit = version == 0 ? std::prev(it->second.end())
                                  : it->second.find(version);
          if (vit != it->second.end()) {
            resp.arg = 1;
            resp.body = vit->second.body;
            resp.payload.bytes = vit->second.logical_bytes;
            total = resp.body.size() + resp.payload.bytes;
          }
        }
        disk_free_ = std::max(port_.engine().now(), disk_free_) + disk_time(total);
        const sim::Time ready = disk_free_;
        port_.engine().at(ready, [this, resp = std::move(resp)]() mutable {
          port_.send_after(0, std::move(resp));
        });
        return;
      }
      case net::MsgKind::kCkptDelete:
        images_.erase(static_cast<int>(m.arg));
        return;
      default:
        return;
    }
  }

  net::Network& net_;
  net::ServicePort port_;
  std::map<int, std::map<std::uint64_t, Image>> images_;
  sim::Time disk_free_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace mpiv::ckpt
