// Checkpoint scheduler (paper §IV-B.3): decides when each rank checkpoints.
// Message-logging protocols take uncoordinated checkpoints — round-robin
// maximizes sender-log garbage collection; coordinated checkpointing
// requests a synchronized wave from every rank at once.
#pragma once

#include <cstdint>

#include "ftapi/services.hpp"
#include "mpi/rank_runtime.hpp"
#include "net/service_port.hpp"
#include "util/rng.hpp"

namespace mpiv::ckpt {

enum class Policy : std::uint8_t {
  kNone,        // never checkpoint
  kRoundRobin,  // one rank per tick, cycling
  kRandom,      // one random rank per tick
  kAllAtOnce,   // every rank per tick (coordinated wave trigger)
};

inline const char* policy_name(Policy p) {
  switch (p) {
    case Policy::kNone: return "none";
    case Policy::kRoundRobin: return "round-robin";
    case Policy::kRandom: return "random";
    case Policy::kAllAtOnce: return "all-at-once";
  }
  return "?";
}

class CheckpointScheduler {
 public:
  CheckpointScheduler(net::Network& net, const ftapi::NodeLayout& layout,
                      Policy policy, sim::Time interval, std::uint64_t seed)
      : layout_(layout),
        port_(net, layout.dispatcher_node()),
        policy_(policy),
        interval_(interval),
        rng_(seed ^ 0xC4E1'2005ULL) {}

  void start() {
    if (policy_ == Policy::kNone || interval_ <= 0) return;
    running_ = true;
    port_.engine().after(interval_, [this] { tick(); });
  }
  void stop() { running_ = false; }
  std::uint64_t requests_sent() const { return requests_; }

 private:
  void tick() {
    if (!running_) return;
    ++wave_;
    switch (policy_) {
      case Policy::kNone:
        return;
      case Policy::kRoundRobin:
        request(next_);
        next_ = (next_ + 1) % layout_.nranks;
        break;
      case Policy::kRandom:
        request(static_cast<int>(
            rng_.next_below(static_cast<std::uint64_t>(layout_.nranks))));
        break;
      case Policy::kAllAtOnce:
        for (int r = 0; r < layout_.nranks; ++r) request(r);
        break;
    }
    port_.engine().after(interval_, [this] { tick(); });
  }

  void request(int rank) {
    net::Message m;
    m.kind = net::MsgKind::kControl;
    m.tag = static_cast<std::int32_t>(mpi::CtlSub::kCkptRequest);
    m.arg = wave_;  // wave number (used by coordinated checkpointing)
    m.dst = layout_.rank_node(rank);
    ++requests_;
    port_.send_after(0, std::move(m));
  }

  ftapi::NodeLayout layout_;
  net::ServicePort port_;
  Policy policy_;
  sim::Time interval_;
  util::Rng rng_;
  bool running_ = false;
  int next_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t wave_ = 0;
};

}  // namespace mpiv::ckpt
