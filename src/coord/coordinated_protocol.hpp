// Coordinated checkpointing with an aligned Chandy-Lamport flush wave (the
// MPICH-Vcl baseline of the paper's Fig. 1).
//
// Application-assisted checkpoints can only be taken at checkpoint sites,
// so a wave must park every rank at the *same* site index — parking at
// "whatever site comes next" deadlocks as soon as one rank's progress to
// its site depends on a message a parked rank would only send later (e.g.
// a ring token). The wave therefore runs in phases:
//
//   1. join    — the scheduler announces wave W; at its next site each rank
//                reports its current site index to the coordinator;
//   2. agree   — the coordinator picks S* = max(reported) + margin and
//                broadcasts it; every rank keeps running until site S*;
//   3. flush   — at site S* a rank sends a marker on every channel and
//                waits for all markers; FIFO channels guarantee that every
//                message sent before a peer parked has arrived (delivered
//                or captured in the unexpected queue, which is serialized
//                into the image);
//   4. store   — the rank stores its image under version W and reports;
//   5. resume  — when all ranks stored, the coordinator releases the wave.
//                A rank that raced past S* before learning it aborts the
//                wave; the coordinator cancels it (nobody can have stored,
//                because the aborting rank never sent its marker).
//
// Recovery is global: ANY fault rolls EVERY rank back to the last complete
// snapshot — the reason coordinated checkpointing collapses at high fault
// frequency (Fig. 1).
#pragma once

#include <map>
#include <memory>

#include "ftapi/vprotocol.hpp"
#include "mpi/rank_runtime.hpp"
#include "net/service_port.hpp"
#include "sim/sync.hpp"

namespace mpiv::coord {

/// Control subtags (offsets above mpi::CtlSub::kProtocol).
enum class CoordSub : std::int32_t {
  kMarker = 16,      // rank -> rank: arg = wave
  kWaveJoin = 17,    // rank -> coordinator: arg = wave, ssn = my site index
  kWaveAt = 18,      // coordinator -> rank: arg = wave, ssn = aligned site S*
  kWaveDone = 19,    // rank -> coordinator: arg = wave (image stored)
  kWaveAbort = 20,   // rank -> coordinator: arg = wave (raced past S*)
  kWaveResume = 21,  // coordinator -> rank: arg = wave, ssn = 1 if completed
};

class CoordinatedProtocol final : public ftapi::VProtocol {
 public:
  const char* name() const override { return "Coordinated"; }

  void bind(const ftapi::RankServices& svc) override {
    ftapi::VProtocol::bind(svc);
    wake_ = std::make_unique<sim::WaitQueue>(*svc.eng);
  }

  sim::Task<void> at_checkpoint_site(ftapi::ICheckpointOps& ops,
                                     const util::Buffer& app_state) override {
    ++site_count_;
    // Phase 1: join a newly announced wave.
    if (ops.checkpoint_requested()) ops.clear_checkpoint_request();
    if (announced_ > joined_) {
      joined_ = announced_;
      net::Message j;
      j.kind = net::MsgKind::kControl;
      j.tag = static_cast<std::int32_t>(CoordSub::kWaveJoin);
      j.src_rank = svc_.rank;
      j.arg = joined_;
      j.ssn = site_count_;
      svc_.send_ctl(svc_.layout.dispatcher_node(), std::move(j));
    }
    // Phase 2/3: park when the agreed site is reached.
    if (joined_ <= completed_ || park_wave_ != joined_) co_return;
    if (site_count_ > park_site_) {
      // Raced past the agreed site before kWaveAt arrived: abort the wave.
      net::Message a;
      a.kind = net::MsgKind::kControl;
      a.tag = static_cast<std::int32_t>(CoordSub::kWaveAbort);
      a.src_rank = svc_.rank;
      a.arg = joined_;
      svc_.send_ctl(svc_.layout.dispatcher_node(), std::move(a));
      completed_ = joined_;  // locally give up on this wave
      co_return;
    }
    if (site_count_ < park_site_) co_return;  // keep running until S*

    const std::uint64_t wave = joined_;
    // Phase 3: flush — markers out, wait for everyone's marker (or cancel).
    for (int peer = 0; peer < svc_.nranks; ++peer) {
      if (peer == svc_.rank) continue;
      net::Message m;
      m.kind = net::MsgKind::kControl;
      m.tag = static_cast<std::int32_t>(CoordSub::kMarker);
      m.src_rank = svc_.rank;
      m.arg = wave;
      svc_.send_ctl_to_rank(peer, std::move(m));
    }
    while (markers_[wave] < static_cast<std::size_t>(svc_.nranks - 1) &&
           cancelled_ < wave) {
      co_await wake_->wait();
    }
    markers_.erase(wave);
    if (cancelled_ >= wave) {
      completed_ = std::max(completed_, wave);
      co_return;  // wave cancelled before anyone stored
    }

    // Phase 4: store under version = wave number (global rollback target).
    co_await ops.store_checkpoint(app_state, wave);
    net::Message done;
    done.kind = net::MsgKind::kControl;
    done.tag = static_cast<std::int32_t>(CoordSub::kWaveDone);
    done.src_rank = svc_.rank;
    done.arg = wave;
    svc_.send_ctl(svc_.layout.dispatcher_node(), std::move(done));

    // Phase 5: park until the coordinator releases the wave (sending app
    // data before that could cross the cut).
    while (resumed_ < wave) co_await wake_->wait();
    completed_ = std::max(completed_, wave);
  }

  void on_ctl(net::Message&& m) override {
    if (m.kind != net::MsgKind::kControl) return;
    switch (static_cast<mpi::CtlSub>(m.tag)) {
      case mpi::CtlSub::kCkptRequest:
        // Scheduler wave announcement (the runtime also sets the request
        // flag; the wave number travels in arg).
        announced_ = std::max(announced_, m.arg);
        return;
      default:
        break;
    }
    switch (static_cast<CoordSub>(m.tag)) {
      case CoordSub::kMarker:
        ++markers_[m.arg];
        wake_->wake_all();
        return;
      case CoordSub::kWaveAt:
        if (m.arg == joined_) {
          park_wave_ = m.arg;
          park_site_ = m.ssn;
        }
        return;
      case CoordSub::kWaveResume:
        resumed_ = std::max(resumed_, m.arg);
        if (m.ssn == 0) cancelled_ = std::max(cancelled_, m.arg);
        wake_->wake_all();
        return;
      default:
        return;
    }
  }

  void serialize(util::Buffer& b) const override {
    b.put_u64(site_count_);
    b.put_u64(completed_);
  }
  void restore(util::Buffer& b) override {
    site_count_ = b.get_u64();
    completed_ = b.get_u64();
    joined_ = completed_;
    announced_ = completed_;
    resumed_ = completed_;
    cancelled_ = completed_;
    park_wave_ = 0;
    park_site_ = UINT64_MAX;
  }
  void reset() override {
    site_count_ = 0;
    announced_ = joined_ = completed_ = resumed_ = cancelled_ = 0;
    park_wave_ = 0;
    park_site_ = UINT64_MAX;
    markers_.clear();
  }

 private:
  std::uint64_t site_count_ = 0;
  std::uint64_t announced_ = 0;  // highest wave the scheduler announced
  std::uint64_t joined_ = 0;     // highest wave we joined
  std::uint64_t completed_ = 0;  // highest wave finished (stored or given up)
  std::uint64_t resumed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t park_wave_ = 0;
  std::uint64_t park_site_ = UINT64_MAX;
  std::map<std::uint64_t, std::size_t> markers_;
  std::unique_ptr<sim::WaitQueue> wake_;
};

/// Dispatcher-side wave coordinator: collects joins, picks the aligned
/// site, collects done/abort reports, releases or cancels the wave, and
/// tracks the last globally-complete snapshot for rollback.
class WaveCoordinator {
 public:
  WaveCoordinator(net::Network& net, const ftapi::NodeLayout& layout)
      : layout_(layout), port_(net, layout.dispatcher_node()) {}

  /// Margin added over the highest reported site index; covers the sites a
  /// fast rank passes while the agreement round is in flight.
  static constexpr std::uint64_t kAlignMargin = 2;

  /// Returns true if the frame was a coordination report (consumed).
  bool on_ctl(const net::Message& m) {
    if (m.kind != net::MsgKind::kControl) return false;
    switch (static_cast<CoordSub>(m.tag)) {
      case CoordSub::kWaveJoin: {
        Wave& w = waves_[m.arg];
        w.max_site = std::max(w.max_site, m.ssn);
        if (++w.joins == static_cast<std::size_t>(layout_.nranks) && !w.dead) {
          broadcast(CoordSub::kWaveAt, m.arg, w.max_site + kAlignMargin);
        }
        return true;
      }
      case CoordSub::kWaveDone: {
        Wave& w = waves_[m.arg];
        if (++w.dones == static_cast<std::size_t>(layout_.nranks) && !w.dead) {
          complete_ = std::max(complete_, m.arg);
          broadcast(CoordSub::kWaveResume, m.arg, 1);
          waves_.erase(m.arg);
        }
        return true;
      }
      case CoordSub::kWaveAbort: {
        Wave& w = waves_[m.arg];
        if (!w.dead) {
          w.dead = true;
          broadcast(CoordSub::kWaveResume, m.arg, 0);  // cancel
        }
        return true;
      }
      default:
        return false;
    }
  }

  /// Last wave for which every rank committed an image.
  std::uint64_t last_complete() const { return complete_; }

 private:
  struct Wave {
    std::size_t joins = 0;
    std::size_t dones = 0;
    std::uint64_t max_site = 0;
    bool dead = false;
  };

  void broadcast(CoordSub sub, std::uint64_t wave, std::uint64_t ssn) {
    for (int r = 0; r < layout_.nranks; ++r) {
      net::Message m;
      m.kind = net::MsgKind::kControl;
      m.tag = static_cast<std::int32_t>(sub);
      m.arg = wave;
      m.ssn = ssn;
      m.dst = layout_.rank_node(r);
      port_.send_after(0, std::move(m));
    }
  }

  ftapi::NodeLayout layout_;
  net::ServicePort port_;
  std::map<std::uint64_t, Wave> waves_;
  std::uint64_t complete_ = 0;
};

}  // namespace mpiv::coord
