// Recovery timelines — the instrument that turns the paper's Fig. 10
// "time to recover" scalar into an attributable per-phase breakdown.
//
// Every recovery decomposes into the phases of §IV's restart protocol:
//   detect   fault -> dispatcher initiates the restart (failure detector)
//   image    restart -> checkpoint image fetched and state restored
//   collect  image -> replay set gathered (Event Logger + survivors)
//   replay   collect -> forced replay drained (includes the overlapped
//            payload re-sends from survivors' sender logs)
// The timeline keeps one record per recovery (a rank crashing twice opens
// two records; a coordinated rollback opens one per rolled-back rank).
// Marks arrive from the dispatcher (detect) and the rank runtime (the
// rest); an interrupted recovery — the rank crashed again mid-recovery —
// stays open-ended (replay_done_at == 0).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace mpiv::fault {

struct RecoveryRecord {
  int rank = -1;
  bool coordinated = false;  // part of a coordinated global rollback
  sim::Time fault_at = 0;
  sim::Time restart_at = 0;      // detection done, new incarnation launched
  sim::Time image_at = 0;        // checkpoint image fetched + state restored
  sim::Time collect_at = 0;      // replay set (EL + survivors) assembled
  sim::Time replay_done_at = 0;  // forced replay drained: execution live
  std::uint64_t replay_events = 0;

  bool complete() const { return replay_done_at != 0; }
  sim::Time detect_ns() const { return restart_at - fault_at; }
  sim::Time image_ns() const { return image_at - restart_at; }
  sim::Time collect_ns() const { return collect_at - image_at; }
  sim::Time replay_ns() const { return replay_done_at - collect_at; }
  sim::Time total_ns() const { return replay_done_at - fault_at; }
};

/// A daemon-process fault (the paper's ch_v failure domain split: the
/// communication daemon dies while the MPI process survives). The app rank
/// keeps its volatile state and merely stalls — no image fetch, no replay —
/// so the record has only the daemon's own phases:
///   down     fault -> dispatcher respawns the daemon (detect + restart)
///   drain    frames that backed up in the pipe / socket buffers while the
///            select loop was dead, forwarded on reconnect
struct DaemonOutageRecord {
  int rank = -1;
  sim::Time fault_at = 0;
  sim::Time restart_at = 0;        // respawned daemon serving again
  std::uint64_t held_frames = 0;   // backed-up frames drained on reconnect
  // A rank crash superseded the outage: the node restart respawned the
  // daemon, so the record never closes. Distinguishes "still down at run
  // end" (interrupted = false, complete() = false) from "overtaken by a
  // node-level recovery" in the JSON report.
  bool interrupted = false;

  bool complete() const { return restart_at != 0; }
  sim::Time down_ns() const { return restart_at - fault_at; }
};

/// A split-brain Event Logger reconciliation: a service-side partition cut
/// a shard from part of its clientele, the directory declared it suspect
/// after the detection delay and re-homed the unreachable clients onto a
/// successor (both shards live, both logs growing), and the heal merged
/// the two logs idempotently. Phases:
///   detect     cut -> suspected failover fired (clients re-homed)
///   split      suspect -> heal (both sides accepting submissions)
///   merge      heal -> duplicate-free union committed on the successor
struct ElReconcileRecord {
  int stale_shard = -1;  // the shard left behind the cut
  int successor = -1;    // where the cut-off clients were re-homed
  int moved_ranks = 0;
  sim::Time cut_at = 0;      // the partition opened
  sim::Time suspect_at = 0;  // detection delay elapsed, clients re-homed
  sim::Time heal_at = 0;     // cut healed, merge started
  sim::Time done_at = 0;     // merge committed
  std::uint64_t merged_records = 0;  // pulled over from the stale log
  std::uint64_t dup_dropped = 0;     // (creator, seq) both sides held
  // First duplicate the merge dropped; creator -1 = none dropped.
  int first_dup_rank = -1;
  std::uint64_t first_dup_seq = 0;

  bool complete() const { return done_at != 0; }
  sim::Time detect_ns() const { return suspect_at - cut_at; }
  sim::Time split_ns() const { return heal_at - suspect_at; }
  sim::Time merge_ns() const { return done_at - heal_at; }
};

/// A ULFM-style communicator repair (the kRepair lane): instead of
/// restarting the victim, the survivors revoke the communicator, run a
/// priced agreement/rebuild window, and relaunch shrunk. Phases:
///   detect   crash -> revoke broadcast reaches the survivors
///   repair   revoke -> agreement + communicator rebuild done, survivors
///            relaunched on the shrunk communicator
struct RepairRecord {
  int victim = -1;       // the rank the repair excludes for good
  int survivors = 0;     // communicator size after the shrink
  sim::Time fault_at = 0;
  sim::Time revoke_at = 0;       // revoke notices broadcast
  sim::Time repair_done_at = 0;  // shrunk communicator live again

  bool complete() const { return repair_done_at != 0; }
  sim::Time detect_ns() const { return revoke_at - fault_at; }
  sim::Time repair_ns() const { return repair_done_at - revoke_at; }
  sim::Time total_ns() const { return repair_done_at - fault_at; }
};

/// A replica shadow promotion: the crash never reaches the application —
/// the shadow takes over after the detection window, inheriting the
/// victim's traffic (held at the delivery boundary meanwhile). No image
/// fetch, no collect, no replay: the one phase is the promotion stall.
struct PromotionRecord {
  int rank = -1;
  sim::Time fault_at = 0;
  sim::Time promoted_at = 0;     // shadow serving as the primary
  std::uint64_t held_frames = 0; // frames parked during the switchover

  bool complete() const { return promoted_at != 0; }
  sim::Time promote_ns() const { return promoted_at - fault_at; }
};

class RecoveryTimeline {
 public:
  void reset(int nranks) {
    records_.clear();
    daemon_records_.clear();
    reconcile_records_.clear();
    repair_records_.clear();
    promotion_records_.clear();
    open_.assign(static_cast<std::size_t>(nranks), -1);
    open_daemon_.assign(static_cast<std::size_t>(nranks), -1);
  }

  /// Opens a record at fault-injection time. A still-open record for the
  /// same rank (crash during recovery) is left incomplete.
  void begin(int rank, sim::Time fault_at, bool coordinated) {
    if (static_cast<std::size_t>(rank) >= open_.size()) return;
    RecoveryRecord r;
    r.rank = rank;
    r.coordinated = coordinated;
    r.fault_at = fault_at;
    open_[static_cast<std::size_t>(rank)] = static_cast<int>(records_.size());
    records_.push_back(r);
  }

  void mark_restart(int rank, sim::Time t) {
    if (RecoveryRecord* r = open_record(rank)) r->restart_at = t;
  }
  void mark_image(int rank, sim::Time t) {
    if (RecoveryRecord* r = open_record(rank)) r->image_at = t;
  }
  void mark_collect(int rank, sim::Time t, std::uint64_t replay_events) {
    if (RecoveryRecord* r = open_record(rank)) {
      r->collect_at = t;
      r->replay_events = replay_events;
    }
  }
  /// Closes the record: the rank matched its last forced reception (or had
  /// nothing to replay) and is executing live again.
  void mark_replay_done(int rank, sim::Time t) {
    if (RecoveryRecord* r = open_record(rank)) {
      r->replay_done_at = t;
      open_[static_cast<std::size_t>(rank)] = -1;
    }
  }

  const std::vector<RecoveryRecord>& records() const { return records_; }

  // --- daemon-fault records (separate failure domain, separate phases) -----
  void begin_daemon(int rank, sim::Time fault_at) {
    if (static_cast<std::size_t>(rank) >= open_daemon_.size()) return;
    DaemonOutageRecord r;
    r.rank = rank;
    r.fault_at = fault_at;
    open_daemon_[static_cast<std::size_t>(rank)] =
        static_cast<int>(daemon_records_.size());
    daemon_records_.push_back(r);
  }
  /// Closes the daemon record: the respawned daemon reconnected and drained
  /// `held_frames` backed-up frames. A rank crash closes nothing — a node
  /// restart supersedes the daemon respawn and the record stays open-ended.
  void end_daemon(int rank, sim::Time t, std::uint64_t held_frames) {
    if (static_cast<std::size_t>(rank) >= open_daemon_.size()) return;
    const int idx = open_daemon_[static_cast<std::size_t>(rank)];
    if (idx < 0) return;
    daemon_records_[static_cast<std::size_t>(idx)].restart_at = t;
    daemon_records_[static_cast<std::size_t>(idx)].held_frames = held_frames;
    open_daemon_[static_cast<std::size_t>(rank)] = -1;
  }
  /// Abandons an open daemon record without closing it (the rank crashed
  /// mid-outage: the node-level restart replaces the daemon respawn).
  void interrupt_daemon(int rank) {
    if (static_cast<std::size_t>(rank) >= open_daemon_.size()) return;
    const int idx = open_daemon_[static_cast<std::size_t>(rank)];
    if (idx >= 0) daemon_records_[static_cast<std::size_t>(idx)].interrupted = true;
    open_daemon_[static_cast<std::size_t>(rank)] = -1;
  }

  const std::vector<DaemonOutageRecord>& daemon_records() const {
    return daemon_records_;
  }

  // --- split-brain reconcile records ---------------------------------------
  /// Opens a reconcile record at suspicion time; returns its index (the
  /// heal closure carries it — unlike ranks, a shard can accumulate several
  /// overlapping reconciles across distinct cuts).
  int begin_reconcile(int stale_shard, int successor, int moved_ranks,
                      sim::Time cut_at, sim::Time suspect_at) {
    ElReconcileRecord r;
    r.stale_shard = stale_shard;
    r.successor = successor;
    r.moved_ranks = moved_ranks;
    r.cut_at = cut_at;
    r.suspect_at = suspect_at;
    reconcile_records_.push_back(r);
    return static_cast<int>(reconcile_records_.size()) - 1;
  }
  /// Closes a reconcile record once the merge commits on the successor.
  void end_reconcile(int idx, sim::Time heal_at, sim::Time done_at,
                     std::uint64_t merged, std::uint64_t dups,
                     int first_dup_rank, std::uint64_t first_dup_seq) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= reconcile_records_.size()) {
      return;
    }
    ElReconcileRecord& r = reconcile_records_[static_cast<std::size_t>(idx)];
    r.heal_at = heal_at;
    r.done_at = done_at;
    r.merged_records = merged;
    r.dup_dropped = dups;
    r.first_dup_rank = first_dup_rank;
    r.first_dup_seq = first_dup_seq;
  }

  const std::vector<ElReconcileRecord>& reconcile_records() const {
    return reconcile_records_;
  }

  // --- ULFM repair records (kRepair lane) ----------------------------------
  /// Opens a repair record at crash time; returns its index (repairs for
  /// different victims can overlap, so the closure carries it).
  int begin_repair(int victim, int survivors, sim::Time fault_at) {
    RepairRecord r;
    r.victim = victim;
    r.survivors = survivors;
    r.fault_at = fault_at;
    repair_records_.push_back(r);
    return static_cast<int>(repair_records_.size()) - 1;
  }
  void mark_revoke(int idx, sim::Time t) {
    if (RepairRecord* r = repair_at(idx)) r->revoke_at = t;
  }
  /// Closes the repair: the shrunk communicator is live.
  void end_repair(int idx, sim::Time t) {
    if (RepairRecord* r = repair_at(idx)) r->repair_done_at = t;
  }

  const std::vector<RepairRecord>& repair_records() const {
    return repair_records_;
  }

  // --- replica promotion records -------------------------------------------
  /// Opens a promotion record at crash time; returns its index.
  int begin_promotion(int rank, sim::Time fault_at) {
    PromotionRecord r;
    r.rank = rank;
    r.fault_at = fault_at;
    promotion_records_.push_back(r);
    return static_cast<int>(promotion_records_.size()) - 1;
  }
  /// Closes the promotion: the shadow is the primary and the held traffic
  /// drained to it.
  void end_promotion(int idx, sim::Time t, std::uint64_t held_frames) {
    if (idx < 0 ||
        static_cast<std::size_t>(idx) >= promotion_records_.size()) {
      return;
    }
    PromotionRecord& r = promotion_records_[static_cast<std::size_t>(idx)];
    r.promoted_at = t;
    r.held_frames = held_frames;
  }

  const std::vector<PromotionRecord>& promotion_records() const {
    return promotion_records_;
  }

 private:
  RecoveryRecord* open_record(int rank) {
    if (static_cast<std::size_t>(rank) >= open_.size()) return nullptr;
    const int idx = open_[static_cast<std::size_t>(rank)];
    return idx < 0 ? nullptr : &records_[static_cast<std::size_t>(idx)];
  }

  RepairRecord* repair_at(int idx) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= repair_records_.size()) {
      return nullptr;
    }
    return &repair_records_[static_cast<std::size_t>(idx)];
  }

  std::vector<RecoveryRecord> records_;
  std::vector<DaemonOutageRecord> daemon_records_;
  std::vector<ElReconcileRecord> reconcile_records_;
  std::vector<RepairRecord> repair_records_;
  std::vector<PromotionRecord> promotion_records_;
  std::vector<int> open_;         // per rank: index of the open record, or -1
  std::vector<int> open_daemon_;  // per rank: open daemon record, or -1
};

}  // namespace mpiv::fault
