#include "fault/engine.hpp"

#include "elog/event_logger.hpp"
#include "mpi/rank_runtime.hpp"

namespace mpiv::fault {

FaultEngine::FaultEngine(Campaign campaign, std::uint64_t seed, Bindings b)
    : campaign_(std::move(campaign)), b_(std::move(b)) {
  // The legacy Poisson stream keeps the historical derivation so pre-engine
  // fault-rate experiments reproduce run for run; campaign streams fold in
  // the salt so fault schedules sweep independently of the workload seed.
  rng_.reseed(seed ^ 0xFA17'2005ULL ^ campaign_.seed_salt);
  fired_.assign(campaign_.injections.size(), 0);
  if (b_.directory != nullptr) {
    in_outage_.assign(static_cast<std::size_t>(b_.directory->total_shards()), 0);
  }
  daemon_gen_.assign(static_cast<std::size_t>(b_.layout.nranks), 0);
}

void FaultEngine::arm(const std::vector<std::pair<sim::Time, int>>& legacy_faults,
                      double legacy_rate_per_minute) {
  // Legacy deterministic plan first (same scheduling order the dispatcher
  // used), then the campaign, then the stochastic streams.
  for (const auto& [at, rank] : legacy_faults) {
    b_.eng->at(at, [this, rank = rank] { b_.crash_rank(rank); });
  }
  for (std::size_t i = 0; i < campaign_.injections.size(); ++i) {
    const Injection& inj = campaign_.injections[i];
    switch (inj.trigger) {
      case Trigger::kAt:
        b_.eng->at(inj.at, [this, i] { fire(i); });
        break;
      case Trigger::kRate:
        arm_poisson(i);
        break;
      case Trigger::kOnCheckpoint:
      case Trigger::kOnElStored:
        break;  // observer-driven
    }
  }
  if (legacy_rate_per_minute > 0) {
    legacy_poisson_mean_ns_ = 60.0 * 1e9 / legacy_rate_per_minute;
    arm_legacy_poisson();
  }
}

void FaultEngine::on_rank_checkpoint(int rank, std::uint64_t completed) {
  for (std::size_t i = 0; i < campaign_.injections.size(); ++i) {
    const Injection& inj = campaign_.injections[i];
    if (fired_[i] || inj.trigger != Trigger::kOnCheckpoint) continue;
    if (inj.index == rank && completed >= inj.nth) trigger_async(i);
  }
}

void FaultEngine::on_el_stored(int shard, std::uint64_t stored) {
  for (std::size_t i = 0; i < campaign_.injections.size(); ++i) {
    const Injection& inj = campaign_.injections[i];
    if (fired_[i] || inj.trigger != Trigger::kOnElStored) continue;
    if (inj.index == shard && stored >= inj.nth) trigger_async(i);
  }
}

void FaultEngine::trigger_async(std::size_t idx) {
  // Observer notifications arrive from inside the observed component — the
  // checkpointing rank's own coroutine, the EL's service loop. Injecting
  // there would have a process kill itself mid-execution; a zero-delay
  // engine event detaches the injection (and models the detector hop).
  fired_[idx] = 1;
  b_.eng->at(b_.eng->now(), [this, idx] {
    if (!b_.run_done()) execute(campaign_.injections[idx]);
  });
}

void FaultEngine::fire(std::size_t idx) {
  if (fired_[idx] || b_.run_done()) return;
  fired_[idx] = 1;
  execute(campaign_.injections[idx]);
}

void FaultEngine::execute(const Injection& inj) {
  switch (inj.target) {
    case Target::kRank:
      ++counts_.rank_crashes;
      b_.crash_rank(inj.index);
      return;
    case Target::kDaemon:
      crash_daemon(inj.index, inj.duration);
      return;
    case Target::kFabric:
      partition(inj.group_a, inj.group_b, inj.duration, inj.magnitude,
                inj.services_a, inj.services_b);
      return;
    case Target::kElShard:
      if (inj.action == Action::kOutage) {
        el_outage(inj.index, inj.duration);
      } else {
        crash_el_shard(inj.index);
      }
      return;
    case Target::kCkptServer:
      ckpt_outage(inj.duration);
      return;
    case Target::kLink:
      link_fault(inj.index, inj.action, inj.magnitude, inj.duration);
      return;
  }
}

void FaultEngine::arm_poisson(std::size_t idx) {
  const Injection& inj = campaign_.injections[idx];
  const double mean_ns = 60.0 * 1e9 / inj.rate_per_minute;
  const sim::Time dt = static_cast<sim::Time>(rng_.next_exponential(mean_ns));
  b_.eng->after(dt, [this, idx] {
    if (b_.run_done()) return;
    const Injection& i = campaign_.injections[idx];
    if (i.index < 0 &&
        (i.target == Target::kRank || i.target == Target::kDaemon)) {
      // Uniformly random not-yet-finished victim (the paper's fault model);
      // a daemon stream hits the victim's daemon, not the rank.
      const std::vector<int> alive = b_.alive_ranks();
      if (!alive.empty()) {
        const int victim = alive[rng_.next_below(alive.size())];
        if (i.target == Target::kRank) {
          ++counts_.rank_crashes;
          b_.crash_rank(victim);
        } else {
          crash_daemon(victim, i.duration);
        }
      }
    } else {
      execute(i);  // rate streams repeat
    }
    arm_poisson(idx);
  });
}

void FaultEngine::arm_legacy_poisson() {
  const sim::Time dt =
      static_cast<sim::Time>(rng_.next_exponential(legacy_poisson_mean_ns_));
  b_.eng->after(dt, [this] {
    if (b_.run_done()) return;
    const std::vector<int> alive = b_.alive_ranks();
    if (!alive.empty()) {
      ++counts_.rank_crashes;
      b_.crash_rank(alive[rng_.next_below(alive.size())]);
    }
    arm_legacy_poisson();
  });
}

void FaultEngine::crash_el_shard(int shard) {
  if (b_.directory == nullptr || b_.els.empty()) return;
  if (shard < 0 || shard >= b_.directory->total_shards()) return;
  if (b_.directory->dead(shard)) return;
  ++counts_.el_crashes;
  if (first_el_fault_ == 0) first_el_fault_ = b_.eng->now();
  trace::emit(b_.trace, b_.eng->now(), trace::Kind::kFault, trace::kElCrash,
              shard, counts_.el_crashes);
  b_.net->crash_node(b_.layout.el_node(shard));
  b_.els[static_cast<std::size_t>(shard)]->crash_service();
  b_.directory->mark_dead(shard);
  b_.eng->after(campaign_.el_failover_delay, [this, shard] { fail_over(shard); });
}

void FaultEngine::el_outage(int shard, sim::Time duration) {
  if (b_.directory == nullptr || b_.els.empty()) return;
  if (shard < 0 || shard >= b_.directory->total_shards()) return;
  if (b_.directory->dead(shard)) return;
  ++counts_.el_outages;
  if (first_el_fault_ == 0) first_el_fault_ = b_.eng->now();
  trace::emit(b_.trace, b_.eng->now(), trace::Kind::kFault, trace::kElOutage,
              shard, static_cast<std::uint64_t>(duration));
  in_outage_[static_cast<std::size_t>(shard)] = 1;
  b_.net->crash_node(b_.layout.el_node(shard));
  b_.els[static_cast<std::size_t>(shard)]->crash_service();
  b_.directory->mark_dead(shard);
  b_.eng->after(duration, [this, shard] {
    // Service restart on the same node: the persistent log was never lost,
    // but everything queued or in flight during the outage was — the owned
    // ranks re-persist their unacked suffix exactly like a failover.
    in_outage_[static_cast<std::size_t>(shard)] = 0;
    b_.net->restart_node(b_.layout.el_node(shard));
    b_.els[static_cast<std::size_t>(shard)]->restore_service();
    b_.directory->mark_alive(shard);
    announce_failover(b_.directory->ranks_on(shard), shard, shard);
  });
}

void FaultEngine::fail_over(int dead_shard) {
  const std::vector<int> ranks = b_.directory->ranks_on(dead_shard);
  int succ = b_.directory->pick_successor(
      dead_shard, campaign_.el_failover == ElFailover::kStandby);
  if (succ < 0) {
    // No live successor right now. A shard in a *transient* outage will be
    // back with its log intact — retry the failover rather than condemning
    // the ranks to the permanent no-EL regime for a passing blip.
    for (std::size_t s = 0; s < in_outage_.size(); ++s) {
      if (in_outage_[s] && static_cast<int>(s) != dead_shard) {
        b_.eng->after(campaign_.el_failover_delay,
                      [this, dead_shard] { fail_over(dead_shard); });
        return;
      }
    }
    // Nothing survives: those ranks are permanently in the no-EL regime.
    b_.directory->mark_abandoned(dead_shard);
    announce_failover(ranks, dead_shard, -1);
    return;
  }
  if (!successor_reachable(succ, ranks)) {
    // The chosen successor is alive but behind a cut from the clients it
    // must serve: mounting now would strand their resubmissions and
    // recovery fetches at the fabric. Prefer any other live shard every
    // client reaches; failing that, retry into the heal.
    int alt = -1;
    for (int s = 0; s < b_.directory->total_shards(); ++s) {
      if (s != dead_shard && !b_.directory->dead(s) &&
          successor_reachable(s, ranks)) {
        alt = s;
        break;
      }
    }
    if (alt < 0) {
      b_.eng->after(campaign_.el_failover_delay,
                    [this, dead_shard] { fail_over(dead_shard); });
      return;
    }
    succ = alt;
  }
  elog::EventLogger& successor = *b_.els[static_cast<std::size_t>(succ)];
  elog::EventLogger& dead = *b_.els[static_cast<std::size_t>(dead_shard)];
  // Mount the dead shard's persistent log on the successor, then switch the
  // routing and tell the moved ranks — ordering matters: a resubmission or
  // recovery fetch must never observe the successor without the log.
  successor.mount_log(dead, ranks, [this, ranks, dead_shard, succ] {
    if (b_.directory->dead(succ)) {
      // The successor itself died while the mount was in flight (cascading
      // crash): the ranks are still homed on the dead shard — run the
      // failover again against whatever now survives.
      fail_over(dead_shard);
      return;
    }
    b_.directory->rehome(dead_shard, succ);
    ++counts_.el_failovers;
    trace::emit(b_.trace, b_.eng->now(), trace::Kind::kRecovery,
                trace::kPhaseElFailover, dead_shard,
                static_cast<std::uint64_t>(succ), ranks.size());
    announce_failover(ranks, dead_shard, succ);
  });
}

void FaultEngine::announce_failover(const std::vector<int>& ranks,
                                    int dead_shard, int successor) {
  for (const int r : ranks) {
    net::Message m;
    m.kind = net::MsgKind::kControl;
    m.tag = static_cast<std::int32_t>(mpi::CtlSub::kElFailover);
    m.arg = mpi::pack_el_failover(dead_shard, successor);
    m.dst = b_.layout.rank_node(r);
    b_.send_ctl(std::move(m));
  }
}

void FaultEngine::crash_daemon(int rank, sim::Time downtime) {
  if (rank < 0 || rank >= b_.layout.nranks) return;
  if (!b_.crash_daemon || !b_.restart_daemon) return;
  // The LIVE daemon state decides, not a latch: a rank crash ends an
  // outage early (the node restart respawns the daemon with the node), and
  // a fresh daemon fault may then strike again before the original respawn
  // timer fires.
  if (b_.daemon_is_down && b_.daemon_is_down(rank)) return;  // already down
  const std::uint32_t gen = ++daemon_gen_[static_cast<std::size_t>(rank)];
  ++counts_.daemon_crashes;
  b_.crash_daemon(rank);
  if (b_.timeline != nullptr) b_.timeline->begin_daemon(rank, b_.eng->now());
  const sim::Time dt =
      downtime > 0 ? downtime : campaign_.daemon_restart_delay;
  b_.eng->after(dt, [this, rank, gen] {
    // No run_done guard here, unlike the injection paths: the workload can
    // complete while the daemon is down (a partition heal redelivering a
    // parked completion frame, or the rank had already finished), and the
    // respawn still drains the daemon at this time — the outage record must
    // close at drain time or it reads as "still down at run end".
    // A newer outage owns the rank now; its own timer will respawn it.
    if (gen != daemon_gen_[static_cast<std::size_t>(rank)]) return;
    // -1: a rank crash in the interim restarted the whole node — the
    // node-level recovery record supersedes this outage, which stays
    // open-ended like any interrupted recovery.
    const long drained = b_.restart_daemon(rank);
    if (b_.timeline == nullptr) return;
    if (drained < 0) {
      b_.timeline->interrupt_daemon(rank);
    } else {
      b_.timeline->end_daemon(rank, b_.eng->now(),
                              static_cast<std::uint64_t>(drained));
    }
  });
}

void FaultEngine::partition(const std::vector<int>& group_a,
                            const std::vector<int>& group_b,
                            sim::Time duration, sim::Time heal_backoff,
                            const std::vector<int>& services_a,
                            const std::vector<int>& services_b) {
  ++counts_.partitions;
  std::vector<net::NodeId> a, b;
  a.reserve(group_a.size() + services_a.size());
  b.reserve(group_b.size() + services_b.size());
  for (const int r : group_a) a.push_back(b_.layout.rank_node(r));
  for (const int r : group_b) b.push_back(b_.layout.rank_node(r));
  for (const int s : services_a) {
    a.push_back(s == kCkptService ? b_.layout.ckpt_node()
                                  : b_.layout.el_node(s));
  }
  for (const int s : services_b) {
    b.push_back(s == kCkptService ? b_.layout.ckpt_node()
                                  : b_.layout.el_node(s));
  }
  b_.net->partition(a, b, duration, heal_backoff);

  // A cut EL shard is indistinguishable from a dead one to the clients it
  // can no longer reach: arm the failure detector. After the detection
  // delay, clients still cut from a live shard are re-homed onto a
  // reachable successor — the split-brain the heal later reconciles. (The
  // checkpoint server needs no detector: its frames park at the fabric and
  // clients ride the cut out on the campaign's service_retry cadence.)
  if (b_.directory == nullptr || b_.els.empty()) return;
  const sim::Time cut_at = b_.eng->now();
  const sim::Time heal_at = cut_at + duration + heal_backoff;
  const sim::Time delay = campaign_.detection_delay >= 0
                              ? campaign_.detection_delay
                              : b_.detection_delay;
  std::vector<char> seen(static_cast<std::size_t>(
                             b_.directory->total_shards()),
                         0);
  for (const std::vector<int>* g : {&services_a, &services_b}) {
    for (const int s : *g) {
      if (s == kCkptService || s >= b_.directory->total_shards()) continue;
      if (seen[static_cast<std::size_t>(s)]) continue;
      seen[static_cast<std::size_t>(s)] = 1;
      b_.eng->after(delay, [this, s, cut_at, heal_at] {
        suspect_shard(s, cut_at, heal_at);
      });
    }
  }
}

void FaultEngine::suspect_shard(int shard, sim::Time cut_at,
                                sim::Time heal_at) {
  if (b_.run_done()) return;
  if (b_.directory->dead(shard)) return;  // a real crash took over
  // Re-evaluate at fire time: the cut may have healed under the detection
  // delay (blip absorbed, nobody moves), clients may have crashed, and
  // overlapping cuts compose — reachability is the only truth.
  const net::NodeId shard_node = b_.layout.el_node(shard);
  std::vector<int> cut;
  for (const int r : b_.directory->ranks_on(shard)) {
    const net::NodeId rn = b_.layout.rank_node(r);
    if (!b_.net->node_up(rn)) continue;  // crashed rank: not a live client
    if (!b_.net->reachable(rn, shard_node)) cut.push_back(r);
  }
  if (cut.empty()) return;
  // The successor must be reachable from every client it inherits — by
  // construction it sits on the clients' side of the cut (or outside it).
  int succ = -1;
  for (int s = 0; s < b_.directory->total_shards(); ++s) {
    if (s != shard && !b_.directory->dead(s) && successor_reachable(s, cut)) {
      succ = s;
      break;
    }
  }
  if (succ < 0) return;  // nothing reachable: clients ride out the cut
  ++counts_.el_suspects;
  ++counts_.el_failovers;
  trace::emit(b_.trace, b_.eng->now(), trace::Kind::kFault, trace::kElSuspect,
              shard, cut.size(), static_cast<std::uint64_t>(succ));
  // Both shards stay live from here to the heal: the suspect keeps serving
  // whatever still reaches it, the successor takes the cut-off clients.
  // The epoch bump fences acks the suspect still emits toward moved
  // clients (parked at the fabric, redelivered after the heal).
  b_.directory->bump_epoch();
  b_.directory->rehome_ranks(cut, succ);
  elog::EventLogger& successor = *b_.els[static_cast<std::size_t>(succ)];
  successor.set_dir_epoch(b_.directory->epoch());
  // The moved clients' acked prefix lives only in the suspect's log until
  // the merge: recovery reads for them wait for it.
  successor.defer_recovery(cut);
  const int rec =
      b_.timeline != nullptr
          ? b_.timeline->begin_reconcile(shard, succ,
                                         static_cast<int>(cut.size()), cut_at,
                                         b_.eng->now())
          : -1;
  announce_failover(cut, shard, succ);
  b_.eng->at(heal_at, [this, shard, succ, cut, rec] {
    reconcile(shard, succ, cut, rec);
  });
}

void FaultEngine::reconcile(int stale_shard, int successor,
                            std::vector<int> ranks, int record_idx) {
  elog::EventLogger& succ = *b_.els[static_cast<std::size_t>(successor)];
  if (b_.directory->dead(successor)) return;  // crash failover re-homes again
  if (b_.directory->dead(stale_shard)) {
    // The suspect really died during the split: the shard-crash failover
    // mounts its whole persistent log, superseding this merge.
    succ.clear_deferred(ranks);
    return;
  }
  const sim::Time heal_at = b_.eng->now();
  trace::emit(b_.trace, heal_at, trace::Kind::kFault, trace::kPartitionHeal,
              stale_shard, ranks.size(), static_cast<std::uint64_t>(successor));
  succ.reconcile_from(
      *b_.els[static_cast<std::size_t>(stale_shard)], ranks,
      [this, successor, ranks, record_idx,
       heal_at](const elog::EventLogger::ReconcileResult& res) {
        b_.els[static_cast<std::size_t>(successor)]->clear_deferred(ranks);
        ++counts_.el_reconciles;
        if (b_.timeline != nullptr) {
          b_.timeline->end_reconcile(record_idx, heal_at, b_.eng->now(),
                                     res.merged, res.duplicates,
                                     res.first_dup_rank, res.first_dup_seq);
        }
      });
}

bool FaultEngine::successor_reachable(int succ,
                                      const std::vector<int>& ranks) const {
  const net::NodeId sn = b_.layout.el_node(succ);
  for (const int r : ranks) {
    const net::NodeId rn = b_.layout.rank_node(r);
    if (!b_.net->node_up(rn)) continue;  // crashed: will fetch after restart
    if (!b_.net->reachable(rn, sn)) return false;
  }
  return b_.net->node_up(sn);
}

void FaultEngine::ckpt_outage(sim::Time duration) {
  ++counts_.ckpt_outages;
  trace::emit(b_.trace, b_.eng->now(), trace::Kind::kFault, trace::kCkptOutage,
              -1, static_cast<std::uint64_t>(duration));
  // Service outage only: committed images are on disk and survive; clients
  // retransmit unacked store/fetch requests until the node returns.
  b_.net->crash_node(b_.layout.ckpt_node());
  b_.eng->after(duration, [this] {
    b_.net->restart_node(b_.layout.ckpt_node());
  });
}

void FaultEngine::link_fault(int rank, Action action, sim::Time magnitude,
                             sim::Time duration) {
  if (rank < 0 || rank >= b_.layout.nranks) return;
  ++counts_.link_faults;
  const net::NodeId node = b_.layout.rank_node(rank);
  if (action == Action::kDropWindow) {
    b_.net->perturb_drop(node, duration, magnitude);
  } else {
    b_.net->perturb_latency(node, magnitude, duration);
  }
}

}  // namespace mpiv::fault
