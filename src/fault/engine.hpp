// FaultEngine — owns a declarative fault Campaign and sequences it against
// a running cluster.
//
// The engine is the single place failures enter the simulation:
//  - timed and Poisson rank crashes go through the dispatcher's serialized
//    fault path (exactly the plumbing the pre-engine Cluster had inline),
//  - Event Logger shard crashes/outages drive the elog failover machinery
//    (service down -> detection -> successor mounts the persistent log ->
//    directory re-home -> re-homed ranks re-persist their unacked suffix),
//  - checkpoint-server outages toggle the service node (the disk persists;
//    clients ride it out with retransmits),
//  - link faults perturb the network (latency spikes, drop-with-retransmit
//    windows).
// Event-triggered injections ("kill rank 3 on its 5th checkpoint", "crash
// shard 0 once N determinants are stored") arrive through the
// ftapi::FaultObserver hooks the cluster wires into the rank runtimes and
// EL shards.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "elog/el_directory.hpp"
#include "fault/campaign.hpp"
#include "fault/timeline.hpp"
#include "ftapi/services.hpp"
#include "net/network.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace mpiv::elog {
class EventLogger;
}

namespace mpiv::fault {

class FaultEngine final : public ftapi::FaultObserver {
 public:
  /// Everything the engine acts on, wired by runtime::Cluster. The rank
  /// path goes through callbacks so the engine stays below the runtime
  /// layer.
  struct Bindings {
    sim::Engine* eng = nullptr;
    net::Network* net = nullptr;
    ftapi::NodeLayout layout{};
    elog::ElDirectory* directory = nullptr;      // null when EL disabled
    std::vector<elog::EventLogger*> els;         // all shards incl. standby
    std::function<void(int)> crash_rank;         // dispatcher serialized path
    std::function<std::vector<int>()> alive_ranks;
    std::function<bool()> run_done;
    std::function<void(net::Message&&)> send_ctl;  // from the dispatcher node
    /// Daemon failure domain (RankRuntime::daemon_crash / daemon_restart /
    /// daemon_down; restart returns -1 when a rank crash superseded the
    /// outage — the node restart respawned the daemon early).
    std::function<void(int)> crash_daemon;
    std::function<long(int)> restart_daemon;
    std::function<bool(int)> daemon_is_down;
    /// Daemon outage records land here (null = no timeline).
    RecoveryTimeline* timeline = nullptr;
    /// The cluster's engine-side trace lane (null = tracing off).
    trace::Lane* trace = nullptr;
    /// Cluster-level failure-detection delay: the default suspicion window
    /// for a service cut when the campaign does not override it.
    sim::Time detection_delay = 0;
  };

  FaultEngine(Campaign campaign, std::uint64_t seed, Bindings b);

  /// Schedules the timed and stochastic injections plus a legacy
  /// deterministic fault plan and Poisson rate (the pre-engine
  /// ClusterConfig surface). Call once, before the run starts.
  void arm(const std::vector<std::pair<sim::Time, int>>& legacy_faults,
           double legacy_rate_per_minute);

  // --- execution-event triggers (ftapi::FaultObserver) ---------------------
  void on_rank_checkpoint(int rank, std::uint64_t completed) override;
  void on_el_stored(int shard, std::uint64_t stored) override;

  // --- direct injection (benches/tests may drive the engine manually) -----
  void crash_el_shard(int shard);
  void el_outage(int shard, sim::Time duration);
  void ckpt_outage(sim::Time duration);
  void link_fault(int rank, Action action, sim::Time magnitude,
                  sim::Time duration);
  /// Kills rank `rank`'s communication daemon; the dispatcher respawns it
  /// `downtime` later (0 = the campaign's daemon_restart_delay). No-op on a
  /// daemon already down.
  void crash_daemon(int rank, sim::Time downtime = 0);
  /// Opens a partition window between the two groups. Each side may name
  /// service endpoints (EL shards by id, kCkptService for the checkpoint
  /// server) alongside its ranks; cutting a serving EL shard from clients
  /// arms the suspicion -> split-brain -> heal-time reconcile machinery.
  void partition(const std::vector<int>& group_a,
                 const std::vector<int>& group_b, sim::Time duration,
                 sim::Time heal_backoff,
                 const std::vector<int>& services_a = {},
                 const std::vector<int>& services_b = {});

  const Campaign& campaign() const { return campaign_; }
  const FaultCounts& counts() const { return counts_; }
  /// Time of the first EL shard loss (0 = none): the piggyback-regrowth
  /// reference point. The pointer form is stable for the lifetime of the
  /// engine (RankHooks::el_fault_at).
  sim::Time first_el_fault() const { return first_el_fault_; }
  const sim::Time* first_el_fault_ptr() const { return &first_el_fault_; }

 private:
  void fire(std::size_t idx);
  void execute(const Injection& inj);
  void trigger_async(std::size_t idx);
  void arm_poisson(std::size_t idx);
  void arm_legacy_poisson();
  void fail_over(int dead_shard);
  void announce_failover(const std::vector<int>& ranks, int dead_shard,
                         int successor);
  /// True when every live moved rank can reach shard `succ` right now.
  bool successor_reachable(int succ, const std::vector<int>& ranks) const;
  /// Detection-delay check behind a service cut: still-unreachable clients
  /// of a live shard are re-homed onto a reachable successor (split-brain).
  void suspect_shard(int shard, sim::Time cut_at, sim::Time heal_at);
  /// Heal-time merge of the stale shard's live log into the successor's.
  void reconcile(int stale_shard, int successor, std::vector<int> ranks,
                 int record_idx);

  Campaign campaign_;
  Bindings b_;
  util::Rng rng_;
  std::vector<char> fired_;      // one-shot latch per injection
  std::vector<char> in_outage_;  // per shard: down transiently, will return
  /// Per rank: daemon-outage generation. A rank crash can end an outage
  /// early (the node restart respawns the daemon), so the respawn timer
  /// captures its generation and only acts if no newer outage started —
  /// the live daemon state (Bindings::daemon_is_down), not this counter,
  /// decides whether a new injection may fire.
  std::vector<std::uint32_t> daemon_gen_;
  FaultCounts counts_;
  sim::Time first_el_fault_ = 0;
  double legacy_poisson_mean_ns_ = 0;
};

}  // namespace mpiv::fault
