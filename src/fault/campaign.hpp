// Declarative fault campaigns — the input language of the fault-injection
// engine (paper §V-VI context: the evaluation's single pre-scheduled crash
// generalized to every failure the architecture can absorb).
//
// A Campaign is a list of Injections. Each injection names a target (a
// compute rank, an Event Logger shard, the checkpoint server, or a network
// link), a trigger (a wall-clock time, a seeded Poisson process, or an
// execution event such as "the victim's Nth checkpoint commit" / "N
// determinants stored at the shard") and an action (permanent crash,
// transient outage, latency spike, drop-with-retransmit window).
// Injections may overlap and cascade; the FaultEngine sequences them
// against the simulated cluster.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mpiv::fault {

enum class Target : std::uint8_t {
  kRank,        // a compute rank (MPI process + daemon die together)
  kDaemon,      // only the rank's communication daemon (the app survives,
                // blocked, until the dispatcher respawns the daemon)
  kElShard,     // one Event Logger shard
  kCkptServer,  // the checkpoint server (service outage; disk persists)
  kLink,        // a rank's network link (NIC-side perturbation)
  kFabric,      // the switch itself (partial partitions between rank sets)
};

enum class Trigger : std::uint8_t {
  kAt,            // fire at absolute simulated time `at`
  kRate,          // seeded Poisson process at `rate_per_minute`
  kOnCheckpoint,  // fire when the target rank commits its `nth` checkpoint
  kOnElStored,    // fire when the shard has stored `nth` determinants
};

enum class Action : std::uint8_t {
  kCrash,         // permanent loss (ranks recover via restart; EL via
                  // failover; daemons via dispatcher respawn)
  kOutage,        // transient: service down for `duration`, then back
  kLatencySpike,  // +`magnitude` latency on the link for `duration`
  kDropWindow,    // frames toward the link held for `duration`, then
                  // retransmitted after `magnitude` backoff (TCP-style)
  kPartition,     // group_a <-> group_b mutually unreachable for `duration`;
                  // crossing frames held, redelivered `magnitude` after heal
};

struct Injection {
  Target target = Target::kRank;
  int index = 0;  // rank id / shard id / link's rank id (kCkptServer /
                  // kFabric: unused)

  Trigger trigger = Trigger::kAt;
  sim::Time at = 0;              // kAt
  double rate_per_minute = 0.0;  // kRate; index < 0 picks a random live rank
  std::uint64_t nth = 1;         // kOnCheckpoint / kOnElStored threshold

  Action action = Action::kCrash;
  sim::Time duration = 0;   // kOutage / kLatencySpike / kDropWindow /
                            // kPartition window; kDaemon crash: optional
                            // per-injection downtime (0 = campaign default)
  sim::Time magnitude = 0;  // kLatencySpike extra latency / kDropWindow and
                            // kPartition heal backoff

  // kPartition only: the two mutually unreachable rank sets.
  std::vector<int> group_a;
  std::vector<int> group_b;
  // kPartition only: service endpoints cut alongside the ranks. Values
  // >= 0 name an Event Logger shard (serving or standby); kCkptService
  // names the checkpoint server. Empty on rank-only partitions.
  std::vector<int> services_a;
  std::vector<int> services_b;

  bool cuts_services() const {
    return !services_a.empty() || !services_b.empty();
  }
};

/// Sentinel inside Injection::services_a/b: the checkpoint server.
inline constexpr int kCkptService = -1;

/// What the engine does with a dead Event Logger shard.
enum class ElFailover : std::uint8_t {
  kReassign,  // surviving serving shard mounts the log and absorbs the ranks
  kStandby,   // a provisioned cold standby shard takes over (falls back to
              // reassign when no standby is available)
};

struct Campaign {
  std::vector<Injection> injections;

  ElFailover el_failover = ElFailover::kReassign;
  /// Delay between a shard crash and the successor serving its ranks
  /// (detection + log mount initiation).
  sim::Time el_failover_delay = 25 * sim::kMillisecond;
  /// Delay between a daemon crash and the dispatcher's respawned daemon
  /// serving the node again (failure detection + process restart +
  /// reconnect). Per-injection `duration` overrides it when > 0.
  sim::Time daemon_restart_delay = 40 * sim::kMillisecond;
  /// Client-side retransmit interval for unacknowledged checkpoint-server
  /// and Event Logger requests. Armed only while a campaign is active so
  /// fault-free runs schedule no extra events.
  sim::Time service_retry = 500 * sim::kMillisecond;
  /// How long a service cut must persist before the directory declares the
  /// cut-off shard suspect and fails its unreachable clients over to a
  /// reachable successor (the split-brain trigger). -1 inherits the
  /// cluster-level detection_delay used for rank-crash detection.
  sim::Time detection_delay = -1;
  /// Mixed into the engine's stochastic streams so fault schedules sweep
  /// independently of the workload seed.
  std::uint64_t seed_salt = 0;

  bool empty() const { return injections.empty(); }
  bool targets_el() const {
    for (const Injection& i : injections) {
      if (i.target == Target::kElShard) return true;
    }
    return false;
  }
};

/// Per-run tally of what the engine actually injected (ClusterReport).
struct FaultCounts {
  std::uint64_t rank_crashes = 0;
  std::uint64_t daemon_crashes = 0;
  std::uint64_t el_crashes = 0;
  std::uint64_t el_outages = 0;
  std::uint64_t el_failovers = 0;
  std::uint64_t ckpt_outages = 0;
  std::uint64_t link_faults = 0;
  std::uint64_t partitions = 0;
  // Derived events, like el_failovers: suspected failovers fired behind a
  // service cut, and the heal-time log merges they forced.
  std::uint64_t el_suspects = 0;
  std::uint64_t el_reconciles = 0;

  std::uint64_t total() const {
    return rank_crashes + daemon_crashes + el_crashes + el_outages +
           ckpt_outages + link_faults + partitions;
  }
};

inline const char* target_name(Target t) {
  switch (t) {
    case Target::kRank: return "rank";
    case Target::kDaemon: return "daemon";
    case Target::kElShard: return "el_shard";
    case Target::kCkptServer: return "ckpt_server";
    case Target::kLink: return "link";
    case Target::kFabric: return "fabric";
  }
  return "?";
}

inline const char* el_failover_name(ElFailover f) {
  switch (f) {
    case ElFailover::kReassign: return "reassign";
    case ElFailover::kStandby: return "standby";
  }
  return "?";
}

/// Campaign sanity — the single rule set both entry points share:
/// scenario::validate reports through SpecError, runtime::Cluster through
/// MPIV_CHECK. `fail` receives one message per violation (and may throw).
template <class Fail>
void validate_campaign(const Campaign& campaign, int nranks, int total_shards,
                       bool event_logger, Fail&& fail) {
  if (campaign.detection_delay != -1 && campaign.detection_delay <= 0) {
    fail("faults.detection_delay must be positive (-1 inherits the "
         "cluster detection delay)");
  }
  for (const Injection& inj : campaign.injections) {
    switch (inj.trigger) {
      case Trigger::kAt:
        if (inj.at <= 0) fail("campaign injection scheduled at t <= 0");
        break;
      case Trigger::kRate:
        if (inj.rate_per_minute <= 0) {
          fail("campaign rate trigger needs a positive rate");
        }
        if (inj.target != Target::kRank && inj.target != Target::kDaemon) {
          fail("rate triggers target compute ranks or their daemons");
        }
        break;
      case Trigger::kOnCheckpoint:
        if (inj.target != Target::kRank || inj.nth < 1) {
          fail("checkpoint triggers kill the checkpointing rank (nth >= 1)");
        }
        break;
      case Trigger::kOnElStored:
        if (inj.target != Target::kElShard || inj.nth < 1) {
          fail("stored-count triggers crash the counting EL shard (nth >= 1)");
        }
        break;
    }
    switch (inj.target) {
      case Target::kRank:
        if (inj.index >= nranks ||
            (inj.index < 0 && inj.trigger != Trigger::kRate)) {
          fail("campaign names rank " + std::to_string(inj.index) +
               " but only ranks 0.." + std::to_string(nranks - 1) + " exist");
        }
        if (inj.action != Action::kCrash) {
          fail("rank faults are crashes (use link faults for degradation)");
        }
        break;
      case Target::kDaemon:
        if (inj.index >= nranks ||
            (inj.index < 0 && inj.trigger != Trigger::kRate)) {
          fail("campaign names the daemon of rank " +
               std::to_string(inj.index) + " but only ranks 0.." +
               std::to_string(nranks - 1) + " exist");
        }
        if (inj.action != Action::kCrash) {
          fail("daemon faults are crashes (the dispatcher respawns the "
               "daemon after the restart delay)");
        }
        if (inj.duration < 0) {
          fail("daemon downtime override must be >= 0");
        }
        break;
      case Target::kElShard:
        if (!event_logger) {
          fail("campaign crashes an EL shard but the variant disables the "
               "event logger");
        }
        if (inj.index < 0 || inj.index >= total_shards) {
          fail("campaign names EL shard " + std::to_string(inj.index) +
               " but only shards 0.." + std::to_string(total_shards - 1) +
               " exist");
        }
        if (inj.action != Action::kCrash && inj.action != Action::kOutage) {
          fail("EL shard faults are crashes or outages");
        }
        if (inj.action == Action::kOutage && inj.duration <= 0) {
          fail("EL outage needs a positive duration");
        }
        if (inj.action == Action::kCrash && total_shards < 2) {
          fail("a permanent EL shard crash needs a failover target — add "
               "el_shards or el_standby, or use el_outage");
        }
        break;
      case Target::kCkptServer:
        if (inj.action != Action::kOutage || inj.duration <= 0) {
          fail("checkpoint-server faults are outages with a duration (the "
               "image store is persistent)");
        }
        break;
      case Target::kLink:
        if (inj.index < 0 || inj.index >= nranks) {
          fail("campaign perturbs the link of rank " +
               std::to_string(inj.index) + " but only ranks 0.." +
               std::to_string(nranks - 1) + " exist");
        }
        if (inj.action != Action::kLatencySpike &&
            inj.action != Action::kDropWindow) {
          fail("link faults are latency spikes or drop windows");
        }
        if (inj.duration <= 0) fail("link faults need a positive duration");
        if (inj.action == Action::kLatencySpike && inj.magnitude <= 0) {
          fail("latency spikes need a positive magnitude");
        }
        break;
      case Target::kFabric: {
        if (inj.action != Action::kPartition) {
          fail("fabric faults are partitions");
        }
        if (inj.trigger != Trigger::kAt) {
          fail("partitions are timed (trigger = at)");
        }
        if (inj.duration <= 0) fail("partitions need a positive duration");
        if (inj.group_a.empty() + inj.services_a.empty() == 2 ||
            inj.group_b.empty() + inj.services_b.empty() == 2) {
          fail("a partition needs two non-empty groups (ranks or services)");
        }
        for (const std::vector<int>* g : {&inj.group_a, &inj.group_b}) {
          for (const int r : *g) {
            if (r < 0 || r >= nranks) {
              fail("partition group names rank " + std::to_string(r) +
                   " but only ranks 0.." + std::to_string(nranks - 1) +
                   " exist");
            }
          }
        }
        for (const std::vector<int>* g : {&inj.services_a, &inj.services_b}) {
          for (const int s : *g) {
            if (s == kCkptService) continue;
            if (!event_logger) {
              fail("partition group cuts an EL shard but the variant "
                   "disables the event logger");
            } else if (s < 0 || s >= total_shards) {
              fail("partition group names EL shard " + std::to_string(s) +
                   " but only shards 0.." + std::to_string(total_shards - 1) +
                   " exist");
            }
          }
        }
        for (const int a : inj.group_a) {
          for (const int b : inj.group_b) {
            if (a == b) {
              fail("rank " + std::to_string(a) +
                   " appears on both sides of a partition");
            }
          }
        }
        for (const int a : inj.services_a) {
          for (const int b : inj.services_b) {
            if (a == b) {
              fail(std::string(a == kCkptService
                                   ? "the checkpoint server"
                                   : "EL shard " + std::to_string(a)) +
                   " appears on both sides of a partition");
            }
          }
        }
        break;
      }
    }
  }
}

}  // namespace mpiv::fault
