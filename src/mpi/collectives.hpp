// Collective operations implemented over point-to-point messages, following
// the MPICH 1.2.5 algorithms (binomial bcast/reduce, dissemination barrier,
// pairwise alltoall, ring allgather). Building collectives on p2p means the
// fault-tolerance protocols cover them with no extra machinery — exactly the
// MPICH-V situation.
//
// Verification model: message "content" is a 64-bit checksum word; reduce
// combines with wrapping addition, so workloads can verify that a recovered
// execution produced the same numbers as a fault-free one.
#pragma once

#include <cstdint>

#include "mpi/comm.hpp"

namespace mpiv::mpi {

/// Collective tags live above this base; each instance derives its tags from
/// the comm's collective sequence number so instances never cross-match.
constexpr int kCollTagBase = 1 << 20;

sim::Task<void> barrier(Comm& c);

/// Broadcast `bytes` from `root`; every rank returns root's `check` word.
sim::Task<std::uint64_t> bcast(Comm& c, int root, std::uint64_t bytes,
                               std::uint64_t check);

/// Reduce (wrapping sum of `contrib`) to `root`; root returns the total,
/// other ranks return 0.
sim::Task<std::uint64_t> reduce(Comm& c, int root, std::uint64_t bytes,
                                std::uint64_t contrib);

/// Allreduce = reduce to 0 + bcast (the MPICH-1 implementation).
sim::Task<std::uint64_t> allreduce(Comm& c, std::uint64_t bytes,
                                   std::uint64_t contrib);

/// Pairwise-exchange alltoall: every rank sends `bytes_per_pair` to every
/// other rank; returns the wrapping sum of all received check words plus its
/// own contribution.
sim::Task<std::uint64_t> alltoall(Comm& c, std::uint64_t bytes_per_pair,
                                  std::uint64_t contrib);

/// Ring allgather of per-rank blocks of `bytes_per_rank`; returns the
/// wrapping sum of all ranks' contributions.
sim::Task<std::uint64_t> allgather(Comm& c, std::uint64_t bytes_per_rank,
                                   std::uint64_t contrib);

}  // namespace mpiv::mpi
