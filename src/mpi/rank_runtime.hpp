// Per-rank MPI runtime: the generic MPICH-V subsystem of the paper.
//
// One RankRuntime per MPI process. It owns the node's communication daemon,
// implements the Comm interface for application coroutines, runs message
// matching with determinant capture, and orchestrates checkpoint/restart:
//
//   app coroutine  <->  RankRuntime (matching, ssn/rsn, dedup, replay)
//                              |        \ hooks (ftapi::VProtocol)
//                         net::Daemon  <-> net::Network
//
// Crash/recovery protocol (message logging):
//   1. dispatcher calls crash(): the coroutine frame dies mid-operation,
//      the network drops in-flight frames toward the node;
//   2. restart(): new incarnation fetches the checkpoint image, restores
//      matching + protocol state, asks the protocol to collect the
//      determinants to replay (Event Logger and/or survivors) and to
//      trigger payload resends;
//   3. matching enters replay mode: reception k only matches the message
//      named by determinant k; when determinants run out, matching is live
//      again and execution has provably passed the pre-crash state that the
//      rest of the system observed.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "elog/el_directory.hpp"
#include "fault/timeline.hpp"
#include "ftapi/services.hpp"
#include "ftapi/vprotocol.hpp"
#include "mpi/comm.hpp"
#include "mpi/matching.hpp"
#include "net/daemon.hpp"
#include "net/network.hpp"
#include "sim/sync.hpp"
#include "trace/trace.hpp"
#include "util/slab.hpp"

namespace mpiv::mpi {

/// Optional cluster-level attachments (fault-injection support). All null /
/// zero by default: a hook-less runtime behaves exactly like the pre-fault
/// engine one, event for event.
struct RankHooks {
  const elog::ElDirectory* el_directory = nullptr;  // live rank -> shard map
  ftapi::FaultObserver* observer = nullptr;         // checkpoint triggers
  fault::RecoveryTimeline* timeline = nullptr;      // per-phase recovery marks
  /// Time of the first EL fault (engine-owned, 0 until one happens): gates
  /// the post-fault piggyback-regrowth peaks in RankStats.
  const sim::Time* el_fault_at = nullptr;
  /// > 0: retransmit unacked checkpoint-server requests at this interval
  /// (survives checkpoint-server outages; also handed to the EL client).
  sim::Time service_retry = 0;
  /// Cluster trace sink (null = tracing disabled); the runtime records into
  /// its own rank lane and shares that lane with the protocol + daemon.
  trace::TraceSink* trace = nullptr;
};

/// Control-frame subtypes (carried in Message.tag of kControl frames).
enum class CtlSub : std::int32_t {
  kCkptRequest = 1,  // checkpoint scheduler -> rank
  kCkptNotify = 2,   // rank -> peers: sender-log GC notice (arg = arr ssn)
  kElGc = 3,         // rank -> EL: prune my determinants with seq <= arg
  kAppDone = 4,      // rank -> dispatcher
  kRecoveryDone = 5, // rank -> dispatcher: determinant collection finished
  kElShardClock = 6, // EL shard -> EL shard: stable-clock array exchange
  kElFailover = 7,   // fault engine -> re-homed rank: arg packs the dead
                     // shard (high 32) and the successor (low 32, ~0 = none)
  kProtocol = 16,    // >= kProtocol: owned by the fault-tolerance protocol
};

/// Packs/unpacks the kElFailover control word.
inline std::uint64_t pack_el_failover(int dead_shard, int successor) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dead_shard))
          << 32) |
         static_cast<std::uint32_t>(successor);
}
inline int el_failover_dead(std::uint64_t arg) {
  return static_cast<int>(static_cast<std::int32_t>(arg >> 32));
}
inline int el_failover_successor(std::uint64_t arg) {
  return static_cast<int>(static_cast<std::int32_t>(arg & 0xffffffffu));
}

class RankRuntime final : public Comm, public ftapi::ICheckpointOps {
 public:
  RankRuntime(sim::Engine& eng, net::Network& net, const ftapi::NodeLayout& layout,
              int rank, net::ChannelKind channel,
              std::unique_ptr<ftapi::VProtocol> proto, ftapi::RankStats* stats,
              std::uint64_t seed, RankHooks hooks = {});
  ~RankRuntime() override;

  // --- lifecycle (driven by the dispatcher) --------------------------------
  void set_process(sim::Process* p) { proc_ = p; }
  sim::Process* process() const { return proc_; }
  void launch(AppFactory factory);
  /// Kills the process mid-run: coroutine frames destroyed, network epoch
  /// bumped (in-flight frames dropped), volatile state lost.
  void crash();
  /// Starts a new incarnation that recovers and re-runs the application.
  /// `image_version` selects the checkpoint image to restore (0 = latest);
  /// coordinated rollback passes the last globally-complete snapshot.
  void restart(AppFactory factory, std::uint64_t image_version = 0);
  bool app_finished() const { return app_finished_; }

  // --- replica promotion (dispatcher, RecoveryMode::kPromote) --------------
  /// A crash under the replication hybrid: the primary dies but its hot
  /// shadow holds identical state, so nothing rolls back — the node's
  /// traffic merely parks at the daemon for the switchover window.
  /// Distinct from daemon_crash(): no daemon-fault stats are charged; the
  /// stall is recorded as a PromotionRecord, not a DaemonOutageRecord.
  /// Returns false when the daemon was already down (a daemon outage in
  /// progress owns the hold — the release is then skipped too).
  bool promote_hold();
  /// The shadow is the primary: release the held traffic to it. Returns
  /// the number of drained frames.
  long promote_release();

  // --- ULFM shrink-and-repair (dispatcher, RecoveryMode::kShrink) ----------
  /// Survivor side of a communicator repair: wipe the revoked
  /// communicator's state (crash-style soft teardown, no fault record) and
  /// relaunch the application on the shrunk communicator. `survivors` maps
  /// virtual rank -> physical rank; this rank's Comm view (rank()/size()
  /// and every src/dst) speaks virtual ranks from here on.
  void shrink_relaunch(AppFactory factory, std::vector<int> survivors,
                       int victim);

  // --- daemon-process faults (fault engine) --------------------------------
  /// Kills only the communication daemon: the MPI process survives with all
  /// of its volatile state but stalls — nothing is forwarded until the
  /// dispatcher's respawned daemon reconnects (daemon_restart()). Distinct
  /// from crash(): no image fetch, no determinant collection, no replay.
  void daemon_crash();
  /// Respawned daemon serving again; drains the backed-up frames. Returns
  /// the drained count, or -1 when no daemon outage was in progress (a rank
  /// crash in the interim restarted the whole node, daemon included).
  long daemon_restart();
  bool daemon_down() const { return daemon_->daemon_down(); }

  // --- checkpoint scheduler interface ---------------------------------------
  void request_checkpoint() { ckpt_requested_ = true; }

  // --- accessors -------------------------------------------------------------
  ftapi::VProtocol& protocol() { return *proto_; }
  net::Daemon& daemon() { return *daemon_; }
  ftapi::RankStats& stats() { return *stats_; }
  std::uint64_t rsn() const { return rsn_; }
  bool replaying() const { return !replay_.empty(); }
  bool recovering() const { return recovering_; }
  // Introspection for tests and diagnostics.
  std::size_t posted_count() const { return posted_.size(); }
  std::size_t unexpected_count() const { return unexpected_.size(); }
  std::size_t replay_count() const { return replay_.size(); }
  const ftapi::Determinant* replay_head() const {
    return replay_.empty() ? nullptr : &replay_.front();
  }
  const std::deque<StoredMsg>& unexpected_queue() const { return unexpected_; }
  struct PostedInfo { int src; int tag; };
  PostedInfo posted_front() const;

  // --- Comm -------------------------------------------------------------------
  // After a ULFM shrink the application speaks virtual ranks on the
  // repaired communicator; with no shrink (survivors_ empty) virtual ==
  // physical and the translation is the identity.
  int rank() const override { return survivors_.empty() ? rank_ : vrank_; }
  int size() const override {
    return survivors_.empty() ? layout_.nranks
                              : static_cast<int>(survivors_.size());
  }
  sim::Task<void> send(int dst, int tag, std::uint64_t bytes,
                       std::uint64_t check) override;
  sim::Task<RecvResult> recv(int src, int tag) override;
  RecvHandle irecv(int src, int tag) override;
  sim::Task<RecvResult> wait_recv(RecvHandle h) override;
  sim::Task<void> compute(sim::Time cpu) override;
  sim::Task<void> compute_flops(double flops) override;
  sim::Task<void> checkpoint_site(const util::Buffer& app_state) override;
  util::BufferView restart_state() const override {
    return restart_image_ ? restart_image_->view(blob_offset_, blob_len_)
                          : util::BufferView{};
  }
  void set_logical_state_bytes(std::uint64_t bytes) override {
    logical_state_bytes_ = bytes;
  }
  util::Rng& rng() override { return rng_; }
  sim::Time now() const override { return eng_.now(); }
  std::uint64_t next_collective_seq() override { return coll_seq_++; }

  // --- ICheckpointOps -----------------------------------------------------------
  bool checkpoint_requested() const override { return ckpt_requested_; }
  void clear_checkpoint_request() override { ckpt_requested_ = false; }
  sim::Task<void> store_checkpoint(const util::Buffer& app_state,
                                   std::uint64_t version) override;

 private:
  struct PostedRecv {
    PostedRecv(sim::Engine& eng, int src, int tag)
        : src(src), tag(tag), done(eng) {}
    int src;
    int tag;
    RecvResult result;
    sim::Time deliver_cpu = 0;
    sim::OneShot done;
  };

  sim::Task<void> app_main(AppFactory factory);
  sim::Task<void> recovery_main(AppFactory factory, std::uint64_t image_version);
  sim::Task<std::optional<util::Buffer>> fetch_image(std::uint64_t image_version);
  void notify_dispatcher(CtlSub sub);

  void on_daemon_up(net::Message&& m);
  void on_app_frame(net::Message&& m);
  void accept_app_frame(net::Message&& m);  // after piggyback absorb + dedup
  void pump();
  void deliver_to(PostedRecv& pr, const StoredMsg& m);
  static bool matches(const PostedRecv& pr, const StoredMsg& m) {
    return (pr.src == kAnySource || pr.src == m.src_rank) && pr.tag == m.tag;
  }

  void serialize_matching(util::Buffer& b) const;
  void restore_matching(util::Buffer& b);
  void reset_volatile();

  /// Virtual -> physical rank on the (possibly shrunk) communicator.
  int to_physical(int v) const {
    return survivors_.empty() ? v : survivors_[static_cast<std::size_t>(v)];
  }
  /// Physical -> virtual; a physical rank outside the shrunk communicator
  /// (a stale pre-shrink frame) passes through unchanged.
  int to_virtual(int phys) const {
    if (survivors_.empty()) return phys;
    for (std::size_t i = 0; i < survivors_.size(); ++i) {
      if (survivors_[i] == phys) return static_cast<int>(i);
    }
    return phys;
  }

  sim::Engine& eng_;
  net::Network& net_;
  ftapi::NodeLayout layout_;
  int rank_;
  RankHooks hooks_;
  std::unique_ptr<net::Daemon> daemon_;
  std::unique_ptr<ftapi::VProtocol> proto_;
  ftapi::RankStats* stats_;
  sim::Process* proc_ = nullptr;
  util::Rng rng_;
  trace::Lane* tlane_ = nullptr;  // this rank's trace lane (null when off)

  // Shrunk-communicator view (ULFM repair). Empty = full communicator;
  // otherwise survivors_[v] is the physical rank at virtual rank v and
  // vrank_ is this rank's own virtual rank. Matching/ssn/arrival state
  // stays physical — only the Comm boundary translates.
  std::vector<int> survivors_;
  int vrank_ = 0;

  // Matching state (serialized into checkpoint images).
  std::uint64_t rsn_ = 0;
  std::uint64_t coll_seq_ = 0;
  std::vector<std::uint64_t> send_ssn_;  // per destination rank
  std::vector<ArrivalDedup> arr_;        // per source rank
  std::deque<StoredMsg> unexpected_;

  // Volatile state.
  std::deque<PostedRecv*> posted_;
  std::map<std::uint64_t, std::unique_ptr<PostedRecv>> pending_irecvs_;
  std::uint64_t irecv_seq_ = 0;
  std::deque<ftapi::Determinant> replay_;
  std::deque<net::Message> held_arrivals_;  // app frames arriving mid-recovery
  sim::Time absorb_free_ = 0;               // serializes piggyback parsing
  // Frames parked while their absorb CPU charge elapses. Never cleared on
  // crash: the scheduled events still fire and drain their slots.
  util::Slab<net::Message> absorb_parked_;
  bool recovering_ = false;
  bool app_finished_ = false;
  bool ckpt_requested_ = false;
  sim::Time daemon_down_since_ = 0;
  std::uint64_t logical_state_bytes_ = 1 << 20;
  std::uint64_t ckpt_version_ = 0;
  std::uint64_t ckpts_completed_ = 0;  // committed stores (trigger counter)
  // Retransmit-loop guards: a late duplicate ack/response (the server was
  // merely slow, not down) must not satisfy a future transaction.
  bool awaiting_store_ack_ = false;
  bool awaiting_fetch_ = false;

  // Checkpoint client rendezvous.
  sim::OneShot store_ack_;
  sim::OneShot fetch_done_;
  std::optional<net::Message> fetch_resp_;
  // The restored checkpoint image, retained whole so the app blob is read
  // in place through restart_state() (no copy); [blob_offset_, +blob_len_)
  // locates the app_state sub-range inside it.
  std::optional<util::Buffer> restart_image_;
  std::size_t blob_offset_ = 0;
  std::size_t blob_len_ = 0;
};

}  // namespace mpiv::mpi
