// Message-matching state: arrival dedup and the unexpected-message queue.
//
// Dedup exists because message logging re-sends: after a crash, survivors
// resend logged payloads and the restarted rank re-emits its sends; every
// app message therefore carries a per-channel send sequence number (ssn)
// and receivers drop anything they have already accepted. Rendezvous can
// reorder a large message behind later eager ones, so dedup tolerates
// out-of-order arrival (watermark + sparse set above it).
#pragma once

#include <cstdint>
#include <deque>
#include <set>

#include "net/message.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"

namespace mpiv::mpi {

class ArrivalDedup {
 public:
  /// Returns true if `ssn` is new (accept), false if duplicate (drop).
  bool accept(std::uint64_t ssn) {
    if (ssn <= watermark_) return false;
    if (!above_.insert(ssn).second) return false;
    while (!above_.empty() && *above_.begin() == watermark_ + 1) {
      ++watermark_;
      above_.erase(above_.begin());
    }
    return true;
  }

  /// Everything <= watermark has been accepted (contiguously).
  std::uint64_t watermark() const { return watermark_; }

  void serialize(util::Buffer& b) const {
    b.put_u64(watermark_);
    b.put_u32(static_cast<std::uint32_t>(above_.size()));
    for (const std::uint64_t s : above_) b.put_u64(s);
  }
  void restore(util::Buffer& b) {
    above_.clear();
    watermark_ = b.get_u64();
    const std::uint32_t n = b.get_u32();
    for (std::uint32_t i = 0; i < n; ++i) above_.insert(b.get_u64());
  }
  void reset() {
    watermark_ = 0;
    above_.clear();
  }

 private:
  std::uint64_t watermark_ = 0;
  std::set<std::uint64_t> above_;
};

/// An arrived-but-unmatched application message (piggyback already absorbed).
struct StoredMsg {
  int src_rank = -1;
  int tag = 0;
  std::uint64_t ssn = 0;
  net::Payload payload;

  void serialize(util::Buffer& b) const {
    b.put_u16(static_cast<std::uint16_t>(src_rank));
    b.put_u32(static_cast<std::uint32_t>(tag));
    b.put_u64(ssn);
    b.put_u64(payload.bytes);
    b.put_u64(payload.check);
  }
  static StoredMsg deserialize(util::Buffer& b) {
    StoredMsg m;
    m.src_rank = b.get_u16();
    m.tag = static_cast<std::int32_t>(b.get_u32());
    m.ssn = b.get_u64();
    m.payload.bytes = b.get_u64();
    m.payload.check = b.get_u64();
    return m;
  }
};

}  // namespace mpiv::mpi
