#include "mpi/collectives.hpp"

#include "util/check.hpp"

namespace mpiv::mpi {

namespace {
int coll_tag(std::uint64_t seq, int round) {
  return kCollTagBase + static_cast<int>(seq % 60000) * 32 + round;
}
}  // namespace

sim::Task<void> barrier(Comm& c) {
  const int size = c.size();
  if (size <= 1) co_return;
  const std::uint64_t seq = c.next_collective_seq();
  const int rank = c.rank();
  int round = 0;
  for (int dist = 1; dist < size; dist <<= 1, ++round) {
    const int to = (rank + dist) % size;
    const int from = (rank - dist + size) % size;
    co_await c.send(to, coll_tag(seq, round), 4, 0);
    co_await c.recv(from, coll_tag(seq, round));
  }
}

sim::Task<std::uint64_t> bcast(Comm& c, int root, std::uint64_t bytes,
                               std::uint64_t check) {
  const int size = c.size();
  MPIV_CHECK(root >= 0 && root < size, "bcast: bad root %d", root);
  if (size <= 1) co_return check;
  const std::uint64_t seq = c.next_collective_seq();
  const int rank = c.rank();
  const int relative = (rank - root + size) % size;
  std::uint64_t value = check;

  // Binomial tree: receive from the parent...
  int mask = 1;
  while (mask < size) {
    if (relative & mask) {
      const int src = (rank - mask + size) % size;
      const RecvResult r = co_await c.recv(src, coll_tag(seq, 0));
      value = r.check;
      break;
    }
    mask <<= 1;
  }
  // ...then forward to the children.
  mask >>= 1;
  while (mask > 0) {
    if (relative + mask < size) {
      const int dst = (rank + mask) % size;
      co_await c.send(dst, coll_tag(seq, 0), bytes, value);
    }
    mask >>= 1;
  }
  co_return value;
}

sim::Task<std::uint64_t> reduce(Comm& c, int root, std::uint64_t bytes,
                                std::uint64_t contrib) {
  const int size = c.size();
  MPIV_CHECK(root >= 0 && root < size, "reduce: bad root %d", root);
  if (size <= 1) co_return contrib;
  const std::uint64_t seq = c.next_collective_seq();
  const int rank = c.rank();
  const int relative = (rank - root + size) % size;
  std::uint64_t acc = contrib;

  int mask = 1;
  while (mask < size) {
    if (relative & mask) {
      const int dst = (rank - mask + size) % size;
      co_await c.send(dst, coll_tag(seq, 0), bytes, acc);
      co_return 0;
    }
    if (relative + mask < size) {
      const int src = (rank + mask) % size;
      const RecvResult r = co_await c.recv(src, coll_tag(seq, 0));
      acc += r.check;
    }
    mask <<= 1;
  }
  co_return acc;  // only the root reaches this point
}

sim::Task<std::uint64_t> allreduce(Comm& c, std::uint64_t bytes,
                                   std::uint64_t contrib) {
  const std::uint64_t total = co_await reduce(c, 0, bytes, contrib);
  co_return co_await bcast(c, 0, bytes, total);
}

sim::Task<std::uint64_t> alltoall(Comm& c, std::uint64_t bytes_per_pair,
                                  std::uint64_t contrib) {
  const int size = c.size();
  std::uint64_t acc = contrib;
  if (size <= 1) co_return acc;
  const std::uint64_t seq = c.next_collective_seq();
  const int rank = c.rank();
  for (int step = 1; step < size; ++step) {
    const int to = (rank + step) % size;
    const int from = (rank - step + size) % size;
    co_await c.send(to, coll_tag(seq, step % 30), bytes_per_pair, contrib);
    const RecvResult r = co_await c.recv(from, coll_tag(seq, step % 30));
    acc += r.check;
  }
  co_return acc;
}

sim::Task<std::uint64_t> allgather(Comm& c, std::uint64_t bytes_per_rank,
                                   std::uint64_t contrib) {
  const int size = c.size();
  std::uint64_t acc = contrib;
  if (size <= 1) co_return acc;
  const std::uint64_t seq = c.next_collective_seq();
  const int rank = c.rank();
  const int to = (rank + 1) % size;
  const int from = (rank - 1 + size) % size;
  // Ring: in step s we forward the block that originated s hops upstream.
  std::uint64_t forward = contrib;
  for (int step = 0; step < size - 1; ++step) {
    co_await c.send(to, coll_tag(seq, step % 30), bytes_per_rank, forward);
    const RecvResult r = co_await c.recv(from, coll_tag(seq, step % 30));
    acc += r.check;
    forward = r.check;
  }
  co_return acc;
}

}  // namespace mpiv::mpi
