// The application-facing communication interface (mini-MPI).
//
// Workloads are coroutines over this interface: blocking-style send/recv,
// compute charging, and cooperative checkpoint sites. `recv` with
// src == kAnySource is the nondeterministic reception that message logging
// exists to tame.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/task.hpp"
#include "sim/time.hpp"
#include "util/buffer.hpp"
#include "util/rng.hpp"

namespace mpiv::mpi {

constexpr int kAnySource = -1;

struct RecvResult {
  int src = -1;
  int tag = 0;
  std::uint64_t bytes = 0;
  std::uint64_t check = 0;  // checksum word standing in for message content
  std::uint64_t ssn = 0;
};

class Comm {
 public:
  virtual ~Comm() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Sends `bytes` of payload carrying checksum word `check` to `dst`.
  /// Completes when the message is handed to the communication daemon
  /// (buffered send semantics).
  virtual sim::Task<void> send(int dst, int tag, std::uint64_t bytes,
                               std::uint64_t check) = 0;
  /// Blocks until a matching message is delivered. `src` may be kAnySource.
  virtual sim::Task<RecvResult> recv(int src, int tag) = 0;

  /// Nonblocking receive: posts the request and returns immediately.
  /// Outstanding requests must be completed with wait_recv() before the
  /// next checkpoint site (quiescence requirement of application-assisted
  /// checkpointing). Sends are buffered (complete at daemon handoff), so an
  /// isend is just send().
  struct RecvHandle {
    std::uint64_t id = 0;
  };
  virtual RecvHandle irecv(int src, int tag) = 0;
  /// Completes a posted request and returns its message.
  virtual sim::Task<RecvResult> wait_recv(RecvHandle h) = 0;

  /// Charges `cpu` of local computation.
  virtual sim::Task<void> compute(sim::Time cpu) = 0;
  /// Charges computation for `flops` floating-point operations.
  virtual sim::Task<void> compute_flops(double flops) = 0;

  /// Cooperative checkpoint site: the fault-tolerance protocol may take a
  /// checkpoint here (or run its coordination wave). `app_state` must allow
  /// resuming the application from this exact point.
  virtual sim::Task<void> checkpoint_site(const util::Buffer& app_state) = 0;
  /// Non-empty when this incarnation restarted from a checkpoint: a view
  /// of the app_state blob to resume from (read in place inside the
  /// retained image — no copy). Valid until the next crash or restart.
  virtual util::BufferView restart_state() const = 0;
  /// Declares the logical size of the application state (beyond the blob),
  /// charged when checkpoint images move to the checkpoint server.
  virtual void set_logical_state_bytes(std::uint64_t bytes) = 0;

  /// Deterministic per-rank RNG (seeded from the cluster seed and rank;
  /// checkpoint its state in app_state if the workload uses it).
  virtual util::Rng& rng() = 0;
  virtual sim::Time now() const = 0;

  /// Monotonically increasing collective-operation sequence number,
  /// identical across ranks and preserved across restarts (used by the
  /// collective algorithms for tag isolation).
  virtual std::uint64_t next_collective_seq() = 0;
};

/// Creates (or re-creates, after a restart) the application coroutine.
using AppFactory = std::function<sim::Task<void>(Comm&)>;

}  // namespace mpiv::mpi
