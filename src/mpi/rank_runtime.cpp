#include "mpi/rank_runtime.hpp"

#include <algorithm>

namespace mpiv::mpi {

RankRuntime::RankRuntime(sim::Engine& eng, net::Network& net,
                         const ftapi::NodeLayout& layout, int rank,
                         net::ChannelKind channel,
                         std::unique_ptr<ftapi::VProtocol> proto,
                         ftapi::RankStats* stats, std::uint64_t seed,
                         RankHooks hooks)
    : eng_(eng),
      net_(net),
      layout_(layout),
      rank_(rank),
      hooks_(hooks),
      daemon_(std::make_unique<net::Daemon>(net, layout.rank_node(rank), channel)),
      proto_(std::move(proto)),
      stats_(stats),
      rng_([&] {
        std::uint64_t s = seed;
        for (int i = 0; i <= rank; ++i) util::splitmix64(s);
        return s;
      }()),
      send_ssn_(static_cast<std::size_t>(layout.nranks), 0),
      arr_(static_cast<std::size_t>(layout.nranks)),
      store_ack_(eng),
      fetch_done_(eng) {
  daemon_->attach_upper([this](net::Message&& m) { on_daemon_up(std::move(m)); });
  if (hooks_.trace != nullptr) tlane_ = hooks_.trace->rank_lane(rank_);
  daemon_->set_trace(tlane_);
  ftapi::RankServices svc;
  svc.eng = &eng_;
  svc.daemon = daemon_.get();
  svc.cost = &net_.cost();
  svc.rank = rank_;
  svc.nranks = layout_.nranks;
  svc.layout = layout_;
  svc.el_enabled = true;  // protocols that ignore the EL simply never use it
  svc.stats = stats_;
  svc.el_dir = hooks_.el_directory;
  svc.service_retry = hooks_.service_retry;
  svc.trace = tlane_;
  proto_->bind(svc);
}

RankRuntime::~RankRuntime() = default;

RankRuntime::PostedInfo RankRuntime::posted_front() const {
  if (posted_.empty()) return PostedInfo{-99, -99};
  return PostedInfo{posted_.front()->src, posted_.front()->tag};
}

// --- lifecycle ---------------------------------------------------------------

void RankRuntime::launch(AppFactory factory) {
  MPIV_CHECK(proc_ != nullptr, "rank %d has no process", rank_);
  app_finished_ = false;
  proc_->start(app_main(std::move(factory)));
}

void RankRuntime::crash() {
  MPIV_CHECK(proc_ != nullptr, "rank %d has no process", rank_);
  // Recorded here (not in the fault engine) so every crash path — campaign
  // injections and the legacy Poisson plan alike — lands on the victim lane.
  trace::emit(tlane_, eng_.now(), trace::Kind::kFault, trace::kRankCrash,
              rank_, rsn_, ckpts_completed_);
  net_.crash_node(layout_.rank_node(rank_));
  proc_->kill();
  daemon_->reset();
  reset_volatile();
  // Volatile protocol + matching state dies with the process; the
  // checkpoint image (if any) is the only persistent state.
  proto_->reset();
  rsn_ = 0;
  coll_seq_ = 0;
  std::fill(send_ssn_.begin(), send_ssn_.end(), 0);
  for (auto& a : arr_) a.reset();
  unexpected_.clear();
  restart_image_.reset();
}

void RankRuntime::restart(AppFactory factory, std::uint64_t image_version) {
  trace::emit(tlane_, eng_.now(), trace::Kind::kRecovery, trace::kPhaseRestart,
              rank_, image_version);
  net_.restart_node(layout_.rank_node(rank_));
  app_finished_ = false;
  proc_->start(recovery_main(std::move(factory), image_version));
}

void RankRuntime::daemon_crash() {
  if (daemon_->daemon_down()) return;
  daemon_->crash_daemon();
  daemon_down_since_ = eng_.now();
  ++stats_->daemon_crashes;
}

long RankRuntime::daemon_restart() {
  if (!daemon_->daemon_down()) return -1;
  stats_->daemon_down_time += eng_.now() - daemon_down_since_;
  return static_cast<long>(daemon_->restart_daemon());
}

bool RankRuntime::promote_hold() {
  // A daemon outage already owns the hold: promoting on top of it would
  // corrupt the open DaemonOutageRecord, so the switchover is absorbed
  // into that outage (the dispatcher records 0 held frames).
  if (daemon_->daemon_down()) return false;
  // The primary did die — the crash lands on the victim lane like any
  // other — but nothing below it resets: the shadow holds identical state.
  trace::emit(tlane_, eng_.now(), trace::Kind::kFault, trace::kRankCrash,
              rank_, rsn_, ckpts_completed_);
  daemon_->crash_daemon();
  return true;
}

long RankRuntime::promote_release() {
  if (!daemon_->daemon_down()) return -1;
  const long held = static_cast<long>(daemon_->restart_daemon());
  trace::emit(tlane_, eng_.now(), trace::Kind::kRecovery, trace::kPhasePromote,
              rank_, held < 0 ? 0 : static_cast<std::uint64_t>(held));
  return held;
}

void RankRuntime::shrink_relaunch(AppFactory factory,
                                  std::vector<int> survivors, int victim) {
  MPIV_CHECK(proc_ != nullptr, "rank %d has no process", rank_);
  // Crash-style soft teardown, minus the fault record: ULFM wipes the
  // revoked communicator wholesale, so no frame, match or protocol state
  // from the old world may leak into the shrunk one.
  net_.crash_node(layout_.rank_node(rank_));
  proc_->kill();
  daemon_->reset();
  reset_volatile();
  proto_->reset();
  rsn_ = 0;
  coll_seq_ = 0;
  std::fill(send_ssn_.begin(), send_ssn_.end(), 0);
  for (auto& a : arr_) a.reset();
  unexpected_.clear();
  restart_image_.reset();

  survivors_ = std::move(survivors);
  vrank_ = 0;
  for (std::size_t i = 0; i < survivors_.size(); ++i) {
    if (survivors_[i] == rank_) vrank_ = static_cast<int>(i);
  }
  ++stats_->ulfm_repairs;
  trace::emit(tlane_, eng_.now(), trace::Kind::kRecovery,
              trace::kPhaseRepairDone, victim,
              static_cast<std::uint64_t>(survivors_.size()));
  net_.restart_node(layout_.rank_node(rank_));
  app_finished_ = false;
  proc_->start(app_main(std::move(factory)));
}

void RankRuntime::reset_volatile() {
  posted_.clear();
  pending_irecvs_.clear();
  replay_.clear();
  held_arrivals_.clear();
  absorb_free_ = 0;
  recovering_ = false;
  ckpt_requested_ = false;
  store_ack_.reset();
  fetch_done_.reset();
  fetch_resp_.reset();
  awaiting_store_ack_ = false;
  awaiting_fetch_ = false;
}

sim::Task<void> RankRuntime::app_main(AppFactory factory) {
  co_await factory(*this);
  app_finished_ = true;
  notify_dispatcher(CtlSub::kAppDone);
}

void RankRuntime::notify_dispatcher(CtlSub sub) {
  net::Message m;
  m.kind = net::MsgKind::kControl;
  m.tag = static_cast<std::int32_t>(sub);
  m.src_rank = rank_;
  m.src = layout_.rank_node(rank_);
  m.dst = layout_.dispatcher_node();
  daemon_->submit_ctl(std::move(m));
}

sim::Task<std::optional<util::Buffer>> RankRuntime::fetch_image(
    std::uint64_t image_version) {
  awaiting_fetch_ = true;
  for (;;) {
    net::Message req;
    req.kind = net::MsgKind::kCkptFetchReq;
    req.arg = static_cast<std::uint64_t>(rank_);
    req.ssn = image_version;
    req.src_rank = rank_;
    req.src = layout_.rank_node(rank_);
    req.dst = layout_.ckpt_node();
    daemon_->submit_ctl(std::move(req));
    if (hooks_.service_retry <= 0) {
      co_await fetch_done_.wait();
      break;
    }
    // Retransmit loop: the checkpoint server may be mid-outage; the request
    // is idempotent and the response guard drops late duplicates.
    const sim::Time deadline = eng_.now() + hooks_.service_retry;
    eng_.at(deadline, [this] { fetch_done_.poke(); });
    while (!fetch_done_.ready() && eng_.now() < deadline) {
      co_await fetch_done_.wait_once();
    }
    if (fetch_done_.ready()) break;
  }
  awaiting_fetch_ = false;
  fetch_done_.reset();
  net::Message resp = std::move(*fetch_resp_);
  fetch_resp_.reset();
  if (resp.arg == 0) co_return std::nullopt;  // no image stored yet
  co_return std::move(resp.body);
}

sim::Task<void> RankRuntime::recovery_main(AppFactory factory,
                                            std::uint64_t image_version) {
  recovering_ = true;
  const sim::Time t_start = eng_.now();
  std::optional<util::Buffer> image = co_await fetch_image(image_version);
  if (image) {
    image->rewind();
    // Skip over the length-prefixed app blob (read later, in place, through
    // restart_state()) and restore the runtime state that follows it.
    const std::uint32_t blob_len = image->get_u32();
    const std::size_t blob_off = image->cursor();
    image->skip(blob_len);
    restore_matching(*image);
    proto_->restore(*image);
    restart_image_ = std::move(*image);
    blob_offset_ = blob_off;
    blob_len_ = blob_len;
  }
  if (hooks_.timeline != nullptr) hooks_.timeline->mark_image(rank_, eng_.now());
  trace::emit(tlane_, eng_.now(), trace::Kind::kRecovery, trace::kPhaseImage,
              rank_, rsn_, ckpt_version_);
  if (proto_->is_message_logging()) {
    const sim::Time t_events = eng_.now();
    std::vector<std::uint64_t> arr_wm(arr_.size());
    for (std::size_t s = 0; s < arr_.size(); ++s) arr_wm[s] = arr_[s].watermark();
    if (getenv("MPIV_DEBUG_RECOVERY")) {
      std::fprintf(stderr, "[dbg] rank %d restored: rsn=%llu unexpected=%zu arr_wm=[", rank_,
                   (unsigned long long)rsn_, unexpected_.size());
      for (auto w : arr_wm) std::fprintf(stderr, "%llu ", (unsigned long long)w);
      std::fprintf(stderr, "]\n");
      for (auto& u : unexpected_) std::fprintf(stderr, "[dbg]   unexp src=%d ssn=%llu tag=%d\n", u.src_rank, (unsigned long long)u.ssn, u.tag);
    }
    ftapi::DeterminantList dets = co_await proto_->recover(rsn_, arr_wm);
    stats_->recovery_collect_time += eng_.now() - t_events;

    // Keep determinants beyond the checkpoint; they must form a contiguous
    // continuation of the reception sequence (causal logging guarantees the
    // union of the EL prefix and survivors' knowledge has no holes).
    std::sort(dets.begin(), dets.end(),
              [](const ftapi::Determinant& a, const ftapi::Determinant& b) {
                return a.seq < b.seq;
              });
    replay_.clear();
    std::uint64_t expect = rsn_ + 1;
    for (const ftapi::Determinant& d : dets) {
      if (d.seq < expect) continue;  // duplicate / already covered
      MPIV_CHECK(d.seq == expect,
                 "rank %d: determinant gap at seq %llu (expected %llu)", rank_,
                 static_cast<unsigned long long>(d.seq),
                 static_cast<unsigned long long>(expect));
      replay_.push_back(d);
      ++expect;
    }
    stats_->recovery_events += replay_.size();
    if (getenv("MPIV_DEBUG_RECOVERY")) {
      std::fprintf(stderr, "[dbg] rank %d replay queue %zu: ", rank_, replay_.size());
      for (auto& d : replay_) std::fprintf(stderr, "(s%u ssn%llu) ", d.src, (unsigned long long)d.ssn);
      std::fprintf(stderr, "\n");
    }
  }
  if (hooks_.timeline != nullptr) {
    hooks_.timeline->mark_collect(rank_, eng_.now(), replay_.size());
    // Nothing to replay (coordinated rollback, or the checkpoint already
    // covers every reception): the recovery is live right here.
    if (replay_.empty()) hooks_.timeline->mark_replay_done(rank_, eng_.now());
  }
  trace::emit(tlane_, eng_.now(), trace::Kind::kRecovery, trace::kPhaseCollect,
              rank_, replay_.size());
  if (replay_.empty()) {
    trace::emit(tlane_, eng_.now(), trace::Kind::kRecovery,
                trace::kPhaseReplayDone, rank_, rsn_);
  }
  recovering_ = false;
  stats_->recovery_total_time += eng_.now() - t_start;
  notify_dispatcher(CtlSub::kRecoveryDone);
  // Process app frames that arrived while we were recovering.
  std::deque<net::Message> held;
  held.swap(held_arrivals_);
  for (net::Message& m : held) on_app_frame(std::move(m));
  co_await app_main(std::move(factory));
}

// --- Comm ----------------------------------------------------------------------

sim::Task<void> RankRuntime::send(int dst, int tag, std::uint64_t bytes,
                                  std::uint64_t check) {
  // The application speaks virtual ranks (identity when un-shrunk); the
  // wire, matching and protocol layers all stay physical.
  MPIV_CHECK(dst >= 0 && dst < size() && dst != rank(),
             "rank %d: bad send destination %d", rank(), dst);
  const int pdst = to_physical(dst);
  co_await proto_->send_gate();
  const std::uint64_t ssn = ++send_ssn_[static_cast<std::size_t>(pdst)];
  net::Payload payload{bytes, check};
  ftapi::PiggybackOut pb = proto_->on_send(pdst, ssn, payload, tag);
  ++stats_->app_msgs_sent;
  stats_->app_bytes_sent += bytes;
  stats_->pb_bytes_sent += pb.bytes.size();
  stats_->pb_events_sent += pb.events;
  stats_->pb_send_cpu += pb.stats_cpu;
  if (pb.events == 0) ++stats_->pb_empty_msgs;
  // Worst single-message piggyback: the regrowth probe for EL outages (with
  // a healthy EL the unstable suffix — and so this peak — stays small).
  stats_->pb_peak_msg_bytes =
      std::max(stats_->pb_peak_msg_bytes,
               static_cast<std::uint64_t>(pb.bytes.size()));
  stats_->pb_peak_msg_events = std::max(stats_->pb_peak_msg_events, pb.events);
  trace::emit(tlane_, eng_.now(), trace::Kind::kSend, 0, pdst, ssn,
              static_cast<std::uint64_t>(tag), check);
  if (pb.events > 0) {
    trace::emit(tlane_, eng_.now(), trace::Kind::kPiggyback, 0, pdst, ssn,
                pb.events, pb.bytes.size());
  }
  if (hooks_.el_fault_at != nullptr && *hooks_.el_fault_at > 0) {
    stats_->pb_peak_post_el_fault_bytes =
        std::max(stats_->pb_peak_post_el_fault_bytes,
                 static_cast<std::uint64_t>(pb.bytes.size()));
    stats_->pb_peak_post_el_fault_events =
        std::max(stats_->pb_peak_post_el_fault_events, pb.events);
  }

  const sim::Time handoff = daemon_->app_handoff_cost(bytes);
  if (pb.cpu + handoff > 0) co_await eng_.sleep(pb.cpu + handoff);

  net::Message m;
  m.kind = net::MsgKind::kAppData;
  m.src = layout_.rank_node(rank_);
  m.dst = layout_.rank_node(pdst);
  m.src_rank = rank_;
  m.dst_rank = pdst;
  m.tag = tag;
  m.ssn = ssn;
  m.payload = payload;
  m.body = std::move(pb.bytes);
  m.dep_shadow = std::move(pb.deps);
  daemon_->submit_app(std::move(m));
}

sim::Task<RecvResult> RankRuntime::recv(int src, int tag) {
  MPIV_CHECK(src == kAnySource || (src >= 0 && src < size()),
             "rank %d: bad recv source %d", rank(), src);
  PostedRecv pr(eng_, src == kAnySource ? kAnySource : to_physical(src), tag);
  posted_.push_back(&pr);
  pump();
  co_await pr.done.wait();
  if (pr.deliver_cpu > 0) co_await eng_.sleep(pr.deliver_cpu);
  co_return pr.result;
}

Comm::RecvHandle RankRuntime::irecv(int src, int tag) {
  MPIV_CHECK(src == kAnySource || (src >= 0 && src < size()),
             "rank %d: bad irecv source %d", rank(), src);
  auto pr = std::make_unique<PostedRecv>(
      eng_, src == kAnySource ? kAnySource : to_physical(src), tag);
  PostedRecv* p = pr.get();
  const std::uint64_t id = ++irecv_seq_;
  pending_irecvs_.emplace(id, std::move(pr));
  posted_.push_back(p);
  pump();
  return RecvHandle{id};
}

sim::Task<mpi::RecvResult> RankRuntime::wait_recv(RecvHandle h) {
  auto it = pending_irecvs_.find(h.id);
  MPIV_CHECK(it != pending_irecvs_.end(),
             "rank %d: wait on unknown/completed request %llu", rank_,
             static_cast<unsigned long long>(h.id));
  PostedRecv* p = it->second.get();
  co_await p->done.wait();
  if (p->deliver_cpu > 0) co_await eng_.sleep(p->deliver_cpu);
  const RecvResult result = p->result;
  pending_irecvs_.erase(h.id);
  co_return result;
}

sim::Task<void> RankRuntime::compute(sim::Time cpu) {
  if (cpu > 0) co_await eng_.sleep(cpu);
}

sim::Task<void> RankRuntime::compute_flops(double flops) {
  co_await compute(net_.cost().flops_time(flops));
}

sim::Task<void> RankRuntime::checkpoint_site(const util::Buffer& app_state) {
  if (replaying() || recovering_) co_return;  // no checkpoints during recovery
  co_await proto_->at_checkpoint_site(*this, app_state);
}

// --- checkpointing ---------------------------------------------------------------

sim::Task<void> RankRuntime::store_checkpoint(const util::Buffer& app_state,
                                              std::uint64_t version) {
  MPIV_CHECK(replay_.empty(), "rank %d: checkpoint during replay", rank_);
  MPIV_CHECK(pending_irecvs_.empty(),
             "rank %d: outstanding irecv at checkpoint site (complete all "
             "requests before the site)", rank_);
  ckpt_version_ = version != 0 ? version : ckpt_version_ + 1;
  util::Buffer image;
  image.put_bytes(app_state);
  serialize_matching(image);
  proto_->serialize(image);

  // Capture the GC horizon NOW: arrivals continue while the store is in
  // flight, and a notice computed later would let senders prune payloads
  // this image cannot replay.
  std::vector<std::uint64_t> wm(arr_.size());
  for (std::size_t s = 0; s < arr_.size(); ++s) wm[s] = arr_[s].watermark();
  const std::uint64_t rsn_at_image = rsn_;

  // Dumping the process image through the daemon costs a copy.
  co_await eng_.sleep(net_.cost().memcpy_time(logical_state_bytes_));

  const bool retry = hooks_.service_retry > 0;
  awaiting_store_ack_ = true;
  for (;;) {
    net::Message m;
    m.kind = net::MsgKind::kCkptStore;
    m.arg = ckpt_version_;
    m.src_rank = rank_;
    m.payload.bytes = logical_state_bytes_;  // app memory beyond protocol state
    if (retry) {
      m.body = image;  // keep a copy for resends
    } else {
      m.body = std::move(image);
    }
    m.src = layout_.rank_node(rank_);
    m.dst = layout_.ckpt_node();
    daemon_->submit_ctl(std::move(m));
    if (!retry) {
      co_await store_ack_.wait();
      break;
    }
    // Retransmit loop for checkpoint-server outages. The store transaction
    // is idempotent (same version overwrites the same image), and the ack
    // guard in on_daemon_up drops acks for any other version.
    const sim::Time deadline = eng_.now() + hooks_.service_retry;
    eng_.at(deadline, [this] { store_ack_.poke(); });
    while (!store_ack_.ready() && eng_.now() < deadline) {
      co_await store_ack_.wait_once();
    }
    if (store_ack_.ready()) break;
  }
  store_ack_.reset();
  awaiting_store_ack_ = false;
  ++ckpts_completed_;
  if (hooks_.observer != nullptr) {
    hooks_.observer->on_rank_checkpoint(rank_, ckpts_completed_);
  }
  trace::emit(tlane_, eng_.now(), trace::Kind::kCkpt, 0, rank_, ckpt_version_,
              ckpts_completed_, rsn_at_image);

  // Sender-log GC notices: receptions up to arr watermark are now covered
  // by this image, so peers may drop the corresponding logged payloads.
  for (int peer = 0; peer < layout_.nranks; ++peer) {
    if (peer == rank_) continue;
    net::Message n;
    n.kind = net::MsgKind::kControl;
    n.tag = static_cast<std::int32_t>(CtlSub::kCkptNotify);
    n.src_rank = rank_;
    n.arg = wm[static_cast<std::size_t>(peer)];
    n.src = layout_.rank_node(rank_);
    n.dst = layout_.rank_node(peer);
    daemon_->submit_ctl(std::move(n));
  }
  // The Event Logger may prune our determinants covered by the image (the
  // directory routes to our current home shard after a failover).
  net::Message gc;
  gc.kind = net::MsgKind::kControl;
  gc.tag = static_cast<std::int32_t>(CtlSub::kElGc);
  gc.src_rank = rank_;
  gc.arg = rsn_at_image;
  gc.src = layout_.rank_node(rank_);
  gc.dst = hooks_.el_directory != nullptr
               ? layout_.el_node(hooks_.el_directory->shard_of(rank_))
               : layout_.el_node_for_rank(rank_);
  daemon_->submit_ctl(std::move(gc));
}

void RankRuntime::serialize_matching(util::Buffer& b) const {
  b.put_u64(rsn_);
  b.put_u64(coll_seq_);
  b.put_u64(logical_state_bytes_);
  b.put_u64(ckpt_version_);
  for (const std::uint64_t s : send_ssn_) b.put_u64(s);
  for (const ArrivalDedup& a : arr_) a.serialize(b);
  b.put_u32(static_cast<std::uint32_t>(unexpected_.size()));
  for (const StoredMsg& m : unexpected_) m.serialize(b);
}

void RankRuntime::restore_matching(util::Buffer& b) {
  rsn_ = b.get_u64();
  coll_seq_ = b.get_u64();
  logical_state_bytes_ = b.get_u64();
  ckpt_version_ = b.get_u64();
  for (std::uint64_t& s : send_ssn_) s = b.get_u64();
  for (ArrivalDedup& a : arr_) a.restore(b);
  unexpected_.clear();
  const std::uint32_t n = b.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    unexpected_.push_back(StoredMsg::deserialize(b));
  }
}

// --- arrival path ------------------------------------------------------------------

void RankRuntime::on_daemon_up(net::Message&& m) {
  switch (m.kind) {
    case net::MsgKind::kAppData:
    case net::MsgKind::kPayloadResend:
      if (recovering_) {
        held_arrivals_.push_back(std::move(m));
        return;
      }
      on_app_frame(std::move(m));
      return;
    case net::MsgKind::kCkptStoreAck:
      // Retransmitted stores produce duplicate acks; only the ack for the
      // transaction we are awaiting counts.
      if (m.arg == ckpt_version_ && (hooks_.service_retry <= 0 || awaiting_store_ack_)) {
        store_ack_.set();
      }
      return;
    case net::MsgKind::kCkptFetchResp:
      if (hooks_.service_retry > 0 && !awaiting_fetch_) return;  // late duplicate
      fetch_resp_ = std::move(m);
      fetch_done_.set();
      return;
    case net::MsgKind::kControl: {
      const auto sub = static_cast<CtlSub>(m.tag);
      if (sub == CtlSub::kCkptRequest) {
        ckpt_requested_ = true;
        // The wave number (arg) matters to coordinated checkpointing.
        proto_->on_ctl(std::move(m));
        return;
      }
      if (sub == CtlSub::kCkptNotify) {
        proto_->on_peer_checkpoint(m.src_rank, m.arg);
        return;
      }
      proto_->on_ctl(std::move(m));
      return;
    }
    default:
      proto_->on_ctl(std::move(m));
      return;
  }
}

void RankRuntime::on_app_frame(net::Message&& m) {
  // Absorbing the piggyback costs CPU and is serialized on this rank
  // (single protocol thread), which preserves arrival order.
  const ftapi::VProtocol::PacketCost cost = proto_->on_packet(m);
  stats_->pb_recv_cpu += cost.stats_cpu;
  absorb_free_ = std::max(eng_.now(), absorb_free_) + cost.cpu;
  if (absorb_free_ > eng_.now()) {
    const std::uint32_t slot = absorb_parked_.put(std::move(m));
    eng_.at(absorb_free_,
            [this, slot] { accept_app_frame(absorb_parked_.take(slot)); });
  } else {
    accept_app_frame(std::move(m));
  }
}

void RankRuntime::accept_app_frame(net::Message&& m) {
  if (!arr_[static_cast<std::size_t>(m.src_rank)].accept(m.ssn)) {
    return;  // duplicate (recovery resend or replayed re-emission)
  }
  StoredMsg sm;
  sm.src_rank = m.src_rank;
  sm.tag = m.tag;
  sm.ssn = m.ssn;
  sm.payload = m.payload;
  unexpected_.push_back(sm);
  pump();
}

void RankRuntime::pump() {
  if (replaying()) {
    // Forced matching: reception k must consume exactly the message named
    // by determinant k, regardless of arrival interleaving.
    while (replaying() && !posted_.empty()) {
      const ftapi::Determinant& head = replay_.front();
      auto it = std::find_if(unexpected_.begin(), unexpected_.end(),
                             [&head](const StoredMsg& s) {
                               return static_cast<std::uint32_t>(s.src_rank) ==
                                          head.src &&
                                      s.ssn == head.ssn;
                             });
      if (it == unexpected_.end()) return;
      // MPI semantics: the message matches the first compatible posted
      // request in post order (several may be outstanding via irecv).
      auto pit = std::find_if(posted_.begin(), posted_.end(),
                              [&](PostedRecv* p) { return matches(*p, *it); });
      MPIV_CHECK(pit != posted_.end(),
                 "rank %d replay: determinant (src %u ssn %llu tag %d) "
                 "matches no posted recv — nondeterministic re-execution",
                 rank_, head.src, static_cast<unsigned long long>(head.ssn),
                 it->tag);
      MPIV_CHECK(rsn_ + 1 == head.seq, "rank %d replay: rsn %llu vs det %llu",
                 rank_, static_cast<unsigned long long>(rsn_),
                 static_cast<unsigned long long>(head.seq));
      PostedRecv* pr = *pit;
      const StoredMsg msg = *it;
      unexpected_.erase(it);
      posted_.erase(pit);
      replay_.pop_front();
      ++stats_->replayed_receptions;
      if (replay_.empty()) {
        // Last forced reception matched: the recovery timeline's replay
        // phase ends here and execution is live again.
        if (hooks_.timeline != nullptr) {
          hooks_.timeline->mark_replay_done(rank_, eng_.now());
        }
        trace::emit(tlane_, eng_.now(), trace::Kind::kRecovery,
                    trace::kPhaseReplayDone, rank_, rsn_ + 1);
      }
      deliver_to(*pr, msg);
    }
    return;
  }
  // Match posted requests in post order; with irecv several may be
  // outstanding, and a later request may match even when an earlier one
  // has no candidate yet.
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto pit = posted_.begin(); pit != posted_.end(); ++pit) {
      PostedRecv* pr = *pit;
      auto it = std::find_if(
          unexpected_.begin(), unexpected_.end(),
          [pr](const StoredMsg& s) { return matches(*pr, s); });
      if (it == unexpected_.end()) continue;
      const StoredMsg msg = *it;
      unexpected_.erase(it);
      posted_.erase(pit);
      deliver_to(*pr, msg);
      progress = true;
      break;  // restart: deliver_to may have changed both queues
    }
  }
}

void RankRuntime::deliver_to(PostedRecv& pr, const StoredMsg& m) {
  ++rsn_;
  ftapi::Determinant d;
  d.creator = static_cast<std::uint32_t>(rank_);
  d.seq = rsn_;
  d.src = static_cast<std::uint32_t>(m.src_rank);
  d.ssn = m.ssn;
  d.tag = m.tag;
  pr.deliver_cpu = proto_->on_deliver(d);
  trace::emit(tlane_, eng_.now(), trace::Kind::kRecvMatch, 0, m.src_rank, rsn_,
              m.ssn, m.payload.check);
  pr.result.src = to_virtual(m.src_rank);
  pr.result.tag = m.tag;
  pr.result.bytes = m.payload.bytes;
  pr.result.check = m.payload.check;
  pr.result.ssn = m.ssn;
  pr.done.set();
}

}  // namespace mpiv::mpi
