#include "replica/replica_protocol.hpp"

namespace mpiv::replica {

ReplicaProtocol::ReplicaProtocol(int sync_interval)
    : sync_interval_(sync_interval < 1 ? 1 : sync_interval) {}

ftapi::PiggybackOut ReplicaProtocol::on_send(int dst_rank, std::uint64_t ssn,
                                             const net::Payload& payload,
                                             std::int32_t tag) {
  (void)dst_rank;
  (void)ssn;
  (void)tag;
  ftapi::PiggybackOut out;
  out.cpu = svc_.cost->memcpy_time(payload.bytes);
  svc_.stats->replica_mirror_cpu += out.cpu;
  pending_sync_bytes_ += payload.bytes;
  if (++sends_since_sync_ >= sync_interval_ && svc_.nranks > 1) {
    sends_since_sync_ = 0;
    const int dst = buddy();
    net::Message m;
    m.kind = net::MsgKind::kControl;
    m.tag = static_cast<std::int32_t>(kReplicaSync);
    m.src_rank = svc_.rank;
    m.dst_rank = dst;
    m.arg = pending_sync_bytes_;
    m.payload.bytes = pending_sync_bytes_;
    ++svc_.stats->replica_sync_msgs;
    svc_.stats->replica_sync_bytes += pending_sync_bytes_;
    pending_sync_bytes_ = 0;
    svc_.send_ctl_to_rank(dst, std::move(m));
  }
  return out;
}

void ReplicaProtocol::on_ctl(net::Message&& m) {
  // Sync frames land at the buddy's shadow; the fabric and select-loop
  // costs were already paid on the way in, nothing further to account.
  (void)m;
}

sim::Task<void> ReplicaProtocol::at_checkpoint_site(ftapi::ICheckpointOps& ops,
                                                    const util::Buffer&) {
  // The hot shadow is the checkpoint: absorb scheduler requests instead of
  // shipping an image to the server.
  if (ops.checkpoint_requested()) ops.clear_checkpoint_request();
  co_return;
}

void ReplicaProtocol::reset() {
  sends_since_sync_ = 0;
  pending_sync_bytes_ = 0;
}

}  // namespace mpiv::replica
