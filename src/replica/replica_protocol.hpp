// Replication hybrid (FTHP-MPI direction, PAPERS.md): every logical rank
// runs with a hot shadow replica on the same node image. The fabric
// dual-delivers — modelled as a per-send mirror copy keeping the shadow's
// state warm plus a periodic sync frame shipping the dirty bytes to the
// buddy — so a crash never rolls anything back: the dispatcher promotes
// the shadow in place (RecoveryMode::kPromote) while this protocol prices
// what replication costs when nothing fails.
//
// What is priced, and where:
//   - mirror copy: every application send charges memcpy_time(payload) on
//     the sender's critical path (stats.replica_mirror_cpu). This is the
//     visible slice of the 2x compute — the duplicated execution itself
//     runs on the shadow's core, off the primary's critical path.
//   - sync traffic: every `sync_interval` sends, one control frame carries
//     the accumulated dirty bytes to the buddy rank (stats.replica_sync_*).
//     The frame rides the real fabric, so it pays select-loop and wire
//     costs like any other control message.
//   - checkpoints: none. The shadow IS the checkpoint, so scheduler
//     requests are absorbed (at_checkpoint_site stores no image).
//
// The crash path itself lives in runtime::Dispatcher (promotion hold /
// release on the victim's daemon) and fault::RecoveryTimeline
// (PromotionRecord) — by design this protocol has no recovery hook at
// all: that absence is the claim being measured.
#pragma once

#include "ftapi/vprotocol.hpp"

namespace mpiv::replica {

/// Control subtag of replica sync frames. Values >= 32 keep clear of
/// mpi::CtlSub (1..7, 16) and the coord marker range (16..21).
enum ReplicaSub : std::int32_t {
  kReplicaSync = 33,
};

class ReplicaProtocol final : public ftapi::VProtocol {
 public:
  /// `sync_interval` = application sends between shadow sync frames
  /// (ClusterConfig::replica_sync_interval; <= 1 means every send).
  explicit ReplicaProtocol(int sync_interval);

  const char* name() const override { return "Replica"; }

  ftapi::PiggybackOut on_send(int dst_rank, std::uint64_t ssn,
                              const net::Payload& payload,
                              std::int32_t tag) override;
  void on_ctl(net::Message&& m) override;
  sim::Task<void> at_checkpoint_site(ftapi::ICheckpointOps& ops,
                                     const util::Buffer& app_state) override;
  void reset() override;

 private:
  /// The shadow sync target: the next rank's node hosts this rank's
  /// replica, ring-style, so sync traffic spreads across the fabric.
  int buddy() const { return (svc_.rank + 1) % svc_.nranks; }

  int sync_interval_;
  int sends_since_sync_ = 0;
  std::uint64_t pending_sync_bytes_ = 0;  // dirty bytes since the last sync
};

}  // namespace mpiv::replica
