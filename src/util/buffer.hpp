// Byte buffer with little-endian primitive serialization.
//
// All protocol wire formats (determinant piggybacks, Event Logger records,
// checkpoint images) are serialized through this type so that the simulator
// counts real bytes, not estimates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace mpiv::util {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  void clear() {
    bytes_.clear();
    cursor_ = 0;
  }
  void reserve(std::size_t n) { bytes_.reserve(n); }

  // --- Writing ---------------------------------------------------------
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v) { put_raw(&v, sizeof v); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }
  void put_bytes(const Buffer& other) {
    put_u32(static_cast<std::uint32_t>(other.size()));
    put_raw(other.bytes_.data(), other.size());
  }

  // --- Reading (sequential cursor) --------------------------------------
  std::size_t cursor() const { return cursor_; }
  std::size_t remaining() const { return bytes_.size() - cursor_; }
  void rewind() { cursor_ = 0; }

  std::uint8_t get_u8() { return bytes_[take(1)]; }
  std::uint16_t get_u16() { return get_raw<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_raw<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_raw<std::uint64_t>(); }
  std::int64_t get_i64() { return get_raw<std::int64_t>(); }
  double get_f64() { return get_raw<double>(); }
  std::string get_string() {
    const std::uint32_t n = get_u32();
    const std::size_t at = take(n);
    return std::string(reinterpret_cast<const char*>(bytes_.data() + at), n);
  }
  Buffer get_bytes() {
    const std::uint32_t n = get_u32();
    const std::size_t at = take(n);
    return Buffer(
        std::vector<std::uint8_t>(bytes_.begin() + static_cast<std::ptrdiff_t>(at),
                                  bytes_.begin() + static_cast<std::ptrdiff_t>(at + n)));
  }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.bytes_ == b.bytes_;
  }

 private:
  void put_raw(const void* p, std::size_t n) {
    // resize + memcpy instead of insert: avoids a GCC 12 -Wstringop-overflow
    // false positive on scalar sources and skips the iterator dispatch.
    if (n == 0) return;  // p may be null (e.g. put_bytes of an empty Buffer)
    const std::size_t at = bytes_.size();
    bytes_.resize(at + n);
    std::memcpy(bytes_.data() + at, p, n);
  }
  template <class T>
  T get_raw() {
    T v;
    const std::size_t at = take(sizeof(T));
    std::memcpy(&v, bytes_.data() + at, sizeof(T));
    return v;
  }
  std::size_t take(std::size_t n) {
    MPIV_CHECK(cursor_ + n <= bytes_.size(),
               "buffer underrun: need %zu at %zu of %zu", n, cursor_,
               bytes_.size());
    const std::size_t at = cursor_;
    cursor_ += n;
    return at;
  }

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

}  // namespace mpiv::util
