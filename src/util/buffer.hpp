// Byte buffer with little-endian primitive serialization.
//
// All protocol wire formats (determinant piggybacks, Event Logger records,
// checkpoint images) are serialized through this type so that the simulator
// counts real bytes, not estimates.
//
// Primitives are written by memcpy of the host representation; the
// static_assert below pins the build to little-endian hosts so that the
// wire format actually is little-endian (byte-swap shims would go here if
// a big-endian port ever materializes).
//
// Reading is one implementation (`ByteReader`) shared by the two surfaces:
// `Buffer` (owning) and `BufferView` (non-owning). Parsing a sub-range — a
// piggyback inside a frame, the app blob inside a checkpoint image —
// through a view reads the parent's bytes in place instead of copying them
// out.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace mpiv::util {

static_assert(std::endian::native == std::endian::little,
              "wire formats memcpy host-order primitives and are only "
              "little-endian on little-endian hosts");

class BufferView;

/// Sequential cursor reads over Derived's `read_data()`/`read_size()`
/// byte range — the single copy of the bounds-checked take/decode logic.
template <class Derived>
class ByteReader {
 public:
  std::size_t cursor() const { return cursor_; }
  std::size_t remaining() const { return size() - cursor_; }
  void rewind() { cursor_ = 0; }
  void skip(std::size_t n) { take(n); }

  std::uint8_t get_u8() { return data()[take(1)]; }
  std::uint16_t get_u16() { return get_raw<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_raw<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_raw<std::uint64_t>(); }
  std::int64_t get_i64() { return get_raw<std::int64_t>(); }
  double get_f64() { return get_raw<double>(); }
  std::string get_string() {
    const std::uint32_t n = get_u32();
    const std::size_t at = take(n);
    return std::string(reinterpret_cast<const char*>(data() + at), n);
  }
  /// Reads a length-prefixed sub-range (put_bytes format) as a non-owning
  /// view — the parse reads this reader's bytes in place, no copy.
  inline BufferView get_view();

 protected:
  std::size_t take(std::size_t n) {
    MPIV_CHECK(cursor_ + n <= size(), "read underrun: need %zu at %zu of %zu",
               n, cursor_, size());
    const std::size_t at = cursor_;
    cursor_ += n;
    return at;
  }

  std::size_t cursor_ = 0;

 private:
  const std::uint8_t* data() const {
    return static_cast<const Derived*>(this)->read_data();
  }
  std::size_t size() const {
    return static_cast<const Derived*>(this)->read_size();
  }
  template <class T>
  T get_raw() {
    T v;
    const std::size_t at = take(sizeof(T));
    std::memcpy(&v, data() + at, sizeof(T));
    return v;
  }
};

/// Non-owning reader over a byte range; the bytes must outlive the view.
class BufferView : public ByteReader<BufferView> {
 public:
  BufferView() = default;
  BufferView(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* data() const { return data_; }

  const std::uint8_t* read_data() const { return data_; }
  std::size_t read_size() const { return size_; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

class Buffer : public ByteReader<Buffer> {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  void clear() {
    bytes_.clear();
    cursor_ = 0;
  }
  void reserve(std::size_t n) { bytes_.reserve(n); }

  const std::uint8_t* read_data() const { return bytes_.data(); }
  std::size_t read_size() const { return bytes_.size(); }

  /// Non-owning view of the whole buffer (or a sub-range) with its own
  /// cursor; valid until this buffer is mutated or destroyed.
  BufferView view() const { return BufferView(bytes_.data(), bytes_.size()); }
  BufferView view(std::size_t offset, std::size_t len) const {
    MPIV_CHECK(offset + len <= bytes_.size(), "view out of range: %zu+%zu of %zu",
               offset, len, bytes_.size());
    return BufferView(bytes_.data() + offset, len);
  }

  // --- Writing ---------------------------------------------------------
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_u16(std::uint16_t v) { put_raw(&v, sizeof v); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }
  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }
  void put_bytes(const Buffer& other) {
    put_u32(static_cast<std::uint32_t>(other.size()));
    put_raw(other.bytes_.data(), other.size());
  }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.bytes_ == b.bytes_;
  }

 private:
  void put_raw(const void* p, std::size_t n) {
    // resize + memcpy instead of insert: avoids a GCC 12 -Wstringop-overflow
    // false positive on scalar sources and skips the iterator dispatch.
    if (n == 0) return;  // p may be null (e.g. put_bytes of an empty Buffer)
    const std::size_t at = bytes_.size();
    bytes_.resize(at + n);
    std::memcpy(bytes_.data() + at, p, n);
  }

  std::vector<std::uint8_t> bytes_;
};

template <class Derived>
inline BufferView ByteReader<Derived>::get_view() {
  const std::uint32_t n = get_u32();
  const std::size_t at = take(n);
  return BufferView(data() + at, n);
}

}  // namespace mpiv::util
