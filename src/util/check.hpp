// Lightweight invariant checking for the MPIV-EL library.
//
// MPIV_CHECK is active in all build types: a violated invariant in a
// protocol simulator silently corrupts every downstream measurement, so we
// always pay the (cheap) predicate cost. MPIV_DCHECK compiles out in NDEBUG
// builds and is reserved for hot-path assertions.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mpiv::util {

[[noreturn]] void panic(const char* file, int line, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

[[noreturn]] void panic_check(const char* file, int line, const char* cond,
                              const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 4, 5)))
#endif
    ;

}  // namespace mpiv::util

#define MPIV_PANIC(...) ::mpiv::util::panic(__FILE__, __LINE__, __VA_ARGS__)

// Usage: MPIV_CHECK(cond, "context %d", x). The message is mandatory; a
// check without context is a check the next maintainer cannot act on.
#define MPIV_CHECK(cond, ...)                                                \
  do {                                                                       \
    if (!(cond)) [[unlikely]] {                                              \
      ::mpiv::util::panic_check(__FILE__, __LINE__, #cond, __VA_ARGS__);     \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define MPIV_DCHECK(cond, ...) \
  do {                         \
  } while (0)
#else
#define MPIV_DCHECK(cond, ...) MPIV_CHECK(cond, __VA_ARGS__)
#endif
