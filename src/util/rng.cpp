#include "util/rng.hpp"

#include <cmath>

#include "util/check.hpp"

namespace mpiv::util {

double Rng::next_exponential(double mean) {
  MPIV_CHECK(mean > 0.0, "exponential mean must be positive, got %f", mean);
  // 1 - u is in (0, 1], so log() never sees zero.
  const double u = next_double();
  return -mean * std::log1p(-u);
}

}  // namespace mpiv::util
