// Deterministic, seedable RNG used everywhere in the simulator.
//
// xoshiro256** with a SplitMix64 seeder: fast, high quality, and — unlike
// std::mt19937 semantics across standard libraries — bit-identical on every
// platform, which the reproducibility tests rely on.
#pragma once

#include <cstdint>

namespace mpiv::util {

/// SplitMix64 step; used to expand a single seed into a full state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x2005'04'04ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound == 0 is invalid.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed with the given mean (> 0).
  double next_exponential(double mean);

  /// Saves/restores full generator state (checkpointable).
  struct State {
    std::uint64_t s[4];
  };
  State state() const { return {{s_[0], s_[1], s_[2], s_[3]}}; }
  void restore(const State& st) {
    for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace mpiv::util
