// Sequence-indexed sliding-window container for determinant hot paths.
//
// Every per-creator store in the causal protocols (EventStore,
// AntecedenceGraph, SenderLog, the Event Logger shards) keys entries by a
// monotonically growing sequence number, holds a suffix of that sequence
// (everything below a stability watermark is pruned), and may contain holes
// below *another* holder's stable point (a sender only piggybacks its
// unstable suffix — see event_store.hpp). Those access patterns — append
// near the top, point lookup, prune a prefix — were served by
// std::map<uint64_t, T> with O(log n) node-allocating operations; this
// container replaces them with a power-of-two ring of slots over a base
// watermark:
//
//   [base+1, base+capacity]  -> slot ((seq-1) & (capacity-1)), occupancy bit
//   seq <= base              -> pruned (never stored again)
//   emplace / find / contains-> O(1), no allocation
//   prune_to(b)              -> O(slots dropped), just destroys values
//   growth                   -> amortized O(1), doubles the ring in place
//
// Iteration is in ascending sequence order (the order std::map gave), so
// serialization and recovery wire formats are byte-identical to the map
//-backed originals.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace mpiv::util {

template <class T>
class SeqWindow {
 public:
  SeqWindow() = default;

  /// Watermark: every seq <= base() has been pruned and is rejected.
  std::uint64_t base() const { return base_; }
  /// Number of occupied slots.
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Highest occupied sequence (0 when empty). Only prefixes are ever
  /// removed, so the top admission is occupied whenever anything is.
  std::uint64_t max_seq() const { return count_ > 0 ? top_ : 0; }

  bool contains(std::uint64_t seq) const { return find(seq) != nullptr; }

  const T* find(std::uint64_t seq) const {
    if (seq <= base_ || seq > top_) return nullptr;
    const Slot& s = slots_[index(seq)];
    return s.occupied ? &s.value : nullptr;
  }
  T* find(std::uint64_t seq) {
    return const_cast<T*>(static_cast<const SeqWindow*>(this)->find(seq));
  }

  /// Inserts value at `seq`. Returns false (and leaves the window unchanged)
  /// if seq is at or below the base watermark or already occupied.
  template <class... Args>
  bool emplace(std::uint64_t seq, Args&&... args) {
    if (seq <= base_) return false;
    grow_to(seq);
    Slot& s = slots_[index(seq)];
    if (seq <= top_ && s.occupied) return false;
    if (seq > top_) top_ = seq;
    s.occupied = true;
    s.value = T{std::forward<Args>(args)...};
    ++count_;
    return true;
  }

  /// Advances the base watermark to `new_base`, destroying every entry at
  /// or below it. No-op if new_base <= base(). `on_drop` sees each dropped
  /// value in ascending sequence order (for byte accounting).
  template <class Fn>
  void prune_to(std::uint64_t new_base, Fn&& on_drop) {
    if (new_base <= base_) return;
    const std::uint64_t hi = top_ < new_base ? top_ : new_base;
    for (std::uint64_t seq = base_ + 1; seq <= hi; ++seq) {
      Slot& s = slots_[index(seq)];
      if (!s.occupied) continue;
      on_drop(static_cast<const T&>(s.value));
      s.occupied = false;
      s.value = T{};
      --count_;
    }
    base_ = new_base;
    if (top_ < base_) top_ = base_;
  }
  void prune_to(std::uint64_t new_base) {
    prune_to(new_base, [](const T&) {});
  }

  /// Calls fn(seq, value) for each occupied slot with lo < seq <= hi,
  /// ascending.
  template <class Fn>
  void for_range(std::uint64_t lo, std::uint64_t hi, Fn&& fn) const {
    std::uint64_t seq = lo > base_ ? lo + 1 : base_ + 1;
    const std::uint64_t top = hi < top_ ? hi : top_;
    for (; seq <= top; ++seq) {
      const Slot& s = slots_[index(seq)];
      if (s.occupied) fn(seq, s.value);
    }
  }

  /// Calls fn(seq, value) for every occupied slot, ascending.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for_range(0, top_, std::forward<Fn>(fn));
  }

  /// Drops all entries and resets the base watermark to zero.
  void reset() {
    for (Slot& s : slots_) {
      s.occupied = false;
      s.value = T{};
    }
    base_ = top_ = 0;
    count_ = 0;
  }

 private:
  struct Slot {
    bool occupied = false;
    T value{};
  };

  std::size_t index(std::uint64_t seq) const {
    // capacity is a power of two; seq-1 keeps slot 0 for seq == 1.
    return static_cast<std::size_t>((seq - 1) & (slots_.size() - 1));
  }

  void grow_to(std::uint64_t seq) {
    MPIV_DCHECK(seq > base_, "grow below base");
    const std::uint64_t needed = seq - base_;
    if (!slots_.empty() && needed <= slots_.size()) return;
    std::size_t cap = slots_.empty() ? 16 : slots_.size() * 2;
    while (cap < needed) cap *= 2;
    std::vector<Slot> next(cap);
    // Re-home live slots: positions depend on capacity, so rehash in order.
    for (std::uint64_t s = base_ + 1; s <= top_; ++s) {
      Slot& old = slots_[index(s)];
      if (!old.occupied) continue;
      Slot& fresh = next[static_cast<std::size_t>((s - 1) & (cap - 1))];
      fresh.occupied = true;
      fresh.value = std::move(old.value);
    }
    slots_ = std::move(next);
  }

  std::vector<Slot> slots_;
  std::uint64_t base_ = 0;  // all seq <= base_ are pruned
  std::uint64_t top_ = 0;   // highest seq ever admitted (window extent)
  std::size_t count_ = 0;
};

}  // namespace mpiv::util
