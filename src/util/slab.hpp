// Recycled-slot slab: stable-index parking for in-flight objects.
//
// The simulator's hot paths park objects (messages, callbacks) inside
// scheduled events. Capturing the object in a closure forces a heap
// allocation per event (std::function's inline buffer is 16 bytes);
// parking it in a slab and capturing only {this, slot} keeps the closure
// inline and recycles the storage. Slot indices are stable; references from
// operator[] are invalidated by put() (vector growth), so finish with a
// slot before parking the next object. Freed slots are reused LIFO.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace mpiv::util {

template <class T>
class Slab {
 public:
  /// Parks a value; returns its slot index for a later take().
  std::uint32_t put(T&& v) {
    if (free_.empty()) {
      items_.push_back(std::move(v));
      return static_cast<std::uint32_t>(items_.size() - 1);
    }
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    items_[slot] = std::move(v);
    return slot;
  }

  /// Moves the value out and frees the slot. The slot keeps the moved-from
  /// husk until reuse (put() move-assigns over it).
  T take(std::uint32_t slot) {
    MPIV_DCHECK(slot < items_.size(), "bad slab slot %u", slot);
    T v = std::move(items_[slot]);
    free_.push_back(slot);
    return v;
  }

  T& operator[](std::uint32_t slot) {
    MPIV_DCHECK(slot < items_.size(), "bad slab slot %u", slot);
    return items_[slot];
  }

  /// Frees a slot without moving the value out.
  void release(std::uint32_t slot) {
    MPIV_DCHECK(slot < items_.size(), "bad slab slot %u", slot);
    items_[slot] = T{};
    free_.push_back(slot);
  }

  std::size_t in_use() const { return items_.size() - free_.size(); }

  void clear() {
    items_.clear();
    free_.clear();
  }

 private:
  std::vector<T> items_;
  std::vector<std::uint32_t> free_;
};

}  // namespace mpiv::util
