#include "util/check.hpp"

#include <cstdarg>

namespace mpiv::util {

namespace {
[[noreturn]] void vpanic(const char* file, int line, const char* prefix,
                         const char* fmt, va_list ap) {
  std::fprintf(stderr, "\n[mpiv panic] %s:%d: %s", file, line, prefix);
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}
}  // namespace

[[noreturn]] void panic(const char* file, int line, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  vpanic(file, line, "", fmt, ap);
}

[[noreturn]] void panic_check(const char* file, int line, const char* cond,
                              const char* fmt, ...) {
  std::fprintf(stderr, "\n[mpiv panic] check failed: %s\n", cond);
  va_list ap;
  va_start(ap, fmt);
  vpanic(file, line, "", fmt, ap);
}

}  // namespace mpiv::util
