// Minimal fixed-width table printer for the benchmark harness output.
//
// Every bench binary prints the same rows/series the paper reports; this
// keeps those tables aligned and greppable without pulling in a formatting
// dependency.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace mpiv::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : empty_;
        std::fprintf(out, "%c %-*s", c == 0 ? '|' : '|',
                     static_cast<int>(width[c]) + 1, s.c_str());
      }
      std::fprintf(out, "|\n");
    };
    line(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::fprintf(out, "|%s", std::string(width[c] + 3, '-').c_str());
    }
    std::fprintf(out, "|\n");
    for (const auto& row : rows_) line(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::string empty_;
};

/// printf-style helper producing a std::string cell.
inline std::string cell(const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 1, 2)))
#endif
    ;

inline std::string cell(const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  return std::string(buf);
}

}  // namespace mpiv::util
