// ULFM-style shrink-and-repair ("Fault-Aware Non-Collective Communication
// Creation and Reparation in MPI" direction, PAPERS.md): no logging, no
// checkpoint restore — when a rank dies the survivors revoke the
// communicator, run a priced agreement/repair window, and relaunch the
// workload shrunk onto the surviving ranks (outcome `completed_shrunk`).
//
// Division of labour:
//   - runtime::Dispatcher (RecoveryMode::kShrink) crashes the victim for
//     good, broadcasts revoke control frames to the survivors after the
//     detection delay, waits ClusterConfig::ulfm_repair_cost for the
//     agreement + communicator rebuild, then shrink-relaunches every
//     survivor. fault::RecoveryTimeline keeps the RepairRecord
//     (fault -> revoke -> repair-done) the reports and the family-race
//     harness assert on.
//   - mpi::RankRuntime carries the shrunk communicator view (virtual rank
//     translation) and counts stats.ulfm_repairs at relaunch.
//   - this protocol is the survivor-side endpoint: it absorbs the revoke
//     notices (stats.ulfm_revokes_seen, trace kPhaseRevoke) and otherwise
//     stays out of the send path — zero steady-state overhead is the
//     point of the family.
#pragma once

#include "ftapi/vprotocol.hpp"

namespace mpiv::ulfm {

/// Control subtag of the dispatcher's revoke broadcast. Values >= 32 keep
/// clear of mpi::CtlSub (1..7, 16) and the coord marker range (16..21).
enum UlfmSub : std::int32_t {
  kUlfmRevoke = 32,
};

class UlfmProtocol final : public ftapi::VProtocol {
 public:
  const char* name() const override { return "ULFM"; }

  void on_ctl(net::Message&& m) override;
};

}  // namespace mpiv::ulfm
