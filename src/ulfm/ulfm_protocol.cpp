#include "ulfm/ulfm_protocol.hpp"

#include "trace/trace.hpp"

namespace mpiv::ulfm {

void UlfmProtocol::on_ctl(net::Message&& m) {
  if (m.kind == net::MsgKind::kControl &&
      m.tag == static_cast<std::int32_t>(kUlfmRevoke)) {
    ++svc_.stats->ulfm_revokes_seen;
    trace::emit(svc_.trace, svc_.eng->now(), trace::Kind::kRecovery,
                trace::kPhaseRevoke, static_cast<std::int32_t>(m.arg),
                /*seq=*/0);
  }
}

}  // namespace mpiv::ulfm
