// Dynamic rank -> Event Logger shard routing.
//
// The static NodeLayout places EL shard *nodes*; this directory says which
// shard currently serves which rank. Fault-free it reproduces the layout's
// round-robin assignment over the serving shards (standby shards start
// cold, serving nobody). When a shard dies the fault engine re-homes its
// ranks onto a successor here, and every client-side lookup — determinant
// submission, recovery fetches, checkpoint GC notices — follows
// automatically. Header is dependency-free so every layer can share it.
#pragma once

#include <cstdint>
#include <vector>

namespace mpiv::elog {

class ElDirectory {
 public:
  /// `serving` shards take ranks round-robin; shards in
  /// [serving, serving + standby) start cold.
  void init(int nranks, int serving, int standby) {
    serving_ = serving;
    shard_of_.resize(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      shard_of_[static_cast<std::size_t>(r)] = serving > 0 ? r % serving : 0;
    }
    const int total = serving + standby;
    dead_.assign(static_cast<std::size_t>(total), 0);
    abandoned_.assign(static_cast<std::size_t>(total), 0);
    cold_.assign(static_cast<std::size_t>(total), 0);
    for (int s = serving; s < total; ++s) cold_[static_cast<std::size_t>(s)] = 1;
  }

  int shard_of(int rank) const {
    return shard_of_[static_cast<std::size_t>(rank)];
  }
  int total_shards() const { return static_cast<int>(dead_.size()); }
  int serving_shards() const { return serving_; }
  bool dead(int shard) const { return dead_[static_cast<std::size_t>(shard)] != 0; }
  /// True when the shard died and no successor took over its ranks: the
  /// cluster is permanently in the no-EL regime for those ranks.
  bool abandoned(int shard) const {
    return abandoned_[static_cast<std::size_t>(shard)] != 0;
  }

  void mark_dead(int shard) { dead_[static_cast<std::size_t>(shard)] = 1; }
  void mark_alive(int shard) { dead_[static_cast<std::size_t>(shard)] = 0; }
  void mark_abandoned(int shard) {
    abandoned_[static_cast<std::size_t>(shard)] = 1;
  }

  std::vector<int> ranks_on(int shard) const {
    std::vector<int> out;
    for (std::size_t r = 0; r < shard_of_.size(); ++r) {
      if (shard_of_[r] == shard) out.push_back(static_cast<int>(r));
    }
    return out;
  }

  /// Picks the failover target for `dead_shard`: with `prefer_standby`, the
  /// lowest cold live standby if any; otherwise (or as fallback) the lowest
  /// live shard that is not the dead one. Returns -1 when nothing survives.
  int pick_successor(int dead_shard, bool prefer_standby) const {
    if (prefer_standby) {
      for (int s = 0; s < total_shards(); ++s) {
        if (s != dead_shard && !dead(s) && cold_[static_cast<std::size_t>(s)]) {
          return s;
        }
      }
    }
    for (int s = 0; s < total_shards(); ++s) {
      if (s != dead_shard && !dead(s) && !cold_[static_cast<std::size_t>(s)]) {
        return s;
      }
    }
    // Last resort: any live shard (a cold standby even when reassign was
    // requested beats abandoning the ranks).
    for (int s = 0; s < total_shards(); ++s) {
      if (s != dead_shard && !dead(s)) return s;
    }
    return -1;
  }

  /// Re-homes every rank of `dead_shard` onto `successor`; the successor
  /// starts (or keeps) serving. Returns the moved ranks.
  std::vector<int> rehome(int dead_shard, int successor) {
    std::vector<int> moved;
    for (std::size_t r = 0; r < shard_of_.size(); ++r) {
      if (shard_of_[r] == dead_shard) {
        shard_of_[r] = successor;
        moved.push_back(static_cast<int>(r));
      }
    }
    cold_[static_cast<std::size_t>(successor)] = 0;
    return moved;
  }

  /// Partial re-home for suspected (not dead) shards: moves only `ranks`
  /// onto `successor`, leaving the suspect serving whatever clients still
  /// reach it — the split-brain configuration a heal later reconciles.
  void rehome_ranks(const std::vector<int>& ranks, int successor) {
    for (int r : ranks) shard_of_[static_cast<std::size_t>(r)] = successor;
    cold_[static_cast<std::size_t>(successor)] = 0;
  }

  /// Directory epoch: bumped on every suspected failover. Acks stamped with
  /// an older epoch by a shard that no longer serves the rank are fenced by
  /// the client, so nobody prunes against a minority-side watermark.
  std::uint64_t epoch() const { return epoch_; }
  void bump_epoch() { ++epoch_; }

 private:
  int serving_ = 0;
  std::uint64_t epoch_ = 0;
  std::vector<int> shard_of_;
  std::vector<char> dead_;
  std::vector<char> abandoned_;
  std::vector<char> cold_;
};

}  // namespace mpiv::elog
