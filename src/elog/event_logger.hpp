// The Event Logger (paper §IV-B.4): a single-threaded reliable server that
// stores reception determinants and acknowledges with the stable-clock
// vector — "the last event stored for each process".
//
// It is deliberately a single select-loop service with a per-event service
// cost and one 100 Mb/s NIC: when every rank streams determinants at it
// (LU, 16 ranks), its ingress and service queue saturate, acks lag, nodes
// prune later and piggybacks grow — the bottleneck the paper observes and
// proposes distributing in future work.
//
// Failure semantics (fault engine): the determinant log is on stable
// storage, the *service* is not. crash_service() models the paper's §VI
// single-point-of-failure concern — queued-but-unserviced records are lost
// (clients never see an ack and keep them piggybackable), acks stop, and a
// successor shard can later mount_log() the dead shard's committed records
// and take over its ranks through the ElDirectory.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "elog/el_directory.hpp"
#include "ftapi/determinant.hpp"
#include "ftapi/services.hpp"
#include "ftapi/stats.hpp"
#include "mpi/rank_runtime.hpp"
#include "net/service_port.hpp"
#include "trace/trace.hpp"
#include "util/seq_window.hpp"

namespace mpiv::elog {

class EventLogger {
 public:
  /// `shard` selects which subset of ranks this instance serves (paper §VI:
  /// "assigning a subset of the nodes to one Event Logger"). With more than
  /// one shard, each periodically multicasts its local stable-clock array
  /// to the others so that every ack can still carry the global view.
  /// `dir` (optional) overrides the layout's static round-robin ownership
  /// with live routing; `obs` (optional) receives store-count events for
  /// trigger-based fault injection.
  EventLogger(net::Network& net, const ftapi::NodeLayout& layout,
              ftapi::ElStats* stats, int shard = 0,
              const ElDirectory* dir = nullptr,
              ftapi::FaultObserver* obs = nullptr)
      : net_(net),
        layout_(layout),
        stats_(stats),
        shard_(shard),
        dir_(dir),
        obs_(obs),
        port_(net, layout.el_node(shard)),
        per_(static_cast<std::size_t>(layout.nranks)),
        dup_by_rank_(static_cast<std::size_t>(layout.nranks), 0),
        reconciled_by_rank_(static_cast<std::size_t>(layout.nranks), 0),
        deferred_(static_cast<std::size_t>(layout.nranks), 0) {
    net.attach(layout.el_node(shard),
               [this](net::Message&& m) { on_frame(std::move(m)); });
    if (layout_.el_count > 1) arm_exchange();
  }

  /// Period of the shard-to-shard stable-clock multicast (paper §VI).
  static constexpr sim::Time kExchangeInterval = 5 * sim::kMillisecond;

  /// Stable watermark for `creator`: every determinant with seq <= watermark
  /// is either stored (here or at the creator's shard) or covered by a
  /// checkpoint image.
  std::uint64_t stable(std::uint32_t creator) const {
    return per_[creator].contiguous;
  }
  int shard() const { return shard_; }
  /// Late-bound trigger sink (the fault engine is constructed after the
  /// shards it observes).
  void set_observer(ftapi::FaultObserver* obs) { obs_ = obs; }
  /// This shard's trace lane (null = tracing off).
  void set_trace(trace::Lane* lane) { trace_ = lane; }
  bool owns_rank(int r) const {
    return dir_ != nullptr ? dir_->shard_of(r) == shard_
                           : layout_.el_shard_for_rank(r) == shard_;
  }
  bool service_down() const { return down_; }
  std::size_t stored_count() const {
    std::size_t n = 0;
    for (const Per& p : per_) n += p.dets.size();
    return n;
  }
  /// Determinant store operations performed (trigger-threshold counter).
  std::uint64_t stored_ops() const { return stored_ops_; }
  /// Submissions accepted but not yet acked (metrics queue-depth probe;
  /// peak is tracked separately in ElStats::peak_queue).
  std::uint32_t queue_depth() const { return pending_; }
  /// Submissions from `creator` this shard dropped as duplicates of records
  /// it already held (resubmission after a failover, or a heal-time merge).
  std::uint64_t dup_submissions(int creator) const {
    return dup_by_rank_[static_cast<std::size_t>(creator)];
  }
  /// Records of `creator` a split-brain heal merged over from the stale
  /// shard's live log.
  std::uint64_t reconciled_records(int creator) const {
    return reconciled_by_rank_[static_cast<std::size_t>(creator)];
  }

  /// Directory epoch this shard believes is current; stamped into every
  /// ack so clients can fence watermarks from a superseded home. A shard
  /// behind a cut keeps its stale view — epochs propagate by assignment at
  /// failover time, never through the cut.
  void set_dir_epoch(std::uint64_t epoch) { dir_epoch_ = epoch; }
  std::uint64_t dir_epoch() const { return dir_epoch_; }

  /// Holds recovery reads for `ranks` until the pending split-brain merge
  /// commits: a moved rank's log is incomplete here (its acked prefix lives
  /// on the unreachable stale shard), so answering now would replay a hole.
  /// Clients retry on the campaign's service_retry cadence into the heal.
  void defer_recovery(const std::vector<int>& ranks) {
    for (const int r : ranks) deferred_[static_cast<std::size_t>(r)] = 1;
  }
  void clear_deferred(const std::vector<int>& ranks) {
    for (const int r : ranks) deferred_[static_cast<std::size_t>(r)] = 0;
  }

  // --- failure injection (driven by the fault engine) ----------------------
  /// Service crash: queued-but-unserviced work is lost (those clients never
  /// get an ack), the exchange loop stops. The committed log in `per_` is
  /// stable storage and survives.
  void crash_service() {
    down_ = true;
    ++svc_gen_;  // in-flight charge_then closures become inert
    pending_ = 0;
  }
  /// Transient-outage recovery: the service process is back with its log
  /// intact (the network node restart is the caller's job).
  void restore_service() {
    if (!down_) return;
    down_ = false;
    if (layout_.el_count > 1) arm_exchange();
  }
  /// Failover: mounts `dead`'s persistent determinant log for `ranks`
  /// (sequential read priced like recovery read-out), then runs `done` —
  /// the fault engine re-homes the ranks and notifies them from there.
  void mount_log(const EventLogger& dead, const std::vector<int>& ranks,
                 std::function<void()> done) {
    std::size_t to_read = 0;
    for (const int r : ranks) {
      to_read += dead.per_[static_cast<std::size_t>(r)].dets.size();
    }
    const net::CostModel& c = net_.cost();
    port_.charge_then(
        static_cast<sim::Time>(to_read) * c.el_recovery_read + c.el_ack_build,
        [this, &dead, ranks, done = std::move(done)] {
          if (down_) {
            // This shard died mid-mount: the transaction never commits.
            // The caller's completion hook re-runs the failover elsewhere.
            done();
            return;
          }
          trace::emit(trace_, net_.engine().now(), trace::Kind::kRecovery,
                      trace::kPhaseLogMounted, dead.shard_, ranks.size());
          for (const int r : ranks) {
            Per& mine = per_[static_cast<std::size_t>(r)];
            const Per& theirs = dead.per_[static_cast<std::size_t>(r)];
            // Copy the log wholesale: our `contiguous` for a never-owned
            // rank came from the clock exchange and has NO backing storage —
            // every committed determinant of the dead shard is needed for
            // recovery, including those below the exchanged watermark.
            theirs.dets.for_each(
                [&mine](std::uint64_t, const ftapi::Determinant& d) {
                  mine.dets.emplace(d.seq, d);
                });
            mine.contiguous = std::max(mine.contiguous, theirs.contiguous);
            while (mine.dets.contains(mine.contiguous + 1)) ++mine.contiguous;
          }
          done();
        });
  }

  /// Outcome of a split-brain merge, delivered to reconcile_from's `done`.
  struct ReconcileResult {
    std::uint64_t merged = 0;       // records pulled over from the stale log
    std::uint64_t duplicates = 0;   // submissions both sides had stored
    int first_dup_rank = -1;        // creator of the first duplicate dropped
    std::uint64_t first_dup_seq = 0;
  };

  /// Split-brain heal: merges `stale`'s live log for `ranks` into this
  /// shard's, keyed by (creator, seq) against the SeqWindow stores so the
  /// merge is idempotent — a record both sides hold is dropped exactly
  /// once, and the stability watermark advances only over the merged log.
  /// Unlike mount_log the other shard is alive and keeps serving its own
  /// side; only the moved ranks' records are reconciled. Priced like a
  /// failover read-out.
  void reconcile_from(const EventLogger& stale, const std::vector<int>& ranks,
                      std::function<void(const ReconcileResult&)> done) {
    std::size_t to_read = 0;
    for (const int r : ranks) {
      to_read += stale.per_[static_cast<std::size_t>(r)].dets.size();
    }
    const net::CostModel& c = net_.cost();
    port_.charge_then(
        static_cast<sim::Time>(to_read) * c.el_recovery_read + c.el_ack_build,
        [this, &stale, ranks, done = std::move(done)] {
          ReconcileResult res;
          if (down_) {
            // Successor died before the merge committed; the shard-crash
            // failover path will mount both logs instead.
            done(res);
            return;
          }
          for (const int r : ranks) {
            Per& mine = per_[static_cast<std::size_t>(r)];
            const Per& theirs = stale.per_[static_cast<std::size_t>(r)];
            theirs.dets.for_each([this, &mine, &res,
                                  r](std::uint64_t,
                                     const ftapi::Determinant& d) {
              if (d.seq <= mine.contiguous || !mine.dets.emplace(d.seq, d)) {
                ++res.duplicates;
                ++dup_by_rank_[static_cast<std::size_t>(r)];
                if (res.first_dup_rank < 0) {
                  res.first_dup_rank = r;
                  res.first_dup_seq = d.seq;
                }
                trace::emit(trace_, net_.engine().now(), trace::Kind::kRecovery,
                            trace::kPhaseDupDrop, r, d.seq, mine.contiguous);
              } else {
                ++res.merged;
                ++reconciled_by_rank_[static_cast<std::size_t>(r)];
              }
            });
            // The stale side's watermark is backed by its (now merged)
            // durable log plus checkpoint-covered prunes — both safe.
            mine.contiguous = std::max(mine.contiguous, theirs.contiguous);
            while (mine.dets.contains(mine.contiguous + 1)) ++mine.contiguous;
          }
          trace::emit(trace_, net_.engine().now(), trace::Kind::kRecovery,
                      trace::kPhaseReconcile, stale.shard_, res.merged,
                      res.duplicates);
          done(res);
        });
  }

 private:
  /// Shard storage per creator: a sequence-indexed window whose base is the
  /// checkpoint-GC floor (kElGc), holding everything received since; the
  /// `contiguous` stability watermark advances through it as gaps fill.
  struct Per {
    std::uint64_t contiguous = 0;
    util::SeqWindow<ftapi::Determinant> dets;
  };

  void on_frame(net::Message&& m) {
    if (down_) return;  // crashed service: nothing is accepted
    const net::CostModel& c = net_.cost();
    switch (m.kind) {
      case net::MsgKind::kElEvent: {
        const std::uint32_t n = m.body.get_u32();
        std::vector<ftapi::Determinant> dets;
        dets.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          dets.push_back(ftapi::Determinant::deserialize(m.body));
        }
        stats_->bytes_in += m.wire_bytes;
        const net::NodeId reply_to = m.src;
        const std::uint64_t gen = svc_gen_;
        port_.charge_then(
            static_cast<sim::Time>(n) * c.el_service,
            [this, dets = std::move(dets), reply_to, gen] {
              if (gen != svc_gen_) return;  // queue entry died with the service
              for (const ftapi::Determinant& d : dets) store(d);
              ack(reply_to);
              if (obs_ != nullptr) obs_->on_el_stored(shard_, stored_ops_);
            });
        ++pending_;
        stats_->peak_queue = std::max(stats_->peak_queue, pending_);
        return;
      }
      case net::MsgKind::kElRecoveryReq: {
        const auto rank = static_cast<std::uint32_t>(m.arg);
        if (deferred_[rank] != 0) {
          // Split-brain merge pending for this rank: its acked prefix is
          // still on the unreachable stale shard. Stay silent; the client's
          // retry loop re-asks after the heal commits the merge.
          return;
        }
        const net::NodeId reply_to = m.src;
        const std::uint64_t gen = svc_gen_;
        // The read MUST be serialized behind the store queue, not snapshot
        // the log at request arrival: store batches already queued — the
        // victim's own pre-crash submissions among them — commit and
        // advance stability before the survivors answer the victim's
        // recovery broadcast, and survivors prune everything stability
        // covers. A response built from an earlier snapshot would leave a
        // hole in the victim's replay union (EL prefix ∪ survivor
        // knowledge) exactly when the shard is saturated and the queue is
        // long. Under saturation this wait is also the measured cost of
        // under-provisioned logging: collect stalls behind the backlog.
        port_.charge_then(0, [this, rank, reply_to, gen] {
          if (gen != svc_gen_) return;  // request died with the service
          const net::CostModel& cc = net_.cost();
          net::Message resp;
          resp.kind = net::MsgKind::kElRecoveryResp;
          resp.dst = reply_to;
          // The current stable vector first: a restarting node must resync
          // its stability knowledge (a restored image may lag the EL, and
          // e.g. the pessimistic send gate depends on it).
          for (const Per& q : per_) resp.body.put_u64(q.contiguous);
          const Per& p = per_[rank];
          resp.body.put_u32(static_cast<std::uint32_t>(p.dets.size()));
          p.dets.for_each([&resp](std::uint64_t, const ftapi::Determinant& d) {
            d.serialize(resp.body);
          });
          port_.send_after(
              static_cast<sim::Time>(p.dets.size()) * cc.el_recovery_read +
                  cc.el_ack_build,
              std::move(resp));
        });
        return;
      }
      case net::MsgKind::kControl:
        switch (static_cast<mpi::CtlSub>(m.tag)) {
          case mpi::CtlSub::kElGc: {
            // Checkpoint of `src_rank` covers receptions <= arg: stability
            // may advance and storage be pruned.
            Per& p = per_[static_cast<std::uint32_t>(m.src_rank)];
            p.contiguous = std::max(p.contiguous, m.arg);
            p.dets.prune_to(m.arg);
            return;
          }
          case mpi::CtlSub::kElShardClock: {
            // Another shard's stable-clock array: merge the entries for the
            // ranks it owns into our global view.
            for (int r = 0; r < layout_.nranks; ++r) {
              const std::uint64_t v = m.body.get_u64();
              if (!owns_rank(r)) {
                per_[static_cast<std::uint32_t>(r)].contiguous = std::max(
                    per_[static_cast<std::uint32_t>(r)].contiguous, v);
              }
            }
            return;
          }
          default:
            return;
        }
      default:
        return;
    }
  }

  void store(const ftapi::Determinant& d) {
    Per& p = per_[d.creator];
    ++stats_->events_stored;
    ++stored_ops_;
    if (d.seq <= p.contiguous || !p.dets.emplace(d.seq, d)) {
      // Duplicate submission: a post-failover resubmission (or a parked
      // frame redelivered after a heal) of a record this shard already
      // covers. Keyed by (creator, seq); dropping it is the idempotence
      // the reconciliation path relies on.
      ++dup_by_rank_[d.creator];
      return;
    }
    while (p.dets.contains(p.contiguous + 1)) ++p.contiguous;
    // code=1 distinguishes EL-side storage from the rank-side creation
    // record of the same determinant.
    trace::emit(trace_, net_.engine().now(), trace::Kind::kDeterminant, 1,
                static_cast<std::int32_t>(d.creator), d.seq, p.contiguous,
                d.ssn);
  }

  void ack(net::NodeId to) {
    if (pending_ > 0) --pending_;
    net::Message a;
    a.kind = net::MsgKind::kElAck;
    a.dst = to;
    // Epoch + shard stamp (header fields, wire-neutral): lets a client whose
    // home moved while this ack crossed a cut recognize and fence it.
    a.arg = dir_epoch_;
    a.src_rank = shard_;
    for (const Per& p : per_) a.body.put_u64(p.contiguous);
    ++stats_->acks_sent;
    trace::emit(trace_, net_.engine().now(), trace::Kind::kElAck, 1,
                static_cast<std::int32_t>(to), stats_->acks_sent, pending_);
    port_.send_after(net_.cost().el_ack_build, std::move(a));
  }

  /// The exchange loop is generation-stamped so a service crash retires the
  /// pending tick and restore_service() can arm a fresh loop without racing
  /// it.
  void arm_exchange() {
    net_.engine().after(kExchangeInterval, [this, gen = svc_gen_] {
      if (gen == svc_gen_) exchange_clocks();
    });
  }

  void exchange_clocks() {
    for (int other = 0; other < layout_.el_count; ++other) {
      if (other == shard_) continue;
      if (dir_ != nullptr && dir_->dead(other)) continue;
      net::Message m;
      m.kind = net::MsgKind::kControl;
      m.tag = static_cast<std::int32_t>(mpi::CtlSub::kElShardClock);
      m.dst = layout_.el_node(other);
      // Send our whole view; receivers only merge the slots we own.
      for (const Per& p : per_) m.body.put_u64(p.contiguous);
      port_.send_after(net_.cost().el_ack_build, std::move(m));
    }
    arm_exchange();
  }

  net::Network& net_;
  ftapi::NodeLayout layout_;
  ftapi::ElStats* stats_;
  int shard_;
  const ElDirectory* dir_;
  ftapi::FaultObserver* obs_;
  trace::Lane* trace_ = nullptr;
  net::ServicePort port_;
  std::vector<Per> per_;
  std::vector<std::uint64_t> dup_by_rank_;
  std::vector<std::uint64_t> reconciled_by_rank_;
  std::vector<char> deferred_;
  std::uint64_t dir_epoch_ = 0;
  std::uint64_t pending_ = 0;
  std::uint64_t stored_ops_ = 0;
  std::uint64_t svc_gen_ = 0;
  bool down_ = false;
};

}  // namespace mpiv::elog
