// The Event Logger (paper §IV-B.4): a single-threaded reliable server that
// stores reception determinants and acknowledges with the stable-clock
// vector — "the last event stored for each process".
//
// It is deliberately a single select-loop service with a per-event service
// cost and one 100 Mb/s NIC: when every rank streams determinants at it
// (LU, 16 ranks), its ingress and service queue saturate, acks lag, nodes
// prune later and piggybacks grow — the bottleneck the paper observes and
// proposes distributing in future work.
#pragma once

#include <cstdint>
#include <vector>

#include "ftapi/determinant.hpp"
#include "ftapi/services.hpp"
#include "ftapi/stats.hpp"
#include "mpi/rank_runtime.hpp"
#include "net/service_port.hpp"
#include "util/seq_window.hpp"

namespace mpiv::elog {

class EventLogger {
 public:
  /// `shard` selects which subset of ranks this instance serves (paper §VI:
  /// "assigning a subset of the nodes to one Event Logger"). With more than
  /// one shard, each periodically multicasts its local stable-clock array
  /// to the others so that every ack can still carry the global view.
  EventLogger(net::Network& net, const ftapi::NodeLayout& layout,
              ftapi::ElStats* stats, int shard = 0)
      : net_(net),
        layout_(layout),
        stats_(stats),
        shard_(shard),
        port_(net, layout.el_node(shard)),
        per_(static_cast<std::size_t>(layout.nranks)) {
    net.attach(layout.el_node(shard),
               [this](net::Message&& m) { on_frame(std::move(m)); });
    if (layout_.el_count > 1) {
      net_.engine().after(kExchangeInterval, [this] { exchange_clocks(); });
    }
  }

  /// Period of the shard-to-shard stable-clock multicast (paper §VI).
  static constexpr sim::Time kExchangeInterval = 5 * sim::kMillisecond;

  /// Stable watermark for `creator`: every determinant with seq <= watermark
  /// is either stored (here or at the creator's shard) or covered by a
  /// checkpoint image.
  std::uint64_t stable(std::uint32_t creator) const {
    return per_[creator].contiguous;
  }
  int shard() const { return shard_; }
  bool owns_rank(int r) const { return layout_.el_shard_for_rank(r) == shard_; }
  std::size_t stored_count() const {
    std::size_t n = 0;
    for (const Per& p : per_) n += p.dets.size();
    return n;
  }

 private:
  /// Shard storage per creator: a sequence-indexed window whose base is the
  /// checkpoint-GC floor (kElGc), holding everything received since; the
  /// `contiguous` stability watermark advances through it as gaps fill.
  struct Per {
    std::uint64_t contiguous = 0;
    util::SeqWindow<ftapi::Determinant> dets;
  };

  void on_frame(net::Message&& m) {
    const net::CostModel& c = net_.cost();
    switch (m.kind) {
      case net::MsgKind::kElEvent: {
        const std::uint32_t n = m.body.get_u32();
        std::vector<ftapi::Determinant> dets;
        dets.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          dets.push_back(ftapi::Determinant::deserialize(m.body));
        }
        stats_->bytes_in += m.wire_bytes;
        const net::NodeId reply_to = m.src;
        port_.charge_then(
            static_cast<sim::Time>(n) * c.el_service,
            [this, dets = std::move(dets), reply_to] {
              for (const ftapi::Determinant& d : dets) store(d);
              ack(reply_to);
            });
        ++pending_;
        stats_->peak_queue = std::max(stats_->peak_queue, pending_);
        return;
      }
      case net::MsgKind::kElRecoveryReq: {
        const auto rank = static_cast<std::uint32_t>(m.arg);
        const net::NodeId reply_to = m.src;
        net::Message resp;
        resp.kind = net::MsgKind::kElRecoveryResp;
        resp.dst = reply_to;
        // The current stable vector first: a restarting node must resync its
        // stability knowledge (a restored image may lag the EL, and e.g. the
        // pessimistic send gate depends on it).
        for (const Per& q : per_) resp.body.put_u64(q.contiguous);
        const Per& p = per_[rank];
        resp.body.put_u32(static_cast<std::uint32_t>(p.dets.size()));
        p.dets.for_each([&resp](std::uint64_t, const ftapi::Determinant& d) {
          d.serialize(resp.body);
        });
        port_.send_after(
            static_cast<sim::Time>(p.dets.size()) * c.el_recovery_read +
                c.el_ack_build,
            std::move(resp));
        return;
      }
      case net::MsgKind::kControl:
        switch (static_cast<mpi::CtlSub>(m.tag)) {
          case mpi::CtlSub::kElGc: {
            // Checkpoint of `src_rank` covers receptions <= arg: stability
            // may advance and storage be pruned.
            Per& p = per_[static_cast<std::uint32_t>(m.src_rank)];
            p.contiguous = std::max(p.contiguous, m.arg);
            p.dets.prune_to(m.arg);
            return;
          }
          case mpi::CtlSub::kElShardClock: {
            // Another shard's stable-clock array: merge the entries for the
            // ranks it owns into our global view.
            for (int r = 0; r < layout_.nranks; ++r) {
              const std::uint64_t v = m.body.get_u64();
              if (!owns_rank(r)) {
                per_[static_cast<std::uint32_t>(r)].contiguous = std::max(
                    per_[static_cast<std::uint32_t>(r)].contiguous, v);
              }
            }
            return;
          }
          default:
            return;
        }
      default:
        return;
    }
  }

  void store(const ftapi::Determinant& d) {
    Per& p = per_[d.creator];
    ++stats_->events_stored;
    if (d.seq <= p.contiguous) return;  // duplicate (replayed resubmission)
    p.dets.emplace(d.seq, d);
    while (p.dets.contains(p.contiguous + 1)) ++p.contiguous;
  }

  void ack(net::NodeId to) {
    if (pending_ > 0) --pending_;
    net::Message a;
    a.kind = net::MsgKind::kElAck;
    a.dst = to;
    for (const Per& p : per_) a.body.put_u64(p.contiguous);
    ++stats_->acks_sent;
    port_.send_after(net_.cost().el_ack_build, std::move(a));
  }

  void exchange_clocks() {
    for (int other = 0; other < layout_.el_count; ++other) {
      if (other == shard_) continue;
      net::Message m;
      m.kind = net::MsgKind::kControl;
      m.tag = static_cast<std::int32_t>(mpi::CtlSub::kElShardClock);
      m.dst = layout_.el_node(other);
      // Send our whole view; receivers only merge the slots we own.
      for (const Per& p : per_) m.body.put_u64(p.contiguous);
      port_.send_after(net_.cost().el_ack_build, std::move(m));
    }
    net_.engine().after(kExchangeInterval, [this] { exchange_clocks(); });
  }

  net::Network& net_;
  ftapi::NodeLayout layout_;
  ftapi::ElStats* stats_;
  int shard_;
  net::ServicePort port_;
  std::vector<Per> per_;
  std::uint64_t pending_ = 0;
};

}  // namespace mpiv::elog
