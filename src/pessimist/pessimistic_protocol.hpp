// Pessimistic sender-based message logging (MPICH-V2 style, paper Fig. 1
// baseline): every reception determinant is sent to the Event Logger and a
// process may not send until all of its own determinants are safely stored
// — the synchronous wait that causal logging exists to avoid. No piggyback;
// recovery takes the determinant prefix straight from the EL and payloads
// from the survivors' sender logs.
#pragma once

#include "causal/msg_log_protocol.hpp"

namespace mpiv::pessimist {

class PessimisticProtocol final : public causal::MsgLogProtocolBase {
 public:
  PessimisticProtocol() : causal::MsgLogProtocolBase(/*use_el=*/true) {}

  const char* name() const override { return "Pessimistic"; }

  sim::Task<void> send_gate() override {
    // A cascade that killed every Event Logger shard leaves nothing to wait
    // for — degrade to unguarded sends rather than deadlocking the run.
    if (el_unreachable()) co_return;
    // Block until every reception event so far is acknowledged stable.
    co_await el_.wait_own_stable(my_dets_);
  }

  ftapi::PiggybackOut on_send(int dst_rank, std::uint64_t ssn,
                              const net::Payload& payload,
                              std::int32_t tag) override {
    slog_->log(dst_rank, ssn, tag, payload);
    ftapi::PiggybackOut out;
    out.cpu = svc_.cost->mlog_send_fixed +
              static_cast<sim::Time>(static_cast<double>(payload.bytes) *
                                     svc_.cost->slog_ns_per_byte);
    svc_.stats->sender_log_peak_bytes =
        std::max(svc_.stats->sender_log_peak_bytes, slog_->bytes());
    return out;
  }

  PacketCost on_packet(net::Message& m) override {
    (void)m;
    return {svc_.cost->mlog_recv_fixed, 0};
  }

  sim::Time on_deliver(const ftapi::Determinant& d) override {
    ++my_dets_;
    store_->add(d);
    ++svc_.stats->dets_created;
    el_.submit(d);
    return svc_.cost->det_create;
  }

  void serialize(util::Buffer& b) const override {
    causal::MsgLogProtocolBase::serialize(b);
    b.put_u64(my_dets_);
  }
  void restore(util::Buffer& b) override {
    causal::MsgLogProtocolBase::restore(b);
    my_dets_ = b.get_u64();
  }
  void reset() override {
    causal::MsgLogProtocolBase::reset();
    my_dets_ = 0;
  }

 private:
  std::uint64_t my_dets_ = 0;
};

}  // namespace mpiv::pessimist
