#include "workloads/apps.hpp"

#include "util/buffer.hpp"
#include "util/check.hpp"

namespace mpiv::workloads {

namespace {
struct AppState {
  std::uint32_t iter = 0;
  std::uint64_t chk = 0;
};
util::Buffer pack_state(std::uint32_t iter, std::uint64_t chk) {
  util::Buffer b;
  b.put_u32(iter);
  b.put_u64(chk);
  return b;
}
AppState unpack_state(util::BufferView blob, std::uint64_t chk0) {
  AppState st{0, chk0};
  if (!blob.empty()) {
    st.iter = blob.get_u32();
    st.chk = blob.get_u64();
  }
  return st;
}
}  // namespace

sim::Task<void> ring_app(mpi::Comm& c, int laps, std::uint64_t token_bytes,
                         std::shared_ptr<ChecksumResult> out) {
  const int rank = c.rank();
  const int size = c.size();
  const int next = (rank + 1) % size;
  const int prev = (rank - 1 + size) % size;
  AppState st = unpack_state(c.restart_state(), word(0x51, rank, 0));
  c.set_logical_state_bytes(64 * 1024);

  for (int lap = static_cast<int>(st.iter); lap < laps; ++lap) {
    // A ULFM repair can shrink the communicator to one survivor; the ring
    // degenerates to the compute phase (there is nobody to pass a token to).
    if (size == 1) {
      st.chk = mix64(st.chk);
    } else if (rank == 0) {
      co_await c.send(next, 7, token_bytes, st.chk);
      const mpi::RecvResult r = co_await c.recv(prev, 7);
      st.chk = mix64(st.chk ^ r.check);  // order-sensitive
    } else {
      const mpi::RecvResult r = co_await c.recv(prev, 7);
      st.chk = mix64(st.chk ^ r.check);
      co_await c.send(next, 7, token_bytes, st.chk);
    }
    co_await c.compute(50 * sim::kMicrosecond);
    co_await c.checkpoint_site(pack_state(static_cast<std::uint32_t>(lap + 1), st.chk));
  }
  out->checksums[static_cast<std::size_t>(rank)] = st.chk;
}

sim::Task<void> random_any_app(mpi::Comm& c, int iterations, std::uint64_t seed,
                               std::uint64_t bytes,
                               std::shared_ptr<ChecksumResult> out) {
  const int rank = c.rank();
  const int size = c.size();
  AppState st = unpack_state(c.restart_state(), word(seed, 0xA11, rank));
  c.set_logical_state_bytes(64 * 1024);

  for (int it = static_cast<int>(st.iter); it < iterations; ++it) {
    // Stateless pseudo-random assignment: everyone can compute everyone's
    // target, so each rank knows how many messages to expect.
    int expected = 0;
    int my_target = -1;
    for (int s = 0; s < size; ++s) {
      const int target =
          (s + 1 + static_cast<int>(word(seed, static_cast<std::uint64_t>(it), static_cast<std::uint64_t>(s)) %
                                    static_cast<std::uint64_t>(size - 1))) %
          size;
      if (s == rank) my_target = target;
      if (target == rank && s != rank) ++expected;
    }
    co_await c.send(my_target, 9, bytes, word(st.chk, rank, static_cast<std::uint64_t>(it)));
    for (int k = 0; k < expected; ++k) {
      const mpi::RecvResult r = co_await c.recv(mpi::kAnySource, 9);
      // Order-sensitive mix: only exact replay reproduces this.
      st.chk = st.chk * 0x100000001b3ULL + r.check;
    }
    co_await mpi::barrier(c);
    co_await c.compute(20 * sim::kMicrosecond);
    co_await c.checkpoint_site(pack_state(static_cast<std::uint32_t>(it + 1), st.chk));
  }
  out->checksums[static_cast<std::size_t>(rank)] = st.chk;
}

sim::Task<void> random_then_ring_app(mpi::Comm& c, int rand_iters,
                                     int ring_laps, std::uint64_t seed,
                                     std::uint64_t bytes,
                                     std::shared_ptr<ChecksumResult> out) {
  const int rank = c.rank();
  const int size = c.size();
  const int next = (rank + 1) % size;
  const int prev = (rank - 1 + size) % size;
  AppState st = unpack_state(c.restart_state(), word(seed, 0x2B, rank));
  c.set_logical_state_bytes(64 * 1024);
  const int total = rand_iters + ring_laps;

  for (int it = static_cast<int>(st.iter); it < total; ++it) {
    if (it < rand_iters) {
      // Wildcard storm (as in random_any_app).
      int expected = 0;
      int my_target = -1;
      for (int s = 0; s < size; ++s) {
        const int target =
            (s + 1 +
             static_cast<int>(
                 word(seed, static_cast<std::uint64_t>(it), static_cast<std::uint64_t>(s)) %
                 static_cast<std::uint64_t>(size - 1))) %
            size;
        if (s == rank) my_target = target;
        if (target == rank && s != rank) ++expected;
      }
      co_await c.send(my_target, 9, bytes, word(st.chk, rank, static_cast<std::uint64_t>(it)));
      for (int k = 0; k < expected; ++k) {
        const mpi::RecvResult r = co_await c.recv(mpi::kAnySource, 9);
        st.chk = st.chk * 0x100000001b3ULL + r.check;  // order-sensitive
      }
      co_await mpi::barrier(c);
    } else {
      // Deterministic ring.
      if (rank == 0) {
        co_await c.send(next, 7, bytes, st.chk);
        const mpi::RecvResult r = co_await c.recv(prev, 7);
        st.chk = mix64(st.chk ^ r.check);
      } else {
        const mpi::RecvResult r = co_await c.recv(prev, 7);
        st.chk = mix64(st.chk ^ r.check);
        co_await c.send(next, 7, bytes, st.chk);
      }
      co_await c.compute(80 * sim::kMicrosecond);
    }
    co_await c.checkpoint_site(pack_state(static_cast<std::uint32_t>(it + 1), st.chk));
  }
  out->checksums[static_cast<std::size_t>(rank)] = st.chk;
}

sim::Task<void> pingpong_app(mpi::Comm& c, std::vector<std::uint64_t> sizes,
                             int reps, std::shared_ptr<PingPongResult> out) {
  MPIV_CHECK(c.size() >= 2, "ping-pong needs 2 ranks, got %d", c.size());
  const int rank = c.rank();
  if (rank > 1) co_return;
  c.set_logical_state_bytes(1 << 20);
  for (const std::uint64_t bytes : sizes) {
    const sim::Time t0 = c.now();
    for (int i = 0; i < reps; ++i) {
      if (rank == 0) {
        co_await c.send(1, 3, bytes, word(bytes, static_cast<std::uint64_t>(i), 0));
        co_await c.recv(1, 4);
      } else {
        const mpi::RecvResult r = co_await c.recv(0, 3);
        co_await c.send(0, 4, bytes, r.check);
      }
    }
    if (rank == 0) {
      const double round_trips = static_cast<double>(reps);
      const double elapsed_us = sim::to_us(c.now() - t0);
      PingPongResult::Point p;
      p.bytes = bytes;
      p.latency_us = elapsed_us / (2.0 * round_trips);
      p.bandwidth_mbps = static_cast<double>(bytes) * 8.0 / (p.latency_us);
      out->points.push_back(p);
    }
  }
}

}  // namespace mpiv::workloads
