#include "workloads/nas.hpp"

#include <algorithm>
#include <cmath>

#include "mpi/collectives.hpp"
#include "util/buffer.hpp"
#include "util/check.hpp"

namespace mpiv::workloads {

namespace {

// --- NPB class tables ---------------------------------------------------------

struct KernelClassInfo {
  double gflops;     // total operations (NPB reference counts)
  int iterations;    // reference iteration count
  std::uint64_t n;   // characteristic problem dimension
};

KernelClassInfo info_for(NasKernel k, NasClass c) {
  const int ci = static_cast<int>(c);  // S, W, A, B
  switch (k) {
    case NasKernel::kBT: {
      static const KernelClassInfo t[4] = {{0.30, 60, 12},
                                           {7.51, 200, 24},
                                           {168.3, 200, 64},
                                           {719.3, 200, 102}};
      return t[ci];
    }
    case NasKernel::kCG: {
      static const KernelClassInfo t[4] = {{0.066, 15, 1400},
                                           {0.615, 15, 7000},
                                           {1.50, 15, 14000},
                                           {54.9, 75, 75000}};
      return t[ci];
    }
    case NasKernel::kLU: {
      static const KernelClassInfo t[4] = {{0.10, 50, 12},
                                           {11.9, 300, 33},
                                           {119.3, 250, 64},
                                           {554.7, 250, 102}};
      return t[ci];
    }
    case NasKernel::kFT: {
      static const KernelClassInfo t[4] = {{0.18, 6, 64},
                                           {2.0, 6, 128},
                                           {7.16, 6, 256},
                                           {92.8, 20, 512}};
      return t[ci];
    }
    case NasKernel::kMG: {
      static const KernelClassInfo t[4] = {{0.06, 4, 32},
                                           {0.61, 4, 128},
                                           {3.63, 4, 256},
                                           {18.1, 20, 256}};
      return t[ci];
    }
    case NasKernel::kSP: {
      static const KernelClassInfo t[4] = {{0.25, 100, 12},
                                           {8.0, 400, 36},
                                           {102.0, 400, 64},
                                           {447.1, 400, 102}};
      return t[ci];
    }
  }
  MPIV_PANIC("bad kernel %d", static_cast<int>(k));
}

int scaled_iters(const NasConfig& cfg) {
  const int ref = nas_iterations(cfg.kernel, cfg.klass);
  return std::max(2, static_cast<int>(std::lround(ref * cfg.scale)));
}

struct Grid2 {
  int px = 1, py = 1, x = 0, y = 0;
};
Grid2 grid2(int rank, int nranks) {
  Grid2 g;
  g.px = static_cast<int>(std::sqrt(static_cast<double>(nranks)));
  while (g.px > 1 && nranks % g.px != 0) --g.px;
  g.py = nranks / g.px;
  g.x = rank % g.px;
  g.y = rank / g.px;
  return g;
}

struct AppState {
  std::uint32_t iter = 0;
  std::uint64_t chk = 0;
};
util::Buffer pack_state(std::uint32_t iter, std::uint64_t chk) {
  util::Buffer b;
  b.put_u32(iter);
  b.put_u64(chk);
  return b;
}
AppState unpack_state(util::BufferView blob, std::uint64_t chk0) {
  AppState st{0, chk0};
  if (!blob.empty()) {
    st.iter = blob.get_u32();
    st.chk = blob.get_u64();
  }
  return st;
}

// --- kernels ----------------------------------------------------------------
// Checksums mix commutatively (wrapping add of mixed words) so that any
// legal execution order — including coordinated-rollback re-executions —
// produces identical values.

sim::Task<void> bt_sp_app(mpi::Comm& c, NasConfig cfg,
                          std::shared_ptr<ChecksumResult> out) {
  const int rank = c.rank();
  const int P = c.size();
  const int sq = static_cast<int>(std::lround(std::sqrt(static_cast<double>(P))));
  const KernelClassInfo ki = info_for(cfg.kernel, cfg.klass);
  const int iters = scaled_iters(cfg);
  const double flops_per_iter = ki.gflops * 1e9 / nas_iterations(cfg.kernel, cfg.klass);
  // Face size: (cells per rank)^(2/3) face cells x 5 variables x 8 bytes;
  // SP exchanges more often with smaller faces.
  const double cells = static_cast<double>(ki.n) * static_cast<double>(ki.n) *
                       static_cast<double>(ki.n) / P;
  const double face_scale = cfg.kernel == NasKernel::kSP ? 0.6 : 1.0;
  const std::uint64_t face_bytes = std::max<std::uint64_t>(
      256, static_cast<std::uint64_t>(std::pow(cells, 2.0 / 3.0) * 40.0 * face_scale));
  const int gx = rank % sq;
  const int gy = rank / sq;

  AppState st = unpack_state(c.restart_state(), word(0xB7, rank, 0));
  c.set_logical_state_bytes(nas_state_bytes(cfg.kernel, cfg.klass, P));

  for (int it = static_cast<int>(st.iter); it < iters; ++it) {
    // Three ADI sweep dimensions; each exchanges both faces with the
    // neighbours of that dimension, overlapped with the sweep computation.
    for (int dim = 0; dim < 3; ++dim) {
      int nx = gx, ny = gy;
      if (dim == 0) nx = (gx + 1) % sq;
      if (dim == 1) ny = (gy + 1) % sq;
      if (dim == 2) {
        nx = (gx + 1) % sq;
        ny = (gy + 1) % sq;
      }
      const int fwd = ny * sq + nx;
      int pxr = gx, pyr = gy;
      if (dim == 0) pxr = (gx - 1 + sq) % sq;
      if (dim == 1) pyr = (gy - 1 + sq) % sq;
      if (dim == 2) {
        pxr = (gx - 1 + sq) % sq;
        pyr = (gy - 1 + sq) % sq;
      }
      const int back = pyr * sq + pxr;
      if (fwd != rank) {
        // Faces go both ways in each sweep dimension (forward solve then
        // back-substitution).
        co_await c.send(fwd, 200 + dim, face_bytes,
                        word(st.chk, static_cast<std::uint64_t>(it), static_cast<std::uint64_t>(dim)));
        const mpi::RecvResult r = co_await c.recv(back, 200 + dim);
        st.chk += mix64(r.check);
        co_await c.send(back, 210 + dim, face_bytes,
                        word(st.chk, static_cast<std::uint64_t>(it), static_cast<std::uint64_t>(dim) + 16));
        const mpi::RecvResult r2 = co_await c.recv(fwd, 210 + dim);
        st.chk += mix64(r2.check);
      }
      co_await c.compute_flops(flops_per_iter / (3.0 * P));
    }
    if (it % 8 == 7) {
      st.chk += co_await mpi::allreduce(c, 40, word(0xBB, rank, static_cast<std::uint64_t>(it)));
    }
    co_await c.checkpoint_site(pack_state(static_cast<std::uint32_t>(it + 1), st.chk));
  }
  out->checksums[static_cast<std::size_t>(rank)] = st.chk;
}

sim::Task<void> cg_app(mpi::Comm& c, NasConfig cfg,
                       std::shared_ptr<ChecksumResult> out) {
  const int rank = c.rank();
  const int P = c.size();
  const KernelClassInfo ki = info_for(cfg.kernel, cfg.klass);
  const int iters = scaled_iters(cfg);
  const double flops_per_iter = ki.gflops * 1e9 / nas_iterations(cfg.kernel, cfg.klass);
  // Process grid: npcols >= nprows, both powers of two.
  int l2 = 0;
  while ((1 << (l2 + 1)) <= P) ++l2;
  const int npcols = 1 << ((l2 + 1) / 2);
  const int nprows = P / npcols;
  const int col = rank % npcols;
  const int row = rank / npcols;
  const std::uint64_t vec_bytes =
      std::max<std::uint64_t>(64, ki.n / static_cast<std::uint64_t>(std::max(1, nprows)) * 8);
  constexpr int kSub = 25;  // inner CG steps per outer iteration (NPB)

  AppState st = unpack_state(c.restart_state(), word(0xC6, rank, 0));
  c.set_logical_state_bytes(nas_state_bytes(cfg.kernel, cfg.klass, P));

  for (int it = static_cast<int>(st.iter); it < iters; ++it) {
    for (int sub = 0; sub < kSub; ++sub) {
      // Sum-reduction of q = A.p along the process row (pairwise halving).
      for (int i = 1; i < npcols; i <<= 1) {
        const int pcol = col ^ i;
        if (pcol >= npcols) continue;
        const int partner = row * npcols + pcol;
        co_await c.send(partner, 300 + sub, vec_bytes,
                        word(st.chk, static_cast<std::uint64_t>(it), static_cast<std::uint64_t>(sub)));
        const mpi::RecvResult r = co_await c.recv(partner, 300 + sub);
        st.chk += mix64(r.check);
      }
      // Scalar dot products (rho, alpha): global reductions, the
      // latency-bound part of CG and the vehicle for transitive causal
      // knowledge (the binomial trees relay everyone's events).
      st.chk += co_await mpi::allreduce(c, 8, word(0xD0, rank, static_cast<std::uint64_t>(sub)));
      st.chk += co_await mpi::allreduce(c, 8, word(0xD1, rank, static_cast<std::uint64_t>(sub)));
      co_await c.compute_flops(flops_per_iter / (kSub * P));
    }
    st.chk += co_await mpi::allreduce(c, 8, word(0xCA, rank, static_cast<std::uint64_t>(it)));
    co_await c.checkpoint_site(pack_state(static_cast<std::uint32_t>(it + 1), st.chk));
  }
  out->checksums[static_cast<std::size_t>(rank)] = st.chk;
}

sim::Task<void> lu_app(mpi::Comm& c, NasConfig cfg,
                       std::shared_ptr<ChecksumResult> out) {
  const int rank = c.rank();
  const int P = c.size();
  const Grid2 g = grid2(rank, P);
  const KernelClassInfo ki = info_for(cfg.kernel, cfg.klass);
  const int iters = scaled_iters(cfg);
  const double flops_per_iter = ki.gflops * 1e9 / nas_iterations(cfg.kernel, cfg.klass);
  // Wavefront pencils: one exchange per k-plane per sweep — the "very
  // large number of small messages" that makes LU the paper's stress case.
  const int nz = static_cast<int>(ki.n);
  const std::uint64_t pencil_bytes = std::max<std::uint64_t>(
      160, ki.n / static_cast<std::uint64_t>(std::max(1, g.px)) * 5 * 8);
  const int west = g.x > 0 ? rank - 1 : -1;
  const int east = g.x < g.px - 1 ? rank + 1 : -1;
  const int north = g.y > 0 ? rank - g.px : -1;
  const int south = g.y < g.py - 1 ? rank + g.px : -1;

  AppState st = unpack_state(c.restart_state(), word(0x1C, rank, 0));
  c.set_logical_state_bytes(nas_state_bytes(cfg.kernel, cfg.klass, P));

  for (int it = static_cast<int>(st.iter); it < iters; ++it) {
    // Lower then upper SSOR sweep; each k-plane propagates the wavefront.
    for (int sweep = 0; sweep < 2; ++sweep) {
      const bool fw = sweep == 0;
      const int r_from_x = fw ? west : east;
      const int r_from_y = fw ? north : south;
      const int s_to_x = fw ? east : west;
      const int s_to_y = fw ? south : north;
      for (int k = 0; k < nz; ++k) {
        const int tag = 400 + sweep;
        if (r_from_x >= 0) {
          const mpi::RecvResult r = co_await c.recv(r_from_x, tag);
          st.chk += mix64(r.check);
        }
        if (r_from_y >= 0) {
          const mpi::RecvResult r = co_await c.recv(r_from_y, tag + 2);
          st.chk += mix64(r.check);
        }
        co_await c.compute_flops(flops_per_iter / (2.0 * nz * P));
        if (s_to_x >= 0) {
          co_await c.send(s_to_x, tag, pencil_bytes,
                          word(st.chk, static_cast<std::uint64_t>(k), static_cast<std::uint64_t>(sweep)));
        }
        if (s_to_y >= 0) {
          co_await c.send(s_to_y, tag + 2, pencil_bytes,
                          word(st.chk, static_cast<std::uint64_t>(k), static_cast<std::uint64_t>(sweep) + 8));
        }
      }
    }
    if (it % 8 == 7) {
      // Periodic residual norm (global reduction).
      st.chk += co_await mpi::allreduce(c, 40, word(0x1B, rank, static_cast<std::uint64_t>(it)));
    }
    co_await c.checkpoint_site(pack_state(static_cast<std::uint32_t>(it + 1), st.chk));
  }
  out->checksums[static_cast<std::size_t>(rank)] = st.chk;
}

sim::Task<void> ft_app(mpi::Comm& c, NasConfig cfg,
                       std::shared_ptr<ChecksumResult> out) {
  const int rank = c.rank();
  const int P = c.size();
  const KernelClassInfo ki = info_for(cfg.kernel, cfg.klass);
  const int iters = scaled_iters(cfg);
  const double flops_per_iter = ki.gflops * 1e9 / nas_iterations(cfg.kernel, cfg.klass);
  // 3D FFT transpose: total grid (n x n x n/2 complex doubles) re-distributed
  // all-to-all each iteration.
  const double total_bytes = static_cast<double>(ki.n) * ki.n * (ki.n / 2) * 16.0;
  const std::uint64_t per_pair =
      std::max<std::uint64_t>(1024, static_cast<std::uint64_t>(total_bytes / P / P));

  AppState st = unpack_state(c.restart_state(), word(0xF7, rank, 0));
  c.set_logical_state_bytes(nas_state_bytes(cfg.kernel, cfg.klass, P));

  for (int it = static_cast<int>(st.iter); it < iters; ++it) {
    co_await c.compute_flops(flops_per_iter / (2.0 * P));
    st.chk += co_await mpi::alltoall(c, per_pair, word(st.chk, rank, static_cast<std::uint64_t>(it)));
    co_await c.compute_flops(flops_per_iter / (2.0 * P));
    st.chk += co_await mpi::allreduce(c, 16, word(0xFA, rank, static_cast<std::uint64_t>(it)));
    co_await c.checkpoint_site(pack_state(static_cast<std::uint32_t>(it + 1), st.chk));
  }
  out->checksums[static_cast<std::size_t>(rank)] = st.chk;
}

sim::Task<void> mg_app(mpi::Comm& c, NasConfig cfg,
                       std::shared_ptr<ChecksumResult> out) {
  const int rank = c.rank();
  const int P = c.size();
  const KernelClassInfo ki = info_for(cfg.kernel, cfg.klass);
  const int iters = scaled_iters(cfg);
  const double flops_per_iter = ki.gflops * 1e9 / nas_iterations(cfg.kernel, cfg.klass);
  const int next = (rank + 1) % P;
  const int prev = (rank - 1 + P) % P;
  // Halo size at the finest level; halves per multigrid level.
  const std::uint64_t base_halo = std::max<std::uint64_t>(
      512, static_cast<std::uint64_t>(
               static_cast<double>(ki.n) * ki.n / P * 8.0 / 16.0));
  int levels = 0;
  while ((base_halo >> levels) > 64 && levels < 8) ++levels;

  AppState st = unpack_state(c.restart_state(), word(0x36, rank, 0));
  c.set_logical_state_bytes(nas_state_bytes(cfg.kernel, cfg.klass, P));

  for (int it = static_cast<int>(st.iter); it < iters; ++it) {
    // V-cycle: down (coarsen) then up (refine), halo exchange per level.
    for (int pass = 0; pass < 2; ++pass) {
      for (int l = 0; l <= levels; ++l) {
        const int lvl = pass == 0 ? l : levels - l;
        const std::uint64_t halo = std::max<std::uint64_t>(64, base_halo >> lvl);
        if (P > 1) {
          co_await c.send(next, 500 + lvl, halo,
                          word(st.chk, static_cast<std::uint64_t>(it), static_cast<std::uint64_t>(lvl)));
          const mpi::RecvResult r = co_await c.recv(prev, 500 + lvl);
          st.chk += mix64(r.check);
        }
        co_await c.compute_flops(flops_per_iter / (2.0 * (levels + 1) * P));
      }
    }
    st.chk += co_await mpi::allreduce(c, 8, word(0x39, rank, static_cast<std::uint64_t>(it)));
    co_await c.checkpoint_site(pack_state(static_cast<std::uint32_t>(it + 1), st.chk));
  }
  out->checksums[static_cast<std::size_t>(rank)] = st.chk;
}

}  // namespace

const char* nas_kernel_name(NasKernel k) {
  switch (k) {
    case NasKernel::kBT: return "BT";
    case NasKernel::kCG: return "CG";
    case NasKernel::kLU: return "LU";
    case NasKernel::kFT: return "FT";
    case NasKernel::kMG: return "MG";
    case NasKernel::kSP: return "SP";
  }
  return "?";
}

char nas_class_letter(NasClass c) {
  switch (c) {
    case NasClass::kS: return 'S';
    case NasClass::kW: return 'W';
    case NasClass::kA: return 'A';
    case NasClass::kB: return 'B';
  }
  return '?';
}

double nas_total_flops(NasKernel k, NasClass c) { return info_for(k, c).gflops * 1e9; }

int nas_iterations(NasKernel k, NasClass c) { return info_for(k, c).iterations; }

std::uint64_t nas_state_bytes(NasKernel k, NasClass c, int nranks) {
  const KernelClassInfo ki = info_for(k, c);
  double words = 0;
  switch (k) {
    case NasKernel::kCG:
      words = static_cast<double>(ki.n) * 12;  // sparse vectors
      break;
    case NasKernel::kFT:
      words = static_cast<double>(ki.n) * ki.n * (ki.n / 2) * 2 / 4;
      break;
    default:
      words = static_cast<double>(ki.n) * ki.n * ki.n * 5;
      break;
  }
  // MPICH-V checkpoints the full process (system-level dump): code, libs,
  // heap and stack on top of the numerical arrays (NPB keeps roughly 3x the
  // primary grid in auxiliaries). The resulting tens-of-MB images are what
  // make coordinated checkpoint/restart storms expensive on a shared
  // checkpoint server (Fig. 1) while per-rank message-logging checkpoints
  // stay cheap.
  constexpr std::uint64_t kProcessBaseBytes = 12ull << 20;
  return kProcessBaseBytes +
         static_cast<std::uint64_t>(3.0 * words * 8.0 / std::max(1, nranks));
}

bool nas_valid_nranks(NasKernel k, int nranks) {
  if (nranks < 1) return false;
  if (k == NasKernel::kBT || k == NasKernel::kSP) {
    const int sq = static_cast<int>(std::lround(std::sqrt(static_cast<double>(nranks))));
    return sq * sq == nranks;
  }
  return (nranks & (nranks - 1)) == 0;
}

double nas_scaled_flops(const NasConfig& cfg) {
  const KernelClassInfo ki = info_for(cfg.kernel, cfg.klass);
  const int iters = scaled_iters(cfg);
  return ki.gflops * 1e9 * iters / nas_iterations(cfg.kernel, cfg.klass);
}

mpi::AppFactory make_nas_app(const NasConfig& cfg,
                             std::shared_ptr<ChecksumResult> out) {
  MPIV_CHECK(nas_valid_nranks(cfg.kernel, cfg.nranks),
             "%s does not support %d ranks", nas_kernel_name(cfg.kernel),
             cfg.nranks);
  switch (cfg.kernel) {
    case NasKernel::kBT:
    case NasKernel::kSP:
      return [cfg, out](mpi::Comm& c) { return bt_sp_app(c, cfg, out); };
    case NasKernel::kCG:
      return [cfg, out](mpi::Comm& c) { return cg_app(c, cfg, out); };
    case NasKernel::kLU:
      return [cfg, out](mpi::Comm& c) { return lu_app(c, cfg, out); };
    case NasKernel::kFT:
      return [cfg, out](mpi::Comm& c) { return ft_app(c, cfg, out); };
    case NasKernel::kMG:
      return [cfg, out](mpi::Comm& c) { return mg_app(c, cfg, out); };
  }
  MPIV_PANIC("bad kernel %d", static_cast<int>(cfg.kernel));
}

}  // namespace mpiv::workloads
