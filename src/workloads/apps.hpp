// Micro-workloads: ring token, wildcard random traffic, NetPIPE ping-pong.
//
// These exercise the protocol stack directly: the ring has an order-
// sensitive checksum over a deterministic pattern; random_any uses
// MPI_ANY_SOURCE receives — the nondeterministic receptions that message
// logging must replay exactly — with an order-sensitive checksum, so a
// recovered run matching a fault-free run proves replay correctness.
#pragma once

#include <memory>
#include <vector>

#include "mpi/collectives.hpp"
#include "mpi/comm.hpp"

namespace mpiv::workloads {

/// Deterministic 64-bit mixer (stateless hashing for payload check words).
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
inline std::uint64_t word(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return mix64(a ^ mix64(b ^ mix64(c)));
}

struct ChecksumResult {
  explicit ChecksumResult(int nranks)
      : checksums(static_cast<std::size_t>(nranks), 0) {}
  std::vector<std::uint64_t> checksums;
  bool operator==(const ChecksumResult& o) const {
    return checksums == o.checksums;
  }
};

/// Token circulates `laps` times; every hop mixes order-sensitively.
sim::Task<void> ring_app(mpi::Comm& c, int laps, std::uint64_t token_bytes,
                         std::shared_ptr<ChecksumResult> out);
inline mpi::AppFactory make_ring_app(int laps, std::uint64_t token_bytes,
                                     std::shared_ptr<ChecksumResult> out) {
  return [laps, token_bytes, out](mpi::Comm& c) {
    return ring_app(c, laps, token_bytes, out);
  };
}

/// Each iteration every rank sends one message to a pseudo-random target
/// (derived statelessly from the seed), then receives its due count with
/// MPI_ANY_SOURCE and mixes the checksum order-sensitively; a barrier
/// separates iterations.
sim::Task<void> random_any_app(mpi::Comm& c, int iterations, std::uint64_t seed,
                               std::uint64_t bytes,
                               std::shared_ptr<ChecksumResult> out);
inline mpi::AppFactory make_random_any_app(int iterations, std::uint64_t seed,
                                           std::uint64_t bytes,
                                           std::shared_ptr<ChecksumResult> out) {
  return [iterations, seed, bytes, out](mpi::Comm& c) {
    return random_any_app(c, iterations, seed, bytes, out);
  };
}

/// Phase 1: wildcard random traffic (nondeterministic delivery orders);
/// phase 2: deterministic ring. A crash injected in phase 2 with no (or
/// any) checkpoint forces replay back through phase 1's wildcard
/// receptions: the order-sensitive checksum matches the fault-free run iff
/// the determinant replay reproduced every delivery order exactly.
sim::Task<void> random_then_ring_app(mpi::Comm& c, int rand_iters,
                                     int ring_laps, std::uint64_t seed,
                                     std::uint64_t bytes,
                                     std::shared_ptr<ChecksumResult> out);
inline mpi::AppFactory make_random_then_ring_app(
    int rand_iters, int ring_laps, std::uint64_t seed, std::uint64_t bytes,
    std::shared_ptr<ChecksumResult> out) {
  return [rand_iters, ring_laps, seed, bytes, out](mpi::Comm& c) {
    return random_then_ring_app(c, rand_iters, ring_laps, seed, bytes, out);
  };
}

/// NetPIPE-style ping-pong between ranks 0 and 1.
struct PingPongResult {
  struct Point {
    std::uint64_t bytes = 0;
    double latency_us = 0;        // one-way
    double bandwidth_mbps = 0;    // payload Mbit/s
  };
  std::vector<Point> points;
};
sim::Task<void> pingpong_app(mpi::Comm& c, std::vector<std::uint64_t> sizes,
                             int reps, std::shared_ptr<PingPongResult> out);
inline mpi::AppFactory make_pingpong_app(std::vector<std::uint64_t> sizes,
                                         int reps,
                                         std::shared_ptr<PingPongResult> out) {
  return [sizes, reps, out](mpi::Comm& c) {
    return pingpong_app(c, sizes, reps, out);
  };
}

}  // namespace mpiv::workloads
