// NAS Parallel Benchmark communication skeletons (NPB 2.x).
//
// Each kernel reproduces the benchmark property the paper leans on
// (§V-A): CG — latency-driven point-to-point exchanges along a 2D process
// grid; BT — large neighbour faces overlapped with computation on a square
// grid; LU — very many small wavefront pencils (highest communication/
// computation ratio); FT — all-to-all transposes; MG — halo exchanges
// shrinking across multigrid levels; SP — BT-like sweeps with more, smaller
// messages. Message sizes and iteration counts follow the NPB class tables;
// per-iteration flop counts come from the published per-class operation
// totals, so Mop/s figures are comparable in shape to the paper's Fig. 9.
//
// `scale` multiplies the iteration count (simulation wall-time control):
// per-iteration message sizes, counts and flops — everything the protocols
// can observe per unit of progress — are unchanged. Checksums are
// commutative mixes of received payload words, so any legal execution
// (including a post-rollback re-execution) reproduces them.
#pragma once

#include <cstdint>
#include <memory>

#include "mpi/comm.hpp"
#include "workloads/apps.hpp"

namespace mpiv::workloads {

enum class NasKernel : std::uint8_t { kBT, kCG, kLU, kFT, kMG, kSP };
enum class NasClass : std::uint8_t { kS, kW, kA, kB };

const char* nas_kernel_name(NasKernel k);
char nas_class_letter(NasClass c);

/// Total floating-point operations of the full benchmark (NPB reference).
double nas_total_flops(NasKernel k, NasClass c);
/// Reference iteration count of the benchmark.
int nas_iterations(NasKernel k, NasClass c);
/// Checkpoint image size (application memory) per rank.
std::uint64_t nas_state_bytes(NasKernel k, NasClass c, int nranks);
/// BT/SP need square process counts; the others powers of two.
bool nas_valid_nranks(NasKernel k, int nranks);

struct NasConfig {
  NasKernel kernel = NasKernel::kCG;
  NasClass klass = NasClass::kA;
  int nranks = 4;
  double scale = 1.0;  // iteration-count multiplier (>= keeps 2 iterations)
};

mpi::AppFactory make_nas_app(const NasConfig& cfg,
                             std::shared_ptr<ChecksumResult> out);

/// Flops actually executed by a scaled run (for Mop/s reporting).
double nas_scaled_flops(const NasConfig& cfg);

}  // namespace mpiv::workloads
